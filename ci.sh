#!/usr/bin/env bash
# CI entry point: configure + build the three presets, run the full test
# suite once on the default build (plus the perf smoke label and the
# scan / service / governance benchmarks writing their BENCH_*.json
# baselines), and re-run the concurrency-sensitive suites (fault
# injection + checkpoint recovery + fused/reference differential +
# multi-tenant isolation + resource governance) under ASan/UBSan and
# TSan.
#
#   ./ci.sh            # everything
#   ./ci.sh default    # one preset only (default | asan-ubsan | tsan)
set -euo pipefail
cd "$(dirname "$0")"

run_preset() {
  local preset="$1"
  echo "==> [${preset}] configure + build"
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" --parallel
  case "${preset}" in
    default)
      echo "==> [${preset}] full test suite"
      ctest --preset default
      echo "==> [${preset}] perf smoke suite"
      ctest --preset default -L perf
      echo "==> [${preset}] fused-pipeline scan benchmark"
      ./build/bench/micro_scan --json BENCH_scan.json
      echo "==> [${preset}] multi-tenant service benchmark"
      ./build/bench/micro_service --json BENCH_service.json
      echo "==> [${preset}] resource-governance benchmark"
      ./build/bench/micro_governance --json BENCH_governance.json
      ;;
    *)
      echo "==> [${preset}] resilience|recovery|engine|service|governance suites"
      ctest --preset "${preset}"
      ;;
  esac
}

if [[ $# -gt 0 ]]; then
  run_preset "$1"
else
  for preset in default asan-ubsan tsan; do
    run_preset "${preset}"
  done
fi
echo "==> CI green"
