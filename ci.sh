#!/usr/bin/env bash
# CI entry point: configure + build the three presets, run the full test
# suite once on the default build (plus the perf smoke label, the
# durability and storage acceptance labels, and the scan / service /
# governance / integrity / storage benchmarks writing their BENCH_*.json
# baselines), and re-run the concurrency-sensitive suites (fault injection
# + checkpoint recovery + fused/reference differential + multi-tenant
# isolation + resource governance + durability hardening + buffer-pool
# storage) under ASan/UBSan and TSan.
#
#   ./ci.sh            # everything
#   ./ci.sh default    # one preset only (default | asan-ubsan | tsan)
set -euo pipefail
cd "$(dirname "$0")"

# Extracts a scalar number for "key" from a flat JSON baseline ("key": 1.23).
json_number() {
  local key="$1" file="$2"
  grep -o "\"${key}\": *[0-9.]*" "${file}" | head -n1 | grep -o '[0-9.]*$'
}

# Perf regression gate: a fresh micro_scan run must not fall below the
# floors recorded in the committed BENCH_scan.json baseline (the floors
# are part of the baseline so tightening them is an explicit commit).
check_scan_floors() {
  local baseline="$1" fresh="$2"
  [[ -f "${baseline}" ]] || { echo "    (no committed baseline; skipping floor gate)"; return 0; }
  local vec_floor fus_floor vec_meas fus_meas
  vec_floor="$(json_number vectorized_over_fused "${baseline}")"
  fus_floor="$(json_number fused_over_reference "${baseline}")"
  vec_meas="$(json_number selective_scan_vectorized_speedup "${fresh}")"
  fus_meas="$(json_number selective_scan_fused_speedup "${fresh}")"
  if [[ -z "${vec_floor}" || -z "${fus_floor}" ]]; then
    echo "    (baseline predates the vectorized floors; skipping floor gate)"
    return 0
  fi
  echo "    selective-scan vectorized/fused: ${vec_meas} (floor ${vec_floor})"
  echo "    selective-scan fused/reference:  ${fus_meas} (floor ${fus_floor})"
  awk -v m="${vec_meas}" -v f="${vec_floor}" 'BEGIN { exit (m+0 >= f+0) ? 0 : 1 }' \
    || { echo "FAIL: vectorized selective-scan speedup ${vec_meas} fell below floor ${vec_floor}"; return 1; }
  awk -v m="${fus_meas}" -v f="${fus_floor}" 'BEGIN { exit (m+0 >= f+0) ? 0 : 1 }' \
    || { echo "FAIL: fused selective-scan speedup ${fus_meas} fell below floor ${fus_floor}"; return 1; }
}

# Paged-storage regression gate: a fresh micro_storage run must keep the
# hit-path overhead under the committed baseline's floor (10%: the cost of
# the slotted-page representation when nothing spills), agree with the
# resident oracle in every execution mode, and stay within 1.5x of the
# committed peak RSS — the whole point of the pool is that a bounded
# budget bounds memory, so an RSS regression is a correctness smell.
check_storage_floors() {
  local baseline="$1" fresh="$2"
  [[ -f "${baseline}" ]] || { echo "    (no committed baseline; skipping floor gate)"; return 0; }
  local max_overhead overhead rss_base rss
  max_overhead="$(json_number hit_overhead_max "${baseline}")"
  rss_base="$(json_number peak_rss_bytes "${baseline}")"
  overhead="$(json_number hit_overhead "${fresh}")"
  rss="$(json_number peak_rss_bytes "${fresh}")"
  if [[ -z "${max_overhead}" ]]; then
    echo "    (baseline predates the storage floors; skipping floor gate)"
    return 0
  fi
  echo "    hit-path paged/resident overhead: ${overhead} (floor ${max_overhead})"
  echo "    peak RSS: ${rss} bytes (baseline ${rss_base})"
  grep -q '"results_match": true' "${fresh}" \
    || { echo "FAIL: ${fresh} did not record results_match=true"; return 1; }
  awk -v o="${overhead}" -v f="${max_overhead}" 'BEGIN { exit (o+0 < f+0) ? 0 : 1 }' \
    || { echo "FAIL: hit-path overhead ${overhead} breached the ${max_overhead} floor"; return 1; }
  awk -v r="${rss}" -v b="${rss_base}" 'BEGIN { exit (r+0 <= b*1.5) ? 0 : 1 }' \
    || { echo "FAIL: peak RSS ${rss} exceeded 1.5x the committed ${rss_base}"; return 1; }
}

# Integrity regression gate: checksum maintenance must stay under 5%
# overhead on the fig4 loop in every mode, and no arm may perturb the
# fixpoint (micro_integrity exits nonzero on its own, but the gate reads
# the JSON so a stale baseline can never pass silently).
check_integrity_overhead() {
  local fresh="$1"
  local overhead
  overhead="$(json_number overhead_pct "${fresh}")"
  echo "    checksum-maintenance overhead: ${overhead}% (bar <5%)"
  grep -q '"pass": true' "${fresh}" \
    || { echo "FAIL: ${fresh} did not record pass=true"; return 1; }
  awk -v o="${overhead}" 'BEGIN { exit (o+0 < 5.0) ? 0 : 1 }' \
    || { echo "FAIL: checksum overhead ${overhead}% breached the 5% bar"; return 1; }
}

run_preset() {
  local preset="$1"
  echo "==> [${preset}] configure + build"
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" --parallel
  case "${preset}" in
    default)
      echo "==> [${preset}] full test suite"
      ctest --preset default
      echo "==> [${preset}] perf smoke suite"
      ctest --preset default -L perf
      echo "==> [${preset}] vectorized/fused-pipeline scan benchmark"
      cp -f BENCH_scan.json BENCH_scan.baseline.json 2>/dev/null || true
      ./build/bench/micro_scan --json BENCH_scan.json
      echo "==> [${preset}] scan perf floor gate"
      check_scan_floors BENCH_scan.baseline.json BENCH_scan.json
      rm -f BENCH_scan.baseline.json
      echo "==> [${preset}] multi-tenant service benchmark"
      ./build/bench/micro_service --json BENCH_service.json
      echo "==> [${preset}] resource-governance benchmark"
      ./build/bench/micro_governance --json BENCH_governance.json
      echo "==> [${preset}] durability acceptance suite"
      ctest --preset default -L durability
      echo "==> [${preset}] integrity-overhead benchmark"
      ./build/bench/micro_integrity --json BENCH_integrity.json
      echo "==> [${preset}] integrity overhead gate"
      check_integrity_overhead BENCH_integrity.json
      echo "==> [${preset}] paged-storage acceptance suite"
      ctest --preset default -L storage
      echo "==> [${preset}] paged-storage benchmark + floor gate"
      cp -f BENCH_storage.json BENCH_storage.baseline.json 2>/dev/null || true
      storage_ok=0
      for attempt in 1 2 3; do
        if ./build/bench/micro_storage --json BENCH_storage.json \
            && check_storage_floors BENCH_storage.baseline.json BENCH_storage.json; then
          storage_ok=1
          break
        fi
        # The hit-path ratio is sensitive to per-process allocation layout
        # (hugepage promotion luck on the resident arm); a fresh process
        # redraws the layout, so transient breaches get two more attempts.
        echo "    (attempt ${attempt} breached; retrying in a fresh process)"
      done
      rm -f BENCH_storage.baseline.json
      if [[ "${storage_ok}" != 1 ]]; then
        echo "FAIL: micro_storage floor gate failed three consecutive attempts"
        exit 1
      fi
      ;;
    *)
      echo "==> [${preset}] resilience|recovery|engine|gains|service|governance|durability|storage suites"
      ctest --preset "${preset}"
      ;;
  esac
}

if [[ $# -gt 0 ]]; then
  run_preset "$1"
else
  for preset in default asan-ubsan tsan; do
    run_preset "${preset}"
  done
fi
echo "==> CI green"
