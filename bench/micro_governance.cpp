// micro_governance — what resource governance costs when nothing goes
// wrong, and how fast the server says "no" when something would.
//
// Two measurements:
//   1. Accounting overhead: the same materializing statement (a three-way
//      cross join, whose inner join charges every intermediate row to the
//      memory hierarchy) timed with accounting attached vs detached
//      (Database::set_governance_enabled(false) — the same ablation the
//      SQLOOP_BENCH_NO_GOVERNANCE fleet knob flips). Both arms take the
//      min over GOV_ROUNDS rounds; the bar is <3% overhead, with results
//      bit-identical across arms.
//   2. Shed-mode admission latency: a JobServer pinned over its soft
//      memory watermark must reject new submissions in microseconds, not
//      after queueing work it cannot run — reported as p50/p99 over
//      GOV_SHED_TRIES Submit() attempts, each ending in AdmissionError.
//
// Writes a JSON baseline (default BENCH_governance.json; --json <path>).
// Knobs: SQLOOP_BENCH_{GOV_NODES,GOV_DEG,GOV_REPS,GOV_ROUNDS,
// GOV_SHED_TRIES}.
#include <algorithm>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "graph/generators.h"
#include "server/job_server.h"

namespace {

using namespace sqloop;
using bench::Knob;

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0;
  const size_t index = std::min(
      sorted.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted.size() - 1)));
  return sorted[index];
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_governance.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: micro_governance [--json <path>]\n";
      return 2;
    }
  }

  const int64_t nodes = Knob("GOV_NODES", 60);
  const int64_t deg = Knob("GOV_DEG", 3);
  const int64_t reps = std::max<int64_t>(Knob("GOV_REPS", 3), 1);
  const int64_t rounds = std::max<int64_t>(Knob("GOV_ROUNDS", 5), 1);
  const int64_t shed_tries = std::max<int64_t>(Knob("GOV_SHED_TRIES", 200), 1);

  const auto graph = graph::MakeWebGraph(nodes, static_cast<int>(deg), 7);
  // Pure-CPU measurement: the accounting hooks are the variable, not the
  // modeled network latency or per-row server cost.
  bench::EngineFleet fleet("governance", graph, /*latency_us=*/0,
                           /*row_cost_ns=*/0);
  const std::string url = fleet.Url("postgres", /*compile_us_override=*/0);

  // --- 1. accounting overhead A/B ----------------------------------------
  // The inner a×b join materializes |edges|^2 rows, every one charged in
  // 32 KiB flushes through connection → database → server scopes; the
  // fused outer COUNT streams |edges|^3 rows through the governor tick.
  const std::string join3 =
      "SELECT COUNT(*) FROM edges AS a, edges AS b, edges AS c";
  auto& db = *fleet.server().FindDatabase("postgres");
  const auto time_arm = [&](bool governance_on) {
    db.set_governance_enabled(governance_on);
    // The toggle binds at connection open; each arm gets fresh ones.
    auto conn = dbc::DriverManager::GetConnection(url);
    int64_t checksum = 0;
    checksum += conn->ExecuteQuery(join3).rows[0][0].as_int();  // warm-up
    double best = 0;
    for (int64_t r = 0; r < rounds; ++r) {
      const Stopwatch watch;
      for (int64_t i = 0; i < reps; ++i) {
        checksum += conn->ExecuteQuery(join3).rows[0][0].as_int();
      }
      const double seconds = watch.ElapsedSeconds();
      if (r == 0 || seconds < best) best = seconds;
    }
    return std::pair<double, int64_t>(best, checksum);
  };
  const auto [off_seconds, off_sum] = time_arm(false);
  const auto [on_seconds, on_sum] = time_arm(true);
  db.set_governance_enabled(true);
  const bool bit_identical = on_sum == off_sum;
  const double overhead_pct =
      off_seconds > 0 ? (on_seconds - off_seconds) / off_seconds * 100.0 : 0;
  std::cout << "accounting A/B (" << reps << " reps, best of " << rounds
            << "):\n"
            << std::fixed << std::setprecision(4)              //
            << "  accounting off  " << off_seconds << " s\n"  //
            << "  accounting on   " << on_seconds << " s\n"
            << "  overhead        " << std::setprecision(2) << overhead_pct
            << " %\n\n";

  // --- 2. shed-mode admission latency ------------------------------------
  // A 1-byte soft watermark keeps the server permanently shedding (the
  // loaded edge table alone crosses it); every Submit must bounce with
  // AdmissionError, and fast — shedding exists to protect an overloaded
  // server, so the rejection path must not queue, plan, or block.
  server::JobServerConfig config;
  config.url = url;
  config.worker_threads = 2;
  config.soft_memory_limit_bytes = 1;
  config.retry_after_ms = 50;
  server::JobServer server(config);
  server::Session session = server.OpenSession("tenant");
  std::vector<double> shed_ms;
  shed_ms.reserve(static_cast<size_t>(shed_tries));
  int64_t admitted = 0;
  for (int64_t i = 0; i < shed_tries; ++i) {
    const Stopwatch watch;
    try {
      session.Submit("SELECT COUNT(*) FROM edges", core::SqloopOptions{});
      ++admitted;
    } catch (const server::AdmissionError&) {
    }
    shed_ms.push_back(watch.ElapsedSeconds() * 1000.0);
  }
  std::sort(shed_ms.begin(), shed_ms.end());
  const double shed_p50 = Percentile(shed_ms, 0.50);
  const double shed_p99 = Percentile(shed_ms, 0.99);
  std::cout << "shed-mode admission (" << shed_tries << " tries):\n"
            << "  p50  " << std::setprecision(4) << shed_p50 << " ms\n"
            << "  p99  " << shed_p99 << " ms\n"
            << "  admitted (must be 0)  " << admitted << "\n\n";

  // Bars: accounting costs <3%, never changes an answer, and shed mode
  // rejects everything it sees without meaningful latency.
  const bool pass =
      overhead_pct < 3.0 && bit_identical && admitted == 0 && shed_p99 < 5.0;

  std::ofstream json(json_path);
  json << std::setprecision(6) << std::fixed;
  json << "{\n  \"accounting\": {\"reps\": " << reps
       << ", \"rounds\": " << rounds
       << ", \"on_seconds\": " << on_seconds
       << ", \"off_seconds\": " << off_seconds
       << ", \"overhead_pct\": " << std::setprecision(3) << overhead_pct
       << ", \"bit_identical\": " << (bit_identical ? "true" : "false")
       << "},\n"
       << "  \"shed\": {\"tries\": " << shed_tries
       << ", \"p50_ms\": " << shed_p50 << ", \"p99_ms\": " << shed_p99
       << ", \"admitted\": " << admitted << "},\n"
       << "  \"peak_rss_bytes\": " << bench::PeakRssBytes() << ",\n"
       << "  \"pass\": " << (pass ? "true" : "false") << "\n}\n";
  std::cout << "acceptance (<3% overhead, bit-identical, shed p99 < 5ms): "
            << (pass ? "PASS" : "FAIL") << "\nwrote " << json_path << "\n";
  return pass ? 0 : 1;
}
