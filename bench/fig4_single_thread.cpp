// Figure 4 reproduction — "SQLoop using a single thread".
//
// Three panels per the paper:
//   (a) SSSP execution time bars: Sync / Async / AsyncP per engine.
//   (b) PR convergence (sum of rank) over time, per engine.
//   (c) DQ execution time vs number of nodes explored, per engine.
//
// Laptop-scale defaults; export SQLOOP_BENCH_* to scale up (see README).
//   SQLOOP_BENCH_PR_NODES, SQLOOP_BENCH_PR_ITERS, SQLOOP_BENCH_PARTITIONS,
//   SQLOOP_BENCH_SSSP_CIRCLES, SQLOOP_BENCH_DQ_HOSTS, ...
#include <iomanip>

#include "bench/bench_util.h"
#include "graph/generators.h"

using namespace sqloop;
using namespace sqloop::bench;

namespace {

constexpr core::ExecutionMode kModes[] = {core::ExecutionMode::kSync,
                                          core::ExecutionMode::kAsync,
                                          core::ExecutionMode::kAsyncPriority};

void RunSssp(int unused_default) {
  // The traversal panels pick partition counts proportional to their
  // dataset sizes (the paper's fixed 256 partitions on multi-million-edge
  // graphs corresponds to hundreds of rows per partition).
  const int partitions = static_cast<int>(Knob("SSSP_PARTITIONS", 48));
  (void)unused_default;
  // Sparse, long-path ego-net: SSSP touches a small frontier at a time,
  // which is where prioritized scheduling shines (paper §VI-B).
  // Directed ego-net (Twitter follower edges are directed): traversal
  // moves forward only, so the frontier stays sparse — the regime where
  // prioritized scheduling pays (paper §VI-B).
  const int64_t circles = Knob("SSSP_CIRCLES", 60);
  const int64_t circle_size = Knob("SSSP_CIRCLE_SIZE", 10);
  const graph::Graph g = graph::MakeEgoNetGraph(circles, circle_size, 0.35,
                                                42, /*bidirectional=*/false);
  const int64_t source = 1;
  const int64_t dest = (circles - 1) * circle_size + 1;
  EngineFleet fleet("fig4_sssp", g);

  std::cout << "--- Fig 4 (top-left): SSSP execution time, 1 SQLoop thread\n";
  std::cout << "dataset: ego-net stand-in for Twitter, " << g.NodeCount()
            << " nodes, " << g.edge_count() << " edges; source=" << source
            << " dest=" << dest << "\n";
  std::cout << "engine      mode    exec_time_s  rounds  skipped_tasks\n";
  for (const auto& engine : Engines()) {
    for (const auto mode : kModes) {
      const auto run = RunQuery(
          fleet.Url(engine), ModeOptions(mode, 1, partitions, "sssp"),
          core::workloads::SsspQuery(source, dest));
      std::cout << std::left << std::setw(12) << engine << std::setw(8)
                << ModeLabel(mode) << std::fixed << std::setprecision(3)
                << std::setw(13) << run.seconds << std::setw(8)
                << run.stats.iterations << run.stats.skipped_tasks << "\n";
      ResultLine("fig4_sssp")
          .Add("engine", engine)
          .Add("mode", ModeLabel(mode))
          .Add("seconds", run.seconds)
          .Add("rounds", run.stats.iterations)
          .Add("skipped_tasks",
               static_cast<int64_t>(run.stats.skipped_tasks))
          .Print();
    }
  }
  std::cout << "\n";
}

void RunPageRank(int unused_default) {
  const int partitions = static_cast<int>(Knob("PR_PARTITIONS", 16));
  (void)unused_default;
  const int64_t nodes = Knob("PR_NODES", 6000);
  const int64_t iters = Knob("PR_ITERS", 10);
  const graph::Graph g =
      graph::MakeWebGraph(nodes, 4, /*seed=*/7);
  EngineFleet fleet("fig4_pr", g);

  std::cout << "--- Fig 4 (top row): PR convergence (sum of rank) vs time, "
               "1 SQLoop thread, " << iters << " iterations\n";
  std::cout << "dataset: web-graph stand-in for web-Google, "
            << g.NodeCount() << " nodes, " << g.edge_count() << " edges\n";
  for (const auto& engine : Engines()) {
    std::cout << "[PR with " << engine << "]\n";
    for (const auto mode : kModes) {
      double total = 0;
      const auto samples = RunWithConvergenceSampling(
          fleet.Url(engine), ModeOptions(mode, 1, partitions, "pr"),
          core::workloads::PageRankQuery(iters), "PageRank",
          /*period_ms=*/50, &total);
      std::cout << "  " << std::left << std::setw(8) << ModeLabel(mode)
                << "total=" << std::fixed << std::setprecision(3) << total
                << "s  convergence:";
      for (const auto& p : samples) {
        std::cout << " (" << std::setprecision(2) << p.seconds << "s,"
                  << std::setprecision(1) << p.sum_of_rank << ")";
      }
      std::cout << "\n";
      ResultLine("fig4_pr")
          .Add("engine", engine)
          .Add("mode", ModeLabel(mode))
          .Add("seconds", total)
          .Add("samples", static_cast<int64_t>(samples.size()))
          .Print();
    }
  }
  std::cout << "\n";
}

void RunDescendant(int unused_default) {
  const int partitions = static_cast<int>(Knob("DQ_PARTITIONS", 8));
  (void)unused_default;
  const int64_t hosts = Knob("DQ_HOSTS", 60);
  const int64_t backbone = Knob("DQ_BACKBONE", 80);
  const graph::Graph g = graph::MakeHostGraph(hosts, 8, backbone, 11);
  EngineFleet fleet("fig4_dq", g);

  std::cout << "--- Fig 4 (bottom row): DQ execution time vs nodes "
               "explored, 1 SQLoop thread\n";
  std::cout << "dataset: host-graph stand-in for web-BerkStan, "
            << g.NodeCount() << " nodes, " << g.edge_count() << " edges\n";
  for (const auto& engine : Engines()) {
    std::cout << "[DQ with " << engine << "]\n";
    std::cout << "  mode    hops  nodes_explored  exec_time_s\n";
    for (const auto mode : kModes) {
      for (const int64_t hops :
           {int64_t{4}, int64_t{8}, int64_t{16}, int64_t{32}, backbone}) {
        const auto run = RunQuery(
            fleet.Url(engine), ModeOptions(mode, 1, partitions, "dq"),
            core::workloads::DescendantQueryBounded(0, hops));
        std::cout << "  " << std::left << std::setw(8) << ModeLabel(mode)
                  << std::setw(6) << hops << std::setw(16)
                  << run.result.rows.size() << std::fixed
                  << std::setprecision(3) << run.seconds << "\n";
        ResultLine("fig4_dq")
            .Add("engine", engine)
            .Add("mode", ModeLabel(mode))
            .Add("hops", hops)
            .Add("nodes_explored",
                 static_cast<int64_t>(run.result.rows.size()))
            .Add("seconds", run.seconds)
            .Print();
      }
    }
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "========================================================\n";
  std::cout << "Figure 4: Sync vs Async vs AsyncP with one SQLoop thread\n";
  std::cout << "(per-panel partition counts; see EXPERIMENTS.md)\n";
  std::cout << "========================================================\n\n";
  RunSssp(0);
  RunPageRank(0);
  RunDescendant(0);
  return 0;
}
