// micro_service — the job server under a multi-tenant burst.
//
// Four tenants with weights 1:1:2:4 submit 100+ iterative jobs (PageRank,
// SSSP, and bounded descendants, round-robin) at once against one shared
// JobServer: one worker pool, one backend, strict round interleaving
// (max_active_rounds = 1). Reported:
//
//   - job latency p50/p95/p99 (service-side: queue wait + run time),
//   - throughput over the whole burst,
//   - the weighted fairness ratio min(rounds/weight) / max(rounds/weight),
//     snapshotted at the last instant every tenant still had work in
//     flight (after that, finished tenants stop accruing by design),
//   - a bit-identity gate: every job's result must equal the solo run of
//     the same query — multiplexing must never change an answer.
//
// Writes a JSON baseline (default BENCH_service.json; --json <path>).
// Knobs: SQLOOP_BENCH_{SVC_JOBS,SVC_TENANTS,THREADS,PARTITIONS}.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "graph/generators.h"
#include "server/job_server.h"

namespace {

using namespace sqloop;
using bench::Knob;

std::vector<std::string> Canonical(const dbc::ResultSet& result) {
  std::vector<std::string> rows;
  rows.reserve(result.rows.size());
  for (const auto& row : result.rows) {
    std::string text;
    for (const auto& value : row) {
      text += value.ToString();
      text += '|';
    }
    rows.push_back(std::move(text));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0;
  const size_t index = std::min(
      sorted.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted.size() - 1)));
  return sorted[index];
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_service.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: micro_service [--json <path>]\n";
      return 2;
    }
  }

  const int64_t total_jobs = std::max<int64_t>(Knob("SVC_JOBS", 100), 1);
  const size_t tenants =
      static_cast<size_t>(std::max<int64_t>(Knob("SVC_TENANTS", 4), 1));
  const int threads = static_cast<int>(Knob("THREADS", 4));
  const int partitions = static_cast<int>(Knob("PARTITIONS", 8));

  const auto graph = graph::MakeWebGraph(60, 3, 7);
  // Latency/compile costs off: this measures the service layer (queueing,
  // scheduling, target serialization), not the modeled network.
  bench::EngineFleet fleet("service", graph, /*latency_us=*/0,
                           /*row_cost_ns=*/0);
  const std::string url = fleet.Url("postgres", /*compile_us_override=*/0);

  // Three distinct target relations, so jobs of different workloads can
  // genuinely run concurrently (same-target jobs serialize by design).
  const std::vector<std::string> queries = {
      core::workloads::PageRankQuery(6),
      core::workloads::SsspAllQuery(1),
      core::workloads::DescendantQueryBounded(0, 6),
  };
  core::SqloopOptions options;
  options.mode = core::ExecutionMode::kSync;
  options.threads = 2;
  options.partitions = partitions;

  // Solo references, one per workload: the bit-identity bar.
  std::vector<std::vector<std::string>> solo;
  for (const auto& query : queries) {
    core::SqLoop loop(url, options);
    solo.push_back(Canonical(loop.Execute(query)));
  }

  server::JobServerConfig config;
  config.url = url;
  config.worker_threads = threads;
  config.max_running_jobs = 4;
  config.max_active_rounds = 1;  // strict weighted interleaving
  config.queue_capacity = static_cast<size_t>(total_jobs) + tenants;
  config.max_inflight_per_tenant = static_cast<size_t>(total_jobs);
  config.history_limit = static_cast<size_t>(total_jobs) * 2;
  server::JobServer server(config);

  std::vector<std::string> tenant_names;
  std::vector<double> weights;
  std::vector<server::Session> sessions;
  for (size_t t = 0; t < tenants; ++t) {
    // 1, 1, 2, 4, 8, ... — equal-weight head, then doubling.
    const double weight = t < 2 ? 1.0 : std::pow(2.0, double(t - 1));
    tenant_names.push_back("tenant" + std::to_string(t));
    weights.push_back(weight);
    server::SessionOptions session_options;
    session_options.weight = weight;
    sessions.push_back(server.OpenSession(tenant_names[t], session_options));
  }

  // The fairness snapshot: rounds granted per tenant, re-sampled while
  // every tenant still has inflight work. Once a tenant drains, the
  // others rightly absorb its share, so only the all-backlogged window
  // speaks to weighted fairness.
  std::vector<uint64_t> fair_sample(tenants, 0);
  std::atomic<bool> sampling{true};
  std::thread sampler([&] {
    while (sampling.load()) {
      bool all_backlogged = true;
      for (const auto& name : tenant_names) {
        if (server.inflight(name) == 0) all_backlogged = false;
      }
      if (all_backlogged) {
        for (size_t t = 0; t < tenants; ++t) {
          fair_sample[t] = server.rounds_granted(tenant_names[t]);
        }
      }
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });

  // The burst: every tenant submits its share up front, round-robin over
  // the workloads, then everyone waits.
  const Stopwatch burst;
  std::vector<std::pair<server::JobHandle, size_t>> jobs;  // handle, workload
  for (int64_t i = 0; i < total_jobs; ++i) {
    const size_t tenant = static_cast<size_t>(i) % tenants;
    const size_t workload = static_cast<size_t>(i) % queries.size();
    jobs.emplace_back(sessions[tenant].Submit(queries[workload], options),
                      workload);
  }
  bool results_match = true;
  int64_t failed = 0;
  for (auto& [job, workload] : jobs) {
    try {
      if (Canonical(job.Wait()) != solo[workload]) results_match = false;
    } catch (const std::exception& e) {
      ++failed;
      std::cerr << "job failed: " << e.what() << "\n";
    }
  }
  const double total_seconds = burst.ElapsedSeconds();
  sampling.store(false);
  sampler.join();

  // Service-side latency per job: queue wait + run time from the ledger.
  std::vector<double> latencies;
  for (const auto& info : server.Jobs()) {
    latencies.push_back((info.queue_seconds + info.run_seconds) * 1000.0);
  }
  std::sort(latencies.begin(), latencies.end());
  const double p50 = Percentile(latencies, 0.50);
  const double p95 = Percentile(latencies, 0.95);
  const double p99 = Percentile(latencies, 0.99);

  double fair_min = 0;
  double fair_max = 0;
  for (size_t t = 0; t < tenants; ++t) {
    const double normalized =
        static_cast<double>(fair_sample[t]) / weights[t];
    if (t == 0 || normalized < fair_min) fair_min = normalized;
    if (t == 0 || normalized > fair_max) fair_max = normalized;
  }
  const double fairness = fair_max > 0 ? fair_min / fair_max : 0;

  const double throughput =
      total_seconds > 0 ? static_cast<double>(total_jobs) / total_seconds : 0;
  // Bars: answers must be bit-identical to solo, nothing may fail, and
  // the weighted shares must be within ~3x of each other mid-contention
  // (a deliberately loose bound — target serialization adds noise).
  const bool pass = results_match && failed == 0 && fairness >= 0.33;

  std::cout << total_jobs << " jobs, " << tenants << " tenants, "
            << "weights 1:1:2:4...:\n"
            << std::fixed << std::setprecision(2) << "  latency ms  p50 "
            << p50 << "  p95 " << p95 << "  p99 " << p99 << "\n"
            << "  throughput  " << throughput << " jobs/s over "
            << total_seconds << " s\n"
            << "  fairness    " << std::setprecision(3) << fairness
            << "  (min/max of rounds per weight, all-backlogged sample)\n"
            << "  identity    "
            << (results_match ? "bit-identical to solo" : "DIVERGED")
            << (failed > 0 ? "  FAILURES" : "") << "\n"
            << (pass ? "PASS" : "FAIL") << "\n";

  std::ofstream json(json_path);
  json << std::fixed << std::setprecision(4)
       << "{\n  \"benchmark\": \"micro_service\",\n"
       << "  \"jobs\": " << total_jobs << ",\n"
       << "  \"tenants\": " << tenants << ",\n"
       << "  \"p50_ms\": " << p50 << ",\n"
       << "  \"p95_ms\": " << p95 << ",\n"
       << "  \"p99_ms\": " << p99 << ",\n"
       << "  \"throughput_jobs_per_s\": " << throughput << ",\n"
       << "  \"total_seconds\": " << total_seconds << ",\n"
       << "  \"fairness_ratio\": " << fairness << ",\n"
       << "  \"results_match\": " << (results_match ? "true" : "false")
       << ",\n  \"failed_jobs\": " << failed << ",\n"
       << "  \"peak_rss_bytes\": " << bench::PeakRssBytes() << ",\n"
       << "  \"pass\": " << (pass ? "true" : "false") << "\n}\n";
  return pass ? 0 : 1;
}
