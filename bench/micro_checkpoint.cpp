// micro_checkpoint — the cost of durability.
//
// PageRank runs to convergence with checkpointing off, at cadence 5, and
// at cadence 1 (every round), in the single-thread and Sync modes. Each
// arm reports wall time, checkpoints written, and overhead relative to
// the checkpoint-free run; the acceptance bar is <10% overhead at
// cadence 5 under the modeled testbed latencies. The checkpointed arms'
// results must match the checkpoint-free arm — durability must never
// perturb the fixpoint.
//
// Writes a JSON baseline (default BENCH_checkpoint.json; --json <path>
// to move it). Knobs: SQLOOP_BENCH_{PR_NODES,PR_DEG,PR_ITERS,REPS,
// THREADS,PARTITIONS,LATENCY_US,ROW_COST_NS,COMPILE_US}.
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "graph/generators.h"

namespace {

using namespace sqloop;
using bench::Knob;

namespace fs = std::filesystem;

/// Sorted rows with a 1e-9 numeric tolerance for the parallel arms (bit
/// equality is demanded of the single-thread mode). Sync's gather order
/// is deterministic these days, but the checkpoint bench keeps the
/// repo-standard tolerance rather than re-pinning that invariant here.
bool Equivalent(const dbc::ResultSet& a, const dbc::ResultSet& b,
                double tolerance) {
  if (a.rows.size() != b.rows.size()) return false;
  const auto sorted = [](const dbc::ResultSet& rs) {
    auto rows = rs.rows;
    std::sort(rows.begin(), rows.end(), [](const auto& x, const auto& y) {
      return x.empty() || y.empty() ? x.size() < y.size()
                                    : x[0].ToString() < y[0].ToString();
    });
    return rows;
  };
  const auto lhs = sorted(a);
  const auto rhs = sorted(b);
  for (size_t i = 0; i < lhs.size(); ++i) {
    if (lhs[i].size() != rhs[i].size()) return false;
    for (size_t j = 0; j < lhs[i].size(); ++j) {
      const Value& x = lhs[i][j];
      const Value& y = rhs[i][j];
      if (x.is_numeric() && y.is_numeric()) {
        if (std::fabs(x.NumericAsDouble() - y.NumericAsDouble()) > tolerance) {
          return false;
        }
      } else if (x.ToString() != y.ToString()) {
        return false;
      }
    }
  }
  return true;
}

struct Arm {
  int64_t cadence = 0;  // 0 = checkpointing off
  double seconds = 0;
  uint64_t checkpoints = 0;
  dbc::ResultSet result;
};

struct ModeReport {
  const char* mode;
  std::vector<Arm> arms;  // off, cadence 5, cadence 1
  bool results_match = true;
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_checkpoint.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: micro_checkpoint [--json <path>]\n";
      return 2;
    }
  }

  const int64_t nodes = Knob("PR_NODES", 800);
  const int64_t deg = Knob("PR_DEG", 3);
  const int64_t iters = Knob("PR_ITERS", 20);
  const int64_t reps = Knob("REPS", 3);
  const int threads = static_cast<int>(Knob("THREADS", 4));
  const int partitions = static_cast<int>(Knob("PARTITIONS", 8));

  const auto graph = graph::MakeWebGraph(nodes, static_cast<int>(deg), 1);
  bench::EngineFleet fleet("checkpoint", graph);
  const std::string url = fleet.Url("postgres");
  const std::string query = core::workloads::PageRankQuery(iters);

  const std::string ckpt_root =
      (fs::temp_directory_path() /
       ("sqloop_bench_ckpt_" + std::to_string(::getpid())))
          .string();

  const core::ExecutionMode modes[] = {core::ExecutionMode::kSingleThread,
                                       core::ExecutionMode::kSync};
  const int64_t cadences[] = {0, 5, 1};

  std::vector<ModeReport> reports;
  for (const auto mode : modes) {
    ModeReport report{core::ExecutionModeName(mode), {}, true};
    for (const int64_t cadence : cadences) {
      Arm arm;
      arm.cadence = cadence;
      double best = 0;
      for (int64_t rep = 0; rep < reps; ++rep) {
        core::SqloopOptions options;
        options.mode = mode;
        options.threads = threads;
        options.partitions = partitions;
        options.checkpoint_every = cadence;
        if (cadence > 0) {
          // A fresh directory per rep: each run measures writing its own
          // checkpoints, never pruning a predecessor's.
          options.checkpoint_dir = ckpt_root + "/" +
                                   std::string(report.mode) + "_c" +
                                   std::to_string(cadence) + "_r" +
                                   std::to_string(rep);
        }
        core::SqLoop loop(url, options);
        const Stopwatch watch;
        auto result = loop.Execute(query);
        const double seconds = watch.ElapsedSeconds();
        if (rep == 0 || seconds < best) best = seconds;
        arm.checkpoints = loop.last_run().checkpoints_written;
        arm.result = std::move(result);
      }
      arm.seconds = best;
      report.arms.push_back(std::move(arm));
    }
    // Durability must not change the answer (exact for single-thread,
    // the repo-standard 1e-9 for Sync).
    const double tolerance =
        mode == core::ExecutionMode::kSingleThread ? 0.0 : 1e-9;
    for (size_t i = 1; i < report.arms.size(); ++i) {
      if (!Equivalent(report.arms[0].result, report.arms[i].result,
                      tolerance)) {
        report.results_match = false;
      }
    }
    reports.push_back(std::move(report));
  }
  std::error_code ec;
  fs::remove_all(ckpt_root, ec);

  bool pass = true;
  std::cout << "PageRank " << iters << " iterations, " << nodes
            << " nodes (best of " << reps << "):\n"
            << std::left << std::setw(14) << "mode" << std::right
            << std::setw(10) << "off" << std::setw(12) << "cadence5"
            << std::setw(12) << "cadence1" << std::setw(10) << "ovh5%"
            << std::setw(10) << "ovh1%" << "\n";
  std::ofstream json(json_path);
  json << "{\n  \"benchmark\": \"micro_checkpoint\",\n  \"workload\": "
       << "\"pagerank\",\n  \"nodes\": " << nodes
       << ",\n  \"iterations\": " << iters << ",\n  \"modes\": [\n";
  for (size_t m = 0; m < reports.size(); ++m) {
    const ModeReport& r = reports[m];
    const double off = r.arms[0].seconds;
    const auto overhead = [off](const Arm& arm) {
      return off > 0 ? (arm.seconds - off) / off * 100.0 : 0.0;
    };
    const double ovh5 = overhead(r.arms[1]);
    const double ovh1 = overhead(r.arms[2]);
    if (ovh5 >= 10.0) pass = false;
    if (!r.results_match) pass = false;
    std::cout << std::left << std::setw(14) << r.mode << std::right
              << std::fixed << std::setprecision(3) << std::setw(10) << off
              << std::setw(12) << r.arms[1].seconds << std::setw(12)
              << r.arms[2].seconds << std::setprecision(1) << std::setw(9)
              << ovh5 << "%" << std::setw(9) << ovh1 << "%"
              << (r.results_match ? "" : "  RESULTS DIVERGED") << "\n";
    json << "    {\"mode\": \"" << r.mode << "\", \"off_seconds\": "
         << std::setprecision(6) << off
         << ", \"cadence5_seconds\": " << r.arms[1].seconds
         << ", \"cadence1_seconds\": " << r.arms[2].seconds
         << ", \"checkpoints_cadence5\": " << r.arms[1].checkpoints
         << ", \"checkpoints_cadence1\": " << r.arms[2].checkpoints
         << ", \"overhead_cadence5_pct\": " << std::setprecision(2) << ovh5
         << ", \"overhead_cadence1_pct\": " << ovh1
         << ", \"results_match\": " << (r.results_match ? "true" : "false")
         << "}" << (m + 1 < reports.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"peak_rss_bytes\": " << bench::PeakRssBytes()
       << ",\n  \"pass\": " << (pass ? "true" : "false") << "\n}\n";
  std::cout << "\nacceptance (<10% overhead at cadence 5, results intact): "
            << (pass ? "PASS" : "FAIL") << "\nwrote " << json_path << "\n";
  return pass ? 0 : 1;
}
