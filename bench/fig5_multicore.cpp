// Figure 5 reproduction — scaling with the number of SQLoop worker
// threads (each thread owns one connection; the engine answers each
// connection independently, §V-B/§VI-C).
//
//   row 1: PR convergence time vs threads, per engine
//   row 2: SSSP execution time vs threads, per engine
//
// The paper sweeps 1..16 threads on 32 cores; default here is 1..8
// (override with SQLOOP_BENCH_MAX_THREADS).
#include <iomanip>

#include "bench/bench_util.h"
#include "graph/generators.h"

using namespace sqloop;
using namespace sqloop::bench;

namespace {

constexpr core::ExecutionMode kModes[] = {core::ExecutionMode::kSync,
                                          core::ExecutionMode::kAsync,
                                          core::ExecutionMode::kAsyncPriority};

std::vector<int> ThreadCounts() {
  const int max_threads = static_cast<int>(Knob("MAX_THREADS", 8));
  std::vector<int> counts;
  for (int t = 1; t <= max_threads; t *= 2) counts.push_back(t);
  return counts;
}

void Sweep(const std::string& label, const EngineFleet& fleet,
           const std::string& workload, const std::string& query,
           int partitions) {
  std::cout << "[" << label << "]\n";
  std::cout << "engine      mode    ";
  for (const int t : ThreadCounts()) std::cout << "t=" << t << "      ";
  std::cout << "\n";
  for (const auto& engine : Engines()) {
    for (const auto mode : kModes) {
      std::cout << std::left << std::setw(12) << engine << std::setw(8)
                << ModeLabel(mode);
      std::vector<std::pair<int, double>> row;
      for (const int threads : ThreadCounts()) {
        const auto run =
            RunQuery(fleet.Url(engine),
                     ModeOptions(mode, threads, partitions, workload), query);
        std::cout << std::fixed << std::setprecision(3) << std::setw(9)
                  << run.seconds;
        row.emplace_back(threads, run.seconds);
      }
      std::cout << "\n";
      for (const auto& [threads, seconds] : row) {
        ResultLine("fig5")
            .Add("panel", label)
            .Add("engine", engine)
            .Add("mode", ModeLabel(mode))
            .Add("threads", threads)
            .Add("seconds", seconds)
            .Print();
      }
    }
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  const int partitions = static_cast<int>(Knob("PARTITIONS", 16));
  std::cout << "========================================================\n";
  std::cout << "Figure 5: scaling with SQLoop worker threads "
               "(execution seconds)\n";
  std::cout << "========================================================\n\n";

  {
    const int64_t nodes = Knob("PR_NODES", 6000);
    const int64_t iters = Knob("PR_ITERS", 8);
    const graph::Graph g = graph::MakeWebGraph(nodes, 4, 7);
    EngineFleet fleet("fig5_pr", g);
    std::cout << "--- Fig 5 (row 1): PageRank, " << g.NodeCount()
              << " nodes, " << g.edge_count() << " edges, " << iters
              << " iterations\n";
    Sweep("PR", fleet, "pr", core::workloads::PageRankQuery(iters),
          partitions);
  }
  {
    const int64_t circles = Knob("SSSP_CIRCLES", 40);
    const int64_t circle_size = Knob("SSSP_CIRCLE_SIZE", 12);
    const graph::Graph g =
        graph::MakeEgoNetGraph(circles, circle_size, 0.3, 3);
    EngineFleet fleet("fig5_sssp", g);
    const int64_t dest = (circles - 1) * circle_size + 1;
    std::cout << "--- Fig 5 (row 2): SSSP, " << g.NodeCount() << " nodes, "
              << g.edge_count() << " edges\n";
    Sweep("SSSP", fleet, "sssp", core::workloads::SsspQuery(1, dest),
          partitions);
  }
  return 0;
}
