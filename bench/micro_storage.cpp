// micro_storage — the paged-storage / buffer-pool benchmark.
//
// Two measurements:
//   1. Hit-path overhead: the selective-scan micro of bench/micro_scan
//      (`SELECT COUNT(*), SUM(rank) FROM storage_state WHERE delta = 1`,
//      ~1% matching) timed against a resident vector-of-rows table
//      (paged=0) and against a paged table whose pool is unbounded, so
//      every access is a pool hit. The ratio is the pin/visit tax of the
//      slotted-page representation when nothing ever spills — the
//      regression CI gates at < 10%.
//   2. Bounded pool end to end: the same web graph loaded twice — once
//      resident, once paged with `buffer_pool_bytes` set to a quarter of
//      the table's tracked bytes — then PageRank in all four execution
//      modes on both. Results must match mode for mode (bit-identical
//      single-threaded, 1e-9-equivalent in the parallel modes whose FP
//      summation order is scheduling-dependent), CHECKSUM TABLE must
//      agree across representations, the run must actually evict, and
//      the pool's resident peak must stay near its budget. At paper
//      scale (`SQLOOP_BENCH_PR_NODES` sized so edges >= 7.6M, the SNAP
//      soc-LiveJournal row count) this is the fig4/fig5 setting with the
//      working set forced through the spill files.
//
// Latency, per-row cost, and compile cost are zeroed so storage CPU is
// what is being compared.
//
// Writes a JSON baseline (default BENCH_storage.json; --json <path> to
// move it) and sqlplot-tools `RESULT key=value ...` lines on stdout.
// Exit code is nonzero if the hit-path overhead reaches 10%, any
// paged/resident result pair diverges, the bounded run never evicts, or
// the pool's resident peak exceeds twice its budget.
//
// Knobs: SQLOOP_BENCH_{STORAGE_ROWS,STORAGE_REPS,POOL_BYTES,PR_NODES,
// PR_DEG,PR_ITERS,THREADS,PARTITIONS}.
#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "dbc/prepared_statement.h"
#include "graph/generators.h"

namespace {

using namespace sqloop;
using bench::Knob;

/// Row-set equality within the repo's 1e-9 numeric tolerance (parallel
/// modes only; single-threaded comparisons go through Dump below).
bool Equivalent(const dbc::ResultSet& a, const dbc::ResultSet& b) {
  if (a.rows.size() != b.rows.size()) return false;
  const auto sorted = [](const dbc::ResultSet& rs) {
    auto rows = rs.rows;
    std::sort(rows.begin(), rows.end(), [](const auto& x, const auto& y) {
      return x.empty() || y.empty() ? x.size() < y.size()
                                    : x[0].ToString() < y[0].ToString();
    });
    return rows;
  };
  const auto lhs = sorted(a);
  const auto rhs = sorted(b);
  for (size_t i = 0; i < lhs.size(); ++i) {
    if (lhs[i].size() != rhs[i].size()) return false;
    for (size_t j = 0; j < lhs[i].size(); ++j) {
      const Value& x = lhs[i][j];
      const Value& y = rhs[i][j];
      if (x.is_numeric() && y.is_numeric()) {
        if (std::fabs(x.NumericAsDouble() - y.NumericAsDouble()) > 1e-9) {
          return false;
        }
      } else if (x.ToString() != y.ToString()) {
        return false;
      }
    }
  }
  return true;
}

/// Order-preserving row dump (%.17g doubles — bit-faithful).
std::string Dump(const dbc::ResultSet& result) {
  std::string out;
  for (const auto& row : result.rows) {
    for (const auto& value : row) out += value.ToString() + "|";
    out += "\n";
  }
  return out;
}

struct ModeRun {
  const char* mode;
  double resident_seconds = 0;
  double paged_seconds = 0;
  bool match = true;
  double overhead() const {
    return resident_seconds > 0 ? paged_seconds / resident_seconds : 0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_storage.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: micro_storage [--json <path>]\n";
      return 2;
    }
  }

  const int64_t rows = Knob("STORAGE_ROWS", 200000);
  const int64_t reps = Knob("STORAGE_REPS", 60);
  // Defaults run PageRank to convergence: the async modes' intermediate
  // states are scheduling-dependent, so only converged ranks are
  // comparable within the 1e-9 tolerance (micro_scan sizes likewise).
  const int64_t nodes = Knob("PR_NODES", 600);
  const int64_t deg = Knob("PR_DEG", 4);
  const int64_t iters = Knob("PR_ITERS", 50);
  const int threads = static_cast<int>(Knob("THREADS", 4));
  const int partitions = static_cast<int>(Knob("PARTITIONS", 8));

  // A private host: the two arms need storage settings fixed *before*
  // their tables exist (tables latch eviction participation at creation),
  // which EngineFleet's load-at-construction can't express.
  minidb::Server server;
  dbc::DriverManager::RegisterHost("bench_storage", &server);
  auto resident_db = server.CreateDatabase(
      "resident", minidb::EngineProfile::ByName("postgres"));
  resident_db->set_paged_enabled(false);
  auto paged_db = server.CreateDatabase(
      "paged", minidb::EngineProfile::ByName("postgres"));
  const auto url = [](const std::string& db) {
    return "minidb://bench_storage/" + db +
           "?latency_us=0&row_cost_ns=0&compile_us=0";
  };

  // --- 1: hit-path overhead (unbounded pool, everything resident) --------
  const std::string probe =
      "SELECT COUNT(*), SUM(rank) FROM storage_state WHERE delta = 1";
  auto resident_conn = dbc::DriverManager::GetConnection(url("resident"));
  auto paged_conn = dbc::DriverManager::GetConnection(url("paged"));
  {
    // Both arms load interleaved, one batch at a time: loading one table
    // and then the other would give each a single contiguous allocator
    // region, and whichever one lands better in the TLB would skew the
    // overhead ratio by allocation luck rather than storage cost.
    const std::string ddl =
        "CREATE TABLE storage_state (id BIGINT PRIMARY KEY, "
        "rank DOUBLE PRECISION, delta BIGINT)";
    resident_conn->Execute(ddl);
    paged_conn->Execute(ddl);
    auto resident_insert =
        resident_conn->Prepare("INSERT INTO storage_state VALUES (?, ?, ?)");
    auto paged_insert =
        paged_conn->Prepare("INSERT INTO storage_state VALUES (?, ?, ?)");
    for (int64_t i = 0; i < rows; ++i) {
      for (dbc::PreparedStatement* insert :
           {&resident_insert, &paged_insert}) {
        insert->SetInt64(1, i);
        insert->SetDouble(2, 1.0 / static_cast<double>(i + 1));
        insert->SetInt64(3, i % 100 == 0 ? 1 : 0);
        insert->AddBatch();
      }
      if (i % 4096 == 4095) {
        resident_insert.ExecuteBatch();
        paged_insert.ExecuteBatch();
      }
    }
    resident_insert.ExecuteBatch();
    paged_insert.ExecuteBatch();
  }

  // The overhead ratio gates CI, and on a shared box whole-loop timings
  // swing by 10%+ as other work comes and goes. Each execution is timed
  // individually and each arm keeps its minimum: the min over reps x
  // trials ~1.7ms samples estimates the uncontended per-execution cost
  // and is nearly immune to preemption spikes. Arms alternate per trial
  // so slow minutes hit both equally.
  double resident_scan = 0;
  double paged_scan = 0;
  resident_conn->ExecuteQuery(probe);  // warm caches before timing
  paged_conn->ExecuteQuery(probe);
  const auto min_exec = [&](dbc::Connection& conn) {
    double best = 0;
    for (int64_t i = 0; i < reps; ++i) {
      const Stopwatch watch;
      conn.ExecuteQuery(probe);
      const double elapsed = watch.ElapsedSeconds();
      if (i == 0 || elapsed < best) best = elapsed;
    }
    return best;
  };
  for (int trial = 0; trial < 7; ++trial) {
    const double r = min_exec(*resident_conn);
    const double p = min_exec(*paged_conn);
    if (trial == 0 || r < resident_scan) resident_scan = r;
    if (trial == 0 || p < paged_scan) paged_scan = p;
  }
  const bool scans_identical = Dump(resident_conn->ExecuteQuery(probe)) ==
                               Dump(paged_conn->ExecuteQuery(probe));
  const double hit_overhead =
      resident_scan > 0 ? paged_scan / resident_scan : 0;
  const uint64_t hit_misses = paged_db->buffer_pool().stats().misses;

  std::cout << "hit path (" << rows << " rows, " << reps
            << " executions, unbounded pool):\n"
            << std::fixed << std::setprecision(4)
            << "  resident " << resident_scan << "s  paged " << paged_scan
            << "s  overhead " << std::setprecision(2)
            << (hit_overhead - 1.0) * 100.0 << "%  identical "
            << (scans_identical ? "yes" : "NO") << "\n\n";
  {
    bench::ResultLine line("micro_storage");
    line.Add("arm", "hit_path")
        .Add("rows", rows)
        .Add("reps", reps)
        .Add("resident_seconds", resident_scan)
        .Add("paged_seconds", paged_scan)
        .Add("overhead", hit_overhead)
        .Add("identical", scans_identical);
    line.Print();
  }
  resident_conn->Execute("DROP TABLE storage_state");
  paged_conn->Execute("DROP TABLE storage_state");

  // --- 2: bounded pool, PageRank in all four modes -----------------------
  const auto graph = graph::MakeWebGraph(nodes, static_cast<int>(deg), 7);
  graph::LoadEdges(*resident_conn, graph);
  const int64_t table_bytes =
      static_cast<int64_t>(resident_db->FindTable("edges")->tracked_bytes());
  // A quarter of the dataset: small enough that the working set cannot be
  // resident, large enough that the clock hand isn't thrashing one page.
  const int64_t pool_bytes =
      Knob("POOL_BYTES", std::max<int64_t>(table_bytes / 4, 64 << 10));
  paged_db->set_buffer_pool_bytes(pool_bytes);
  graph::LoadEdges(*paged_conn, graph);

  const std::string pr_query = core::workloads::PageRankQuery(iters);
  const std::vector<std::pair<const char*, core::ExecutionMode>> modes = {
      {"SingleThread", core::ExecutionMode::kSingleThread},
      {"Sync", core::ExecutionMode::kSync},
      {"Async", core::ExecutionMode::kAsync},
      {"AsyncP", core::ExecutionMode::kAsyncPriority},
  };

  std::vector<ModeRun> runs;
  std::cout << "bounded pool (" << graph.edges().size() << " edges, "
            << table_bytes << " table bytes, " << pool_bytes
            << " pool budget, PageRank " << iters << " iterations):\n"
            << std::left << std::setw(14) << "mode" << std::right
            << std::setw(12) << "resident" << std::setw(12) << "paged"
            << std::setw(11) << "overhead" << std::setw(8) << "match"
            << "\n";
  for (const auto& [label, mode] : modes) {
    ModeRun run;
    run.mode = label;
    const auto options = bench::ModeOptions(mode, threads, partitions, "pr");
    dbc::ResultSet results[2];
    const std::string urls[2] = {url("resident"), url("paged")};
    double* seconds[2] = {&run.resident_seconds, &run.paged_seconds};
    for (int arm = 0; arm < 2; ++arm) {
      double best = 0;
      for (int trial = 0; trial < 3; ++trial) {
        const auto timed = bench::RunQuery(urls[arm], options, pr_query);
        if (trial == 0 || timed.seconds < best) best = timed.seconds;
        results[arm] = timed.result;
      }
      *seconds[arm] = best;
    }
    // Single-threaded execution is deterministic: demand bit-identical
    // dumps. The parallel modes sum FP in scheduling order, so they get
    // the same 1e-9 tolerance the equivalence tests use.
    run.match = mode == core::ExecutionMode::kSingleThread
                    ? Dump(results[0]) == Dump(results[1])
                    : Equivalent(results[0], results[1]);
    std::cout << std::left << std::setw(14) << run.mode << std::right
              << std::fixed << std::setprecision(4) << std::setw(12)
              << run.resident_seconds << std::setw(12) << run.paged_seconds
              << std::setprecision(2) << std::setw(10) << run.overhead()
              << "x" << std::setw(8) << (run.match ? "yes" : "NO") << "\n";
    bench::ResultLine line("micro_storage");
    line.Add("arm", "bounded_pool")
        .Add("mode", run.mode)
        .Add("edges", static_cast<int64_t>(graph.edges().size()))
        .Add("pool_bytes", pool_bytes)
        .Add("resident_seconds", run.resident_seconds)
        .Add("paged_seconds", run.paged_seconds)
        .Add("overhead", run.overhead())
        .Add("match", run.match);
    line.Print();
    runs.push_back(run);
  }

  // The maintained content checksums must agree across representations.
  const bool checksums_match =
      resident_conn->ExecuteQuery("CHECKSUM TABLE edges").rows[0][1].as_text() ==
      paged_conn->ExecuteQuery("CHECKSUM TABLE edges").rows[0][1].as_text();

  const auto pool = paged_db->buffer_pool().stats();
  const bool evicted = pool.pages_evicted > 0 && pool.bytes_spilled > 0;
  // FaultIn evicts right after each residency increase, so the peak can
  // legitimately overshoot by in-flight pinned pages — but a peak past
  // 2x budget means the pool is not actually bounding the working set.
  const bool peak_bounded = pool.resident_peak <= 2 * pool_bytes;

  std::cout << "\npool: hits " << pool.hits << "  misses " << pool.misses
            << "  evicted " << pool.pages_evicted << "  spilled "
            << pool.bytes_spilled << " bytes  resident_peak "
            << pool.resident_peak << " (budget " << pool_bytes << ")\n";
  {
    bench::ResultLine line("micro_storage");
    line.Add("arm", "pool_stats")
        .Add("hits", pool.hits)
        .Add("misses", pool.misses)
        .Add("pages_evicted", pool.pages_evicted)
        .Add("bytes_spilled", pool.bytes_spilled)
        .Add("resident_peak", pool.resident_peak)
        .Add("pool_bytes", pool_bytes)
        .Add("peak_rss_bytes", bench::PeakRssBytes());
    line.Print();
  }

  bool results_match = scans_identical && checksums_match;
  for (const auto& run : runs) results_match &= run.match;
  const bool hit_fast = hit_overhead < 1.10;
  std::cout << "\nhit-path overhead < 10%: " << (hit_fast ? "yes" : "NO")
            << "\nall paged/resident results match: "
            << (results_match ? "yes" : "NO")
            << "\nbounded run evicted and spilled: "
            << (evicted ? "yes" : "NO")
            << "\nresident peak within 2x budget: "
            << (peak_bounded ? "yes" : "NO") << "\n";

  std::ofstream json(json_path);
  json << std::setprecision(6) << std::fixed;
  json << "{\n  \"hit_path\": {\"rows\": " << rows << ", \"reps\": " << reps
       << ", \"resident_seconds\": " << resident_scan
       << ", \"paged_seconds\": " << paged_scan
       << ", \"misses\": " << hit_misses
       << ", \"identical\": " << (scans_identical ? "true" : "false")
       << "},\n  \"bounded\": {\"edges\": " << graph.edges().size()
       << ", \"table_bytes\": " << table_bytes
       << ", \"pool_bytes\": " << pool_bytes
       << ", \"iterations\": " << iters << ", \"threads\": " << threads
       << ", \"partitions\": " << partitions << ", \"runs\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    const ModeRun& r = runs[i];
    json << "    {\"mode\": \"" << r.mode
         << "\", \"resident_seconds\": " << r.resident_seconds
         << ", \"paged_seconds\": " << r.paged_seconds
         << ", \"overhead\": " << r.overhead()
         << ", \"match\": " << (r.match ? "true" : "false") << "}"
         << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  json << "  ]},\n  \"pool\": {\"hits\": " << pool.hits
       << ", \"misses\": " << pool.misses
       << ", \"pages_evicted\": " << pool.pages_evicted
       << ", \"bytes_spilled\": " << pool.bytes_spilled
       << ", \"resident_peak\": " << pool.resident_peak << "}"
       << ",\n  \"hit_overhead\": " << hit_overhead
       << ",\n  \"checksums_match\": " << (checksums_match ? "true" : "false")
       << ",\n  \"floors\": {\"hit_overhead_max\": 1.10}"
       << ",\n  \"peak_rss_bytes\": " << bench::PeakRssBytes()
       << ",\n  \"results_match\": " << (results_match ? "true" : "false")
       << "\n}\n";
  std::cout << "wrote " << json_path << "\n";

  dbc::DriverManager::RegisterHost("bench_storage", nullptr);
  return hit_fast && results_match && evicted && peak_bounded ? 0 : 1;
}
