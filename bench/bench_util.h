// Shared plumbing for the figure-reproduction benchmarks: per-engine
// databases, dataset loading, timed SQLoop runs, and the convergence
// sampler of §VI-A ("we sampled the entire dataset using a separate
// thread every 5 seconds" — scaled down to our run times).
#pragma once

#include <sys/resource.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/stopwatch.h"
#include "core/sqloop.h"
#include "core/workloads.h"
#include "dbc/driver.h"
#include "graph/graph.h"
#include "graph/loader.h"
#include "minidb/server.h"
#include "telemetry/exporters.h"

namespace sqloop::bench {

inline const std::vector<std::string>& Engines() {
  static const std::vector<std::string> kEngines = {"postgres", "mysql",
                                                    "mariadb"};
  return kEngines;
}

/// Reads an integer knob from the environment (SQLOOP_BENCH_<NAME>),
/// falling back to the laptop-scale default. Export larger values to
/// approach paper scale.
inline int64_t Knob(const char* name, int64_t fallback) {
  const std::string var = std::string("SQLOOP_BENCH_") + name;
  if (const char* value = std::getenv(var.c_str())) {
    return std::atoll(value);
  }
  return fallback;
}

/// One sqlplot-tools style result line: `RESULT key=value key=value ...`.
/// Emitted alongside the BENCH_*.json baselines so plots can be driven
/// straight from captured stdout (sqlplot-tools IMPORT-DATA greps for the
/// RESULT prefix and treats each line as one measurement row).
class ResultLine {
 public:
  explicit ResultLine(const std::string& benchmark) {
    Add("bench", benchmark);
  }
  ResultLine& Add(const std::string& key, const std::string& value) {
    line_ += " " + key + "=" + value;
    return *this;
  }
  ResultLine& Add(const std::string& key, const char* value) {
    return Add(key, std::string(value));
  }
  ResultLine& Add(const std::string& key, int64_t value) {
    return Add(key, std::to_string(value));
  }
  ResultLine& Add(const std::string& key, uint64_t value) {
    return Add(key, std::to_string(value));
  }
  ResultLine& Add(const std::string& key, int value) {
    return Add(key, std::to_string(value));
  }
  ResultLine& Add(const std::string& key, bool value) {
    return Add(key, std::string(value ? "1" : "0"));
  }
  ResultLine& Add(const std::string& key, double value) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.6f", value);
    return Add(key, std::string(buffer));
  }
  /// Prints the accumulated line; the object stays usable, so a loop can
  /// clone a template line per row via copy construction.
  void Print(std::ostream& os = std::cout) const {
    os << "RESULT" << line_ << "\n";
  }

 private:
  std::string line_;
};

/// The process's peak resident set in bytes (getrusage; ru_maxrss is
/// KiB on Linux). Every BENCH_*.json records it alongside the timings so
/// baseline diffs catch memory regressions, not just slowdowns.
inline int64_t PeakRssBytes() {
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<int64_t>(usage.ru_maxrss) * 1024;
}

/// One registered host holding a database per engine profile, with the
/// same dataset loaded into each.
class EngineFleet {
 public:
  explicit EngineFleet(const std::string& tag, const graph::Graph& graph,
                       int64_t latency_us = -1, int64_t row_cost_ns = -1) {
    host_ = "bench_" + tag;
    // Defaults model the paper's testbed: a ~100us JDBC round trip and
    // ~2us of server work per row examined, overlapped across connections
    // (see DESIGN.md "Substitutions"). Override via env knobs.
    latency_us_ = latency_us >= 0 ? latency_us : Knob("LATENCY_US", 100);
    row_cost_ns_ = row_cost_ns >= 0 ? row_cost_ns : Knob("ROW_COST_NS", 3000);
    // ~150us of server-side parse+plan per compiled statement (a real
    // optimizer's cost, which the embedded parser radically undercosts).
    // Plan-cached and prepared executions skip it, like server PREPARE.
    compile_us_ = Knob("COMPILE_US", 150);
    dbc::DriverManager::RegisterHost(host_, &server_);
    // NO_PLAN_CACHE=1 ablates the iteration-aware plan cache fleet-wide,
    // so any benchmark can be A/B'd against the parse-per-statement world.
    const bool no_plan_cache = Knob("NO_PLAN_CACHE", 0) != 0;
    // NO_FUSED=1 routes every SELECT through the reference materializing
    // pipeline instead of the fused zero-copy one (same A/B idea).
    const bool no_fused = Knob("NO_FUSED", 0) != 0;
    // NO_GOVERNANCE=1 detaches memory accounting fleet-wide, for A/B'ing
    // the per-row charge hooks (bench/micro_governance does this per arm).
    const bool no_governance = Knob("NO_GOVERNANCE", 0) != 0;
    // NO_VECTORIZE=1 keeps fusion but drops the batched data plane, so the
    // vectorized kernels can be ablated independently of pipeline fusion.
    const bool no_vectorize = Knob("NO_VECTORIZE", 0) != 0;
    for (const auto& engine : Engines()) {
      auto db = server_.CreateDatabase(engine,
                                       minidb::EngineProfile::ByName(engine));
      if (no_plan_cache) db->plan_cache().set_enabled(false);
      if (no_fused) db->set_fused_enabled(false);
      if (no_governance) db->set_governance_enabled(false);
      if (no_vectorize) db->set_vectorized_enabled(false);
      auto conn = dbc::DriverManager::GetConnection(Url(engine));
      graph::LoadEdges(*conn, graph);
    }
  }
  ~EngineFleet() { dbc::DriverManager::RegisterHost(host_, nullptr); }

  /// The fleet's embedded server, for benchmarks that flip per-database
  /// engine toggles (e.g. fused on/off A/B runs) between measurements.
  minidb::Server& server() noexcept { return server_; }

  /// `compile_us_override` >= 0 replaces the fleet's modeled compile cost
  /// (e.g. 0 for a pure-CPU micro measurement).
  std::string Url(const std::string& engine,
                  int64_t compile_us_override = -1) const {
    const int64_t compile_us =
        compile_us_override >= 0 ? compile_us_override : compile_us_;
    return "minidb://" + host_ + "/" + engine +
           "?latency_us=" + std::to_string(latency_us_) +
           "&row_cost_ns=" + std::to_string(row_cost_ns_) +
           "&compile_us=" + std::to_string(compile_us);
  }

 private:
  minidb::Server server_;
  std::string host_;
  int64_t latency_us_ = 0;
  int64_t row_cost_ns_ = 0;
  int64_t compile_us_ = 0;
};

struct TimedRun {
  double seconds = 0;
  core::RunStats stats;
  dbc::ResultSet result;
};

inline core::SqloopOptions ModeOptions(core::ExecutionMode mode, int threads,
                                       int partitions,
                                       const std::string& workload) {
  core::SqloopOptions options;
  options.mode = mode;
  options.threads = threads;
  options.partitions = partitions;
  if (mode == core::ExecutionMode::kAsyncPriority) {
    if (workload == "pr") {
      options.priority_query = core::workloads::PageRankPriorityQuery();
      options.priority_descending = true;
    } else if (workload == "dq") {
      options.priority_query = core::workloads::DqPriorityQuery();
      options.priority_descending = false;
    } else {  // sssp
      options.priority_query = core::workloads::SsspPriorityQuery();
      options.priority_descending = false;
    }
  }
  return options;
}

/// Exports a run's telemetry when SQLOOP_BENCH_TELEMETRY asks for it:
///   summary       — human-readable per-round table on stderr
///   jsonl:<path>  — append the JSONL event stream to <path>
///   prom:<path>   — overwrite <path> with a Prometheus text snapshot
/// Unset (the default) costs nothing beyond one getenv per run.
inline void MaybeExportTelemetry(const core::RunStats& stats,
                                 const std::string& label) {
  const char* spec = std::getenv("SQLOOP_BENCH_TELEMETRY");
  if (spec == nullptr || stats.recorder == nullptr) return;
  const std::string value(spec);
  if (value == "summary") {
    std::cerr << "-- telemetry: " << label << "\n"
              << telemetry::Summary(*stats.recorder);
  } else if (value.starts_with("jsonl:")) {
    std::ofstream out(value.substr(6), std::ios::app);
    out << telemetry::JsonLines(*stats.recorder);
  } else if (value.starts_with("prom:")) {
    std::ofstream out(value.substr(5));
    out << telemetry::PrometheusSnapshot(*stats.recorder);
  } else {
    std::cerr << "SQLOOP_BENCH_TELEMETRY: unknown spec '" << value << "'\n";
  }
}

inline TimedRun RunQuery(const std::string& url,
                         const core::SqloopOptions& options,
                         const std::string& query) {
  core::SqLoop loop(url);
  Stopwatch watch;
  TimedRun run;
  run.result = loop.Execute(query, options);
  run.seconds = watch.ElapsedSeconds();
  run.stats = loop.last_run();
  MaybeExportTelemetry(run.stats, core::ExecutionModeName(options.mode));
  return run;
}

/// Convergence sample: (elapsed seconds, SUM(Rank) over the live view).
struct ConvergencePoint {
  double seconds;
  double sum_of_rank;
};

/// Runs the query on a worker thread while the caller's thread samples
/// SUM(rank) from the union view every `period_ms` (the paper's Fig. 4
/// methodology).
inline std::vector<ConvergencePoint> RunWithConvergenceSampling(
    const std::string& url, core::SqloopOptions options,
    const std::string& query, const std::string& view_name,
    int period_ms, double* total_seconds) {
  options.keep_result_tables = true;  // keep the view alive for sampling
  std::vector<ConvergencePoint> samples;
  std::atomic<bool> done{false};
  Stopwatch watch;

  std::thread runner([&] {
    core::SqLoop loop(url);
    loop.Execute(query, options);
    done.store(true);
  });

  auto sampler_conn = dbc::DriverManager::GetConnection(url);
  const std::string probe = "SELECT SUM(Rank) FROM " + view_name;
  while (!done.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(period_ms));
    try {
      const auto result = sampler_conn->ExecuteQuery(probe);
      if (!result.rows.empty() && result.rows[0][0].is_numeric()) {
        samples.push_back(
            {watch.ElapsedSeconds(), result.rows[0][0].NumericAsDouble()});
      }
    } catch (const Error&) {
      // View not created yet (or being torn down) — skip this sample.
    }
  }
  runner.join();
  if (total_seconds != nullptr) *total_seconds = watch.ElapsedSeconds();
  // Final sample after completion.
  try {
    const auto result = sampler_conn->ExecuteQuery(probe);
    if (!result.rows.empty() && result.rows[0][0].is_numeric()) {
      samples.push_back(
          {watch.ElapsedSeconds(), result.rows[0][0].NumericAsDouble()});
    }
  } catch (const Error&) {
  }
  return samples;
}

inline const char* ModeLabel(core::ExecutionMode mode) {
  switch (mode) {
    case core::ExecutionMode::kSingleThread:
      return "SingleThread";
    case core::ExecutionMode::kSync:
      return "Sync";
    case core::ExecutionMode::kAsync:
      return "Async";
    case core::ExecutionMode::kAsyncPriority:
      return "AsyncP";
  }
  return "?";
}

}  // namespace sqloop::bench
