// Ablation benchmarks for the design choices DESIGN.md calls out:
//   1. Rmjoin — materializing the constant part of the iterative join
//      (paper §V-B: "This optimization greatly improves the performance").
//   2. Partition count — the paper defaults to 256 "to take advantage of
//      the asynchronous techniques"; sweep shows the trade-off.
//   3. Statement batching — JDBC batch loading vs one round trip per row.
#include <iomanip>

#include "bench/bench_util.h"
#include "graph/generators.h"

using namespace sqloop;
using namespace sqloop::bench;

namespace {

void AblateRmjoin() {
  const graph::Graph g =
      graph::MakeWebGraph(Knob("PR_NODES", 4000), 4, 31);
  EngineFleet fleet("abl_rmjoin", g);
  const std::string query =
      core::workloads::PageRankQuery(Knob("PR_ITERS", 6));

  std::cout << "--- Ablation 1: Rmjoin materialization (PR, "
            << g.edge_count() << " edges, async, 8 threads)\n";
  std::cout << "engine      with_rmjoin  without   penalty\n";
  for (const auto& engine : Engines()) {
    auto options = ModeOptions(core::ExecutionMode::kAsync, 8, 8, "pr");
    options.materialize_constant_join = true;
    const double with = RunQuery(fleet.Url(engine), options, query).seconds;
    options.materialize_constant_join = false;
    const double without =
        RunQuery(fleet.Url(engine), options, query).seconds;
    std::cout << std::left << std::setw(12) << engine << std::fixed
              << std::setprecision(3) << std::setw(13) << with
              << std::setw(10) << without << std::setprecision(2)
              << without / with << "x\n";
  }
  std::cout << "\n";
}

void AblatePartitionCount() {
  const graph::Graph g =
      graph::MakeEgoNetGraph(40, 12, 0.3, 17);
  EngineFleet fleet("abl_parts", g);
  const int64_t dest = 39 * 12 + 1;
  const std::string query = core::workloads::SsspQuery(1, dest);

  std::cout << "--- Ablation 2: partition count (SSSP, async vs asyncP, "
               "4 threads)\n";
  std::cout << "partitions  async_s   asyncP_s  asyncP_skipped\n";
  for (const int partitions : {4, 16, 64}) {
    const auto async =
        RunQuery(fleet.Url("postgres"),
                 ModeOptions(core::ExecutionMode::kAsync, 4, partitions,
                             "sssp"),
                 query);
    const auto asyncp =
        RunQuery(fleet.Url("postgres"),
                 ModeOptions(core::ExecutionMode::kAsyncPriority, 4,
                             partitions, "sssp"),
                 query);
    std::cout << std::left << std::setw(12) << partitions << std::fixed
              << std::setprecision(3) << std::setw(10) << async.seconds
              << std::setw(10) << asyncp.seconds
              << asyncp.stats.skipped_tasks << "\n";
  }
  std::cout << "\n";
}

void AblateBatching() {
  const graph::Graph g = graph::MakeWebGraph(2000, 4, 9);
  EngineFleet fleet("abl_batch", g);  // loads once; we reload with options

  std::cout << "--- Ablation 3: statement batching during bulk load ("
            << g.edge_count() << " edges, 100us round trips)\n";
  std::cout << "batch_rows  seconds   round_trips\n";
  for (const size_t batch : {size_t{1}, size_t{50}, size_t{500}}) {
    auto conn = dbc::DriverManager::GetConnection(fleet.Url("postgres"));
    graph::LoadOptions options;
    options.batch_size = batch;
    options.create_indexes = false;
    Stopwatch watch;
    graph::LoadEdges(*conn, g, options);
    std::cout << std::left << std::setw(12) << batch << std::fixed
              << std::setprecision(3) << std::setw(10)
              << watch.ElapsedSeconds() << conn->stats().round_trips
              << "\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "========================================================\n";
  std::cout << "Ablations: Rmjoin, partition count, statement batching\n";
  std::cout << "========================================================\n\n";
  AblateRmjoin();
  AblatePartitionCount();
  AblateBatching();
  return 0;
}
