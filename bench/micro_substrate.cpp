// Micro-benchmarks for the substrate layers (google-benchmark): SQL
// parsing, join/aggregation execution per engine profile, DML throughput,
// recursive CTE evaluation, and connection round-trip overhead. These are
// not paper figures — they size the building blocks the figures rest on.
#include <benchmark/benchmark.h>

#include "core/workloads.h"
#include "dbc/driver.h"
#include "graph/generators.h"
#include "graph/loader.h"
#include "minidb/executor.h"
#include "minidb/server.h"
#include "sql/parser.h"
#include "sql/printer.h"

namespace {

using namespace sqloop;

void BM_ParsePageRankCte(benchmark::State& state) {
  const std::string query = core::workloads::PageRankQuery(100);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sql::ParseStatement(query));
  }
}
BENCHMARK(BM_ParsePageRankCte);

void BM_PrintParsedStatement(benchmark::State& state) {
  const auto stmt = sql::ParseStatement(core::workloads::PageRankQuery(100));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sql::PrintStatement(*stmt, Dialect::kMySql));
  }
}
BENCHMARK(BM_PrintParsedStatement);

class EngineFixtureBase {
 public:
  explicit EngineFixtureBase(const std::string& engine)
      : db_("bench", minidb::EngineProfile::ByName(engine)), exec_(db_) {
    exec_.ExecuteSql(
        "CREATE TABLE e (src BIGINT, dst BIGINT, w DOUBLE PRECISION)");
    exec_.ExecuteSql("CREATE INDEX e_src ON e (src)");
    exec_.ExecuteSql("CREATE INDEX e_dst ON e (dst)");
    const auto g = graph::MakeWebGraph(2000, 4, 3);
    for (const auto& edge : g.edges()) {
      exec_.ExecuteSql("INSERT INTO e VALUES (" + std::to_string(edge.src) +
                       "," + std::to_string(edge.dst) + "," +
                       Value(edge.weight).ToSqlLiteral() + ")");
    }
  }

  minidb::Database db_;
  minidb::Executor exec_;
};

void BM_JoinAggregate(benchmark::State& state, const std::string& engine) {
  EngineFixtureBase fixture(engine);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.exec_.ExecuteSql(
        "SELECT a.dst, SUM(b.w) FROM e AS a JOIN e AS b ON a.dst = b.src "
        "GROUP BY a.dst"));
  }
}
BENCHMARK_CAPTURE(BM_JoinAggregate, postgres, "postgres")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_JoinAggregate, mysql, "mysql")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_JoinAggregate, mariadb, "mariadb")
    ->Unit(benchmark::kMillisecond);

void BM_GroupByAggregate(benchmark::State& state, const std::string& engine) {
  EngineFixtureBase fixture(engine);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.exec_.ExecuteSql(
        "SELECT src, COUNT(*), SUM(w), AVG(w) FROM e GROUP BY src"));
  }
}
BENCHMARK_CAPTURE(BM_GroupByAggregate, postgres, "postgres")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_GroupByAggregate, mysql, "mysql")
    ->Unit(benchmark::kMillisecond);

void BM_UpdateFromSubquery(benchmark::State& state) {
  minidb::Database db("bench", minidb::EngineProfile::Canonical());
  minidb::Executor exec(db);
  exec.ExecuteSql("CREATE TABLE r (id BIGINT PRIMARY KEY, d DOUBLE)");
  exec.ExecuteSql("CREATE TABLE m (id BIGINT, v DOUBLE)");
  for (int i = 0; i < 2000; ++i) {
    exec.ExecuteSql("INSERT INTO r VALUES (" + std::to_string(i) + ", 0.0)");
    exec.ExecuteSql("INSERT INTO m VALUES (" + std::to_string(i) + ", 0.5)");
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec.ExecuteSql(
        "UPDATE r SET d = r.d + s.v FROM (SELECT id, SUM(v) AS v FROM m "
        "GROUP BY id) AS s WHERE r.id = s.id"));
  }
}
BENCHMARK(BM_UpdateFromSubquery)->Unit(benchmark::kMillisecond);

void BM_RecursiveCte(benchmark::State& state) {
  minidb::Database db("bench", minidb::EngineProfile::Postgres());
  minidb::Executor exec(db);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec.ExecuteSql(
        "WITH RECURSIVE f (n, pn) AS (VALUES (0, 1) UNION ALL "
        "SELECT n + pn, n FROM f WHERE n < 100000) SELECT COUNT(*) FROM f"));
  }
}
BENCHMARK(BM_RecursiveCte);

void BM_ConnectionRoundTrip(benchmark::State& state) {
  static minidb::Server server;
  static bool initialized = [] {
    dbc::DriverManager::RegisterHost("bench_rt", &server);
    server.CreateDatabase("db", minidb::EngineProfile::Postgres());
    return true;
  }();
  (void)initialized;
  auto conn = dbc::DriverManager::GetConnection(
      "minidb://bench_rt/db?latency_us=" + std::to_string(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(conn->ExecuteQuery("SELECT 1"));
  }
}
BENCHMARK(BM_ConnectionRoundTrip)->Arg(0)->Arg(100)->Arg(500);

void BM_BatchedInsertVsSingle(benchmark::State& state) {
  static minidb::Server server;
  static bool initialized = [] {
    dbc::DriverManager::RegisterHost("bench_batch", &server);
    server.CreateDatabase("db", minidb::EngineProfile::Postgres());
    return true;
  }();
  (void)initialized;
  auto conn = dbc::DriverManager::GetConnection(
      "minidb://bench_batch/db?latency_us=100");
  conn->Execute("DROP TABLE IF EXISTS t");
  conn->Execute("CREATE UNLOGGED TABLE t (id BIGINT)");
  const bool batched = state.range(0) != 0;
  int64_t next = 0;
  for (auto _ : state) {
    if (batched) {
      for (int i = 0; i < 64; ++i) {
        conn->AddBatch("INSERT INTO t VALUES (" + std::to_string(next++) +
                       ")");
      }
      conn->ExecuteBatch();
    } else {
      for (int i = 0; i < 64; ++i) {
        conn->Execute("INSERT INTO t VALUES (" + std::to_string(next++) +
                      ")");
      }
    }
  }
}
BENCHMARK(BM_BatchedInsertVsSingle)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
