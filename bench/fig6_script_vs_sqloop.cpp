// Figure 6 reproduction — hand-written SQL scripts vs SQLoop.
//
//   left:  PR convergence time, script vs Sync/Async/AsyncP (multi-thread)
//   right: DQ "how many clicks between two pages 100 clicks apart",
//          script vs Sync/Async/AsyncP
//
// The script baseline runs the equivalent statement sequence on a single
// connection with none of SQLoop's optimizations (§VI-D). Also prints the
// script-size comparison the paper reports (200+ lines vs 20-25).
#include <iomanip>

#include "bench/bench_util.h"
#include "core/script_gen.h"
#include "graph/generators.h"
#include "sql/parser.h"

using namespace sqloop;
using namespace sqloop::bench;

namespace {

constexpr core::ExecutionMode kModes[] = {core::ExecutionMode::kSync,
                                          core::ExecutionMode::kAsync,
                                          core::ExecutionMode::kAsyncPriority};

double RunScript(const std::string& url, const std::string& query) {
  auto conn = dbc::DriverManager::GetConnection(url);
  const auto stmt = sql::ParseStatement(query);
  core::RunStats stats;
  core::SqloopOptions options;
  Stopwatch watch;
  core::RunScriptBaseline(*conn, stmt->with, options, stats);
  return watch.ElapsedSeconds();
}

void Compare(const std::string& label, const EngineFleet& fleet,
             const std::string& workload, const std::string& query,
             int threads, int partitions) {
  std::cout << "[" << label << "]\n";
  std::cout << "engine      SQL_script  Sync     Async    AsyncP   (seconds)\n";
  for (const auto& engine : Engines()) {
    std::cout << std::left << std::setw(12) << engine;
    std::vector<std::pair<std::string, double>> row;
    row.emplace_back("SQL_script", RunScript(fleet.Url(engine), query));
    std::cout << std::fixed << std::setprecision(3) << std::setw(12)
              << row.back().second;
    for (const auto mode : kModes) {
      const auto run =
          RunQuery(fleet.Url(engine),
                   ModeOptions(mode, threads, partitions, workload), query);
      std::cout << std::setw(9) << run.seconds;
      row.emplace_back(ModeLabel(mode), run.seconds);
    }
    std::cout << "\n";
    for (const auto& [mode, seconds] : row) {
      ResultLine("fig6")
          .Add("panel", label)
          .Add("engine", engine)
          .Add("mode", mode)
          .Add("seconds", seconds)
          .Print();
    }
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  const int partitions = static_cast<int>(Knob("PARTITIONS", 8));
  const int threads = static_cast<int>(Knob("THREADS", 12));
  std::cout << "========================================================\n";
  std::cout << "Figure 6: SQL scripts vs SQLoop (threads=" << threads
            << ")\n";
  std::cout << "========================================================\n\n";

  {
    const int64_t nodes = Knob("PR_NODES", 8000);
    const int64_t iters = Knob("PR_ITERS", 10);
    const graph::Graph g = graph::MakeWebGraph(nodes, 4, 15);
    EngineFleet fleet("fig6_pr", g);
    std::cout << "--- Fig 6 (left): PR, " << g.NodeCount() << " nodes, "
              << g.edge_count() << " edges, " << iters << " iterations\n";
    Compare("PR", fleet, "pr", core::workloads::PageRankQuery(iters),
            threads, partitions);
  }
  {
    const int64_t backbone = Knob("DQ_BACKBONE", 100);
    const graph::Graph g = graph::MakeHostGraph(80, 10, backbone, 23);
    EngineFleet fleet("fig6_dq", g);
    // Two pages exactly 100 clicks apart: backbone nodes 0 and 100.
    std::cout << "--- Fig 6 (right): DQ between two pages " << backbone
              << " clicks apart, " << g.NodeCount() << " nodes, "
              << g.edge_count() << " edges\n";
    Compare("DQ", fleet, "dq",
            core::workloads::DescendantQueryBounded(0, backbone), threads,
            partitions);
  }

  // The productivity claim (§VI-D): script vs iterative CTE size.
  const auto stmt = sql::ParseStatement(core::workloads::PageRankQuery(100));
  const std::string script = core::GenerateIterativeScript(
      stmt->with, Dialect::kPostgres, 100);
  const std::string cte = core::workloads::PageRankQuery(100);
  std::cout << "--- SQL-script productivity comparison (100 iterations of "
               "PR):\n";
  std::cout << "hand-written script: "
            << std::count(script.begin(), script.end(), '\n')
            << " lines; iterative CTE: about 20 lines ("
            << cte.size() << " characters on one line)\n";
  return 0;
}
