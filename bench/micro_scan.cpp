// micro_scan — the fused-pipeline / vectorized-scan benchmark.
//
// Three measurements, each across three engine configurations —
// vectorized (batched data plane, the default), fused (row-at-a-time
// fused pipeline, set_vectorized_enabled(false)), and reference (the
// materializing pipeline, set_fused_enabled(false)):
//   1. Selective scan micro: a Compute-shaped aggregate (`SELECT COUNT(*),
//      SUM(rank) FROM scan_state WHERE delta = 1` with ~1% of rows
//      matching) over a SCAN_ROWS-row state table, executed SCAN_REPS
//      times. The vectorized path compiles the predicate into a kernel
//      over 1024-row batches and bulk-feeds the aggregates; the fused
//      path streams borrowed views row by row; the reference path copies
//      the whole table into an intermediate Relation first. This is the
//      statement shape of a delta-selective termination probe.
//   2. Index probe micro: the same statement after CREATE INDEX on
//      `delta` — all paths probe the index, so the remaining gap is the
//      per-row versus per-batch overhead on the matching rows.
//   3. End to end per engine profile: PageRank in the Fig. 4
//      single-thread setting and the Fig. 5 multicore modes (Sync,
//      Async, AsyncPriority), plus the Fig. 6 Descendant Query in Sync
//      mode. Results must agree within the repo's 1e-9 numeric tolerance
//      (parallel-mode FP summation order is timing-dependent); the
//      pipeline must never change answers.
//
// Latency, per-row cost, and compile cost are zeroed so real executor
// CPU is what is being compared.
//
// Writes a JSON baseline (default BENCH_scan.json; --json <path> to
// move it). Exit code is nonzero if the selective-scan vectorized/fused
// speedup falls under 3x, the fused/reference speedup falls under 2x, or
// any result pair diverges. ci.sh additionally gates against the floors
// recorded in the committed baseline.
//
// Knobs: SQLOOP_BENCH_{SCAN_ROWS,SCAN_REPS,PR_NODES,PR_DEG,PR_ITERS,
// THREADS,PARTITIONS}; SQLOOP_BENCH_NO_VECTORIZE=1 ablates the batch
// plane fleet-wide (the vectorized arm then re-measures the fused path).
#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "dbc/prepared_statement.h"
#include "graph/generators.h"

namespace {

using namespace sqloop;
using bench::Knob;

/// Row-set equality within the repo's 1e-9 numeric tolerance (the same
/// tolerance the equivalence tests use for parallel modes, whose FP
/// summation order is timing-dependent run to run).
bool Equivalent(const dbc::ResultSet& a, const dbc::ResultSet& b) {
  if (a.rows.size() != b.rows.size()) return false;
  const auto sorted = [](const dbc::ResultSet& rs) {
    auto rows = rs.rows;
    std::sort(rows.begin(), rows.end(), [](const auto& x, const auto& y) {
      return x.empty() || y.empty() ? x.size() < y.size()
                                    : x[0].ToString() < y[0].ToString();
    });
    return rows;
  };
  const auto lhs = sorted(a);
  const auto rhs = sorted(b);
  for (size_t i = 0; i < lhs.size(); ++i) {
    if (lhs[i].size() != rhs[i].size()) return false;
    for (size_t j = 0; j < lhs[i].size(); ++j) {
      const Value& x = lhs[i][j];
      const Value& y = rhs[i][j];
      if (x.is_numeric() && y.is_numeric()) {
        if (std::fabs(x.NumericAsDouble() - y.NumericAsDouble()) > 1e-9) {
          return false;
        }
      } else if (x.ToString() != y.ToString()) {
        return false;
      }
    }
  }
  return true;
}

/// Order-preserving row dump (%.17g doubles — bit-faithful). Value's
/// operator== has SQL semantics (NULL == NULL is false), so identity
/// checks go through text.
std::string Dump(const dbc::ResultSet& result) {
  std::string out;
  for (const auto& row : result.rows) {
    for (const auto& value : row) out += value.ToString() + "|";
    out += "\n";
  }
  return out;
}

// Engine configurations, most to least optimized.
enum Config { kVectorized = 0, kFused = 1, kReference = 2 };
constexpr const char* kConfigNames[] = {"vectorized", "fused", "reference"};

/// Applies one configuration to a database (and restores the default when
/// called with kVectorized).
void ApplyConfig(minidb::Database& db, Config config) {
  db.set_fused_enabled(config != kReference);
  db.set_vectorized_enabled(config == kVectorized);
}

struct MicroArm {
  const char* name;
  double seconds[3] = {0, 0, 0};  // indexed by Config
  bool identical = true;          // three-way bit-identical dumps
  /// Batched over row-at-a-time fused — the tentpole number.
  double vectorized_speedup() const {
    return seconds[kVectorized] > 0 ? seconds[kFused] / seconds[kVectorized]
                                    : 0;
  }
  /// Row-at-a-time fused over materializing reference (the pre-existing
  /// floor, kept so the fused pipeline can't regress unnoticed).
  double fused_speedup() const {
    return seconds[kFused] > 0 ? seconds[kReference] / seconds[kFused] : 0;
  }
};

struct ModeResult {
  const char* figure;
  const char* workload;
  std::string engine;
  const char* mode;
  double seconds[3] = {0, 0, 0};  // indexed by Config
  bool equivalent = true;
  double vectorized_speedup() const {
    return seconds[kVectorized] > 0 ? seconds[kFused] / seconds[kVectorized]
                                    : 0;
  }
  double fused_speedup() const {
    return seconds[kFused] > 0 ? seconds[kReference] / seconds[kFused] : 0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_scan.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: micro_scan [--json <path>]\n";
      return 2;
    }
  }

  const int64_t rows = Knob("SCAN_ROWS", 100000);
  const int64_t reps = Knob("SCAN_REPS", 50);
  // Defaults run PageRank to convergence: the async modes' intermediate
  // states are scheduling-dependent, so only converged ranks are
  // comparable within the 1e-9 tolerance (micro_prepare sizes likewise).
  const int64_t nodes = Knob("PR_NODES", 600);
  const int64_t deg = Knob("PR_DEG", 4);
  const int64_t iters = Knob("PR_ITERS", 50);
  const int threads = static_cast<int>(Knob("THREADS", 4));
  const int partitions = static_cast<int>(Knob("PARTITIONS", 8));

  // Zero latency / zero row cost / zero compile: executor CPU is the
  // variable here, not the modeled server round trips.
  const auto graph = graph::MakeWebGraph(nodes, static_cast<int>(deg), 7);
  bench::EngineFleet fleet("scan", graph, /*latency_us=*/0,
                           /*row_cost_ns=*/0);

  // --- 1 & 2: selective-scan and index-probe micros ----------------------
  auto conn = dbc::DriverManager::GetConnection(
      fleet.Url("postgres", /*compile_us_override=*/0));
  auto db = fleet.server().FindDatabase("postgres");
  conn->Execute(
      "CREATE TABLE scan_state (id BIGINT PRIMARY KEY, "
      "rank DOUBLE PRECISION, delta BIGINT)");
  {
    auto insert = conn->Prepare("INSERT INTO scan_state VALUES (?, ?, ?)");
    for (int64_t i = 0; i < rows; ++i) {
      insert.SetInt64(1, i);
      insert.SetDouble(2, 1.0 / static_cast<double>(i + 1));
      // ~1% of rows carry a live delta — the shape of a nearly converged
      // iterative state table.
      insert.SetInt64(3, i % 100 == 0 ? 1 : 0);
      insert.AddBatch();
      if (i % 4096 == 4095) insert.ExecuteBatch();
    }
    insert.ExecuteBatch();
  }

  const std::string probe =
      "SELECT COUNT(*), SUM(rank) FROM scan_state WHERE delta = 1";
  const auto run_arm = [&](const char* name) {
    MicroArm arm;
    arm.name = name;
    dbc::ResultSet results[3];
    for (const Config config : {kVectorized, kFused, kReference}) {
      ApplyConfig(*db, config);
      conn->ExecuteQuery(probe);  // warm caches before timing
      // Best of three timed rep-loops: the speedup ratios gate CI, so
      // one descheduled trial must not masquerade as a perf regression.
      double best = 0;
      dbc::ResultSet last;
      for (int trial = 0; trial < 3; ++trial) {
        const Stopwatch watch;
        for (int64_t i = 0; i < reps; ++i) last = conn->ExecuteQuery(probe);
        const double elapsed = watch.ElapsedSeconds();
        if (trial == 0 || elapsed < best) best = elapsed;
      }
      arm.seconds[config] = best;
      results[config] = std::move(last);
    }
    ApplyConfig(*db, kVectorized);
    // The selective scan is single-threaded and deterministic: all three
    // pipelines must agree bit for bit, not just within tolerance.
    arm.identical = Dump(results[kVectorized]) == Dump(results[kFused]) &&
                    Dump(results[kFused]) == Dump(results[kReference]);
    return arm;
  };

  std::vector<MicroArm> arms;
  arms.push_back(run_arm("selective_scan"));
  conn->Execute("CREATE INDEX scan_state_delta ON scan_state (delta)");
  arms.push_back(run_arm("index_probe"));
  conn->Execute("DROP TABLE scan_state");

  std::cout << "scan micro (" << rows << " rows, " << reps
            << " executions):\n"
            << std::left << std::setw(16) << "arm" << std::right
            << std::setw(12) << "vectorized" << std::setw(12) << "fused"
            << std::setw(12) << "reference" << std::setw(10) << "vec/fus"
            << std::setw(10) << "fus/ref" << std::setw(11) << "identical"
            << "\n";
  for (const auto& arm : arms) {
    std::cout << std::left << std::setw(16) << arm.name << std::right
              << std::fixed << std::setprecision(4) << std::setw(12)
              << arm.seconds[kVectorized] << std::setw(12)
              << arm.seconds[kFused] << std::setw(12)
              << arm.seconds[kReference] << std::setprecision(2)
              << std::setw(9) << arm.vectorized_speedup() << "x"
              << std::setw(9) << arm.fused_speedup() << "x" << std::setw(11)
              << (arm.identical ? "yes" : "NO") << "\n";
  }
  for (const auto& arm : arms) {
    bench::ResultLine("micro_scan")
        .Add("arm", arm.name)
        .Add("rows", rows)
        .Add("reps", reps)
        .Add("vectorized_seconds", arm.seconds[kVectorized])
        .Add("fused_seconds", arm.seconds[kFused])
        .Add("reference_seconds", arm.seconds[kReference])
        .Add("vectorized_speedup", arm.vectorized_speedup())
        .Add("fused_speedup", arm.fused_speedup())
        .Add("identical", arm.identical)
        .Print();
  }
  std::cout << "\n";

  // --- 3: end-to-end deltas, fused on vs off -----------------------------
  // One row per figure setting: PageRank single-thread (fig4) and in the
  // three multicore modes (fig5), Descendant Query in Sync mode (fig6).
  struct RunSpec {
    const char* figure;
    const char* workload;
    core::ExecutionMode mode;
    std::string query;
  };
  const std::string pr_query = core::workloads::PageRankQuery(iters);
  const std::vector<RunSpec> specs = {
      {"fig4", "pr", core::ExecutionMode::kSingleThread, pr_query},
      {"fig5", "pr", core::ExecutionMode::kSync, pr_query},
      {"fig5", "pr", core::ExecutionMode::kAsync, pr_query},
      {"fig5", "pr", core::ExecutionMode::kAsyncPriority, pr_query},
      {"fig6", "dq", core::ExecutionMode::kSync,
       core::workloads::DescendantQueryBounded(
           0, Knob("DQ_HOPS", 12))},
  };

  std::vector<ModeResult> mode_results;
  std::cout << "end to end (PageRank " << iters << " iterations, " << nodes
            << " nodes, " << threads << " threads):\n"
            << std::left << std::setw(6) << "fig" << std::setw(10)
            << "engine" << std::setw(14) << "workload/mode" << std::right
            << std::setw(12) << "vectorized" << std::setw(12) << "fused"
            << std::setw(12) << "reference" << std::setw(10) << "vec/fus"
            << std::setw(10) << "fus/ref" << std::setw(12) << "equivalent"
            << "\n";
  for (const auto& engine : bench::Engines()) {
    auto engine_db = fleet.server().FindDatabase(engine);
    for (const auto& spec : specs) {
      ModeResult row;
      row.figure = spec.figure;
      row.workload = spec.workload;
      row.engine = engine;
      row.mode = bench::ModeLabel(spec.mode);
      const std::string& query = spec.query;
      const auto options =
          bench::ModeOptions(spec.mode, threads, partitions, spec.workload);
      dbc::ResultSet results[3];
      for (const Config config : {kVectorized, kFused, kReference}) {
        ApplyConfig(*engine_db, config);
        // Best of three: end-to-end runs are short enough that scheduler
        // noise would otherwise swamp the per-mode delta.
        double best = 0;
        for (int trial = 0; trial < 3; ++trial) {
          const auto run = bench::RunQuery(fleet.Url(engine), options, query);
          if (trial == 0 || run.seconds < best) best = run.seconds;
          results[config] = run.result;
        }
        row.seconds[config] = best;
      }
      ApplyConfig(*engine_db, kVectorized);
      row.equivalent = Equivalent(results[kVectorized], results[kFused]) &&
                       Equivalent(results[kFused], results[kReference]);
      std::cout << std::left << std::setw(6) << row.figure << std::setw(10)
                << row.engine << std::setw(14)
                << (std::string(row.workload) + "/" + row.mode) << std::right
                << std::fixed << std::setprecision(4) << std::setw(12)
                << row.seconds[kVectorized] << std::setw(12)
                << row.seconds[kFused] << std::setw(12)
                << row.seconds[kReference] << std::setprecision(2)
                << std::setw(9) << row.vectorized_speedup() << "x"
                << std::setw(9) << row.fused_speedup() << "x" << std::setw(12)
                << (row.equivalent ? "yes" : "NO") << "\n";
      mode_results.push_back(std::move(row));
    }
  }
  for (const auto& r : mode_results) {
    bench::ResultLine("micro_scan")
        .Add("arm", "end_to_end")
        .Add("figure", r.figure)
        .Add("workload", r.workload)
        .Add("engine", r.engine)
        .Add("mode", r.mode)
        .Add("vectorized_seconds", r.seconds[kVectorized])
        .Add("fused_seconds", r.seconds[kFused])
        .Add("reference_seconds", r.seconds[kReference])
        .Add("equivalent", r.equivalent)
        .Print();
  }

  bool results_agree = true;
  for (const auto& arm : arms) results_agree &= arm.identical;
  for (const auto& row : mode_results) results_agree &= row.equivalent;
  // The batch plane must buy >= 3x on the selective scan over the
  // row-at-a-time fused path, which itself must keep >= 2x over the
  // materializing reference — unless the vectorized arm was ablated away.
  const bool ablated = Knob("NO_VECTORIZE", 0) != 0;
  const bool vectorized_fast =
      ablated || arms[0].vectorized_speedup() >= 3.0;
  const bool fused_fast = arms[0].fused_speedup() >= 2.0;
  std::cout << "\nselective-scan vectorized/fused speedup >= 3x: "
            << (vectorized_fast ? "yes" : (ablated ? "skipped" : "NO"))
            << "\nselective-scan fused/reference speedup >= 2x: "
            << (fused_fast ? "yes" : "NO")
            << "\nall results bit-identical/equivalent: "
            << (results_agree ? "yes" : "NO") << "\n";

  std::ofstream json(json_path);
  json << std::setprecision(6) << std::fixed;
  json << "{\n  \"micro\": {\"rows\": " << rows << ", \"reps\": " << reps
       << ", \"arms\": [\n";
  for (size_t i = 0; i < arms.size(); ++i) {
    const MicroArm& arm = arms[i];
    json << "    {\"arm\": \"" << arm.name << "\", \"vectorized_seconds\": "
         << arm.seconds[kVectorized] << ", \"fused_seconds\": "
         << arm.seconds[kFused] << ", \"reference_seconds\": "
         << arm.seconds[kReference] << ", \"vectorized_speedup\": "
         << arm.vectorized_speedup() << ", \"fused_speedup\": "
         << arm.fused_speedup() << ", \"bit_identical\": "
         << (arm.identical ? "true" : "false") << "}"
         << (i + 1 < arms.size() ? "," : "") << "\n";
  }
  json << "  ]},\n  \"end_to_end\": {\"nodes\": " << nodes
       << ", \"iterations\": " << iters << ", \"threads\": " << threads
       << ", \"partitions\": " << partitions << ", \"runs\": [\n";
  for (size_t i = 0; i < mode_results.size(); ++i) {
    const ModeResult& r = mode_results[i];
    json << "    {\"figure\": \"" << r.figure << "\", \"workload\": \""
         << r.workload << "\", \"engine\": \"" << r.engine
         << "\", \"mode\": \"" << r.mode
         << "\", \"vectorized_seconds\": " << r.seconds[kVectorized]
         << ", \"fused_seconds\": " << r.seconds[kFused]
         << ", \"reference_seconds\": " << r.seconds[kReference]
         << ", \"vectorized_speedup\": " << r.vectorized_speedup()
         << ", \"fused_speedup\": " << r.fused_speedup()
         << ", \"equivalent\": " << (r.equivalent ? "true" : "false") << "}"
         << (i + 1 < mode_results.size() ? "," : "") << "\n";
  }
  // The floors ci.sh gates future runs against (satellite of the
  // vectorized-execution PR): a fresh micro_scan run must not fall below
  // the committed baseline's floors.
  json << "  ]},\n  \"selective_scan_vectorized_speedup\": "
       << arms[0].vectorized_speedup()
       << ",\n  \"selective_scan_fused_speedup\": " << arms[0].fused_speedup()
       << ",\n  \"floors\": {\"vectorized_over_fused\": 3.0, "
          "\"fused_over_reference\": 2.0}"
       << ",\n  \"peak_rss_bytes\": " << bench::PeakRssBytes()
       << ",\n  \"results_agree\": " << (results_agree ? "true" : "false")
       << "\n}\n";
  std::cout << "wrote " << json_path << "\n";
  return vectorized_fast && fused_fast && results_agree ? 0 : 1;
}
