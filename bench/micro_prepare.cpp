// micro_prepare — the prepared-statement / plan-cache benchmark.
//
// Two measurements:
//   1. Statement level: the same query executed `PREP_REPS` times raw
//      (plan cache off, one parse per execution) vs through a prepared
//      handle (parse once, bind + execute per round). The probe is a fat
//      expression over a tiny table so compile cost is the variable —
//      the shape of a termination probe or delta-update statement, not a
//      full-table join.
//   2. End to end: PageRank for PR_ITERS iterations in all four execution
//      modes, cache on vs cache off. Results must be bit-identical
//      cache-on vs cache-off *within* each mode (across modes the
//      floating-point summation order legitimately differs; cross-mode
//      equivalence is covered by the equivalence test suite). Latency and
//      per-row cost are zeroed so the compile cost is what's being
//      compared.
//
// Writes a JSON baseline (default BENCH_prepare.json; --json <path> to
// move it). `--no-plan-cache` runs only the ablated arm, mirroring the
// SQLOOP_BENCH_NO_PLAN_CACHE fleet knob.
//
// Knobs: SQLOOP_BENCH_{PR_NODES,PR_DEG,PR_ITERS,PREP_REPS,THREADS,
// PARTITIONS}.
#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "dbc/prepared_statement.h"
#include "graph/generators.h"

namespace {

using namespace sqloop;
using bench::Knob;

std::string Canonical(const dbc::ResultSet& result) {
  std::vector<std::string> rows;
  rows.reserve(result.rows.size());
  for (const auto& row : result.rows) {
    std::string flat;
    for (const auto& value : row) flat += value.ToString() + "|";
    rows.push_back(std::move(flat));
  }
  std::sort(rows.begin(), rows.end());
  std::string out;
  for (const auto& row : rows) out += row + "\n";
  return out;
}

struct ModeResult {
  const char* mode;
  double on_seconds = 0;
  double off_seconds = 0;
  uint64_t on_parses = 0;
  uint64_t off_parses = 0;
  std::string on_rows;
  std::string off_rows;
  dbc::ResultSet on_result;
  dbc::ResultSet off_result;
};

/// Row-set equality within the repo's 1e-9 numeric tolerance (the same
/// tolerance the equivalence tests use for parallel modes, whose FP
/// summation order is timing-dependent run to run).
bool Equivalent(const dbc::ResultSet& a, const dbc::ResultSet& b) {
  if (a.rows.size() != b.rows.size()) return false;
  const auto sorted = [](const dbc::ResultSet& rs) {
    auto rows = rs.rows;
    std::sort(rows.begin(), rows.end(), [](const auto& x, const auto& y) {
      return x.empty() || y.empty() ? x.size() < y.size()
                                    : x[0].ToString() < y[0].ToString();
    });
    return rows;
  };
  const auto lhs = sorted(a);
  const auto rhs = sorted(b);
  for (size_t i = 0; i < lhs.size(); ++i) {
    if (lhs[i].size() != rhs[i].size()) return false;
    for (size_t j = 0; j < lhs[i].size(); ++j) {
      const Value& x = lhs[i][j];
      const Value& y = rhs[i][j];
      if (x.is_numeric() && y.is_numeric()) {
        if (std::fabs(x.NumericAsDouble() - y.NumericAsDouble()) > 1e-9) {
          return false;
        }
      } else if (x.ToString() != y.ToString()) {
        return false;
      }
    }
  }
  return true;
}

// A statement whose text is long (a flat sum of CASE terms — parser cost
// scales with text size) but whose execution touches only the handful of
// rows in `prep_probe`. This is the cost shape of SQLoop's per-round
// statements: nontrivial text, small working set.
std::string FatProbeSql(int terms) {
  std::string sql = "SELECT id, val";
  for (int i = 0; i < terms; ++i) {
    const std::string level = std::to_string(i + 2);
    sql += " + CASE WHEN id % " + level + " = 0 THEN val * 1.0" + level +
           " ELSE 0." + level + " END";
  }
  sql += " AS score FROM prep_probe WHERE id >= 0 ORDER BY id";
  return sql;
}

minidb::PlanCache& CacheOf(const std::string& url) {
  return dbc::DriverManager::GetConnection(url)->database().plan_cache();
}

}  // namespace

int main(int argc, char** argv) {
  bool only_ablation = false;
  std::string json_path = "BENCH_prepare.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--no-plan-cache") {
      only_ablation = true;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: micro_prepare [--no-plan-cache] [--json <path>]\n";
      return 2;
    }
  }

  const int64_t nodes = Knob("PR_NODES", 300);
  const int64_t deg = Knob("PR_DEG", 3);
  const int64_t iters = Knob("PR_ITERS", 50);
  const int64_t reps = Knob("PREP_REPS", 2000);
  const int threads = static_cast<int>(Knob("THREADS", 4));
  const int partitions = static_cast<int>(Knob("PARTITIONS", 8));

  const auto graph = graph::MakeWebGraph(nodes, static_cast<int>(deg), 1);
  // Zero latency / zero row cost: the compile path is the variable here.
  bench::EngineFleet fleet("prepare", graph, /*latency_us=*/0,
                           /*row_cost_ns=*/0);
  const std::string url = fleet.Url("postgres");

  // --- 1. statement-level: raw re-parse vs prepared handle ---------------
  const std::string probe = FatProbeSql(static_cast<int>(Knob("TERMS", 24)));
  double raw_seconds = 0;
  double prepared_seconds = 0;
  {
    // Pure-CPU measurement: the micro connection zeroes the modeled
    // compile cost, so the speedup below is real parse work saved.
    auto conn = dbc::DriverManager::GetConnection(
        fleet.Url("postgres", /*compile_us_override=*/0));
    conn->Execute("CREATE TABLE prep_probe (id BIGINT, val DOUBLE PRECISION)");
    conn->Execute(
        "INSERT INTO prep_probe VALUES (0, 0.25), (1, 0.5), (2, 0.75), "
        "(3, 1.0), (4, 1.25), (5, 1.5), (6, 1.75), (7, 2.0)");
    auto& cache = conn->database().plan_cache();
    cache.set_enabled(false);
    conn->ExecuteQuery(probe);  // warm both paths before timing
    {
      const Stopwatch watch;
      for (int64_t i = 0; i < reps; ++i) conn->ExecuteQuery(probe);
      raw_seconds = watch.ElapsedSeconds();
    }
    cache.set_enabled(true);
    {
      auto stmt = conn->Prepare(probe);
      stmt.ExecuteQuery();
      const Stopwatch watch;
      for (int64_t i = 0; i < reps; ++i) stmt.ExecuteQuery();
      prepared_seconds = watch.ElapsedSeconds();
    }
    conn->Execute("DROP TABLE prep_probe");
  }
  const double micro_speedup =
      prepared_seconds > 0 ? raw_seconds / prepared_seconds : 0;
  std::cout << "statement micro (" << reps << " executions):\n"
            << "  raw        " << std::fixed << std::setprecision(4)
            << raw_seconds << " s\n"
            << "  prepared   " << prepared_seconds << " s\n"
            << "  speedup    " << std::setprecision(2) << micro_speedup
            << "x\n\n";

  // --- 2. end-to-end PageRank, 4 modes, cache on vs off ------------------
  const std::string query = core::workloads::PageRankQuery(iters);
  const core::ExecutionMode modes[] = {
      core::ExecutionMode::kSingleThread, core::ExecutionMode::kSync,
      core::ExecutionMode::kAsync, core::ExecutionMode::kAsyncPriority};

  std::vector<ModeResult> results;
  bool bit_identical = true;
  std::cout << "PageRank " << iters << " iterations, " << nodes
            << " nodes:\n"
            << std::left << std::setw(14) << "mode" << std::right
            << std::setw(12) << "cache_on" << std::setw(12) << "cache_off"
            << std::setw(10) << "speedup" << std::setw(10) << "parses_on"
            << std::setw(11) << "parses_off" << std::setw(11) << "identical"
            << "\n";
  for (const auto mode : modes) {
    ModeResult row;
    row.mode = bench::ModeLabel(mode);
    const auto options = bench::ModeOptions(mode, threads, partitions, "pr");
    for (const bool cache_on : {true, false}) {
      if (only_ablation && cache_on) continue;
      CacheOf(url).set_enabled(cache_on);
      const auto run = bench::RunQuery(url, options, query);
      const uint64_t parses =
          run.stats.recorder ? run.stats.recorder->counter("sql.parse_count")
                             : 0;
      (cache_on ? row.on_seconds : row.off_seconds) = run.seconds;
      (cache_on ? row.on_parses : row.off_parses) = parses;
      (cache_on ? row.on_rows : row.off_rows) = Canonical(run.result);
      (cache_on ? row.on_result : row.off_result) = run.result;
    }
    // The cache must be invisible to results. SingleThread executes
    // deterministically, so cache on/off must match bit for bit. The
    // parallel modes' FP summation order is timing-dependent run to run
    // (with or without the cache — their own tests use 1e-9 tolerance),
    // so they are held to the same 1e-9 equivalence.
    if (!only_ablation) {
      if (std::string(row.mode) == "SingleThread" &&
          row.on_rows != row.off_rows) {
        bit_identical = false;
      }
      if (!Equivalent(row.on_result, row.off_result)) bit_identical = false;
    }
    const double speedup =
        row.on_seconds > 0 ? row.off_seconds / row.on_seconds : 0;
    std::cout << std::left << std::setw(14) << row.mode << std::right
              << std::fixed << std::setprecision(4) << std::setw(12)
              << row.on_seconds << std::setw(12) << row.off_seconds
              << std::setprecision(2) << std::setw(9) << speedup << "x"
              << std::setw(10) << row.on_parses << std::setw(11)
              << row.off_parses << std::setw(11)
              << (only_ablation ? "-" : row.on_rows == row.off_rows ? "yes" : "NO")
              << "\n";
    results.push_back(row);
  }
  CacheOf(url).set_enabled(true);
  std::cout << "results cache-invisible (SingleThread bit-identical, "
               "parallel within 1e-9): "
            << (bit_identical ? "yes" : "NO") << "\n";

  std::ofstream json(json_path);
  json << std::setprecision(6) << std::fixed;
  json << "{\n"
       << "  \"micro\": {\"reps\": " << reps << ", \"raw_seconds\": "
       << raw_seconds << ", \"prepared_seconds\": " << prepared_seconds
       << ", \"speedup\": " << micro_speedup << "},\n"
       << "  \"pagerank\": {\"nodes\": " << nodes << ", \"iterations\": "
       << iters << ", \"threads\": " << threads << ", \"partitions\": "
       << partitions << ", \"modes\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const ModeResult& r = results[i];
    json << "    {\"mode\": \"" << r.mode << "\", \"cache_on_seconds\": "
         << r.on_seconds << ", \"cache_off_seconds\": " << r.off_seconds
         << ", \"speedup\": "
         << (r.on_seconds > 0 ? r.off_seconds / r.on_seconds : 0)
         << ", \"parse_count_on\": " << r.on_parses
         << ", \"parse_count_off\": " << r.off_parses
         << ", \"bit_identical\": "
         << (r.on_rows == r.off_rows ? "true" : "false") << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]},\n"
       << "  \"peak_rss_bytes\": " << bench::PeakRssBytes() << ",\n"
       << "  \"bit_identical\": " << (bit_identical ? "true" : "false")
       << "\n}\n";
  std::cout << "wrote " << json_path << "\n";
  return bit_identical ? 0 : 1;
}
