// micro_integrity — the cost of end-to-end integrity.
//
// PageRank runs to convergence three ways, in the single-thread and Sync
// modes: with per-table content checksums disabled (the A arm), with
// checksums maintained at every mutation (the default, the B arm), and
// with checksums plus a scrub pass every round (the worst-case C arm).
// Each arm reports wall time and overhead relative to the checksum-free
// run; the acceptance bar is <5% overhead for checksum maintenance under
// the modeled testbed latencies. All arms must produce identical results
// — integrity bookkeeping must never perturb the fixpoint.
//
// Writes a JSON baseline (default BENCH_integrity.json; --json <path>
// to move it). Knobs: SQLOOP_BENCH_{PR_NODES,PR_DEG,PR_ITERS,REPS,
// THREADS,PARTITIONS,LATENCY_US,ROW_COST_NS,COMPILE_US}.
#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "graph/generators.h"
#include "minidb/database.h"

namespace {

using namespace sqloop;
using bench::Knob;

/// Sorted rows with a 1e-9 numeric tolerance for the parallel arms (bit
/// equality is demanded of the single-thread mode; the durability test
/// suite pins exact equality with threads=1 separately).
bool Equivalent(const dbc::ResultSet& a, const dbc::ResultSet& b,
                double tolerance) {
  if (a.rows.size() != b.rows.size()) return false;
  const auto sorted = [](const dbc::ResultSet& rs) {
    auto rows = rs.rows;
    std::sort(rows.begin(), rows.end(), [](const auto& x, const auto& y) {
      return x.empty() || y.empty() ? x.size() < y.size()
                                    : x[0].ToString() < y[0].ToString();
    });
    return rows;
  };
  const auto lhs = sorted(a);
  const auto rhs = sorted(b);
  for (size_t i = 0; i < lhs.size(); ++i) {
    if (lhs[i].size() != rhs[i].size()) return false;
    for (size_t j = 0; j < lhs[i].size(); ++j) {
      const Value& x = lhs[i][j];
      const Value& y = rhs[i][j];
      if (x.is_numeric() && y.is_numeric()) {
        if (std::fabs(x.NumericAsDouble() - y.NumericAsDouble()) > tolerance) {
          return false;
        }
      } else if (x.ToString() != y.ToString()) {
        return false;
      }
    }
  }
  return true;
}

struct Arm {
  const char* label;
  double seconds = 0;
  uint64_t scrub_passes = 0;
  dbc::ResultSet result;
};

struct ModeReport {
  const char* mode;
  std::vector<Arm> arms;  // off, checksums, checksums+scrub
  bool results_match = true;
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_integrity.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: micro_integrity [--json <path>]\n";
      return 2;
    }
  }

  const int64_t nodes = Knob("PR_NODES", 800);
  const int64_t deg = Knob("PR_DEG", 3);
  const int64_t iters = Knob("PR_ITERS", 20);
  const int64_t reps = Knob("REPS", 3);
  const int threads = static_cast<int>(Knob("THREADS", 4));
  const int partitions = static_cast<int>(Knob("PARTITIONS", 8));

  const auto graph = graph::MakeWebGraph(nodes, static_cast<int>(deg), 1);
  bench::EngineFleet fleet("integrity", graph);
  const std::string url = fleet.Url("postgres");
  const std::string query = core::workloads::PageRankQuery(iters);
  const std::shared_ptr<minidb::Database> db =
      fleet.server().FindDatabase("postgres");

  // Arm descriptor: (label, integrity toggle, scrub cadence).
  struct ArmSpec {
    const char* label;
    bool integrity;
    int64_t scrub_every;
  };
  const ArmSpec specs[] = {
      {"off", false, 0},
      {"checksums", true, 0},
      {"checksums+scrub", true, 1},
  };

  const core::ExecutionMode modes[] = {core::ExecutionMode::kSingleThread,
                                       core::ExecutionMode::kSync};

  std::vector<ModeReport> reports;
  for (const auto mode : modes) {
    ModeReport report{core::ExecutionModeName(mode), {}, true};
    for (const ArmSpec& spec : specs) {
      Arm arm;
      arm.label = spec.label;
      db->set_integrity_enabled(spec.integrity);
      double best = 0;
      for (int64_t rep = 0; rep < reps; ++rep) {
        core::SqloopOptions options;
        options.mode = mode;
        options.threads = threads;
        options.partitions = partitions;
        options.scrub_every = spec.scrub_every;
        core::SqLoop loop(url, options);
        const Stopwatch watch;
        auto result = loop.Execute(query);
        const double seconds = watch.ElapsedSeconds();
        if (rep == 0 || seconds < best) best = seconds;
        arm.scrub_passes = loop.last_run().scrub_passes;
        arm.result = std::move(result);
      }
      arm.seconds = best;
      report.arms.push_back(std::move(arm));
    }
    db->set_integrity_enabled(true);
    // Integrity bookkeeping must not change the answer (exact for
    // single-thread, the repo-standard 1e-9 for Sync).
    const double tolerance =
        mode == core::ExecutionMode::kSingleThread ? 0.0 : 1e-9;
    for (size_t i = 1; i < report.arms.size(); ++i) {
      if (!Equivalent(report.arms[0].result, report.arms[i].result,
                      tolerance)) {
        report.results_match = false;
      }
    }
    reports.push_back(std::move(report));
  }

  bool pass = true;
  std::cout << "PageRank " << iters << " iterations, " << nodes
            << " nodes (best of " << reps << "):\n"
            << std::left << std::setw(14) << "mode" << std::right
            << std::setw(10) << "off" << std::setw(12) << "checksums"
            << std::setw(12) << "ck+scrub" << std::setw(10) << "ovh%"
            << std::setw(10) << "scrub%" << "\n";
  std::ofstream json(json_path);
  json << "{\n  \"benchmark\": \"micro_integrity\",\n  \"workload\": "
       << "\"pagerank\",\n  \"nodes\": " << nodes
       << ",\n  \"iterations\": " << iters << ",\n  \"modes\": [\n";
  for (size_t m = 0; m < reports.size(); ++m) {
    const ModeReport& r = reports[m];
    const double off = r.arms[0].seconds;
    const auto overhead = [off](const Arm& arm) {
      return off > 0 ? (arm.seconds - off) / off * 100.0 : 0.0;
    };
    const double ovh_ck = overhead(r.arms[1]);
    const double ovh_scrub = overhead(r.arms[2]);
    // The acceptance bar covers checksum maintenance only; the
    // every-round scrub arm is reported for context, not gated (a scrub
    // pass re-reads every live row, so its cost scales with table size).
    if (ovh_ck >= 5.0) pass = false;
    if (!r.results_match) pass = false;
    std::cout << std::left << std::setw(14) << r.mode << std::right
              << std::fixed << std::setprecision(3) << std::setw(10) << off
              << std::setw(12) << r.arms[1].seconds << std::setw(12)
              << r.arms[2].seconds << std::setprecision(1) << std::setw(9)
              << ovh_ck << "%" << std::setw(9) << ovh_scrub << "%"
              << (r.results_match ? "" : "  RESULTS DIVERGED") << "\n";
    json << "    {\"mode\": \"" << r.mode << "\", \"off_seconds\": "
         << std::setprecision(6) << off
         << ", \"checksums_seconds\": " << r.arms[1].seconds
         << ", \"scrub_seconds\": " << r.arms[2].seconds
         << ", \"scrub_passes\": " << r.arms[2].scrub_passes
         << ", \"overhead_pct\": " << std::setprecision(2) << ovh_ck
         << ", \"overhead_scrub_pct\": " << ovh_scrub
         << ", \"results_match\": " << (r.results_match ? "true" : "false")
         << "}" << (m + 1 < reports.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"peak_rss_bytes\": " << bench::PeakRssBytes()
       << ",\n  \"pass\": " << (pass ? "true" : "false") << "\n}\n";
  std::cout << "\nacceptance (<5% checksum overhead, results intact): "
            << (pass ? "PASS" : "FAIL") << "\nwrote " << json_path << "\n";
  return pass ? 0 : 1;
}
