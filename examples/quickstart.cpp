// Quickstart: connect SQLoop to an engine, run regular SQL, a recursive
// CTE (the paper's Fibonacci example), and a first iterative CTE.
//
//   ./build/examples/quickstart
#include <iostream>

#include "core/sqloop.h"
#include "minidb/server.h"

int main() {
  using namespace sqloop;

  // Stand up an engine. In the paper this is a running PostgreSQL server;
  // here it is an embedded minidb database with the postgres profile.
  minidb::Server::Default().CreateDatabase(
      "quickstart", minidb::EngineProfile::Postgres());

  // SQLoop sits between you and the engine: connect by URL.
  core::SqLoop loop("minidb://localhost/quickstart");

  // 1. Regular SQL passes straight through (translated per dialect).
  loop.Execute("CREATE TABLE points (id BIGINT PRIMARY KEY, score DOUBLE)");
  loop.Execute("INSERT INTO points VALUES (1, 2.5), (2, 4.0), (3, 1.5)");
  const auto total = loop.Execute("SELECT SUM(score) FROM points");
  std::cout << "sum(score) = " << total.rows[0][0].ToString() << "\n";

  // 2. Recursive CTE — Example 1 from the paper: the sum of Fibonacci
  //    numbers below 1000.
  const auto fib = loop.Execute(
      "WITH RECURSIVE Fibonacci (n, pn) AS ("
      "  VALUES (0, 1)"
      "  UNION ALL"
      "  SELECT n + pn, n FROM Fibonacci WHERE n < 1000"
      ") SELECT SUM(n) FROM Fibonacci");
  std::cout << "Fibonacci sum below 1000 = " << fib.rows[0][0].ToString()
            << "\n";

  // 3. Iterative CTE — the SQLoop extension. Counts how far each account
  //    balance grows under compound interest, stopping via a data-value
  //    termination condition (Table I).
  loop.Execute("CREATE TABLE accounts (id BIGINT PRIMARY KEY, bal DOUBLE)");
  loop.Execute("INSERT INTO accounts VALUES (1, 100.0), (2, 250.0)");
  const auto grown = loop.Execute(
      "WITH ITERATIVE balances (id, bal) AS ("
      "  SELECT id, bal FROM accounts"
      "  ITERATE"
      "  SELECT id, bal * 1.05 FROM balances"
      "  UNTIL (SELECT MIN(bal) FROM balances) > 200"
      ") SELECT id, bal FROM balances ORDER BY id");
  for (const auto& row : grown.rows) {
    std::cout << "account " << row[0].ToString() << " grew to "
              << row[1].ToString() << "\n";
  }
  std::cout << "iterations executed: " << loop.last_run().iterations
            << " (mode: "
            << core::ExecutionModeName(loop.last_run().mode_used) << ")\n";
  return 0;
}
