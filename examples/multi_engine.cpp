// The engine-independence claim (paper Fig. 1): the same iterative CTE
// text runs unchanged against PostgreSQL-, MySQL-, and MariaDB-profile
// engines — including one "remote" server registered under its own host
// name — with SQLoop's translation module handling each dialect.
//
//   ./build/examples/multi_engine
#include <iostream>

#include "core/sqloop.h"
#include "core/workloads.h"
#include "dbc/driver.h"
#include "graph/generators.h"
#include "graph/loader.h"
#include "minidb/server.h"

int main() {
  using namespace sqloop;

  // Two "machines": localhost plus a second registered server.
  static minidb::Server remote;
  dbc::DriverManager::RegisterHost("analytics.example.com", &remote);

  minidb::Server::Default().CreateDatabase(
      "graphs_pg", minidb::EngineProfile::Postgres());
  minidb::Server::Default().CreateDatabase(
      "graphs_my", minidb::EngineProfile::MySql());
  remote.CreateDatabase("graphs_maria", minidb::EngineProfile::MariaDb());

  const graph::Graph g = graph::MakeWebGraph(800, 4, 99);

  const std::string urls[] = {
      "minidb://localhost/graphs_pg?engine=postgres",
      "minidb://localhost/graphs_my?engine=mysql",
      "minidb://analytics.example.com/graphs_maria?engine=mariadb",
  };

  for (const std::string& url : urls) {
    auto conn = dbc::DriverManager::GetConnection(url);
    graph::LoadEdges(*conn, g);  // engine-appropriate DDL under the hood

    core::SqloopOptions options;
    options.mode = core::ExecutionMode::kAsync;
    options.partitions = 8;
    options.threads = 2;
    core::SqLoop loop(url, options);

    // Identical query text on every engine — no dialect in sight.
    const auto result = loop.Execute(core::workloads::PageRankQuery(5));
    double sum = 0;
    for (const auto& row : result.rows) sum += row[1].NumericAsDouble();

    std::cout << url << "\n  engine=" << loop.connection().profile().name
              << "  nodes=" << result.rows.size() << "  sum(rank)=" << sum
              << "  time=" << loop.last_run().seconds << "s\n";

    // Recursive CTEs too — emulated transparently where the engine lacks
    // them (the MySQL 5.7 profile).
    const auto fib = loop.Execute(
        "WITH RECURSIVE f (n, pn) AS (VALUES (0, 1) UNION ALL "
        "SELECT n + pn, n FROM f WHERE n < 100) SELECT MAX(n) FROM f");
    std::cout << "  recursive CTE result: " << fib.rows[0][0].ToString()
              << "\n";
  }
  dbc::DriverManager::RegisterHost("analytics.example.com", nullptr);
  return 0;
}
