// A tour of every termination-condition type in Table I, on one small
// dataset — metadata, data-value, and delta-based conditions.
//
//   ./build/examples/termination_tour
#include <iostream>

#include "common/error.h"
#include "core/sqloop.h"
#include "dbc/driver.h"
#include "graph/generators.h"
#include "graph/loader.h"
#include "minidb/server.h"

namespace {

std::string GrowthCte(const std::string& until) {
  // Balances converge toward 500 (30% of the gap per iteration), so both
  // the values and the per-iteration movement are interesting to test:
  // values grow, movement decays.
  return "WITH ITERATIVE b (id, bal) AS ("
         "  SELECT id, start FROM accounts"
         "  ITERATE SELECT id, bal + (500 - bal) * 0.3 FROM b"
         "  UNTIL " + until +
         ") SELECT MAX(bal) FROM b";
}

}  // namespace

int main() {
  using namespace sqloop;
  minidb::Server::Default().CreateDatabase(
      "tour", minidb::EngineProfile::Postgres());
  core::SqLoop loop("minidb://localhost/tour");
  loop.Execute("CREATE TABLE accounts (id BIGINT PRIMARY KEY, "
               "start DOUBLE PRECISION)");
  loop.Execute("INSERT INTO accounts VALUES (1, 100.0), (2, 150.0)");

  const struct {
    const char* label;
    std::string until;
  } cases[] = {
      {"metadata: n ITERATIONS", "5 ITERATIONS"},
      {"metadata: n UPDATES (stops when the balances stop moving in "
       "double precision)",
       "0 UPDATES"},
      {"data: expr over all rows", "(SELECT id FROM b WHERE bal > 400)"},
      {"data: ANY expr", "ANY (SELECT id FROM b WHERE bal > 400)"},
      {"data: expr compared to e", "(SELECT MAX(bal) FROM b) > 490"},
      {"delta: all rows moved less than e",
       "DELTA (SELECT n.id FROM b AS n JOIN b_delta AS o ON n.id = o.id "
       "WHERE n.bal - o.bal < 20)"},
      {"delta: ANY row moved less than e",
       "ANY DELTA (SELECT n.id FROM b AS n JOIN b_delta AS o ON n.id = o.id "
       "WHERE n.bal - o.bal < 5)"},
  };

  // `1 UPDATES` never fires for this always-changing query; cap safely.
  // Passed per call, so the loop instance keeps its pristine defaults.
  auto options = loop.options();
  options.max_iterations_guard = 400;

  for (const auto& c : cases) {
    try {
      const auto result = loop.Execute(GrowthCte(c.until), options);
      std::cout << c.label << "\n  -> stopped after "
                << loop.last_run().iterations << " iterations, max balance "
                << result.rows[0][0].ToString() << "\n";
    } catch (const Error& e) {
      std::cout << c.label << "\n  -> " << e.what() << "\n";
    }
  }
  return 0;
}
