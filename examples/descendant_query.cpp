// Descendant Query (paper §VI-A): how many clicks from page A to every
// page within reach — run against the host-graph dataset, with the hop
// radius swept like Fig. 4's x-axis.
//
//   ./build/examples/descendant_query [hosts] [backbone_length]
#include <cstdlib>
#include <iostream>

#include "core/sqloop.h"
#include "core/workloads.h"
#include "dbc/driver.h"
#include "graph/generators.h"
#include "graph/loader.h"
#include "graph/reference.h"
#include "minidb/server.h"

int main(int argc, char** argv) {
  using namespace sqloop;
  const int64_t hosts = argc > 1 ? std::atoll(argv[1]) : 30;
  const int64_t backbone = argc > 2 ? std::atoll(argv[2]) : 60;

  auto db = minidb::Server::Default().CreateDatabase(
      "dq_demo", minidb::EngineProfile::Postgres());
  const std::string url = "minidb://localhost/dq_demo?latency_us=0";

  const graph::Graph g =
      graph::MakeHostGraph(hosts, 8, backbone, /*seed=*/5);
  {
    auto conn = dbc::DriverManager::GetConnection(url);
    graph::LoadEdges(*conn, g);
  }
  std::cout << "host graph: " << g.NodeCount() << " nodes, "
            << g.edge_count() << " edges\n";

  core::SqloopOptions options;
  options.mode = core::ExecutionMode::kAsync;
  options.partitions = 16;
  options.threads = 4;
  core::SqLoop loop(url, options);

  // Sweep the exploration radius: more hops -> more pages discovered.
  std::cout << "\nhops  pages_discovered  rounds  seconds\n";
  for (const int64_t hops : {int64_t{4}, int64_t{8}, int64_t{16}, int64_t{32}, backbone}) {
    const auto result =
        loop.Execute(core::workloads::DescendantQueryBounded(0, hops));
    std::cout << "  " << hops << "\t" << result.rows.size() << "\t\t"
              << loop.last_run().iterations << "\t"
              << loop.last_run().seconds << "\n";
  }

  // Full exploration terminates by quiescence (UNTIL 0 UPDATES) and must
  // agree with a BFS reference.
  const auto full = loop.Execute(core::workloads::DescendantQuery(0));
  const auto bfs = graph::BfsHops(g, 0);
  std::cout << "\nfull exploration: " << full.rows.size()
            << " pages (BFS reference: " << bfs.size() - 1
            << " reachable besides the source)\n";
  return 0;
}
