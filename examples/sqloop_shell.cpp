// sqloop_shell — an interactive psql-style client for SQLoop.
//
// Usage:
//   ./build/examples/sqloop_shell [url]
//   echo "SELECT 1;" | ./build/examples/sqloop_shell
//   ./build/examples/sqloop_shell -c "WITH ITERATIVE ...; SELECT ..."
//
// Without a URL it stands up a local postgres-profile database named
// "shell". Statements end with ';'. Meta commands start with '\':
//   \help                       this text
//   \q                          quit
//   \mode single|sync|async|asyncp   execution mode for iterative CTEs
//   \threads N                  worker threads
//   \partitions N               hash partitions
//   \priority <sql> | off       AsyncP priority query ($PARTITION token)
//   \asc | \desc                priority ordering
//   \timing on|off              print wall-clock per statement
//   \trace on|off               live per-round trace while a query runs
//   \stats                      statistics of the last iterative run
//                               (including the per-round telemetry table
//                               and the resilience counters)
//   \jobs                       the embedded job server's ledger: every
//                               statement this shell ran, with state,
//                               rounds, and wall time
//   \faults k=v ... | off       seeded fault injection on this shell's
//                               server: seed=N connect=R drop=R
//                               transient=R slow=R slow_us=N drop_every=N
//                               transient_every=N connect_every=N
//                               slow_every=N max=N kill_at=ROUND
//                               (R in [0,1]; kill_at aborts the job at
//                               round N, once — pair with \checkpoint)
//   \checkpoint [k=v ...]       iteration-level durability for iterative
//                               runs: every=N (0 = off) dir=PATH
//                               resume=on|off; bare \checkpoint shows the
//                               current settings, \checkpoint off resets
//                               them. A killed/crashed job rerun with
//                               resume=on continues from its newest valid
//                               checkpoint, bit-identically.
//   \tables                     list tables in the database
//   \scrub                      CHECK TABLE over every table: verify each
//                               table's maintained content checksum
//                               against a recomputation; corrupt tables
//                               are reported and quarantined
//   \load web N DEG SEED        generate+load a web graph into `edges`
//   \load ego C S P SEED        ... ego-net graph
//   \load host H P L SEED       ... host graph
#include <algorithm>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "common/error.h"
#include "common/fault.h"
#include "common/stopwatch.h"
#include "core/sqloop.h"
#include "dbc/driver.h"
#include "graph/generators.h"
#include "graph/loader.h"
#include "minidb/server.h"
#include "server/job_server.h"
#include "telemetry/exporters.h"

namespace {

using namespace sqloop;

constexpr size_t kMaxRowsShown = 40;

void PrintResult(const dbc::ResultSet& result) {
  if (result.columns.empty() && result.rows.empty()) {
    std::cout << "OK";
    if (result.affected_rows > 0) {
      std::cout << " (" << result.affected_rows << " rows affected)";
    }
    std::cout << "\n";
    return;
  }
  for (size_t c = 0; c < result.columns.size(); ++c) {
    if (c > 0) std::cout << " | ";
    std::cout << result.columns[c];
  }
  std::cout << "\n";
  const size_t shown = std::min(result.rows.size(), kMaxRowsShown);
  for (size_t r = 0; r < shown; ++r) {
    for (size_t c = 0; c < result.rows[r].size(); ++c) {
      if (c > 0) std::cout << " | ";
      std::cout << result.rows[r][c].ToString();
    }
    std::cout << "\n";
  }
  if (result.rows.size() > shown) {
    std::cout << "... (" << result.rows.size() - shown << " more rows)\n";
  }
  std::cout << "(" << result.rows.size() << " rows)\n";
}

void PrintStats(const core::RunStats& stats) {
  std::cout << "mode=" << core::ExecutionModeName(stats.mode_used)
            << " parallelized=" << (stats.parallelized ? "yes" : "no")
            << " iterations=" << stats.iterations
            << " updates=" << stats.total_updates
            << " compute_tasks=" << stats.compute_tasks
            << " gather_tasks=" << stats.gather_tasks
            << " messages=" << stats.message_tables
            << " skipped=" << stats.skipped_tasks << " time="
            << stats.seconds << "s\n";
  if (stats.retries + stats.reopened_connections + stats.timeouts +
          stats.degraded_rounds + stats.workers_retired >
      0) {
    std::cout << "resilience: retries=" << stats.retries
              << " reopened_connections=" << stats.reopened_connections
              << " timeouts=" << stats.timeouts
              << " degraded_rounds=" << stats.degraded_rounds
              << " workers_retired=" << stats.workers_retired
              << " partitions_rebalanced=" << stats.partitions_rebalanced
              << "\n";
  }
  if (stats.checkpoints_written + stats.speculative_tasks > 0 ||
      stats.resumed_from_round > 0) {
    std::cout << "durability: checkpoints_written=" << stats.checkpoints_written
              << " resumed_from_round=" << stats.resumed_from_round
              << " speculative_tasks=" << stats.speculative_tasks
              << " speculative_wins=" << stats.speculative_wins
              << " speculative_losses=" << stats.speculative_losses << "\n";
  }
  if (!stats.fallback_reason.empty()) {
    std::cout << "fallback: " << stats.fallback_reason << "\n";
  }
  if (stats.recorder) {
    const telemetry::Recorder& rec = *stats.recorder;
    const uint64_t parses = rec.counter("sql.parse_count");
    const uint64_t hits = rec.counter("minidb.plan_cache_hits");
    const uint64_t misses = rec.counter("minidb.plan_cache_misses");
    if (parses + hits + misses > 0) {
      std::cout << "prepare: handles=" << rec.counter("dbc.prepared_statements")
                << " prepared_execs=" << rec.counter("dbc.prepared_executions")
                << " parses=" << parses << " cache_hits=" << hits
                << " cache_misses=" << misses
                << " rebinds=" << rec.counter("minidb.plan_rebinds");
      if (hits + misses > 0) {
        std::cout << " hit_rate="
                  << 100.0 * static_cast<double>(hits) /
                         static_cast<double>(hits + misses)
                  << "%";
      }
      std::cout << " prepare_time=" << rec.timer_seconds("dbc.prepare_seconds")
                << "s execute_time="
                << rec.timer_seconds("dbc.execute_seconds") << "s\n";
    }
    const uint64_t index_scans = rec.counter("minidb.index_scans");
    const uint64_t full_scans = rec.counter("minidb.full_scans");
    const uint64_t borrowed = rec.counter("minidb.rows_borrowed");
    const uint64_t materialized = rec.counter("minidb.rows_materialized");
    if (index_scans + full_scans + borrowed + materialized > 0) {
      std::cout << "engine: index_scans=" << index_scans
                << " full_scans=" << full_scans
                << " rows_borrowed=" << borrowed
                << " rows_materialized=" << materialized
                << " pushed_predicates="
                << rec.counter("minidb.pushed_predicates")
                << " fused_cores=" << rec.counter("minidb.fused_cores")
                << " vectorized_cores="
                << rec.counter("minidb.vectorized_cores")
                << " batches=" << rec.counter("minidb.batches_produced")
                << " scalar_fallbacks="
                << rec.counter("minidb.scalar_fallbacks")
                << "\n";
    }
    const uint64_t gov_peak = rec.counter("governance.job_bytes_peak");
    const uint64_t gov_cancels =
        rec.counter("governance.mid_statement_cancels");
    if (gov_peak + gov_cancels > 0) {
      std::cout << "governance: bytes_peak=" << gov_peak
                << " mid_statement_cancels=" << gov_cancels << "\n";
    }
    const uint64_t pool_hits = rec.counter("minidb.pool_hits");
    const uint64_t pool_misses = rec.counter("minidb.pool_misses");
    if (pool_hits + pool_misses > 0) {
      std::cout << "buffer pool: hits=" << pool_hits
                << " misses=" << pool_misses;
      if (pool_hits + pool_misses > 0) {
        std::cout << " hit_rate="
                  << 100.0 * static_cast<double>(pool_hits) /
                         static_cast<double>(pool_hits + pool_misses)
                  << "%";
      }
      std::cout << " pages_evicted=" << rec.counter("minidb.pages_evicted")
                << " bytes_spilled=" << rec.counter("minidb.bytes_spilled")
                << " dumps_reused=" << rec.counter("checkpoint.dumps_reused")
                << "\n";
    }
    std::cout << telemetry::Summary(rec);
  }
}

/// Streams round progress to the terminal while a query executes.
class TraceObserver : public core::ExecutionObserver {
 public:
  /// Lets the trace read the live run's recorder (the Recorder is
  /// thread-safe, so sampling counters mid-run is fine).
  void set_recorder_source(
      std::function<const telemetry::Recorder*()> source) {
    recorder_source_ = std::move(source);
  }

  void OnRoundStart(int64_t round) override {
    // A new run means a fresh recorder: restart the per-round deltas.
    if (round == 1) {
      prev_hits_ = 0;
      prev_misses_ = 0;
    }
  }

  void OnRoundEnd(const telemetry::IterationStats& round) override {
    std::cout << "  round " << round.round << ": updates=" << round.updates
              << " compute=" << round.compute_tasks << "/"
              << round.compute_seconds << "s gather=" << round.gather_tasks
              << "/" << round.gather_seconds << "s";
    if (round.partitions_skipped > 0) {
      std::cout << " skipped=" << round.partitions_skipped;
    }
    if (recorder_source_) {
      if (const telemetry::Recorder* rec = recorder_source_()) {
        const uint64_t hits = rec->counter("minidb.plan_cache_hits");
        const uint64_t misses = rec->counter("minidb.plan_cache_misses");
        const uint64_t round_hits = hits - prev_hits_;
        const uint64_t round_misses = misses - prev_misses_;
        prev_hits_ = hits;
        prev_misses_ = misses;
        if (round_hits + round_misses > 0) {
          std::cout << " plan_cache="
                    << 100.0 * static_cast<double>(round_hits) /
                           static_cast<double>(round_hits + round_misses)
                    << "%";
        }
      }
    }
    std::cout << " wall=" << round.seconds << "s\n";
  }
  void OnFallback(const std::string& reason) override {
    std::cout << "  fallback: " << reason << "\n";
  }
  void OnRetry(const core::RetryEvent& event) override {
    std::cout << "  retry " << event.what << " pt" << event.partition
              << " attempt=" << event.attempt << " backoff=" << event.backoff_ms
              << "ms: " << event.error << "\n";
  }
  void OnDegrade(const core::DegradeEvent& event) override {
    std::cout << "  degrade: " << event.reason
              << " (live workers: " << event.remaining_workers << ")\n";
  }

 private:
  std::function<const telemetry::Recorder*()> recorder_source_;
  uint64_t prev_hits_ = 0;
  uint64_t prev_misses_ = 0;
};

class Shell {
 public:
  explicit Shell(const std::string& url) : loop_(url) {
    options_.partitions = 16;
    options_.threads = 4;
    tracer_.set_recorder_source([this]() -> const telemetry::Recorder* {
      return loop_.last_run().recorder.get();
    });
  }

  /// Returns false when the shell should exit.
  bool HandleMeta(const std::string& line) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    // The shell keeps its own options and passes them per call — the
    // SqLoop instance defaults are never mutated.
    auto& options = options_;
    if (cmd == "\\q" || cmd == "\\quit") return false;
    if (cmd == "\\help") {
      std::cout << "statements end with ';' — \\q quits; see the header "
                   "comment of sqloop_shell.cpp for all meta commands\n";
    } else if (cmd == "\\mode") {
      std::string mode;
      in >> mode;
      if (mode == "single") {
        options.mode = core::ExecutionMode::kSingleThread;
      } else if (mode == "sync") {
        options.mode = core::ExecutionMode::kSync;
      } else if (mode == "async") {
        options.mode = core::ExecutionMode::kAsync;
      } else if (mode == "asyncp") {
        options.mode = core::ExecutionMode::kAsyncPriority;
      } else {
        std::cout << "unknown mode '" << mode << "'\n";
        return true;
      }
      std::cout << "mode = " << core::ExecutionModeName(options.mode)
                << "\n";
    } else if (cmd == "\\threads") {
      in >> options.threads;
      std::cout << "threads = " << options.ResolveThreads() << "\n";
    } else if (cmd == "\\partitions") {
      in >> options.partitions;
      std::cout << "partitions = " << options.partitions << "\n";
    } else if (cmd == "\\priority") {
      std::string rest;
      std::getline(in, rest);
      while (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);
      if (rest == "off") {
        options.priority_query.clear();
        std::cout << "priority query cleared\n";
      } else {
        options.priority_query = rest;
        std::cout << "priority query set\n";
      }
    } else if (cmd == "\\asc") {
      options.priority_descending = false;
    } else if (cmd == "\\desc") {
      options.priority_descending = true;
    } else if (cmd == "\\timing") {
      std::string flag;
      in >> flag;
      timing_ = flag != "off";
      std::cout << "timing " << (timing_ ? "on" : "off") << "\n";
    } else if (cmd == "\\trace") {
      std::string flag;
      in >> flag;
      const bool on = flag != "off";
      loop_.set_observer(on ? &tracer_ : nullptr);
      std::cout << "trace " << (on ? "on" : "off") << "\n";
    } else if (cmd == "\\stats") {
      PrintStats(loop_.last_run());
    } else if (cmd == "\\jobs") {
      PrintJobs();
    } else if (cmd == "\\faults") {
      ConfigureFaults(in);
    } else if (cmd == "\\checkpoint") {
      ConfigureCheckpoint(in);
    } else if (cmd == "\\tables") {
      for (const auto& name : loop_.connection().database().TableNames()) {
        std::cout << name << "\n";
      }
    } else if (cmd == "\\scrub") {
      ScrubTables();
    } else if (cmd == "\\load") {
      LoadGraph(in);
    } else {
      std::cout << "unknown meta command '" << cmd << "' (try \\help)\n";
    }
    return true;
  }

  /// \jobs: the embedded job server's ledger — every statement this shell
  /// ran is a job on it, so the history doubles as a query log.
  void PrintJobs() {
    const auto jobs = loop_.job_server().Jobs();
    if (jobs.empty()) {
      std::cout << "no jobs yet\n";
      return;
    }
    for (const auto& job : jobs) {
      std::string sql = job.sql;
      std::replace(sql.begin(), sql.end(), '\n', ' ');
      if (sql.size() > 48) sql = sql.substr(0, 45) + "...";
      std::cout << "#" << job.seq << "  " << server::JobStateName(job.state)
                << "  rounds=" << job.rounds << "  run="
                << static_cast<int64_t>(job.run_seconds * 1000) << "ms  "
                << sql;
      if (!job.error.empty()) std::cout << "  [" << job.error << "]";
      std::cout << "\n";
    }
  }

  void RunStatement(const std::string& sql) {
    try {
      const Stopwatch watch;
      const auto result = loop_.Execute(sql, options_);
      PrintResult(result);
      if (timing_) {
        std::cout << "Time: " << watch.ElapsedMillis() << " ms\n";
      }
    } catch (const Error& e) {
      std::cout << "ERROR: " << e.what() << "\n";
    }
  }

 private:
  /// \scrub: CHECK TABLE over every table in the shell's database — an
  /// on-demand integrity pass. Corrupt tables are reported (and left
  /// quarantined by the engine); the rest of the walk continues.
  void ScrubTables() {
    size_t ok = 0;
    size_t corrupt = 0;
    for (const auto& name : loop_.connection().database().TableNames()) {
      try {
        loop_.connection().Execute("CHECK TABLE \"" + name + "\"");
        ++ok;
      } catch (const Error& e) {
        ++corrupt;
        std::cout << name << ": " << e.what() << "\n";
      }
    }
    std::cout << "scrub: " << ok << " table(s) ok, " << corrupt
              << " corrupt\n";
  }

  /// \faults off, or \faults key=value...: installs a seeded FaultInjector
  /// on the shell's server (picked up by every connection, including the
  /// worker pool) and on the already-open master connection.
  void ConfigureFaults(std::istringstream& in) {
    const std::string& url = loop_.url();
    std::string host = "localhost";
    if (const auto scheme = url.find("://"); scheme != std::string::npos) {
      const auto start = scheme + 3;
      host = url.substr(start, url.find('/', start) - start);
    }
    minidb::Server* server = dbc::DriverManager::FindHost(host);
    if (server == nullptr) {
      std::cout << "no minidb server registered for host '" << host << "'\n";
      return;
    }
    FaultConfig config;
    std::string token;
    while (in >> token) {
      if (token == "off") {
        server->set_fault_injector(nullptr);
        loop_.connection().set_fault_injector(nullptr);
        std::cout << "fault injection off\n";
        return;
      }
      const auto eq = token.find('=');
      if (eq == std::string::npos) {
        std::cout << "expected key=value, got '" << token << "'\n";
        return;
      }
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      try {
        if (key == "seed") {
          config.seed = std::stoull(value);
        } else if (key == "connect") {
          config.connect_failure_rate = std::stod(value);
        } else if (key == "connect_every") {
          config.connect_every = std::stoll(value);
        } else if (key == "drop") {
          config.drop_rate = std::stod(value);
        } else if (key == "drop_every") {
          config.drop_every = std::stoll(value);
        } else if (key == "transient") {
          config.transient_rate = std::stod(value);
        } else if (key == "transient_every") {
          config.transient_every = std::stoll(value);
        } else if (key == "slow") {
          config.slow_rate = std::stod(value);
        } else if (key == "slow_every") {
          config.slow_every = std::stoll(value);
        } else if (key == "slow_us") {
          config.slow_us = std::stoll(value);
        } else if (key == "max") {
          config.max_faults = std::stoll(value);
        } else if (key == "kill_at") {
          config.kill_at_round = std::stoll(value);
        } else {
          std::cout << "unknown fault key '" << key << "'\n";
          return;
        }
      } catch (const std::exception&) {
        std::cout << "bad value for '" << key << "': " << value << "\n";
        return;
      }
    }
    if (!config.any() && config.kill_at_round == 0) {
      std::cout << "no fault rates given (try \\help)\n";
      return;
    }
    auto injector = std::make_shared<FaultInjector>(config);
    server->set_fault_injector(injector);
    loop_.connection().set_fault_injector(injector);
    std::cout << "fault injection on (seed=" << config.seed << ")\n";
  }

  /// \checkpoint, \checkpoint off, or \checkpoint key=value...: adjusts
  /// the durability knobs carried into every subsequent iterative run.
  void ConfigureCheckpoint(std::istringstream& in) {
    std::string token;
    while (in >> token) {
      if (token == "off") {
        options_.checkpoint_every = 0;
        options_.resume = false;
        std::cout << "checkpointing off\n";
        return;
      }
      const auto eq = token.find('=');
      if (eq == std::string::npos) {
        std::cout << "expected key=value or 'off', got '" << token << "'\n";
        return;
      }
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      try {
        if (key == "every") {
          options_.checkpoint_every = std::stoll(value);
        } else if (key == "dir") {
          options_.checkpoint_dir = value;
        } else if (key == "resume") {
          options_.resume = value != "off";
        } else {
          std::cout << "unknown checkpoint key '" << key << "'\n";
          return;
        }
      } catch (const std::exception&) {
        std::cout << "bad value for '" << key << "': " << value << "\n";
        return;
      }
    }
    std::cout << "checkpoint every=" << options_.checkpoint_every
              << (options_.checkpoint_every > 0 ? "" : " (off)") << " dir="
              << (options_.checkpoint_dir.empty() ? "sqloop_ckpt (default)"
                                                  : options_.checkpoint_dir)
              << " resume=" << (options_.resume ? "on" : "off") << "\n";
  }

  void LoadGraph(std::istringstream& in) {
    std::string kind;
    in >> kind;
    try {
      graph::Graph g;
      if (kind == "web") {
        int64_t n = 1000, deg = 4, seed = 1;
        in >> n >> deg >> seed;
        g = graph::MakeWebGraph(n, static_cast<int>(deg),
                                static_cast<uint64_t>(seed));
      } else if (kind == "ego") {
        int64_t c = 10, s = 20, seed = 1;
        double p = 0.2;
        in >> c >> s >> p >> seed;
        g = graph::MakeEgoNetGraph(c, s, p, static_cast<uint64_t>(seed));
      } else if (kind == "host") {
        int64_t h = 20, p = 8, l = 50, seed = 1;
        in >> h >> p >> l >> seed;
        g = graph::MakeHostGraph(h, p, l, static_cast<uint64_t>(seed));
      } else {
        std::cout << "unknown graph kind '" << kind
                  << "' (web | ego | host)\n";
        return;
      }
      auto conn = dbc::DriverManager::GetConnection(loop_.url());
      graph::LoadEdges(*conn, g);
      std::cout << "loaded " << g.edge_count() << " edges over "
                << g.NodeCount() << " nodes into `edges`\n";
    } catch (const Error& e) {
      std::cout << "ERROR: " << e.what() << "\n";
    }
  }

  core::SqLoop loop_;
  core::SqloopOptions options_;
  TraceObserver tracer_;
  bool timing_ = true;
};

}  // namespace

int main(int argc, char** argv) {
  std::string url;
  std::string inline_sql;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-c" && i + 1 < argc) {
      inline_sql = argv[++i];
    } else {
      url = arg;
    }
  }
  if (url.empty()) {
    minidb::Server::Default().CreateDatabase(
        "shell", minidb::EngineProfile::Postgres());
    url = "minidb://localhost/shell";
  }

  try {
    Shell shell(url);
    if (!inline_sql.empty()) {
      std::string statement;
      std::istringstream in(inline_sql);
      std::string piece;
      while (std::getline(in, piece, ';')) {
        if (piece.find_first_not_of(" \t\r\n") == std::string::npos) continue;
        shell.RunStatement(piece);
      }
      return 0;
    }

    const auto is_blank = [](const std::string& text) {
      return text.find_first_not_of(" \t\r\n") == std::string::npos;
    };
    std::string buffer;
    std::string line;
    std::cout << "sqloop> " << std::flush;
    while (std::getline(std::cin, line)) {
      if (is_blank(buffer) && !line.empty() && line[0] == '\\') {
        if (!shell.HandleMeta(line)) break;
        std::cout << "sqloop> " << std::flush;
        continue;
      }
      buffer += line + "\n";
      size_t semi;
      while ((semi = buffer.find(';')) != std::string::npos) {
        const std::string sql = buffer.substr(0, semi);
        buffer = buffer.substr(semi + 1);
        if (!is_blank(sql)) shell.RunStatement(sql);
      }
      if (is_blank(buffer)) buffer.clear();
      std::cout << (buffer.empty() ? "sqloop> " : "   ...> ") << std::flush;
    }
    return 0;
  } catch (const sqloop::Error& e) {
    std::cerr << "fatal: " << e.what() << "\n";
    return 1;
  }
}
