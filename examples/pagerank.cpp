// PageRank over a synthetic web graph — the paper's Example 2, run in all
// four execution modes with per-mode statistics and a per-iteration
// compute/gather breakdown from the telemetry recorder.
//
//   ./build/examples/pagerank [node_count] [iterations]
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "core/sqloop.h"
#include "core/workloads.h"
#include "dbc/driver.h"
#include "graph/generators.h"
#include "graph/loader.h"
#include "graph/reference.h"
#include "minidb/server.h"

int main(int argc, char** argv) {
  using namespace sqloop;
  const int64_t nodes = argc > 1 ? std::atoll(argv[1]) : 2000;
  const int iterations = argc > 2 ? std::atoi(argv[2]) : 10;

  auto db = minidb::Server::Default().CreateDatabase(
      "pagerank_demo", minidb::EngineProfile::Postgres());
  const std::string url = "minidb://localhost/pagerank_demo?latency_us=0";

  // The dataset already lives in the RDBMS — SQLoop never moves it.
  const graph::Graph g = graph::MakeWebGraph(nodes, 4, /*seed=*/2024);
  {
    auto conn = dbc::DriverManager::GetConnection(url);
    graph::LoadEdges(*conn, g);
  }
  std::cout << "web graph: " << g.NodeCount() << " nodes, "
            << g.edge_count() << " edges\n";

  const auto reference = graph::PageRankReference(g, iterations);
  std::cout << "reference sum of rank after " << iterations
            << " iterations: " << std::fixed << std::setprecision(2)
            << reference.sum_of_rank << "\n\n";

  for (const auto mode :
       {core::ExecutionMode::kSingleThread, core::ExecutionMode::kSync,
        core::ExecutionMode::kAsync, core::ExecutionMode::kAsyncPriority}) {
    core::SqloopOptions options;
    options.mode = mode;
    options.partitions = 16;
    options.threads = 4;
    if (mode == core::ExecutionMode::kAsyncPriority) {
      options.priority_query = core::workloads::PageRankPriorityQuery();
      options.priority_descending = true;
    }
    core::SqLoop loop(url, options);
    const auto result =
        loop.Execute(core::workloads::PageRankQuery(iterations));

    double sum = 0;
    for (const auto& row : result.rows) sum += row[1].NumericAsDouble();
    const auto& stats = loop.last_run();
    std::cout << std::left << std::setw(14)
              << core::ExecutionModeName(mode) << " sum(rank)=" << std::fixed
              << std::setprecision(2) << sum << "  time=" << std::setprecision(3)
              << stats.seconds << "s  compute=" << stats.compute_tasks
              << " gather=" << stats.gather_tasks
              << " messages=" << stats.message_tables << "\n";
    for (const auto& round : stats.per_iteration()) {
      std::cout << "    round " << std::right << std::setw(2) << round.round
                << ": updates=" << std::left << std::setw(8) << round.updates
                << " compute=" << std::setprecision(4) << round.compute_seconds
                << "s gather=" << round.gather_seconds << "s";
      if (round.barrier_wait_seconds > 0) {
        std::cout << " barrier=" << round.barrier_wait_seconds << "s";
      }
      std::cout << "\n";
    }
  }
  return 0;
}
