// Single-source shortest path — the paper's Example 3 — with the
// Prioritized Asynchronous scheduler and a Dijkstra cross-check.
//
//   ./build/examples/sssp [circles] [circle_size]
#include <cstdlib>
#include <iostream>

#include "core/sqloop.h"
#include "core/workloads.h"
#include "dbc/driver.h"
#include "graph/generators.h"
#include "graph/loader.h"
#include "graph/reference.h"
#include "minidb/server.h"

int main(int argc, char** argv) {
  using namespace sqloop;
  const int64_t circles = argc > 1 ? std::atoll(argv[1]) : 12;
  const int64_t circle_size = argc > 2 ? std::atoll(argv[2]) : 25;

  auto db = minidb::Server::Default().CreateDatabase(
      "sssp_demo", minidb::EngineProfile::Postgres());
  const std::string url = "minidb://localhost/sssp_demo?latency_us=0";

  const graph::Graph g =
      graph::MakeEgoNetGraph(circles, circle_size, 0.2, /*seed=*/7);
  {
    auto conn = dbc::DriverManager::GetConnection(url);
    graph::LoadEdges(*conn, g);
  }

  const int64_t source = 1;
  const int64_t destination = (circles - 1) * circle_size + 1;  // far circle
  std::cout << "ego-net graph: " << g.NodeCount() << " nodes, "
            << g.edge_count() << " edges; source " << source << " -> dest "
            << destination << "\n";

  const auto dijkstra = graph::Dijkstra(g, source);
  std::cout << "Dijkstra reference distance: "
            << (dijkstra.contains(destination)
                    ? std::to_string(dijkstra.at(destination))
                    : "unreachable")
            << "\n\n";

  for (const auto mode :
       {core::ExecutionMode::kSync, core::ExecutionMode::kAsync,
        core::ExecutionMode::kAsyncPriority}) {
    core::SqloopOptions options;
    options.mode = mode;
    options.partitions = 16;
    options.threads = 4;
    if (mode == core::ExecutionMode::kAsyncPriority) {
      // SSSP prioritizes partitions holding the smallest tentative
      // distance (paper §V-E) — smaller value runs first.
      options.priority_query = core::workloads::SsspPriorityQuery();
      options.priority_descending = false;
    }
    core::SqLoop loop(url, options);
    const auto result =
        loop.Execute(core::workloads::SsspQuery(source, destination));
    const auto& stats = loop.last_run();
    std::cout << core::ExecutionModeName(mode) << ": distance="
              << (result.rows.empty() ? "?" : result.rows[0][0].ToString())
              << "  rounds=" << stats.iterations
              << "  time=" << stats.seconds << "s  skipped="
              << stats.skipped_tasks << "\n";
  }
  return 0;
}
