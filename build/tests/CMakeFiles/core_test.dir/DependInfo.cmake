
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/analysis_test.cpp" "tests/CMakeFiles/core_test.dir/core/analysis_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/analysis_test.cpp.o.d"
  "/root/repo/tests/core/executor_equivalence_test.cpp" "tests/CMakeFiles/core_test.dir/core/executor_equivalence_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/executor_equivalence_test.cpp.o.d"
  "/root/repo/tests/core/failure_test.cpp" "tests/CMakeFiles/core_test.dir/core/failure_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/failure_test.cpp.o.d"
  "/root/repo/tests/core/parallel_detail_test.cpp" "tests/CMakeFiles/core_test.dir/core/parallel_detail_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/parallel_detail_test.cpp.o.d"
  "/root/repo/tests/core/property_sweep_test.cpp" "tests/CMakeFiles/core_test.dir/core/property_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/property_sweep_test.cpp.o.d"
  "/root/repo/tests/core/script_gen_test.cpp" "tests/CMakeFiles/core_test.dir/core/script_gen_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/script_gen_test.cpp.o.d"
  "/root/repo/tests/core/sqloop_facade_test.cpp" "tests/CMakeFiles/core_test.dir/core/sqloop_facade_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/sqloop_facade_test.cpp.o.d"
  "/root/repo/tests/core/termination_test.cpp" "tests/CMakeFiles/core_test.dir/core/termination_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/termination_test.cpp.o.d"
  "/root/repo/tests/core/translator_test.cpp" "tests/CMakeFiles/core_test.dir/core/translator_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/translator_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sqloop_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqloop_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqloop_dbc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqloop_minidb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqloop_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqloop_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
