file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/analysis_test.cpp.o"
  "CMakeFiles/core_test.dir/core/analysis_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/executor_equivalence_test.cpp.o"
  "CMakeFiles/core_test.dir/core/executor_equivalence_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/failure_test.cpp.o"
  "CMakeFiles/core_test.dir/core/failure_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/parallel_detail_test.cpp.o"
  "CMakeFiles/core_test.dir/core/parallel_detail_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/property_sweep_test.cpp.o"
  "CMakeFiles/core_test.dir/core/property_sweep_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/script_gen_test.cpp.o"
  "CMakeFiles/core_test.dir/core/script_gen_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/sqloop_facade_test.cpp.o"
  "CMakeFiles/core_test.dir/core/sqloop_facade_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/termination_test.cpp.o"
  "CMakeFiles/core_test.dir/core/termination_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/translator_test.cpp.o"
  "CMakeFiles/core_test.dir/core/translator_test.cpp.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
