file(REMOVE_RECURSE
  "CMakeFiles/dbc_test.dir/dbc/connection_test.cpp.o"
  "CMakeFiles/dbc_test.dir/dbc/connection_test.cpp.o.d"
  "dbc_test"
  "dbc_test.pdb"
  "dbc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
