
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/minidb/concurrency_test.cpp" "tests/CMakeFiles/minidb_test.dir/minidb/concurrency_test.cpp.o" "gcc" "tests/CMakeFiles/minidb_test.dir/minidb/concurrency_test.cpp.o.d"
  "/root/repo/tests/minidb/dialect_test.cpp" "tests/CMakeFiles/minidb_test.dir/minidb/dialect_test.cpp.o" "gcc" "tests/CMakeFiles/minidb_test.dir/minidb/dialect_test.cpp.o.d"
  "/root/repo/tests/minidb/evaluator_test.cpp" "tests/CMakeFiles/minidb_test.dir/minidb/evaluator_test.cpp.o" "gcc" "tests/CMakeFiles/minidb_test.dir/minidb/evaluator_test.cpp.o.d"
  "/root/repo/tests/minidb/executor_cte_test.cpp" "tests/CMakeFiles/minidb_test.dir/minidb/executor_cte_test.cpp.o" "gcc" "tests/CMakeFiles/minidb_test.dir/minidb/executor_cte_test.cpp.o.d"
  "/root/repo/tests/minidb/executor_dml_test.cpp" "tests/CMakeFiles/minidb_test.dir/minidb/executor_dml_test.cpp.o" "gcc" "tests/CMakeFiles/minidb_test.dir/minidb/executor_dml_test.cpp.o.d"
  "/root/repo/tests/minidb/executor_select_test.cpp" "tests/CMakeFiles/minidb_test.dir/minidb/executor_select_test.cpp.o" "gcc" "tests/CMakeFiles/minidb_test.dir/minidb/executor_select_test.cpp.o.d"
  "/root/repo/tests/minidb/pushdown_test.cpp" "tests/CMakeFiles/minidb_test.dir/minidb/pushdown_test.cpp.o" "gcc" "tests/CMakeFiles/minidb_test.dir/minidb/pushdown_test.cpp.o.d"
  "/root/repo/tests/minidb/table_test.cpp" "tests/CMakeFiles/minidb_test.dir/minidb/table_test.cpp.o" "gcc" "tests/CMakeFiles/minidb_test.dir/minidb/table_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sqloop_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqloop_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqloop_dbc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqloop_minidb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqloop_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqloop_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
