file(REMOVE_RECURSE
  "CMakeFiles/minidb_test.dir/minidb/concurrency_test.cpp.o"
  "CMakeFiles/minidb_test.dir/minidb/concurrency_test.cpp.o.d"
  "CMakeFiles/minidb_test.dir/minidb/dialect_test.cpp.o"
  "CMakeFiles/minidb_test.dir/minidb/dialect_test.cpp.o.d"
  "CMakeFiles/minidb_test.dir/minidb/evaluator_test.cpp.o"
  "CMakeFiles/minidb_test.dir/minidb/evaluator_test.cpp.o.d"
  "CMakeFiles/minidb_test.dir/minidb/executor_cte_test.cpp.o"
  "CMakeFiles/minidb_test.dir/minidb/executor_cte_test.cpp.o.d"
  "CMakeFiles/minidb_test.dir/minidb/executor_dml_test.cpp.o"
  "CMakeFiles/minidb_test.dir/minidb/executor_dml_test.cpp.o.d"
  "CMakeFiles/minidb_test.dir/minidb/executor_select_test.cpp.o"
  "CMakeFiles/minidb_test.dir/minidb/executor_select_test.cpp.o.d"
  "CMakeFiles/minidb_test.dir/minidb/pushdown_test.cpp.o"
  "CMakeFiles/minidb_test.dir/minidb/pushdown_test.cpp.o.d"
  "CMakeFiles/minidb_test.dir/minidb/table_test.cpp.o"
  "CMakeFiles/minidb_test.dir/minidb/table_test.cpp.o.d"
  "minidb_test"
  "minidb_test.pdb"
  "minidb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minidb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
