
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis.cpp" "src/CMakeFiles/sqloop_core.dir/core/analysis.cpp.o" "gcc" "src/CMakeFiles/sqloop_core.dir/core/analysis.cpp.o.d"
  "/root/repo/src/core/parallel.cpp" "src/CMakeFiles/sqloop_core.dir/core/parallel.cpp.o" "gcc" "src/CMakeFiles/sqloop_core.dir/core/parallel.cpp.o.d"
  "/root/repo/src/core/schema_infer.cpp" "src/CMakeFiles/sqloop_core.dir/core/schema_infer.cpp.o" "gcc" "src/CMakeFiles/sqloop_core.dir/core/schema_infer.cpp.o.d"
  "/root/repo/src/core/script_gen.cpp" "src/CMakeFiles/sqloop_core.dir/core/script_gen.cpp.o" "gcc" "src/CMakeFiles/sqloop_core.dir/core/script_gen.cpp.o.d"
  "/root/repo/src/core/single_thread.cpp" "src/CMakeFiles/sqloop_core.dir/core/single_thread.cpp.o" "gcc" "src/CMakeFiles/sqloop_core.dir/core/single_thread.cpp.o.d"
  "/root/repo/src/core/sqloop.cpp" "src/CMakeFiles/sqloop_core.dir/core/sqloop.cpp.o" "gcc" "src/CMakeFiles/sqloop_core.dir/core/sqloop.cpp.o.d"
  "/root/repo/src/core/termination.cpp" "src/CMakeFiles/sqloop_core.dir/core/termination.cpp.o" "gcc" "src/CMakeFiles/sqloop_core.dir/core/termination.cpp.o.d"
  "/root/repo/src/core/translator.cpp" "src/CMakeFiles/sqloop_core.dir/core/translator.cpp.o" "gcc" "src/CMakeFiles/sqloop_core.dir/core/translator.cpp.o.d"
  "/root/repo/src/core/workloads.cpp" "src/CMakeFiles/sqloop_core.dir/core/workloads.cpp.o" "gcc" "src/CMakeFiles/sqloop_core.dir/core/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sqloop_dbc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqloop_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqloop_minidb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqloop_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqloop_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
