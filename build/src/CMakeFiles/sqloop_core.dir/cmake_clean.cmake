file(REMOVE_RECURSE
  "CMakeFiles/sqloop_core.dir/core/analysis.cpp.o"
  "CMakeFiles/sqloop_core.dir/core/analysis.cpp.o.d"
  "CMakeFiles/sqloop_core.dir/core/parallel.cpp.o"
  "CMakeFiles/sqloop_core.dir/core/parallel.cpp.o.d"
  "CMakeFiles/sqloop_core.dir/core/schema_infer.cpp.o"
  "CMakeFiles/sqloop_core.dir/core/schema_infer.cpp.o.d"
  "CMakeFiles/sqloop_core.dir/core/script_gen.cpp.o"
  "CMakeFiles/sqloop_core.dir/core/script_gen.cpp.o.d"
  "CMakeFiles/sqloop_core.dir/core/single_thread.cpp.o"
  "CMakeFiles/sqloop_core.dir/core/single_thread.cpp.o.d"
  "CMakeFiles/sqloop_core.dir/core/sqloop.cpp.o"
  "CMakeFiles/sqloop_core.dir/core/sqloop.cpp.o.d"
  "CMakeFiles/sqloop_core.dir/core/termination.cpp.o"
  "CMakeFiles/sqloop_core.dir/core/termination.cpp.o.d"
  "CMakeFiles/sqloop_core.dir/core/translator.cpp.o"
  "CMakeFiles/sqloop_core.dir/core/translator.cpp.o.d"
  "CMakeFiles/sqloop_core.dir/core/workloads.cpp.o"
  "CMakeFiles/sqloop_core.dir/core/workloads.cpp.o.d"
  "libsqloop_core.a"
  "libsqloop_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqloop_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
