# Empty compiler generated dependencies file for sqloop_core.
# This may be replaced when dependencies are built.
