file(REMOVE_RECURSE
  "libsqloop_core.a"
)
