file(REMOVE_RECURSE
  "CMakeFiles/sqloop_sql.dir/sql/ast.cpp.o"
  "CMakeFiles/sqloop_sql.dir/sql/ast.cpp.o.d"
  "CMakeFiles/sqloop_sql.dir/sql/lexer.cpp.o"
  "CMakeFiles/sqloop_sql.dir/sql/lexer.cpp.o.d"
  "CMakeFiles/sqloop_sql.dir/sql/parser.cpp.o"
  "CMakeFiles/sqloop_sql.dir/sql/parser.cpp.o.d"
  "CMakeFiles/sqloop_sql.dir/sql/printer.cpp.o"
  "CMakeFiles/sqloop_sql.dir/sql/printer.cpp.o.d"
  "CMakeFiles/sqloop_sql.dir/sql/value.cpp.o"
  "CMakeFiles/sqloop_sql.dir/sql/value.cpp.o.d"
  "libsqloop_sql.a"
  "libsqloop_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqloop_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
