file(REMOVE_RECURSE
  "libsqloop_sql.a"
)
