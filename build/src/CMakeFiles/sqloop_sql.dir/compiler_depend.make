# Empty compiler generated dependencies file for sqloop_sql.
# This may be replaced when dependencies are built.
