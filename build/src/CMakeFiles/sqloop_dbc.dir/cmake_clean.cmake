file(REMOVE_RECURSE
  "CMakeFiles/sqloop_dbc.dir/dbc/connection.cpp.o"
  "CMakeFiles/sqloop_dbc.dir/dbc/connection.cpp.o.d"
  "CMakeFiles/sqloop_dbc.dir/dbc/driver.cpp.o"
  "CMakeFiles/sqloop_dbc.dir/dbc/driver.cpp.o.d"
  "libsqloop_dbc.a"
  "libsqloop_dbc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqloop_dbc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
