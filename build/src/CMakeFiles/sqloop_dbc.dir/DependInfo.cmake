
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dbc/connection.cpp" "src/CMakeFiles/sqloop_dbc.dir/dbc/connection.cpp.o" "gcc" "src/CMakeFiles/sqloop_dbc.dir/dbc/connection.cpp.o.d"
  "/root/repo/src/dbc/driver.cpp" "src/CMakeFiles/sqloop_dbc.dir/dbc/driver.cpp.o" "gcc" "src/CMakeFiles/sqloop_dbc.dir/dbc/driver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sqloop_minidb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqloop_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqloop_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
