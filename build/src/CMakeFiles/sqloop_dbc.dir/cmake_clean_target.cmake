file(REMOVE_RECURSE
  "libsqloop_dbc.a"
)
