# Empty compiler generated dependencies file for sqloop_dbc.
# This may be replaced when dependencies are built.
