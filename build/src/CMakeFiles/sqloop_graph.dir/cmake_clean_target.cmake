file(REMOVE_RECURSE
  "libsqloop_graph.a"
)
