file(REMOVE_RECURSE
  "CMakeFiles/sqloop_graph.dir/graph/generators.cpp.o"
  "CMakeFiles/sqloop_graph.dir/graph/generators.cpp.o.d"
  "CMakeFiles/sqloop_graph.dir/graph/graph.cpp.o"
  "CMakeFiles/sqloop_graph.dir/graph/graph.cpp.o.d"
  "CMakeFiles/sqloop_graph.dir/graph/loader.cpp.o"
  "CMakeFiles/sqloop_graph.dir/graph/loader.cpp.o.d"
  "CMakeFiles/sqloop_graph.dir/graph/reference.cpp.o"
  "CMakeFiles/sqloop_graph.dir/graph/reference.cpp.o.d"
  "libsqloop_graph.a"
  "libsqloop_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqloop_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
