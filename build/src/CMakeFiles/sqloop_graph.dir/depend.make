# Empty dependencies file for sqloop_graph.
# This may be replaced when dependencies are built.
