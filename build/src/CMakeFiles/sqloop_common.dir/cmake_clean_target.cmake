file(REMOVE_RECURSE
  "libsqloop_common.a"
)
