# Empty dependencies file for sqloop_common.
# This may be replaced when dependencies are built.
