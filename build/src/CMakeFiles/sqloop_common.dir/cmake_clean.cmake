file(REMOVE_RECURSE
  "CMakeFiles/sqloop_common.dir/common/strings.cpp.o"
  "CMakeFiles/sqloop_common.dir/common/strings.cpp.o.d"
  "CMakeFiles/sqloop_common.dir/common/thread_pool.cpp.o"
  "CMakeFiles/sqloop_common.dir/common/thread_pool.cpp.o.d"
  "libsqloop_common.a"
  "libsqloop_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqloop_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
