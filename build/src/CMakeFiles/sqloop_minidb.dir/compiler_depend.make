# Empty compiler generated dependencies file for sqloop_minidb.
# This may be replaced when dependencies are built.
