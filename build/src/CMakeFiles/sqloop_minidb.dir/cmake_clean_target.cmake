file(REMOVE_RECURSE
  "libsqloop_minidb.a"
)
