file(REMOVE_RECURSE
  "CMakeFiles/sqloop_minidb.dir/minidb/database.cpp.o"
  "CMakeFiles/sqloop_minidb.dir/minidb/database.cpp.o.d"
  "CMakeFiles/sqloop_minidb.dir/minidb/evaluator.cpp.o"
  "CMakeFiles/sqloop_minidb.dir/minidb/evaluator.cpp.o.d"
  "CMakeFiles/sqloop_minidb.dir/minidb/executor.cpp.o"
  "CMakeFiles/sqloop_minidb.dir/minidb/executor.cpp.o.d"
  "CMakeFiles/sqloop_minidb.dir/minidb/schema.cpp.o"
  "CMakeFiles/sqloop_minidb.dir/minidb/schema.cpp.o.d"
  "CMakeFiles/sqloop_minidb.dir/minidb/server.cpp.o"
  "CMakeFiles/sqloop_minidb.dir/minidb/server.cpp.o.d"
  "CMakeFiles/sqloop_minidb.dir/minidb/table.cpp.o"
  "CMakeFiles/sqloop_minidb.dir/minidb/table.cpp.o.d"
  "libsqloop_minidb.a"
  "libsqloop_minidb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqloop_minidb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
