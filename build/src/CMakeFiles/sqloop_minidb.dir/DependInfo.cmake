
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minidb/database.cpp" "src/CMakeFiles/sqloop_minidb.dir/minidb/database.cpp.o" "gcc" "src/CMakeFiles/sqloop_minidb.dir/minidb/database.cpp.o.d"
  "/root/repo/src/minidb/evaluator.cpp" "src/CMakeFiles/sqloop_minidb.dir/minidb/evaluator.cpp.o" "gcc" "src/CMakeFiles/sqloop_minidb.dir/minidb/evaluator.cpp.o.d"
  "/root/repo/src/minidb/executor.cpp" "src/CMakeFiles/sqloop_minidb.dir/minidb/executor.cpp.o" "gcc" "src/CMakeFiles/sqloop_minidb.dir/minidb/executor.cpp.o.d"
  "/root/repo/src/minidb/schema.cpp" "src/CMakeFiles/sqloop_minidb.dir/minidb/schema.cpp.o" "gcc" "src/CMakeFiles/sqloop_minidb.dir/minidb/schema.cpp.o.d"
  "/root/repo/src/minidb/server.cpp" "src/CMakeFiles/sqloop_minidb.dir/minidb/server.cpp.o" "gcc" "src/CMakeFiles/sqloop_minidb.dir/minidb/server.cpp.o.d"
  "/root/repo/src/minidb/table.cpp" "src/CMakeFiles/sqloop_minidb.dir/minidb/table.cpp.o" "gcc" "src/CMakeFiles/sqloop_minidb.dir/minidb/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sqloop_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqloop_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
