file(REMOVE_RECURSE
  "CMakeFiles/termination_tour.dir/termination_tour.cpp.o"
  "CMakeFiles/termination_tour.dir/termination_tour.cpp.o.d"
  "termination_tour"
  "termination_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/termination_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
