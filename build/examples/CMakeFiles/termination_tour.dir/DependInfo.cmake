
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/termination_tour.cpp" "examples/CMakeFiles/termination_tour.dir/termination_tour.cpp.o" "gcc" "examples/CMakeFiles/termination_tour.dir/termination_tour.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sqloop_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqloop_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqloop_dbc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqloop_minidb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqloop_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sqloop_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
