# Empty compiler generated dependencies file for termination_tour.
# This may be replaced when dependencies are built.
