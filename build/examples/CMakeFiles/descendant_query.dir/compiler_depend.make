# Empty compiler generated dependencies file for descendant_query.
# This may be replaced when dependencies are built.
