file(REMOVE_RECURSE
  "CMakeFiles/descendant_query.dir/descendant_query.cpp.o"
  "CMakeFiles/descendant_query.dir/descendant_query.cpp.o.d"
  "descendant_query"
  "descendant_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/descendant_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
