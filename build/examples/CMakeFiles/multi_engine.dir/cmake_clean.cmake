file(REMOVE_RECURSE
  "CMakeFiles/multi_engine.dir/multi_engine.cpp.o"
  "CMakeFiles/multi_engine.dir/multi_engine.cpp.o.d"
  "multi_engine"
  "multi_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
