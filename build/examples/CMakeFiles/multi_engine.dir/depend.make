# Empty dependencies file for multi_engine.
# This may be replaced when dependencies are built.
