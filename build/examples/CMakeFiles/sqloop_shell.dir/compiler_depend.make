# Empty compiler generated dependencies file for sqloop_shell.
# This may be replaced when dependencies are built.
