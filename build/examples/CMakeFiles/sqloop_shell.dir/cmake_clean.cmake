file(REMOVE_RECURSE
  "CMakeFiles/sqloop_shell.dir/sqloop_shell.cpp.o"
  "CMakeFiles/sqloop_shell.dir/sqloop_shell.cpp.o.d"
  "sqloop_shell"
  "sqloop_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqloop_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
