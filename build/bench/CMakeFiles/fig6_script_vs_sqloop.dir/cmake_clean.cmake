file(REMOVE_RECURSE
  "CMakeFiles/fig6_script_vs_sqloop.dir/fig6_script_vs_sqloop.cpp.o"
  "CMakeFiles/fig6_script_vs_sqloop.dir/fig6_script_vs_sqloop.cpp.o.d"
  "fig6_script_vs_sqloop"
  "fig6_script_vs_sqloop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_script_vs_sqloop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
