# Empty dependencies file for fig6_script_vs_sqloop.
# This may be replaced when dependencies are built.
