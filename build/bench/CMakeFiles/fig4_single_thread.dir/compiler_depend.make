# Empty compiler generated dependencies file for fig4_single_thread.
# This may be replaced when dependencies are built.
