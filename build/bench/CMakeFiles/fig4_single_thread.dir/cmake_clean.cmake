file(REMOVE_RECURSE
  "CMakeFiles/fig4_single_thread.dir/fig4_single_thread.cpp.o"
  "CMakeFiles/fig4_single_thread.dir/fig4_single_thread.cpp.o.d"
  "fig4_single_thread"
  "fig4_single_thread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_single_thread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
