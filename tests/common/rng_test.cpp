#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace sqloop {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 10ull, 257ull, 1000003ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBelow(bound), bound);
    }
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBelow(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

}  // namespace
}  // namespace sqloop
