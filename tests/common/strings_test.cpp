#include "common/strings.h"

#include <gtest/gtest.h>

namespace sqloop::strings {
namespace {

TEST(Strings, ToLowerUpper) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_EQ(ToUpper("SeLeCt"), "SELECT");
  EXPECT_EQ(ToLower(""), "");
}

TEST(Strings, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("UNION", "union"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("UNION", "unions"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "b"));
}

TEST(Strings, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("x"), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("\t\na b\r\n"), "a b");
}

TEST(Strings, SplitPreservesEmptyFields) {
  const auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Strings, SplitSingle) {
  const auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"x"}, ","), "x");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(StartsWith("minidb://x", "minidb://"));
  EXPECT_FALSE(StartsWith("mini", "minidb"));
}

}  // namespace
}  // namespace sqloop::strings
