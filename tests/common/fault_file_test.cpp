// FaultFile — the durability I/O shim (common/fault_file.h): atomic
// tmp+rename publishes, per-operation counters, deterministic crash
// wreckage, and the fired-once latch that lets a resume run reopen the
// same crash-knob URL without crashing forever.
#include "common/fault_file.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>

#include "common/error.h"

namespace sqloop {
namespace {

namespace fs = std::filesystem;

class FaultFileTest : public ::testing::Test {
 protected:
  FaultFileTest() {
    static std::atomic<uint64_t> counter{0};
    dir_ = (fs::temp_directory_path() /
            ("sqloop_faultfile_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter.fetch_add(1))))
               .string();
    fs::create_directories(dir_);
    FaultFile::ClearPlan();
  }
  ~FaultFileTest() override {
    FaultFile::ClearPlan();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string File(const std::string& stem) const {
    return (fs::path(dir_) / stem).string();
  }

  static std::string ReadAll(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }

  std::string dir_;
};

const std::string kPayload = "0123456789abcdef0123456789abcdef";

TEST_F(FaultFileTest, PublishWritesAtomicallyAndCounts) {
  FaultFile::ResetCounters();
  FaultFile::PublishFile(File("a.bin"), kPayload.data(), kPayload.size(),
                         "test file");
  EXPECT_EQ(ReadAll(File("a.bin")), kPayload);
  EXPECT_FALSE(fs::exists(File("a.bin") + ".tmp"));
  const FaultFileCounters counters = FaultFile::counters();
  EXPECT_EQ(counters.writes, 1u);
  EXPECT_EQ(counters.fsyncs, 1u);
  EXPECT_EQ(counters.renames, 1u);
  EXPECT_EQ(counters.crashes, 0u);
}

TEST_F(FaultFileTest, CrashAtWriteLeavesNoFinalFile) {
  CrashPlan plan;
  plan.crash_at_write = 2;
  FaultFile::InstallPlan(plan);
  FaultFile::PublishFile(File("a.bin"), kPayload.data(), kPayload.size(),
                         "test file");
  EXPECT_THROW(FaultFile::PublishFile(File("b.bin"), kPayload.data(),
                                      kPayload.size(), "test file"),
               CrashPointError);
  EXPECT_TRUE(fs::exists(File("a.bin")));
  EXPECT_FALSE(fs::exists(File("b.bin")));
  EXPECT_EQ(FaultFile::counters().crashes, 1u);
}

TEST_F(FaultFileTest, CrashAtFsyncLeavesCompleteTmpOnly) {
  CrashPlan plan;
  plan.crash_at_fsync = 1;
  FaultFile::InstallPlan(plan);
  EXPECT_THROW(FaultFile::PublishFile(File("a.bin"), kPayload.data(),
                                      kPayload.size(), "test file"),
               CrashPointError);
  // The write completed, the rename never happened: the payload sits in
  // full at the tmp path, invisible to any reader of the final path.
  EXPECT_FALSE(fs::exists(File("a.bin")));
  EXPECT_EQ(ReadAll(File("a.bin") + ".tmp"), kPayload);
}

TEST_F(FaultFileTest, TornRenameCrashLeavesTornFinalFile) {
  CrashPlan plan;
  plan.crash_at_rename = 1;
  plan.torn_writes = true;
  FaultFile::InstallPlan(plan);
  EXPECT_THROW(FaultFile::PublishFile(File("a.bin"), kPayload.data(),
                                      kPayload.size(), "test file"),
               CrashPointError);
  // A non-atomic filesystem's rename crash: a torn prefix at the FINAL
  // path (shorter than the payload), no tmp left behind.
  ASSERT_TRUE(fs::exists(File("a.bin")));
  EXPECT_LT(fs::file_size(File("a.bin")), kPayload.size());
  EXPECT_FALSE(fs::exists(File("a.bin") + ".tmp"));
}

TEST_F(FaultFileTest, WreckageIsDeterministicPerSeed) {
  const auto wreck = [&](const std::string& stem, uint64_t seed) {
    CrashPlan plan;
    plan.crash_at_write = 1;
    plan.torn_writes = true;
    plan.flip_bit = true;
    plan.seed = seed;
    FaultFile::InstallPlan(plan);
    EXPECT_THROW(FaultFile::PublishFile(File(stem), kPayload.data(),
                                        kPayload.size(), "test file"),
                 CrashPointError);
    FaultFile::ClearPlan();
    return ReadAll(File(stem) + ".tmp");
  };
  const std::string a = wreck("a.bin", 7);
  const std::string b = wreck("b.bin", 7);
  const std::string c = wreck("c.bin", 8);
  EXPECT_EQ(a, b);  // same (seed, ordinal) → bit-identical wreckage
  EXPECT_NE(a, c);  // a different seed tears differently
}

TEST_F(FaultFileTest, ReinstallingIdenticalPlanKeepsTheFiredLatch) {
  CrashPlan plan;
  plan.crash_at_write = 1;
  FaultFile::InstallPlan(plan);
  EXPECT_THROW(FaultFile::PublishFile(File("a.bin"), kPayload.data(),
                                      kPayload.size(), "test file"),
               CrashPointError);
  // The resume run reopens the same URL: the identical plan must not
  // re-arm, or recovery would crash at its own first publish.
  FaultFile::InstallPlan(plan);
  FaultFile::PublishFile(File("b.bin"), kPayload.data(), kPayload.size(),
                         "test file");
  EXPECT_EQ(ReadAll(File("b.bin")), kPayload);
  // A different plan re-arms.
  plan.crash_at_write = 2;
  FaultFile::InstallPlan(plan);
  FaultFile::PublishFile(File("c.bin"), kPayload.data(), kPayload.size(),
                         "test file");
  EXPECT_THROW(FaultFile::PublishFile(File("d.bin"), kPayload.data(),
                                      kPayload.size(), "test file"),
               CrashPointError);
}

TEST_F(FaultFileTest, EmptyPlanDisarms) {
  CrashPlan plan;
  plan.crash_at_rename = 1;
  FaultFile::InstallPlan(plan);
  FaultFile::InstallPlan(CrashPlan{});
  FaultFile::PublishFile(File("a.bin"), kPayload.data(), kPayload.size(),
                         "test file");
  EXPECT_EQ(ReadAll(File("a.bin")), kPayload);
}

}  // namespace
}  // namespace sqloop
