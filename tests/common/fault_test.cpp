// FaultInjector determinism and trigger semantics: the resilience suite
// relies on a fixed seed producing the exact same fault schedule run to
// run, and on *_every triggers firing on exact decision counts.
#include "common/fault.h"

#include <gtest/gtest.h>

#include <vector>

namespace sqloop {
namespace {

TEST(FaultInjector, SameSeedSameSchedule) {
  FaultConfig config;
  config.seed = 7;
  config.drop_rate = 0.3;
  config.transient_rate = 0.2;
  config.slow_rate = 0.1;
  config.connect_failure_rate = 0.25;

  FaultInjector a(config);
  FaultInjector b(config);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.NextStatementFault(), b.NextStatementFault()) << "i=" << i;
    EXPECT_EQ(a.ShouldFailConnect(), b.ShouldFailConnect()) << "i=" << i;
  }
  EXPECT_EQ(a.injected_total(), b.injected_total());
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  FaultConfig config;
  config.drop_rate = 0.5;
  config.seed = 1;
  FaultInjector a(config);
  config.seed = 2;
  FaultInjector b(config);
  bool diverged = false;
  for (int i = 0; i < 200 && !diverged; ++i) {
    diverged = a.NextStatementFault() != b.NextStatementFault();
  }
  EXPECT_TRUE(diverged);
}

TEST(FaultInjector, EveryNFiresOnExactCounts) {
  FaultConfig config;
  config.drop_every = 3;
  FaultInjector injector(config);
  std::vector<int> fired;
  for (int i = 1; i <= 10; ++i) {
    if (injector.NextStatementFault() == FaultKind::kDrop) fired.push_back(i);
  }
  EXPECT_EQ(fired, (std::vector<int>{3, 6, 9}));
  EXPECT_EQ(injector.injected(FaultKind::kDrop), 3u);
  EXPECT_EQ(injector.decisions(), 10u);
}

TEST(FaultInjector, ConnectEveryIsIndependentOfStatements) {
  FaultConfig config;
  config.connect_every = 2;
  FaultInjector injector(config);
  // Statement decisions must not advance the connect counter.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(injector.NextStatementFault(), FaultKind::kNone);
  }
  EXPECT_FALSE(injector.ShouldFailConnect());
  EXPECT_TRUE(injector.ShouldFailConnect());
  EXPECT_FALSE(injector.ShouldFailConnect());
  EXPECT_TRUE(injector.ShouldFailConnect());
  EXPECT_EQ(injector.injected_connect_failures(), 2u);
}

TEST(FaultInjector, ZeroRatesNeverFire) {
  FaultInjector injector(FaultConfig{});
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(injector.NextStatementFault(), FaultKind::kNone);
    EXPECT_FALSE(injector.ShouldFailConnect());
  }
  EXPECT_EQ(injector.injected_total(), 0u);
}

TEST(FaultInjector, RateOneAlwaysFiresAndDropWinsPrecedence) {
  FaultConfig config;
  config.drop_rate = 1.0;
  config.transient_rate = 1.0;
  config.slow_rate = 1.0;
  FaultInjector injector(config);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(injector.NextStatementFault(), FaultKind::kDrop);
  }
  EXPECT_EQ(injector.injected(FaultKind::kDrop), 20u);
  EXPECT_EQ(injector.injected(FaultKind::kTransient), 0u);
}

TEST(FaultInjector, TransientBeatsSlow) {
  FaultConfig config;
  config.transient_rate = 1.0;
  config.slow_rate = 1.0;
  FaultInjector injector(config);
  EXPECT_EQ(injector.NextStatementFault(), FaultKind::kTransient);
}

TEST(FaultInjector, MaxFaultsCapsTotalAcrossKinds) {
  FaultConfig config;
  config.drop_every = 1;      // would fire every time...
  config.connect_every = 1;   // ...on both decision points
  config.max_faults = 3;
  FaultInjector injector(config);
  uint64_t fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (injector.NextStatementFault() != FaultKind::kNone) ++fired;
    if (injector.ShouldFailConnect()) ++fired;
  }
  EXPECT_EQ(fired, 3u);
  EXPECT_EQ(injector.injected_total(), 3u);
  // The budget is permanently spent: later decisions stay clean.
  EXPECT_EQ(injector.NextStatementFault(), FaultKind::kNone);
}

TEST(FaultInjector, ApproximateRateOverManyDraws) {
  FaultConfig config;
  config.seed = 99;
  config.transient_rate = 0.2;
  FaultInjector injector(config);
  int fired = 0;
  constexpr int kDraws = 10000;
  for (int i = 0; i < kDraws; ++i) {
    if (injector.NextStatementFault() == FaultKind::kTransient) ++fired;
  }
  // 20% +- a generous tolerance; this is a sanity check, not a PRNG test.
  EXPECT_GT(fired, kDraws / 10);
  EXPECT_LT(fired, kDraws * 3 / 10);
}

TEST(FaultInjector, KindNamesAreStable) {
  EXPECT_STREQ(FaultKindName(FaultKind::kNone), "none");
  EXPECT_STREQ(FaultKindName(FaultKind::kDrop), "drop");
  EXPECT_STREQ(FaultKindName(FaultKind::kTransient), "transient");
  EXPECT_STREQ(FaultKindName(FaultKind::kSlow), "slow");
}

TEST(FaultInjector, ConfigAnyReflectsEveryTrigger) {
  EXPECT_FALSE(FaultConfig{}.any());
  FaultConfig c1;
  c1.slow_every = 5;
  EXPECT_TRUE(c1.any());
  FaultConfig c2;
  c2.connect_failure_rate = 0.1;
  EXPECT_TRUE(c2.any());
}

}  // namespace
}  // namespace sqloop
