// Unit tests for the hierarchical memory accounting every governance
// feature stands on: charges propagate to the root, budgets reject the
// charge that would cross them with a fully unwound hierarchy, peaks are
// monotonic, and releases clamp at zero so racing pairs self-heal.
#include "common/memory_tracker.h"

#include <gtest/gtest.h>

#include <string>

#include "common/error.h"

namespace sqloop {
namespace {

TEST(MemoryTrackerTest, ChargePropagatesToEveryAncestor) {
  MemoryTracker root("server");
  MemoryTracker tenant("tenant:a", &root);
  MemoryTracker job("job:1", &tenant);

  job.Charge(100);
  EXPECT_EQ(job.reserved_bytes(), 100);
  EXPECT_EQ(tenant.reserved_bytes(), 100);
  EXPECT_EQ(root.reserved_bytes(), 100);

  tenant.Charge(50);  // sibling-level charge: root sees both, job only one
  EXPECT_EQ(job.reserved_bytes(), 100);
  EXPECT_EQ(tenant.reserved_bytes(), 150);
  EXPECT_EQ(root.reserved_bytes(), 150);
}

TEST(MemoryTrackerTest, ReleaseUnwindsTheChainAndClampsAtZero) {
  MemoryTracker root("server");
  MemoryTracker job("job:1", &root);

  job.Charge(100);
  job.Release(60);
  EXPECT_EQ(job.reserved_bytes(), 40);
  EXPECT_EQ(root.reserved_bytes(), 40);

  // Over-release clamps per scope instead of going negative.
  job.Release(1000);
  EXPECT_EQ(job.reserved_bytes(), 0);
  EXPECT_EQ(root.reserved_bytes(), 0);
}

TEST(MemoryTrackerTest, BudgetBreachThrowsAndLeavesHierarchyUntouched) {
  MemoryTracker root("server");
  MemoryTracker tenant("tenant:a", &root, /*limit_bytes=*/100);
  MemoryTracker job("job:1", &tenant);

  job.Charge(80);
  // 80 + 30 would cross the tenant budget: the charge must fail, naming
  // the scope that ran out, and every counter (the job's included) must
  // read exactly as before the attempt.
  try {
    job.Charge(30);
    FAIL() << "expected QuotaExceededError";
  } catch (const QuotaExceededError& e) {
    EXPECT_NE(std::string(e.what()).find("tenant:a"), std::string::npos);
  }
  EXPECT_EQ(job.reserved_bytes(), 80);
  EXPECT_EQ(tenant.reserved_bytes(), 80);
  EXPECT_EQ(root.reserved_bytes(), 80);

  // A charge that fits still goes through afterwards.
  job.Charge(20);
  EXPECT_EQ(tenant.reserved_bytes(), 100);
}

TEST(MemoryTrackerTest, DeepestBreachedScopeWins) {
  // The job's own (tighter) budget fires before the tenant's.
  MemoryTracker tenant("tenant:a", nullptr, /*limit_bytes=*/1000);
  MemoryTracker job("job:1", &tenant, /*limit_bytes=*/10);
  try {
    job.Charge(11);
    FAIL() << "expected QuotaExceededError";
  } catch (const QuotaExceededError& e) {
    EXPECT_NE(std::string(e.what()).find("job:1"), std::string::npos);
  }
  EXPECT_EQ(job.reserved_bytes(), 0);
  EXPECT_EQ(tenant.reserved_bytes(), 0);
}

TEST(MemoryTrackerTest, ChargeUncheckedIgnoresBudgetsButAdvancesPeaks) {
  MemoryTracker root("server", nullptr, /*limit_bytes=*/10);
  // Storage-side accounting must never throw: the caller is mid-mutation.
  root.ChargeUnchecked(100);
  EXPECT_EQ(root.reserved_bytes(), 100);
  EXPECT_EQ(root.peak_bytes(), 100);
  // But the watermark logic still sees the overshoot (shed/victim paths).
  EXPECT_GT(root.reserved_bytes(), root.limit_bytes());
  root.Release(100);
}

TEST(MemoryTrackerTest, PeakIsMonotonicThroughChargeReleaseCycles) {
  MemoryTracker root("server");
  root.Charge(100);
  root.Release(100);
  root.Charge(40);
  EXPECT_EQ(root.reserved_bytes(), 40);
  EXPECT_EQ(root.peak_bytes(), 100);  // the high watermark never recedes
  root.Charge(200);
  EXPECT_EQ(root.peak_bytes(), 240);
}

TEST(MemoryTrackerTest, LimitsAdjustOnLiveTrackers) {
  MemoryTracker scope("tenant:a");
  scope.Charge(500);  // unlimited at charge time
  scope.set_limit_bytes(100);
  // Tightening only affects future charges; the reservation stands.
  EXPECT_EQ(scope.reserved_bytes(), 500);
  EXPECT_THROW(scope.Charge(1), QuotaExceededError);
  scope.set_limit_bytes(0);
  scope.Charge(1);  // back to unlimited
  EXPECT_EQ(scope.reserved_bytes(), 501);
}

TEST(MemoryTrackerTest, NonPositiveChargesAndReleasesAreNoOps) {
  MemoryTracker scope("s", nullptr, /*limit_bytes=*/1);
  scope.Charge(0);
  scope.Charge(-5);
  scope.ChargeUnchecked(0);
  scope.Release(0);
  scope.Release(-5);
  EXPECT_EQ(scope.reserved_bytes(), 0);
  EXPECT_EQ(scope.peak_bytes(), 0);
}

}  // namespace
}  // namespace sqloop
