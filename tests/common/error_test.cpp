// Exhaustive checks over the error taxonomy: every subclass keeps its
// message prefix, stays catchable as Error/std::exception, and classifies
// correctly as transient or fatal (the property the resilience layer's
// retry decisions hang on).
#include "common/error.h"

#include <gtest/gtest.h>

#include <string>

namespace sqloop {
namespace {

TEST(ErrorTaxonomy, EverySubclassCarriesItsPrefix) {
  EXPECT_STREQ(ParseError("x").what(), "parse error: x");
  EXPECT_STREQ(AnalysisError("x").what(), "analysis error: x");
  EXPECT_STREQ(ExecutionError("x").what(), "execution error: x");
  EXPECT_STREQ(ConnectionError("x").what(), "connection error: x");
  EXPECT_STREQ(UsageError("x").what(), "usage error: x");
  EXPECT_STREQ(TransientError("x").what(), "transient error: x");
  EXPECT_STREQ(TimeoutError("x").what(), "timeout: x");
  EXPECT_STREQ(ConnectionLostError("x").what(), "connection lost: x");
  EXPECT_STREQ(JobKilledError("x").what(), "job killed: x");
  EXPECT_STREQ(JobCancelledError("x").what(), "job cancelled: x");
  EXPECT_STREQ(QuotaExceededError("x").what(), "quota exceeded: x");
  EXPECT_STREQ(TaskSupersededError("x").what(), "task superseded: x");
  EXPECT_STREQ(IntegrityError("x").what(), "integrity violation: x");
  EXPECT_STREQ(CrashPointError("x").what(), "crash point: x");
}

TEST(ErrorTaxonomy, SubclassPrefixesDoNotStack) {
  // TimeoutError and ConnectionLostError are TransientErrors but use the
  // raw-message constructor — "transient error: " must not prepend.
  const std::string timeout = TimeoutError("t").what();
  const std::string lost = ConnectionLostError("l").what();
  EXPECT_EQ(timeout.find("transient error"), std::string::npos);
  EXPECT_EQ(lost.find("transient error"), std::string::npos);
}

template <typename E>
void ExpectCatchableAsError(const E& error) {
  try {
    throw error;
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), error.what());
    return;
  }
  FAIL() << "not catchable as Error";
}

TEST(ErrorTaxonomy, EverySubclassIsCatchableAsError) {
  ExpectCatchableAsError(ParseError("x"));
  ExpectCatchableAsError(AnalysisError("x"));
  ExpectCatchableAsError(ExecutionError("x"));
  ExpectCatchableAsError(ConnectionError("x"));
  ExpectCatchableAsError(UsageError("x"));
  ExpectCatchableAsError(TransientError("x"));
  ExpectCatchableAsError(TimeoutError("x"));
  ExpectCatchableAsError(ConnectionLostError("x"));
  ExpectCatchableAsError(JobKilledError("x"));
  ExpectCatchableAsError(JobCancelledError("x"));
  ExpectCatchableAsError(QuotaExceededError("x"));
  ExpectCatchableAsError(TaskSupersededError("x"));
  ExpectCatchableAsError(IntegrityError("x"));
  ExpectCatchableAsError(CrashPointError("x"));
}

TEST(ErrorTaxonomy, TransientSubclassesCatchAsTransientError) {
  EXPECT_THROW(throw TimeoutError("x"), TransientError);
  EXPECT_THROW(throw ConnectionLostError("x"), TransientError);
  // But not the other way around: a plain TransientError is not a timeout.
  try {
    throw TransientError("x");
  } catch (const TimeoutError&) {
    FAIL() << "TransientError must not catch as TimeoutError";
  } catch (const TransientError&) {
  }
}

TEST(ErrorTaxonomy, IsTransientErrorClassifiesEverySubclass) {
  // Transient: the retry layer may re-run the failed operation.
  EXPECT_TRUE(IsTransientError(TransientError("x")));
  EXPECT_TRUE(IsTransientError(TimeoutError("x")));
  EXPECT_TRUE(IsTransientError(ConnectionLostError("x")));
  // Fatal: retrying cannot help; the original error must surface.
  EXPECT_FALSE(IsTransientError(ParseError("x")));
  EXPECT_FALSE(IsTransientError(AnalysisError("x")));
  EXPECT_FALSE(IsTransientError(ExecutionError("x")));
  EXPECT_FALSE(IsTransientError(ConnectionError("x")));
  EXPECT_FALSE(IsTransientError(UsageError("x")));
  // The governance types are deliberately fatal: retrying a cancelled job
  // resurrects work its owner stopped, and a quota breach would allocate
  // the same bytes again and fail the same way.
  EXPECT_FALSE(IsTransientError(JobKilledError("x")));
  EXPECT_FALSE(IsTransientError(JobCancelledError("x")));
  EXPECT_FALSE(IsTransientError(QuotaExceededError("x")));
  EXPECT_FALSE(IsTransientError(TaskSupersededError("x")));
  // Durability errors are deliberately fatal: an integrity violation means
  // the data is wrong — re-reading it cannot make it right — and a crash
  // point must "kill the process", not be absorbed by a retry loop.
  EXPECT_FALSE(IsTransientError(IntegrityError("x")));
  EXPECT_FALSE(IsTransientError(CrashPointError("x")));
  EXPECT_FALSE(IsTransientError(Error("x")));
  EXPECT_FALSE(IsTransientError(std::runtime_error("x")));
}

TEST(ErrorTaxonomy, ClassificationSurvivesErrorReference) {
  // The runner catches `const std::exception&`; classification must work
  // through the base reference, not just the static type.
  const TimeoutError timeout("t");
  const ExecutionError fatal("f");
  const std::exception& transient_ref = timeout;
  const std::exception& fatal_ref = fatal;
  EXPECT_TRUE(IsTransientError(transient_ref));
  EXPECT_FALSE(IsTransientError(fatal_ref));
}

}  // namespace
}  // namespace sqloop
