#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>

namespace sqloop {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter](size_t) { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WorkerStartHookRunsOncePerWorker) {
  std::mutex mutex;
  std::set<size_t> started;
  ThreadPool pool(3, [&](size_t index) {
    const std::scoped_lock lock(mutex);
    started.insert(index);
  });
  std::atomic<int> done{0};
  for (int i = 0; i < 12; ++i) {
    pool.Submit([&done](size_t) { done.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(done.load(), 12);
  const std::scoped_lock lock(mutex);
  EXPECT_EQ(started, (std::set<size_t>{0, 1, 2}));
}

TEST(ThreadPool, WorkerIndexInRange) {
  ThreadPool pool(2);
  std::atomic<bool> ok{true};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&ok](size_t index) {
      if (index >= 2) ok.store(false);
    });
  }
  pool.WaitIdle();
  EXPECT_TRUE(ok.load());
}

TEST(ThreadPool, FuturePropagatesCompletion) {
  ThreadPool pool(1);
  auto future = pool.Submit([](size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  });
  future.wait();
  SUCCEED();
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.WaitIdle();
  SUCCEED();
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter](size_t) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        counter.fetch_add(1);
      });
    }
    pool.WaitIdle();
  }
  EXPECT_EQ(counter.load(), 20);
}

TEST(TaskGroup, WaitIdleWaitsOnlyOwnTasks) {
  ThreadPool pool(4);
  TaskGroup slow(pool);
  TaskGroup fast(pool);

  std::atomic<bool> release{false};
  std::atomic<int> slow_done{0};
  std::atomic<int> fast_done{0};
  for (int i = 0; i < 2; ++i) {
    slow.Submit([&](size_t) {
      while (!release.load()) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
      slow_done.fetch_add(1);
    });
  }
  for (int i = 0; i < 8; ++i) {
    fast.Submit([&](size_t) { fast_done.fetch_add(1); });
  }

  // The fast group's barrier must not wait for the slow group's tasks.
  fast.WaitIdle();
  EXPECT_EQ(fast_done.load(), 8);
  EXPECT_EQ(slow_done.load(), 0);

  release.store(true);
  slow.WaitIdle();
  EXPECT_EQ(slow_done.load(), 2);
}

TEST(TaskGroup, DestructorDrainsPendingTasks) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  {
    TaskGroup group(pool);
    for (int i = 0; i < 16; ++i) {
      group.Submit([&done](size_t) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        done.fetch_add(1);
      });
    }
  }
  EXPECT_EQ(done.load(), 16);
}

TEST(TaskGroup, TasksMaySubmitFollowUpsIntoTheirGroup) {
  ThreadPool pool(3);
  TaskGroup group(pool);
  std::atomic<int> done{0};
  for (int i = 0; i < 4; ++i) {
    group.Submit([&](size_t) {
      done.fetch_add(1);
      group.Submit([&done](size_t) { done.fetch_add(1); });
    });
  }
  group.WaitIdle();
  EXPECT_EQ(done.load(), 8);
}

TEST(TaskGroup, ThrowingTaskStillCountsAsDone) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  std::atomic<int> done{0};
  group.Submit([](size_t) { throw std::runtime_error("task failed"); });
  group.Submit([&done](size_t) { done.fetch_add(1); });
  group.WaitIdle();  // must not hang on the failed task's pending count
  EXPECT_EQ(done.load(), 1);
}

}  // namespace
}  // namespace sqloop
