#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>

namespace sqloop {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter](size_t) { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WorkerStartHookRunsOncePerWorker) {
  std::mutex mutex;
  std::set<size_t> started;
  ThreadPool pool(3, [&](size_t index) {
    const std::scoped_lock lock(mutex);
    started.insert(index);
  });
  std::atomic<int> done{0};
  for (int i = 0; i < 12; ++i) {
    pool.Submit([&done](size_t) { done.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(done.load(), 12);
  const std::scoped_lock lock(mutex);
  EXPECT_EQ(started, (std::set<size_t>{0, 1, 2}));
}

TEST(ThreadPool, WorkerIndexInRange) {
  ThreadPool pool(2);
  std::atomic<bool> ok{true};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&ok](size_t index) {
      if (index >= 2) ok.store(false);
    });
  }
  pool.WaitIdle();
  EXPECT_TRUE(ok.load());
}

TEST(ThreadPool, FuturePropagatesCompletion) {
  ThreadPool pool(1);
  auto future = pool.Submit([](size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  });
  future.wait();
  SUCCEED();
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.WaitIdle();
  SUCCEED();
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter](size_t) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        counter.fetch_add(1);
      });
    }
    pool.WaitIdle();
  }
  EXPECT_EQ(counter.load(), 20);
}

}  // namespace
}  // namespace sqloop
