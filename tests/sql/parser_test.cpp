#include "sql/parser.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "sql/printer.h"

namespace sqloop::sql {
namespace {

// --- plain statements -------------------------------------------------

TEST(Parser, SimpleSelect) {
  const auto stmt = ParseStatement("SELECT a, b FROM t WHERE a > 1");
  ASSERT_EQ(stmt->kind, StatementKind::kSelect);
  const auto& core = stmt->select->cores.at(0);
  ASSERT_EQ(core.items.size(), 2u);
  EXPECT_EQ(core.items[0].expr->column, "a");
  ASSERT_NE(core.from, nullptr);
  EXPECT_EQ(core.from->table_name, "t");
  ASSERT_NE(core.where, nullptr);
  EXPECT_EQ(core.where->binary_op, BinaryOp::kGreater);
}

TEST(Parser, SelectStarAndQualifiedStar) {
  const auto stmt = ParseStatement("SELECT *, t.* FROM t");
  const auto& items = stmt->select->cores[0].items;
  EXPECT_EQ(items[0].expr->kind, ExprKind::kStar);
  EXPECT_EQ(items[1].expr->kind, ExprKind::kStar);
  EXPECT_EQ(items[1].expr->qualifier, "t");
}

TEST(Parser, GroupByWithAggregate) {
  const auto stmt = ParseStatement(
      "SELECT dst, SUM(w) AS total FROM edges GROUP BY dst HAVING SUM(w) > 2");
  const auto& core = stmt->select->cores[0];
  ASSERT_EQ(core.group_by.size(), 1u);
  EXPECT_EQ(core.items[1].expr->kind, ExprKind::kAggregate);
  EXPECT_EQ(core.items[1].expr->agg_func, AggFunc::kSum);
  EXPECT_EQ(core.items[1].alias, "total");
  ASSERT_NE(core.having, nullptr);
}

TEST(Parser, CountStarAndCountDistinct) {
  const auto stmt =
      ParseStatement("SELECT COUNT(*), COUNT(DISTINCT x) FROM t");
  const auto& items = stmt->select->cores[0].items;
  EXPECT_TRUE(items[0].expr->agg_star);
  EXPECT_TRUE(items[1].expr->agg_distinct);
}

TEST(Parser, StarOnlyValidForCount) {
  EXPECT_THROW(ParseStatement("SELECT SUM(*) FROM t"), ParseError);
}

TEST(Parser, JoinsInnerLeftCross) {
  const auto stmt = ParseStatement(
      "SELECT * FROM a JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y "
      "CROSS JOIN d");
  const auto& from = stmt->select->cores[0].from;
  ASSERT_EQ(from->kind, TableRefKind::kJoin);
  EXPECT_EQ(from->join_kind, JoinKind::kCross);
  EXPECT_EQ(from->left->join_kind, JoinKind::kLeft);
  EXPECT_EQ(from->left->left->join_kind, JoinKind::kInner);
}

TEST(Parser, CommaJoinBecomesCross) {
  const auto stmt = ParseStatement("SELECT * FROM a, b WHERE a.x = b.x");
  const auto& from = stmt->select->cores[0].from;
  ASSERT_EQ(from->kind, TableRefKind::kJoin);
  EXPECT_EQ(from->join_kind, JoinKind::kCross);
}

TEST(Parser, SubqueryInFrom) {
  const auto stmt = ParseStatement(
      "SELECT s.x FROM (SELECT x FROM t) AS s WHERE s.x > 0");
  const auto& from = stmt->select->cores[0].from;
  ASSERT_EQ(from->kind, TableRefKind::kSubquery);
  EXPECT_EQ(from->alias, "s");
}

TEST(Parser, UnionChain) {
  const auto stmt = ParseStatement(
      "SELECT src FROM edges UNION SELECT dst FROM edges UNION ALL SELECT 1");
  EXPECT_EQ(stmt->select->cores.size(), 3u);
  EXPECT_EQ(stmt->select->set_ops[0], SetOp::kUnion);
  EXPECT_EQ(stmt->select->set_ops[1], SetOp::kUnionAll);
}

TEST(Parser, OrderByLimit) {
  const auto stmt =
      ParseStatement("SELECT a FROM t ORDER BY a DESC, b LIMIT 5");
  EXPECT_EQ(stmt->select->order_by.size(), 2u);
  EXPECT_FALSE(stmt->select->order_by[0].ascending);
  EXPECT_TRUE(stmt->select->order_by[1].ascending);
  EXPECT_EQ(stmt->select->limit, 5);
}

TEST(Parser, LimitOffset) {
  const auto stmt = ParseStatement("SELECT a FROM t LIMIT 10 OFFSET 20");
  EXPECT_EQ(stmt->select->limit, 10);
  EXPECT_EQ(stmt->select->offset, 20);
}

TEST(Parser, ValuesMultiRow) {
  const auto stmt = ParseStatement("VALUES (0, 1), (2, 3)");
  EXPECT_EQ(stmt->select->cores.size(), 2u);
  EXPECT_EQ(stmt->select->set_ops[0], SetOp::kUnionAll);
}

TEST(Parser, CaseSearchedAndCoalesce) {
  const auto stmt = ParseStatement(
      "SELECT CASE WHEN src = 1 THEN 0 ELSE Infinity END, "
      "COALESCE(x, 0.15), LEAST(a, b) FROM t");
  const auto& items = stmt->select->cores[0].items;
  EXPECT_EQ(items[0].expr->kind, ExprKind::kCase);
  EXPECT_EQ(items[1].expr->kind, ExprKind::kFunction);
  EXPECT_EQ(items[1].expr->function_name, "COALESCE");
  EXPECT_EQ(items[2].expr->function_name, "LEAST");
}

TEST(Parser, IsNullAndIsNotNull) {
  const auto stmt =
      ParseStatement("SELECT * FROM t WHERE a IS NULL AND b IS NOT NULL");
  const auto& where = stmt->select->cores[0].where;
  EXPECT_EQ(where->binary_op, BinaryOp::kAnd);
  EXPECT_EQ(where->left->kind, ExprKind::kIsNull);
  EXPECT_FALSE(where->left->is_not_null);
  EXPECT_TRUE(where->right->is_not_null);
}

TEST(Parser, BetweenAndInDesugar) {
  const auto stmt = ParseStatement(
      "SELECT * FROM t WHERE a BETWEEN 1 AND 3 AND b IN (1, 2)");
  // Both desugar to boolean trees; printing should round-trip semantics.
  const std::string printed = PrintStatement(*stmt);
  EXPECT_NE(printed.find(">="), std::string::npos);
  EXPECT_NE(printed.find("<="), std::string::npos);
  EXPECT_NE(printed.find("OR"), std::string::npos);
}

TEST(Parser, ArithmeticPrecedence) {
  const auto stmt = ParseStatement("SELECT 1 + 2 * 3");
  const auto& expr = stmt->select->cores[0].items[0].expr;
  EXPECT_EQ(expr->binary_op, BinaryOp::kAdd);
  EXPECT_EQ(expr->right->binary_op, BinaryOp::kMul);
}

TEST(Parser, CreateTableWithPrimaryKeyAndTypes) {
  const auto stmt = ParseStatement(
      "CREATE TABLE r (node BIGINT PRIMARY KEY, rank DOUBLE PRECISION, "
      "name TEXT)");
  ASSERT_EQ(stmt->kind, StatementKind::kCreateTable);
  EXPECT_EQ(stmt->table_name, "r");
  ASSERT_EQ(stmt->columns.size(), 3u);
  EXPECT_EQ(stmt->primary_key_index, 0);
  EXPECT_EQ(stmt->columns[0].type, ValueType::kInt64);
  EXPECT_EQ(stmt->columns[1].type, ValueType::kDouble);
  EXPECT_EQ(stmt->columns[1].type_spelling, "DOUBLE PRECISION");
  EXPECT_EQ(stmt->columns[2].type, ValueType::kText);
}

TEST(Parser, CreateUnloggedTableAndEngineOption) {
  const auto pg = ParseStatement("CREATE UNLOGGED TABLE t (a BIGINT)");
  EXPECT_TRUE(pg->unlogged);
  const auto my =
      ParseStatement("CREATE TABLE t (a BIGINT) ENGINE = MyISAM");
  EXPECT_EQ(my->engine_option, "MyISAM");
}

TEST(Parser, CreateIndexAndDrop) {
  const auto ci = ParseStatement("CREATE INDEX idx ON t (a, b)");
  ASSERT_EQ(ci->kind, StatementKind::kCreateIndex);
  EXPECT_EQ(ci->index_name, "idx");
  EXPECT_EQ(ci->index_columns.size(), 2u);

  const auto di = ParseStatement("DROP INDEX IF EXISTS idx ON t");
  ASSERT_EQ(di->kind, StatementKind::kDropIndex);
  EXPECT_TRUE(di->if_exists);
  EXPECT_EQ(di->table_name, "t");
}

TEST(Parser, InsertValuesAndSelect) {
  const auto iv =
      ParseStatement("INSERT INTO t (a, b) VALUES (1, 2), (3, 4)");
  ASSERT_EQ(iv->kind, StatementKind::kInsert);
  EXPECT_EQ(iv->insert_columns.size(), 2u);
  EXPECT_EQ(iv->insert_rows.size(), 2u);

  const auto is = ParseStatement("INSERT INTO t SELECT a, b FROM s");
  ASSERT_NE(is->insert_select, nullptr);
}

TEST(Parser, UpdateWithFromAndWhere) {
  const auto stmt = ParseStatement(
      "UPDATE r SET delta = delta + m.v FROM "
      "(SELECT id, SUM(v) AS v FROM msg GROUP BY id) AS m "
      "WHERE r.id = m.id");
  ASSERT_EQ(stmt->kind, StatementKind::kUpdate);
  ASSERT_EQ(stmt->set_items.size(), 1u);
  EXPECT_EQ(stmt->set_items[0].first, "delta");
  ASSERT_NE(stmt->update_from, nullptr);
  EXPECT_EQ(stmt->update_from->kind, TableRefKind::kSubquery);
  ASSERT_NE(stmt->where, nullptr);
}

TEST(Parser, DeleteAndTruncate) {
  EXPECT_EQ(ParseStatement("DELETE FROM t WHERE a = 1")->kind,
            StatementKind::kDelete);
  EXPECT_EQ(ParseStatement("TRUNCATE TABLE t")->kind,
            StatementKind::kTruncate);
}

TEST(Parser, DumpAndRestore) {
  const auto dump = ParseStatement("DUMP TABLE t TO '/tmp/t.dump'");
  EXPECT_EQ(dump->kind, StatementKind::kDumpTable);
  EXPECT_EQ(dump->table_name, "t");
  EXPECT_EQ(dump->file_path, "/tmp/t.dump");
  const auto restore = ParseStatement("RESTORE TABLE t FROM '/tmp/t.dump'");
  EXPECT_EQ(restore->kind, StatementKind::kRestoreTable);
  EXPECT_EQ(restore->table_name, "t");
  EXPECT_EQ(restore->file_path, "/tmp/t.dump");
  // The TABLE keyword is optional, like TRUNCATE's.
  EXPECT_EQ(ParseStatement("DUMP t TO 'x'")->kind, StatementKind::kDumpTable);
  EXPECT_EQ(ParseStatement("RESTORE t FROM 'x'")->kind,
            StatementKind::kRestoreTable);
}

TEST(Parser, CheckTable) {
  const auto check = ParseStatement("CHECK TABLE t");
  EXPECT_EQ(check->kind, StatementKind::kCheckTable);
  EXPECT_EQ(check->table_name, "t");
  // The TABLE keyword is optional, like DUMP's and TRUNCATE's.
  EXPECT_EQ(ParseStatement("CHECK t")->kind, StatementKind::kCheckTable);
  EXPECT_THROW(ParseStatement("CHECK TABLE"), ParseError);
}

TEST(Parser, TransactionStatements) {
  EXPECT_EQ(ParseStatement("BEGIN")->kind, StatementKind::kBegin);
  EXPECT_EQ(ParseStatement("BEGIN TRANSACTION")->kind, StatementKind::kBegin);
  EXPECT_EQ(ParseStatement("COMMIT")->kind, StatementKind::kCommit);
  EXPECT_EQ(ParseStatement("ROLLBACK")->kind, StatementKind::kRollback);
}

// --- CTEs ---------------------------------------------------------------

TEST(Parser, RecursiveCteFibonacci) {
  // Example 1 from the paper.
  const auto stmt = ParseStatement(
      "WITH RECURSIVE Fibonacci(n, pn) AS ("
      "  VALUES (0, 1)"
      "  UNION ALL"
      "  SELECT n + pn, n FROM Fibonacci WHERE n < 1000"
      ") SELECT SUM(n) FROM Fibonacci");
  ASSERT_EQ(stmt->kind, StatementKind::kWith);
  EXPECT_EQ(stmt->with.kind, CteKind::kRecursive);
  EXPECT_EQ(stmt->with.name, "Fibonacci");
  ASSERT_EQ(stmt->with.columns.size(), 2u);
  ASSERT_NE(stmt->with.seed, nullptr);
  ASSERT_NE(stmt->with.step, nullptr);
  ASSERT_NE(stmt->with.final_query, nullptr);
}

TEST(Parser, IterativeCtePageRankShape) {
  // Example 2 from the paper (structure, simplified expressions).
  const auto stmt = ParseStatement(
      "WITH ITERATIVE PageRank(Node, Rank, Delta) AS ("
      "  SELECT src, 0, 0.15 FROM (SELECT src FROM edges UNION "
      "  SELECT dst FROM edges) AS alledges GROUP BY src"
      "  ITERATE"
      "  SELECT PageRank.Node,"
      "    COALESCE(PageRank.Rank + PageRank.Delta, 0.15),"
      "    COALESCE(0.85 * SUM(IncomingRank.Delta * IncomingEdges.weight), 0.0)"
      "  FROM PageRank"
      "  LEFT JOIN edges AS IncomingEdges ON PageRank.Node = IncomingEdges.dst"
      "  LEFT JOIN PageRank AS IncomingRank "
      "    ON IncomingRank.Node = IncomingEdges.src"
      "  GROUP BY PageRank.Node"
      "  UNTIL 100 ITERATIONS"
      ") SELECT Node, Rank FROM PageRank");
  ASSERT_EQ(stmt->kind, StatementKind::kWith);
  EXPECT_EQ(stmt->with.kind, CteKind::kIterative);
  EXPECT_EQ(stmt->with.termination.kind, Termination::Kind::kIterations);
  EXPECT_EQ(stmt->with.termination.count, 100);
  // The step self-joins PageRank via the IncomingRank alias.
  ASSERT_NE(stmt->with.step, nullptr);
}

TEST(Parser, IterativeCteUpdatesTermination) {
  const auto stmt = ParseStatement(
      "WITH ITERATIVE sssp(Node, Distance, Delta) AS ("
      "  SELECT src, Infinity, 0 FROM edges GROUP BY src"
      "  ITERATE SELECT Node, Distance, Delta FROM sssp"
      "  UNTIL 0 UPDATES"
      ") SELECT * FROM sssp");
  EXPECT_EQ(stmt->with.termination.kind, Termination::Kind::kUpdates);
  EXPECT_EQ(stmt->with.termination.count, 0);
}

TEST(Parser, TerminationDataProbeForms) {
  const auto all = ParseStatement(
      "WITH ITERATIVE r(a) AS (SELECT 1 ITERATE SELECT a FROM r "
      "UNTIL (SELECT a FROM r WHERE a > 0)) SELECT * FROM r");
  EXPECT_EQ(all->with.termination.kind, Termination::Kind::kProbeAll);
  EXPECT_FALSE(all->with.termination.delta);

  const auto any = ParseStatement(
      "WITH ITERATIVE r(a) AS (SELECT 1 ITERATE SELECT a FROM r "
      "UNTIL ANY (SELECT a FROM r WHERE a > 10)) SELECT * FROM r");
  EXPECT_EQ(any->with.termination.kind, Termination::Kind::kProbeAny);

  const auto cmp = ParseStatement(
      "WITH ITERATIVE r(a) AS (SELECT 1 ITERATE SELECT a FROM r "
      "UNTIL (SELECT SUM(a) FROM r) > 100) SELECT * FROM r");
  EXPECT_EQ(cmp->with.termination.kind, Termination::Kind::kProbeCompare);
  EXPECT_EQ(cmp->with.termination.comparator, '>');
  EXPECT_EQ(cmp->with.termination.bound.as_int(), 100);
}

TEST(Parser, TerminationDeltaForms) {
  const auto d = ParseStatement(
      "WITH ITERATIVE r(a) AS (SELECT 1 ITERATE SELECT a FROM r "
      "UNTIL DELTA (SELECT a FROM r)) SELECT * FROM r");
  EXPECT_TRUE(d->with.termination.delta);
  EXPECT_EQ(d->with.termination.kind, Termination::Kind::kProbeAll);

  const auto ad = ParseStatement(
      "WITH ITERATIVE r(a) AS (SELECT 1 ITERATE SELECT a FROM r "
      "UNTIL ANY DELTA (SELECT a FROM r)) SELECT * FROM r");
  EXPECT_TRUE(ad->with.termination.delta);
  EXPECT_EQ(ad->with.termination.kind, Termination::Kind::kProbeAny);

  const auto dc = ParseStatement(
      "WITH ITERATIVE r(a) AS (SELECT 1 ITERATE SELECT a FROM r "
      "UNTIL DELTA (SELECT SUM(a) FROM r) < 0.001) SELECT * FROM r");
  EXPECT_TRUE(dc->with.termination.delta);
  EXPECT_EQ(dc->with.termination.kind, Termination::Kind::kProbeCompare);
  EXPECT_EQ(dc->with.termination.comparator, '<');
  EXPECT_DOUBLE_EQ(dc->with.termination.bound.as_double(), 0.001);
}

TEST(Parser, RecursiveCteRequiresUnionAll) {
  EXPECT_THROW(ParseStatement(
                   "WITH RECURSIVE r(a) AS (SELECT 1 UNION SELECT a FROM r) "
                   "SELECT * FROM r"),
               ParseError);
  EXPECT_THROW(
      ParseStatement("WITH RECURSIVE r(a) AS (SELECT 1) SELECT * FROM r"),
      ParseError);
}

TEST(Parser, NegativeIterationCountRejected) {
  EXPECT_THROW(ParseStatement(
                   "WITH ITERATIVE r(a) AS (SELECT 1 ITERATE SELECT a FROM r "
                   "UNTIL 0 ITERATIONS) SELECT * FROM r"),
               ParseError);
}

TEST(Parser, ScriptSplitsStatements) {
  const auto script = ParseScript(
      "CREATE TABLE t (a BIGINT); INSERT INTO t VALUES (1);;"
      "SELECT * FROM t;");
  ASSERT_EQ(script.size(), 3u);
  EXPECT_EQ(script[0]->kind, StatementKind::kCreateTable);
  EXPECT_EQ(script[1]->kind, StatementKind::kInsert);
  EXPECT_EQ(script[2]->kind, StatementKind::kSelect);
}

TEST(Parser, GarbageThrows) {
  EXPECT_THROW(ParseStatement("FLY ME TO THE MOON"), ParseError);
  EXPECT_THROW(ParseStatement("SELECT FROM"), ParseError);
  EXPECT_THROW(ParseStatement("SELECT 1 FROM t WHERE"), ParseError);
}

}  // namespace
}  // namespace sqloop::sql
