#include "sql/printer.h"

#include <gtest/gtest.h>

#include "sql/parser.h"

namespace sqloop::sql {
namespace {

/// Parse → print → parse → print must be a fixed point.
void ExpectRoundTrip(const std::string& source) {
  const auto first = ParseStatement(source);
  const std::string printed = PrintStatement(*first);
  const auto second = ParseStatement(printed);
  EXPECT_EQ(printed, PrintStatement(*second)) << "source: " << source;
}

TEST(Printer, RoundTripSelect) {
  ExpectRoundTrip("SELECT a, b FROM t WHERE a > 1 GROUP BY a HAVING SUM(b) > 2");
  ExpectRoundTrip("SELECT * FROM a JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y");
  ExpectRoundTrip("SELECT src FROM edges UNION SELECT dst FROM edges");
  ExpectRoundTrip("SELECT a FROM t ORDER BY a DESC LIMIT 3");
  ExpectRoundTrip("SELECT CASE WHEN a = 1 THEN 0 ELSE 2 END FROM t");
  ExpectRoundTrip("SELECT COALESCE(a, 0.15), LEAST(a, b) FROM t");
  ExpectRoundTrip("SELECT COUNT(*), COUNT(DISTINCT a), AVG(b) FROM t");
}

TEST(Printer, RoundTripDml) {
  ExpectRoundTrip("INSERT INTO t (a, b) VALUES (1, 2), (3, NULL)");
  ExpectRoundTrip("INSERT INTO t SELECT a FROM s WHERE a IS NOT NULL");
  ExpectRoundTrip(
      "UPDATE r SET d = d + m.v FROM (SELECT i, SUM(v) AS v FROM msg "
      "GROUP BY i) AS m WHERE r.i = m.i");
  ExpectRoundTrip("DELETE FROM t WHERE a = 1");
  ExpectRoundTrip("DUMP TABLE t TO '/tmp/ckpt/t.dump'");
  ExpectRoundTrip("RESTORE TABLE t FROM '/tmp/ckpt/t.dump'");
  ExpectRoundTrip("CHECK TABLE t");
}

TEST(Printer, RoundTripCtes) {
  ExpectRoundTrip(
      "WITH RECURSIVE f(n, pn) AS (VALUES (0, 1) UNION ALL "
      "SELECT n + pn, n FROM f WHERE n < 1000) SELECT SUM(n) FROM f");
  ExpectRoundTrip(
      "WITH ITERATIVE r(a, d) AS (SELECT 1, 0.5 ITERATE "
      "SELECT a, SUM(d) FROM r GROUP BY a UNTIL 10 ITERATIONS) "
      "SELECT * FROM r");
  ExpectRoundTrip(
      "WITH ITERATIVE r(a, d) AS (SELECT 1, 0.5 ITERATE "
      "SELECT a, d FROM r UNTIL DELTA (SELECT SUM(d) FROM r) < 0.01) "
      "SELECT * FROM r");
  ExpectRoundTrip(
      "WITH ITERATIVE r(a) AS (SELECT 1 ITERATE SELECT a FROM r "
      "UNTIL ANY (SELECT a FROM r WHERE a > 3)) SELECT * FROM r");
}

TEST(Printer, DoubleTypePerDialect) {
  const auto stmt =
      ParseStatement("CREATE TABLE t (a BIGINT PRIMARY KEY, b DOUBLE)");
  const std::string pg = PrintStatement(*stmt, Dialect::kPostgres);
  const std::string my = PrintStatement(*stmt, Dialect::kMySql);
  EXPECT_NE(pg.find("DOUBLE PRECISION"), std::string::npos);
  EXPECT_EQ(my.find("PRECISION"), std::string::npos);
  EXPECT_NE(my.find("DOUBLE"), std::string::npos);
}

TEST(Printer, UnloggedTranslatesToEngineOption) {
  const auto stmt = ParseStatement("CREATE UNLOGGED TABLE t (a BIGINT)");
  const std::string pg = PrintStatement(*stmt, Dialect::kPostgres);
  const std::string maria = PrintStatement(*stmt, Dialect::kMariaDb);
  EXPECT_NE(pg.find("UNLOGGED"), std::string::npos);
  EXPECT_EQ(maria.find("UNLOGGED"), std::string::npos);
  EXPECT_NE(maria.find("ENGINE=MyISAM"), std::string::npos);
}

TEST(Printer, ReservedIdentifiersAreQuotedPerDialect) {
  const auto order = MakeColumnRef("t", "order");
  EXPECT_EQ(PrintExpr(*order, Dialect::kPostgres), "t.\"order\"");
  EXPECT_EQ(PrintExpr(*order, Dialect::kMySql), "t.`order`");
}

TEST(Printer, StringLiteralEscaping) {
  const auto lit = MakeLiteral(Value(std::string("it's")));
  EXPECT_EQ(PrintExpr(*lit), "'it''s'");
}

TEST(Printer, InfinityLiteralPrints) {
  const auto stmt = ParseStatement("SELECT Infinity");
  EXPECT_NE(PrintStatement(*stmt).find("Infinity"), std::string::npos);
}

TEST(Printer, TerminationForms) {
  Termination tc;
  tc.kind = Termination::Kind::kIterations;
  tc.count = 100;
  EXPECT_EQ(PrintTermination(tc), "100 ITERATIONS");

  tc.kind = Termination::Kind::kUpdates;
  tc.count = 0;
  EXPECT_EQ(PrintTermination(tc), "0 UPDATES");

  tc.kind = Termination::Kind::kProbeCompare;
  tc.delta = true;
  tc.comparator = '<';
  tc.bound = Value(0.001);
  tc.probe = ParseSelect("SELECT SUM(d) FROM r");
  const std::string printed = PrintTermination(tc);
  EXPECT_NE(printed.find("DELTA"), std::string::npos);
  EXPECT_NE(printed.find("<"), std::string::npos);
}

}  // namespace
}  // namespace sqloop::sql
