#include "sql/lexer.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace sqloop::sql {
namespace {

TEST(Lexer, KeywordsAreCaseInsensitive) {
  const auto tokens = Tokenize("select Select SELECT");
  ASSERT_EQ(tokens.size(), 4u);  // 3 + end
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(tokens[i].kind, TokenKind::kKeyword);
    EXPECT_EQ(tokens[i].upper, "SELECT");
  }
}

TEST(Lexer, IdentifiersKeepCase) {
  const auto tokens = Tokenize("PageRank edges_2");
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[0].text, "PageRank");
  EXPECT_EQ(tokens[1].text, "edges_2");
}

TEST(Lexer, IterativeExtensionKeywords) {
  const auto tokens = Tokenize("ITERATIVE ITERATE UNTIL ITERATIONS UPDATES DELTA ANY");
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    EXPECT_EQ(tokens[i].kind, TokenKind::kKeyword) << i;
  }
}

TEST(Lexer, NumbersIntAndDouble) {
  const auto tokens = Tokenize("42 0.15 1e3 2.5E-2 .5");
  EXPECT_EQ(tokens[0].kind, TokenKind::kIntegerLiteral);
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].kind, TokenKind::kDoubleLiteral);
  EXPECT_DOUBLE_EQ(tokens[1].double_value, 0.15);
  EXPECT_DOUBLE_EQ(tokens[2].double_value, 1000.0);
  EXPECT_DOUBLE_EQ(tokens[3].double_value, 0.025);
  EXPECT_DOUBLE_EQ(tokens[4].double_value, 0.5);
}

TEST(Lexer, StringLiteralWithEscapedQuote) {
  const auto tokens = Tokenize("'it''s'");
  ASSERT_EQ(tokens[0].kind, TokenKind::kStringLiteral);
  EXPECT_EQ(tokens[0].text, "it's");
}

TEST(Lexer, QuotedIdentifiersBothStyles) {
  const auto pg = Tokenize("\"Select\"");
  EXPECT_EQ(pg[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(pg[0].text, "Select");
  EXPECT_EQ(pg[0].quote, '"');

  const auto my = Tokenize("`order`");
  EXPECT_EQ(my[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(my[0].text, "order");
  EXPECT_EQ(my[0].quote, '`');
}

TEST(Lexer, OperatorsIncludingTwoChar) {
  const auto tokens = Tokenize("<= >= != <> = < >");
  EXPECT_EQ(tokens[0].kind, TokenKind::kLessEq);
  EXPECT_EQ(tokens[1].kind, TokenKind::kGreaterEq);
  EXPECT_EQ(tokens[2].kind, TokenKind::kNotEq);
  EXPECT_EQ(tokens[3].kind, TokenKind::kNotEq);
  EXPECT_EQ(tokens[4].kind, TokenKind::kEq);
  EXPECT_EQ(tokens[5].kind, TokenKind::kLess);
  EXPECT_EQ(tokens[6].kind, TokenKind::kGreater);
}

TEST(Lexer, CommentsAreSkipped) {
  const auto tokens = Tokenize("SELECT -- trailing comment\n 1 /* block */ + 2");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].upper, "SELECT");
  EXPECT_EQ(tokens[1].int_value, 1);
  EXPECT_EQ(tokens[2].kind, TokenKind::kPlus);
  EXPECT_EQ(tokens[3].int_value, 2);
}

TEST(Lexer, UnterminatedStringThrows) {
  EXPECT_THROW(Tokenize("'abc"), ParseError);
}

TEST(Lexer, UnterminatedBlockCommentThrows) {
  EXPECT_THROW(Tokenize("/* abc"), ParseError);
}

TEST(Lexer, UnexpectedCharacterThrows) {
  EXPECT_THROW(Tokenize("SELECT @x"), ParseError);
}

TEST(Lexer, EndTokenAlwaysPresent) {
  const auto tokens = Tokenize("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kEnd);
}

TEST(Lexer, InfinityIsKeyword) {
  const auto tokens = Tokenize("Infinity");
  EXPECT_EQ(tokens[0].kind, TokenKind::kKeyword);
  EXPECT_EQ(tokens[0].upper, "INFINITY");
}

}  // namespace
}  // namespace sqloop::sql
