#include "sql/value.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace sqloop {
namespace {

TEST(Value, NullBehaviour) {
  const Value null = Value::Null();
  EXPECT_TRUE(null.is_null());
  EXPECT_FALSE(null == null);  // SQL: NULL = NULL is not true
  EXPECT_TRUE(Value::KeyEquals(null, null));
  EXPECT_EQ(null.ToSqlLiteral(), "NULL");
}

TEST(Value, NumericCrossTypeComparison) {
  const Value i(int64_t{3});
  const Value d(3.0);
  EXPECT_EQ(Value::Compare(i, d), 0);
  EXPECT_TRUE(i == d);
  EXPECT_EQ(i.Hash(), d.Hash());  // required for hash-join key equality
}

TEST(Value, OrderingAcrossTypes) {
  EXPECT_LT(Value::Compare(Value::Null(), Value(int64_t{0})), 0);
  EXPECT_LT(Value::Compare(Value(int64_t{5}), Value(std::string("a"))), 0);
  EXPECT_LT(Value::Compare(Value(1.5), Value(int64_t{2})), 0);
  EXPECT_GT(Value::Compare(Value(std::string("b")), Value(std::string("a"))),
            0);
}

TEST(Value, InfinityRendersAndCompares) {
  const double inf = std::numeric_limits<double>::infinity();
  const Value v(inf);
  EXPECT_EQ(v.ToString(), "Infinity");
  EXPECT_GT(Value::Compare(v, Value(1e308)), 0);
  EXPECT_EQ(Value::Compare(v, Value(inf)), 0);
}

TEST(Value, TextLiteralQuoting) {
  EXPECT_EQ(Value(std::string("o'clock")).ToSqlLiteral(), "'o''clock'");
  EXPECT_EQ(Value(std::string("plain")).ToSqlLiteral(), "'plain'");
}

TEST(Value, DoubleRoundTripPrecision) {
  const Value v(0.1 + 0.2);
  const double parsed = std::stod(v.ToString());
  EXPECT_DOUBLE_EQ(parsed, 0.1 + 0.2);
}

TEST(Value, KeyEqualsDistinguishesNullFromZero) {
  EXPECT_FALSE(Value::KeyEquals(Value::Null(), Value(int64_t{0})));
  EXPECT_FALSE(Value::KeyEquals(Value(int64_t{0}), Value::Null()));
}

TEST(Value, TypeNames) {
  EXPECT_STREQ(ValueTypeName(ValueType::kInt64), "BIGINT");
  EXPECT_STREQ(ValueTypeName(ValueType::kDouble), "DOUBLE");
  EXPECT_STREQ(ValueTypeName(ValueType::kText), "TEXT");
  EXPECT_STREQ(ValueTypeName(ValueType::kNull), "NULL");
}

}  // namespace
}  // namespace sqloop
