// Shared helpers for minidb tests.
#pragma once

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "minidb/database.h"
#include "minidb/executor.h"

namespace sqloop::minidb::testing {

/// A database + executor pair with a convenience Run() helper.
class DbFixture : public ::testing::Test {
 protected:
  explicit DbFixture(EngineProfile profile = EngineProfile::Canonical())
      : db_("testdb", std::move(profile)), exec_(db_) {}

  ResultSet Run(const std::string& sql) { return exec_.ExecuteSql(sql); }

  ResultSet Run(const std::string& sql, Session& session) {
    return exec_.ExecuteSql(sql, &session);
  }

  /// Runs a query and returns its single scalar result.
  Value Scalar(const std::string& sql) {
    const ResultSet result = Run(sql);
    EXPECT_EQ(result.rows.size(), 1u) << sql;
    EXPECT_EQ(result.rows.at(0).size(), 1u) << sql;
    return result.rows.at(0).at(0);
  }

  Database db_;
  Executor exec_;
};

/// Sorts rows for order-insensitive comparison.
inline std::vector<Row> Sorted(std::vector<Row> rows) {
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    const size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i) {
      const int c = Value::Compare(a[i], b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  });
  return rows;
}

}  // namespace sqloop::minidb::testing
