#include "minidb/table.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace sqloop::minidb {
namespace {

Schema MakeSchema() {
  return Schema({{"id", ValueType::kInt64},
                 {"score", ValueType::kDouble},
                 {"label", ValueType::kText}},
                /*primary_key_index=*/0);
}

Row MakeRow(int64_t id, double score, const std::string& label) {
  return {Value(id), Value(score), Value(label)};
}

TEST(Table, InsertAndLookup) {
  Table t("t", MakeSchema());
  t.Insert(MakeRow(1, 0.5, "a"));
  t.Insert(MakeRow(2, 1.5, "b"));
  EXPECT_EQ(t.live_row_count(), 2u);
  EXPECT_EQ(t.FindByPrimaryKey(Value(int64_t{2})), 1);
  EXPECT_EQ(t.FindByPrimaryKey(Value(int64_t{9})), -1);
}

TEST(Table, DuplicatePrimaryKeyRejected) {
  Table t("t", MakeSchema());
  t.Insert(MakeRow(1, 0.5, "a"));
  EXPECT_THROW(t.Insert(MakeRow(1, 9.0, "dup")), ExecutionError);
}

TEST(Table, NullPrimaryKeyRejected) {
  Table t("t", MakeSchema());
  EXPECT_THROW(t.Insert({Value::Null(), Value(0.0), Value(std::string("x"))}),
               ExecutionError);
}

TEST(Table, InsertCoercesTypes) {
  Table t("t", MakeSchema());
  // int into double column, double-with-integral-value into int column.
  t.Insert({Value(3.0), Value(int64_t{2}), Value(std::string("x"))});
  const Row& row = t.At(0);
  EXPECT_TRUE(row[0].is_int());
  EXPECT_EQ(row[0].as_int(), 3);
  EXPECT_TRUE(row[1].is_double());
  EXPECT_DOUBLE_EQ(row[1].as_double(), 2.0);
}

TEST(Table, NonIntegralDoubleIntoIntColumnRejected) {
  Table t("t", MakeSchema());
  EXPECT_THROW(t.Insert({Value(1.5), Value(0.0), Value(std::string("x"))}),
               ExecutionError);
}

TEST(Table, UpdateKeepsPkIndexInSync) {
  Table t("t", MakeSchema());
  t.Insert(MakeRow(1, 0.5, "a"));
  t.Update(0, MakeRow(7, 0.5, "a"));
  EXPECT_EQ(t.FindByPrimaryKey(Value(int64_t{1})), -1);
  EXPECT_EQ(t.FindByPrimaryKey(Value(int64_t{7})), 0);
}

TEST(Table, UpdateToExistingPkRejected) {
  Table t("t", MakeSchema());
  t.Insert(MakeRow(1, 0.5, "a"));
  t.Insert(MakeRow(2, 1.5, "b"));
  EXPECT_THROW(t.Update(0, MakeRow(2, 9.0, "clash")), ExecutionError);
}

TEST(Table, DeleteAndTombstones) {
  Table t("t", MakeSchema());
  t.Insert(MakeRow(1, 0.5, "a"));
  t.Insert(MakeRow(2, 1.5, "b"));
  t.Delete(0);
  EXPECT_EQ(t.live_row_count(), 1u);
  EXPECT_FALSE(t.IsLive(0));
  EXPECT_TRUE(t.IsLive(1));
  EXPECT_EQ(t.FindByPrimaryKey(Value(int64_t{1})), -1);
  t.Delete(0);  // double delete is a no-op
  EXPECT_EQ(t.live_row_count(), 1u);
}

TEST(Table, SecondaryIndexLookup) {
  Table t("t", MakeSchema());
  t.Insert(MakeRow(1, 0.5, "x"));
  t.Insert(MakeRow(2, 0.5, "y"));
  t.Insert(MakeRow(3, 1.5, "x"));
  t.CreateIndex("idx_label", "label");
  EXPECT_TRUE(t.HasIndexOn("label"));
  const auto hits = t.IndexLookup("label", Value(std::string("x")));
  EXPECT_EQ(hits.size(), 2u);
  EXPECT_TRUE(t.IndexLookup("label", Value(std::string("z"))).empty());
}

TEST(Table, IndexMaintainedAcrossMutations) {
  Table t("t", MakeSchema());
  t.CreateIndex("idx_label", "label");
  t.Insert(MakeRow(1, 0.5, "x"));
  t.Insert(MakeRow(2, 0.5, "x"));
  t.Update(0, MakeRow(1, 0.5, "y"));
  EXPECT_EQ(t.IndexLookup("label", Value(std::string("x"))).size(), 1u);
  EXPECT_EQ(t.IndexLookup("label", Value(std::string("y"))).size(), 1u);
  t.Delete(1);
  EXPECT_TRUE(t.IndexLookup("label", Value(std::string("x"))).empty());
}

TEST(Table, PrimaryKeyCountsAsIndex) {
  Table t("t", MakeSchema());
  t.Insert(MakeRow(5, 0.0, "a"));
  EXPECT_TRUE(t.HasIndexOn("id"));
  const auto hits = t.IndexLookup("id", Value(int64_t{5}));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 0u);
}

TEST(Table, DuplicateIndexNameRejected) {
  Table t("t", MakeSchema());
  t.CreateIndex("idx", "label");
  EXPECT_THROW(t.CreateIndex("idx", "score"), ExecutionError);
}

TEST(Table, DropIndex) {
  Table t("t", MakeSchema());
  t.CreateIndex("idx", "label");
  EXPECT_TRUE(t.DropIndex("idx"));
  EXPECT_FALSE(t.DropIndex("idx"));
  EXPECT_FALSE(t.HasIndexOn("label"));
}

TEST(Table, SnapshotAndRestore) {
  Table t("t", MakeSchema());
  t.Insert(MakeRow(1, 0.5, "a"));
  t.Insert(MakeRow(2, 1.5, "b"));
  const auto snapshot = t.SnapshotRows();
  t.Update(0, MakeRow(1, 99.0, "changed"));
  t.Delete(1);
  t.Insert(MakeRow(3, 3.0, "new"));
  t.RestoreRows(snapshot);
  EXPECT_EQ(t.live_row_count(), 2u);
  EXPECT_GE(t.FindByPrimaryKey(Value(int64_t{1})), 0);
  EXPECT_GE(t.FindByPrimaryKey(Value(int64_t{2})), 0);
  EXPECT_EQ(t.FindByPrimaryKey(Value(int64_t{3})), -1);
}

TEST(Table, ClearResetsEverything) {
  Table t("t", MakeSchema());
  t.CreateIndex("idx", "label");
  t.Insert(MakeRow(1, 0.5, "a"));
  t.Clear();
  EXPECT_EQ(t.live_row_count(), 0u);
  EXPECT_EQ(t.FindByPrimaryKey(Value(int64_t{1})), -1);
  EXPECT_TRUE(t.IndexLookup("label", Value(std::string("a"))).empty());
  // Table stays usable after Clear.
  t.Insert(MakeRow(1, 0.5, "a"));
  EXPECT_EQ(t.live_row_count(), 1u);
}

TEST(Table, NoPrimaryKeyTableAllowsDuplicates) {
  Table t("t", Schema({{"v", ValueType::kInt64}}, /*primary_key_index=*/-1));
  t.Insert({Value(int64_t{1})});
  t.Insert({Value(int64_t{1})});
  EXPECT_EQ(t.live_row_count(), 2u);
  EXPECT_EQ(t.FindByPrimaryKey(Value(int64_t{1})), -1);  // no PK declared
}

}  // namespace
}  // namespace sqloop::minidb
