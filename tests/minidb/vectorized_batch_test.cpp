// Batch-specific edge cases for the vectorized data plane: NULL-heavy
// columns, selection vectors emptying mid-pipeline, batches straddling the
// table tail (row counts around RowBatch::kCapacity), scalar-fallback
// accounting, and a three-way (vectorized / fused / reference) toggle race.
// The seeded differential generator lives in fused_differential_test.cpp;
// this file targets the boundaries that generator is unlikely to hit.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "minidb/batch.h"
#include "tests/minidb/test_util.h"

namespace sqloop::minidb {
namespace {

/// Order-preserving %.17g dump — bit-faithful, like the differential suite.
std::string Dump(const ResultSet& result) {
  std::string out;
  for (const Row& row : result.rows) {
    for (const Value& value : row) out += value.ToString() + "|";
    out += "\n";
  }
  return out;
}

struct Outcome {
  bool threw = false;
  std::string error;
  std::string rows;
};

class VectorizedBatchTest : public testing::DbFixture {
 protected:
  Outcome RunConfig(const std::string& sql, int config) {
    // 0 = vectorized, 1 = fused row-at-a-time, 2 = reference.
    db_.set_fused_enabled(config != 2);
    db_.set_vectorized_enabled(config == 0);
    Outcome outcome;
    try {
      outcome.rows = Dump(Run(sql));
    } catch (const Error& e) {
      outcome.threw = true;
      outcome.error = e.what();
    }
    db_.set_fused_enabled(true);
    db_.set_vectorized_enabled(true);
    return outcome;
  }

  /// Asserts the statement behaves bit-identically (rows, row order, and
  /// error text) across all three engine configurations.
  void ExpectThreeWayIdentical(const std::string& sql) {
    const Outcome vectorized = RunConfig(sql, 0);
    const Outcome fused = RunConfig(sql, 1);
    const Outcome reference = RunConfig(sql, 2);
    ASSERT_EQ(vectorized.threw, reference.threw) << sql;
    EXPECT_EQ(vectorized.error, reference.error) << sql;
    EXPECT_EQ(vectorized.rows, reference.rows) << sql;
    ASSERT_EQ(fused.threw, reference.threw) << sql;
    EXPECT_EQ(fused.rows, reference.rows) << sql;
  }
};

// --- batches straddling the table tail ---------------------------------

TEST_F(VectorizedBatchTest, TailBatchSizesProduceIdenticalResults) {
  // Row counts chosen around the batch capacity: a final short batch, an
  // exactly-full batch, capacity+1, and a multi-batch table.
  const std::vector<int> sizes = {1,
                                  static_cast<int>(RowBatch::kCapacity) - 1,
                                  static_cast<int>(RowBatch::kCapacity),
                                  static_cast<int>(RowBatch::kCapacity) + 1,
                                  2500};
  for (size_t t = 0; t < sizes.size(); ++t) {
    const std::string table = "tail" + std::to_string(t);
    Run("CREATE TABLE " + table +
        " (id BIGINT PRIMARY KEY, rank DOUBLE PRECISION, delta BIGINT)");
    for (int i = 0; i < sizes[t]; ++i) {
      Run("INSERT INTO " + table + " VALUES (" + std::to_string(i) + ", " +
          std::to_string(i) + ".25, " + std::to_string(i % 7) + ")");
    }
    ExpectThreeWayIdentical("SELECT COUNT(*), SUM(rank), MIN(id), MAX(id) "
                            "FROM " + table + " WHERE delta = 3");
    ExpectThreeWayIdentical("SELECT id, rank FROM " + table +
                            " WHERE delta < 2");
  }
}

TEST_F(VectorizedBatchTest, BatchCountMatchesCeilOfRowsOverCapacity) {
  Run("CREATE TABLE b (id BIGINT, v BIGINT)");
  const int rows = static_cast<int>(RowBatch::kCapacity) + 1;
  for (int i = 0; i < rows; ++i) {
    Run("INSERT INTO b VALUES (" + std::to_string(i) + ", 1)");
  }
  const auto result = Run("SELECT COUNT(*) FROM b WHERE v = 1");
  EXPECT_EQ(result.rows[0][0].as_int(), rows);
  const auto& counters = exec_.last_engine_counters();
  EXPECT_EQ(counters.batches_produced, 2u);  // 1024 + 1
  EXPECT_EQ(counters.vectorized_cores, 1u);
  EXPECT_EQ(counters.fused_cores, 1u);  // a vectorized core IS a fused core
  EXPECT_EQ(counters.scalar_fallbacks, 0u);
}

// --- NULL-heavy columns -------------------------------------------------

TEST_F(VectorizedBatchTest, NullHeavyColumnsMatchAcrossPipelines) {
  Run("CREATE TABLE n (id BIGINT, rank DOUBLE PRECISION, delta BIGINT, "
      "tag TEXT)");
  for (int i = 0; i < 1500; ++i) {
    // ~80% NULLs in every non-id column, including full-NULL stretches
    // longer than a batch.
    const bool null_stretch = i >= 200 && i < 1300;
    const std::string rank =
        null_stretch || i % 5 != 0 ? "NULL" : std::to_string(i) + ".5";
    const std::string delta =
        null_stretch || i % 4 != 0 ? "NULL" : std::to_string(i % 3);
    const std::string tag =
        null_stretch || i % 7 != 0 ? "NULL" : "'t" + std::to_string(i % 2) + "'";
    Run("INSERT INTO n VALUES (" + std::to_string(i) + ", " + rank + ", " +
        delta + ", " + tag + ")");
  }
  ExpectThreeWayIdentical(
      "SELECT COUNT(*), COUNT(rank), SUM(rank), AVG(rank), MIN(delta), "
      "MAX(delta), MIN(tag), MAX(tag) FROM n");
  ExpectThreeWayIdentical("SELECT COUNT(*) FROM n WHERE rank IS NULL");
  ExpectThreeWayIdentical("SELECT id FROM n WHERE delta IS NOT NULL");
  ExpectThreeWayIdentical("SELECT COUNT(*) FROM n WHERE delta = 1");
  ExpectThreeWayIdentical("SELECT COUNT(*) FROM n WHERE tag = 't1'");
  // An all-NULL aggregate input: SUM/AVG/MIN/MAX give NULL, COUNT gives 0.
  ExpectThreeWayIdentical(
      "SELECT SUM(rank), AVG(rank), MIN(rank), COUNT(rank) FROM n "
      "WHERE id >= 200 AND id < 1300");
}

// --- selection vectors emptying mid-pipeline ---------------------------

TEST_F(VectorizedBatchTest, SelectionEmptyingMidPipelineMatches) {
  Run("CREATE TABLE s (id BIGINT, rank DOUBLE PRECISION, delta BIGINT, "
      "tag TEXT)");
  for (int i = 0; i < 1200; ++i) {
    Run("INSERT INTO s VALUES (" + std::to_string(i) + ", " +
        std::to_string(i) + ".5, " + std::to_string(i % 9) + ", 't')");
  }
  // `delta = NULL` is a never-match kernel: the selection empties on the
  // first kernel and the remaining conjuncts must not change the result.
  ExpectThreeWayIdentical(
      "SELECT COUNT(*), SUM(rank) FROM s WHERE delta = NULL AND id > 10");
  ExpectThreeWayIdentical(
      "SELECT id FROM s WHERE delta = NULL AND rank > 100.0");
  // A conjunct that empties the selection must NOT suppress the per-row
  // error of a scalar-fallback conjunct: classic AND evaluates every
  // conjunct for every visited row, so `rank > tag` (numeric vs text)
  // throws on all three pipelines even though `delta = NULL` matches
  // nothing.
  ExpectThreeWayIdentical(
      "SELECT COUNT(*) FROM s WHERE delta = NULL AND rank > tag");
  // Same interleaving hazard with a throwing projection downstream of a
  // fallback conjunct (the vectorized path declines; results must agree).
  ExpectThreeWayIdentical(
      "SELECT rank + tag FROM s WHERE delta + 1 = 4");
}

TEST_F(VectorizedBatchTest, ColumnVsColumnKernelOnElidedSelection) {
  // Aggregate-only select lists elide the selection fill (MarkAllSelected
  // leaves the selection array unwritten), so a column-vs-column kernel as
  // the first conjunct must materialize surviving lanes itself rather than
  // read the array — reading it here means uninitialized lane indexes and
  // wild row-view loads. This is the AsyncP priority-probe shape
  // (`SELECT MIN(Delta) FROM part WHERE Delta < Distance`).
  Run("CREATE TABLE cc (id BIGINT, rank DOUBLE PRECISION, delta BIGINT)");
  for (int i = 0; i < 2100; ++i) {
    Run("INSERT INTO cc VALUES (" + std::to_string(i) + ", " +
        std::to_string((i * 7) % 2100) + ".5, " + std::to_string(i % 11) +
        ")");
  }
  // int-vs-int and mixed double-vs-int kernel arms, both elided-first.
  ExpectThreeWayIdentical("SELECT MIN(delta) FROM cc WHERE delta < id");
  ExpectThreeWayIdentical(
      "SELECT COUNT(*), SUM(rank) FROM cc WHERE rank < id");
  // Same kernels after a literal conjunct already materialized the
  // selection (the non-identity loop).
  ExpectThreeWayIdentical(
      "SELECT COUNT(*) FROM cc WHERE id >= 5 AND delta < id");
}

// --- aggregate argument shapes -----------------------------------------

TEST_F(VectorizedBatchTest, AggregateArgumentShapesMatch) {
  Run("CREATE TABLE a (id BIGINT, rank DOUBLE PRECISION, delta BIGINT, "
      "tag TEXT)");
  for (int i = 0; i < 1100; ++i) {
    const std::string delta =
        i % 13 == 0 ? "NULL" : std::to_string((i % 2 == 0 ? -1 : 1) * i);
    Run("INSERT INTO a VALUES (" + std::to_string(i) + ", -" +
        std::to_string(i) + ".25, " + delta + ", 'x" +
        std::to_string(i % 3) + "')");
  }
  // ABS(column) — the termination-probe shape `SUM(ABS(Delta))`.
  ExpectThreeWayIdentical(
      "SELECT SUM(ABS(delta)), SUM(ABS(rank)), MAX(ABS(rank)) FROM a");
  // DISTINCT stays on the scalar accumulator path.
  ExpectThreeWayIdentical(
      "SELECT COUNT(DISTINCT tag), COUNT(DISTINCT delta) FROM a");
  // Complex arguments feed per lane.
  ExpectThreeWayIdentical("SELECT SUM(rank * 2.0 + id) FROM a");
  // SUM over a text column must throw identically on every pipeline.
  ExpectThreeWayIdentical("SELECT SUM(tag) FROM a");
  // MIN/MAX over text are typed reductions.
  ExpectThreeWayIdentical("SELECT MIN(tag), MAX(tag), COUNT(tag) FROM a");
}

// --- fallback accounting and the toggle --------------------------------

TEST_F(VectorizedBatchTest, ScalarFallbackCountedAndCorrect) {
  Run("CREATE TABLE f (id BIGINT, v BIGINT)");
  for (int i = 0; i < 100; ++i) {
    Run("INSERT INTO f VALUES (" + std::to_string(i) + ", " +
        std::to_string(i % 5) + ")");
  }
  // `id + 0 = 4` is not a kernel shape — it falls back to per-lane scalar
  // evaluation but the core still runs batched.
  const auto result = Run("SELECT COUNT(*) FROM f WHERE id + 0 = 4");
  EXPECT_EQ(result.rows[0][0].as_int(), 1);
  const auto& counters = exec_.last_engine_counters();
  EXPECT_EQ(counters.vectorized_cores, 1u);
  EXPECT_GE(counters.scalar_fallbacks, 1u);
}

TEST_F(VectorizedBatchTest, ToggleDisablesBatchingButNotFusion) {
  Run("CREATE TABLE t (id BIGINT, v BIGINT)");
  for (int i = 0; i < 100; ++i) {
    Run("INSERT INTO t VALUES (" + std::to_string(i) + ", 1)");
  }
  db_.set_vectorized_enabled(false);
  const auto result = Run("SELECT COUNT(*) FROM t WHERE v = 1");
  db_.set_vectorized_enabled(true);
  EXPECT_EQ(result.rows[0][0].as_int(), 100);
  const auto& counters = exec_.last_engine_counters();
  EXPECT_EQ(counters.vectorized_cores, 0u);
  EXPECT_EQ(counters.batches_produced, 0u);
  EXPECT_EQ(counters.fused_cores, 1u);  // row-at-a-time fusion still on
}

// --- three-way toggle race ---------------------------------------------

// Readers scan through whichever pipeline the togglers currently expose
// while a writer mutates rank in place; every answer must be correct
// regardless of which (vectorized / fused / reference) path served it.
// Runs under the tsan preset via the engine label.
TEST_F(VectorizedBatchTest, ThreeWayToggleRaceKeepsAnswersCorrect) {
  Run("CREATE TABLE race (id BIGINT PRIMARY KEY, rank DOUBLE PRECISION, "
      "delta BIGINT)");
  for (int i = 0; i < 1500; ++i) {
    Run("INSERT INTO race VALUES (" + std::to_string(i) + ", 1.0, " +
        std::to_string(i % 100 == 0 ? 1 : 0) + ")");
  }
  std::atomic<bool> stop{false};
  std::atomic<int> updates{0};
  {
    std::jthread writer([this, &stop, &updates] {
      Executor w(db_);
      int i = 0;
      while (!stop.load()) {
        w.ExecuteSql("UPDATE race SET rank = rank + 0.5 WHERE id = " +
                     std::to_string(i++ % 1500));
        updates.fetch_add(1);
      }
    });
    std::jthread fused_toggler([this, &stop] {
      while (!stop.load()) {
        db_.set_fused_enabled(false);
        db_.set_fused_enabled(true);
      }
    });
    std::jthread vectorized_toggler([this, &stop] {
      while (!stop.load()) {
        db_.set_vectorized_enabled(false);
        db_.set_vectorized_enabled(true);
      }
    });
    {
      std::vector<std::jthread> readers;
      for (int t = 0; t < 3; ++t) {
        readers.emplace_back([this] {
          Executor reader(db_);
          for (int i = 0; i < 80; ++i) {
            const auto result = reader.ExecuteSql(
                "SELECT COUNT(*), SUM(rank) FROM race WHERE delta = 1");
            // The writer only touches rank; the delta population is fixed.
            EXPECT_EQ(result.rows[0][0].as_int(), 15);
          }
        });
      }
    }
    stop.store(true);
  }
  db_.set_fused_enabled(true);
  db_.set_vectorized_enabled(true);
  const auto total = Run("SELECT SUM(rank) FROM race");
  EXPECT_DOUBLE_EQ(total.rows[0][0].NumericAsDouble(),
                   1500.0 + 0.5 * updates.load());
}

}  // namespace
}  // namespace sqloop::minidb
