// Index-scan pushdown and scan accounting: `WHERE col = literal` on an
// indexed base table must read only the matching rows, and rows_examined
// must reflect the actual scan volume — the dbc layer's server-cost model
// depends on it.
#include <gtest/gtest.h>

#include "tests/minidb/test_util.h"

namespace sqloop::minidb {
namespace {

class PushdownTest : public testing::DbFixture {
 protected:
  void SetUp() override {
    Run("CREATE TABLE msg (id BIGINT, val DOUBLE, target BIGINT)");
    for (int i = 0; i < 100; ++i) {
      Run("INSERT INTO msg VALUES (" + std::to_string(i) + ", 1.0, " +
          std::to_string(i % 4) + ")");
    }
  }
};

TEST_F(PushdownTest, FullScanExaminesAllRows) {
  const auto result = Run("SELECT COUNT(*) FROM msg WHERE target = 2");
  EXPECT_EQ(result.rows[0][0].as_int(), 25);
  EXPECT_EQ(result.rows_examined, 100u);  // no index -> full scan
  const auto& counters = exec_.last_engine_counters();
  EXPECT_EQ(counters.full_scans, 1u);
  EXPECT_EQ(counters.index_scans, 0u);
  EXPECT_EQ(counters.pushed_predicates, 1u);
  EXPECT_EQ(counters.fused_cores, 1u);
  // The fused aggregate streams scanned rows straight into the
  // accumulators — nothing is copied or even pinned as a view.
  EXPECT_EQ(counters.rows_materialized, 0u);
  EXPECT_EQ(counters.rows_borrowed, 0u);
}

TEST_F(PushdownTest, IndexScanExaminesOnlyMatches) {
  Run("CREATE INDEX msg_target ON msg (target)");
  const auto result = Run("SELECT COUNT(*) FROM msg WHERE target = 2");
  EXPECT_EQ(result.rows[0][0].as_int(), 25);
  EXPECT_EQ(result.rows_examined, 25u);  // index narrows the scan
  const auto& counters = exec_.last_engine_counters();
  EXPECT_EQ(counters.index_scans, 1u);
  EXPECT_EQ(counters.full_scans, 0u);
  EXPECT_EQ(counters.rows_materialized, 0u);
}

TEST_F(PushdownTest, IndexScanWithExtraConjuncts) {
  Run("CREATE INDEX msg_target ON msg (target)");
  const auto result =
      Run("SELECT id FROM msg WHERE target = 1 AND id > 50");
  EXPECT_EQ(result.rows.size(), 12u);  // 53, 57, ..., 97
  EXPECT_EQ(result.rows_examined, 25u);
  const auto& counters = exec_.last_engine_counters();
  EXPECT_EQ(counters.index_scans, 1u);
  EXPECT_EQ(counters.pushed_predicates, 2u);  // both conjuncts pushed
}

TEST_F(PushdownTest, LiteralOnLeftSideAlsoPushesDown) {
  Run("CREATE INDEX msg_target ON msg (target)");
  const auto result = Run("SELECT COUNT(*) FROM msg WHERE 3 = target");
  EXPECT_EQ(result.rows[0][0].as_int(), 25);
  EXPECT_EQ(result.rows_examined, 25u);
}

TEST_F(PushdownTest, PrimaryKeyLookupPushesDown) {
  Run("CREATE TABLE r (id BIGINT PRIMARY KEY, v DOUBLE)");
  for (int i = 0; i < 50; ++i) {
    Run("INSERT INTO r VALUES (" + std::to_string(i) + ", 0.5)");
  }
  const auto result = Run("SELECT v FROM r WHERE id = 7");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows_examined, 1u);
  EXPECT_EQ(exec_.last_engine_counters().index_scans, 1u);
}

TEST_F(PushdownTest, AliasQualifiedColumnPushesDown) {
  Run("CREATE INDEX msg_target ON msg (target)");
  const auto result =
      Run("SELECT COUNT(*) FROM msg AS m WHERE m.target = 0");
  EXPECT_EQ(result.rows[0][0].as_int(), 25);
  EXPECT_EQ(result.rows_examined, 25u);
}

TEST_F(PushdownTest, UnionArmsPushDownIndependently) {
  Run("CREATE INDEX msg_target ON msg (target)");
  const auto result = Run(
      "SELECT id FROM msg WHERE target = 0 UNION ALL "
      "SELECT id FROM msg WHERE target = 1");
  EXPECT_EQ(result.rows.size(), 50u);
  EXPECT_EQ(result.rows_examined, 50u);
}

TEST_F(PushdownTest, ResultsIdenticalWithAndWithoutIndex) {
  const auto before =
      testing::Sorted(Run("SELECT id FROM msg WHERE target = 2").rows);
  Run("CREATE INDEX msg_target ON msg (target)");
  const auto after =
      testing::Sorted(Run("SELECT id FROM msg WHERE target = 2").rows);
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_TRUE(Value::KeyEquals(before[i][0], after[i][0]));
  }
}

TEST_F(PushdownTest, NullLiteralNeverPushesDown) {
  Run("CREATE INDEX msg_target ON msg (target)");
  // col = NULL matches nothing; must not be turned into an index probe.
  const auto result = Run("SELECT COUNT(*) FROM msg WHERE target = NULL");
  EXPECT_EQ(result.rows[0][0].as_int(), 0);
}

TEST_F(PushdownTest, RowsExaminedCoversJoins) {
  Run("CREATE TABLE a (x BIGINT)");
  Run("CREATE TABLE b (y BIGINT)");
  for (int i = 0; i < 10; ++i) {
    Run("INSERT INTO a VALUES (" + std::to_string(i) + ")");
    Run("INSERT INTO b VALUES (" + std::to_string(i) + ")");
  }
  const auto result =
      Run("SELECT COUNT(*) FROM a JOIN b ON a.x = b.y");
  EXPECT_EQ(result.rows[0][0].as_int(), 10);
  EXPECT_GE(result.rows_examined, 20u);  // both inputs scanned
  const auto& counters = exec_.last_engine_counters();
  EXPECT_EQ(counters.fused_cores, 1u);
  // A fused aggregate-over-join borrows its scan inputs and streams the
  // joined rows into the accumulators without an intermediate Relation.
  EXPECT_EQ(counters.rows_borrowed, 20u);
  EXPECT_EQ(counters.rows_materialized, 0u);
}

TEST_F(PushdownTest, ReferencePipelineMaterializesSameAnswer) {
  const auto fused = Run("SELECT COUNT(*) FROM msg WHERE target = 2");
  EXPECT_EQ(exec_.last_engine_counters().rows_materialized, 0u);
  db_.set_fused_enabled(false);
  const auto reference = Run("SELECT COUNT(*) FROM msg WHERE target = 2");
  db_.set_fused_enabled(true);
  const auto& counters = exec_.last_engine_counters();
  EXPECT_EQ(counters.fused_cores, 0u);
  // The materializing pipeline copies the scanned table into an
  // intermediate Relation before filtering.
  EXPECT_EQ(counters.rows_materialized, 100u);
  EXPECT_EQ(counters.rows_borrowed, 0u);
  EXPECT_EQ(fused.rows[0][0].as_int(), reference.rows[0][0].as_int());
  EXPECT_EQ(fused.rows_examined, reference.rows_examined);
}

}  // namespace
}  // namespace sqloop::minidb
