#include <gtest/gtest.h>

#include "common/error.h"
#include "tests/minidb/test_util.h"

namespace sqloop::minidb {
namespace {

using testing::DbFixture;
using testing::Sorted;

class SelectTest : public DbFixture {
 protected:
  void SetUp() override {
    Run("CREATE TABLE nums (id BIGINT PRIMARY KEY, v BIGINT, d DOUBLE, "
        "tag TEXT)");
    Run("INSERT INTO nums VALUES (1, 10, 1.5, 'a'), (2, 20, 2.5, 'b'), "
        "(3, 30, 3.5, 'a'), (4, NULL, NULL, 'c')");
    Run("CREATE TABLE edges (src BIGINT, dst BIGINT, weight DOUBLE)");
    Run("INSERT INTO edges VALUES (1, 2, 1.0), (1, 3, 1.0), (2, 3, 0.5), "
        "(3, 1, 0.25)");
  }
};

TEST_F(SelectTest, ProjectionAndAlias) {
  const auto result = Run("SELECT id AS node, v + 1 AS bumped FROM nums "
                          "WHERE id <= 2 ORDER BY id");
  ASSERT_EQ(result.columns.size(), 2u);
  EXPECT_EQ(result.columns[0], "node");
  EXPECT_EQ(result.columns[1], "bumped");
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_EQ(result.rows[0][1].as_int(), 11);
  EXPECT_EQ(result.rows[1][1].as_int(), 21);
}

TEST_F(SelectTest, SelectStarKeepsSchemaOrder) {
  const auto result = Run("SELECT * FROM nums WHERE id = 1");
  ASSERT_EQ(result.columns.size(), 4u);
  EXPECT_EQ(result.columns[0], "id");
  EXPECT_EQ(result.columns[3], "tag");
}

TEST_F(SelectTest, FromlessSelect) {
  const auto result = Run("SELECT 1 + 2, 'x'");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0].as_int(), 3);
  EXPECT_EQ(result.rows[0][1].as_text(), "x");
}

TEST_F(SelectTest, WhereNullComparisonsExcludeRows) {
  // v = NULL is unknown, so row 4 never matches; IS NULL does.
  EXPECT_EQ(Run("SELECT id FROM nums WHERE v > 0").rows.size(), 3u);
  EXPECT_EQ(Run("SELECT id FROM nums WHERE v IS NULL").rows.size(), 1u);
  EXPECT_EQ(Run("SELECT id FROM nums WHERE v IS NOT NULL").rows.size(), 3u);
  EXPECT_EQ(Run("SELECT id FROM nums WHERE NOT (v > 0)").rows.size(), 0u);
}

TEST_F(SelectTest, AggregatesOverTable) {
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM nums").as_int(), 4);
  EXPECT_EQ(Scalar("SELECT COUNT(v) FROM nums").as_int(), 3);  // NULL skipped
  EXPECT_EQ(Scalar("SELECT SUM(v) FROM nums").as_int(), 60);
  EXPECT_DOUBLE_EQ(Scalar("SELECT AVG(v) FROM nums").as_double(), 20.0);
  EXPECT_EQ(Scalar("SELECT MIN(v) FROM nums").as_int(), 10);
  EXPECT_EQ(Scalar("SELECT MAX(v) FROM nums").as_int(), 30);
}

TEST_F(SelectTest, AggregatesOnEmptyInput) {
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM nums WHERE id > 100").as_int(), 0);
  EXPECT_TRUE(Scalar("SELECT SUM(v) FROM nums WHERE id > 100").is_null());
  EXPECT_TRUE(Scalar("SELECT MIN(v) FROM nums WHERE id > 100").is_null());
}

TEST_F(SelectTest, CountDistinct) {
  EXPECT_EQ(Scalar("SELECT COUNT(DISTINCT tag) FROM nums").as_int(), 3);
}

TEST_F(SelectTest, GroupByWithHaving) {
  const auto result = Run(
      "SELECT tag, COUNT(*) AS n, SUM(v) AS total FROM nums "
      "GROUP BY tag HAVING COUNT(*) > 1");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0].as_text(), "a");
  EXPECT_EQ(result.rows[0][1].as_int(), 2);
  EXPECT_EQ(result.rows[0][2].as_int(), 40);
}

TEST_F(SelectTest, AggregateInsideExpression) {
  // The PageRank pattern: COALESCE(0.85 * SUM(...), 0.0).
  const Value v = Scalar(
      "SELECT COALESCE(0.5 * SUM(v), 0.0) FROM nums WHERE id > 100");
  EXPECT_DOUBLE_EQ(v.as_double(), 0.0);
  const Value w = Scalar("SELECT COALESCE(0.5 * SUM(v), 0.0) FROM nums");
  EXPECT_DOUBLE_EQ(w.as_double(), 30.0);
}

TEST_F(SelectTest, InnerJoin) {
  const auto result = Run(
      "SELECT nums.id, edges.dst FROM nums JOIN edges ON nums.id = edges.src "
      "ORDER BY nums.id, edges.dst");
  ASSERT_EQ(result.rows.size(), 4u);
  EXPECT_EQ(result.rows[0][0].as_int(), 1);
  EXPECT_EQ(result.rows[0][1].as_int(), 2);
}

TEST_F(SelectTest, LeftJoinPadsWithNulls) {
  const auto result = Run(
      "SELECT nums.id, edges.dst FROM nums LEFT JOIN edges "
      "ON nums.id = edges.src AND edges.weight > 0.9 "
      "ORDER BY nums.id, edges.dst");
  // id=1 has two heavy edges; ids 2,3 have only light edges -> padded;
  // id=4 has none -> padded.
  ASSERT_EQ(result.rows.size(), 5u);
  EXPECT_EQ(result.rows[0][0].as_int(), 1);
  EXPECT_FALSE(result.rows[0][1].is_null());
  EXPECT_TRUE(result.rows[2][1].is_null());
  EXPECT_TRUE(result.rows[3][1].is_null());
  EXPECT_TRUE(result.rows[4][1].is_null());
}

TEST_F(SelectTest, SelfJoinWithAliases) {
  // Two-hop paths in the edge table.
  const auto result = Run(
      "SELECT a.src, b.dst FROM edges AS a JOIN edges AS b ON a.dst = b.src "
      "WHERE a.src = 1 ORDER BY a.src, b.dst");
  ASSERT_EQ(result.rows.size(), 2u);  // 1->2->3 and 1->3->1
  EXPECT_EQ(result.rows[0][1].as_int(), 1);
  EXPECT_EQ(result.rows[1][1].as_int(), 3);
}

TEST_F(SelectTest, CrossJoinCount) {
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM nums, edges").as_int(), 16);
}

TEST_F(SelectTest, SubqueryInFrom) {
  const auto result = Run(
      "SELECT s.total FROM (SELECT SUM(v) AS total FROM nums) AS s");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0].as_int(), 60);
}

TEST_F(SelectTest, UnionDeduplicatesUnionAllKeeps) {
  EXPECT_EQ(Run("SELECT src FROM edges UNION SELECT dst FROM edges")
                .rows.size(),
            3u);
  EXPECT_EQ(Run("SELECT src FROM edges UNION ALL SELECT dst FROM edges")
                .rows.size(),
            8u);
}

TEST_F(SelectTest, UnionArityMismatchThrows) {
  EXPECT_THROW(Run("SELECT src, dst FROM edges UNION SELECT src FROM edges"),
               AnalysisError);
}

TEST_F(SelectTest, DistinctRows) {
  EXPECT_EQ(Run("SELECT DISTINCT tag FROM nums").rows.size(), 3u);
  EXPECT_EQ(Run("SELECT DISTINCT src FROM edges").rows.size(), 3u);
}

TEST_F(SelectTest, OrderByDescAndLimit) {
  const auto result = Run("SELECT id FROM nums ORDER BY id DESC LIMIT 2");
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_EQ(result.rows[0][0].as_int(), 4);
  EXPECT_EQ(result.rows[1][0].as_int(), 3);
}

TEST_F(SelectTest, LimitOffsetPagination) {
  const auto page1 = Run("SELECT id FROM nums ORDER BY id LIMIT 2");
  const auto page2 = Run("SELECT id FROM nums ORDER BY id LIMIT 2 OFFSET 2");
  ASSERT_EQ(page1.rows.size(), 2u);
  ASSERT_EQ(page2.rows.size(), 2u);
  EXPECT_EQ(page1.rows[0][0].as_int(), 1);
  EXPECT_EQ(page2.rows[0][0].as_int(), 3);
  // Offset past the end yields nothing.
  EXPECT_TRUE(Run("SELECT id FROM nums LIMIT 2 OFFSET 99").rows.empty());
}

TEST_F(SelectTest, MultiColumnGroupBy) {
  Run("CREATE TABLE pairs (a BIGINT, b BIGINT, v DOUBLE)");
  Run("INSERT INTO pairs VALUES (1,1,1.0),(1,1,2.0),(1,2,3.0),(2,1,4.0)");
  const auto result = Run(
      "SELECT a, b, SUM(v) FROM pairs GROUP BY a, b ORDER BY a, b");
  ASSERT_EQ(result.rows.size(), 3u);
  EXPECT_DOUBLE_EQ(result.rows[0][2].as_double(), 3.0);
  EXPECT_DOUBLE_EQ(result.rows[1][2].as_double(), 3.0);
  EXPECT_DOUBLE_EQ(result.rows[2][2].as_double(), 4.0);
}

TEST_F(SelectTest, OrderByExpressionOverOutput) {
  const auto result =
      Run("SELECT id, v FROM nums WHERE v IS NOT NULL ORDER BY v * -1");
  ASSERT_EQ(result.rows.size(), 3u);
  EXPECT_EQ(result.rows[0][0].as_int(), 3);
}

TEST_F(SelectTest, CaseCoalesceLeast) {
  const auto result = Run(
      "SELECT CASE WHEN v > 15 THEN 'big' ELSE 'small' END, "
      "COALESCE(v, 0), LEAST(v, 15) FROM nums ORDER BY id");
  ASSERT_EQ(result.rows.size(), 4u);
  EXPECT_EQ(result.rows[0][0].as_text(), "small");
  EXPECT_EQ(result.rows[1][0].as_text(), "big");
  EXPECT_EQ(result.rows[3][1].as_int(), 0);       // COALESCE(NULL, 0)
  EXPECT_EQ(result.rows[3][2].as_int(), 15);      // LEAST ignores NULL
  EXPECT_EQ(result.rows[0][2].as_int(), 10);
}

TEST_F(SelectTest, GroupedJoinAggregate) {
  // Incoming weight per node — the core PageRank shape.
  const auto result = Run(
      "SELECT nums.id, COALESCE(SUM(edges.weight), 0.0) AS win "
      "FROM nums LEFT JOIN edges ON nums.id = edges.dst "
      "GROUP BY nums.id ORDER BY nums.id");
  ASSERT_EQ(result.rows.size(), 4u);
  EXPECT_DOUBLE_EQ(result.rows[0][1].as_double(), 0.25);  // 3->1
  EXPECT_DOUBLE_EQ(result.rows[1][1].as_double(), 1.0);   // 1->2
  EXPECT_DOUBLE_EQ(result.rows[2][1].as_double(), 1.5);   // 1->3, 2->3
  EXPECT_DOUBLE_EQ(result.rows[3][1].as_double(), 0.0);   // none
}

TEST_F(SelectTest, UnknownColumnThrows) {
  EXPECT_THROW(Run("SELECT nope FROM nums"), AnalysisError);
  EXPECT_THROW(Run("SELECT edges.id FROM nums"), AnalysisError);
}

TEST_F(SelectTest, AmbiguousColumnThrows) {
  EXPECT_THROW(
      Run("SELECT src FROM edges AS a JOIN edges AS b ON a.src = b.src"),
      AnalysisError);
}

TEST_F(SelectTest, UnknownTableThrows) {
  EXPECT_THROW(Run("SELECT * FROM missing"), ExecutionError);
}

TEST_F(SelectTest, DivisionSemantics) {
  EXPECT_EQ(Scalar("SELECT 7 / 2").as_int(), 3);            // int division
  EXPECT_DOUBLE_EQ(Scalar("SELECT 7 / 2.0").as_double(), 3.5);
  EXPECT_THROW(Run("SELECT 1 / 0"), ExecutionError);
  EXPECT_EQ(Scalar("SELECT 7 % 3").as_int(), 1);
}

TEST_F(SelectTest, InfinityArithmetic) {
  EXPECT_EQ(Scalar("SELECT CASE WHEN Infinity > 1e308 THEN 1 ELSE 0 END")
                .as_int(),
            1);
  const Value v = Scalar("SELECT LEAST(Infinity, 5.0)");
  EXPECT_DOUBLE_EQ(v.as_double(), 5.0);
}

// Views --------------------------------------------------------------------

TEST_F(SelectTest, ViewOverUnion) {
  Run("CREATE TABLE part1 (id BIGINT PRIMARY KEY, v BIGINT)");
  Run("CREATE TABLE part2 (id BIGINT PRIMARY KEY, v BIGINT)");
  Run("INSERT INTO part1 VALUES (1, 10), (2, 20)");
  Run("INSERT INTO part2 VALUES (3, 30)");
  Run("CREATE VIEW whole AS SELECT id, v FROM part1 UNION ALL "
      "SELECT id, v FROM part2");
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM whole").as_int(), 3);
  EXPECT_EQ(Scalar("SELECT SUM(v) FROM whole").as_int(), 60);
  // Views observe later base-table changes.
  Run("INSERT INTO part2 VALUES (4, 40)");
  EXPECT_EQ(Scalar("SELECT SUM(v) FROM whole").as_int(), 100);
}

TEST_F(SelectTest, DropViewAndRecreate) {
  Run("CREATE VIEW v1 AS SELECT id FROM nums");
  Run("DROP VIEW v1");
  EXPECT_THROW(Run("SELECT * FROM v1"), ExecutionError);
  EXPECT_THROW(Run("DROP VIEW v1"), ExecutionError);
  Run("DROP VIEW IF EXISTS v1");  // no throw
}

// Profile parity: every profile must produce identical SELECT results. ----

class ProfileParityTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(ProfileParityTest, JoinAndAggregateResultsMatchCanonical) {
  Database db("p", EngineProfile::ByName(GetParam()));
  Executor exec(db);
  exec.ExecuteSql(
      "CREATE TABLE e (src BIGINT, dst BIGINT, w DOUBLE PRECISION)");
  exec.ExecuteSql("INSERT INTO e VALUES (1,2,0.5),(2,3,0.25),(3,1,1.0),"
                  "(1,3,0.75),(2,1,0.1)");
  exec.ExecuteSql("CREATE INDEX e_dst ON e (dst)");
  const auto grouped = exec.ExecuteSql(
      "SELECT a.src, SUM(b.w) FROM e AS a LEFT JOIN e AS b ON a.dst = b.src "
      "GROUP BY a.src ORDER BY a.src");
  ASSERT_EQ(grouped.rows.size(), 3u);
  // src=1: edges to 2 and 3; from 2: .25+.1, from 3: 1.0 -> 1.35
  EXPECT_NEAR(grouped.rows[0][1].as_double(), 1.35, 1e-9);
  const auto joined = exec.ExecuteSql(
      "SELECT COUNT(*) FROM e AS a JOIN e AS b ON a.dst = b.src");
  EXPECT_EQ(joined.rows[0][0].as_int(), 8);
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, ProfileParityTest,
                         ::testing::Values("postgres", "mysql", "mariadb",
                                           "canonical"));

}  // namespace
}  // namespace sqloop::minidb
