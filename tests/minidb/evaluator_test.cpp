// Direct unit tests of expression evaluation and the aggregate
// accumulators (elsewhere only exercised through full statements).
#include "minidb/evaluator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/error.h"
#include "sql/parser.h"

namespace sqloop::minidb {
namespace {

/// Evaluates a scalar SQL expression with no input row.
Value Eval(const std::string& expr_sql) {
  const auto holder = sql::ParseSelect("SELECT " + expr_sql);
  EvalContext ctx;
  return Evaluate(*holder->cores[0].items[0].expr, ctx);
}

/// Evaluates against one named row.
Value EvalRow(const std::string& expr_sql,
              const std::vector<ColumnBinding>& columns, const Row& row) {
  const auto holder = sql::ParseSelect("SELECT " + expr_sql);
  EvalContext ctx;
  ctx.columns = &columns;
  ctx.row = &row;
  return Evaluate(*holder->cores[0].items[0].expr, ctx);
}

TEST(Evaluator, ArithmeticTypePromotion) {
  EXPECT_TRUE(Eval("1 + 2").is_int());
  EXPECT_TRUE(Eval("1 + 2.0").is_double());
  EXPECT_DOUBLE_EQ(Eval("3 * 0.5").as_double(), 1.5);
  EXPECT_EQ(Eval("-(4 - 9)").as_int(), 5);
}

TEST(Evaluator, NullPropagation) {
  EXPECT_TRUE(Eval("1 + NULL").is_null());
  EXPECT_TRUE(Eval("NULL * 2.0").is_null());
  EXPECT_TRUE(Eval("-(NULL)").is_null());
  EXPECT_TRUE(Eval("NULL = NULL").is_null());
  EXPECT_TRUE(Eval("1 < NULL").is_null());
}

TEST(Evaluator, ThreeValuedLogic) {
  // AND: false dominates unknown; OR: true dominates unknown.
  EXPECT_EQ(Eval("(1 = 2) AND (NULL = 1)").as_int(), 0);
  EXPECT_TRUE(Eval("(1 = 1) AND (NULL = 1)").is_null());
  EXPECT_EQ(Eval("(1 = 1) OR (NULL = 1)").as_int(), 1);
  EXPECT_TRUE(Eval("(1 = 2) OR (NULL = 1)").is_null());
  EXPECT_TRUE(Eval("NOT (NULL = 1)").is_null());
}

TEST(Evaluator, TruthinessOfNull) {
  EXPECT_FALSE(Truthy(Value::Null()));
  EXPECT_FALSE(Truthy(Value(int64_t{0})));
  EXPECT_TRUE(Truthy(Value(0.001)));
  EXPECT_THROW(Truthy(Value(std::string("yes"))), ExecutionError);
}

TEST(Evaluator, CaseSimpleAndSearched) {
  EXPECT_EQ(Eval("CASE 2 WHEN 1 THEN 10 WHEN 2 THEN 20 END").as_int(), 20);
  EXPECT_TRUE(Eval("CASE 9 WHEN 1 THEN 10 END").is_null());
  EXPECT_EQ(Eval("CASE WHEN 1 > 2 THEN 'a' ELSE 'b' END").as_text(), "b");
}

TEST(Evaluator, DivisionAndModuloErrors) {
  EXPECT_THROW(Eval("5 / 0"), ExecutionError);
  EXPECT_THROW(Eval("5 % 0"), ExecutionError);
  EXPECT_TRUE(std::isinf(Eval("5.0 / 0.0").as_double()));  // double inf
  EXPECT_THROW(Eval("'a' + 1"), ExecutionError);
  EXPECT_THROW(Eval("1.5 % 2"), ExecutionError);
}

TEST(Evaluator, ScalarFunctions) {
  EXPECT_EQ(Eval("ABS(-3)").as_int(), 3);
  EXPECT_DOUBLE_EQ(Eval("ABS(-2.5)").as_double(), 2.5);
  EXPECT_DOUBLE_EQ(Eval("SQRT(9.0)").as_double(), 3.0);
  EXPECT_DOUBLE_EQ(Eval("FLOOR(2.7)").as_double(), 2.0);
  EXPECT_DOUBLE_EQ(Eval("CEIL(2.1)").as_double(), 3.0);
  EXPECT_DOUBLE_EQ(Eval("ROUND(2.5)").as_double(), 3.0);
  EXPECT_THROW(Eval("NOSUCHFN(1)"), ExecutionError);
  EXPECT_THROW(Eval("ABS(1, 2)"), ExecutionError);
}

TEST(Evaluator, CoalesceLeastGreatest) {
  EXPECT_EQ(Eval("COALESCE(NULL, NULL, 7)").as_int(), 7);
  EXPECT_TRUE(Eval("COALESCE(NULL, NULL)").is_null());
  EXPECT_EQ(Eval("LEAST(3, 1, 2)").as_int(), 1);
  EXPECT_EQ(Eval("GREATEST(3, NULL, 5)").as_int(), 5);  // NULLs ignored
  EXPECT_TRUE(Eval("LEAST(NULL, NULL)").is_null());
}

TEST(Evaluator, ColumnResolutionAndAmbiguity) {
  const std::vector<ColumnBinding> columns = {
      {"a", "x"}, {"b", "x"}, {"a", "y"}};
  const Row row = {Value(int64_t{1}), Value(int64_t{2}), Value(int64_t{3})};
  EXPECT_EQ(EvalRow("a.x", columns, row).as_int(), 1);
  EXPECT_EQ(EvalRow("b.x", columns, row).as_int(), 2);
  EXPECT_EQ(EvalRow("y", columns, row).as_int(), 3);  // unique unqualified
  EXPECT_THROW(EvalRow("x", columns, row), AnalysisError);  // ambiguous
  EXPECT_THROW(EvalRow("a.z", columns, row), AnalysisError);  // unknown
}

TEST(Evaluator, AggregateOutsideGroupingThrows) {
  EXPECT_THROW(Eval("SUM(1)"), AnalysisError);
}

// --- Accumulators ---------------------------------------------------------

TEST(Accumulator, SumStaysIntegerUntilDoubleArrives) {
  Accumulator acc(sql::AggFunc::kSum, false);
  acc.Add(Value(int64_t{2}));
  acc.Add(Value(int64_t{3}));
  EXPECT_TRUE(acc.Result().is_int());
  EXPECT_EQ(acc.Result().as_int(), 5);
  acc.Add(Value(0.5));
  EXPECT_TRUE(acc.Result().is_double());
  EXPECT_DOUBLE_EQ(acc.Result().as_double(), 5.5);
}

TEST(Accumulator, SumOfNothingIsNull) {
  Accumulator acc(sql::AggFunc::kSum, false);
  acc.Add(Value::Null());
  EXPECT_TRUE(acc.Result().is_null());
}

TEST(Accumulator, CountSkipsNulls) {
  Accumulator acc(sql::AggFunc::kCount, false);
  acc.Add(Value(int64_t{1}));
  acc.Add(Value::Null());
  acc.Add(Value(int64_t{1}));
  EXPECT_EQ(acc.Result().as_int(), 2);
}

TEST(Accumulator, CountDistinct) {
  Accumulator acc(sql::AggFunc::kCount, true);
  acc.Add(Value(int64_t{1}));
  acc.Add(Value(int64_t{1}));
  acc.Add(Value(int64_t{2}));
  acc.Add(Value(2.0));  // equals int 2 under key equality
  EXPECT_EQ(acc.Result().as_int(), 2);
}

TEST(Accumulator, MinMaxWithInfinity) {
  const double inf = std::numeric_limits<double>::infinity();
  Accumulator mn(sql::AggFunc::kMin, false);
  mn.Add(Value(inf));
  mn.Add(Value(3.0));
  EXPECT_DOUBLE_EQ(mn.Result().as_double(), 3.0);
  Accumulator mx(sql::AggFunc::kMax, false);
  mx.Add(Value(-inf));
  EXPECT_DOUBLE_EQ(mx.Result().as_double(), -inf);
}

TEST(Accumulator, AvgIsAlwaysDouble) {
  Accumulator acc(sql::AggFunc::kAvg, false);
  acc.Add(Value(int64_t{1}));
  acc.Add(Value(int64_t{2}));
  EXPECT_TRUE(acc.Result().is_double());
  EXPECT_DOUBLE_EQ(acc.Result().as_double(), 1.5);
}

TEST(Accumulator, SumDistinct) {
  Accumulator acc(sql::AggFunc::kSum, true);
  acc.Add(Value(int64_t{5}));
  acc.Add(Value(int64_t{5}));
  acc.Add(Value(int64_t{7}));
  EXPECT_EQ(acc.Result().as_int(), 12);
}

TEST(Helpers, CollectAggregatesDeduplicates) {
  const auto holder = sql::ParseSelect(
      "SELECT SUM(a) + SUM(a) + MIN(b) FROM t GROUP BY c");
  std::vector<const sql::Expr*> aggs;
  CollectAggregates(*holder->cores[0].items[0].expr, aggs);
  EXPECT_EQ(aggs.size(), 2u);  // SUM(a) once, MIN(b) once
}

TEST(Helpers, ContainsAggregate) {
  const auto with_agg = sql::ParseSelect("SELECT 1 + SUM(x) FROM t");
  EXPECT_TRUE(ContainsAggregate(*with_agg->cores[0].items[0].expr));
  const auto without = sql::ParseSelect("SELECT 1 + x FROM t");
  EXPECT_FALSE(ContainsAggregate(*without->cores[0].items[0].expr));
}

}  // namespace
}  // namespace sqloop::minidb
