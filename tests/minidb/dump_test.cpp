// DUMP TABLE / RESTORE TABLE — the durable-snapshot fast path behind
// SQLoop's checkpointing (minidb/dump.h). The contract under test: a
// restore rebuilds the table bit-identically (rows, scan order, PK
// index), validation runs before any catalog change, and every corruption
// mode — truncation, bit flip, missing file — is caught by the CRC seal.
#include "minidb/dump.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>

#include "common/error.h"
#include "tests/minidb/test_util.h"

namespace sqloop::minidb {
namespace {

namespace fs = std::filesystem;

class DumpTest : public testing::DbFixture {
 protected:
  DumpTest() {
    static std::atomic<uint64_t> counter{0};
    dir_ = (fs::temp_directory_path() /
            ("sqloop_dump_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter.fetch_add(1))))
               .string();
    fs::create_directories(dir_);
  }
  ~DumpTest() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string File(const std::string& stem) const {
    return (fs::path(dir_) / stem).string();
  }

  /// The table rendered to one string via a full scan — scan order, NULLs
  /// and float bit patterns included.
  std::string Render(const std::string& table) {
    std::string out;
    for (const auto& row : Run("SELECT * FROM " + table).rows) {
      for (const auto& value : row) {
        out += value.ToString();
        out += '|';
      }
      out += '\n';
    }
    return out;
  }

  void CreateSample() {
    Run("CREATE TABLE r (id BIGINT PRIMARY KEY, rank DOUBLE, note VARCHAR)");
    Run("INSERT INTO r VALUES (3, 0.1, 'a'), (1, 0.25, NULL), "
        "(2, 0.0001220703125, 'c')");
    // A deleted row must not resurface in the dump.
    Run("INSERT INTO r VALUES (9, 9.9, 'dead')");
    Run("DELETE FROM r WHERE id = 9");
  }

  std::string dir_;
};

TEST_F(DumpTest, RestoreRebuildsTableBitIdentically) {
  CreateSample();
  const std::string before = Render("r");
  const auto dump = Run("DUMP TABLE r TO '" + File("r.dump") + "'");
  EXPECT_EQ(dump.affected_rows, 3u);

  Run("DROP TABLE r");
  const auto restore = Run("RESTORE TABLE r FROM '" + File("r.dump") + "'");
  EXPECT_EQ(restore.affected_rows, 3u);
  EXPECT_EQ(Render("r"), before);
  // The PK index came back with the schema: point updates work.
  Run("UPDATE r SET rank = 1.5 WHERE id = 2");
  EXPECT_EQ(Scalar("SELECT rank FROM r WHERE id = 2").as_double(), 1.5);
}

TEST_F(DumpTest, RestoreUnderDifferentNameReplacesExistingTable) {
  CreateSample();
  const std::string before = Render("r");
  Run("DUMP TABLE r TO '" + File("r.dump") + "'");
  Run("CREATE TABLE s (x BIGINT)");
  Run("INSERT INTO s VALUES (42)");
  // RESTORE is create-or-replace: `s` becomes a copy of the dumped `r`.
  Run("RESTORE TABLE s FROM '" + File("r.dump") + "'");
  EXPECT_EQ(Render("s"), before);
}

TEST_F(DumpTest, DumpLeavesNoTempFileBehind) {
  CreateSample();
  Run("DUMP TABLE r TO '" + File("r.dump") + "'");
  size_t entries = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    ++entries;
    EXPECT_EQ(entry.path().filename().string(), "r.dump");
  }
  EXPECT_EQ(entries, 1u);
}

TEST_F(DumpTest, ValidateAcceptsIntactDumpAndReportsCrc) {
  CreateSample();
  Run("DUMP TABLE r TO '" + File("r.dump") + "'");
  uint32_t crc = 0;
  std::string error;
  EXPECT_TRUE(ValidateDumpFile(File("r.dump"), &crc, &error)) << error;
  EXPECT_NE(crc, 0u);
}

TEST_F(DumpTest, ValidateRejectsEveryCorruptionMode) {
  CreateSample();
  const std::string path = File("r.dump");
  Run("DUMP TABLE r TO '" + path + "'");

  EXPECT_FALSE(ValidateDumpFile(File("missing.dump")));

  {
    std::ofstream garbage(File("garbage.dump"), std::ios::binary);
    garbage << "not a dump at all";
  }
  EXPECT_FALSE(ValidateDumpFile(File("garbage.dump")));

  const auto size = fs::file_size(path);
  fs::copy_file(path, File("torn.dump"));
  fs::resize_file(File("torn.dump"), size / 2);
  EXPECT_FALSE(ValidateDumpFile(File("torn.dump")));

  fs::copy_file(path, File("flipped.dump"));
  {
    std::fstream f(File("flipped.dump"),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(size / 2));
    char c = 0;
    f.get(c);
    f.seekp(static_cast<std::streamoff>(size / 2));
    f.put(static_cast<char>(c ^ 0x5a));
  }
  std::string error;
  EXPECT_FALSE(ValidateDumpFile(File("flipped.dump"), nullptr, &error));
  EXPECT_FALSE(error.empty());
}

TEST_F(DumpTest, CorruptRestoreLeavesExistingTableUntouched) {
  CreateSample();
  const std::string before = Render("r");
  const std::string path = File("r.dump");
  Run("DUMP TABLE r TO '" + path + "'");
  fs::resize_file(path, fs::file_size(path) / 2);

  // Validation happens before the catalog change, so the failed RESTORE
  // must not have dropped (or emptied) the live table. Corruption is an
  // IntegrityError (fatal, never retried); a merely missing file is a
  // plain ExecutionError.
  EXPECT_THROW(Run("RESTORE TABLE r FROM '" + path + "'"), IntegrityError);
  EXPECT_EQ(Render("r"), before);
  EXPECT_THROW(Run("RESTORE TABLE r FROM '" + File("missing.dump") + "'"),
               ExecutionError);
  EXPECT_EQ(Render("r"), before);
}

TEST_F(DumpTest, CorruptRestoreReportsCrcValuesAndFailingOffset) {
  // The error message must carry enough to debug a bad artifact without a
  // hex editor: both CRC values (expected and recomputed), where the
  // footer sits, and how many bytes were covered.
  CreateSample();
  const std::string path = File("r.dump");
  Run("DUMP TABLE r TO '" + path + "'");
  const auto size = fs::file_size(path);
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(size / 2));
    char c = 0;
    f.get(c);
    f.seekp(static_cast<std::streamoff>(size / 2));
    f.put(static_cast<char>(c ^ 0x5a));
  }
  try {
    Run("RESTORE TABLE r FROM '" + path + "'");
    FAIL() << "corrupt restore did not throw";
  } catch (const IntegrityError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("failed CRC validation: expected 0x"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("computed 0x"), std::string::npos) << what;
    EXPECT_NE(what.find("footer at byte offset " +
                        std::to_string(size - sizeof(uint32_t))),
              std::string::npos)
        << what;
  }

  // A truncated file names the failing section and byte counts instead.
  fs::resize_file(path, sizeof(uint64_t));  // magic only: header survives
  try {
    Run("RESTORE TABLE r FROM '" + path + "'");
    FAIL() << "truncated restore did not throw";
  } catch (const IntegrityError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("truncated"), std::string::npos) << what;
    EXPECT_NE(what.find("header section"), std::string::npos) << what;
    EXPECT_NE(what.find(std::to_string(sizeof(uint64_t)) + " bytes"),
              std::string::npos)
        << what;
  }
}

TEST_F(DumpTest, EmptyTableRoundTrips) {
  Run("CREATE TABLE e (id BIGINT PRIMARY KEY, v DOUBLE)");
  const auto dump = Run("DUMP TABLE e TO '" + File("e.dump") + "'");
  EXPECT_EQ(dump.affected_rows, 0u);
  Run("DROP TABLE e");
  const auto restore = Run("RESTORE TABLE e FROM '" + File("e.dump") + "'");
  EXPECT_EQ(restore.affected_rows, 0u);
  EXPECT_EQ(Render("e"), "");
  // Schema and PK index came back even with zero rows.
  Run("INSERT INTO e VALUES (1, 0.5)");
  EXPECT_EQ(Scalar("SELECT v FROM e WHERE id = 1").as_double(), 0.5);
}

TEST_F(DumpTest, AllNullColumnsRoundTrip) {
  Run("CREATE TABLE n (id BIGINT PRIMARY KEY, a DOUBLE, b VARCHAR)");
  Run("INSERT INTO n VALUES (1, NULL, NULL), (2, NULL, NULL), "
      "(3, NULL, NULL)");
  const std::string before = Render("n");
  Run("DUMP TABLE n TO '" + File("n.dump") + "'");
  Run("DROP TABLE n");
  Run("RESTORE TABLE n FROM '" + File("n.dump") + "'");
  EXPECT_EQ(Render("n"), before);
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM n WHERE a IS NULL").as_int(), 3);
}

TEST_F(DumpTest, AwkwardTextRoundTripsByteForByte) {
  // Text is dumped length-prefixed, not quoted or escaped: newlines,
  // quotes, and control bytes adjacent to NUL must survive byte for byte.
  Run("CREATE TABLE t (id BIGINT PRIMARY KEY, s VARCHAR)");
  const std::vector<std::string> awkward = {
      "line\nbreak\r\n",
      "quo'te \"double\" `back`",
      std::string("\x01\x02 almost-nul \x7f\x1f", 17),
      "trailing space   ",
      "",
  };
  for (size_t i = 0; i < awkward.size(); ++i) {
    Run("INSERT INTO t VALUES (" + std::to_string(i) + ", " +
        Value(awkward[i]).ToSqlLiteral() + ")");
  }
  const std::string before = Render("t");
  Run("DUMP TABLE t TO '" + File("t.dump") + "'");
  Run("DROP TABLE t");
  Run("RESTORE TABLE t FROM '" + File("t.dump") + "'");
  EXPECT_EQ(Render("t"), before);
  for (size_t i = 0; i < awkward.size(); ++i) {
    EXPECT_EQ(Scalar("SELECT s FROM t WHERE id = " + std::to_string(i))
                  .as_text(),
              awkward[i]);
  }
}

TEST_F(DumpTest, RestoreAfterDropAndRecreateReplacesTheNewSchema) {
  // The dump carries its own schema: a table dropped and re-created with a
  // different shape between DUMP and RESTORE is replaced wholesale, not
  // merged into the new shape.
  CreateSample();
  const std::string before = Render("r");
  Run("DUMP TABLE r TO '" + File("r.dump") + "'");
  Run("DROP TABLE r");
  Run("CREATE TABLE r (other VARCHAR, shape DOUBLE)");
  Run("INSERT INTO r VALUES ('x', 1.0)");
  Run("RESTORE TABLE r FROM '" + File("r.dump") + "'");
  EXPECT_EQ(Render("r"), before);
  // The restored PK index serves point lookups again.
  EXPECT_EQ(Scalar("SELECT note FROM r WHERE id = 3").as_text(), "a");
}

TEST_F(DumpTest, DumpOfMissingTableFails) {
  EXPECT_THROW(Run("DUMP TABLE nope TO '" + File("x.dump") + "'"),
               ExecutionError);
  EXPECT_FALSE(fs::exists(File("x.dump")));
}

}  // namespace
}  // namespace sqloop::minidb
