// Concurrency behaviour: minidb must survive many connections hammering it
// at once — that is exactly how SQLoop drives it (one connection per
// worker thread, paper §V-B).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/error.h"
#include "minidb/database.h"
#include "minidb/executor.h"
#include "minidb/server.h"

namespace sqloop::minidb {
namespace {

TEST(Concurrency, ParallelInsertsToDistinctTables) {
  Database db("c", EngineProfile::Canonical());
  Executor exec(db);
  constexpr int kTables = 8;
  constexpr int kRows = 200;
  for (int t = 0; t < kTables; ++t) {
    exec.ExecuteSql("CREATE TABLE part" + std::to_string(t) +
                    " (id BIGINT PRIMARY KEY, v DOUBLE)");
  }
  std::vector<std::jthread> workers;
  for (int t = 0; t < kTables; ++t) {
    workers.emplace_back([&db, t] {
      Executor worker_exec(db);
      for (int i = 0; i < kRows; ++i) {
        worker_exec.ExecuteSql("INSERT INTO part" + std::to_string(t) +
                               " VALUES (" + std::to_string(i) + ", 1.0)");
      }
    });
  }
  workers.clear();  // join
  for (int t = 0; t < kTables; ++t) {
    const auto result = exec.ExecuteSql("SELECT COUNT(*) FROM part" +
                                        std::to_string(t));
    EXPECT_EQ(result.rows[0][0].as_int(), kRows);
  }
}

TEST(Concurrency, ParallelReadersWithOneWriterOnSameTable) {
  Database db("c", EngineProfile::Canonical());
  Executor exec(db);
  exec.ExecuteSql("CREATE TABLE shared (id BIGINT PRIMARY KEY, v BIGINT)");
  for (int i = 0; i < 100; ++i) {
    exec.ExecuteSql("INSERT INTO shared VALUES (" + std::to_string(i) +
                    ", " + std::to_string(i) + ")");
  }
  std::atomic<int> reads{0};
  std::vector<std::jthread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&db, &reads] {
      Executor reader(db);
      for (int i = 0; i < 50; ++i) {
        const auto result = reader.ExecuteSql("SELECT COUNT(*) FROM shared");
        EXPECT_EQ(result.rows[0][0].as_int(), 100);  // writer keeps count
        reads.fetch_add(1);
      }
    });
  }
  {
    Executor writer(db);
    for (int i = 0; i < 200; ++i) {
      writer.ExecuteSql("UPDATE shared SET v = v + 1 WHERE id = " +
                        std::to_string(i % 100));
    }
  }
  readers.clear();
  EXPECT_EQ(reads.load(), 200);
  const auto total = exec.ExecuteSql("SELECT SUM(v) FROM shared");
  // Initial sum 4950 plus 200 increments.
  EXPECT_EQ(total.rows[0][0].as_int(), 4950 + 200);
}

TEST(Concurrency, CrossTableUpdatesDoNotDeadlock) {
  // Two writers updating (a from b) and (b from a) concurrently — the
  // sorted lock acquisition must prevent deadlock.
  Database db("c", EngineProfile::Canonical());
  Executor exec(db);
  exec.ExecuteSql("CREATE TABLE a (id BIGINT PRIMARY KEY, v BIGINT)");
  exec.ExecuteSql("CREATE TABLE b (id BIGINT PRIMARY KEY, v BIGINT)");
  exec.ExecuteSql("INSERT INTO a VALUES (1, 0)");
  exec.ExecuteSql("INSERT INTO b VALUES (1, 0)");
  std::vector<std::jthread> workers;
  workers.emplace_back([&db] {
    Executor w(db);
    for (int i = 0; i < 200; ++i) {
      w.ExecuteSql("UPDATE a SET v = a.v + s.v + 1 FROM b AS s "
                   "WHERE a.id = s.id");
    }
  });
  workers.emplace_back([&db] {
    Executor w(db);
    for (int i = 0; i < 200; ++i) {
      w.ExecuteSql("UPDATE b SET v = b.v + s.v + 1 FROM a AS s "
                   "WHERE b.id = s.id");
    }
  });
  workers.clear();  // join — hanging here would mean deadlock
  SUCCEED();
}

TEST(Server, RegistryRoundTrip) {
  Server server;
  auto pg = server.CreateDatabase("db_pg", EngineProfile::Postgres());
  auto my = server.CreateDatabase("db_my", EngineProfile::MySql());
  EXPECT_THROW(server.CreateDatabase("db_pg", EngineProfile::Postgres()),
               UsageError);
  EXPECT_EQ(server.FindDatabase("DB_PG"), pg);  // case-insensitive
  EXPECT_EQ(server.FindDatabase("nope"), nullptr);
  EXPECT_EQ(server.DatabaseNames().size(), 2u);
  EXPECT_TRUE(server.DropDatabase("db_my"));
  EXPECT_FALSE(server.DropDatabase("db_my"));
}

TEST(Server, ConcurrentDatabaseUseThroughRegistry) {
  Server server;
  auto db = server.CreateDatabase("shared_reg", EngineProfile::Postgres());
  Executor setup(*db);
  setup.ExecuteSql("CREATE UNLOGGED TABLE t (id BIGINT PRIMARY KEY)");
  std::vector<std::jthread> workers;
  std::atomic<int> next{0};
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&server, &next] {
      auto handle = server.FindDatabase("shared_reg");
      Executor exec(*handle);
      for (int i = 0; i < 50; ++i) {
        exec.ExecuteSql("INSERT INTO t VALUES (" +
                        std::to_string(next.fetch_add(1)) + ")");
      }
    });
  }
  workers.clear();
  EXPECT_EQ(setup.ExecuteSql("SELECT COUNT(*) FROM t").rows[0][0].as_int(),
            200);
}

}  // namespace
}  // namespace sqloop::minidb
