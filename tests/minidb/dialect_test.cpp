#include <gtest/gtest.h>

#include "common/error.h"
#include "minidb/database.h"
#include "minidb/executor.h"

namespace sqloop::minidb {
namespace {

TEST(EngineProfile, ByNameResolvesAllProfiles) {
  EXPECT_EQ(EngineProfile::ByName("postgres").dialect, Dialect::kPostgres);
  EXPECT_EQ(EngineProfile::ByName("PostgreSQL").dialect, Dialect::kPostgres);
  EXPECT_EQ(EngineProfile::ByName("mysql").dialect, Dialect::kMySql);
  EXPECT_EQ(EngineProfile::ByName("mariadb").dialect, Dialect::kMariaDb);
  EXPECT_EQ(EngineProfile::ByName("canonical").dialect, Dialect::kCanonical);
  EXPECT_THROW(EngineProfile::ByName("oracle"), UsageError);
}

TEST(EngineProfile, JoinAlgorithmsMatchHistory) {
  // PostgreSQL 9.6 had hash joins; MySQL 5.7 did not.
  EXPECT_EQ(EngineProfile::Postgres().join_algorithm, JoinAlgorithm::kHash);
  EXPECT_EQ(EngineProfile::MySql().join_algorithm,
            JoinAlgorithm::kNestedLoop);
  EXPECT_EQ(EngineProfile::MariaDb().join_algorithm,
            JoinAlgorithm::kNestedLoopOrHash);
}

TEST(Dialect, PostgresRejectsMySqlDdl) {
  Database db("pg", EngineProfile::Postgres());
  Executor exec(db);
  EXPECT_THROW(
      exec.ExecuteSql("CREATE TABLE t (a BIGINT) ENGINE = MyISAM"),
      ExecutionError);
  EXPECT_THROW(exec.ExecuteSql("CREATE TABLE t (a BIGINT, b DOUBLE)"),
               ExecutionError);
  // The correct PostgreSQL spellings pass.
  exec.ExecuteSql("CREATE UNLOGGED TABLE t (a BIGINT, b DOUBLE PRECISION)");
}

TEST(Dialect, MySqlLacksRecursiveCtes) {
  // The paper's MySQL 5.7 predates recursive CTE support.
  Database db("my", EngineProfile::MySql());
  Executor exec(db);
  exec.ExecuteSql("CREATE TABLE e (src BIGINT, dst BIGINT) ENGINE = MyISAM");
  EXPECT_THROW(exec.ExecuteSql(
                   "WITH RECURSIVE r (n) AS (SELECT 1 UNION ALL "
                   "SELECT n + 1 FROM r WHERE n < 3) SELECT * FROM r"),
               ExecutionError);
}

TEST(Dialect, MySqlRejectsUnlogged) {
  Database db("my", EngineProfile::MySql());
  Executor exec(db);
  EXPECT_THROW(exec.ExecuteSql("CREATE UNLOGGED TABLE t (a BIGINT)"),
               ExecutionError);
  exec.ExecuteSql("CREATE TABLE t (a BIGINT, b DOUBLE) ENGINE = MyISAM");
}

TEST(Dialect, CanonicalAcceptsEverything) {
  Database db("c", EngineProfile::Canonical());
  Executor exec(db);
  exec.ExecuteSql("CREATE UNLOGGED TABLE t1 (a BIGINT, b DOUBLE)");
  exec.ExecuteSql(
      "CREATE TABLE t2 (a BIGINT, b DOUBLE PRECISION) ENGINE = MyISAM");
}

TEST(Dialect, IdentifierFoldingIsCaseInsensitive) {
  Database db("c", EngineProfile::Canonical());
  Executor exec(db);
  exec.ExecuteSql("CREATE TABLE PageRank (Node BIGINT PRIMARY KEY, "
                  "Rank DOUBLE, Delta DOUBLE)");
  exec.ExecuteSql("INSERT INTO pagerank VALUES (1, 0.0, 0.15)");
  const auto result =
      exec.ExecuteSql("SELECT PAGERANK.NODE, pagerank.rank FROM PageRank");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0].as_int(), 1);
}

}  // namespace
}  // namespace sqloop::minidb
