// Plan-cache semantics: key normalization, the second-sighting promotion
// policy for ad-hoc text vs. pinned prepares, rebind-not-reparse
// invalidation on DDL, view re-expansion, engine-profile isolation, LRU
// eviction, and the regression that a stale cached plan can never read a
// dropped index (index choice happens at execution time).
#include "minidb/plan_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/error.h"
#include "minidb/executor.h"
#include "tests/minidb/test_util.h"

namespace sqloop::minidb {
namespace {

using testing::DbFixture;

TEST(NormalizeSqlKeyTest, CollapsesWhitespaceOutsideQuotes) {
  EXPECT_EQ(NormalizeSqlKey("SELECT  *\n FROM\tt"), "SELECT * FROM t");
  EXPECT_EQ(NormalizeSqlKey("  SELECT 1  ;  "), "SELECT 1");
  // Quoted regions keep their spacing — they are data, not syntax.
  EXPECT_EQ(NormalizeSqlKey("SELECT 'a  b'  FROM t"), "SELECT 'a  b' FROM t");
  EXPECT_EQ(NormalizeSqlKey("SELECT 'it''s  ok'"), "SELECT 'it''s  ok'");
  // Different spellings of the same statement share one cache key.
  EXPECT_EQ(NormalizeSqlKey("SELECT 1\nFROM t;"),
            NormalizeSqlKey("SELECT 1 FROM t"));
}

class PlanCacheFixture : public DbFixture {
 protected:
  PlanCacheFixture() {
    Run("CREATE TABLE t (id BIGINT, v DOUBLE PRECISION)");
    Run("INSERT INTO t VALUES (1, 0.5), (2, 1.5), (3, 2.5)");
  }

  const PlanCache& cache() const { return db_.plan_cache(); }
};

TEST_F(PlanCacheFixture, AdHocTextIsPromotedOnSecondSighting) {
  const std::string sql = "SELECT SUM(v) FROM t";
  const uint64_t hits0 = cache().hits();
  const uint64_t misses0 = cache().misses();
  // First sighting compiles but does not enter the shared cache (single-use
  // statements would churn the LRU); the second compiles once more and
  // promotes; from the third on the plan is served from cache.
  Run(sql);
  EXPECT_EQ(cache().misses(), misses0 + 1);
  Run(sql);
  EXPECT_EQ(cache().misses(), misses0 + 2);
  Run(sql);
  Run(sql);
  EXPECT_EQ(cache().misses(), misses0 + 2);
  EXPECT_EQ(cache().hits(), hits0 + 2);
}

TEST_F(PlanCacheFixture, PinnedPrepareEntersCacheImmediately) {
  const std::string sql = "SELECT COUNT(*) FROM t";
  const uint64_t misses0 = cache().misses();
  const auto plan = exec_.Prepare(sql, /*pin=*/true);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(cache().misses(), misses0 + 1);
  // The same text — even spelled with different whitespace — now hits.
  const uint64_t hits0 = cache().hits();
  Run(sql);
  Run("SELECT   COUNT(*)\nFROM t");
  EXPECT_EQ(cache().misses(), misses0 + 1);
  EXPECT_EQ(cache().hits(), hits0 + 2);
}

TEST_F(PlanCacheFixture, DdlRebindsWithoutReparsing) {
  const std::string sql = "SELECT id FROM t WHERE v > 1.0";
  exec_.Prepare(sql, /*pin=*/true);
  const uint64_t misses0 = cache().misses();
  const uint64_t rebinds0 = cache().rebinds();

  // Unrelated DDL bumps the catalog version; the next execution re-binds
  // the lock plan from the cached AST — no re-parse, so no miss.
  Run("CREATE TABLE unrelated (x BIGINT)");
  const auto result = Run(sql);
  EXPECT_EQ(result.rows.size(), 2u);
  EXPECT_GT(cache().rebinds(), rebinds0);
  // The DDL itself was one ad-hoc miss; the cached SELECT was not.
  EXPECT_EQ(cache().misses(), misses0 + 1);
}

TEST_F(PlanCacheFixture, CreateAndDropIndexForceReplan) {
  const std::string sql = "SELECT v FROM t WHERE id = 2";
  exec_.Prepare(sql, /*pin=*/true);
  const uint64_t version0 = db_.catalog_version();

  Run("CREATE INDEX t_id ON t (id)");
  EXPECT_GT(db_.catalog_version(), version0);
  const uint64_t rebinds_after_create = cache().rebinds();
  EXPECT_DOUBLE_EQ(Run(sql).rows.at(0).at(0).as_double(), 1.5);
  EXPECT_GT(cache().rebinds(), rebinds_after_create);

  const uint64_t rebinds_before_drop = cache().rebinds();
  Run("DROP INDEX t_id ON t");
  EXPECT_DOUBLE_EQ(Run(sql).rows.at(0).at(0).as_double(), 1.5);
  EXPECT_GT(cache().rebinds(), rebinds_before_drop);
}

TEST_F(PlanCacheFixture, StaleCachedPlanNeverReadsDroppedIndex) {
  // Regression: cache a plan while an index exists, drop the index, and
  // re-execute the cached plan. Index choice happens at execution time
  // against the live catalog, so the result must be correct (and must not
  // touch freed index structures — ASan would catch that).
  Run("CREATE INDEX t_id ON t (id)");
  const std::string sql = "SELECT v FROM t WHERE id = 3";
  exec_.Prepare(sql, /*pin=*/true);
  EXPECT_DOUBLE_EQ(Run(sql).rows.at(0).at(0).as_double(), 2.5);

  Run("DROP INDEX t_id ON t");
  const auto result = Run(sql);
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(result.rows.at(0).at(0).as_double(), 2.5);
}

TEST_F(PlanCacheFixture, ViewRedefinitionIsReflectedOnNextExecution) {
  Run("CREATE TABLE a (x BIGINT)");
  Run("CREATE TABLE b (x BIGINT)");
  Run("INSERT INTO a VALUES (1)");
  Run("INSERT INTO b VALUES (2)");
  Run("CREATE VIEW w AS SELECT x FROM a");

  const std::string sql = "SELECT SUM(x) FROM w";
  exec_.Prepare(sql, /*pin=*/true);
  EXPECT_EQ(Run(sql).rows.at(0).at(0).as_int(), 1);

  // Redefine the view over a different base table: the cached plan's view
  // expansion is stale, and the rebind must pick up the new definition.
  Run("DROP VIEW w");
  Run("CREATE VIEW w AS SELECT x FROM b");
  EXPECT_EQ(Run(sql).rows.at(0).at(0).as_int(), 2);
}

TEST_F(PlanCacheFixture, DroppedAndRecreatedTableResolvesFresh) {
  const std::string sql = "SELECT COUNT(*) FROM t";
  exec_.Prepare(sql, /*pin=*/true);
  EXPECT_EQ(Run(sql).rows.at(0).at(0).as_int(), 3);

  // Table pointers are re-resolved by name at execution, so a cached plan
  // survives a drop/recreate of the table it references.
  Run("DROP TABLE t");
  Run("CREATE TABLE t (id BIGINT, v DOUBLE PRECISION)");
  Run("INSERT INTO t VALUES (9, 9.0)");
  EXPECT_EQ(Run(sql).rows.at(0).at(0).as_int(), 1);
}

TEST(PlanCacheIsolationTest, EngineProfilesDoNotShareEntries) {
  // Each database owns its cache, and the key is additionally prefixed
  // with the engine profile name — a postgres plan can never serve a
  // mysql connection even if a cache were shared.
  Database pg("pgdb", EngineProfile::Postgres());
  Database my("mydb", EngineProfile::MySql());
  Executor pg_exec(pg);
  Executor my_exec(my);

  const std::string ddl = "CREATE TABLE t (id BIGINT)";
  const std::string sql = "SELECT COUNT(*) FROM t";
  pg_exec.ExecuteSql(ddl);
  my_exec.ExecuteSql(ddl);
  pg_exec.Prepare(sql, /*pin=*/true);
  EXPECT_EQ(pg.plan_cache().size(), 1u);
  EXPECT_EQ(my.plan_cache().size(), 0u);

  // The other engine compiles its own plan: a fresh miss, not a hit.
  const uint64_t my_hits0 = my.plan_cache().hits();
  const uint64_t my_misses0 = my.plan_cache().misses();
  my_exec.Prepare(sql, /*pin=*/true);
  EXPECT_EQ(my.plan_cache().hits(), my_hits0);
  EXPECT_EQ(my.plan_cache().misses(), my_misses0 + 1);
}

TEST(PlanCacheLruTest, EvictsLeastRecentlyUsedAtCapacity) {
  PlanCache cache(/*capacity=*/2);
  auto plan = [] {
    auto p = std::make_shared<CachedPlan>();
    return std::shared_ptr<const CachedPlan>(std::move(p));
  };
  cache.Put("a", plan());
  cache.Put("b", plan());
  ASSERT_NE(cache.Lookup("a"), nullptr);  // "a" is now most recently used
  cache.Put("c", plan());                 // evicts "b"
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_NE(cache.Lookup("a"), nullptr);
  EXPECT_EQ(cache.Lookup("b"), nullptr);
  EXPECT_NE(cache.Lookup("c"), nullptr);
}

TEST(PlanCacheLruTest, EvictionNeverInvalidatesOutstandingHandles) {
  PlanCache cache(/*capacity=*/1);
  auto first = std::make_shared<CachedPlan>();
  first->param_count = 7;
  cache.Put("a", first);
  const std::shared_ptr<const CachedPlan> handle = cache.Lookup("a");
  ASSERT_NE(handle, nullptr);
  cache.Put("b", std::make_shared<CachedPlan>());  // evicts "a"
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  // The prepared-statement handle still owns the plan.
  EXPECT_EQ(handle->param_count, 7);
}

TEST_F(PlanCacheFixture, DisabledCacheMissesEverythingAndRejectsPrepare) {
  db_.plan_cache().set_enabled(false);
  const size_t size0 = cache().size();
  // Execution still works — every statement takes the parse-per-statement
  // ablation path — but nothing enters the cache.
  EXPECT_EQ(Run("SELECT COUNT(*) FROM t").rows.at(0).at(0).as_int(), 3);
  EXPECT_EQ(Run("SELECT COUNT(*) FROM t").rows.at(0).at(0).as_int(), 3);
  EXPECT_EQ(cache().size(), size0);
  EXPECT_THROW(exec_.Prepare("SELECT 1", /*pin=*/true), UsageError);
  db_.plan_cache().set_enabled(true);
}

TEST_F(PlanCacheFixture, PreparedPlanReportsParameterCount) {
  const auto plan =
      exec_.Prepare("SELECT v FROM t WHERE id = ? OR v > ?", /*pin=*/true);
  EXPECT_EQ(plan->param_count, 2);
  const auto none = exec_.Prepare("SELECT v FROM t", /*pin=*/true);
  EXPECT_EQ(none->param_count, 0);
}

}  // namespace
}  // namespace sqloop::minidb
