// Paged storage & buffer pool acceptance suite (`ctest -L storage`):
// pin/unpin balance, clock eviction order, pinned-page eviction refusal,
// spill/reload round trips, quota-pressure reclaim, the CHECKSUM TABLE
// statement, checkpoint dump reuse, a paged-vs-resident differential, and
// a reader/writer/evictor race for the tsan preset.
#include "minidb/buffer_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/memory_tracker.h"
#include "core/checkpoint.h"
#include "minidb/database.h"
#include "minidb/dump.h"
#include "minidb/executor.h"
#include "minidb/page.h"
#include "minidb/table.h"
#include "sql/parser.h"
#include "sql/printer.h"

namespace sqloop::minidb {
namespace {

Schema MakeSchema() {
  return Schema({{"id", ValueType::kInt64},
                 {"score", ValueType::kDouble},
                 {"label", ValueType::kText}},
                /*primary_key_index=*/0);
}

Row MakeRow(int64_t id) {
  // Mixed payloads so the spill image exercises every value tag: NULLs,
  // doubles with fractional bits, short (SSO) and long (heap) text.
  Row row;
  row.push_back(Value(id));
  if (id % 7 == 0) {
    row.push_back(Value::Null());
  } else {
    row.push_back(Value(static_cast<double>(id) + 0.125));
  }
  if (id % 5 == 0) {
    row.push_back(Value::Null());
  } else if (id % 3 == 0) {
    row.push_back(Value(std::string(64, 'x') + std::to_string(id)));
  } else {
    row.push_back(Value("t" + std::to_string(id)));
  }
  return row;
}

std::string UniqueSpillDir(const char* tag) {
  static std::atomic<uint64_t> counter{0};
  return (std::filesystem::temp_directory_path() /
          ("sqloop_pool_test_" + std::string(tag) + "_" +
           std::to_string(counter.fetch_add(1))))
      .string();
}

/// A spill-enabled table over its own bounded pool. The budget is set
/// BEFORE the table is configured, so spill participation latches on.
struct PagedFixture {
  explicit PagedFixture(int64_t budget_bytes, const char* tag = "fx")
      : pool(std::make_shared<BufferPool>(UniqueSpillDir(tag))),
        table(std::make_unique<Table>("t", MakeSchema())) {
    pool->set_budget_bytes(budget_bytes);
    table->set_integrity_enabled(true);
    table->ConfigureStorage(pool, /*paged=*/true);
  }

  void InsertRows(int64_t count) {
    for (int64_t i = 0; i < count; ++i) table->Insert(MakeRow(i));
  }

  std::shared_ptr<BufferPool> pool;
  std::unique_ptr<Table> table;
};

constexpr int64_t kRowsPerPage = static_cast<int64_t>(kPageRowCapacity);
// Roomy enough that inserting a few pages never evicts on its own.
constexpr int64_t kLooseBudget = 64 << 20;

TEST(BufferPool, PagedTableKeepsRowIdsAndValues) {
  PagedFixture fx(kLooseBudget, "ids");
  fx.InsertRows(3 * kRowsPerPage + 17);
  EXPECT_EQ(fx.table->page_count(), 4u);
  EXPECT_EQ(fx.table->live_row_count(),
            static_cast<size_t>(3 * kRowsPerPage + 17));
  // Row ids are stable slot addresses across pages.
  for (int64_t id : {int64_t{0}, kRowsPerPage - 1, kRowsPerPage,
                     2 * kRowsPerPage + 5, 3 * kRowsPerPage + 16}) {
    const Row& row = fx.table->At(static_cast<size_t>(id));
    EXPECT_EQ(row[0].as_int(), id);
  }
  EXPECT_EQ(fx.table->FindByPrimaryKey(Value(int64_t{kRowsPerPage + 3})),
            kRowsPerPage + 3);
  // Update and delete keep ids, indexes, and the checksum coherent.
  Row updated = MakeRow(kRowsPerPage + 3);
  updated[2] = Value(std::string("rewritten"));
  fx.table->Update(static_cast<size_t>(kRowsPerPage + 3), std::move(updated));
  fx.table->Delete(static_cast<size_t>(2 * kRowsPerPage));
  EXPECT_FALSE(fx.table->IsLive(static_cast<size_t>(2 * kRowsPerPage)));
  EXPECT_TRUE(fx.table->VerifyContent());
}

TEST(BufferPool, PinUnpinBalanceAllowsFullEviction) {
  PagedFixture fx(kLooseBudget, "balance");
  fx.InsertRows(4 * kRowsPerPage);
  EXPECT_EQ(fx.table->resident_page_count(), 4u);

  // Scope-held reads: every page a scan pinned is released when the scope
  // dies, so Shrink() can empty the pool — a leaked pin would block it.
  {
    PinScope scope;
    for (size_t id = 0; id < fx.table->slot_count(); ++id) {
      (void)fx.table->At(id);
    }
    // While the scope holds its pins nothing is evictable.
    EXPECT_EQ(fx.pool->Shrink(), 0);
    EXPECT_EQ(fx.table->resident_page_count(), 4u);
  }
  EXPECT_GT(fx.pool->Shrink(), 0);
  EXPECT_EQ(fx.table->resident_page_count(), 0u);

  // Scope-less reads take transient pin/unpin pairs: also fully evictable,
  // and each access after the eviction above is a miss that faults in.
  const uint64_t misses_before = fx.pool->stats().misses;
  for (size_t id = 0; id < fx.table->slot_count(); id += kRowsPerPage) {
    (void)fx.table->At(id);
  }
  EXPECT_GE(fx.pool->stats().misses, misses_before + 4);
  fx.pool->Shrink();
  EXPECT_EQ(fx.table->resident_page_count(), 0u);

  // Windowed scan: releasing at a page boundary lets earlier pages go
  // while the scan keeps its current page pinned.
  {
    PinScope scope;
    PinScope::Window window;
    for (size_t id = 0; id < fx.table->slot_count(); ++id) {
      if ((id & kPageRowMask) == 0) window.Reset();
      (void)fx.table->At(id);
      if (id == static_cast<size_t>(2 * kRowsPerPage)) {
        // Pages 0 and 1 were released by the window; only the current
        // page (2) is pinned, so Shrink can evict all but one page.
        fx.pool->Shrink();
        EXPECT_EQ(fx.table->resident_page_count(), 1u);
      }
    }
  }
  fx.pool->Shrink();
  EXPECT_EQ(fx.table->resident_page_count(), 0u);
}

TEST(BufferPool, PinnedPageRefusesEviction) {
  PagedFixture fx(kLooseBudget, "pinned");
  fx.InsertRows(3 * kRowsPerPage);
  {
    PinScope scope;
    const Row& held = fx.table->At(0);  // pins page 0 into the scope
    EXPECT_EQ(held[0].as_int(), 0);
    fx.pool->Shrink();
    // Page 0 stays resident; the reference must still be readable.
    EXPECT_EQ(fx.table->resident_page_count(), 1u);
    EXPECT_EQ(held[0].as_int(), 0);
    const uint64_t misses = fx.pool->stats().misses;
    (void)fx.table->At(5);  // same page: a hit, not a fault-in
    EXPECT_EQ(fx.pool->stats().misses, misses);
  }
  fx.pool->Shrink();
  EXPECT_EQ(fx.table->resident_page_count(), 0u);
}

TEST(BufferPool, EvictionFollowsClockOrder) {
  PagedFixture fx(kLooseBudget, "clock");
  fx.InsertRows(3 * kRowsPerPage);
  // First reclaim sweep: every page starts referenced (insert pins), so
  // the clock clears all bits and evicts the first page past the hand —
  // the coldest by insertion order, page 0.
  EXPECT_GT(fx.pool->TryReclaim(1), 0);
  EXPECT_EQ(fx.table->resident_page_count(), 2u);
  uint64_t misses = fx.pool->stats().misses;
  (void)fx.table->At(0);  // page 0 was the victim: faulting miss
  EXPECT_EQ(fx.pool->stats().misses, misses + 1);

  // Second chance: rebuild a known state — fault in pages 2 and 0 (both
  // referenced) and reclaim once; the sweep clears both bits and evicts
  // the first page past the hand, leaving one survivor with a cleared
  // bit. Fault in page 1 (referenced) next to it, and the following
  // reclaim must take the unreferenced survivor while the referenced
  // newcomer gets its second chance.
  fx.pool->Shrink();
  (void)fx.table->At(static_cast<size_t>(2 * kRowsPerPage));
  (void)fx.table->At(0);
  ASSERT_EQ(fx.table->resident_page_count(), 2u);
  EXPECT_GT(fx.pool->TryReclaim(1), 0);
  ASSERT_EQ(fx.table->resident_page_count(), 1u);
  (void)fx.table->At(static_cast<size_t>(kRowsPerPage));  // referenced
  EXPECT_GT(fx.pool->TryReclaim(1), 0);
  misses = fx.pool->stats().misses;
  (void)fx.table->At(static_cast<size_t>(kRowsPerPage));
  EXPECT_EQ(fx.pool->stats().misses, misses)
      << "the referenced page must survive the sweep";
}

TEST(BufferPool, SpillReloadRoundTrip) {
  PagedFixture fx(kLooseBudget, "roundtrip");
  const int64_t kRows = 4 * kRowsPerPage + 100;
  fx.InsertRows(kRows);
  fx.table->Delete(static_cast<size_t>(kRowsPerPage) + 11);
  const uint64_t hash_before = fx.table->content_hash();

  fx.pool->Shrink();
  EXPECT_EQ(fx.table->resident_page_count(), 0u);
  EXPECT_GT(fx.pool->stats().bytes_spilled, 0u);

  // Every value (nulls, doubles, SSO and heap text) round-trips exactly.
  for (int64_t id = 0; id < kRows; ++id) {
    if (!fx.table->IsLive(static_cast<size_t>(id))) continue;
    const Row expected = MakeRow(id);
    const Row& actual = fx.table->At(static_cast<size_t>(id));
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t c = 0; c < expected.size(); ++c) {
      EXPECT_EQ(actual[c].ToString(), expected[c].ToString())
          << "row " << id << " col " << c;
    }
  }
  EXPECT_EQ(fx.table->content_hash(), hash_before);
  EXPECT_TRUE(fx.table->VerifyContent());

  // Mutate after a reload, evict again, and verify the re-spilled image.
  Row updated = MakeRow(7);
  updated[1] = Value(3.5);
  fx.table->Update(7, std::move(updated));
  fx.pool->Shrink();
  EXPECT_DOUBLE_EQ(fx.table->At(7)[1].as_double(), 3.5);
  EXPECT_TRUE(fx.table->VerifyContent());

  // Appends into a reloaded tail page keep earlier views stable.
  fx.pool->Shrink();
  {
    PinScope scope;
    const Row& before = fx.table->At(static_cast<size_t>(kRows) - 1);
    fx.table->Insert(MakeRow(kRows));
    EXPECT_EQ(before[0].as_int(), kRows - 1);
  }
}

TEST(BufferPool, BudgetEvictsDuringInsert) {
  // A budget of ~2 pages of rows: loading 8 pages must keep residency
  // bounded the whole way instead of spiking to the dataset size.
  PagedFixture probe(kLooseBudget, "probe");
  probe.InsertRows(kRowsPerPage);
  const int64_t page_bytes = probe.pool->stats().resident_bytes;

  PagedFixture fx(2 * page_bytes + page_bytes / 2, "budget");
  fx.InsertRows(8 * kRowsPerPage);
  const BufferPool::Stats stats = fx.pool->stats();
  EXPECT_GT(stats.pages_evicted, 0u);
  EXPECT_LE(stats.resident_peak, fx.pool->budget_bytes() + page_bytes)
      << "residency must stay near the budget while loading";
  EXPECT_TRUE(fx.table->VerifyContent());
}

TEST(BufferPool, VerifyContentLocalizesCorruptPage) {
  PagedFixture fx(kLooseBudget, "scrub");
  fx.InsertRows(3 * kRowsPerPage);
  ASSERT_TRUE(fx.table->VerifyContent());
  fx.table->CorruptCellForTesting(static_cast<size_t>(kRowsPerPage) + 4, 0);
  uint64_t expected = 0;
  uint64_t actual = 0;
  int64_t bad_page = -1;
  EXPECT_FALSE(fx.table->VerifyContent(&expected, &actual, &bad_page));
  EXPECT_EQ(bad_page, 1) << "page-granular shards must localize the damage";
}

TEST(MemoryReclaimer, QuotaPressureEvictsBeforeError) {
  // Unit level: a breaching Charge consults the reclaimer once and
  // retries; a reclaimer that frees nothing still fails.
  MemoryTracker root("root");
  root.set_limit_bytes(1000);
  root.ChargeUnchecked(900);
  int calls = 0;
  root.set_reclaimer([&](int64_t need) -> int64_t {
    ++calls;
    EXPECT_GE(need, 100);
    root.Release(500);
    return 500;
  });
  root.Charge(200);  // 1100 > 1000 -> reclaim 500 -> 400 + 200 fits
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(root.reserved_bytes(), 600);
  root.set_reclaimer([&](int64_t) -> int64_t { return 0; });
  EXPECT_THROW(root.Charge(10'000), QuotaExceededError);

  // Integration: the database installs its pool as the reclaimer, so a
  // transient charge that would breach evicts table pages instead of
  // throwing.
  Database db("quota", EngineProfile::Canonical());
  db.set_buffer_pool_bytes(64 << 20);
  Executor exec(db);
  exec.ExecuteSql("CREATE TABLE q (id BIGINT PRIMARY KEY, v TEXT)");
  for (int i = 0; i < 3 * kRowsPerPage; ++i) {
    exec.ExecuteSql("INSERT INTO q VALUES (" + std::to_string(i) + ", 'v" +
                    std::to_string(i) + "')");
  }
  const size_t before = db.FindTable("q")->resident_page_count();
  ASSERT_GT(before, 0u);
  // Cap the root at its current reservation: the next checked charge
  // breaches, the pool reclaimer evicts pages, and the charge succeeds.
  db.memory_tracker().set_limit_bytes(db.memory_tracker().reserved_bytes());
  EXPECT_NO_THROW(db.memory_tracker().Charge(1024));
  db.memory_tracker().Release(1024);
  EXPECT_LT(db.FindTable("q")->resident_page_count(), before);
}

TEST(ChecksumTable, StatementParsesPrintsAndExecutes) {
  const sql::StatementPtr stmt = sql::ParseStatement("CHECKSUM TABLE t");
  ASSERT_EQ(stmt->kind, sql::StatementKind::kChecksumTable);
  EXPECT_EQ(stmt->table_name, "t");
  EXPECT_EQ(sql::PrintStatement(*stmt), "CHECKSUM TABLE t");

  Database db("ck", EngineProfile::Canonical());
  Executor exec(db);
  exec.ExecuteSql("CREATE TABLE t (id BIGINT PRIMARY KEY, v DOUBLE)");
  exec.ExecuteSql("INSERT INTO t VALUES (1, 0.5)");
  exec.ExecuteSql("INSERT INTO t VALUES (2, 1.5)");
  const ResultSet first = exec.ExecuteSql("CHECKSUM TABLE t");
  ASSERT_EQ(first.rows.size(), 1u);
  ASSERT_EQ(first.columns.size(), 3u);
  EXPECT_EQ(first.columns[1], "checksum");
  EXPECT_EQ(first.rows[0][2].as_int(), 2);
  char expected[20];
  std::snprintf(expected, sizeof(expected), "0x%016llx",
                static_cast<unsigned long long>(
                    db.FindTable("t")->content_hash()));
  EXPECT_EQ(first.rows[0][1].as_text(), expected);

  // O(1) probe semantics: stable while the table is unchanged, different
  // after a mutation, and equal again after the mutation is undone.
  EXPECT_EQ(exec.ExecuteSql("CHECKSUM TABLE t").rows[0][1].as_text(),
            first.rows[0][1].as_text());
  exec.ExecuteSql("INSERT INTO t VALUES (3, 9.0)");
  const std::string changed =
      exec.ExecuteSql("CHECKSUM TABLE t").rows[0][1].as_text();
  EXPECT_NE(changed, first.rows[0][1].as_text());
  exec.ExecuteSql("DELETE FROM t WHERE id = 3");
  EXPECT_EQ(exec.ExecuteSql("CHECKSUM TABLE t").rows[0][1].as_text(),
            first.rows[0][1].as_text());

  EXPECT_THROW(exec.ExecuteSql("CHECKSUM TABLE missing"), ExecutionError);
  db.FindTable("t")->set_quarantined(true);
  EXPECT_THROW(exec.ExecuteSql("CHECKSUM TABLE t"), IntegrityError);
}

TEST(CheckpointReuse, UnchangedChecksumRepublishesSealedDump) {
  Table table("r", MakeSchema());
  table.set_integrity_enabled(true);
  for (int64_t i = 0; i < 50; ++i) table.Insert(MakeRow(i));

  const std::string dir = UniqueSpillDir("ckpt");
  core::CheckpointManager ckpt(dir, "job");
  const std::string stem = "table.dump";
  const std::string checksum = std::to_string(table.content_hash());

  // Round 1: nothing sealed yet -> fresh dump, then record.
  ckpt.BeginRound(1);
  EXPECT_FALSE(ckpt.TryReuseDump(1, stem, checksum));
  DumpTableToFile(table, ckpt.FileFor(1, stem));
  ckpt.RecordDumpChecksum(1, stem, checksum);

  // Round 2, unchanged table: the sealed bytes are republished and the
  // copy validates like a fresh dump.
  ckpt.BeginRound(2);
  EXPECT_TRUE(ckpt.TryReuseDump(2, stem, checksum));
  uint32_t crc1 = 0;
  uint32_t crc2 = 0;
  EXPECT_TRUE(ValidateDumpFile(ckpt.FileFor(1, stem), &crc1, nullptr));
  EXPECT_TRUE(ValidateDumpFile(ckpt.FileFor(2, stem), &crc2, nullptr));
  EXPECT_EQ(crc1, crc2);

  // Round 3, mutated table: the checksum diverges and reuse refuses.
  table.Insert(MakeRow(1000));
  ckpt.BeginRound(3);
  EXPECT_FALSE(
      ckpt.TryReuseDump(3, stem, std::to_string(table.content_hash())));
  std::filesystem::remove_all(dir);
}

TEST(PagedDifferential, BitIdenticalToResidentUnderTinyBudget) {
  // The same statement stream through (a) the resident vector heap and
  // (b) paged storage under a budget far below the data size must agree
  // bit-for-bit — values, row order, and the maintained checksum.
  Database resident("res", EngineProfile::Canonical());
  resident.set_paged_enabled(false);
  Database paged("pag", EngineProfile::Canonical());
  paged.set_buffer_pool_bytes(96 << 10);  // a couple of pages of budget
  Executor res_exec(resident);
  Executor pag_exec(paged);

  const auto run_both = [&](const std::string& sql) {
    const ResultSet a = res_exec.ExecuteSql(sql);
    const ResultSet b = pag_exec.ExecuteSql(sql);
    ASSERT_EQ(a.rows.size(), b.rows.size()) << sql;
    for (size_t r = 0; r < a.rows.size(); ++r) {
      ASSERT_EQ(a.rows[r].size(), b.rows[r].size()) << sql;
      for (size_t c = 0; c < a.rows[r].size(); ++c) {
        EXPECT_EQ(a.rows[r][c].ToString(), b.rows[r][c].ToString())
            << sql << " row " << r << " col " << c;
      }
    }
  };

  run_both(
      "CREATE TABLE s (id BIGINT PRIMARY KEY, rank DOUBLE PRECISION, "
      "tag TEXT)");
  run_both("CREATE TABLE e (src BIGINT, dst BIGINT, w DOUBLE PRECISION)");
  run_both("CREATE INDEX e_dst ON e (dst)");
  for (int i = 0; i < 3000; ++i) {
    const std::string rank =
        i % 13 == 0 ? "NULL" : std::to_string(i) + ".125";
    const std::string tag =
        i % 9 == 0 ? "NULL" : "'tag" + std::to_string(i % 5) + "'";
    run_both("INSERT INTO s VALUES (" + std::to_string(i) + ", " + rank +
             ", " + tag + ")");
    run_both("INSERT INTO e VALUES (" + std::to_string(i % 97) + ", " +
             std::to_string((i * 3) % 89) + ", " + std::to_string(i) +
             ".25)");
  }
  EXPECT_GT(paged.buffer_pool().stats().pages_evicted, 0u)
      << "the tiny budget must actually force spills";

  run_both("SELECT * FROM s WHERE rank > 100.0 ORDER BY id LIMIT 50");
  run_both("SELECT COUNT(*), SUM(rank), MIN(id), MAX(id) FROM s");
  run_both(
      "SELECT tag, COUNT(*) AS n, AVG(rank) FROM s GROUP BY tag "
      "ORDER BY tag");
  run_both(
      "SELECT s.id, e.src, e.w FROM s JOIN e ON s.id = e.dst "
      "WHERE s.rank IS NOT NULL ORDER BY s.id, e.src LIMIT 100");
  run_both("UPDATE s SET rank = rank * 2.0 WHERE id < 500");
  run_both("DELETE FROM e WHERE src = 13");
  run_both("SELECT COUNT(*) FROM e");
  run_both("SELECT DISTINCT tag FROM s ORDER BY tag");
  // The maintained checksums agree across representations.
  run_both("CHECKSUM TABLE s");
  run_both("CHECKSUM TABLE e");
}

TEST(BufferPool, ReaderWriterEvictorRace) {
  // tsan target (`ctest -L storage` runs under the tsan preset): readers
  // scanning under shared table locks with pin scopes, a writer mutating
  // under the exclusive lock, and an evictor hammering TryReclaim with no
  // table lock at all. The pin protocol is the only thing keeping the
  // evictor's serialization away from rows being read or written.
  PagedFixture fx(kLooseBudget, "race");
  const int64_t kSeedRows = 2 * kRowsPerPage;
  fx.InsertRows(kSeedRows);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> read_sum{0};

  std::thread writer([&] {
    int64_t next_id = kSeedRows;
    for (int iter = 0; iter < 400; ++iter) {
      const std::unique_lock lock(fx.table->lock());
      PinScope scope;
      fx.table->Insert(MakeRow(next_id));
      Row updated = MakeRow(next_id % kSeedRows);
      updated[1] = Value(static_cast<double>(iter));
      fx.table->Update(static_cast<size_t>(next_id % kSeedRows),
                       std::move(updated));
      ++next_id;
    }
    stop.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      uint64_t sum = 0;
      // do/while: on a single-core box the writer can finish before the
      // readers are scheduled at all; every reader still owes one full
      // scan so the assertion below has teeth.
      do {
        const std::shared_lock lock(fx.table->lock());
        PinScope scope;
        PinScope::Window window;
        for (size_t id = 0; id < fx.table->slot_count(); ++id) {
          if ((id & kPageRowMask) == 0) window.Reset();
          if (!fx.table->IsLive(id)) continue;
          sum += static_cast<uint64_t>(fx.table->At(id)[0].as_int());
        }
      } while (!stop.load(std::memory_order_acquire));
      read_sum.fetch_add(sum, std::memory_order_relaxed);
    });
  }

  std::thread evictor([&] {
    while (!stop.load(std::memory_order_acquire)) {
      fx.pool->TryReclaim(1 << 16);
      std::this_thread::yield();
    }
  });

  writer.join();
  for (std::thread& t : readers) t.join();
  evictor.join();

  EXPECT_GT(read_sum.load(), 0u);
  const std::shared_lock lock(fx.table->lock());
  EXPECT_TRUE(fx.table->VerifyContent());
}

}  // namespace
}  // namespace sqloop::minidb
