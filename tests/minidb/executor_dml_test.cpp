#include <gtest/gtest.h>

#include "common/error.h"
#include "tests/minidb/test_util.h"

namespace sqloop::minidb {
namespace {

using testing::DbFixture;

class DmlTest : public DbFixture {
 protected:
  void SetUp() override {
    Run("CREATE TABLE r (id BIGINT PRIMARY KEY, rank DOUBLE, delta DOUBLE)");
    Run("INSERT INTO r VALUES (1, 0.0, 0.15), (2, 0.0, 0.15), (3, 0.0, 0.15)");
  }
};

TEST_F(DmlTest, InsertReportsAffectedRows) {
  const auto result = Run("INSERT INTO r VALUES (4, 1.0, 0.0), (5, 2.0, 0.0)");
  EXPECT_EQ(result.affected_rows, 2u);
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM r").as_int(), 5);
}

TEST_F(DmlTest, InsertWithColumnListFillsNulls) {
  Run("INSERT INTO r (id, delta) VALUES (9, 0.5)");
  const auto row = Run("SELECT rank, delta FROM r WHERE id = 9").rows.at(0);
  EXPECT_TRUE(row[0].is_null());
  EXPECT_DOUBLE_EQ(row[1].as_double(), 0.5);
}

TEST_F(DmlTest, InsertSelect) {
  Run("CREATE TABLE copy (id BIGINT PRIMARY KEY, rank DOUBLE, delta DOUBLE)");
  const auto result = Run("INSERT INTO copy SELECT id, rank, delta FROM r");
  EXPECT_EQ(result.affected_rows, 3u);
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM copy").as_int(), 3);
}

TEST_F(DmlTest, InsertArityMismatchThrows) {
  EXPECT_THROW(Run("INSERT INTO r VALUES (10, 1.0)"), ExecutionError);
  EXPECT_THROW(Run("INSERT INTO r (id) VALUES (10, 1.0)"), ExecutionError);
  EXPECT_THROW(Run("INSERT INTO r (missing) VALUES (1)"), ExecutionError);
}

TEST_F(DmlTest, SimpleUpdateCountsChangedRowsOnly) {
  // All three rows match the predicate, but row 1 already has rank 5.
  Run("UPDATE r SET rank = 5.0 WHERE id = 1");
  const auto result = Run("UPDATE r SET rank = 5.0");
  EXPECT_EQ(result.affected_rows, 2u);  // row 1 was unchanged
}

TEST_F(DmlTest, UpdateExpressionSeesOldValues) {
  Run("UPDATE r SET rank = rank + delta, delta = 0.0");
  const auto rows = Run("SELECT rank, delta FROM r ORDER BY id").rows;
  for (const auto& row : rows) {
    EXPECT_DOUBLE_EQ(row[0].as_double(), 0.15);
    EXPECT_DOUBLE_EQ(row[1].as_double(), 0.0);
  }
}

TEST_F(DmlTest, UpdateWithFromSubquery) {
  // The SQLoop gather pattern: accumulate message values by id.
  Run("CREATE TABLE msg (id BIGINT, v DOUBLE)");
  Run("INSERT INTO msg VALUES (1, 0.1), (1, 0.2), (3, 1.0)");
  const auto result = Run(
      "UPDATE r SET delta = delta + m.total FROM "
      "(SELECT id AS mid, SUM(v) AS total FROM msg GROUP BY id) AS m "
      "WHERE r.id = m.mid");
  EXPECT_EQ(result.affected_rows, 2u);
  const auto rows = Run("SELECT delta FROM r ORDER BY id").rows;
  EXPECT_NEAR(rows[0][0].as_double(), 0.45, 1e-12);
  EXPECT_NEAR(rows[1][0].as_double(), 0.15, 1e-12);  // untouched
  EXPECT_NEAR(rows[2][0].as_double(), 1.15, 1e-12);
}

TEST_F(DmlTest, UpdateWithFromFirstMatchWins) {
  Run("CREATE TABLE src (id BIGINT, v DOUBLE)");
  Run("INSERT INTO src VALUES (1, 100.0), (1, 200.0)");
  Run("UPDATE r SET rank = s.v FROM src AS s WHERE r.id = s.id");
  const double rank = Run("SELECT rank FROM r WHERE id = 1")
                          .rows.at(0)
                          .at(0)
                          .as_double();
  EXPECT_TRUE(rank == 100.0 || rank == 200.0);
}

TEST_F(DmlTest, UpdateWithFromNoMatchLeavesRow) {
  Run("CREATE TABLE src (id BIGINT, v DOUBLE)");
  Run("INSERT INTO src VALUES (99, 1.0)");
  const auto result =
      Run("UPDATE r SET rank = s.v FROM src AS s WHERE r.id = s.id");
  EXPECT_EQ(result.affected_rows, 0u);
}

TEST_F(DmlTest, UpdateUnknownColumnThrows) {
  EXPECT_THROW(Run("UPDATE r SET missing = 1"), ExecutionError);
}

TEST_F(DmlTest, DeleteWithPredicate) {
  const auto result = Run("DELETE FROM r WHERE id > 1");
  EXPECT_EQ(result.affected_rows, 2u);
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM r").as_int(), 1);
}

TEST_F(DmlTest, DeleteAllThenReinsertSamePk) {
  Run("DELETE FROM r");
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM r").as_int(), 0);
  Run("INSERT INTO r VALUES (1, 9.0, 0.0)");
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM r").as_int(), 1);
}

TEST_F(DmlTest, Truncate) {
  const auto result = Run("TRUNCATE TABLE r");
  EXPECT_EQ(result.affected_rows, 3u);
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM r").as_int(), 0);
}

TEST_F(DmlTest, DropAndIfExists) {
  Run("DROP TABLE r");
  EXPECT_THROW(Run("SELECT * FROM r"), ExecutionError);
  EXPECT_THROW(Run("DROP TABLE r"), ExecutionError);
  Run("DROP TABLE IF EXISTS r");  // no throw
  Run("CREATE TABLE IF NOT EXISTS q (a BIGINT)");
  Run("CREATE TABLE IF NOT EXISTS q (a BIGINT)");  // no throw
}

TEST_F(DmlTest, CreateDuplicateTableThrows) {
  EXPECT_THROW(Run("CREATE TABLE r (a BIGINT)"), ExecutionError);
}

// Transactions ---------------------------------------------------------

TEST_F(DmlTest, RollbackRestoresDml) {
  Session session;
  Run("BEGIN", session);
  Run("UPDATE r SET rank = 9.0", session);
  Run("DELETE FROM r WHERE id = 3", session);
  Run("INSERT INTO r VALUES (4, 1.0, 1.0)", session);
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM r").as_int(), 3);
  Run("ROLLBACK", session);
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM r").as_int(), 3);
  const auto rows = Run("SELECT id, rank FROM r ORDER BY id").rows;
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_DOUBLE_EQ(rows[0][1].as_double(), 0.0);
  EXPECT_EQ(rows[2][0].as_int(), 3);
}

TEST_F(DmlTest, CommitKeepsChanges) {
  Session session;
  Run("BEGIN", session);
  Run("UPDATE r SET rank = 9.0 WHERE id = 1", session);
  Run("COMMIT", session);
  Run("ROLLBACK", session);  // no active txn; harmless
  EXPECT_DOUBLE_EQ(
      Run("SELECT rank FROM r WHERE id = 1").rows[0][0].as_double(), 9.0);
}

TEST_F(DmlTest, NestedBeginThrows) {
  Session session;
  Run("BEGIN", session);
  EXPECT_THROW(Run("BEGIN", session), ExecutionError);
}

TEST_F(DmlTest, TransactionRequiresSession) {
  EXPECT_THROW(Run("BEGIN"), UsageError);
}

TEST_F(DmlTest, RollbackOfTruncate) {
  Session session;
  Run("BEGIN", session);
  Run("TRUNCATE TABLE r", session);
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM r").as_int(), 0);
  Run("ROLLBACK", session);
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM r").as_int(), 3);
}

// Indexes through SQL ----------------------------------------------------

TEST_F(DmlTest, CreateAndDropIndexThroughSql) {
  Run("CREATE INDEX r_delta ON r (delta)");
  const auto table = db_.FindTable("r");
  ASSERT_NE(table, nullptr);
  EXPECT_TRUE(table->HasIndexOn("delta"));
  Run("DROP INDEX r_delta ON r");
  EXPECT_FALSE(table->HasIndexOn("delta"));
  EXPECT_THROW(Run("DROP INDEX r_delta ON r"), ExecutionError);
  Run("DROP INDEX IF EXISTS r_delta ON r");
}

TEST_F(DmlTest, DropIndexWithoutTableSearchesAllTables) {
  Run("CREATE INDEX r_delta ON r (delta)");
  Run("DROP INDEX r_delta");
  EXPECT_FALSE(db_.FindTable("r")->HasIndexOn("delta"));
}

}  // namespace
}  // namespace sqloop::minidb
