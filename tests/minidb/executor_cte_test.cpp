#include <gtest/gtest.h>

#include "common/error.h"
#include "tests/minidb/test_util.h"

namespace sqloop::minidb {
namespace {

using testing::DbFixture;

class CteTest : public DbFixture {
 protected:
  void SetUp() override {
    Run("CREATE TABLE edges (src BIGINT, dst BIGINT)");
    // A small DAG: 1 -> {2,3}, 2 -> 4, 3 -> 4, 4 -> 5.
    Run("INSERT INTO edges VALUES (1,2),(1,3),(2,4),(3,4),(4,5)");
  }
};

TEST_F(CteTest, PlainCte) {
  const Value v = Scalar(
      "WITH big (s) AS (SELECT src FROM edges WHERE src > 2) "
      "SELECT COUNT(*) FROM big");
  EXPECT_EQ(v.as_int(), 2);
}

TEST_F(CteTest, RecursiveFibonacciFromThePaper) {
  // Example 1: sum of Fibonacci numbers below 1000.
  const Value v = Scalar(
      "WITH RECURSIVE Fibonacci(n, pn) AS ("
      "  VALUES (0, 1)"
      "  UNION ALL"
      "  SELECT n + pn, n FROM Fibonacci WHERE n < 1000"
      ") SELECT SUM(n) FROM Fibonacci");
  // 0,1,1,2,3,5,...,987 and the first term >= 1000 (1597) is produced by
  // the final recursion before the WHERE stops expansion.
  // Sequence of n: 0, then while n<1000 emit n+pn.
  // 0,1,1,2,3,5,8,13,21,34,55,89,144,233,377,610,987,1597 -> sum = 4180.
  EXPECT_EQ(v.as_int(), 4180);
}

TEST_F(CteTest, RecursiveReachability) {
  const auto result = Run(
      "WITH RECURSIVE reach (node) AS ("
      "  SELECT 1"
      "  UNION ALL"
      "  SELECT edges.dst FROM reach JOIN edges ON reach.node = edges.src"
      ") SELECT DISTINCT node FROM reach ORDER BY node");
  // Node 4 is reached twice (via 2 and 3) — DISTINCT collapses.
  ASSERT_EQ(result.rows.size(), 5u);
  EXPECT_EQ(result.rows[4][0].as_int(), 5);
}

TEST_F(CteTest, RecursiveSemiNaiveSeesOnlyDelta) {
  // If the step saw the whole accumulated table instead of the delta, this
  // query would never terminate (node 4 would be re-derived forever via
  // the cycle-free DAG it would keep re-joining).
  const Value v = Scalar(
      "WITH RECURSIVE hops (node, n) AS ("
      "  SELECT 1, 0"
      "  UNION ALL"
      "  SELECT edges.dst, hops.n + 1 FROM hops JOIN edges "
      "    ON hops.node = edges.src WHERE hops.n < 10"
      ") SELECT COUNT(*) FROM hops");
  // Paths: (1,0),(2,1),(3,1),(4,2)x2,(5,3)x2 -> 7 rows.
  EXPECT_EQ(v.as_int(), 7);
}

TEST_F(CteTest, RecursionLimitGuard) {
  EXPECT_THROW(Run("WITH RECURSIVE f (n) AS ("
                   "  SELECT 0 UNION ALL SELECT n + 1 FROM f"
                   ") SELECT COUNT(*) FROM f"),
               ExecutionError);
}

TEST_F(CteTest, IterativeCteRejectedByEngine) {
  // Engines don't understand the SQLoop extension — that's the point of
  // the middleware.
  try {
    Run("WITH ITERATIVE r (a) AS (SELECT 1 ITERATE SELECT a FROM r "
        "UNTIL 3 ITERATIONS) SELECT * FROM r");
    FAIL() << "expected ExecutionError";
  } catch (const ExecutionError& e) {
    EXPECT_NE(std::string(e.what()).find("SQLoop"), std::string::npos);
  }
}

TEST_F(CteTest, CteColumnRename) {
  const auto result = Run(
      "WITH pairs (a, b) AS (SELECT src, dst FROM edges) "
      "SELECT a, b FROM pairs WHERE a = 1 ORDER BY b");
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_EQ(result.columns[0], "a");
}

TEST_F(CteTest, CteColumnArityMismatchThrows) {
  EXPECT_THROW(Run("WITH p (a, b, c) AS (SELECT src, dst FROM edges) "
                   "SELECT * FROM p"),
               AnalysisError);
}

TEST_F(CteTest, RecursiveStepArityMismatchThrows) {
  EXPECT_THROW(Run("WITH RECURSIVE p (a) AS (SELECT 1 UNION ALL "
                   "SELECT a, a FROM p) SELECT * FROM p"),
               AnalysisError);
}

}  // namespace
}  // namespace sqloop::minidb
