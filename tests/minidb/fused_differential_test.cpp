// Differential suite for the fused SELECT pipeline: every statement a
// seeded generator produces must give *bit-identical* results (values and
// row order) through the fused zero-copy pipeline and the reference
// materializing one, under all three engine profiles. The generator
// covers the shapes the fused path specializes — selective filters over
// indexed and unindexed columns, inner/left/cross joins, GROUP BY with
// every aggregate, UNION ALL, DISTINCT, LIMIT — plus NULL three-valued
// logic in predicates and group keys.
//
// A final concurrency case runs borrowed-view scans against a live writer
// so the thread sanitizer exercises the fused path's locking story
// (`ctest -L engine` is part of the tsan preset).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "minidb/database.h"
#include "minidb/executor.h"

namespace sqloop::minidb {
namespace {

/// One statement's observable behaviour: its rows (order-preserving,
/// %.17g doubles — bit-faithful), or the fact it threw. Dumped to text
/// because Value's operator== has SQL semantics (NULL == NULL is false);
/// rows_examined is deliberately excluded — the two pipelines may scan
/// different row counts (that asymmetry is the optimization).
struct Outcome {
  bool threw = false;
  std::string rows;
};

Outcome RunOnce(Executor& exec, const std::string& sql) {
  Outcome outcome;
  try {
    for (const Row& row : exec.ExecuteSql(sql).rows) {
      for (const Value& value : row) outcome.rows += value.ToString() + "|";
      outcome.rows += "\n";
    }
  } catch (const Error&) {
    outcome.threw = true;
  }
  return outcome;
}

void SeedTables(Executor& exec) {
  exec.ExecuteSql(
      "CREATE TABLE s (id BIGINT PRIMARY KEY, rank DOUBLE PRECISION, "
      "delta BIGINT, tag TEXT)");
  for (int i = 0; i < 200; ++i) {
    const std::string rank =
        i % 13 == 0 ? "NULL" : std::to_string(i) + ".125";
    const std::string delta = i % 11 == 0 ? "NULL" : std::to_string(i % 7);
    const std::string tag =
        i % 9 == 0 ? "NULL" : "'tag" + std::to_string(i % 5) + "'";
    exec.ExecuteSql("INSERT INTO s VALUES (" + std::to_string(i) + ", " +
                    rank + ", " + delta + ", " + tag + ")");
  }
  exec.ExecuteSql(
      "CREATE TABLE e (src BIGINT, dst BIGINT, w DOUBLE PRECISION)");
  for (int i = 0; i < 300; ++i) {
    const std::string w = i % 8 == 0 ? "NULL" : std::to_string(i) + ".25";
    exec.ExecuteSql("INSERT INTO e VALUES (" + std::to_string(i % 50) +
                    ", " + std::to_string((i * 3) % 40) + ", " + w + ")");
  }
  exec.ExecuteSql("CREATE INDEX e_dst ON e (dst)");
  exec.ExecuteSql("CREATE TABLE small (k BIGINT, v BIGINT)");
  for (int i = 0; i < 12; ++i) {
    const std::string k = i % 5 == 4 ? "NULL" : std::to_string(i % 4);
    exec.ExecuteSql("INSERT INTO small VALUES (" + k + ", " +
                    std::to_string(i) + ")");
  }
}

/// Statement generator. Each Next() yields one SELECT drawn from the
/// grammar in the file comment, deterministic for a fixed seed.
class StatementGen {
 public:
  explicit StatementGen(uint64_t seed) : rng_(seed) {}

  std::string Next() {
    switch (rng_.NextBelow(5)) {
      case 0:
        return SingleTable();
      case 1:
        return Aggregate();
      case 2:
        return Join();
      case 3:
        return JoinAggregate();
      default:
        return Union();
    }
  }

 private:
  uint64_t Pick(uint64_t bound) { return rng_.NextBelow(bound); }
  std::string Int(int64_t lo, int64_t hi) {
    return std::to_string(lo + static_cast<int64_t>(
                                   Pick(static_cast<uint64_t>(hi - lo + 1))));
  }

  /// A predicate over one column of table alias `a`; exercises equality
  /// (index-probe bait on s.id and e.dst), ranges, IS [NOT] NULL, and the
  /// never-matching `= NULL`.
  std::string Predicate(const std::string& a, bool table_s) {
    if (table_s) {
      switch (Pick(8)) {
        case 0:
          return a + "id = " + Int(-5, 210);
        case 1:
          return a + "delta = " + Int(0, 7);
        case 2:
          return a + "delta < " + Int(1, 6);
        case 3:
          return a + "rank > " + Int(0, 180) + ".5";
        case 4:
          return a + "tag = 'tag" + Int(0, 5) + "'";
        case 5:
          return a + "rank IS NULL";
        case 6:
          return a + "delta IS NOT NULL";
        default:
          return a + "delta = NULL";
      }
    }
    switch (Pick(5)) {
      case 0:
        return a + "dst = " + Int(-2, 42);
      case 1:
        return a + "src < " + Int(5, 45);
      case 2:
        return a + "w IS NULL";
      case 3:
        return a + "w > " + Int(0, 250) + ".0";
      default:
        return a + "dst = NULL";
    }
  }

  std::string Where(const std::string& a, bool table_s) {
    const uint64_t conjuncts = Pick(4);  // 0..3
    std::string sql;
    for (uint64_t i = 0; i < conjuncts; ++i) {
      sql += (i == 0 ? " WHERE " : " AND ") + Predicate(a, table_s);
    }
    return sql;
  }

  std::string SingleTable() {
    std::string sql = "SELECT ";
    if (Pick(4) == 0) sql += "DISTINCT ";
    switch (Pick(3)) {
      case 0:
        sql += "*";
        break;
      case 1:
        sql += "id, tag, rank";
        break;
      default:
        sql += "id + delta AS shifted, rank * 2.0 AS scaled";
        break;
    }
    sql += " FROM s" + Where("", true);
    if (Pick(2) == 0) sql += " ORDER BY id";
    if (Pick(3) == 0) sql += " LIMIT " + Int(0, 20);
    return sql;
  }

  std::string Aggregate() {
    const bool grouped = Pick(4) != 0;
    std::string sql =
        "SELECT COUNT(*) AS n, SUM(rank) AS total, AVG(rank) AS mean, "
        "MIN(delta) AS lo, MAX(delta) AS hi";
    if (grouped) sql += ", tag";
    sql += " FROM s" + Where("", true);
    if (grouped) {
      sql += " GROUP BY tag";
      if (Pick(2) == 0) sql += " HAVING COUNT(*) > " + Int(0, 3);
      if (Pick(2) == 0) sql += " ORDER BY tag";
    }
    return sql;
  }

  std::string Join() {
    const bool left = Pick(3) == 0;
    std::string sql = "SELECT s.id, s.rank, e.src, e.w FROM s ";
    sql += left ? "LEFT JOIN" : "JOIN";
    sql += " e ON s.id = e.dst";
    std::string where = Where("s.", true);
    if (Pick(2) == 0) {
      where += (where.empty() ? " WHERE " : " AND ") + Predicate("e.", false);
    }
    sql += where;
    if (Pick(3) == 0) sql += " ORDER BY s.id, e.src";
    return sql;
  }

  std::string JoinAggregate() {
    if (Pick(4) == 0) {
      // Cross join stays on the small table: the point is plan shape,
      // not row volume.
      return "SELECT COUNT(*) AS n, SUM(a.v + b.v) AS total "
             "FROM small AS a, small AS b WHERE a.k = " +
             Int(0, 4);
    }
    std::string sql =
        "SELECT s.delta, COUNT(*) AS n, SUM(e.w) AS wsum "
        "FROM s JOIN e ON s.id = e.dst" +
        Where("s.", true) + " GROUP BY s.delta";
    if (Pick(2) == 0) sql += " ORDER BY s.delta";
    return sql;
  }

  std::string Union() {
    std::string sql = "SELECT id FROM s" + Where("", true);
    sql += Pick(2) == 0 ? " UNION ALL " : " UNION ";
    sql += "SELECT dst FROM e" + Where("", false);
    return sql;
  }

  Rng rng_;
};

class FusedDifferential : public ::testing::TestWithParam<const char*> {};

TEST_P(FusedDifferential, RandomStatementsMatchReferencePipeline) {
  Database db("diff", EngineProfile::ByName(GetParam()));
  Executor exec(db);
  SeedTables(exec);
  StatementGen gen(0x5ca1ab1e);
  for (int i = 0; i < 200; ++i) {
    const std::string sql = gen.Next();
    // Three-way: vectorized (batched), fused row-at-a-time, reference
    // materializing — all must agree bit for bit, including whether the
    // statement threw.
    db.set_fused_enabled(true);
    db.set_vectorized_enabled(true);
    const Outcome vectorized = RunOnce(exec, sql);
    db.set_vectorized_enabled(false);
    const Outcome fused = RunOnce(exec, sql);
    db.set_fused_enabled(false);
    const Outcome reference = RunOnce(exec, sql);
    db.set_fused_enabled(true);
    db.set_vectorized_enabled(true);
    ASSERT_EQ(vectorized.threw, reference.threw) << sql;
    ASSERT_EQ(vectorized.rows, reference.rows) << sql;
    ASSERT_EQ(fused.threw, reference.threw) << sql;
    ASSERT_EQ(fused.rows, reference.rows) << sql;
  }
}

INSTANTIATE_TEST_SUITE_P(EngineProfiles, FusedDifferential,
                         ::testing::Values("postgres", "mysql", "mariadb"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

// Borrowed row views live only for the statement that holds the table's
// shared lock; this hammers that boundary with concurrent writers while
// another thread flips the pipeline toggle, so the tsan preset can see
// the whole story at once.
TEST(FusedConcurrency, BorrowedScansRaceWithWritesAndToggle) {
  Database db("race", EngineProfile::ByName("postgres"));
  Executor exec(db);
  exec.ExecuteSql(
      "CREATE TABLE state (id BIGINT PRIMARY KEY, rank DOUBLE PRECISION, "
      "delta BIGINT)");
  for (int i = 0; i < 500; ++i) {
    exec.ExecuteSql("INSERT INTO state VALUES (" + std::to_string(i) +
                    ", 1.0, " + std::to_string(i % 100 == 0 ? 1 : 0) + ")");
  }
  std::atomic<bool> stop{false};
  std::atomic<int> updates{0};
  {
    // Writer and toggler run until the readers drain their fixed budget;
    // destruction order (inner block first) joins readers before `stop`
    // is raised. Readers are bounded, not the writer: the readers' shared
    // locks are what starve the writer, never the reverse.
    std::jthread writer([&db, &stop, &updates] {
      Executor w(db);
      int i = 0;
      while (!stop.load()) {
        w.ExecuteSql("UPDATE state SET rank = rank + 0.5 WHERE id = " +
                     std::to_string(i++ % 500));
        updates.fetch_add(1);
      }
    });
    std::jthread toggler([&db, &stop] {
      while (!stop.load()) {
        db.set_fused_enabled(false);
        db.set_fused_enabled(true);
      }
    });
    {
      std::vector<std::jthread> readers;
      for (int t = 0; t < 3; ++t) {
        readers.emplace_back([&db] {
          Executor reader(db);
          for (int i = 0; i < 120; ++i) {
            const auto result = reader.ExecuteSql(
                "SELECT COUNT(*), SUM(rank) FROM state WHERE delta = 1");
            // The writer only touches rank; the delta population is fixed.
            EXPECT_EQ(result.rows[0][0].as_int(), 5);
          }
        });
      }
    }
    stop.store(true);
  }
  const auto total = exec.ExecuteSql("SELECT SUM(rank) FROM state");
  EXPECT_DOUBLE_EQ(total.rows[0][0].NumericAsDouble(),
                   500.0 + 0.5 * updates.load());
}

}  // namespace
}  // namespace sqloop::minidb
