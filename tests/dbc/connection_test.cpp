#include "dbc/connection.h"

#include <gtest/gtest.h>

#include <memory>

#include "common/error.h"
#include "common/fault.h"
#include "dbc/driver.h"
#include "minidb/server.h"
#include "telemetry/hooks.h"

namespace sqloop::dbc {
namespace {

using minidb::EngineProfile;
using minidb::Server;

/// Each test gets a private server registered under a unique host name.
class DbcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    host_ = "host_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name());
    for (auto& c : host_) c = std::tolower(static_cast<unsigned char>(c));
    DriverManager::RegisterHost(host_, &server_);
    server_.CreateDatabase("db", EngineProfile::Postgres());
  }
  void TearDown() override { DriverManager::RegisterHost(host_, nullptr); }

  std::unique_ptr<Connection> Connect(const std::string& params = {}) {
    return DriverManager::GetConnection("minidb://" + host_ +
                                        "/db?latency_us=0" + params);
  }

  Server server_;
  std::string host_;
};

TEST_F(DbcTest, BasicQueryRoundTrip) {
  auto conn = Connect();
  conn->Execute("CREATE UNLOGGED TABLE t (id BIGINT PRIMARY KEY, v DOUBLE "
                "PRECISION)");
  EXPECT_EQ(conn->ExecuteUpdate("INSERT INTO t VALUES (1, 0.5), (2, 1.5)"),
            2u);
  const auto result = conn->ExecuteQuery("SELECT SUM(v) FROM t");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(result.rows[0][0].as_double(), 2.0);
}

TEST_F(DbcTest, UrlParsing) {
  const auto config = ConnectionConfig::Parse(
      "minidb://db.example.com:5433/analytics?latency_us=250&engine=mysql");
  EXPECT_EQ(config.host, "db.example.com");
  EXPECT_EQ(config.port, 5433);
  EXPECT_EQ(config.database, "analytics");
  EXPECT_EQ(config.latency_us, 250);
  EXPECT_EQ(config.expected_engine, "mysql");
}

TEST_F(DbcTest, MalformedUrlsThrow) {
  EXPECT_THROW(ConnectionConfig::Parse("http://x/db"), ConnectionError);
  EXPECT_THROW(ConnectionConfig::Parse("minidb://hostonly"), ConnectionError);
  EXPECT_THROW(ConnectionConfig::Parse("minidb:///db"), ConnectionError);
  EXPECT_THROW(ConnectionConfig::Parse("minidb://h/db?latency_us=abc"),
               ConnectionError);
  EXPECT_THROW(ConnectionConfig::Parse("minidb://h/db?nope=1"),
               ConnectionError);
  EXPECT_THROW(ConnectionConfig::Parse("minidb://h:notaport/db"),
               ConnectionError);
}

TEST_F(DbcTest, UnknownHostAndDatabaseThrow) {
  EXPECT_THROW(DriverManager::GetConnection("minidb://no_such_host/db"),
               ConnectionError);
  EXPECT_THROW(
      DriverManager::GetConnection("minidb://" + host_ + "/missing"),
      ConnectionError);
}

TEST_F(DbcTest, EngineAssertionChecksProfile) {
  EXPECT_NO_THROW(Connect("&engine=postgres"));
  EXPECT_THROW(Connect("&engine=mysql"), ConnectionError);
}

TEST_F(DbcTest, ProfileIntrospection) {
  auto conn = Connect();
  EXPECT_EQ(conn->profile().name, "postgres");
  EXPECT_EQ(conn->dialect(), Dialect::kPostgres);
  EXPECT_EQ(conn->database_name(), "db");
}

TEST_F(DbcTest, BatchPaysOneRoundTrip) {
  auto conn = Connect();
  conn->Execute("CREATE UNLOGGED TABLE t (id BIGINT PRIMARY KEY)");
  const uint64_t before = conn->stats().round_trips;
  for (int i = 0; i < 10; ++i) {
    conn->AddBatch("INSERT INTO t VALUES (" + std::to_string(i) + ")");
  }
  EXPECT_EQ(conn->batch_size(), 10u);
  const auto affected = conn->ExecuteBatch();
  EXPECT_EQ(conn->batch_size(), 0u);
  ASSERT_EQ(affected.size(), 10u);
  EXPECT_EQ(conn->stats().round_trips, before + 1);
  EXPECT_EQ(conn->ExecuteQuery("SELECT COUNT(*) FROM t").rows[0][0].as_int(),
            10);
}

TEST_F(DbcTest, StatsCountStatements) {
  auto conn = Connect();
  conn->Execute("CREATE UNLOGGED TABLE t (id BIGINT PRIMARY KEY)");
  conn->Execute("INSERT INTO t VALUES (1)");
  EXPECT_EQ(conn->stats().statements, 2u);
  EXPECT_EQ(conn->stats().round_trips, 2u);
}

TEST_F(DbcTest, ResetStatsZeroesCounters) {
  auto conn = Connect();
  conn->Execute("CREATE UNLOGGED TABLE t (id BIGINT PRIMARY KEY)");
  conn->Execute("INSERT INTO t VALUES (1)");
  ASSERT_GT(conn->stats().statements, 0u);
  conn->ResetStats();
  EXPECT_EQ(conn->stats().statements, 0u);
  EXPECT_EQ(conn->stats().round_trips, 0u);
  // Counting resumes from zero, e.g. between benchmark phases.
  conn->Execute("SELECT COUNT(*) FROM t");
  EXPECT_EQ(conn->stats().statements, 1u);
  EXPECT_EQ(conn->stats().round_trips, 1u);
}

TEST_F(DbcTest, RecorderAttributesStatementsAndBatches) {
  auto conn = Connect();
  EXPECT_EQ(conn->recorder(), nullptr);
  telemetry::Recorder rec;
  conn->set_recorder(&rec);
  EXPECT_EQ(conn->recorder(), &rec);

  conn->Execute("CREATE UNLOGGED TABLE t (id BIGINT PRIMARY KEY)");
  conn->AddBatch("INSERT INTO t VALUES (1)");
  conn->AddBatch("INSERT INTO t VALUES (2)");
  conn->ExecuteBatch();
  conn->ExecuteQuery("SELECT COUNT(*) FROM t");

  if (telemetry::kHooksEnabled) {
    EXPECT_EQ(rec.counter("dbc.round_trips"), 3u);  // 2 Executes + 1 batch
    EXPECT_EQ(rec.counter("dbc.statements"), 4u);
    EXPECT_EQ(rec.counter("dbc.batches"), 1u);
    EXPECT_EQ(rec.counter("dbc.batch_statements"), 2u);
    // The engine attributed its scan volume to the same recorder.
    EXPECT_GT(rec.counter("minidb.rows_examined"), 0u);
  } else {
    EXPECT_EQ(rec.Counters().size(), 0u);
  }

  // Detached: no further attribution.
  conn->set_recorder(nullptr);
  const uint64_t trips = rec.counter("dbc.round_trips");
  conn->Execute("SELECT COUNT(*) FROM t");
  EXPECT_EQ(rec.counter("dbc.round_trips"), trips);
}

TEST_F(DbcTest, AutoCommitOffRollsBackOnExplicitRollback) {
  auto conn = Connect();
  conn->Execute("CREATE UNLOGGED TABLE t (id BIGINT PRIMARY KEY)");
  conn->Execute("INSERT INTO t VALUES (1)");
  conn->SetAutoCommit(false);
  conn->Execute("INSERT INTO t VALUES (2)");
  conn->Execute("INSERT INTO t VALUES (3)");
  conn->Rollback();
  EXPECT_EQ(conn->ExecuteQuery("SELECT COUNT(*) FROM t").rows[0][0].as_int(),
            1);
  conn->Execute("INSERT INTO t VALUES (4)");
  conn->Commit();
  EXPECT_EQ(conn->ExecuteQuery("SELECT COUNT(*) FROM t").rows[0][0].as_int(),
            2);
}

TEST_F(DbcTest, CloseRollsBackOpenTransaction) {
  auto conn = Connect();
  conn->Execute("CREATE UNLOGGED TABLE t (id BIGINT PRIMARY KEY)");
  {
    auto writer = Connect();
    writer->SetAutoCommit(false);
    writer->Execute("INSERT INTO t VALUES (1)");
    writer->Close();
  }
  EXPECT_EQ(conn->ExecuteQuery("SELECT COUNT(*) FROM t").rows[0][0].as_int(),
            0);
}

TEST_F(DbcTest, ClosedConnectionRejectsWork) {
  auto conn = Connect();
  conn->Close();
  EXPECT_TRUE(conn->closed());
  EXPECT_THROW(conn->Execute("SELECT 1"), ConnectionError);
  EXPECT_THROW(conn->AddBatch("SELECT 1"), ConnectionError);
}

TEST_F(DbcTest, IsolationLevelIsRecorded) {
  auto conn = Connect();
  EXPECT_EQ(conn->transaction_isolation(), IsolationLevel::kReadCommitted);
  conn->SetTransactionIsolation(IsolationLevel::kSerializable);
  EXPECT_EQ(conn->transaction_isolation(), IsolationLevel::kSerializable);
}

TEST_F(DbcTest, TwoConnectionsShareState) {
  auto a = Connect();
  auto b = Connect();
  a->Execute("CREATE UNLOGGED TABLE t (id BIGINT PRIMARY KEY)");
  a->Execute("INSERT INTO t VALUES (1)");
  EXPECT_EQ(b->ExecuteQuery("SELECT COUNT(*) FROM t").rows[0][0].as_int(), 1);
}

TEST_F(DbcTest, MultipleHostsModelRemoteServers) {
  Server other;
  other.CreateDatabase("remote_db", EngineProfile::MariaDb());
  DriverManager::RegisterHost("db2.example.com", &other);
  auto conn = DriverManager::GetConnection(
      "minidb://db2.example.com/remote_db?latency_us=0");
  EXPECT_EQ(conn->profile().name, "mariadb");
  conn->Execute("CREATE TABLE t (id BIGINT PRIMARY KEY) ENGINE = MyISAM");
  DriverManager::RegisterHost("db2.example.com", nullptr);
  EXPECT_THROW(
      DriverManager::GetConnection("minidb://db2.example.com/remote_db"),
      ConnectionError);
}

TEST_F(DbcTest, RowCostModelsServerWork) {
  auto conn = Connect();
  conn->Execute("CREATE UNLOGGED TABLE big (id BIGINT PRIMARY KEY)");
  for (int i = 0; i < 200; ++i) {
    conn->AddBatch("INSERT INTO big VALUES (" + std::to_string(i) + ")");
  }
  conn->ExecuteBatch();

  auto costed = DriverManager::GetConnection(
      "minidb://" + host_ + "/db?latency_us=0&row_cost_ns=20000");
  const auto start = std::chrono::steady_clock::now();
  const auto result = costed->ExecuteQuery("SELECT COUNT(*) FROM big");
  const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  EXPECT_EQ(result.rows[0][0].as_int(), 200);
  EXPECT_EQ(result.rows_examined, 200u);
  // 200 rows x 20us = 4ms of modeled server work.
  EXPECT_GE(elapsed, 4000);
}

TEST_F(DbcTest, RowCostRejectsNegative) {
  EXPECT_THROW(
      ConnectionConfig::Parse("minidb://h/db?row_cost_ns=-5"),
      ConnectionError);
}

TEST_F(DbcTest, LatencyIsPaidPerRoundTrip) {
  auto slow = DriverManager::GetConnection("minidb://" + host_ +
                                           "/db?latency_us=2000");
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 5; ++i) slow->Execute("SELECT 1");
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
                .count(),
            5 * 2000);
}

// --- URL hardening & connect timeouts (see driver.h) -----------------------

TEST_F(DbcTest, DuplicateUrlParametersAreRejected) {
  EXPECT_THROW(ConnectionConfig::Parse(
                   "minidb://h/db?latency_us=10&latency_us=20"),
               ConnectionError);
  EXPECT_THROW(ConnectionConfig::Parse(
                   "minidb://h/db?engine=mysql&latency_us=5&engine=mysql"),
               ConnectionError);
  // Distinct keys stay fine.
  EXPECT_NO_THROW(
      ConnectionConfig::Parse("minidb://h/db?latency_us=5&engine=mysql"));
}

TEST_F(DbcTest, ConnectTimeoutIsValidatedAndParsed) {
  const auto config =
      ConnectionConfig::Parse("minidb://h/db?connect_timeout_ms=250");
  EXPECT_EQ(config.connect_timeout_ms, 250);
  EXPECT_THROW(ConnectionConfig::Parse("minidb://h/db?connect_timeout_ms=-1"),
               ConnectionError);
  EXPECT_THROW(ConnectionConfig::Parse("minidb://h/db?connect_timeout_ms=x"),
               ConnectionError);
}

TEST_F(DbcTest, ConnectTimeoutFiresAgainstModeledLatency) {
  // 5ms of modeled handshake latency blows a 1ms connect deadline...
  EXPECT_THROW(DriverManager::GetConnection(
                   "minidb://" + host_ + "/db?latency_us=5000&" +
                   "connect_timeout_ms=1"),
               TimeoutError);
  // ...and fits comfortably in a 1s one.
  EXPECT_NO_THROW(DriverManager::GetConnection(
      "minidb://" + host_ + "/db?latency_us=5000&connect_timeout_ms=1000"));
}

TEST_F(DbcTest, FaultRatesAreValidated) {
  EXPECT_THROW(ConnectionConfig::Parse("minidb://h/db?fault_drop_rate=1.5"),
               ConnectionError);
  EXPECT_THROW(ConnectionConfig::Parse("minidb://h/db?fault_drop_rate=-0.1"),
               ConnectionError);
  const auto config = ConnectionConfig::Parse(
      "minidb://h/db?fault_seed=7&fault_drop_rate=0.25&fault_slow_us=500");
  EXPECT_TRUE(config.has_fault);
  EXPECT_EQ(config.fault.seed, 7u);
  EXPECT_DOUBLE_EQ(config.fault.drop_rate, 0.25);
  EXPECT_EQ(config.fault.slow_us, 500);
}

TEST_F(DbcTest, InjectedDropClosesConnectionAndReopenRearmsIt) {
  auto conn = Connect();
  conn->Execute("CREATE UNLOGGED TABLE t (id BIGINT PRIMARY KEY)");

  FaultConfig config;
  config.drop_every = 1;  // every statement drops...
  config.max_faults = 1;  // ...but only once
  conn->set_fault_injector(std::make_shared<FaultInjector>(config));

  EXPECT_THROW(conn->Execute("INSERT INTO t VALUES (1)"), ConnectionLostError);
  EXPECT_TRUE(conn->closed());
  // The failed INSERT never reached the engine.
  conn->Reopen();
  EXPECT_FALSE(conn->closed());
  EXPECT_EQ(conn->ExecuteUpdate("INSERT INTO t VALUES (1)"), 1u);
  const auto result = conn->ExecuteQuery("SELECT COUNT(*) FROM t");
  EXPECT_EQ(result.rows[0][0].as_int(), 1);
}

TEST_F(DbcTest, InjectedDropRollsBackOpenTransaction) {
  auto conn = Connect();
  conn->Execute("CREATE UNLOGGED TABLE t (id BIGINT PRIMARY KEY)");
  conn->Execute("BEGIN");
  conn->Execute("INSERT INTO t VALUES (1)");

  FaultConfig config;
  config.drop_every = 1;
  config.max_faults = 1;
  conn->set_fault_injector(std::make_shared<FaultInjector>(config));
  EXPECT_THROW(conn->Execute("INSERT INTO t VALUES (2)"), ConnectionLostError);

  conn->Reopen();
  // The drop rolled back the uncommitted transaction, like a real server
  // losing its session.
  const auto result = conn->ExecuteQuery("SELECT COUNT(*) FROM t");
  EXPECT_EQ(result.rows[0][0].as_int(), 0);
}

TEST_F(DbcTest, ReopenOnOpenConnectionIsANoOp) {
  auto conn = Connect();
  conn->Execute("CREATE UNLOGGED TABLE t (id BIGINT PRIMARY KEY)");
  conn->Reopen();
  EXPECT_NO_THROW(conn->Execute("INSERT INTO t VALUES (1)"));
}

TEST_F(DbcTest, TransientFaultLeavesConnectionUsable) {
  auto conn = Connect();
  FaultConfig config;
  config.transient_every = 2;  // the 2nd, 4th, ... statements fail
  conn->set_fault_injector(std::make_shared<FaultInjector>(config));

  conn->Execute("CREATE UNLOGGED TABLE t (id BIGINT PRIMARY KEY)");
  EXPECT_THROW(conn->Execute("INSERT INTO t VALUES (1)"), TransientError);
  EXPECT_FALSE(conn->closed());
  // Immediate retry succeeds on the same connection, exactly once.
  EXPECT_EQ(conn->ExecuteUpdate("INSERT INTO t VALUES (1)"), 1u);
}

TEST_F(DbcTest, SlowFaultPastDeadlineRaisesTimeoutBeforeExecution) {
  auto conn = Connect();
  conn->Execute("CREATE UNLOGGED TABLE t (id BIGINT PRIMARY KEY)");
  conn->set_statement_timeout_ms(1);
  FaultConfig config;
  config.slow_every = 1;
  config.slow_us = 50000;  // 50ms >> the 1ms deadline
  config.max_faults = 1;
  conn->set_fault_injector(std::make_shared<FaultInjector>(config));

  EXPECT_THROW(conn->Execute("INSERT INTO t VALUES (1)"), TimeoutError);
  // The statement was never applied; the retry lands exactly once.
  EXPECT_EQ(conn->ExecuteUpdate("INSERT INTO t VALUES (1)"), 1u);
  EXPECT_EQ(conn->ExecuteQuery("SELECT COUNT(*) FROM t").rows[0][0].as_int(),
            1);
}

TEST_F(DbcTest, FaultUrlParametersShareOneInjectorPerConfig) {
  // Two connections from the same faulted URL share one decision stream:
  // with drop_every=3, the third statement overall drops, regardless of
  // which connection issues it.
  const std::string params = "&fault_seed=5&fault_drop_every=3&fault_max=1";
  auto a = Connect(params);
  auto b = Connect(params);
  a->Execute("SELECT 1");
  b->Execute("SELECT 1");
  EXPECT_THROW(a->Execute("SELECT 1"), ConnectionLostError);
  EXPECT_TRUE(a->closed());
  EXPECT_FALSE(b->closed());
}

TEST_F(DbcTest, GovernanceUrlKnobsParseAndValidate) {
  // Well-formed values land in the config.
  const auto config = ConnectionConfig::Parse(
      "minidb://h/db?memory_limit_bytes=1048576&cancel_check_rows=256");
  EXPECT_EQ(config.memory_limit_bytes, 1048576);
  EXPECT_EQ(config.cancel_check_rows, 256);
  // Omitted knobs default to "off" (unlimited / engine default).
  const auto defaults = ConnectionConfig::Parse("minidb://h/db");
  EXPECT_EQ(defaults.memory_limit_bytes, 0);
  EXPECT_EQ(defaults.cancel_check_rows, 0);

  // Zero is meaningless for both (a zero-byte budget runs nothing; a check
  // every zero rows is not a cadence) — reject rather than guess.
  EXPECT_THROW(ConnectionConfig::Parse("minidb://h/db?memory_limit_bytes=0"),
               ConnectionError);
  EXPECT_THROW(ConnectionConfig::Parse("minidb://h/db?cancel_check_rows=0"),
               ConnectionError);
  // Negative and malformed values are configuration bugs.
  EXPECT_THROW(
      ConnectionConfig::Parse("minidb://h/db?memory_limit_bytes=-1"),
      ConnectionError);
  EXPECT_THROW(ConnectionConfig::Parse("minidb://h/db?cancel_check_rows=-8"),
               ConnectionError);
  EXPECT_THROW(
      ConnectionConfig::Parse("minidb://h/db?memory_limit_bytes=lots"),
      ConnectionError);
  // Duplicates are rejected like every other URL parameter.
  EXPECT_THROW(ConnectionConfig::Parse("minidb://h/db?memory_limit_bytes=1"
                                       "&memory_limit_bytes=2"),
               ConnectionError);
  EXPECT_THROW(ConnectionConfig::Parse("minidb://h/db?cancel_check_rows=1"
                                       "&cancel_check_rows=2"),
               ConnectionError);
}

TEST_F(DbcTest, ConnectionMemoryLimitAbortsOversizedStatements) {
  auto conn = Connect();
  conn->Execute("CREATE UNLOGGED TABLE nums (id BIGINT PRIMARY KEY)");
  for (int i = 0; i < 64; ++i) {
    conn->AddBatch("INSERT INTO nums VALUES (" + std::to_string(i) + ")");
  }
  conn->ExecuteBatch();

  // A 64x64x64 cross join materializes far more than 64 KiB of transient
  // rows; the budgeted connection must abort it with the quota error while
  // an unbudgeted one computes it fine.
  const std::string big =
      "SELECT COUNT(*) FROM nums AS a, nums AS b, nums AS c";
  auto budgeted = DriverManager::GetConnection(
      "minidb://" + host_ + "/db?latency_us=0&memory_limit_bytes=65536");
  EXPECT_THROW(budgeted->ExecuteQuery(big), QuotaExceededError);
  // The failed statement released its partial reservation; small work
  // still fits under the same budget.
  const auto small = budgeted->ExecuteQuery("SELECT COUNT(*) FROM nums");
  EXPECT_EQ(small.rows[0][0].as_int(), 64);
  EXPECT_EQ(conn->ExecuteQuery(big).rows[0][0].as_int(), 64 * 64 * 64);
}

TEST_F(DbcTest, OpenConnectionsAreCounted) {
  auto& db = *server_.FindDatabase("db");
  const int base = db.open_connections();
  {
    auto a = Connect();
    auto b = Connect();
    EXPECT_EQ(db.open_connections(), base + 2);
    a->Close();
    EXPECT_EQ(db.open_connections(), base + 1);
  }  // b's destructor closes it
  EXPECT_EQ(db.open_connections(), base);
}

}  // namespace
}  // namespace sqloop::dbc
