#include "dbc/connection.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "dbc/driver.h"
#include "minidb/server.h"
#include "telemetry/hooks.h"

namespace sqloop::dbc {
namespace {

using minidb::EngineProfile;
using minidb::Server;

/// Each test gets a private server registered under a unique host name.
class DbcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    host_ = "host_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name());
    for (auto& c : host_) c = std::tolower(static_cast<unsigned char>(c));
    DriverManager::RegisterHost(host_, &server_);
    server_.CreateDatabase("db", EngineProfile::Postgres());
  }
  void TearDown() override { DriverManager::RegisterHost(host_, nullptr); }

  std::unique_ptr<Connection> Connect(const std::string& params = {}) {
    return DriverManager::GetConnection("minidb://" + host_ +
                                        "/db?latency_us=0" + params);
  }

  Server server_;
  std::string host_;
};

TEST_F(DbcTest, BasicQueryRoundTrip) {
  auto conn = Connect();
  conn->Execute("CREATE UNLOGGED TABLE t (id BIGINT PRIMARY KEY, v DOUBLE "
                "PRECISION)");
  EXPECT_EQ(conn->ExecuteUpdate("INSERT INTO t VALUES (1, 0.5), (2, 1.5)"),
            2u);
  const auto result = conn->ExecuteQuery("SELECT SUM(v) FROM t");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(result.rows[0][0].as_double(), 2.0);
}

TEST_F(DbcTest, UrlParsing) {
  const auto config = ConnectionConfig::Parse(
      "minidb://db.example.com:5433/analytics?latency_us=250&engine=mysql");
  EXPECT_EQ(config.host, "db.example.com");
  EXPECT_EQ(config.port, 5433);
  EXPECT_EQ(config.database, "analytics");
  EXPECT_EQ(config.latency_us, 250);
  EXPECT_EQ(config.expected_engine, "mysql");
}

TEST_F(DbcTest, MalformedUrlsThrow) {
  EXPECT_THROW(ConnectionConfig::Parse("http://x/db"), ConnectionError);
  EXPECT_THROW(ConnectionConfig::Parse("minidb://hostonly"), ConnectionError);
  EXPECT_THROW(ConnectionConfig::Parse("minidb:///db"), ConnectionError);
  EXPECT_THROW(ConnectionConfig::Parse("minidb://h/db?latency_us=abc"),
               ConnectionError);
  EXPECT_THROW(ConnectionConfig::Parse("minidb://h/db?nope=1"),
               ConnectionError);
  EXPECT_THROW(ConnectionConfig::Parse("minidb://h:notaport/db"),
               ConnectionError);
}

TEST_F(DbcTest, UnknownHostAndDatabaseThrow) {
  EXPECT_THROW(DriverManager::GetConnection("minidb://no_such_host/db"),
               ConnectionError);
  EXPECT_THROW(
      DriverManager::GetConnection("minidb://" + host_ + "/missing"),
      ConnectionError);
}

TEST_F(DbcTest, EngineAssertionChecksProfile) {
  EXPECT_NO_THROW(Connect("&engine=postgres"));
  EXPECT_THROW(Connect("&engine=mysql"), ConnectionError);
}

TEST_F(DbcTest, ProfileIntrospection) {
  auto conn = Connect();
  EXPECT_EQ(conn->profile().name, "postgres");
  EXPECT_EQ(conn->dialect(), Dialect::kPostgres);
  EXPECT_EQ(conn->database_name(), "db");
}

TEST_F(DbcTest, BatchPaysOneRoundTrip) {
  auto conn = Connect();
  conn->Execute("CREATE UNLOGGED TABLE t (id BIGINT PRIMARY KEY)");
  const uint64_t before = conn->stats().round_trips;
  for (int i = 0; i < 10; ++i) {
    conn->AddBatch("INSERT INTO t VALUES (" + std::to_string(i) + ")");
  }
  EXPECT_EQ(conn->batch_size(), 10u);
  const auto affected = conn->ExecuteBatch();
  EXPECT_EQ(conn->batch_size(), 0u);
  ASSERT_EQ(affected.size(), 10u);
  EXPECT_EQ(conn->stats().round_trips, before + 1);
  EXPECT_EQ(conn->ExecuteQuery("SELECT COUNT(*) FROM t").rows[0][0].as_int(),
            10);
}

TEST_F(DbcTest, StatsCountStatements) {
  auto conn = Connect();
  conn->Execute("CREATE UNLOGGED TABLE t (id BIGINT PRIMARY KEY)");
  conn->Execute("INSERT INTO t VALUES (1)");
  EXPECT_EQ(conn->stats().statements, 2u);
  EXPECT_EQ(conn->stats().round_trips, 2u);
}

TEST_F(DbcTest, ResetStatsZeroesCounters) {
  auto conn = Connect();
  conn->Execute("CREATE UNLOGGED TABLE t (id BIGINT PRIMARY KEY)");
  conn->Execute("INSERT INTO t VALUES (1)");
  ASSERT_GT(conn->stats().statements, 0u);
  conn->ResetStats();
  EXPECT_EQ(conn->stats().statements, 0u);
  EXPECT_EQ(conn->stats().round_trips, 0u);
  // Counting resumes from zero, e.g. between benchmark phases.
  conn->Execute("SELECT COUNT(*) FROM t");
  EXPECT_EQ(conn->stats().statements, 1u);
  EXPECT_EQ(conn->stats().round_trips, 1u);
}

TEST_F(DbcTest, RecorderAttributesStatementsAndBatches) {
  auto conn = Connect();
  EXPECT_EQ(conn->recorder(), nullptr);
  telemetry::Recorder rec;
  conn->set_recorder(&rec);
  EXPECT_EQ(conn->recorder(), &rec);

  conn->Execute("CREATE UNLOGGED TABLE t (id BIGINT PRIMARY KEY)");
  conn->AddBatch("INSERT INTO t VALUES (1)");
  conn->AddBatch("INSERT INTO t VALUES (2)");
  conn->ExecuteBatch();
  conn->ExecuteQuery("SELECT COUNT(*) FROM t");

  if (telemetry::kHooksEnabled) {
    EXPECT_EQ(rec.counter("dbc.round_trips"), 3u);  // 2 Executes + 1 batch
    EXPECT_EQ(rec.counter("dbc.statements"), 4u);
    EXPECT_EQ(rec.counter("dbc.batches"), 1u);
    EXPECT_EQ(rec.counter("dbc.batch_statements"), 2u);
    // The engine attributed its scan volume to the same recorder.
    EXPECT_GT(rec.counter("minidb.rows_examined"), 0u);
  } else {
    EXPECT_EQ(rec.Counters().size(), 0u);
  }

  // Detached: no further attribution.
  conn->set_recorder(nullptr);
  const uint64_t trips = rec.counter("dbc.round_trips");
  conn->Execute("SELECT COUNT(*) FROM t");
  EXPECT_EQ(rec.counter("dbc.round_trips"), trips);
}

TEST_F(DbcTest, AutoCommitOffRollsBackOnExplicitRollback) {
  auto conn = Connect();
  conn->Execute("CREATE UNLOGGED TABLE t (id BIGINT PRIMARY KEY)");
  conn->Execute("INSERT INTO t VALUES (1)");
  conn->SetAutoCommit(false);
  conn->Execute("INSERT INTO t VALUES (2)");
  conn->Execute("INSERT INTO t VALUES (3)");
  conn->Rollback();
  EXPECT_EQ(conn->ExecuteQuery("SELECT COUNT(*) FROM t").rows[0][0].as_int(),
            1);
  conn->Execute("INSERT INTO t VALUES (4)");
  conn->Commit();
  EXPECT_EQ(conn->ExecuteQuery("SELECT COUNT(*) FROM t").rows[0][0].as_int(),
            2);
}

TEST_F(DbcTest, CloseRollsBackOpenTransaction) {
  auto conn = Connect();
  conn->Execute("CREATE UNLOGGED TABLE t (id BIGINT PRIMARY KEY)");
  {
    auto writer = Connect();
    writer->SetAutoCommit(false);
    writer->Execute("INSERT INTO t VALUES (1)");
    writer->Close();
  }
  EXPECT_EQ(conn->ExecuteQuery("SELECT COUNT(*) FROM t").rows[0][0].as_int(),
            0);
}

TEST_F(DbcTest, ClosedConnectionRejectsWork) {
  auto conn = Connect();
  conn->Close();
  EXPECT_TRUE(conn->closed());
  EXPECT_THROW(conn->Execute("SELECT 1"), ConnectionError);
  EXPECT_THROW(conn->AddBatch("SELECT 1"), ConnectionError);
}

TEST_F(DbcTest, IsolationLevelIsRecorded) {
  auto conn = Connect();
  EXPECT_EQ(conn->transaction_isolation(), IsolationLevel::kReadCommitted);
  conn->SetTransactionIsolation(IsolationLevel::kSerializable);
  EXPECT_EQ(conn->transaction_isolation(), IsolationLevel::kSerializable);
}

TEST_F(DbcTest, TwoConnectionsShareState) {
  auto a = Connect();
  auto b = Connect();
  a->Execute("CREATE UNLOGGED TABLE t (id BIGINT PRIMARY KEY)");
  a->Execute("INSERT INTO t VALUES (1)");
  EXPECT_EQ(b->ExecuteQuery("SELECT COUNT(*) FROM t").rows[0][0].as_int(), 1);
}

TEST_F(DbcTest, MultipleHostsModelRemoteServers) {
  Server other;
  other.CreateDatabase("remote_db", EngineProfile::MariaDb());
  DriverManager::RegisterHost("db2.example.com", &other);
  auto conn = DriverManager::GetConnection(
      "minidb://db2.example.com/remote_db?latency_us=0");
  EXPECT_EQ(conn->profile().name, "mariadb");
  conn->Execute("CREATE TABLE t (id BIGINT PRIMARY KEY) ENGINE = MyISAM");
  DriverManager::RegisterHost("db2.example.com", nullptr);
  EXPECT_THROW(
      DriverManager::GetConnection("minidb://db2.example.com/remote_db"),
      ConnectionError);
}

TEST_F(DbcTest, RowCostModelsServerWork) {
  auto conn = Connect();
  conn->Execute("CREATE UNLOGGED TABLE big (id BIGINT PRIMARY KEY)");
  for (int i = 0; i < 200; ++i) {
    conn->AddBatch("INSERT INTO big VALUES (" + std::to_string(i) + ")");
  }
  conn->ExecuteBatch();

  auto costed = DriverManager::GetConnection(
      "minidb://" + host_ + "/db?latency_us=0&row_cost_ns=20000");
  const auto start = std::chrono::steady_clock::now();
  const auto result = costed->ExecuteQuery("SELECT COUNT(*) FROM big");
  const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  EXPECT_EQ(result.rows[0][0].as_int(), 200);
  EXPECT_EQ(result.rows_examined, 200u);
  // 200 rows x 20us = 4ms of modeled server work.
  EXPECT_GE(elapsed, 4000);
}

TEST_F(DbcTest, RowCostRejectsNegative) {
  EXPECT_THROW(
      ConnectionConfig::Parse("minidb://h/db?row_cost_ns=-5"),
      ConnectionError);
}

TEST_F(DbcTest, LatencyIsPaidPerRoundTrip) {
  auto slow = DriverManager::GetConnection("minidb://" + host_ +
                                           "/db?latency_us=2000");
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 5; ++i) slow->Execute("SELECT 1");
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
                .count(),
            5 * 2000);
}

}  // namespace
}  // namespace sqloop::dbc
