// PreparedStatement behavior at the client boundary: bind/execute/rebind,
// batches, stats and round-trip accounting, transparency across DDL and
// Close/Reopen, and correctness with the plan cache ablated.
#include "dbc/prepared_statement.h"

#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <string>

#include "common/error.h"
#include "dbc/driver.h"
#include "minidb/server.h"

namespace sqloop::dbc {
namespace {

using minidb::EngineProfile;
using minidb::Server;

/// Each test gets a private server registered under a unique host name.
class PreparedStatementTest : public ::testing::Test {
 protected:
  void SetUp() override {
    host_ = "prep_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name());
    for (auto& c : host_) c = std::tolower(static_cast<unsigned char>(c));
    DriverManager::RegisterHost(host_, &server_);
    server_.CreateDatabase("db", EngineProfile::Postgres());
  }
  void TearDown() override { DriverManager::RegisterHost(host_, nullptr); }

  std::unique_ptr<Connection> Connect(const std::string& params = {}) {
    return DriverManager::GetConnection("minidb://" + host_ +
                                        "/db?latency_us=0" + params);
  }

  /// A connection with the people table loaded — the shared test dataset.
  std::unique_ptr<Connection> ConnectWithTable() {
    auto conn = Connect();
    conn->Execute(
        "CREATE TABLE people (id BIGINT, name TEXT, score DOUBLE PRECISION)");
    conn->Execute(
        "INSERT INTO people VALUES (1, 'ada', 9.5), (2, 'grace', 8.0), "
        "(3, 'edsger', 7.25)");
    return conn;
  }

  Server server_;
  std::string host_;
};

TEST_F(PreparedStatementTest, BindsAllTypesAndReexecutesWithNewValues) {
  auto conn = ConnectWithTable();
  auto stmt = conn->Prepare("SELECT name FROM people WHERE id = ?");
  EXPECT_EQ(stmt.parameter_count(), 1);

  stmt.SetInt64(1, 1);
  auto result = stmt.ExecuteQuery();
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0].ToString(), "ada");

  // Rebinding the same handle re-executes without a new prepare.
  stmt.SetInt64(1, 3);
  result = stmt.ExecuteQuery();
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0].ToString(), "edsger");
}

TEST_F(PreparedStatementTest, BindsDoubleTextAndNull) {
  auto conn = ConnectWithTable();
  auto by_score = conn->Prepare("SELECT name FROM people WHERE score > ?");
  by_score.SetDouble(1, 8.5);
  auto result = by_score.ExecuteQuery();
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0].ToString(), "ada");

  auto by_name = conn->Prepare("SELECT id FROM people WHERE name = ?");
  by_name.SetText(1, "grace");
  result = by_name.ExecuteQuery();
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0].as_int(), 2);

  // NULL never equals anything — zero rows, not an error.
  by_name.SetNull(1);
  EXPECT_EQ(by_name.ExecuteQuery().rows.size(), 0u);
}

TEST_F(PreparedStatementTest, TextBindIsAstLevelNotSplicedIntoSql) {
  auto conn = ConnectWithTable();
  auto stmt = conn->Prepare("SELECT COUNT(*) FROM people WHERE name = ?");
  // A value full of SQL metacharacters binds as data: the parameter is a
  // literal node in the AST, so there is nothing to inject into.
  stmt.SetText(1, "x' OR '1'='1");
  EXPECT_EQ(stmt.ExecuteQuery().rows[0][0].as_int(), 0);
  stmt.SetText(1, "it's");
  conn->ExecuteUpdate("INSERT INTO people VALUES (4, 'it''s', 1.0)");
  EXPECT_EQ(stmt.ExecuteQuery().rows[0][0].as_int(), 1);
}

TEST_F(PreparedStatementTest, UnboundAndOutOfRangeParametersThrow) {
  auto conn = ConnectWithTable();
  auto stmt = conn->Prepare("SELECT * FROM people WHERE id = ? AND score > ?");
  EXPECT_EQ(stmt.parameter_count(), 2);
  stmt.SetInt64(1, 1);
  EXPECT_THROW(stmt.Execute(), UsageError);  // ?2 unbound
  EXPECT_THROW(stmt.SetInt64(0, 5), UsageError);
  EXPECT_THROW(stmt.SetInt64(3, 5), UsageError);
  stmt.SetDouble(2, 0.0);
  EXPECT_EQ(stmt.ExecuteQuery().rows.size(), 1u);
  // ClearParameters returns the handle to the fully-unbound state.
  stmt.ClearParameters();
  EXPECT_THROW(stmt.Execute(), UsageError);
}

TEST_F(PreparedStatementTest, ExecuteUpdateReportsAffectedRows) {
  auto conn = ConnectWithTable();
  auto stmt = conn->Prepare("UPDATE people SET score = ? WHERE id >= ?");
  stmt.SetDouble(1, 1.0);
  stmt.SetInt64(2, 2);
  EXPECT_EQ(stmt.ExecuteUpdate(), 2u);
  EXPECT_DOUBLE_EQ(
      conn->ExecuteQuery("SELECT SUM(score) FROM people").rows[0][0]
          .as_double(),
      9.5 + 1.0 + 1.0);
}

TEST_F(PreparedStatementTest, BatchExecutesEveryQueuedBindSet) {
  auto conn = ConnectWithTable();
  auto stmt = conn->Prepare("INSERT INTO people VALUES (?, ?, ?)");
  for (int i = 10; i < 13; ++i) {
    stmt.SetInt64(1, i);
    stmt.SetText(2, "p" + std::to_string(i));
    stmt.SetDouble(3, 0.5 * i);
    stmt.AddBatch();
  }
  EXPECT_EQ(stmt.batch_size(), 3u);
  const uint64_t trips0 = conn->stats().round_trips;
  const auto affected = stmt.ExecuteBatch();
  // The whole batch shipped in one round trip.
  EXPECT_EQ(conn->stats().round_trips, trips0 + 1);
  ASSERT_EQ(affected.size(), 3u);
  for (const size_t rows : affected) EXPECT_EQ(rows, 1u);
  EXPECT_EQ(stmt.batch_size(), 0u);
  EXPECT_EQ(
      conn->ExecuteQuery("SELECT COUNT(*) FROM people").rows[0][0].as_int(),
      6);
}

TEST_F(PreparedStatementTest, StatsCountHandlesAndPreparedExecutions) {
  auto conn = ConnectWithTable();
  const uint64_t handles0 = conn->stats().prepared_statements;
  auto stmt = conn->Prepare("SELECT COUNT(*) FROM people WHERE id > ?");
  EXPECT_EQ(conn->stats().prepared_statements, handles0 + 1);

  const uint64_t execs0 = conn->stats().prepared_executions;
  const uint64_t trips0 = conn->stats().round_trips;
  stmt.SetInt64(1, 0);
  stmt.ExecuteQuery();
  stmt.ExecuteQuery();
  EXPECT_EQ(conn->stats().prepared_executions, execs0 + 2);
  // Each execute ships binds only: exactly one round trip apiece.
  EXPECT_EQ(conn->stats().round_trips, trips0 + 2);
  // Prepared executions also count as statements.
  EXPECT_GE(conn->stats().statements, conn->stats().prepared_executions);
}

TEST_F(PreparedStatementTest, DdlBetweenExecutesIsTransparent) {
  auto conn = ConnectWithTable();
  auto stmt = conn->Prepare("SELECT COUNT(*) FROM people WHERE score > ?");
  stmt.SetDouble(1, 7.0);
  EXPECT_EQ(stmt.ExecuteQuery().rows[0][0].as_int(), 3);

  auto& cache = conn->database().plan_cache();
  const uint64_t misses0 = cache.misses();
  const uint64_t rebinds0 = cache.rebinds();
  // DDL from the same connection invalidates the bound plan. The handle
  // refreshes itself: the cached parse is reused (a rebind, not a miss).
  conn->Execute("CREATE INDEX people_id ON people (id)");
  EXPECT_EQ(stmt.ExecuteQuery().rows[0][0].as_int(), 3);
  EXPECT_GT(cache.rebinds(), rebinds0);
  // Only the ad-hoc DDL text itself could have missed; the prepared
  // statement did not re-enter the compile path.
  EXPECT_LE(cache.misses(), misses0 + 1);

  conn->Execute("DROP INDEX people_id ON people");
  EXPECT_EQ(stmt.ExecuteQuery().rows[0][0].as_int(), 3);
}

TEST_F(PreparedStatementTest, SurvivesConnectionReopen) {
  auto conn = ConnectWithTable();
  auto stmt = conn->Prepare("SELECT name FROM people WHERE id = ?");
  stmt.SetInt64(1, 2);
  EXPECT_EQ(stmt.ExecuteQuery().rows[0][0].ToString(), "grace");

  // The compiled plan lives with the database, not the socket: after a
  // resilience-style Close/Reopen the same handle executes unchanged.
  conn->Close();
  EXPECT_THROW(stmt.Execute(), ConnectionError);
  conn->Reopen();
  stmt.SetInt64(1, 1);
  EXPECT_EQ(stmt.ExecuteQuery().rows[0][0].ToString(), "ada");
}

TEST_F(PreparedStatementTest, WorksWithPlanCacheDisabled) {
  auto conn = ConnectWithTable();
  auto& cache = conn->database().plan_cache();
  cache.set_enabled(false);
  // Ablated world: Prepare still hands out a working handle — it compiles
  // client-side and re-parses per execute, modeling the pre-cache cost.
  auto stmt = conn->Prepare("SELECT name FROM people WHERE id = ?");
  stmt.SetInt64(1, 3);
  EXPECT_EQ(stmt.ExecuteQuery().rows[0][0].ToString(), "edsger");
  stmt.SetInt64(1, 1);
  EXPECT_EQ(stmt.ExecuteQuery().rows[0][0].ToString(), "ada");

  // Re-enabling mid-life promotes the handle back onto the cached path.
  cache.set_enabled(true);
  stmt.SetInt64(1, 2);
  EXPECT_EQ(stmt.ExecuteQuery().rows[0][0].ToString(), "grace");
}

TEST_F(PreparedStatementTest, ModeledCompileCostIsPaidOnceNotPerExecute) {
  // With compile_us set, the PREPARE pays one modeled compile; cached
  // executions must not. The counter (not wall time) is the assertion.
  auto conn = Connect("&compile_us=1");
  conn->Execute("CREATE TABLE t (id BIGINT)");
  conn->Execute("INSERT INTO t VALUES (1), (2)");
  auto stmt = conn->Prepare("SELECT COUNT(*) FROM t WHERE id >= ?");
  stmt.SetInt64(1, 0);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(stmt.ExecuteQuery().rows[0][0].as_int(), 2);
  }
  // Raw text on the same connection hits the plan cache once promoted, so
  // repeated ad-hoc execution also stops compiling. This is observable
  // through the plan-cache counters rather than the compile sleep.
  auto& cache = conn->database().plan_cache();
  const uint64_t hits0 = cache.hits();
  conn->ExecuteQuery("SELECT COUNT(*) FROM t WHERE id >= 0");
  conn->ExecuteQuery("SELECT COUNT(*) FROM t WHERE id >= 0");
  conn->ExecuteQuery("SELECT COUNT(*) FROM t WHERE id >= 0");
  EXPECT_GT(cache.hits(), hits0);
}

}  // namespace
}  // namespace sqloop::dbc
