#include "graph/reference.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace sqloop::graph {
namespace {

Graph Diamond() {
  // 1 -> {2,3} -> 4 -> 5, with weights 1/outdegree.
  Graph g;
  g.AddEdge(1, 2);
  g.AddEdge(1, 3);
  g.AddEdge(2, 4);
  g.AddEdge(3, 4);
  g.AddEdge(4, 5);
  g.AssignOutDegreeWeights();
  return g;
}

TEST(Dijkstra, DiamondDistances) {
  const auto dist = Dijkstra(Diamond(), 1);
  EXPECT_DOUBLE_EQ(dist.at(1), 0.0);
  EXPECT_DOUBLE_EQ(dist.at(2), 0.5);
  EXPECT_DOUBLE_EQ(dist.at(3), 0.5);
  EXPECT_DOUBLE_EQ(dist.at(4), 1.5);  // 0.5 + 1.0
  EXPECT_DOUBLE_EQ(dist.at(5), 2.5);
}

TEST(Dijkstra, UnreachableNodesAbsent) {
  Graph g;
  g.AddEdge(1, 2);
  g.AddEdge(3, 4);
  g.AssignOutDegreeWeights();
  const auto dist = Dijkstra(g, 1);
  EXPECT_TRUE(dist.contains(2));
  EXPECT_FALSE(dist.contains(3));
  EXPECT_FALSE(dist.contains(4));
}

TEST(BfsHops, CountsClicks) {
  const auto hops = BfsHops(Diamond(), 1);
  EXPECT_EQ(hops.at(1), 0);
  EXPECT_EQ(hops.at(2), 1);
  EXPECT_EQ(hops.at(4), 2);
  EXPECT_EQ(hops.at(5), 3);
}

TEST(BfsHops, HostGraphBackboneHopEqualsNodeId) {
  const Graph g = MakeHostGraph(8, 6, 100, 5);
  const auto hops = BfsHops(g, 0);
  EXPECT_EQ(hops.at(50), 50);
  EXPECT_EQ(hops.at(100), 100);
}

TEST(PageRank, SumOfRankGrowsMonotonically) {
  const Graph g = MakeWebGraph(300, 4, 9);
  double previous = 0;
  for (const int iters : {1, 5, 10, 20}) {
    const auto result = PageRankReference(g, iters);
    EXPECT_GT(result.sum_of_rank, previous);
    previous = result.sum_of_rank;
  }
}

TEST(PageRank, ConvergesTowardClosedFormTotal) {
  // With delta seeded at 0.15 and damping 0.85 on a graph with no dangling
  // nodes, total injected mass approaches n * 0.15 / (1 - 0.85) = n.
  Graph g;  // 3-cycle: no dangling nodes, each weight 1.
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 1);
  g.AssignOutDegreeWeights();
  const auto result = PageRankReference(g, 200);
  EXPECT_NEAR(result.sum_of_rank, 3.0, 1e-6);
  EXPECT_NEAR(result.rank.at(1), 1.0, 1e-6);  // symmetry
}

TEST(PageRank, ZeroIterationsGivesZeroRank) {
  const auto result = PageRankReference(Diamond(), 0);
  EXPECT_DOUBLE_EQ(result.sum_of_rank, 0.0);
}

TEST(ConnectedComponents, LabelsBySmallestId) {
  Graph g;
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(10, 11);
  g.AssignOutDegreeWeights();
  const auto cc = ConnectedComponents(g);
  EXPECT_EQ(cc.at(1), 1);
  EXPECT_EQ(cc.at(3), 1);
  EXPECT_EQ(cc.at(10), 10);
  EXPECT_EQ(cc.at(11), 10);
}

TEST(ConnectedComponents, DirectionIgnored) {
  Graph g;
  g.AddEdge(5, 1);  // edge direction must not split the component
  g.AddEdge(5, 6);
  g.AssignOutDegreeWeights();
  const auto cc = ConnectedComponents(g);
  EXPECT_EQ(cc.at(6), 1);
}

}  // namespace
}  // namespace sqloop::graph
