#include "graph/graph.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "common/error.h"

#include "graph/generators.h"

namespace sqloop::graph {
namespace {

TEST(Graph, WeightsAreInverseOutDegree) {
  Graph g;
  g.AddEdge(1, 2);
  g.AddEdge(1, 3);
  g.AddEdge(2, 3);
  g.AssignOutDegreeWeights();
  EXPECT_DOUBLE_EQ(g.edges()[0].weight, 0.5);
  EXPECT_DOUBLE_EQ(g.edges()[1].weight, 0.5);
  EXPECT_DOUBLE_EQ(g.edges()[2].weight, 1.0);
}

TEST(Graph, NodesAndAdjacency) {
  Graph g;
  g.AddEdge(5, 2);
  g.AddEdge(2, 9);
  g.AssignOutDegreeWeights();
  EXPECT_EQ(g.Nodes(), (std::vector<int64_t>{2, 5, 9}));
  EXPECT_EQ(g.NodeCount(), 3u);
  const auto out = g.OutAdjacency();
  ASSERT_EQ(out.at(5).size(), 1u);
  EXPECT_EQ(out.at(5)[0].first, 2);
  const auto in = g.InAdjacency();
  ASSERT_EQ(in.at(9).size(), 1u);
  EXPECT_EQ(in.at(9)[0].first, 2);
}

TEST(Graph, CsvRoundTrip) {
  Graph g;
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AssignOutDegreeWeights();
  const std::string path = ::testing::TempDir() + "/edges_roundtrip.csv";
  g.SaveCsv(path);
  const Graph loaded = Graph::LoadCsv(path);
  ASSERT_EQ(loaded.edge_count(), 2u);
  EXPECT_EQ(loaded.edges()[0].src, 1);
  EXPECT_EQ(loaded.edges()[1].dst, 3);
  EXPECT_DOUBLE_EQ(loaded.edges()[0].weight, 1.0);
  std::remove(path.c_str());
}

TEST(Generators, WebGraphIsDeterministic) {
  const Graph a = MakeWebGraph(500, 4, 42);
  const Graph b = MakeWebGraph(500, 4, 42);
  ASSERT_EQ(a.edge_count(), b.edge_count());
  for (size_t i = 0; i < a.edge_count(); ++i) {
    EXPECT_EQ(a.edges()[i].src, b.edges()[i].src);
    EXPECT_EQ(a.edges()[i].dst, b.edges()[i].dst);
  }
  const Graph c = MakeWebGraph(500, 4, 43);
  EXPECT_NE(a.edge_count(), 0u);
  bool differs = a.edge_count() != c.edge_count();
  for (size_t i = 0; !differs && i < a.edge_count(); ++i) {
    differs = a.edges()[i].dst != c.edges()[i].dst;
  }
  EXPECT_TRUE(differs);
}

TEST(Generators, WebGraphHasPowerLawishInDegrees) {
  const Graph g = MakeWebGraph(2000, 5, 7);
  std::unordered_map<int64_t, int> in_degree;
  for (const Edge& e : g.edges()) ++in_degree[e.dst];
  int max_in = 0;
  double total = 0;
  for (const auto& [node, d] : in_degree) {
    max_in = std::max(max_in, d);
    total += d;
  }
  const double mean = total / static_cast<double>(in_degree.size());
  // Preferential attachment: the hub in-degree dwarfs the mean.
  EXPECT_GT(max_in, 10 * mean);
}

TEST(Generators, WebGraphNoSelfLoopsOrDuplicates) {
  const Graph g = MakeWebGraph(300, 3, 1);
  std::set<std::pair<int64_t, int64_t>> seen;
  for (const Edge& e : g.edges()) {
    EXPECT_NE(e.src, e.dst);
    EXPECT_TRUE(seen.emplace(e.src, e.dst).second);
  }
}

TEST(Generators, EgoNetConnectsConsecutiveCircles) {
  const Graph g = MakeEgoNetGraph(10, 20, 0.2, 3);
  bool cross_found = false;
  for (const Edge& e : g.edges()) {
    const int64_t c_src = (e.src - 1) / 20;
    const int64_t c_dst = (e.dst - 1) / 20;
    EXPECT_LE(std::abs(c_src - c_dst), 1);  // only neighbor circles
    if (c_src != c_dst) cross_found = true;
  }
  EXPECT_TRUE(cross_found);
}

TEST(Generators, DirectedEgoNetHasNoReverseTwins) {
  const Graph g = MakeEgoNetGraph(6, 8, 0.2, 4, /*bidirectional=*/false);
  std::set<std::pair<int64_t, int64_t>> seen;
  for (const Edge& e : g.edges()) seen.emplace(e.src, e.dst);
  size_t twins = 0;
  for (const Edge& e : g.edges()) {
    if (seen.contains({e.dst, e.src})) ++twins;
  }
  // Random chords may collide occasionally; structural edges must not.
  EXPECT_LT(twins, g.edge_count() / 4);
}

TEST(Generators, HostGraphBackboneDistancesAreExact) {
  const Graph g = MakeHostGraph(10, 8, 50, 11);
  // No generated edge may point *into* the backbone except along it.
  for (const Edge& e : g.edges()) {
    if (e.dst <= 50) {
      EXPECT_EQ(e.src, e.dst - 1)
          << "backbone node " << e.dst << " has a shortcut from " << e.src;
    }
  }
}

TEST(Generators, InvalidParametersThrow) {
  EXPECT_THROW(MakeWebGraph(1, 3, 0), sqloop::UsageError);
  EXPECT_THROW(MakeEgoNetGraph(0, 5, 0.5, 0), sqloop::UsageError);
  EXPECT_THROW(MakeEgoNetGraph(2, 5, 1.5, 0), sqloop::UsageError);
  EXPECT_THROW(MakeHostGraph(0, 5, 10, 0), sqloop::UsageError);
}

}  // namespace
}  // namespace sqloop::graph
