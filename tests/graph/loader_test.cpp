#include "graph/loader.h"

#include <gtest/gtest.h>

#include "dbc/driver.h"
#include "graph/generators.h"
#include "minidb/server.h"

namespace sqloop::graph {
namespace {

class LoaderTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    host_ = std::string("loader_host_") + GetParam();
    dbc::DriverManager::RegisterHost(host_, &server_);
    server_.CreateDatabase("g", minidb::EngineProfile::ByName(GetParam()));
    conn_ = dbc::DriverManager::GetConnection("minidb://" + host_ +
                                              "/g?latency_us=0");
  }
  void TearDown() override {
    conn_.reset();
    dbc::DriverManager::RegisterHost(host_, nullptr);
  }

  minidb::Server server_;
  std::string host_;
  std::unique_ptr<dbc::Connection> conn_;
};

TEST_P(LoaderTest, LoadsAllEdgesWithWeights) {
  const Graph g = MakeWebGraph(200, 3, 17);
  LoadEdges(*conn_, g);
  const auto count = conn_->ExecuteQuery("SELECT COUNT(*) FROM edges");
  EXPECT_EQ(static_cast<size_t>(count.rows[0][0].as_int()), g.edge_count());

  // Weight invariant: per-source weights sum to ~1.
  const auto sums = conn_->ExecuteQuery(
      "SELECT src, SUM(weight) FROM edges GROUP BY src");
  for (const auto& row : sums.rows) {
    EXPECT_NEAR(row[1].as_double(), 1.0, 1e-9) << "src " << row[0].as_int();
  }

  // Indexes exist for the join columns.
  const auto table = conn_->database().FindTable("edges");
  ASSERT_NE(table, nullptr);
  EXPECT_TRUE(table->HasIndexOn("src"));
  EXPECT_TRUE(table->HasIndexOn("dst"));
}

TEST_P(LoaderTest, ReloadReplacesExistingTable) {
  LoadEdges(*conn_, MakeWebGraph(100, 2, 1));
  const auto first =
      conn_->ExecuteQuery("SELECT COUNT(*) FROM edges").rows[0][0].as_int();
  LoadEdges(*conn_, MakeWebGraph(50, 2, 2));
  const auto second =
      conn_->ExecuteQuery("SELECT COUNT(*) FROM edges").rows[0][0].as_int();
  EXPECT_LT(second, first);
}

INSTANTIATE_TEST_SUITE_P(AllEngines, LoaderTest,
                         ::testing::Values("postgres", "mysql", "mariadb"));

}  // namespace
}  // namespace sqloop::graph
