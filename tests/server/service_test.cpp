// Multi-tenant isolation suite for the job server (`ctest -L service`).
//
// The properties pinned here are the service layer's contract: concurrent
// tenants on one shared worker pool and one shared backend compute
// bit-identical results to solo runs; a tenant with a faulty backend
// cannot disturb its neighbours; admission control rejects overload
// without building backlog; cancellation and graceful drain leave the
// server healthy; a killed job resumed later keeps its identity.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "core/workloads.h"
#include "graph/generators.h"
#include "server/job_server.h"
#include "tests/core/core_test_util.h"

namespace sqloop::server {
namespace {

namespace fs = std::filesystem;
using core::testing::CoreFixtureBase;

std::vector<std::string> Canonical(const dbc::ResultSet& result) {
  std::vector<std::string> rows;
  rows.reserve(result.rows.size());
  for (const auto& row : result.rows) {
    std::string text;
    for (const auto& value : row) {
      text += value.ToString();
      text += '|';
    }
    rows.push_back(std::move(text));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

core::SqloopOptions SyncOptions(int partitions = 8, int threads = 2) {
  core::SqloopOptions options;
  options.mode = core::ExecutionMode::kSync;
  options.partitions = partitions;
  options.threads = threads;
  return options;
}

core::SqloopOptions SingleThreadOptions() {
  core::SqloopOptions options;
  options.mode = core::ExecutionMode::kSingleThread;
  return options;
}

JobServerConfig ServiceConfig(const CoreFixtureBase& fixture) {
  JobServerConfig config;
  config.url = fixture.Url();
  config.worker_threads = 4;
  config.max_running_jobs = 4;
  return config;
}

/// A self-cleaning checkpoint directory (tests may run concurrently).
class ScopedCheckpointDir {
 public:
  ScopedCheckpointDir() {
    static std::atomic<uint64_t> counter{0};
    dir_ = (fs::temp_directory_path() /
            ("sqloop_service_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter.fetch_add(1))))
               .string();
    fs::create_directories(dir_);
  }
  ~ScopedCheckpointDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  const std::string& path() const { return dir_; }

 private:
  std::string dir_;
};

void WaitForState(const JobHandle& job, JobState state) {
  for (int i = 0; i < 20000; ++i) {
    if (job.Status() == state || job.Done()) return;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

TEST(ServiceTest, ConcurrentTenantsComputeBitIdenticalToSolo) {
  const graph::Graph g = graph::MakeWebGraph(80, 3, 7);
  CoreFixtureBase fixture("postgres");
  fixture.LoadGraph(g);
  const std::string query = core::workloads::PageRankQuery(6);

  // Solo reference: the classic one-loop-per-query execution.
  std::vector<std::string> solo;
  {
    core::SqLoop loop(fixture.Url(), SyncOptions());
    solo = Canonical(loop.Execute(query));
  }

  // Four tenants, two jobs each, all in flight at once on one shared
  // worker pool against the same database.
  JobServer server(ServiceConfig(fixture));
  std::vector<JobHandle> jobs;
  for (int t = 0; t < 4; ++t) {
    Session session = server.OpenSession("tenant" + std::to_string(t));
    for (int j = 0; j < 2; ++j) {
      jobs.push_back(session.Submit(query, SyncOptions()));
    }
  }
  for (const auto& job : jobs) {
    EXPECT_EQ(Canonical(job.Wait()), solo);
    EXPECT_EQ(job.Status(), JobState::kCompleted);
    EXPECT_EQ(job.Stats().iterations, 6);
  }
  for (const auto& tenant : server.Tenants()) {
    EXPECT_EQ(tenant.jobs_completed, 2u) << tenant.tenant;
    EXPECT_EQ(tenant.jobs_failed, 0u) << tenant.tenant;
  }
}

TEST(ServiceTest, FaultyTenantDoesNotDisturbItsNeighbours) {
  const graph::Graph g = graph::MakeWebGraph(60, 3, 3);
  CoreFixtureBase fixture("postgres");
  fixture.LoadGraph(g);
  // The clean tenant runs PageRank; the faulty one runs SSSP, whose MIN
  // gather is order-independent — exactly bit-identical under faults at
  // any thread count (PageRank's SUM needs threads=1 for that, see the
  // resilience suite). Distinct targets also mean the two tenants' jobs
  // genuinely run concurrently.
  const std::string clean_query = core::workloads::PageRankQuery(5);
  const std::string faulty_query = core::workloads::SsspAllQuery(1);

  std::vector<std::string> solo_clean;
  std::vector<std::string> solo_faulty;
  {
    core::SqLoop loop(fixture.Url(), SyncOptions());
    solo_clean = Canonical(loop.Execute(clean_query));
    solo_faulty = Canonical(loop.Execute(faulty_query));
  }

  JobServer server(ServiceConfig(fixture));
  Session clean = server.OpenSession("clean");

  // The faulty tenant's backend drops and fails statements; its retry
  // budget is generous so the jobs still finish.
  SessionOptions faulty_options;
  faulty_options.url_params =
      "fault_drop_rate=0.1&fault_transient_rate=0.1";
  core::SqloopOptions resilient = SyncOptions();
  resilient.retry.max_attempts = 10;
  resilient.retry.backoff_base_ms = 0;
  faulty_options.defaults = resilient;
  Session faulty = server.OpenSession("faulty", faulty_options);

  std::vector<JobHandle> clean_jobs;
  std::vector<JobHandle> faulty_jobs;
  for (int i = 0; i < 3; ++i) {
    clean_jobs.push_back(clean.Submit(clean_query, SyncOptions()));
    faulty_jobs.push_back(faulty.Submit(faulty_query));
  }

  // Isolation: every clean job is bit-identical to the solo run with
  // all-zero resilience counters — the neighbour's faults never leak.
  for (const auto& job : clean_jobs) {
    EXPECT_EQ(Canonical(job.Wait()), solo_clean);
    EXPECT_EQ(job.Stats().retries, 0u);
    EXPECT_EQ(job.Stats().reopened_connections, 0u);
  }
  // The faulty tenant still converges to the same answer, via retries.
  uint64_t faulty_retries = 0;
  for (const auto& job : faulty_jobs) {
    EXPECT_EQ(Canonical(job.Wait()), solo_faulty);
    faulty_retries += job.Stats().retries;
  }
  EXPECT_GT(faulty_retries, 0u);
}

TEST(ServiceTest, RoundsAreGrantedProportionallyToTenantWeight) {
  const graph::Graph g = graph::MakeWebGraph(30, 2, 5);
  CoreFixtureBase fixture("postgres");
  fixture.LoadGraph(g);

  JobServerConfig config = ServiceConfig(fixture);
  config.max_running_jobs = 2;
  config.max_active_rounds = 1;  // strict weighted interleaving
  JobServer server(config);

  SessionOptions light_options;
  light_options.weight = 1.0;
  SessionOptions heavy_options;
  heavy_options.weight = 3.0;
  Session light = server.OpenSession("light", light_options);
  Session heavy = server.OpenSession("heavy", heavy_options);

  // Long single-thread jobs on DISTINCT relations (the server serializes
  // same-target jobs): hundreds of cheap rounds through the round gate.
  JobHandle light_job =
      light.Submit(core::workloads::PageRankQuery(400), SingleThreadOptions());
  JobHandle heavy_job = heavy.Submit(
      core::workloads::DescendantQueryBounded(0, 400), SingleThreadOptions());

  // One job can bank rounds while the other is still in setup (its first
  // BeginRound is minted only after partitioning), so proportionality is
  // judged on the increments after BOTH tenants hold at least one grant.
  uint64_t l0 = 0;
  uint64_t h0 = 0;
  for (int i = 0; i < 20000; ++i) {
    l0 = server.rounds_granted("light");
    h0 = server.rounds_granted("heavy");
    if ((l0 >= 1 && h0 >= 1) || light_job.Done() || heavy_job.Done()) break;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  // Sample mid-contention, then cancel both.
  uint64_t l = 0;
  uint64_t h = 0;
  for (int i = 0; i < 20000; ++i) {
    l = server.rounds_granted("light") - l0;
    h = server.rounds_granted("heavy") - h0;
    if ((l + h >= 60 && l >= 5) || light_job.Done() || heavy_job.Done()) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  light_job.Cancel();
  heavy_job.Cancel();
  light_job.WaitDone();
  heavy_job.WaitDone();
  // Neither job may have died on its own — a failure would end sampling
  // early and masquerade as a fairness violation.
  EXPECT_NE(light_job.Status(), JobState::kFailed)
      << light_job.error_message();
  EXPECT_NE(heavy_job.Status(), JobState::kFailed)
      << heavy_job.error_message();

  ASSERT_GE(l, 5u) << "light tenant starved (heavy=" << h << ")";
  const double ratio = static_cast<double>(h) / static_cast<double>(l);
  EXPECT_GE(ratio, 1.8) << "heavy=" << h << " light=" << l;
  EXPECT_LE(ratio, 4.6) << "heavy=" << h << " light=" << l;
}

TEST(ServiceTest, AdmissionRejectsWhenQueueIsFull) {
  const graph::Graph g = graph::MakeWebGraph(30, 2, 5);
  CoreFixtureBase fixture("postgres");
  fixture.LoadGraph(g);

  JobServerConfig config = ServiceConfig(fixture);
  config.max_running_jobs = 1;
  config.queue_capacity = 2;
  config.retry_after_ms = 75;
  JobServer server(config);
  Session session = server.OpenSession("tenant");

  // One long job occupies the only dispatcher ...
  JobHandle running =
      session.Submit(core::workloads::PageRankQuery(100000),
                     SingleThreadOptions());
  WaitForState(running, JobState::kRunning);
  // ... two more fill the queue ...
  JobHandle q1 = session.Submit(core::workloads::PageRankQuery(2),
                                SingleThreadOptions());
  JobHandle q2 = session.Submit(core::workloads::PageRankQuery(3),
                                SingleThreadOptions());
  // ... and the next submission is rejected with the retry-after hint.
  try {
    session.Submit(core::workloads::PageRankQuery(4), SingleThreadOptions());
    FAIL() << "expected AdmissionError";
  } catch (const AdmissionError& e) {
    EXPECT_EQ(e.retry_after_ms(), 75);
  }
  EXPECT_EQ(server.queued_jobs(), 2u);

  running.Cancel();
  running.WaitDone();
  q1.WaitDone();
  q2.WaitDone();
  EXPECT_EQ(q1.Status(), JobState::kCompleted);
  EXPECT_EQ(q2.Status(), JobState::kCompleted);
}

TEST(ServiceTest, InflightCapIsPerTenant) {
  const graph::Graph g = graph::MakeWebGraph(30, 2, 5);
  CoreFixtureBase fixture("postgres");
  fixture.LoadGraph(g);

  JobServerConfig config = ServiceConfig(fixture);
  config.max_running_jobs = 1;
  config.max_inflight_per_tenant = 1;
  JobServer server(config);
  Session a = server.OpenSession("a");
  Session b = server.OpenSession("b");

  JobHandle running = a.Submit(core::workloads::PageRankQuery(100000),
                               SingleThreadOptions());
  WaitForState(running, JobState::kRunning);
  // Tenant a is at its cap (1 running); tenant b has its own budget.
  EXPECT_THROW(
      a.Submit(core::workloads::PageRankQuery(2), SingleThreadOptions()),
      AdmissionError);
  JobHandle other = b.Submit(core::workloads::PageRankQuery(2),
                             SingleThreadOptions());

  running.Cancel();
  running.WaitDone();
  other.WaitDone();
  EXPECT_EQ(other.Status(), JobState::kCompleted);
  // Terminal jobs release their slots (the dispatcher releases just
  // after it publishes the terminal state, so poll briefly).
  for (int i = 0;
       i < 20000 && (server.inflight("a") > 0 || server.inflight("b") > 0);
       ++i) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  EXPECT_EQ(server.inflight("a"), 0u);
  EXPECT_EQ(server.inflight("b"), 0u);
}

TEST(ServiceTest, CancelMidRoundStopsAtTheBorderAndServerSurvives) {
  const graph::Graph g = graph::MakeWebGraph(30, 2, 5);
  CoreFixtureBase fixture("postgres");
  fixture.LoadGraph(g);

  JobServer server(ServiceConfig(fixture));
  Session session = server.OpenSession("tenant");
  JobHandle job = session.Submit(core::workloads::PageRankQuery(100000),
                                 SingleThreadOptions());
  // Let it genuinely run a few rounds before cancelling.
  for (int i = 0; i < 20000 && job.rounds() < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  job.Cancel();
  EXPECT_THROW(job.Wait(), JobCancelledError);
  EXPECT_EQ(job.Status(), JobState::kCancelled);

  // The server keeps serving afterwards.
  JobHandle next = session.Submit(core::workloads::PageRankQuery(2),
                                  SingleThreadOptions());
  EXPECT_EQ(next.Wait().rows.empty(), false);
  EXPECT_EQ(next.Status(), JobState::kCompleted);
}

TEST(ServiceTest, CancelWhileQueuedCompletesWithoutRunning) {
  const graph::Graph g = graph::MakeWebGraph(30, 2, 5);
  CoreFixtureBase fixture("postgres");
  fixture.LoadGraph(g);

  JobServerConfig config = ServiceConfig(fixture);
  config.max_running_jobs = 1;
  JobServer server(config);
  Session session = server.OpenSession("tenant");

  JobHandle running = session.Submit(core::workloads::PageRankQuery(100000),
                                     SingleThreadOptions());
  WaitForState(running, JobState::kRunning);
  JobHandle queued = session.Submit(core::workloads::PageRankQuery(2),
                                    SingleThreadOptions());
  EXPECT_EQ(queued.Status(), JobState::kQueued);
  queued.Cancel();
  EXPECT_THROW(queued.Wait(), JobCancelledError);
  EXPECT_NE(queued.error_message().find("while queued"), std::string::npos);
  EXPECT_EQ(queued.rounds(), 0);

  running.Cancel();
  running.WaitDone();
}

TEST(ServiceTest, DrainFinishesAdmittedJobsAndRejectsNewOnes) {
  const graph::Graph g = graph::MakeWebGraph(40, 2, 5);
  CoreFixtureBase fixture("postgres");
  fixture.LoadGraph(g);

  JobServerConfig config = ServiceConfig(fixture);
  config.max_running_jobs = 2;
  JobServer server(config);
  Session session = server.OpenSession("tenant");

  std::vector<JobHandle> jobs;
  for (int i = 0; i < 4; ++i) {
    jobs.push_back(session.Submit(core::workloads::PageRankQuery(3),
                                  SyncOptions(4, 2)));
  }
  server.Drain();
  EXPECT_TRUE(server.draining());
  // Everything admitted before the drain ran to completion.
  for (const auto& job : jobs) {
    EXPECT_EQ(job.Status(), JobState::kCompleted);
  }
  EXPECT_THROW(
      session.Submit(core::workloads::PageRankQuery(2), SyncOptions()),
      AdmissionError);
}

TEST(ServiceTest, KilledJobResumesUnderTheSameIdentity) {
  const graph::Graph g = graph::MakeWebGraph(60, 3, 3);
  const std::string query = core::workloads::PageRankQuery(6);

  // Clean reference on a separate database.
  std::vector<std::string> clean;
  {
    CoreFixtureBase fixture("postgres");
    fixture.LoadGraph(g);
    core::SqLoop loop(fixture.Url(), SyncOptions());
    clean = Canonical(loop.Execute(query));
  }

  CoreFixtureBase fixture("postgres");
  fixture.LoadGraph(g);
  ScopedCheckpointDir dir;
  core::SqloopOptions options = SyncOptions();
  options.checkpoint_every = 1;
  options.checkpoint_dir = dir.path();

  JobServer server(ServiceConfig(fixture));

  // The first attempt is killed server-side at round 3.
  SessionOptions killer;
  killer.url_params = "fault_kill_at_round=3";
  Session doomed = server.OpenSession("tenant", killer);
  JobHandle killed = doomed.Submit(query, options);
  EXPECT_THROW(killed.Wait(), JobKilledError);
  EXPECT_EQ(killed.Status(), JobState::kFailed);

  // Resubmitted by the same tenant without the fault, the job keeps its
  // identity — same checkpoint lineage — and resumes past the kill.
  options.resume = true;
  Session healthy = server.OpenSession("tenant");
  JobHandle resumed = healthy.Submit(query, options);
  EXPECT_EQ(Canonical(resumed.Wait()), clean);
  EXPECT_EQ(resumed.id(), killed.id());
  EXPECT_GT(resumed.Stats().resumed_from_round, 0);
}

TEST(ServiceTest, JobIdentityIsStablePerTenantAndQuery) {
  const graph::Graph g = graph::MakeWebGraph(30, 2, 5);
  CoreFixtureBase fixture("postgres");
  fixture.LoadGraph(g);

  JobServer server(ServiceConfig(fixture));
  Session a = server.OpenSession("a");
  Session b = server.OpenSession("b");
  const std::string query = core::workloads::PageRankQuery(2);

  JobHandle first = a.Submit(query, SingleThreadOptions());
  JobHandle again = a.Submit(query, SingleThreadOptions());
  JobHandle other_tenant = b.Submit(query, SingleThreadOptions());
  JobHandle other_query =
      a.Submit(core::workloads::PageRankQuery(3), SingleThreadOptions());
  first.WaitDone();
  again.WaitDone();
  other_tenant.WaitDone();
  other_query.WaitDone();

  EXPECT_EQ(first.id(), again.id());
  EXPECT_NE(first.id(), other_tenant.id());
  EXPECT_NE(first.id(), other_query.id());
}

TEST(ServiceTest, EmbeddedFacadeServerExposesItsJobs) {
  const graph::Graph g = graph::MakeWebGraph(30, 2, 5);
  CoreFixtureBase fixture("postgres");
  fixture.LoadGraph(g);

  core::SqLoop loop(fixture.Url(), SyncOptions());
  loop.Execute(core::workloads::PageRankQuery(3));
  loop.Execute(core::workloads::PageRankQuery(4));

  const auto jobs = loop.job_server().Jobs();
  ASSERT_EQ(jobs.size(), 2u);
  for (const auto& job : jobs) {
    EXPECT_EQ(job.tenant, "local");
    EXPECT_EQ(job.state, JobState::kCompleted);
    EXPECT_TRUE(job.error.empty());
  }
  EXPECT_GE(jobs[0].rounds, 3);
  EXPECT_GE(jobs[1].rounds, 4);

  const auto tenants = loop.job_server().Tenants();
  ASSERT_EQ(tenants.size(), 1u);
  EXPECT_EQ(tenants[0].tenant, "local");
  EXPECT_EQ(tenants[0].jobs_completed, 2u);
}

TEST(ServiceTest, PooledConnectionsAreReusedAcrossJobs) {
  const graph::Graph g = graph::MakeWebGraph(30, 2, 5);
  CoreFixtureBase fixture("postgres");
  fixture.LoadGraph(g);

  JobServerConfig config = ServiceConfig(fixture);
  config.max_running_jobs = 1;  // sequential: the pool must get hits
  JobServer server(config);
  Session session = server.OpenSession("tenant");
  for (int i = 2; i < 6; ++i) {
    session.Submit(core::workloads::PageRankQuery(i), SingleThreadOptions())
        .WaitDone();
  }
  EXPECT_GE(server.pool_hits(), 3u);
  EXPECT_EQ(server.pool_misses(), 1u);
}

}  // namespace
}  // namespace sqloop::server
