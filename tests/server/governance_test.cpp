// Resource-governance acceptance suite (`ctest -L governance`).
//
// The properties pinned here are the governance contract (DESIGN.md
// "Resource governance & overload protection"): per-job and per-tenant
// memory budgets fail exactly the offending job with QuotaExceededError
// while every neighbour computes bit-identical results; Cancel() preempts
// a statement in flight, not just at the next round border; cancellation
// and quota breaches are never retried; the soft watermark sheds new
// admissions with a retry-after hint; the hard watermark's governor
// cancels the largest running job; Drain(deadline) cancels stragglers
// whose checkpoints let them resume under the same identity.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "core/resilience.h"
#include "core/workloads.h"
#include "graph/generators.h"
#include "server/job_server.h"
#include "tests/core/core_test_util.h"

namespace sqloop::server {
namespace {

namespace fs = std::filesystem;
using core::testing::CoreFixtureBase;

std::vector<std::string> Canonical(const dbc::ResultSet& result) {
  std::vector<std::string> rows;
  rows.reserve(result.rows.size());
  for (const auto& row : result.rows) {
    std::string text;
    for (const auto& value : row) {
      text += value.ToString();
      text += '|';
    }
    rows.push_back(std::move(text));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

core::SqloopOptions SyncOptions(int partitions = 8, int threads = 2) {
  core::SqloopOptions options;
  options.mode = core::ExecutionMode::kSync;
  options.partitions = partitions;
  options.threads = threads;
  return options;
}

core::SqloopOptions SingleThreadOptions() {
  core::SqloopOptions options;
  options.mode = core::ExecutionMode::kSingleThread;
  return options;
}

JobServerConfig ServiceConfig(const CoreFixtureBase& fixture) {
  JobServerConfig config;
  config.url = fixture.Url();
  config.worker_threads = 4;
  config.max_running_jobs = 4;
  return config;
}

/// The tenant's accumulated telemetry counter, 0 when the tenant or the
/// counter does not exist yet.
uint64_t TenantCounter(const JobServer& server, const std::string& tenant,
                       const std::string& name) {
  for (const auto& info : server.Tenants()) {
    if (info.tenant == tenant && info.recorder != nullptr) {
      return info.recorder->counter(name);
    }
  }
  return 0;
}

/// A transient-memory-hungry single statement. The fused pipeline streams
/// a plain two-table cross join without materializing (legitimately ~zero
/// transient memory), so governance tests need the three-way form: its
/// inner a×b join materializes |edges|^2 rows, every one charged to the
/// job's scope, and the |edges|^3 rows examined make it long enough to
/// catch a cancel genuinely mid-statement.
const char* kCrossJoin3 =
    "SELECT COUNT(*) FROM edges AS a, edges AS b, edges AS c";

class ScopedCheckpointDir {
 public:
  ScopedCheckpointDir() {
    static std::atomic<uint64_t> counter{0};
    dir_ = (fs::temp_directory_path() /
            ("sqloop_governance_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter.fetch_add(1))))
               .string();
    fs::create_directories(dir_);
  }
  ~ScopedCheckpointDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  const std::string& path() const { return dir_; }

 private:
  std::string dir_;
};

void WaitForState(const JobHandle& job, JobState state) {
  for (int i = 0; i < 20000; ++i) {
    if (job.Status() == state || job.Done()) return;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

TEST(GovernanceTest, PerJobBudgetFailsOnlyTheOffendingJob) {
  const graph::Graph g = graph::MakeWebGraph(80, 3, 7);
  CoreFixtureBase fixture("postgres");
  fixture.LoadGraph(g);

  JobServer server(ServiceConfig(fixture));
  Session session = server.OpenSession("tenant");

  // 240 edges squared is megabytes of transient rows: a 64 KiB job budget
  // must fail the statement at a clean boundary with the quota error.
  core::SqloopOptions capped = SingleThreadOptions();
  capped.memory_limit_bytes = 64 * 1024;
  JobHandle hungry = session.Submit(kCrossJoin3, capped);
  EXPECT_THROW(hungry.Wait(), QuotaExceededError);
  EXPECT_EQ(hungry.Status(), JobState::kFailed);
  EXPECT_NE(hungry.error_message().find("quota exceeded"),
            std::string::npos);
  EXPECT_GE(TenantCounter(server, "tenant", "governance.quota_rejections"),
            1u);

  // The same tenant — and the same statement — runs fine without the
  // budget: the failed job released everything it had charged.
  const int64_t edges = session
                            .Submit("SELECT COUNT(*) FROM edges",
                                    SingleThreadOptions())
                            .Wait()
                            .rows[0][0]
                            .as_int();
  ASSERT_GT(edges, 100);
  JobHandle fine = session.Submit(kCrossJoin3, SingleThreadOptions());
  const auto result = fine.Wait();
  EXPECT_EQ(result.rows[0][0].as_int(), edges * edges * edges);
  EXPECT_EQ(fine.Status(), JobState::kCompleted);
}

TEST(GovernanceTest, TenantBudgetCapsItsJobsWithoutTouchingNeighbours) {
  const graph::Graph g = graph::MakeWebGraph(80, 3, 7);
  CoreFixtureBase fixture("postgres");
  fixture.LoadGraph(g);
  const std::string query = core::workloads::PageRankQuery(6);

  // Solo reference for the well-behaved tenant.
  std::vector<std::string> solo;
  {
    core::SqLoop loop(fixture.Url(), SyncOptions());
    solo = Canonical(loop.Execute(query));
  }

  JobServer server(ServiceConfig(fixture));

  // The greedy tenant's whole session runs under a 64 KiB budget.
  SessionOptions tight;
  tight.memory_limit_bytes = 64 * 1024;
  Session greedy = server.OpenSession("greedy", tight);
  Session good = server.OpenSession("good");

  // Both tenants in flight at once: the greedy one keeps slamming into
  // its budget while the good one computes PageRank undisturbed.
  std::vector<JobHandle> greedy_jobs;
  std::vector<JobHandle> good_jobs;
  for (int i = 0; i < 2; ++i) {
    greedy_jobs.push_back(greedy.Submit(kCrossJoin3, SingleThreadOptions()));
    good_jobs.push_back(good.Submit(query, SyncOptions()));
  }
  for (const auto& job : greedy_jobs) {
    EXPECT_THROW(job.Wait(), QuotaExceededError);
    EXPECT_EQ(job.Status(), JobState::kFailed);
  }
  // Isolation: bit-identical results, zero resilience or failure counters.
  for (const auto& job : good_jobs) {
    EXPECT_EQ(Canonical(job.Wait()), solo);
    EXPECT_EQ(job.Status(), JobState::kCompleted);
    EXPECT_EQ(job.Stats().retries, 0u);
  }
  for (const auto& tenant : server.Tenants()) {
    if (tenant.tenant == "good") {
      EXPECT_EQ(tenant.jobs_completed, 2u);
      EXPECT_EQ(tenant.jobs_failed, 0u);
    }
    if (tenant.tenant == "greedy") {
      EXPECT_EQ(tenant.jobs_failed, 2u);
    }
  }
  EXPECT_GE(TenantCounter(server, "greedy", "governance.quota_rejections"),
            2u);
}

TEST(GovernanceTest, FacadeMemoryLimitOptionIsEnforced) {
  const graph::Graph g = graph::MakeWebGraph(80, 3, 7);
  CoreFixtureBase fixture("postgres");
  fixture.LoadGraph(g);

  core::SqloopOptions capped = SingleThreadOptions();
  capped.memory_limit_bytes = 64 * 1024;
  core::SqLoop loop(fixture.Url(), capped);
  EXPECT_THROW(loop.Execute(kCrossJoin3), QuotaExceededError);
  // The facade survives the failed run.
  const auto ok = loop.Execute("SELECT COUNT(*) FROM edges");
  EXPECT_GT(ok.rows[0][0].as_int(), 0);
}

TEST(GovernanceTest, CancelPreemptsAStatementInFlight) {
  // ~600 edges cubed is a >10^8-row cross join: seconds of engine work in
  // ONE statement. Cancel() must cut it off mid-loop, not wait it out.
  const graph::Graph g = graph::MakeWebGraph(200, 3, 7);
  CoreFixtureBase fixture("postgres");
  fixture.LoadGraph(g);

  JobServer server(ServiceConfig(fixture));
  Session session = server.OpenSession("tenant");

  // Safety net: if mid-statement cancellation regressed, the job budget
  // aborts the join long before it OOMs the test runner — and the error
  // type (quota, not cancelled) fails the test with a clear signal.
  core::SqloopOptions options = SingleThreadOptions();
  options.memory_limit_bytes = 256LL * 1024 * 1024;
  JobHandle job = session.Submit(kCrossJoin3, options);
  WaitForState(job, JobState::kRunning);
  // Give the engine time to be genuinely inside the join loops.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  const auto cancelled_at = std::chrono::steady_clock::now();
  job.Cancel();
  EXPECT_THROW(job.Wait(), JobCancelledError);
  const auto latency = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - cancelled_at)
                           .count();
  EXPECT_EQ(job.Status(), JobState::kCancelled);
  // The governor check fires every cancel_check_rows rows — far inside
  // the statement, so the cancel returns in well under the seconds the
  // full join needs.
  EXPECT_LT(latency, 2000) << "cancel had to wait the statement out";
  EXPECT_GE(TenantCounter(server, "tenant",
                          "governance.mid_statement_cancels"),
            1u);
  // Regression (the Retrier must classify cancellation as fatal): the
  // cancelled statement was never retried.
  EXPECT_EQ(job.Stats().retries, 0u);

  // The server keeps serving afterwards.
  JobHandle next = session.Submit("SELECT COUNT(*) FROM edges",
                                  SingleThreadOptions());
  EXPECT_GT(next.Wait().rows[0][0].as_int(), 0);
}

TEST(GovernanceTest, CancelLatencyStaysUnderOneRoundOnBatchedPath) {
  // The vectorized pipeline ticks the governor once per RowBatch
  // (GovTickRows), so a cancel_check_rows budget is consumed in
  // batch-sized strides: the token is consulted every
  // ⌈cancel_check_rows / batch_size⌉ batches, never deferred to a round
  // border. This pins that latency contract on the batched data plane —
  // the default plane — under an explicit check budget far below the
  // statement's row volume.
  const graph::Graph g = graph::MakeWebGraph(200, 3, 7);
  CoreFixtureBase fixture("postgres");
  fixture.LoadGraph(g);

  JobServer server(ServiceConfig(fixture));
  Session session = server.OpenSession("tenant");

  // A quick statement first proves this tenant's scans really run on the
  // batched plane (the long join below dies cancelled, so its own
  // telemetry never flushes).
  session
      .Submit("SELECT COUNT(*) FROM edges WHERE src >= 0",
              SingleThreadOptions())
      .Wait();
  EXPECT_GE(TenantCounter(server, "tenant", "minidb.batches_produced"), 1u);
  EXPECT_GE(TenantCounter(server, "tenant", "minidb.vectorized_cores"), 1u);

  core::SqloopOptions options = SingleThreadOptions();
  options.memory_limit_bytes = 256LL * 1024 * 1024;
  // Four batches' worth of rows between governor syncs — a tighter budget
  // than the default, honored at batch granularity.
  options.cancel_check_rows = 4096;
  JobHandle job = session.Submit(kCrossJoin3, options);
  WaitForState(job, JobState::kRunning);
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  const auto cancelled_at = std::chrono::steady_clock::now();
  job.Cancel();
  EXPECT_THROW(job.Wait(), JobCancelledError);
  const auto latency = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - cancelled_at)
                           .count();
  EXPECT_EQ(job.Status(), JobState::kCancelled);
  // One "round" here is the whole cross join — seconds of engine work.
  // The batch-granular governor must come back orders of magnitude
  // sooner.
  EXPECT_LT(latency, 2000) << "batched path deferred the cancel";
  EXPECT_GE(TenantCounter(server, "tenant",
                          "governance.mid_statement_cancels"),
            1u);
}

TEST(GovernanceTest, RetrierNeverRetriesCancellationOrQuota) {
  CoreFixtureBase fixture("postgres");
  auto conn = dbc::DriverManager::GetConnection(fixture.Url());

  core::RetryPolicy policy;
  policy.max_attempts = 5;
  policy.backoff_base_ms = 0;

  {
    core::Retrier retrier(policy, nullptr, nullptr);
    int calls = 0;
    EXPECT_THROW(retrier.Run(*conn, "stmt", 0,
                             [&]() -> int {
                               ++calls;
                               throw JobCancelledError("stop");
                             }),
                 JobCancelledError);
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(retrier.retries(), 0u);
  }
  {
    core::Retrier retrier(policy, nullptr, nullptr);
    int calls = 0;
    EXPECT_THROW(retrier.Run(*conn, "stmt", 0,
                             [&]() -> int {
                               ++calls;
                               throw QuotaExceededError("over budget");
                             }),
                 QuotaExceededError);
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(retrier.retries(), 0u);
  }
  // Control: a transient error IS retried under the same policy.
  {
    core::Retrier retrier(policy, nullptr, nullptr);
    int calls = 0;
    const int result = retrier.Run(*conn, "stmt", 0, [&]() -> int {
      if (++calls < 3) throw TransientError("flake");
      return 7;
    });
    EXPECT_EQ(result, 7);
    EXPECT_EQ(calls, 3);
    EXPECT_EQ(retrier.retries(), 2u);
  }
}

TEST(GovernanceTest, SoftWatermarkShedsNewSubmissions) {
  const graph::Graph g = graph::MakeWebGraph(40, 2, 5);
  CoreFixtureBase fixture("postgres");
  fixture.LoadGraph(g);

  // The loaded edge table alone crosses a 1-byte soft watermark, so the
  // server starts (and stays) in shed mode.
  JobServerConfig config = ServiceConfig(fixture);
  config.soft_memory_limit_bytes = 1;
  config.retry_after_ms = 85;
  JobServer server(config);
  EXPECT_TRUE(server.shedding());
  EXPECT_GT(server.memory_reserved_bytes(), 1);

  Session session = server.OpenSession("tenant");
  try {
    session.Submit("SELECT COUNT(*) FROM edges", SingleThreadOptions());
    FAIL() << "expected AdmissionError";
  } catch (const AdmissionError& e) {
    EXPECT_EQ(e.retry_after_ms(), 85);
    EXPECT_NE(std::string(e.what()).find("soft memory watermark"),
              std::string::npos);
  }
  EXPECT_GE(server.shed_admissions(), 1u);
  EXPECT_GE(TenantCounter(server, "tenant", "governance.shed_admissions"),
            1u);

  // A server with headroom admits the same work.
  JobServerConfig roomy = ServiceConfig(fixture);
  roomy.soft_memory_limit_bytes = 1LL << 40;
  JobServer open_server(roomy);
  EXPECT_FALSE(open_server.shedding());
  Session ok = open_server.OpenSession("tenant");
  EXPECT_GT(ok.Submit("SELECT COUNT(*) FROM edges", SingleThreadOptions())
                .Wait()
                .rows[0][0]
                .as_int(),
            0);
}

TEST(GovernanceTest, HardWatermarkGovernorCancelsTheHungriestJob) {
  const graph::Graph g = graph::MakeWebGraph(80, 3, 7);
  CoreFixtureBase fixture("postgres");
  fixture.LoadGraph(g);

  // Measure the storage baseline first, then set the hard watermark a
  // couple of megabytes above it: only a genuinely hungry job can cross.
  int64_t baseline = 0;
  {
    JobServer probe(ServiceConfig(fixture));
    baseline = probe.memory_reserved_bytes();
  }
  EXPECT_GT(baseline, 0);

  JobServerConfig config = ServiceConfig(fixture);
  config.hard_memory_limit_bytes = baseline + 2 * 1024 * 1024;
  config.governor_poll_ms = 1;
  JobServer server(config);
  Session session = server.OpenSession("tenant");

  // No per-job budget: the governor, not the job's own quota, must stop
  // the statement once its transient charges push the backend root over
  // the hard watermark.
  JobHandle victim = session.Submit(kCrossJoin3, SingleThreadOptions());
  EXPECT_THROW(victim.Wait(), QuotaExceededError);
  EXPECT_EQ(victim.Status(), JobState::kFailed);
  EXPECT_NE(victim.error_message().find("hard memory watermark"),
            std::string::npos);
  EXPECT_GE(server.victim_cancellations(), 1u);
  EXPECT_GE(TenantCounter(server, "tenant",
                          "governance.victim_cancellations"),
            1u);

  // The victim's reservation is fully released, so the server drops back
  // under the watermark and keeps serving small work.
  for (int i = 0;
       i < 20000 &&
       server.memory_reserved_bytes() >= config.hard_memory_limit_bytes;
       ++i) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  EXPECT_LT(server.memory_reserved_bytes(), config.hard_memory_limit_bytes);
  JobHandle next = session.Submit("SELECT COUNT(*) FROM edges",
                                  SingleThreadOptions());
  EXPECT_GT(next.Wait().rows[0][0].as_int(), 0);
}

TEST(GovernanceTest, DrainDeadlineCancelsStragglersWhoResumeByCheckpoint) {
  const graph::Graph g = graph::MakeWebGraph(60, 3, 3);
  const std::string query = core::workloads::PageRankQuery(8);

  // Clean reference on a separate database.
  std::vector<std::string> clean;
  {
    CoreFixtureBase fixture("postgres");
    fixture.LoadGraph(g);
    core::SqLoop loop(fixture.Url(), SyncOptions());
    clean = Canonical(loop.Execute(query));
  }

  CoreFixtureBase fixture("postgres");
  fixture.LoadGraph(g);
  ScopedCheckpointDir dir;
  core::SqloopOptions options = SyncOptions();
  options.checkpoint_every = 1;
  options.checkpoint_dir = dir.path();

  uint64_t cancelled_id = 0;
  {
    JobServer server(ServiceConfig(fixture));
    // The tenant's backend models heavy per-row server work, so each of
    // the 8 rounds takes a large multiple of the drain deadline — the job
    // is guaranteed to still be running when the deadline expires.
    // (Checkpoint identity hashes the query, not the URL knobs, so the
    // resumed run below — without the slowdown — keeps the lineage.)
    SessionOptions slow;
    slow.url_params = "row_cost_ns=400000";
    Session session = server.OpenSession("tenant", slow);
    JobHandle straggler = session.Submit(query, options);
    for (int i = 0; i < 20000 && straggler.rounds() < 2; ++i) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    EXPECT_FALSE(straggler.Done());
    server.Drain(/*deadline_ms=*/100);
    EXPECT_TRUE(server.draining());
    EXPECT_TRUE(straggler.Done());
    EXPECT_EQ(straggler.Status(), JobState::kCancelled);
    EXPECT_GT(straggler.rounds(), 0);
    cancelled_id = straggler.id();
    EXPECT_THROW(session.Submit(query, options), AdmissionError);
  }

  // A fresh server resumes the cancelled job's checkpoints under the same
  // identity and converges to the clean answer.
  JobServer server(ServiceConfig(fixture));
  core::SqloopOptions resume = options;
  resume.resume = true;
  Session session = server.OpenSession("tenant");
  JobHandle finished = session.Submit(query, resume);
  EXPECT_EQ(Canonical(finished.Wait()), clean);
  EXPECT_EQ(finished.id(), cancelled_id);
  EXPECT_GT(finished.Stats().resumed_from_round, 0);
}

TEST(GovernanceTest, GovernanceGaugesSurfaceInTenantTelemetry) {
  const graph::Graph g = graph::MakeWebGraph(40, 2, 5);
  CoreFixtureBase fixture("postgres");
  fixture.LoadGraph(g);

  JobServer server(ServiceConfig(fixture));
  Session session = server.OpenSession("tenant");
  session.Submit(kCrossJoin3, SingleThreadOptions()).WaitDone();

  // The cross join charged megabytes of transient rows against the
  // tenant scope; its peak survives job completion, while the live
  // reservation has been released with the job.
  EXPECT_GT(TenantCounter(server, "tenant", "governance.bytes_peak"), 0u);
  EXPECT_GT(server.memory_reserved_bytes(), 0);  // storage stays resident
}

}  // namespace
}  // namespace sqloop::server
