// Unit tests for the service layer's two schedulers: the AdmissionQueue
// (bounded, weighted-fair submission queue with per-tenant caps) and the
// FairScheduler (cross-job round-level weighted stride scheduling).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "server/admission.h"
#include "server/job.h"
#include "server/scheduler.h"

namespace sqloop::server {
namespace {

std::shared_ptr<JobRecord> MakeJob(const std::string& tenant, uint64_t seq) {
  auto job = std::make_shared<JobRecord>();
  job->tenant = tenant;
  job->seq = seq;
  return job;
}

TEST(AdmissionQueue, ServesLanesByWeightedStride) {
  AdmissionQueue queue(/*queue_capacity=*/16, /*max_inflight_per_tenant=*/16,
                       /*retry_after_ms=*/10);
  // Tenant a (weight 1) and tenant b (weight 3) each queue three jobs.
  for (uint64_t i = 0; i < 3; ++i) queue.Push(MakeJob("a", i), 1.0);
  for (uint64_t i = 0; i < 3; ++i) queue.Push(MakeJob("b", 10 + i), 3.0);

  std::vector<std::string> order;
  for (int i = 0; i < 6; ++i) order.push_back(queue.Pop()->tenant);
  // Stride order: passes advance by 1/weight, so b is served three times
  // for every a. The first four pops contain one a and three b.
  EXPECT_EQ(std::count(order.begin(), order.begin() + 4, "b"), 3);
  EXPECT_EQ(std::count(order.begin(), order.end(), "a"), 3);
  EXPECT_EQ(std::count(order.begin(), order.end(), "b"), 3);
}

TEST(AdmissionQueue, RejectsWhenQueueIsAtCapacity) {
  AdmissionQueue queue(/*queue_capacity=*/2, /*max_inflight_per_tenant=*/16,
                       /*retry_after_ms=*/25);
  queue.Push(MakeJob("a", 1), 1.0);
  queue.Push(MakeJob("a", 2), 1.0);
  try {
    queue.Push(MakeJob("a", 3), 1.0);
    FAIL() << "expected AdmissionError";
  } catch (const AdmissionError& e) {
    EXPECT_EQ(e.retry_after_ms(), 25);
    EXPECT_NE(std::string(e.what()).find("capacity"), std::string::npos);
  }
  EXPECT_EQ(queue.queued(), 2u);
}

TEST(AdmissionQueue, CapsInflightPerTenantUntilRelease) {
  AdmissionQueue queue(/*queue_capacity=*/16, /*max_inflight_per_tenant=*/2,
                       /*retry_after_ms=*/10);
  queue.Push(MakeJob("a", 1), 1.0);
  queue.Push(MakeJob("a", 2), 1.0);
  // In-flight counts queued + running: popping does not free the slot.
  EXPECT_NE(queue.Pop(), nullptr);
  EXPECT_EQ(queue.inflight("a"), 2u);
  EXPECT_THROW(queue.Push(MakeJob("a", 3), 1.0), AdmissionError);
  // Another tenant has its own lane and cap.
  queue.Push(MakeJob("b", 4), 1.0);

  queue.Release("a");  // the popped job reached a terminal state
  EXPECT_EQ(queue.inflight("a"), 1u);
  queue.Push(MakeJob("a", 5), 1.0);
}

TEST(AdmissionQueue, CloseDrainsBacklogThenSignalsShutdown) {
  AdmissionQueue queue(/*queue_capacity=*/16, /*max_inflight_per_tenant=*/16,
                       /*retry_after_ms=*/10);
  queue.Push(MakeJob("a", 1), 1.0);
  queue.Push(MakeJob("a", 2), 1.0);
  queue.Close();
  EXPECT_TRUE(queue.closed());
  // Draining: the backlog still comes out, new pushes are rejected.
  EXPECT_THROW(queue.Push(MakeJob("a", 3), 1.0), AdmissionError);
  EXPECT_NE(queue.Pop(), nullptr);
  EXPECT_NE(queue.Pop(), nullptr);
  // Drained: nullptr tells the dispatcher to exit.
  EXPECT_EQ(queue.Pop(), nullptr);
}

TEST(AdmissionQueue, EraseRemovesQueuedJobAndFreesSlot) {
  AdmissionQueue queue(/*queue_capacity=*/16, /*max_inflight_per_tenant=*/16,
                       /*retry_after_ms=*/10);
  auto job = MakeJob("a", 1);
  queue.Push(job, 1.0);
  EXPECT_EQ(queue.inflight("a"), 1u);
  EXPECT_TRUE(queue.Erase(job.get()));
  EXPECT_EQ(queue.queued(), 0u);
  EXPECT_EQ(queue.inflight("a"), 0u);
  // Already gone (or popped): Erase reports it found nothing.
  EXPECT_FALSE(queue.Erase(job.get()));
}

TEST(AdmissionQueue, PopBlocksUntilWorkArrives) {
  AdmissionQueue queue(/*queue_capacity=*/16, /*max_inflight_per_tenant=*/16,
                       /*retry_after_ms=*/10);
  std::atomic<bool> popped{false};
  std::thread consumer([&] {
    auto job = queue.Pop();
    EXPECT_NE(job, nullptr);
    popped.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(popped.load());
  queue.Push(MakeJob("a", 1), 1.0);
  consumer.join();
  EXPECT_TRUE(popped.load());
}

TEST(FairScheduler, UnlimitedModeNeverBlocksButKeepsAccounting) {
  FairScheduler scheduler(/*max_active_rounds=*/0);
  std::atomic<bool> cancelled{false};
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(scheduler.BeginRound("a", cancelled));
    scheduler.EndRound("a");
  }
  EXPECT_EQ(scheduler.granted("a"), 5u);
}

TEST(FairScheduler, CancelledRoundRequestReturnsFalseWithoutASlot) {
  FairScheduler scheduler(/*max_active_rounds=*/1);
  std::atomic<bool> running{false};
  std::atomic<bool> cancelled{true};
  // Hold the only slot so the cancelled request would otherwise block.
  EXPECT_TRUE(scheduler.BeginRound("a", running));
  EXPECT_FALSE(scheduler.BeginRound("b", cancelled));
  EXPECT_EQ(scheduler.granted("b"), 0u);
  scheduler.EndRound("a");
  // The slot is free again for anyone.
  EXPECT_TRUE(scheduler.BeginRound("b", running));
  scheduler.EndRound("b");
}

TEST(FairScheduler, GrantsRoundsProportionalToWeight) {
  FairScheduler scheduler(/*max_active_rounds=*/1);
  scheduler.SetWeight("light", 1.0);
  scheduler.SetWeight("heavy", 3.0);
  // Both tenants drive rounds until the sampler has seen enough — neither
  // can finish early and skew the ratio by running uncontended. Each
  // holds the Enter/Leave liveness claim for the whole drive, exactly as
  // a running job's gate does — without it the idle floor re-fires
  // between rounds and the stride collapses toward round-robin.
  std::atomic<bool> stop{false};
  auto drive = [&](const std::string& tenant) {
    scheduler.Enter(tenant);
    while (!stop.load()) {
      if (!scheduler.BeginRound(tenant, stop)) break;
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      scheduler.EndRound(tenant);
    }
    scheduler.Leave(tenant);
  };
  std::thread light([&] { drive("light"); });
  std::thread heavy([&] { drive("heavy"); });

  // Sample while both tenants are contending: in steady state the stride
  // scheduler grants heavy three rounds for every light one.
  uint64_t l = 0;
  uint64_t h = 0;
  for (int i = 0; i < 20000; ++i) {
    l = scheduler.granted("light");
    h = scheduler.granted("heavy");
    if (l + h >= 40 && l >= 4) break;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  stop.store(true);
  scheduler.Poke();
  light.join();
  heavy.join();
  ASSERT_GE(l, 4u);
  const double ratio = static_cast<double>(h) / static_cast<double>(l);
  EXPECT_GE(ratio, 1.8) << "heavy=" << h << " light=" << l;
  EXPECT_LE(ratio, 4.6) << "heavy=" << h << " light=" << l;
}

}  // namespace
}  // namespace sqloop::server
