// Perf smoke suite (ctest label: perf): fast functional checks that the
// prepared-execution machinery is actually engaged on the hot path — the
// properties the full benchmarks (bench/micro_prepare) measure, asserted
// structurally so CI catches a silently disabled cache without timing
// anything.
#include <gtest/gtest.h>

#include <string>

#include "core/sqloop.h"
#include "core/workloads.h"
#include "dbc/driver.h"
#include "graph/generators.h"
#include "tests/core/core_test_util.h"

namespace sqloop::core {
namespace {

using testing::CoreFixtureBase;

struct CacheCounts {
  uint64_t hits = 0;
  uint64_t misses = 0;
};

/// Runs PageRank for `iters` rounds on a fresh fixture and returns the
/// database's plan-cache counters afterwards.
CacheCounts RunAndCount(const graph::Graph& g, int iters) {
  CoreFixtureBase fixture("postgres");
  fixture.LoadGraph(g);
  SqLoop loop(fixture.Url());
  loop.Execute(workloads::PageRankQuery(iters),
               fixture.SmallOptions(ExecutionMode::kSingleThread));
  const auto& cache =
      dbc::DriverManager::GetConnection(fixture.Url())->database().plan_cache();
  return {cache.hits(), cache.misses()};
}

TEST(PlanCachePerfSmoke, HotLoopIsServedFromTheCache) {
  const graph::Graph g = graph::MakeWebGraph(80, 3, 5);
  const CacheCounts counts = RunAndCount(g, 8);
  // The per-round statements must be cache hits, not fresh compiles.
  EXPECT_GT(counts.hits, counts.misses);
  EXPECT_GT(counts.hits, 0u);
}

TEST(PlanCachePerfSmoke, CompileCountIsConstantInIterationCount) {
  // Parse/plan work must be O(1) after warm-up: doubling the iteration
  // count may not grow the number of compiles (misses) — only the number
  // of cache hits. A regression that re-compiles per round shows up here
  // as misses scaling with iterations.
  const graph::Graph g = graph::MakeWebGraph(80, 3, 5);
  const CacheCounts short_run = RunAndCount(g, 5);
  const CacheCounts long_run = RunAndCount(g, 10);
  EXPECT_LE(long_run.misses, short_run.misses + 2);
  EXPECT_GT(long_run.hits, short_run.hits);
}

}  // namespace
}  // namespace sqloop::core
