#include "telemetry/exporters.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"
#include "telemetry/recorder.h"

namespace sqloop::telemetry {
namespace {

/// A recorder exercising every exported shape: counters, timers, two
/// rounds, and spans of several kinds.
void FillSample(Recorder& rec) {
  rec.Add("dbc.round_trips", 42);
  rec.Add("minidb.rows_examined", 12345);
  rec.AddSeconds("minidb.lock_wait_seconds", 0.125);

  IterationStats r1;
  r1.round = 1;
  r1.updates = 100;
  r1.compute_tasks = 8;
  r1.gather_tasks = 8;
  r1.compute_seconds = 0.5;
  r1.gather_seconds = 0.25;
  r1.barrier_wait_seconds = 0.0625;
  r1.messages_produced = 6;
  r1.messages_consumed = 6;
  r1.seconds = 0.875;
  rec.RecordIteration(r1);

  IterationStats r2;
  r2.round = 2;
  r2.updates = 10;
  r2.compute_tasks = 8;
  r2.gather_tasks = 8;
  r2.partitions_skipped = 3;
  r2.seconds = 0.5;
  rec.RecordIteration(r2);

  TaskSpan compute;
  compute.kind = SpanKind::kCompute;
  compute.round = 1;
  compute.partition = 3;
  compute.thread_id = 7;
  compute.start_seconds = 0.125;
  compute.duration_seconds = 0.0078125;
  compute.updates = 100;
  rec.RecordSpan(compute);

  TaskSpan setup;
  setup.kind = SpanKind::kSetup;
  setup.partition = -1;
  setup.duration_seconds = 0.25;
  rec.RecordSpan(setup);
}

TEST(ExportersTest, JsonLinesRoundTripsThroughReader) {
  Recorder rec;
  FillSample(rec);

  const std::string text = JsonLines(rec);
  std::istringstream in(text);
  Recorder parsed;
  const size_t consumed = ReadJsonLines(in, parsed);
  // counters (2) + timer (1) + iterations (2) + spans (2).
  EXPECT_EQ(consumed, 7u);

  EXPECT_EQ(parsed.counter("dbc.round_trips"), 42u);
  EXPECT_EQ(parsed.counter("minidb.rows_examined"), 12345u);
  EXPECT_DOUBLE_EQ(parsed.timer_seconds("minidb.lock_wait_seconds"), 0.125);

  const auto rounds = parsed.IterationsSnapshot();
  ASSERT_EQ(rounds.size(), 2u);
  EXPECT_EQ(rounds[0].round, 1);
  EXPECT_EQ(rounds[0].updates, 100u);
  EXPECT_EQ(rounds[0].compute_tasks, 8u);
  EXPECT_DOUBLE_EQ(rounds[0].compute_seconds, 0.5);
  EXPECT_DOUBLE_EQ(rounds[0].barrier_wait_seconds, 0.0625);
  EXPECT_EQ(rounds[0].messages_produced, 6u);
  EXPECT_EQ(rounds[1].partitions_skipped, 3u);
  EXPECT_DOUBLE_EQ(rounds[1].seconds, 0.5);

  const auto spans = parsed.SpansSnapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].kind, SpanKind::kCompute);
  EXPECT_EQ(spans[0].partition, 3);
  EXPECT_EQ(spans[0].thread_id, 7u);
  EXPECT_DOUBLE_EQ(spans[0].duration_seconds, 0.0078125);
  EXPECT_EQ(spans[0].updates, 100u);
  EXPECT_EQ(spans[1].kind, SpanKind::kSetup);
  EXPECT_EQ(spans[1].partition, -1);

  // A second encode of the parsed recorder reproduces the original text:
  // the format is canonical, so round-tripping is loss-free.
  EXPECT_EQ(JsonLines(parsed), text);
}

TEST(ExportersTest, ReadJsonLinesRejectsMalformedAndSkipsUnknown) {
  Recorder rec;
  {
    std::istringstream in(R"({"type":"wholly_unknown","x":1})"
                          "\n"
                          R"({"type":"counter","name":"a","value":3})"
                          "\n");
    EXPECT_EQ(ReadJsonLines(in, rec), 2u);
    EXPECT_EQ(rec.counter("a"), 3u);
  }
  {
    std::istringstream in("this is not json\n");
    EXPECT_THROW(ReadJsonLines(in, rec), UsageError);
  }
  {
    std::istringstream in(R"({"type":"counter","value":3})"
                          "\n");  // missing name
    EXPECT_THROW(ReadJsonLines(in, rec), UsageError);
  }
}

TEST(ExportersTest, PrometheusSnapshotExposesTotals) {
  Recorder rec;
  FillSample(rec);
  const std::string text = PrometheusSnapshot(rec);

  EXPECT_NE(text.find("sqloop_iterations_total 2"), std::string::npos);
  EXPECT_NE(text.find("sqloop_updates_total 110"), std::string::npos);
  EXPECT_NE(text.find("sqloop_task_spans_total 2"), std::string::npos);
  EXPECT_NE(text.find("sqloop_compute_seconds_total 0.5"), std::string::npos);
  // Counter / timer names sanitized to [a-z0-9_].
  EXPECT_NE(text.find("sqloop_dbc_round_trips_total 42"), std::string::npos);
  EXPECT_NE(text.find("sqloop_minidb_lock_wait_seconds_seconds_total 0.125"),
            std::string::npos);
  EXPECT_EQ(text.find("dbc.round_trips"), std::string::npos)
      << "metric names must be sanitized to [a-z0-9_]:\n"
      << text;
  // Every sample is preceded by a TYPE declaration.
  EXPECT_NE(text.find("# TYPE sqloop_iterations_total counter"),
            std::string::npos);
}

TEST(ExportersTest, SummaryRendersRoundsAndCounters) {
  Recorder rec;
  FillSample(rec);
  const std::string text = Summary(rec);
  // One line per round with its round number, plus the attributed counters.
  EXPECT_NE(text.find("round"), std::string::npos);
  EXPECT_NE(text.find("dbc.round_trips"), std::string::npos);
  EXPECT_NE(text.find("minidb.lock_wait_seconds"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
}

TEST(ExportersTest, EmptyRecorderExportsAreWellFormed) {
  Recorder rec;
  EXPECT_EQ(JsonLines(rec), "");
  const std::string prom = PrometheusSnapshot(rec);
  EXPECT_NE(prom.find("sqloop_iterations_total 0"), std::string::npos);
  EXPECT_FALSE(Summary(rec).empty());
}

}  // namespace
}  // namespace sqloop::telemetry
