// Link-time proof that -DSQLOOP_TELEMETRY=OFF carries zero hot-path cost.
//
// This translation unit is compiled with SQLOOP_TELEMETRY_ENABLED=0 (see
// tests/CMakeLists.txt). Every hook macro below is passed arguments that
// call functions which are DECLARED but never DEFINED anywhere. The binary
// links only because the disabled macros expand to nothing and never
// evaluate their arguments; re-enabling telemetry for this target turns
// each call site into an undefined-symbol link error.
#include "telemetry/hooks.h"

#include <cstdint>
#include <cstdio>

namespace sqloop::telemetry {

class Recorder;  // hooks.h does not pull in recorder.h when disabled

// Deliberately undefined: referencing any of these breaks the link.
Recorder* NeverDefinedRecorder();
const char* NeverDefinedName();
uint64_t NeverDefinedDelta();
double NeverDefinedSeconds();
void NeverDefinedBlock();

static_assert(!kHooksEnabled,
              "telemetry_off_probe must build with SQLOOP_TELEMETRY_ENABLED=0");

void Probe() {
  SQLOOP_TELEMETRY(NeverDefinedBlock(););
  SQLOOP_COUNT(NeverDefinedRecorder(), NeverDefinedName(),
               NeverDefinedDelta());
  SQLOOP_TIME_SECONDS(NeverDefinedRecorder(), NeverDefinedName(),
                      NeverDefinedSeconds());
}

}  // namespace sqloop::telemetry

int main() {
  sqloop::telemetry::Probe();
  std::puts("telemetry hooks compiled out: OK");
  return 0;
}
