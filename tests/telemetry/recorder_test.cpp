#include "telemetry/recorder.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace sqloop::telemetry {
namespace {

TEST(RecorderTest, CountersAccumulateAndReadBack) {
  Recorder rec;
  EXPECT_EQ(rec.counter("absent"), 0u);
  rec.Add("dbc.round_trips", 2);
  rec.Add("dbc.round_trips", 3);
  rec.Add("minidb.rows_examined", 7);
  EXPECT_EQ(rec.counter("dbc.round_trips"), 5u);
  EXPECT_EQ(rec.counter("minidb.rows_examined"), 7u);

  const auto counters = rec.Counters();
  ASSERT_EQ(counters.size(), 2u);
  // Sorted by name.
  EXPECT_EQ(counters[0].first, "dbc.round_trips");
  EXPECT_EQ(counters[1].first, "minidb.rows_examined");
}

TEST(RecorderTest, TimersAccumulateSeconds) {
  Recorder rec;
  EXPECT_DOUBLE_EQ(rec.timer_seconds("absent"), 0.0);
  rec.AddSeconds("minidb.lock_wait_seconds", 0.25);
  rec.AddSeconds("minidb.lock_wait_seconds", 0.5);
  EXPECT_DOUBLE_EQ(rec.timer_seconds("minidb.lock_wait_seconds"), 0.75);
}

TEST(RecorderTest, IterationsKeepInsertionOrder) {
  Recorder rec;
  for (int64_t round = 1; round <= 4; ++round) {
    IterationStats it;
    it.round = round;
    it.updates = static_cast<uint64_t>(round * 10);
    rec.RecordIteration(it);
  }
  const auto rounds = rec.IterationsSnapshot();
  ASSERT_EQ(rounds.size(), 4u);
  EXPECT_EQ(rec.iteration_count(), 4u);
  for (size_t i = 0; i < rounds.size(); ++i) {
    EXPECT_EQ(rounds[i].round, static_cast<int64_t>(i + 1));
    EXPECT_EQ(rounds[i].updates, (i + 1) * 10);
  }
}

TEST(RecorderTest, SpanKindNamesRoundTrip) {
  for (const SpanKind kind :
       {SpanKind::kCompute, SpanKind::kGather, SpanKind::kPriority,
        SpanKind::kSetup, SpanKind::kFinal, SpanKind::kMerge,
        SpanKind::kCheckpoint, SpanKind::kRestore}) {
    SpanKind parsed;
    ASSERT_TRUE(ParseSpanKind(SpanKindName(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  SpanKind parsed;
  EXPECT_FALSE(ParseSpanKind("nonsense", &parsed));
}

TEST(RecorderTest, ConcurrentMutationIsLossless) {
  // The recorder's whole job is absorbing concurrent worker updates; this
  // drives every mutator from many threads and checks nothing is lost.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  Recorder rec;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec, t] {
      for (int i = 0; i < kPerThread; ++i) {
        rec.Add("shared", 1);
        rec.Add("per_thread." + std::to_string(t), 1);
        rec.AddSeconds("busy", 0.001);
        TaskSpan span;
        span.kind = SpanKind::kCompute;
        span.partition = t;
        span.thread_id = Recorder::ThisThreadId();
        rec.RecordSpan(span);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(rec.counter("shared"),
            static_cast<uint64_t>(kThreads) * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(rec.counter("per_thread." + std::to_string(t)),
              static_cast<uint64_t>(kPerThread));
  }
  EXPECT_NEAR(rec.timer_seconds("busy"), kThreads * kPerThread * 0.001, 1e-6);
  ASSERT_EQ(rec.span_count(), static_cast<size_t>(kThreads) * kPerThread);

  // Every span kept its thread attribution: exactly kPerThread spans per
  // partition id, and a span's thread id is consistent within a partition.
  const auto spans = rec.SpansSnapshot();
  std::vector<size_t> per_partition(kThreads, 0);
  for (const auto& span : spans) {
    ASSERT_GE(span.partition, 0);
    ASSERT_LT(span.partition, kThreads);
    ++per_partition[static_cast<size_t>(span.partition)];
    EXPECT_NE(span.thread_id, 0u);
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(per_partition[static_cast<size_t>(t)],
              static_cast<size_t>(kPerThread));
  }
}

TEST(RecorderTest, ThisThreadIdStableWithinThreadDistinctAcross) {
  const uint64_t main_id = Recorder::ThisThreadId();
  EXPECT_EQ(main_id, Recorder::ThisThreadId());
  uint64_t other_id = 0;
  std::thread([&other_id] { other_id = Recorder::ThisThreadId(); }).join();
  EXPECT_NE(other_id, 0u);
  EXPECT_NE(other_id, main_id);
}

}  // namespace
}  // namespace sqloop::telemetry
