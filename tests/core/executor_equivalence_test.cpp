// The reproduction's central property tests: every SQLoop execution mode,
// on every engine profile, must compute the same answers as the reference
// algorithms (PageRank reference, Dijkstra, BFS).
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "core/workloads.h"
#include "graph/generators.h"
#include "graph/reference.h"
#include "tests/core/core_test_util.h"

namespace sqloop::core {
namespace {

using testing::CoreFixtureBase;

struct ModeEngineParam {
  ExecutionMode mode;
  const char* engine;
};

std::string ParamName(
    const ::testing::TestParamInfo<ModeEngineParam>& info) {
  std::string name = std::string(ExecutionModeName(info.param.mode)) + "_" +
                     info.param.engine;
  for (auto& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

class EquivalenceTest : public ::testing::TestWithParam<ModeEngineParam> {
 protected:
  void SetUpWith(const graph::Graph& g) {
    fixture_ = std::make_unique<CoreFixtureBase>(GetParam().engine);
    fixture_->LoadGraph(g);
    loop_ = std::make_unique<SqLoop>(
        fixture_->Url(),
        fixture_->SmallOptions(GetParam().mode, /*partitions=*/8,
                               /*threads=*/3));
  }

  std::unique_ptr<CoreFixtureBase> fixture_;
  std::unique_ptr<SqLoop> loop_;
};

TEST_P(EquivalenceTest, PageRankMatchesReference) {
  const graph::Graph g = graph::MakeWebGraph(200, 3, 77);
  SetUpWith(g);
  constexpr int kIterations = 12;

  const auto result = loop_->Execute(workloads::PageRankQuery(kIterations));
  const auto reference = graph::PageRankReference(g, kIterations);

  ASSERT_EQ(result.rows.size(), reference.rank.size());
  double sum = 0;
  for (const auto& row : result.rows) {
    const int64_t node = row[0].as_int();
    const double rank = row[1].as_double();
    sum += rank;
    // Sync matches the reference trajectory exactly; Async variants absorb
    // intermediate deltas faster, so they sit between the reference value
    // and the fixpoint — every rank must be >= the sync value and finite.
    if (GetParam().mode == ExecutionMode::kSync ||
        GetParam().mode == ExecutionMode::kSingleThread) {
      EXPECT_NEAR(rank, reference.rank.at(node), 1e-9) << "node " << node;
    } else {
      EXPECT_GE(rank, reference.rank.at(node) - 1e-9) << "node " << node;
      EXPECT_TRUE(std::isfinite(rank));
    }
  }
  if (GetParam().mode == ExecutionMode::kAsync ||
      GetParam().mode == ExecutionMode::kAsyncPriority) {
    // The async schedulers must converge at least as far per round.
    EXPECT_GE(sum, reference.sum_of_rank - 1e-9);
    // And never beyond the fixpoint (= node count for this seeding).
    EXPECT_LE(sum, static_cast<double>(g.NodeCount()) + 1e-6);
  }
}

TEST_P(EquivalenceTest, SsspMatchesDijkstra) {
  const graph::Graph g = graph::MakeEgoNetGraph(6, 12, 0.25, 5);
  SetUpWith(g);
  constexpr int64_t kSource = 1;

  auto options = loop_->options();
  if (GetParam().mode == ExecutionMode::kAsyncPriority) {
    options.priority_query = workloads::SsspPriorityQuery();
    options.priority_descending = false;
  }

  const auto result =
      loop_->Execute(workloads::SsspAllQuery(kSource), options);
  const auto dijkstra = graph::Dijkstra(g, kSource);

  std::map<int64_t, double> computed;
  for (const auto& row : result.rows) {
    computed[row[0].as_int()] = row[1].as_double();
  }
  for (const auto& [node, expected] : dijkstra) {
    if (node == kSource) continue;  // see DESIGN.md: Example 3 semantics
    ASSERT_TRUE(computed.contains(node)) << "node " << node;
    EXPECT_NEAR(computed.at(node), expected, 1e-9) << "node " << node;
  }
  // No unreachable node may appear with a finite distance.
  for (const auto& [node, distance] : computed) {
    if (node == kSource) continue;
    EXPECT_TRUE(dijkstra.contains(node)) << "node " << node;
  }
}

TEST_P(EquivalenceTest, DescendantQueryMatchesBfs) {
  const graph::Graph g = graph::MakeHostGraph(6, 5, 20, 9);
  SetUpWith(g);
  constexpr int64_t kSource = 0;

  auto options = loop_->options();
  if (GetParam().mode == ExecutionMode::kAsyncPriority) {
    options.priority_query = workloads::DqPriorityQuery();
    options.priority_descending = false;
  }

  const auto result =
      loop_->Execute(workloads::DescendantQuery(kSource), options);
  const auto bfs = graph::BfsHops(g, kSource);

  std::map<int64_t, int64_t> computed;
  for (const auto& row : result.rows) {
    computed[row[0].as_int()] =
        static_cast<int64_t>(std::llround(row[1].NumericAsDouble()));
  }
  for (const auto& [node, hops] : bfs) {
    if (node == kSource) continue;
    ASSERT_TRUE(computed.contains(node)) << "node " << node;
    EXPECT_EQ(computed.at(node), hops) << "node " << node;
  }
}

TEST_P(EquivalenceTest, StatsReflectMode) {
  const graph::Graph g = graph::MakeWebGraph(60, 3, 3);
  SetUpWith(g);
  loop_->Execute(workloads::PageRankQuery(3));
  const RunStats& stats = loop_->last_run();
  EXPECT_EQ(stats.iterations, 3);
  if (GetParam().mode == ExecutionMode::kSingleThread) {
    EXPECT_FALSE(stats.parallelized);
  } else {
    EXPECT_TRUE(stats.parallelized);
    EXPECT_EQ(stats.mode_used, GetParam().mode);
    EXPECT_EQ(stats.compute_tasks, 3u * 8u);  // rounds * partitions
    EXPECT_GT(stats.message_tables, 0u);
  }
  EXPECT_GT(stats.seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllModesAndEngines, EquivalenceTest,
    ::testing::Values(
        ModeEngineParam{ExecutionMode::kSingleThread, "postgres"},
        ModeEngineParam{ExecutionMode::kSync, "postgres"},
        ModeEngineParam{ExecutionMode::kAsync, "postgres"},
        ModeEngineParam{ExecutionMode::kAsyncPriority, "postgres"},
        ModeEngineParam{ExecutionMode::kSync, "mysql"},
        ModeEngineParam{ExecutionMode::kAsync, "mysql"},
        ModeEngineParam{ExecutionMode::kSync, "mariadb"},
        ModeEngineParam{ExecutionMode::kAsync, "mariadb"}),
    ParamName);

}  // namespace
}  // namespace sqloop::core
