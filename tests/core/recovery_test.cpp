// The checkpoint/recovery acceptance suite (ctest label: recovery): a job
// killed mid-run by fault_kill_at_round must resume from its newest valid
// checkpoint and finish bit-identical to an uninterrupted run, in every
// execution mode. Corrupt checkpoints (torn manifest, flipped dump byte)
// must be skipped — falling back to the previous checkpoint and ultimately
// to a fresh run — never trusted. The suite also covers the straggler
// watchdog (speculative re-execution keeps results exact) and the
// rebalancing of tasks stranded on retired workers.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/fault.h"
#include "core/workloads.h"
#include "dbc/driver.h"
#include "graph/generators.h"
#include "minidb/server.h"
#include "tests/core/core_test_util.h"

namespace sqloop::core {
namespace {

namespace fs = std::filesystem;
using testing::CoreFixtureBase;

/// Rows rendered to strings and sorted: the canonical form two runs must
/// agree on bit for bit.
std::vector<std::string> Canonical(const dbc::ResultSet& result) {
  std::vector<std::string> rows;
  rows.reserve(result.rows.size());
  for (const auto& row : result.rows) {
    std::string flat;
    for (const auto& value : row) {
      flat += value.ToString();
      flat += '|';
    }
    rows.push_back(std::move(flat));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// The minidb host name inside a fixture URL ("minidb://<host>/db?...").
std::string HostOf(const std::string& url) {
  const auto start = url.find("://") + 3;
  return url.substr(start, url.find('/', start) - start);
}

/// A unique on-disk checkpoint directory, removed when the test ends. The
/// pid is part of the name because ctest runs each TEST as its own process
/// (gtest_discover_tests), possibly concurrently.
class ScopedCheckpointDir {
 public:
  ScopedCheckpointDir() {
    static std::atomic<uint64_t> counter{0};
    dir_ = (fs::temp_directory_path() /
            ("sqloop_recovery_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter.fetch_add(1))))
               .string();
    fs::create_directories(dir_);
  }
  ~ScopedCheckpointDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  const std::string& path() const { return dir_; }

 private:
  std::string dir_;
};

/// All ckpt_<round> directories under `root`, newest first (the round is
/// zero-padded, so lexicographic order is numeric order).
std::vector<fs::path> CheckpointsNewestFirst(const std::string& root) {
  std::vector<fs::path> dirs;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (entry.is_directory() &&
        entry.path().filename().string().rfind("ckpt_", 0) == 0) {
      dirs.push_back(entry.path());
    }
  }
  std::sort(dirs.begin(), dirs.end(), std::greater<>());
  return dirs;
}

void TruncateFile(const fs::path& file) {
  fs::resize_file(file, fs::file_size(file) / 2);
}

/// Flips one payload byte (past the 8-byte magic), breaking the CRC seal
/// without touching the file's size or header.
void FlipByte(const fs::path& file) {
  std::fstream f(file, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open()) << file;
  f.seekg(12);
  char c = 0;
  f.get(c);
  f.seekp(12);
  f.put(static_cast<char>(c ^ 0x5a));
}

SqloopOptions BaseOptions(ExecutionMode mode, int threads) {
  SqloopOptions options;
  options.mode = mode;
  options.partitions = 8;
  options.threads = threads;
  return options;
}

/// Clean reference + kill/resume pair. The killed run and the resumed run
/// share one fixture (one database): the kill leaves the base tables in
/// place and the checkpoints on disk, exactly like a crashed process would.
struct RecoveryOutcome {
  std::vector<std::string> clean;
  std::vector<std::string> resumed;
  RunStats clean_stats;
  RunStats kill_stats;
  RunStats resume_stats;
};

RecoveryOutcome KillThenResume(
    const graph::Graph& g, const std::string& query, ExecutionMode mode,
    int threads, int64_t kill_round, int64_t cadence = 1,
    const std::function<void(const std::string&)>& corrupt = nullptr) {
  RecoveryOutcome out;
  {
    CoreFixtureBase fixture("postgres");
    fixture.LoadGraph(g);
    SqLoop loop(fixture.Url(), BaseOptions(mode, threads));
    out.clean = Canonical(loop.Execute(query));
    out.clean_stats = loop.last_run();
  }

  CoreFixtureBase fixture("postgres");
  fixture.LoadGraph(g);
  ScopedCheckpointDir dir;
  SqloopOptions options = BaseOptions(mode, threads);
  options.checkpoint_every = cadence;
  options.checkpoint_dir = dir.path();
  {
    SqLoop loop(fixture.Url() + "&fault_kill_at_round=" +
                    std::to_string(kill_round),
                options);
    EXPECT_THROW(loop.Execute(query), JobKilledError);
    out.kill_stats = loop.last_run();
  }
  if (corrupt) corrupt(dir.path());

  options.resume = true;
  SqLoop loop(fixture.Url(), options);
  out.resumed = Canonical(loop.Execute(query));
  out.resume_stats = loop.last_run();
  return out;
}

TEST(RecoveryTest, PageRankKilledMidRunResumesBitIdenticalAllModes) {
  const graph::Graph g = graph::MakeWebGraph(120, 3, 7);
  const std::string query = workloads::PageRankQuery(6);
  for (const ExecutionMode mode :
       {ExecutionMode::kSingleThread, ExecutionMode::kSync,
        ExecutionMode::kAsync, ExecutionMode::kAsyncPriority}) {
    SCOPED_TRACE(ExecutionModeName(mode));
    // threads=1 pins the async task order, so PageRank's floating-point
    // summation order — and the comparison — is exact (see the resilience
    // suite for the same reasoning).
    const auto r =
        KillThenResume(g, query, mode, /*threads=*/1, /*kill_round=*/3);
    EXPECT_EQ(r.clean, r.resumed);
    // Kill fires at the start of round 3: rounds 1 and 2 completed and were
    // checkpointed (cadence 1), so the resume picks up after round 2.
    EXPECT_EQ(r.kill_stats.checkpoints_written, 2u);
    EXPECT_EQ(r.resume_stats.resumed_from_round, 2);
  }
}

TEST(RecoveryTest, SsspResumesBitIdenticalMultiThreaded) {
  // SSSP's Gather is a MIN — order-independent exactly — so the fixpoint is
  // bit-identical at any thread count, interrupted or not.
  const graph::Graph g = graph::MakeEgoNetGraph(6, 12, 0.25, 5);
  const std::string query = workloads::SsspAllQuery(1);
  for (const ExecutionMode mode :
       {ExecutionMode::kSync, ExecutionMode::kAsync,
        ExecutionMode::kAsyncPriority}) {
    SCOPED_TRACE(ExecutionModeName(mode));
    const auto r =
        KillThenResume(g, query, mode, /*threads=*/3, /*kill_round=*/2);
    EXPECT_EQ(r.clean, r.resumed);
    EXPECT_EQ(r.resume_stats.resumed_from_round, 1);
  }
}

TEST(RecoveryTest, KillBeforeFirstCheckpointFallsBackToFreshRun) {
  // Killed at the start of round 1 nothing was ever checkpointed; `resume`
  // must degrade gracefully to a fresh — and still correct — run.
  const graph::Graph g = graph::MakeWebGraph(80, 3, 5);
  const std::string query = workloads::PageRankQuery(4);
  for (const ExecutionMode mode :
       {ExecutionMode::kSingleThread, ExecutionMode::kSync}) {
    SCOPED_TRACE(ExecutionModeName(mode));
    const auto r =
        KillThenResume(g, query, mode, /*threads=*/1, /*kill_round=*/1);
    EXPECT_EQ(r.clean, r.resumed);
    EXPECT_EQ(r.kill_stats.checkpoints_written, 0u);
    EXPECT_EQ(r.resume_stats.resumed_from_round, 0);
  }
}

TEST(RecoveryTest, KillAtFinalRoundResumesAndFinishes) {
  const graph::Graph g = graph::MakeWebGraph(80, 3, 5);
  const std::string query = workloads::PageRankQuery(4);
  for (const ExecutionMode mode :
       {ExecutionMode::kSingleThread, ExecutionMode::kSync}) {
    SCOPED_TRACE(ExecutionModeName(mode));
    // Learn the job's length from an uninterrupted run, then kill at the
    // very last round: the resume re-executes exactly one round.
    const int64_t rounds = [&] {
      CoreFixtureBase fixture("postgres");
      fixture.LoadGraph(g);
      SqLoop loop(fixture.Url(), BaseOptions(mode, 1));
      loop.Execute(query);
      return loop.last_run().iterations;
    }();
    ASSERT_GT(rounds, 2);
    const auto r =
        KillThenResume(g, query, mode, /*threads=*/1, /*kill_round=*/rounds);
    EXPECT_EQ(r.clean, r.resumed);
    EXPECT_EQ(r.resume_stats.resumed_from_round, rounds - 1);
    EXPECT_EQ(r.resume_stats.iterations, rounds);
  }
}

TEST(RecoveryTest, CheckpointCadenceControlsResumePoint) {
  // Cadence 2 checkpoints rounds 2 and 4 only; a kill at round 5 therefore
  // replays round 5 from the round-4 checkpoint, and the rounds 1/3 state
  // was never persisted.
  const graph::Graph g = graph::MakeWebGraph(120, 3, 7);
  const std::string query = workloads::PageRankQuery(6);
  const auto r = KillThenResume(g, query, ExecutionMode::kSync, /*threads=*/1,
                                /*kill_round=*/5, /*cadence=*/2);
  EXPECT_EQ(r.clean, r.resumed);
  EXPECT_EQ(r.kill_stats.checkpoints_written, 2u);
  EXPECT_EQ(r.resume_stats.resumed_from_round, 4);
}

TEST(RecoveryTest, TornManifestFallsBackToPreviousCheckpoint) {
  // A kill at round 4 leaves the two newest checkpoints (rounds 2 and 3)
  // on disk. Truncating round 3's manifest mid-file simulates a crash
  // during the (non-atomic-rename) window; recovery must skip it and
  // resume from round 2 — and still converge bit-identically.
  const graph::Graph g = graph::MakeWebGraph(120, 3, 7);
  const std::string query = workloads::PageRankQuery(6);
  const auto r = KillThenResume(
      g, query, ExecutionMode::kSingleThread, /*threads=*/1, /*kill_round=*/4,
      /*cadence=*/1, [](const std::string& root) {
        const auto ckpts = CheckpointsNewestFirst(root);
        ASSERT_EQ(ckpts.size(), 2u);  // pruned to the two newest
        TruncateFile(ckpts[0] / "manifest");
      });
  EXPECT_EQ(r.clean, r.resumed);
  EXPECT_EQ(r.resume_stats.resumed_from_round, 2);
}

TEST(RecoveryTest, CorruptDumpFileFallsBackToPreviousCheckpoint) {
  // The manifest of the newest checkpoint is intact but one partition dump
  // has a flipped byte: the CRC footer (and the manifest's content hash)
  // must catch it and recovery must fall back one checkpoint.
  const graph::Graph g = graph::MakeEgoNetGraph(6, 12, 0.25, 5);
  const std::string query = workloads::SsspAllQuery(1);
  const auto r = KillThenResume(
      g, query, ExecutionMode::kSync, /*threads=*/2, /*kill_round=*/3,
      /*cadence=*/1, [](const std::string& root) {
        const auto ckpts = CheckpointsNewestFirst(root);
        ASSERT_EQ(ckpts.size(), 2u);
        for (const auto& entry : fs::directory_iterator(ckpts[0])) {
          if (entry.path().extension() == ".dump") {
            FlipByte(entry.path());
            return;
          }
        }
        FAIL() << "no dump file in " << ckpts[0];
      });
  EXPECT_EQ(r.clean, r.resumed);
  EXPECT_EQ(r.resume_stats.resumed_from_round, 1);
}

TEST(RecoveryTest, AllCheckpointsCorruptFallsBackToFreshRun) {
  const graph::Graph g = graph::MakeWebGraph(80, 3, 5);
  const std::string query = workloads::PageRankQuery(4);
  const auto r = KillThenResume(
      g, query, ExecutionMode::kSync, /*threads=*/1, /*kill_round=*/3,
      /*cadence=*/1, [](const std::string& root) {
        for (const auto& ckpt : CheckpointsNewestFirst(root)) {
          TruncateFile(ckpt / "manifest");
        }
      });
  EXPECT_EQ(r.clean, r.resumed);
  EXPECT_EQ(r.resume_stats.resumed_from_round, 0);
}

TEST(RecoveryTest, UrlKnobsEnableCheckpointingWithoutOptions) {
  // checkpoint_every / checkpoint_dir carried by the connection URL apply
  // when the per-call options leave them unset, so a deployment can turn
  // on durability without touching call sites.
  const graph::Graph g = graph::MakeWebGraph(80, 3, 5);
  const std::string query = workloads::PageRankQuery(4);
  std::vector<std::string> clean;
  {
    CoreFixtureBase fixture("postgres");
    fixture.LoadGraph(g);
    SqLoop loop(fixture.Url(), BaseOptions(ExecutionMode::kSync, 1));
    clean = Canonical(loop.Execute(query));
  }

  CoreFixtureBase fixture("postgres");
  fixture.LoadGraph(g);
  ScopedCheckpointDir dir;
  const std::string ckpt_params =
      "&checkpoint_every=1&checkpoint_dir=" + dir.path();
  {
    SqLoop loop(fixture.Url() + ckpt_params + "&fault_kill_at_round=3",
                BaseOptions(ExecutionMode::kSync, 1));
    EXPECT_THROW(loop.Execute(query), JobKilledError);
    EXPECT_EQ(loop.last_run().checkpoints_written, 2u);
  }
  SqloopOptions options = BaseOptions(ExecutionMode::kSync, 1);
  options.resume = true;
  SqLoop loop(fixture.Url() + ckpt_params, options);
  EXPECT_EQ(Canonical(loop.Execute(query)), clean);
  EXPECT_EQ(loop.last_run().resumed_from_round, 2);
}

TEST(RecoveryTest, ResumeComposesWithFaultInjectionAndRetries) {
  // Checkpointing, the retry ladder, and the plan cache all run in the same
  // job: drops and transient errors force retries before AND after the
  // kill, and the resumed run — against the very same faulted URL, whose
  // shared injector has latched the kill — still converges bit-identically.
  const graph::Graph g = graph::MakeWebGraph(120, 3, 7);
  const std::string query = workloads::PageRankQuery(6);
  std::vector<std::string> clean;
  {
    CoreFixtureBase fixture("postgres");
    fixture.LoadGraph(g);
    SqLoop loop(fixture.Url(), BaseOptions(ExecutionMode::kSync, 1));
    clean = Canonical(loop.Execute(query));
  }

  CoreFixtureBase fixture("postgres");
  fixture.LoadGraph(g);
  ScopedCheckpointDir dir;
  const std::string faulted_url =
      fixture.Url() +
      "&fault_seed=42&fault_drop_rate=0.1&fault_transient_rate=0.1"
      "&fault_kill_at_round=3";
  SqloopOptions options = BaseOptions(ExecutionMode::kSync, 1);
  options.checkpoint_every = 1;
  options.checkpoint_dir = dir.path();
  options.retry.max_attempts = 10;
  options.retry.backoff_base_ms = 0;
  {
    SqLoop loop(faulted_url, options);
    EXPECT_THROW(loop.Execute(query), JobKilledError);
    EXPECT_GT(loop.last_run().checkpoints_written, 0u);
  }
  options.resume = true;
  SqLoop loop(faulted_url, options);
  EXPECT_EQ(Canonical(loop.Execute(query)), clean);
  EXPECT_GT(loop.last_run().resumed_from_round, 0);
  EXPECT_GT(loop.last_run().retries, 0u);
}

TEST(RecoveryTest, StragglerSpeculationKeepsResultExact) {
  // A seeded slow fault freezes one worker task for 400ms; the watchdog
  // must claim it, re-execute the remaining pieces on a spare connection,
  // and land on the exact same fixpoint. Which statement draws the slow
  // fault depends on thread interleaving, so several trigger offsets are
  // tried — every attempt must be correct, and at least one must fire the
  // speculation machinery.
  const graph::Graph g = graph::MakeEgoNetGraph(6, 12, 0.25, 5);
  const std::string query = workloads::SsspAllQuery(1);
  std::vector<std::string> clean;
  {
    CoreFixtureBase fixture("postgres");
    fixture.LoadGraph(g);
    SqLoop loop(fixture.Url(), BaseOptions(ExecutionMode::kSync, 2));
    clean = Canonical(loop.Execute(query));
  }

  bool fired = false;
  for (const int every : {60, 75, 90, 110, 50}) {
    SCOPED_TRACE("fault_slow_every=" + std::to_string(every));
    CoreFixtureBase fixture("postgres");
    fixture.LoadGraph(g);
    SqloopOptions options = BaseOptions(ExecutionMode::kSync, 2);
    options.straggler_factor = 3.0;
    options.straggler_min_ms = 30;
    SqLoop loop(fixture.Url() + "&fault_seed=9&fault_slow_every=" +
                    std::to_string(every) + "&fault_slow_us=400000&fault_max=1",
                options);
    EXPECT_EQ(Canonical(loop.Execute(query)), clean);
    const RunStats& stats = loop.last_run();
    EXPECT_EQ(stats.speculative_tasks,
              stats.speculative_wins + stats.speculative_losses);
    if (stats.speculative_tasks > 0) {
      fired = true;
      break;
    }
  }
  EXPECT_TRUE(fired) << "no trigger offset landed the slow fault on a task";
}

TEST(RecoveryTest, TasksStrandedOnRetiredWorkersRebalanceToSurvivors) {
  // Connection opens fail for the first four attempts (server-side
  // injector, installed after the master connected): one or two of the
  // three workers exhaust their open budget and retire, and the tasks
  // their threads keep pulling must bounce to the surviving workers —
  // visible as partitions_rebalanced — instead of all falling back to the
  // master.
  const graph::Graph g = graph::MakeEgoNetGraph(6, 12, 0.25, 5);
  const std::string query = workloads::SsspAllQuery(1);
  std::vector<std::string> clean;
  {
    CoreFixtureBase fixture("postgres");
    fixture.LoadGraph(g);
    SqLoop loop(fixture.Url(), BaseOptions(ExecutionMode::kSync, 3));
    clean = Canonical(loop.Execute(query));
  }

  CoreFixtureBase fixture("postgres");
  fixture.LoadGraph(g);
  SqloopOptions options = BaseOptions(ExecutionMode::kSync, 3);
  options.retry.max_attempts = 2;
  options.retry.backoff_base_ms = 0;
  SqLoop loop(fixture.Url(), options);

  minidb::Server* server = dbc::DriverManager::FindHost(HostOf(fixture.Url()));
  ASSERT_NE(server, nullptr);
  FaultConfig config;
  config.connect_failure_rate = 1.0;
  // The pool's three pre-opens fail transiently (3 faults, re-attempted by
  // the first task); of the 4 remaining, some worker must draw two in a
  // row and retire (3 workers x 1 forgiven failure only covers 3), while
  // retiring all three would need 6 — so survivors always remain.
  config.max_faults = 7;
  server->set_fault_injector(std::make_shared<FaultInjector>(config));

  const auto result = Canonical(loop.Execute(query));
  server->set_fault_injector(nullptr);

  EXPECT_EQ(result, clean);
  const RunStats& stats = loop.last_run();
  EXPECT_GE(stats.workers_retired, 1u);
  EXPECT_LE(stats.workers_retired, 2u);  // never all three
  EXPECT_GE(stats.partitions_rebalanced, 1u);
}

TEST(RecoveryTest, ContradictoryFaultKnobsAreRejected) {
  const auto parse = [](const std::string& params) {
    return dbc::ConnectionConfig::Parse("minidb://h/db?" + params);
  };
  // An explicitly zeroed slow trigger next to a slow delay can never fire.
  EXPECT_THROW(parse("fault_slow_us=500&fault_slow_rate=0"),
               ConnectionError);
  EXPECT_THROW(parse("fault_slow_us=500&fault_slow_every=0"),
               ConnectionError);
  // fault_max=0 disables every configured statement fault.
  EXPECT_THROW(parse("fault_max=0&fault_drop_rate=0.5"), ConnectionError);
  EXPECT_THROW(parse("fault_kill_at_round=-1"), ConnectionError);

  // Legal shapes stay legal: a bare delay (trigger attached later, e.g. by
  // the shell), a kill with no statement faults, and fault_max=0 with only
  // a kill (the kill is not a statement fault and ignores the budget).
  EXPECT_NO_THROW(parse("fault_slow_us=500"));
  EXPECT_NO_THROW(parse("fault_kill_at_round=3"));
  EXPECT_NO_THROW(parse("fault_max=0&fault_kill_at_round=3"));
  EXPECT_EQ(parse("fault_kill_at_round=3").fault.kill_at_round, 3);
}

TEST(RecoveryTest, CompletedJobLeavesNoPendingMessageDumps) {
  // At commit time every message table of a finished round is either
  // dumped or already dropped; after the job completes, the surviving
  // checkpoints must restore without referencing tables of a later round.
  const graph::Graph g = graph::MakeEgoNetGraph(6, 12, 0.25, 5);
  const std::string query = workloads::SsspAllQuery(1);
  CoreFixtureBase fixture("postgres");
  fixture.LoadGraph(g);
  ScopedCheckpointDir dir;
  SqloopOptions options = BaseOptions(ExecutionMode::kAsync, 2);
  options.checkpoint_every = 1;
  options.checkpoint_dir = dir.path();
  SqLoop loop(fixture.Url(), options);
  const auto first = Canonical(loop.Execute(query));
  EXPECT_GT(loop.last_run().checkpoints_written, 0u);

  // Resuming a job that already converged replays only its final round.
  options.resume = true;
  SqLoop again(fixture.Url(), options);
  EXPECT_EQ(Canonical(again.Execute(query)), first);
  EXPECT_GT(again.last_run().resumed_from_round, 0);
}

}  // namespace
}  // namespace sqloop::core
