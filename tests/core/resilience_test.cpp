// The resilience acceptance suite (ctest label: resilience): under seeded
// fault injection — connection drops, transient errors, slowness — every
// execution mode must converge to answers bit-identical to a fault-free
// run, with the retry/reopen/degradation machinery visibly engaged in the
// run's statistics. Faults are injected before the engine applies a
// statement (see DESIGN.md "Failure model & resilience"), so retries are
// exactly-once safe and the comparison below can demand equality, not
// tolerance.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/fault.h"
#include "core/resilience.h"
#include "core/workloads.h"
#include "dbc/driver.h"
#include "dbc/prepared_statement.h"
#include "graph/generators.h"
#include "minidb/server.h"
#include "tests/core/core_test_util.h"

namespace sqloop::core {
namespace {

using testing::CoreFixtureBase;

/// Rows rendered to strings and sorted: the canonical form two runs must
/// agree on bit for bit.
std::vector<std::string> Canonical(const dbc::ResultSet& result) {
  std::vector<std::string> rows;
  rows.reserve(result.rows.size());
  for (const auto& row : result.rows) {
    std::string flat;
    for (const auto& value : row) {
      flat += value.ToString();
      flat += '|';
    }
    rows.push_back(std::move(flat));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// The minidb host name inside a fixture URL ("minidb://<host>/db?...").
std::string HostOf(const std::string& url) {
  const auto start = url.find("://") + 3;
  return url.substr(start, url.find('/', start) - start);
}

/// Thread-safe event collector for OnRetry/OnDegrade.
class ResilienceObserver : public ExecutionObserver {
 public:
  void OnRetry(const RetryEvent& event) override {
    const std::scoped_lock lock(mutex_);
    ++retries_;
    last_error_ = event.error;
  }
  void OnDegrade(const DegradeEvent& event) override {
    const std::scoped_lock lock(mutex_);
    if (event.kind == DegradeEvent::Kind::kWorkerRetired) ++workers_retired_;
    if (event.kind == DegradeEvent::Kind::kMasterTookOver) ++takeovers_;
  }
  int retries() const {
    const std::scoped_lock lock(mutex_);
    return retries_;
  }
  int workers_retired() const {
    const std::scoped_lock lock(mutex_);
    return workers_retired_;
  }
  int takeovers() const {
    const std::scoped_lock lock(mutex_);
    return takeovers_;
  }

 private:
  mutable std::mutex mutex_;
  int retries_ = 0;
  int workers_retired_ = 0;
  int takeovers_ = 0;
  std::string last_error_;
};

/// 10% drops + 10% transient errors, retried under a generous budget with
/// no backoff sleeps (tests should be fast, not patient).
constexpr const char* kFaultParams =
    "&fault_seed=42&fault_drop_rate=0.1&fault_transient_rate=0.1";

SqloopOptions ResilientOptions(ExecutionMode mode, int threads) {
  SqloopOptions options;
  options.mode = mode;
  options.partitions = 8;
  options.threads = threads;
  options.retry.max_attempts = 10;
  options.retry.backoff_base_ms = 0;
  return options;
}

/// Runs `query` fault-free and faulted on two identical fixtures and
/// returns both canonicalized results plus the faulted run's stats.
struct ComparisonResult {
  std::vector<std::string> clean;
  std::vector<std::string> faulted;
  RunStats stats;
};

ComparisonResult RunBothWays(const graph::Graph& g, const std::string& query,
                             const SqloopOptions& options) {
  ComparisonResult out;
  {
    CoreFixtureBase fixture("postgres");
    fixture.LoadGraph(g);
    SqLoop loop(fixture.Url(), options);
    out.clean = Canonical(loop.Execute(query));
  }
  {
    CoreFixtureBase fixture("postgres");
    fixture.LoadGraph(g);
    SqLoop loop(fixture.Url() + kFaultParams, options);
    out.faulted = Canonical(loop.Execute(query));
    out.stats = loop.last_run();
  }
  return out;
}

TEST(ResilienceTest, PageRankBitIdenticalUnderFaultsAllModes) {
  const graph::Graph g = graph::MakeWebGraph(120, 3, 7);
  const std::string query = workloads::PageRankQuery(6);
  for (const ExecutionMode mode :
       {ExecutionMode::kSingleThread, ExecutionMode::kSync,
        ExecutionMode::kAsync, ExecutionMode::kAsyncPriority}) {
    SCOPED_TRACE(ExecutionModeName(mode));
    // threads=1 pins the async schedules: with one worker the task order —
    // and therefore PageRank's floating-point summation order — is
    // identical with and without faults, so equality is exact.
    const auto r = RunBothWays(g, query, ResilientOptions(mode, /*threads=*/1));
    EXPECT_EQ(r.clean, r.faulted);
    EXPECT_GT(r.stats.retries, 0u);
    EXPECT_GT(r.stats.reopened_connections, 0u);
  }
}

TEST(ResilienceTest, SsspBitIdenticalUnderFaultsMultiThreaded) {
  // SSSP's Gather is a MIN — order-independent exactly — so the fixpoint
  // is bit-identical at any thread count, faults or not.
  const graph::Graph g = graph::MakeEgoNetGraph(6, 12, 0.25, 5);
  const std::string query = workloads::SsspAllQuery(1);
  for (const ExecutionMode mode : {ExecutionMode::kSync, ExecutionMode::kAsync}) {
    SCOPED_TRACE(ExecutionModeName(mode));
    const auto r = RunBothWays(g, query, ResilientOptions(mode, /*threads=*/3));
    EXPECT_EQ(r.clean, r.faulted);
    EXPECT_GT(r.stats.retries, 0u);
  }
}

TEST(ResilienceTest, FaultFreeRunsReportZeroResilienceCounters) {
  // Pool-start opens are not recoveries; an undisturbed run must read as
  // undisturbed.
  CoreFixtureBase fixture("postgres");
  fixture.LoadGraph(graph::MakeWebGraph(60, 3, 3));
  SqLoop loop(fixture.Url(), ResilientOptions(ExecutionMode::kSync, 3));
  loop.Execute(workloads::PageRankQuery(3));
  const RunStats& stats = loop.last_run();
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.reopened_connections, 0u);
  EXPECT_EQ(stats.timeouts, 0u);
  EXPECT_EQ(stats.degraded_rounds, 0u);
  EXPECT_EQ(stats.workers_retired, 0u);
}

TEST(ResilienceTest, FatalErrorAbortsPromptlyWithOriginalType) {
  // A fatal error must cut through active fault injection untouched: no
  // retry, no RetryExhausted wrapper, no degradation.
  CoreFixtureBase fixture("postgres");
  fixture.LoadGraph(graph::MakeWebGraph(60, 3, 3));
  auto options = ResilientOptions(ExecutionMode::kSync, 2);
  options.max_iterations_guard = 2;  // PageRank below needs 6 rounds
  // A retry attempt re-runs every statement of its task, each exposed to
  // the injected 20% fault rate, so a 10-attempt budget has a small but
  // real chance of exhausting — retiring a worker for reasons unrelated
  // to what this test asserts (scheduling decides which thread draws
  // which seeded fault). Enough headroom makes exhaustion impossible in
  // practice; backoff is zero, so extra attempts cost nothing.
  options.retry.max_attempts = 50;
  SqLoop loop(fixture.Url() + kFaultParams, options);
  EXPECT_THROW(loop.Execute(workloads::PageRankQuery(6)), ExecutionError);
  EXPECT_LE(loop.last_run().iterations, 2);
  EXPECT_EQ(loop.last_run().workers_retired, 0u);
}

TEST(ResilienceTest, StatementTimeoutsAreEnforcedAndRetried) {
  const graph::Graph g = graph::MakeWebGraph(60, 3, 3);
  const std::string query = workloads::PageRankQuery(3);
  // threads=1: PageRank sums floats, so bit-identical comparison needs a
  // pinned task (and therefore summation) order — see the all-modes test.
  auto options = ResilientOptions(ExecutionMode::kSync, 1);
  options.retry.statement_timeout_ms = 1;

  std::vector<std::string> clean;
  {
    CoreFixtureBase fixture("postgres");
    fixture.LoadGraph(g);
    SqLoop loop(fixture.Url(), options);
    clean = Canonical(loop.Execute(query));
  }
  CoreFixtureBase fixture("postgres");
  fixture.LoadGraph(g);
  // Every 25th statement sleeps 50ms — far past the 1ms deadline, so the
  // injection layer raises TimeoutError instead (capping the sleep at the
  // deadline), and the statement is retried.
  SqLoop loop(fixture.Url() +
                  "&fault_seed=42&fault_slow_every=25&fault_slow_us=50000",
              options);
  const auto result = Canonical(loop.Execute(query));
  EXPECT_EQ(result, clean);
  EXPECT_GT(loop.last_run().timeouts, 0u);
  EXPECT_GT(loop.last_run().retries, 0u);
}

TEST(ResilienceTest, DegradationLadderRetiresWorkersAndMasterFinishes) {
  // SSSP, not PageRank: the clean run computes on two workers while the
  // degraded run finishes master-only, so the comparison needs a Gather
  // whose float result is independent of task order — MIN is, SUM is not.
  const graph::Graph g = graph::MakeEgoNetGraph(6, 12, 0.25, 5);
  const std::string query = workloads::SsspAllQuery(1);
  std::vector<std::string> clean;
  {
    CoreFixtureBase fixture("postgres");
    fixture.LoadGraph(g);
    SqLoop loop(fixture.Url(), ResilientOptions(ExecutionMode::kSync, 2));
    clean = Canonical(loop.Execute(query));
  }

  CoreFixtureBase fixture("postgres");
  fixture.LoadGraph(g);
  auto options = ResilientOptions(ExecutionMode::kSync, 2);
  options.retry.max_attempts = 3;
  SqLoop loop(fixture.Url(), options);
  ResilienceObserver observer;
  loop.set_observer(&observer);

  // Install the injector server-side AFTER the master connection opened:
  // every connection opened from here on — the whole worker pool — fails,
  // the workers retire, and the master (fault-free) re-executes all of
  // their tasks.
  minidb::Server* server = dbc::DriverManager::FindHost(HostOf(fixture.Url()));
  ASSERT_NE(server, nullptr);
  FaultConfig config;
  config.connect_failure_rate = 1.0;
  server->set_fault_injector(std::make_shared<FaultInjector>(config));

  const auto result = Canonical(loop.Execute(query));
  server->set_fault_injector(nullptr);

  EXPECT_EQ(result, clean);
  const RunStats& stats = loop.last_run();
  EXPECT_EQ(stats.workers_retired, 2u);
  EXPECT_GT(stats.degraded_rounds, 0u);
  EXPECT_GT(stats.retries, 0u);
  EXPECT_EQ(observer.workers_retired(), 2);
  EXPECT_GT(observer.takeovers(), 0);
  EXPECT_GT(observer.retries(), 0);
}

TEST(ResilienceTest, DegradationCanBeDisabled) {
  CoreFixtureBase fixture("postgres");
  fixture.LoadGraph(graph::MakeWebGraph(60, 3, 3));
  auto options = ResilientOptions(ExecutionMode::kSync, 2);
  options.retry.max_attempts = 2;
  options.retry.allow_degradation = false;
  SqLoop loop(fixture.Url(), options);

  minidb::Server* server = dbc::DriverManager::FindHost(HostOf(fixture.Url()));
  ASSERT_NE(server, nullptr);
  FaultConfig config;
  config.connect_failure_rate = 1.0;
  server->set_fault_injector(std::make_shared<FaultInjector>(config));

  // With the ladder disabled, exhausting the retry budget is fatal.
  EXPECT_THROW(loop.Execute(workloads::PageRankQuery(3)), RetryExhausted);
  server->set_fault_injector(nullptr);
  EXPECT_EQ(loop.last_run().workers_retired, 0u);
}

TEST(ResilienceTest, NoWorkerConnectionsLeakAfterFailedRun) {
  CoreFixtureBase fixture("postgres");
  fixture.LoadGraph(graph::MakeWebGraph(60, 3, 3));
  auto options = ResilientOptions(ExecutionMode::kSync, 3);
  options.max_iterations_guard = 1;  // forces a mid-run ExecutionError
  SqLoop loop(fixture.Url(), options);

  EXPECT_THROW(loop.Execute(workloads::PageRankQuery(4)), ExecutionError);
  // Deterministic teardown: only the master connection may remain.
  EXPECT_EQ(loop.connection().database().open_connections(), 1);

  // And a successful run afterwards leaves the same single connection.
  loop.Execute(workloads::PageRankQuery(1),
               ResilientOptions(ExecutionMode::kSync, 3));
  EXPECT_EQ(loop.connection().database().open_connections(), 1);
}

TEST(ResilienceTest, PreparedHandleSurvivesDropsAndReopenWithoutRecompiling) {
  // Interplay of the prepared-execution path with fault injection: a
  // handle's compiled plan lives with the database, so an injected drop +
  // Reopen() must be transparent — same results, and no re-compile (the
  // plan-cache miss count must not move, however many retries happen).
  minidb::Server server;
  dbc::DriverManager::RegisterHost("resilience_prep", &server);
  server.CreateDatabase("db", minidb::EngineProfile::Postgres());
  auto setup = dbc::DriverManager::GetConnection(
      "minidb://resilience_prep/db?latency_us=0");
  setup->Execute("CREATE TABLE kv (k BIGINT, v BIGINT)");
  setup->Execute("INSERT INTO kv VALUES (1, 10), (2, 20), (3, 30)");

  auto conn = dbc::DriverManager::GetConnection(
      "minidb://resilience_prep/db?latency_us=0"
      "&fault_seed=7&fault_drop_rate=0.2&fault_transient_rate=0.1");
  int reopens = 0;
  // The PREPARE round trip is fault-exposed like any statement.
  std::optional<dbc::PreparedStatement> stmt;
  for (int attempt = 0; !stmt.has_value(); ++attempt) {
    ASSERT_LT(attempt, 100) << "prepare retry budget exhausted";
    try {
      stmt.emplace(conn->Prepare("SELECT v FROM kv WHERE k = ?"));
    } catch (const ConnectionLostError&) {
      conn->Reopen();
      ++reopens;
    } catch (const TransientError&) {
    }
  }

  auto& cache = conn->database().plan_cache();
  const uint64_t misses0 = cache.misses();
  for (int round = 0; round < 200; ++round) {
    const int64_t k = round % 3 + 1;
    stmt->SetInt64(1, k);
    for (int attempt = 0;; ++attempt) {
      ASSERT_LT(attempt, 100) << "execute retry budget exhausted";
      try {
        const auto result = stmt->ExecuteQuery();
        ASSERT_EQ(result.rows.size(), 1u);
        EXPECT_EQ(result.rows[0][0].as_int(), k * 10);
        break;
      } catch (const ConnectionLostError&) {
        conn->Reopen();
        ++reopens;
      } catch (const TransientError&) {
      }
    }
  }
  // The seeded 20% drop rate over 200+ statements guarantees real reopens,
  // and none of them sent the statement text back through the compiler.
  EXPECT_GT(reopens, 0);
  EXPECT_EQ(cache.misses(), misses0);
  dbc::DriverManager::RegisterHost("resilience_prep", nullptr);
}

TEST(ResilienceTest, PlanCacheIsInvisibleUnderFaults) {
  // The cache-on and cache-off (ablated) worlds must converge identically
  // even while drops and transient faults force retries mid-run. threads=1
  // pins the task order, so PageRank's float summation order — and thus
  // the comparison — is exact (see the all-modes test above).
  const graph::Graph g = graph::MakeWebGraph(100, 3, 11);
  const std::string query = workloads::PageRankQuery(5);
  for (const ExecutionMode mode :
       {ExecutionMode::kSingleThread, ExecutionMode::kSync}) {
    SCOPED_TRACE(ExecutionModeName(mode));
    const auto options = ResilientOptions(mode, /*threads=*/1);
    std::vector<std::string> results[2];
    for (const bool cache_on : {true, false}) {
      CoreFixtureBase fixture("postgres");
      fixture.LoadGraph(g);
      dbc::DriverManager::GetConnection(fixture.Url())
          ->database()
          .plan_cache()
          .set_enabled(cache_on);
      SqLoop loop(fixture.Url() + kFaultParams, options);
      results[cache_on ? 0 : 1] = Canonical(loop.Execute(query));
      EXPECT_GT(loop.last_run().retries, 0u);
    }
    EXPECT_EQ(results[0], results[1]);
  }
}

}  // namespace
}  // namespace sqloop::core
