#include "core/script_gen.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/workloads.h"
#include "graph/generators.h"
#include "graph/reference.h"
#include "sql/parser.h"
#include "tests/core/core_test_util.h"

namespace sqloop::core {
namespace {

using testing::CoreFixtureBase;

TEST(ScriptGen, HundredIterationScriptExceeds200Lines) {
  // Paper §VI-D: "SQL scripts in most cases were more than 200 lines"
  // versus 20-25 lines of iterative CTE.
  const auto stmt = sql::ParseStatement(workloads::PageRankQuery(100));
  const std::string script =
      GenerateIterativeScript(stmt->with, Dialect::kPostgres, 100);
  const auto lines = std::count(script.begin(), script.end(), '\n');
  EXPECT_GT(lines, 200);
  const std::string cte = workloads::PageRankQuery(100);
  const auto cte_lines = std::count(cte.begin(), cte.end(), '\n') + 1;
  EXPECT_LT(cte_lines, 30);
}

TEST(ScriptGen, ScriptIsValidSqlPerDialect) {
  const auto stmt = sql::ParseStatement(workloads::PageRankQuery(100));
  for (const Dialect dialect :
       {Dialect::kPostgres, Dialect::kMySql, Dialect::kMariaDb}) {
    const std::string script =
        GenerateIterativeScript(stmt->with, dialect, 3);
    // Every statement must re-parse.
    EXPECT_NO_THROW(sql::ParseScript(script)) << DialectName(dialect);
  }
  const std::string pg =
      GenerateIterativeScript(stmt->with, Dialect::kPostgres, 2);
  EXPECT_NE(pg.find("UNLOGGED"), std::string::npos);
  const std::string my =
      GenerateIterativeScript(stmt->with, Dialect::kMySql, 2);
  EXPECT_NE(my.find("ENGINE=MyISAM"), std::string::npos);
}

TEST(ScriptGen, BaselineMatchesReferencePageRank) {
  const graph::Graph g = graph::MakeWebGraph(120, 3, 21);
  CoreFixtureBase fixture("postgres");
  fixture.LoadGraph(g);
  auto conn = dbc::DriverManager::GetConnection(fixture.Url());

  const auto stmt = sql::ParseStatement(workloads::PageRankQuery(8));
  RunStats stats;
  SqloopOptions options;
  const auto result =
      RunScriptBaseline(*conn, stmt->with, options, stats);
  const auto reference = graph::PageRankReference(g, 8);

  ASSERT_EQ(result.rows.size(), reference.rank.size());
  for (const auto& row : result.rows) {
    EXPECT_NEAR(row[1].as_double(), reference.rank.at(row[0].as_int()),
                1e-9);
  }
  EXPECT_EQ(stats.iterations, 8);
  EXPECT_NE(stats.fallback_reason.find("script"), std::string::npos);
}

TEST(ScriptGen, BaselineHonorsZeroUpdates) {
  const graph::Graph g = graph::MakeHostGraph(3, 4, 8, 3);
  CoreFixtureBase fixture("mariadb");
  fixture.LoadGraph(g);
  auto conn = dbc::DriverManager::GetConnection(fixture.Url());

  const auto stmt = sql::ParseStatement(workloads::DescendantQuery(0));
  RunStats stats;
  SqloopOptions options;
  const auto result =
      RunScriptBaseline(*conn, stmt->with, options, stats);
  const auto bfs = graph::BfsHops(g, 0);
  // Everything reachable shows up (the source via its seeded Delta of 0).
  EXPECT_EQ(result.rows.size(), bfs.size());
}

TEST(ScriptGen, MissingColumnListThrows) {
  const auto stmt = sql::ParseStatement(
      "WITH ITERATIVE r AS (SELECT 1 ITERATE SELECT 1 "
      "UNTIL 2 ITERATIONS) SELECT * FROM r");
  EXPECT_THROW(GenerateIterativeScript(stmt->with, Dialect::kPostgres, 2),
               AnalysisError);
}

}  // namespace
}  // namespace sqloop::core
