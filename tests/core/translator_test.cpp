#include "core/translator.h"

#include <gtest/gtest.h>

#include "sql/parser.h"

namespace sqloop::core {
namespace {

TEST(Translator, CreateTableRespectsDialect) {
  const std::vector<sql::ColumnDef> columns = {
      {"id", ValueType::kInt64, ""}, {"v", ValueType::kDouble, ""}};
  const Translator pg(Dialect::kPostgres);
  const std::string pg_sql = pg.CreateTableSql("t", columns, 0);
  EXPECT_NE(pg_sql.find("UNLOGGED"), std::string::npos);
  EXPECT_NE(pg_sql.find("DOUBLE PRECISION"), std::string::npos);
  EXPECT_NE(pg_sql.find("PRIMARY KEY"), std::string::npos);

  const Translator my(Dialect::kMySql);
  const std::string my_sql = my.CreateTableSql("t", columns, 0);
  EXPECT_EQ(my_sql.find("UNLOGGED"), std::string::npos);
  EXPECT_NE(my_sql.find("ENGINE=MyISAM"), std::string::npos);
  EXPECT_EQ(my_sql.find("PRECISION"), std::string::npos);
}

TEST(Translator, DropTable) {
  const Translator t(Dialect::kCanonical);
  EXPECT_EQ(t.DropTableSql("x"), "DROP TABLE IF EXISTS x");
  EXPECT_EQ(t.DropTableSql("x", false), "DROP TABLE x");
}

TEST(Translator, RenameBaseTablesKeepsQualifierWorking) {
  auto select = sql::ParseSelect(
      "SELECT PageRank.Node FROM PageRank JOIN PageRank AS Other "
      "ON PageRank.Node = Other.Node");
  RenameBaseTables(*select, {{"pagerank", "pagerank_w"}});
  const std::string out = sql::PrintSelect(*select);
  // Both references point at the working table; the original name (and
  // the explicit alias) keep column references resolving.
  EXPECT_NE(out.find("pagerank_w AS PageRank"), std::string::npos);
  EXPECT_NE(out.find("pagerank_w AS Other"), std::string::npos);
  EXPECT_NE(out.find("PageRank.Node"), std::string::npos);
}

TEST(Translator, RenameBaseTablesIgnoresOtherTables) {
  auto select = sql::ParseSelect("SELECT * FROM edges");
  RenameBaseTables(*select, {{"pagerank", "pagerank_w"}});
  EXPECT_EQ(sql::PrintSelect(*select), "SELECT * FROM edges");
}

TEST(Translator, RequalifyColumns) {
  auto select = sql::ParseSelect("SELECT r.a + s.b FROM r JOIN s ON r.a = s.b");
  RequalifyColumns(*select->cores[0].items[0].expr, "r", "part0");
  EXPECT_NE(sql::PrintExpr(*select->cores[0].items[0].expr).find("part0.a"),
            std::string::npos);
  EXPECT_NE(sql::PrintExpr(*select->cores[0].items[0].expr).find("s.b"),
            std::string::npos);
}

TEST(Translator, SubstituteAggregateReplacesStructurally) {
  auto select =
      sql::ParseSelect("SELECT COALESCE(0.85 * SUM(s.d * e.w), 0.0) FROM t");
  const sql::Expr& expr = *select->cores[0].items[0].expr;
  auto agg_holder = sql::ParseSelect("SELECT SUM(s.d * e.w)");
  const sql::Expr& agg = *agg_holder->cores[0].items[0].expr;
  auto replacement_holder = sql::ParseSelect("SELECT m.total");
  const auto rewritten =
      SubstituteAggregate(expr, agg, *replacement_holder->cores[0].items[0].expr);
  const std::string out = sql::PrintExpr(*rewritten);
  EXPECT_EQ(out.find("SUM"), std::string::npos);
  EXPECT_NE(out.find("m.total"), std::string::npos);
  EXPECT_NE(out.find("0.8"), std::string::npos);  // %.17g spelling
}

}  // namespace
}  // namespace sqloop::core
