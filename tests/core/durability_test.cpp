// Durability-hardening acceptance suite (ctest label: durability).
//
// The heart of the suite is an exhaustive crash-loop driver: a clean
// checkpointed run first *counts* the write/fsync/rename operations the
// durability shim performs, then the driver re-runs the job once per
// (operation kind, ordinal) pair with a crash plan armed at exactly that
// point — alternating between clean crashes and the harshest wreckage the
// shim can model (torn files plus a flipped bit) — and asserts that a
// resume on the surviving files completes bit-identical to the golden run,
// in all four execution modes. No crash point anywhere in a checkpoint
// cycle may lose a committed round or corrupt the answer.
//
// The second half covers in-memory corruption: a bit flipped into the CTE
// state table mid-job must be caught by the scrub pass (never silently
// folded into the answer), quarantine the table, and — with repair enabled
// — be healed from the newest valid checkpoint with a bit-identical final
// result; with repair disabled the job must fail loudly with a
// non-transient IntegrityError.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/fault_file.h"
#include "core/workloads.h"
#include "dbc/driver.h"
#include "graph/generators.h"
#include "minidb/database.h"
#include "minidb/server.h"
#include "minidb/table.h"
#include "server/job_server.h"
#include "tests/core/core_test_util.h"

namespace sqloop::core {
namespace {

namespace fs = std::filesystem;
using testing::CoreFixtureBase;

/// Rows rendered to strings and sorted: the canonical form two runs must
/// agree on bit for bit.
std::vector<std::string> Canonical(const dbc::ResultSet& result) {
  std::vector<std::string> rows;
  rows.reserve(result.rows.size());
  for (const auto& row : result.rows) {
    std::string flat;
    for (const auto& value : row) {
      flat += value.ToString();
      flat += '|';
    }
    rows.push_back(std::move(flat));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// The minidb host name inside a fixture URL ("minidb://<host>/db?...").
std::string HostOf(const std::string& url) {
  const auto start = url.find("://") + 3;
  return url.substr(start, url.find('/', start) - start);
}

/// A unique on-disk checkpoint directory, removed when the test ends.
class ScopedCheckpointDir {
 public:
  ScopedCheckpointDir() {
    static std::atomic<uint64_t> counter{0};
    dir_ = (fs::temp_directory_path() /
            ("sqloop_durability_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter.fetch_add(1))))
               .string();
    fs::create_directories(dir_);
  }
  ~ScopedCheckpointDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  const std::string& path() const { return dir_; }

 private:
  std::string dir_;
};

SqloopOptions BaseOptions(ExecutionMode mode) {
  SqloopOptions options;
  options.mode = mode;
  options.partitions = 2;
  // threads=1 pins the async task order, so PageRank's floating-point
  // summation order — and the bit-for-bit comparison — is exact, and the
  // shim's operation ordinals are deterministic across re-runs.
  options.threads = 1;
  return options;
}

const ExecutionMode kAllModes[] = {
    ExecutionMode::kSingleThread, ExecutionMode::kSync, ExecutionMode::kAsync,
    ExecutionMode::kAsyncPriority};

// ---------------------------------------------------------------------------
// The exhaustive crash-loop driver
// ---------------------------------------------------------------------------

TEST(DurabilityTest, EveryCrashPointInACheckpointCycleRecoversBitIdentical) {
  const graph::Graph g = graph::MakeWebGraph(40, 3, 5);
  const std::string query = workloads::PageRankQuery(4);
  for (const ExecutionMode mode : kAllModes) {
    SCOPED_TRACE(ExecutionModeName(mode));

    std::vector<std::string> clean;
    {
      CoreFixtureBase fixture("postgres");
      fixture.LoadGraph(g);
      SqLoop loop(fixture.Url(), BaseOptions(mode));
      clean = Canonical(loop.Execute(query));
    }

    // Learning run: one clean checkpointed execution, counting how many
    // publish operations (each is one write + one fsync + one rename) a
    // full checkpoint cycle performs. That count bounds the crash loop —
    // every ordinal in [1, publishes] is a reachable crash point.
    SqloopOptions options = BaseOptions(mode);
    options.checkpoint_every = 1;
    int64_t publishes = 0;
    {
      CoreFixtureBase fixture("postgres");
      fixture.LoadGraph(g);
      ScopedCheckpointDir dir;
      options.checkpoint_dir = dir.path();
      SqLoop loop(fixture.Url(), options);
      FaultFile::ResetCounters();
      ASSERT_EQ(Canonical(loop.Execute(query)), clean);
      const FaultFileCounters counters = FaultFile::counters();
      publishes = static_cast<int64_t>(counters.writes);
      // One publish = exactly one of each operation.
      EXPECT_EQ(counters.fsyncs, counters.writes);
      EXPECT_EQ(counters.renames, counters.writes);
      EXPECT_EQ(counters.crashes, 0u);
    }
    ASSERT_GT(publishes, 0) << "checkpointing never published a file";

    for (const char* kind : {"write", "fsync", "rename"}) {
      for (int64_t n = 1; n <= publishes; ++n) {
        // Alternate crash flavours so both recovery paths are enumerated
        // at every ordinal parity: clean crashes (complete tmp file, final
        // untouched) and the harshest wreckage (torn file, one bit flipped
        // in whatever survives).
        const bool harsh = (n % 2) == 1;
        SCOPED_TRACE(std::string("crash_at_") + kind + "=" +
                     std::to_string(n) + (harsh ? " (torn+flip)" : ""));
        CoreFixtureBase fixture("postgres");
        fixture.LoadGraph(g);
        ScopedCheckpointDir dir;
        SqloopOptions crash_options = BaseOptions(mode);
        crash_options.checkpoint_every = 1;
        crash_options.checkpoint_dir = dir.path();
        {
          SqLoop loop(fixture.Url() + "&fault_crash_at_" + kind + "=" +
                          std::to_string(n) +
                          (harsh ? "&fault_torn_writes=1&fault_flip_bit=1"
                                 : ""),
                      crash_options);
          EXPECT_THROW(loop.Execute(query), CrashPointError);
          EXPECT_EQ(FaultFile::counters().crashes, 1u);
        }
        // Resume on the same fixture: the plain URL disarms the plan, the
        // wreckage on disk stays. Whatever the crash left behind — a torn
        // tmp, a complete-but-unrenamed tmp, a torn final file, a flipped
        // bit — recovery must reject invalid artifacts and land on the
        // golden answer.
        crash_options.resume = true;
        SqLoop loop(fixture.Url(), crash_options);
        EXPECT_EQ(Canonical(loop.Execute(query)), clean);
      }
    }
  }
}

TEST(DurabilityTest, CrashPointErrorIsFatalNotTransient) {
  const CrashPointError crash("test");
  EXPECT_FALSE(IsTransientError(crash));
  const IntegrityError integrity("test");
  EXPECT_FALSE(IsTransientError(integrity));
}

// ---------------------------------------------------------------------------
// Scrub: mid-job corruption detection and repair
// ---------------------------------------------------------------------------

/// Flips one bit inside the CTE state table after round `at_round`
/// completes, exactly once, through the server-side table handle — the
/// in-memory equivalent of silent media corruption.
class CorruptOnceObserver : public ExecutionObserver {
 public:
  CorruptOnceObserver(std::string host, int64_t at_round)
      : host_(std::move(host)), at_round_(at_round) {}

  void OnRoundEnd(const telemetry::IterationStats& round) override {
    if (fired_ || round.round != at_round_) return;
    minidb::Server* server = dbc::DriverManager::FindHost(host_);
    ASSERT_NE(server, nullptr);
    const std::shared_ptr<minidb::Database> db = server->FindDatabase("db");
    ASSERT_NE(db, nullptr);
    // Prefer a partition table (parallel modes); fall back to the CTE
    // state table itself (single-thread mode).
    std::string victim;
    for (const std::string& name : db->TableNames()) {
      if (name.size() >= 4 && name.substr(name.size() - 4) == "_pt0") {
        victim = name;
        break;
      }
      if (name == "pagerank") victim = name;
    }
    ASSERT_FALSE(victim.empty()) << "no CTE state table to corrupt";
    const std::shared_ptr<minidb::Table> table = db->FindTable(victim);
    ASSERT_NE(table, nullptr);
    {
      const std::unique_lock<std::shared_mutex> lock(table->lock());
      table->CorruptCellForTesting(0, 1);
    }
    fired_ = true;
  }

  bool fired() const { return fired_; }

 private:
  const std::string host_;
  const int64_t at_round_;
  bool fired_ = false;
};

TEST(DurabilityTest, ScrubDetectsMidJobCorruptionAndRepairsBitIdentical) {
  const graph::Graph g = graph::MakeWebGraph(60, 3, 5);
  const std::string query = workloads::PageRankQuery(5);
  for (const ExecutionMode mode :
       {ExecutionMode::kSingleThread, ExecutionMode::kSync}) {
    SCOPED_TRACE(ExecutionModeName(mode));
    std::vector<std::string> clean;
    {
      CoreFixtureBase fixture("postgres");
      fixture.LoadGraph(g);
      SqLoop loop(fixture.Url(), BaseOptions(mode));
      clean = Canonical(loop.Execute(query));
    }

    CoreFixtureBase fixture("postgres");
    fixture.LoadGraph(g);
    ScopedCheckpointDir dir;
    SqloopOptions options = BaseOptions(mode);
    options.checkpoint_every = 1;
    options.checkpoint_dir = dir.path();
    options.scrub_every = 1;
    CorruptOnceObserver observer(HostOf(fixture.Url()), /*at_round=*/2);
    SqLoop loop(fixture.Url(), options);
    loop.set_observer(&observer);
    // The corruption lands after round 2's merge and before round 2's
    // scrub: the scrub must catch it before the round is checkpointed, and
    // the repair ladder must restart from the round-1 checkpoint — never
    // sealing, or answering from, corrupt state.
    EXPECT_EQ(Canonical(loop.Execute(query)), clean);
    EXPECT_TRUE(observer.fired());
    const RunStats& stats = loop.last_run();
    EXPECT_GE(stats.integrity_repairs, 1u);
    EXPECT_GT(stats.scrub_passes, 0u);
    EXPECT_EQ(stats.resumed_from_round, 1);
  }
}

TEST(DurabilityTest, WithoutRepairCorruptionFailsLoudlyNeverSilently) {
  const graph::Graph g = graph::MakeWebGraph(60, 3, 5);
  const std::string query = workloads::PageRankQuery(5);
  CoreFixtureBase fixture("postgres");
  fixture.LoadGraph(g);
  SqloopOptions options = BaseOptions(ExecutionMode::kSingleThread);
  options.scrub_every = 1;
  options.scrub_repair = false;
  CorruptOnceObserver observer(HostOf(fixture.Url()), /*at_round=*/2);
  SqLoop loop(fixture.Url(), options);
  loop.set_observer(&observer);
  try {
    loop.Execute(query);
    FAIL() << "corrupted job completed without an integrity error";
  } catch (const IntegrityError& e) {
    // Loud, attributable, and non-transient: no retry machinery may eat it
    // and no result may be returned.
    EXPECT_NE(std::string(e.what()).find("integrity violation"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("content checksum"),
              std::string::npos);
    EXPECT_FALSE(IsTransientError(e));
  }
  EXPECT_TRUE(observer.fired());
}

TEST(DurabilityTest, RepairWithoutCheckpointsRestartsFromScratch) {
  // No checkpoint to heal from: the repair ladder must still converge by
  // restarting the job from its seed — correct, just slower.
  const graph::Graph g = graph::MakeWebGraph(60, 3, 5);
  const std::string query = workloads::PageRankQuery(5);
  std::vector<std::string> clean;
  {
    CoreFixtureBase fixture("postgres");
    fixture.LoadGraph(g);
    SqLoop loop(fixture.Url(), BaseOptions(ExecutionMode::kSingleThread));
    clean = Canonical(loop.Execute(query));
  }
  CoreFixtureBase fixture("postgres");
  fixture.LoadGraph(g);
  SqloopOptions options = BaseOptions(ExecutionMode::kSingleThread);
  options.scrub_every = 1;
  CorruptOnceObserver observer(HostOf(fixture.Url()), /*at_round=*/2);
  SqLoop loop(fixture.Url(), options);
  loop.set_observer(&observer);
  EXPECT_EQ(Canonical(loop.Execute(query)), clean);
  EXPECT_TRUE(observer.fired());
  EXPECT_GE(loop.last_run().integrity_repairs, 1u);
  EXPECT_EQ(loop.last_run().resumed_from_round, 0);
}

// ---------------------------------------------------------------------------
// CHECK TABLE / quarantine at the SQL surface
// ---------------------------------------------------------------------------

TEST(DurabilityTest, QuarantineBlocksReadsUntilRestored) {
  CoreFixtureBase fixture("postgres");
  auto conn = dbc::DriverManager::GetConnection(fixture.Url());
  conn->Execute(
      "CREATE TABLE t (id BIGINT PRIMARY KEY, v DOUBLE PRECISION, "
      "note VARCHAR)");
  conn->Execute("INSERT INTO t VALUES (1, 0.5, 'a'), (2, 0.25, NULL)");

  const auto check = conn->Execute("CHECK TABLE t");
  ASSERT_EQ(check.rows.size(), 1u);
  EXPECT_EQ(check.rows[0][1].as_text(), "ok");
  EXPECT_EQ(check.rows[0][2].as_int(), 2);

  ScopedCheckpointDir dir;
  const std::string dump = (fs::path(dir.path()) / "t.dump").string();
  conn->Execute("DUMP TABLE t TO '" + dump + "'");

  minidb::Server* server = dbc::DriverManager::FindHost(HostOf(fixture.Url()));
  ASSERT_NE(server, nullptr);
  const auto table = server->FindDatabase("db")->FindTable("t");
  ASSERT_NE(table, nullptr);
  {
    const std::unique_lock<std::shared_mutex> lock(table->lock());
    table->CorruptCellForTesting(0, 1);
  }

  // Detection quarantines; every subsequent access — reads included — is
  // fenced, and dumping the corrupt state is refused.
  EXPECT_THROW(conn->Execute("CHECK TABLE t"), IntegrityError);
  EXPECT_TRUE(table->quarantined());
  EXPECT_THROW(conn->Execute("SELECT * FROM t"), IntegrityError);
  EXPECT_THROW(conn->Execute("INSERT INTO t VALUES (3, 1.0, 'x')"),
               IntegrityError);
  EXPECT_THROW(conn->Execute("DUMP TABLE t TO '" + dump + ".2'"),
               IntegrityError);
  // Repeated CHECK on an already-quarantined table stays loud.
  EXPECT_THROW(conn->Execute("CHECK TABLE t"), IntegrityError);

  // RESTORE rebuilds the table from the last good dump and clears the
  // quarantine with it.
  conn->Execute("RESTORE TABLE t FROM '" + dump + "'");
  const auto again = conn->Execute("CHECK TABLE t");
  EXPECT_EQ(again.rows[0][1].as_text(), "ok");
  EXPECT_EQ(Canonical(conn->Execute("SELECT * FROM t")).size(), 2u);
}

TEST(DurabilityTest, CheckTableOnMissingTableIsAUsageErrorNotCorruption) {
  CoreFixtureBase fixture("postgres");
  auto conn = dbc::DriverManager::GetConnection(fixture.Url());
  EXPECT_THROW(conn->Execute("CHECK TABLE nope"), ExecutionError);
}

// ---------------------------------------------------------------------------
// Checkpoint retention (checkpoint_keep)
// ---------------------------------------------------------------------------

/// All ckpt_<round> directories under `root`.
size_t CountCheckpoints(const std::string& root) {
  size_t n = 0;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (entry.is_directory() &&
        entry.path().filename().string().rfind("ckpt_", 0) == 0) {
      ++n;
    }
  }
  return n;
}

TEST(DurabilityTest, CheckpointKeepControlsRetentionDepth) {
  const graph::Graph g = graph::MakeWebGraph(60, 3, 5);
  const std::string query = workloads::PageRankQuery(6);
  for (const int64_t keep : {1, 3}) {
    SCOPED_TRACE("checkpoint_keep=" + std::to_string(keep));
    CoreFixtureBase fixture("postgres");
    fixture.LoadGraph(g);
    ScopedCheckpointDir dir;
    SqloopOptions options = BaseOptions(ExecutionMode::kSync);
    options.checkpoint_every = 1;
    options.checkpoint_dir = dir.path();
    options.checkpoint_keep = keep;
    SqLoop loop(fixture.Url(), options);
    loop.Execute(query);
    ASSERT_GE(loop.last_run().checkpoints_written,
              static_cast<uint64_t>(keep));
    EXPECT_EQ(CountCheckpoints(dir.path()), static_cast<size_t>(keep));
  }
}

TEST(DurabilityTest, PostCommitVerificationCoversEveryCheckpoint) {
  const graph::Graph g = graph::MakeWebGraph(60, 3, 5);
  const std::string query = workloads::PageRankQuery(4);
  CoreFixtureBase fixture("postgres");
  fixture.LoadGraph(g);
  ScopedCheckpointDir dir;
  SqloopOptions options = BaseOptions(ExecutionMode::kSync);
  options.checkpoint_every = 1;
  options.checkpoint_dir = dir.path();
  options.verify_checkpoints = true;
  SqLoop loop(fixture.Url(), options);
  loop.Execute(query);
  const RunStats& stats = loop.last_run();
  EXPECT_GT(stats.checkpoints_written, 0u);
  EXPECT_EQ(stats.checkpoints_verified, stats.checkpoints_written);
}

// ---------------------------------------------------------------------------
// URL knobs
// ---------------------------------------------------------------------------

TEST(DurabilityTest, DurabilityUrlKnobsParseAndValidate) {
  const auto parse = [](const std::string& params) {
    return dbc::ConnectionConfig::Parse("minidb://h/db?" + params);
  };
  // checkpoint_keep must be a positive retention depth; keeping zero
  // checkpoints would silently disable recovery.
  EXPECT_THROW(parse("checkpoint_keep=0"), ConnectionError);
  EXPECT_THROW(parse("checkpoint_keep=-2"), ConnectionError);
  EXPECT_THROW(parse("checkpoint_keep=2&checkpoint_keep=3"), ConnectionError);
  EXPECT_EQ(parse("checkpoint_keep=5").checkpoint_keep, 5);

  // Crash-wreckage modifiers without a crash point can never fire.
  EXPECT_THROW(parse("fault_torn_writes=1"), ConnectionError);
  EXPECT_THROW(parse("fault_flip_bit=1"), ConnectionError);
  // A crash ordinal of zero means "never" — spell that by omission.
  EXPECT_THROW(parse("fault_crash_at_write=0"), ConnectionError);
  EXPECT_THROW(parse("fault_crash_at_rename=-1"), ConnectionError);

  const auto config = parse(
      "fault_crash_at_write=3&fault_torn_writes=1&fault_flip_bit=1"
      "&fault_seed=7&verify_checkpoints=1&scrub_every=2");
  EXPECT_TRUE(config.has_crash);
  EXPECT_EQ(config.crash.crash_at_write, 3);
  EXPECT_TRUE(config.crash.torn_writes);
  EXPECT_TRUE(config.crash.flip_bit);
  EXPECT_EQ(config.crash.seed, 7u);  // the crash seed follows fault_seed
  EXPECT_TRUE(config.verify_checkpoints);
  EXPECT_EQ(config.scrub_every, 2);
  EXPECT_EQ(parse("").scrub_every, 0);
  EXPECT_FALSE(parse("").has_crash);
}

TEST(DurabilityTest, ScrubUrlKnobEnablesScrubbingWithoutOptions) {
  const graph::Graph g = graph::MakeWebGraph(60, 3, 5);
  const std::string query = workloads::PageRankQuery(4);
  CoreFixtureBase fixture("postgres");
  fixture.LoadGraph(g);
  SqLoop loop(fixture.Url() + "&scrub_every=1",
              BaseOptions(ExecutionMode::kSync));
  loop.Execute(query);
  EXPECT_GT(loop.last_run().scrub_passes, 0u);
}

// ---------------------------------------------------------------------------
// JobServer background scrub
// ---------------------------------------------------------------------------

TEST(DurabilityTest, BackgroundScrubFindsAndQuarantinesCorruptTables) {
  CoreFixtureBase fixture("postgres");
  {
    auto conn = dbc::DriverManager::GetConnection(fixture.Url());
    conn->Execute(
        "CREATE TABLE t (id BIGINT PRIMARY KEY, v DOUBLE PRECISION)");
    conn->Execute("INSERT INTO t VALUES (1, 0.5), (2, 0.25)");
  }
  minidb::Server* backend = dbc::DriverManager::FindHost(HostOf(fixture.Url()));
  ASSERT_NE(backend, nullptr);
  const auto table = backend->FindDatabase("db")->FindTable("t");
  ASSERT_NE(table, nullptr);

  server::JobServerConfig config;
  config.url = fixture.Url();
  config.scrub_interval_ms = 2;
  server::JobServer js(config);

  // A healthy table passes cycles without incident.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  while (js.scrub_cycles() < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(js.scrub_cycles(), 2u);
  EXPECT_GT(js.scrub_tables(), 0u);
  EXPECT_EQ(js.scrub_corruptions(), 0u);

  {
    const std::unique_lock<std::shared_mutex> lock(table->lock());
    table->CorruptCellForTesting(0, 1);
  }
  while (js.scrub_corruptions() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(js.scrub_corruptions(), 1u);
  EXPECT_TRUE(table->quarantined());
  // Quarantine holds at the SQL surface, and the scrubber does not
  // re-count a table it already took out of service.
  {
    auto conn = dbc::DriverManager::GetConnection(fixture.Url());
    EXPECT_THROW(conn->Execute("SELECT * FROM t"), IntegrityError);
  }
  const uint64_t cycles_then = js.scrub_cycles();
  while (js.scrub_cycles() < cycles_then + 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(js.scrub_corruptions(), 1u);
  js.Drain();
}

}  // namespace
}  // namespace sqloop::core
