#include "core/sqloop.h"

#include <gtest/gtest.h>

#include <atomic>

#include "common/error.h"
#include "core/workloads.h"
#include "graph/generators.h"
#include "telemetry/hooks.h"
#include "tests/core/core_test_util.h"

namespace sqloop::core {
namespace {

using testing::CoreFixtureBase;

TEST(Facade, RegularSqlPassesThrough) {
  CoreFixtureBase fixture("postgres");
  SqLoop loop(fixture.Url());
  loop.Execute("CREATE UNLOGGED TABLE t (a BIGINT PRIMARY KEY, "
               "b DOUBLE PRECISION)");
  loop.Execute("INSERT INTO t VALUES (1, 0.5), (2, 1.5)");
  const auto result = loop.Execute("SELECT SUM(b) FROM t");
  EXPECT_DOUBLE_EQ(result.rows.at(0).at(0).as_double(), 2.0);
}

TEST(Facade, TranslatesCanonicalDdlForEachEngine) {
  // The same canonical statement must work against every engine — the
  // paper's "uniform SQL expression" claim. Note `DOUBLE` would be
  // rejected raw by the postgres profile; the translator fixes it up.
  for (const char* engine : {"postgres", "mysql", "mariadb"}) {
    CoreFixtureBase fixture(engine);
    SqLoop loop(fixture.Url());
    loop.Execute("CREATE UNLOGGED TABLE t (a BIGINT PRIMARY KEY, b DOUBLE)");
    loop.Execute("INSERT INTO t VALUES (1, 2.5)");
    EXPECT_EQ(loop.Execute("SELECT COUNT(*) FROM t").rows[0][0].as_int(), 1)
        << engine;
  }
}

TEST(Facade, RecursiveCteNativeOnPostgres) {
  CoreFixtureBase fixture("postgres");
  SqLoop loop(fixture.Url());
  const auto result = loop.Execute(
      "WITH RECURSIVE Fibonacci (n, pn) AS (VALUES (0, 1) UNION ALL "
      "SELECT n + pn, n FROM Fibonacci WHERE n < 1000) "
      "SELECT SUM(n) FROM Fibonacci");
  EXPECT_EQ(result.rows.at(0).at(0).as_int(), 4180);
}

TEST(Facade, RecursiveCteEmulatedOnMySql) {
  // MySQL 5.7 cannot evaluate WITH RECURSIVE; SQLoop must still return the
  // same answer by emulating semi-naive evaluation client-side.
  CoreFixtureBase fixture("mysql");
  SqLoop loop(fixture.Url());
  const auto result = loop.Execute(
      "WITH RECURSIVE Fibonacci (n, pn) AS (VALUES (0, 1) UNION ALL "
      "SELECT n + pn, n FROM Fibonacci WHERE n < 1000) "
      "SELECT SUM(n) FROM Fibonacci");
  EXPECT_EQ(result.rows.at(0).at(0).as_int(), 4180);
  EXPECT_GT(loop.last_run().iterations, 10);
}

TEST(Facade, RecursiveEmulationHandlesGraphReachability) {
  CoreFixtureBase fixture("mysql");
  fixture.LoadGraph([] {
    graph::Graph g;
    g.AddEdge(1, 2);
    g.AddEdge(2, 3);
    g.AddEdge(3, 4);
    g.AssignOutDegreeWeights();
    return g;
  }());
  SqLoop loop(fixture.Url());
  const auto result = loop.Execute(
      "WITH RECURSIVE reach (node) AS (SELECT 1 UNION ALL "
      "SELECT edges.dst FROM reach JOIN edges ON reach.node = edges.src) "
      "SELECT COUNT(*) FROM reach");
  EXPECT_EQ(result.rows.at(0).at(0).as_int(), 4);
}

TEST(Facade, IterativeFallbackReasonIsReported) {
  CoreFixtureBase fixture("postgres");
  SqLoop loop(fixture.Url(), [] {
    SqloopOptions o;
    o.mode = ExecutionMode::kSync;
    return o;
  }());
  // No aggregate -> must fall back and say why.
  loop.Execute(
      "WITH ITERATIVE r (k, v) AS (SELECT 1, 2.0 ITERATE "
      "SELECT k, v + 1 FROM r UNTIL 3 ITERATIONS) SELECT v FROM r");
  EXPECT_FALSE(loop.last_run().parallelized);
  EXPECT_NE(loop.last_run().fallback_reason.find("aggregate"),
            std::string::npos);
  EXPECT_EQ(loop.last_run().iterations, 3);
}

TEST(Facade, NonIntegerKeyFallsBackToSingleThread) {
  CoreFixtureBase fixture("postgres");
  SqLoop loop(fixture.Url());
  auto conn = dbc::DriverManager::GetConnection(fixture.Url());
  conn->Execute("CREATE UNLOGGED TABLE e (src TEXT, dst TEXT, "
                "w DOUBLE PRECISION)");
  conn->Execute("INSERT INTO e VALUES ('a', 'b', 1.0), ('b', 'a', 1.0)");
  loop.Execute(
      "WITH ITERATIVE r (k, d) AS ("
      " SELECT src, 1.0 FROM e GROUP BY src"
      " ITERATE"
      " SELECT r.k, COALESCE(SUM(s.d * m.w), 0.0) FROM r"
      "  LEFT JOIN e AS m ON r.k = m.dst"
      "  LEFT JOIN r AS s ON s.k = m.src"
      " GROUP BY r.k UNTIL 2 ITERATIONS) SELECT k, d FROM r");
  EXPECT_FALSE(loop.last_run().parallelized);
  EXPECT_NE(loop.last_run().fallback_reason.find("integer"),
            std::string::npos);
}

TEST(Facade, ExecuteScriptRunsAllStatements) {
  CoreFixtureBase fixture("mariadb");
  SqLoop loop(fixture.Url());
  const auto result = loop.ExecuteScript(
      "CREATE TABLE t (a BIGINT PRIMARY KEY);"
      "INSERT INTO t VALUES (1), (2), (3);"
      "SELECT COUNT(*) FROM t;");
  EXPECT_EQ(result.rows.at(0).at(0).as_int(), 3);
}

TEST(Facade, KeepResultTablesLeavesViewReadable) {
  CoreFixtureBase fixture("postgres");
  fixture.LoadGraph(graph::MakeWebGraph(50, 3, 4));
  auto options = fixture.SmallOptions(ExecutionMode::kSync, 4, 2);
  options.keep_result_tables = true;
  SqLoop loop(fixture.Url(), options);
  loop.Execute(workloads::PageRankQuery(2));
  // The union view survives for post-run sampling.
  const auto sum = loop.connection().ExecuteQuery(
      "SELECT SUM(Rank) FROM PageRank");
  EXPECT_GT(sum.rows.at(0).at(0).as_double(), 0.0);
}

TEST(Facade, PerCallOptionsOverrideInstanceDefaults) {
  CoreFixtureBase fixture("postgres");
  fixture.LoadGraph(graph::MakeWebGraph(60, 3, 5));
  // Instance default: single-thread. The per-call options ask for Sync.
  SqLoop loop(fixture.Url(), [] {
    SqloopOptions o;
    o.mode = ExecutionMode::kSingleThread;
    return o;
  }());

  auto per_call = loop.options();
  per_call.mode = ExecutionMode::kSync;
  per_call.partitions = 4;
  per_call.threads = 2;
  loop.Execute(workloads::PageRankQuery(2), per_call);
  EXPECT_TRUE(loop.last_run().parallelized);
  EXPECT_EQ(loop.last_run().mode_used, ExecutionMode::kSync);

  // The instance defaults were not mutated: a plain Execute still runs
  // single-threaded.
  EXPECT_EQ(loop.options().mode, ExecutionMode::kSingleThread);
  loop.Execute(workloads::PageRankQuery(2));
  EXPECT_FALSE(loop.last_run().parallelized);
  EXPECT_EQ(loop.last_run().mode_used, ExecutionMode::kSingleThread);
}

TEST(Facade, SingleThreadRunsExposePerIterationStats) {
  CoreFixtureBase fixture("postgres");
  SqLoop loop(fixture.Url());
  loop.Execute(
      "WITH ITERATIVE r (k, v) AS (SELECT 1, 2.0 ITERATE "
      "SELECT k, v + 1 FROM r UNTIL 3 ITERATIONS) SELECT v FROM r");
  const auto rounds = loop.last_run().per_iteration();
  ASSERT_EQ(rounds.size(), 3u);
  uint64_t updates = 0;
  for (size_t i = 0; i < rounds.size(); ++i) {
    EXPECT_EQ(rounds[i].round, static_cast<int64_t>(i + 1));
    EXPECT_EQ(rounds[i].compute_tasks, 1u);
    EXPECT_GT(rounds[i].seconds, 0.0);
    updates += rounds[i].updates;
  }
  EXPECT_EQ(updates, loop.last_run().total_updates);
}

namespace {
/// Counts callbacks and remembers what the rounds reported.
class CountingObserver : public ExecutionObserver {
 public:
  void OnRoundStart(int64_t) override { ++starts; }
  void OnRoundEnd(const telemetry::IterationStats& round) override {
    ++ends;
    updates += round.updates;
  }
  void OnTaskComplete(const telemetry::TaskSpan&) override { ++tasks; }
  void OnFallback(const std::string& reason) override { fallback = reason; }

  int starts = 0;
  int ends = 0;
  std::atomic<int> tasks{0};  // worker threads call OnTaskComplete
  uint64_t updates = 0;
  std::string fallback;
};
}  // namespace

TEST(Facade, ObserverSeesEveryRoundBoundary) {
  CoreFixtureBase fixture("postgres");
  fixture.LoadGraph(graph::MakeWebGraph(80, 3, 7));
  CountingObserver observer;
  SqLoop loop(fixture.Url());
  loop.set_observer(&observer);
  EXPECT_EQ(loop.observer(), &observer);
  loop.Execute(workloads::PageRankQuery(3),
               fixture.SmallOptions(ExecutionMode::kSync, 4, 2));
  EXPECT_EQ(observer.starts, loop.last_run().iterations);
  EXPECT_EQ(observer.ends, loop.last_run().iterations);
  EXPECT_EQ(observer.updates, loop.last_run().total_updates);
  if (telemetry::kHooksEnabled) {
    // Every Compute/Gather task plus the setup/final master spans.
    EXPECT_GE(static_cast<uint64_t>(observer.tasks.load()),
              loop.last_run().compute_tasks + loop.last_run().gather_tasks);
  }
  loop.set_observer(nullptr);
}

TEST(Facade, ObserverHearsAboutFallbacks) {
  CoreFixtureBase fixture("postgres");
  CountingObserver observer;
  SqLoop loop(fixture.Url(), [] {
    SqloopOptions o;
    o.mode = ExecutionMode::kSync;
    return o;
  }());
  loop.set_observer(&observer);
  loop.Execute(
      "WITH ITERATIVE r (k, v) AS (SELECT 1, 2.0 ITERATE "
      "SELECT k, v + 1 FROM r UNTIL 3 ITERATIONS) SELECT v FROM r");
  EXPECT_EQ(observer.fallback, loop.last_run().fallback_reason);
  EXPECT_FALSE(observer.fallback.empty());
  EXPECT_EQ(observer.ends, 3);
}

TEST(Facade, ResolveThreadsClampsToPartitionCount) {
  SqloopOptions options;
  options.threads = 8;
  options.partitions = 3;
  // More workers than partitions could never be scheduled concurrently.
  EXPECT_EQ(options.ResolveThreads(), 3);

  options.partitions = 16;
  EXPECT_EQ(options.ResolveThreads(), 8);

  options.threads = 0;  // auto: half the CPUs, still clamped
  options.partitions = 1;
  EXPECT_EQ(options.ResolveThreads(), 1);

  options.threads = 4;
  options.partitions = 0;  // degenerate partition count clamps to 1
  EXPECT_EQ(options.ResolveThreads(), 1);
}

TEST(Facade, BadUrlThrows) {
  EXPECT_THROW(SqLoop("minidb://nowhere/db"), ConnectionError);
}

TEST(Facade, IterationGuardThrows) {
  CoreFixtureBase fixture("postgres");
  SqLoop loop(fixture.Url(), [] {
    SqloopOptions o;
    o.mode = ExecutionMode::kSingleThread;
    o.max_iterations_guard = 5;
    return o;
  }());
  // The probe can never be satisfied: v is always 1 row, never > 10 rows.
  EXPECT_THROW(
      loop.Execute("WITH ITERATIVE r (k, v) AS (SELECT 1, 2.0 ITERATE "
                   "SELECT k, v + 1 FROM r UNTIL (SELECT k FROM r "
                   "WHERE v < 0)) SELECT v FROM r"),
      ExecutionError);
}

}  // namespace
}  // namespace sqloop::core
