// Table I coverage: every termination-condition form, exercised through
// the full middleware on real queries (single-threaded and parallel).
#include <gtest/gtest.h>

#include "core/workloads.h"
#include "graph/generators.h"
#include "tests/core/core_test_util.h"

namespace sqloop::core {
namespace {

using testing::CoreFixtureBase;

class TerminationTest : public ::testing::TestWithParam<ExecutionMode> {
 protected:
  TerminationTest() : fixture_("postgres") {}

  SqLoop MakeLoop() {
    return SqLoop(fixture_.Url(),
                  fixture_.SmallOptions(GetParam(), 4, 2));
  }

  /// A counter CTE: value column increments by 1 every iteration on every
  /// row; delta column sums neighbor ticks (parallelizable shape).
  static std::string CounterQuery(const std::string& until) {
    return "WITH ITERATIVE c (k, v, d) AS ("
           " SELECT src, 0, 1.0 FROM (SELECT src FROM edges UNION "
           " SELECT dst FROM edges) AS all_nodes GROUP BY src"
           " ITERATE"
           " SELECT c.k, c.v + 1, COALESCE(SUM(s.d * e.weight), 0.0)"
           " FROM c LEFT JOIN edges AS e ON c.k = e.dst"
           "        LEFT JOIN c AS s ON s.k = e.src"
           " GROUP BY c.k"
           " UNTIL " + until +
           ") SELECT MAX(v) FROM c";
  }

  CoreFixtureBase fixture_;
};

TEST_P(TerminationTest, NIterations) {
  fixture_.LoadGraph(graph::MakeWebGraph(30, 2, 1));
  auto loop = MakeLoop();
  const auto result = loop.Execute(CounterQuery("7 ITERATIONS"));
  EXPECT_DOUBLE_EQ(result.rows.at(0).at(0).NumericAsDouble(), 7.0);
  EXPECT_EQ(loop.last_run().iterations, 7);
}

TEST_P(TerminationTest, NUpdates) {
  // SSSP reaches quiescence; `UNTIL 0 UPDATES` must detect it.
  const graph::Graph g = graph::MakeHostGraph(3, 4, 10, 2);
  fixture_.LoadGraph(g);
  auto loop = MakeLoop();
  const auto result = loop.Execute(workloads::SsspAllQuery(0));
  EXPECT_GT(result.rows.size(), 5u);
  EXPECT_GT(loop.last_run().iterations, 3);
}

TEST_P(TerminationTest, PositiveUpdatesThreshold) {
  // "UNTIL n UPDATES": stop once an iteration changes at most n rows. The
  // DQ frontier shrinks as exploration finishes, so a generous threshold
  // stops earlier than full quiescence.
  const graph::Graph g = graph::MakeHostGraph(3, 4, 30, 4);
  fixture_.LoadGraph(g);
  auto loop = MakeLoop();
  const std::string early =
      "WITH ITERATIVE dq (Node, Hops, Delta) AS ("
      " SELECT src, Infinity, CASE WHEN src = 0 THEN 0 ELSE Infinity END"
      " FROM (SELECT src FROM edges UNION SELECT dst FROM edges) AS alln"
      " GROUP BY src"
      " ITERATE"
      " SELECT dq.Node, LEAST(dq.Hops, dq.Delta),"
      "  COALESCE(MIN(LEAST(Neighbor.Hops, Neighbor.Delta) + 1), Infinity)"
      " FROM dq LEFT JOIN edges AS IncomingEdges"
      "   ON dq.Node = IncomingEdges.dst"
      " LEFT JOIN dq AS Neighbor ON Neighbor.Node = IncomingEdges.src"
      " WHERE Neighbor.Delta != Infinity"
      " GROUP BY dq.Node"
      " UNTIL 1000 UPDATES"
      ") SELECT COUNT(*) FROM dq";
  loop.Execute(early);
  const int64_t early_rounds = loop.last_run().iterations;
  EXPECT_EQ(early_rounds, 1);  // first iteration already changes <= 1000 rows
}

TEST_P(TerminationTest, DataProbeAllRows) {
  fixture_.LoadGraph(graph::MakeWebGraph(30, 2, 1));
  auto loop = MakeLoop();
  // Stop once EVERY row's counter exceeds 4 (i.e. after 5 iterations).
  const auto result =
      loop.Execute(CounterQuery("(SELECT k FROM c WHERE v > 4)"));
  EXPECT_DOUBLE_EQ(result.rows.at(0).at(0).NumericAsDouble(), 5.0);
}

TEST_P(TerminationTest, DataProbeAny) {
  fixture_.LoadGraph(graph::MakeWebGraph(30, 2, 1));
  auto loop = MakeLoop();
  // All counters move in lockstep, so ANY fires at the same iteration.
  const auto result =
      loop.Execute(CounterQuery("ANY (SELECT k FROM c WHERE v > 2)"));
  EXPECT_DOUBLE_EQ(result.rows.at(0).at(0).NumericAsDouble(), 3.0);
}

TEST_P(TerminationTest, DataProbeComparison) {
  fixture_.LoadGraph(graph::MakeWebGraph(30, 2, 1));
  auto loop = MakeLoop();
  const auto result =
      loop.Execute(CounterQuery("(SELECT MAX(v) FROM c) > 5"));
  EXPECT_DOUBLE_EQ(result.rows.at(0).at(0).NumericAsDouble(), 6.0);
  const auto eq = loop.Execute(CounterQuery("(SELECT MAX(v) FROM c) = 4"));
  EXPECT_DOUBLE_EQ(eq.rows.at(0).at(0).NumericAsDouble(), 4.0);
}

TEST_P(TerminationTest, DeltaProbeComparison) {
  fixture_.LoadGraph(graph::MakeWebGraph(40, 3, 6));
  auto loop = MakeLoop();
  // PageRank-style convergence (paper: "set a threshold e for which the
  // delta rank should be smaller"): stop once every row moved by less than
  // epsilon since the previous iteration, using the DELTA probe form that
  // joins R against the R_delta snapshot.
  const std::string any_delta =
      "WITH ITERATIVE pr (Node, Rank, Delta) AS ("
      " SELECT src, 0, 0.15 FROM (SELECT src FROM edges UNION "
      " SELECT dst FROM edges) AS alln GROUP BY src"
      " ITERATE"
      " SELECT pr.Node, COALESCE(pr.Rank + pr.Delta, 0.15),"
      "  COALESCE(0.85 * SUM(s.Delta * e.weight), 0.0)"
      " FROM pr LEFT JOIN edges AS e ON pr.Node = e.dst"
      "         LEFT JOIN pr AS s ON s.Node = e.src"
      " GROUP BY pr.Node"
      " UNTIL DELTA (SELECT p.Node FROM pr AS p JOIN pr_delta AS o"
      "  ON p.Node = o.Node WHERE p.Rank - o.Rank < 0.001"
      "  AND p.Rank - o.Rank >= 0) "
      ") SELECT SUM(Rank) FROM pr";
  const auto result = loop.Execute(any_delta);
  // Converged: summed rank close to the fixpoint but definitely positive.
  EXPECT_GT(result.rows.at(0).at(0).as_double(), 0.0);
  EXPECT_GT(loop.last_run().iterations, 2);
}

INSTANTIATE_TEST_SUITE_P(Modes, TerminationTest,
                         ::testing::Values(ExecutionMode::kSingleThread,
                                           ExecutionMode::kSync,
                                           ExecutionMode::kAsync),
                         [](const auto& info) {
                           std::string n = ExecutionModeName(info.param);
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

}  // namespace
}  // namespace sqloop::core
