// Deep-dive tests of the parallel engine: COUNT/AVG gather rewrites
// (paper §V-D), AsyncP partition skipping, message-table lifecycle, and
// behaviour across partition/thread extremes.
#include <gtest/gtest.h>

#include <cmath>

#include "core/workloads.h"
#include "graph/generators.h"
#include "graph/reference.h"
#include "tests/core/core_test_util.h"

namespace sqloop::core {
namespace {

using testing::CoreFixtureBase;

/// In-degree counting via COUNT — the §V-D COUNT rewrite (gather must SUM
/// the partial counts, not count the messages).
std::string InDegreeQuery(int rounds) {
  return "WITH ITERATIVE deg (Node, Total, Delta) AS ("
         " SELECT src, 0, 0.0 FROM (SELECT src FROM edges UNION "
         " SELECT dst FROM edges) AS alln GROUP BY src"
         " ITERATE"
         " SELECT deg.Node, deg.Total + deg.Delta,"
         "  COALESCE(COUNT(s.Node), 0)"
         " FROM deg LEFT JOIN edges AS e ON deg.Node = e.dst"
         "          LEFT JOIN deg AS s ON s.Node = e.src"
         " GROUP BY deg.Node"
         " UNTIL " + std::to_string(rounds) + " ITERATIONS"
         ") SELECT Node, Total + Delta FROM deg";
}

TEST(ParallelDetail, CountAggregateSumsPartialCounts) {
  const graph::Graph g = graph::MakeWebGraph(150, 3, 5);
  std::unordered_map<int64_t, int64_t> in_degree;
  for (const auto& e : g.edges()) ++in_degree[e.dst];

  for (const auto mode :
       {ExecutionMode::kSingleThread, ExecutionMode::kSync}) {
    CoreFixtureBase fixture("postgres");
    fixture.LoadGraph(g);
    SqLoop loop(fixture.Url(), fixture.SmallOptions(mode, 8, 2));
    // After 1 synchronous round, Total+Delta holds each node's in-degree
    // exactly once. (Async rounds end with some messages still in flight
    // — inherent to asynchronous execution under a fixed round count — so
    // only the synchronous modes admit exact assertions here.)
    const auto result = loop.Execute(InDegreeQuery(1));
    for (const auto& row : result.rows) {
      const int64_t node = row[0].as_int();
      const auto expected = in_degree.contains(node) ? in_degree[node] : 0;
      EXPECT_DOUBLE_EQ(row[1].NumericAsDouble(),
                       static_cast<double>(expected))
          << "node " << node << " mode " << ExecutionModeName(mode);
    }
    if (mode != ExecutionMode::kSingleThread) {
      EXPECT_TRUE(loop.last_run().parallelized)
          << loop.last_run().fallback_reason;
    }
  }
  {
    // Async: every value is either the full in-degree (gathered) or a
    // partial count still bounded by it.
    CoreFixtureBase fixture("postgres");
    fixture.LoadGraph(g);
    SqLoop loop(fixture.Url(),
                fixture.SmallOptions(ExecutionMode::kAsync, 8, 2));
    const auto result = loop.Execute(InDegreeQuery(1));
    EXPECT_TRUE(loop.last_run().parallelized);
    for (const auto& row : result.rows) {
      const int64_t node = row[0].as_int();
      const auto expected = in_degree.contains(node) ? in_degree[node] : 0;
      EXPECT_LE(row[1].NumericAsDouble(), static_cast<double>(expected));
      EXPECT_GE(row[1].NumericAsDouble(), 0.0);
    }
  }
}

/// Average incoming delta via AVG — exercises the SUM/COUNT message pairs
/// and the hidden accumulator columns.
TEST(ParallelDetail, AvgAggregateMatchesSingleThread) {
  const graph::Graph g = graph::MakeWebGraph(120, 3, 9);
  const std::string query =
      "WITH ITERATIVE m (Node, Level, Delta) AS ("
      " SELECT src, 1.0, 1.0 FROM (SELECT src FROM edges UNION "
      " SELECT dst FROM edges) AS alln GROUP BY src"
      " ITERATE"
      " SELECT m.Node, m.Level, COALESCE(AVG(s.Level), 0.0)"
      " FROM m LEFT JOIN edges AS e ON m.Node = e.dst"
      "        LEFT JOIN m AS s ON s.Node = e.src"
      " GROUP BY m.Node"
      " UNTIL 1 ITERATIONS"
      ") SELECT Node, Delta FROM m";

  CoreFixtureBase single_fixture("postgres");
  single_fixture.LoadGraph(g);
  SqLoop single(single_fixture.Url(),
                single_fixture.SmallOptions(ExecutionMode::kSingleThread));
  const auto expected = single.Execute(query);
  std::unordered_map<int64_t, double> reference;
  for (const auto& row : expected.rows) {
    reference[row[0].as_int()] = row[1].NumericAsDouble();
  }

  CoreFixtureBase parallel_fixture("postgres");
  parallel_fixture.LoadGraph(g);
  SqLoop parallel(parallel_fixture.Url(),
                  parallel_fixture.SmallOptions(ExecutionMode::kSync, 8, 2));
  const auto actual = parallel.Execute(query);
  ASSERT_TRUE(parallel.last_run().parallelized)
      << parallel.last_run().fallback_reason;
  ASSERT_EQ(actual.rows.size(), reference.size());
  for (const auto& row : actual.rows) {
    EXPECT_NEAR(row[1].NumericAsDouble(), reference.at(row[0].as_int()),
                1e-9)
        << "node " << row[0].as_int();
  }
}

TEST(ParallelDetail, AsyncPrioritySkipsIdlePartitionsOnTraversal) {
  // A long chain: most partitions hold no frontier nodes most rounds.
  const graph::Graph g = graph::MakeHostGraph(4, 4, 60, 3);
  CoreFixtureBase fixture("postgres");
  fixture.LoadGraph(g);
  // Skipping needs the paper's many-partitions regime: with few
  // partitions the hash spreads the frontier everywhere immediately.
  auto options =
      fixture.SmallOptions(ExecutionMode::kAsyncPriority, 64, 2);
  options.priority_query = workloads::DqPriorityQuery();
  options.priority_descending = false;
  SqLoop loop(fixture.Url(), options);
  const auto result = loop.Execute(workloads::DescendantQuery(0));
  EXPECT_GT(result.rows.size(), 60u);
  // The skip counter is the §V-E claim: unproductive partitions were
  // never scheduled.
  EXPECT_GT(loop.last_run().skipped_tasks, 0u);
  // And correctness is untouched:
  const auto bfs = graph::BfsHops(g, 0);
  EXPECT_EQ(result.rows.size(), bfs.size());
}

TEST(ParallelDetail, SinglePartitionStillCorrect) {
  const graph::Graph g = graph::MakeWebGraph(80, 3, 2);
  CoreFixtureBase fixture("postgres");
  fixture.LoadGraph(g);
  SqLoop loop(fixture.Url(),
              fixture.SmallOptions(ExecutionMode::kAsync, /*partitions=*/1,
                                   /*threads=*/2));
  const auto result = loop.Execute(workloads::PageRankQuery(5));
  const auto reference = graph::PageRankReference(g, 5);
  for (const auto& row : result.rows) {
    EXPECT_NEAR(row[1].as_double(), reference.rank.at(row[0].as_int()),
                1e-9);
  }
}

TEST(ParallelDetail, MorePartitionsThanRowsStillCorrect) {
  graph::Graph g;
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 1);
  g.AssignOutDegreeWeights();
  CoreFixtureBase fixture("postgres");
  fixture.LoadGraph(g);
  SqLoop loop(fixture.Url(),
              fixture.SmallOptions(ExecutionMode::kSync, /*partitions=*/16,
                                   /*threads=*/4));
  const auto result = loop.Execute(workloads::PageRankQuery(90));
  ASSERT_EQ(result.rows.size(), 3u);
  for (const auto& row : result.rows) {
    EXPECT_NEAR(row[1].as_double(), 1.0, 1e-4);  // symmetric 3-cycle
  }
}

TEST(ParallelDetail, MessageTablesAreCleanedUp) {
  const graph::Graph g = graph::MakeWebGraph(100, 3, 4);
  CoreFixtureBase fixture("postgres");
  fixture.LoadGraph(g);
  SqLoop loop(fixture.Url(), fixture.SmallOptions(ExecutionMode::kSync, 4));
  loop.Execute(workloads::PageRankQuery(3));
  EXPECT_EQ(loop.last_run().message_tables, 12u);  // 3 rounds x 4 partitions
  // After the run no sqloop scratch tables survive.
  auto& db = loop.connection().database();
  for (const auto& name : db.TableNames()) {
    EXPECT_EQ(name.find("pagerank"), std::string::npos) << name;
  }
}

TEST(ParallelDetail, KeepResultTablesRetainsPartitionsAndView) {
  const graph::Graph g = graph::MakeWebGraph(100, 3, 4);
  CoreFixtureBase fixture("postgres");
  fixture.LoadGraph(g);
  auto options = fixture.SmallOptions(ExecutionMode::kAsync, 4);
  options.keep_result_tables = true;
  SqLoop loop(fixture.Url(), options);
  loop.Execute(workloads::PageRankQuery(2));
  auto& db = loop.connection().database();
  EXPECT_TRUE(db.HasView("pagerank"));
  EXPECT_TRUE(db.HasTable("pagerank_pt0"));
  // Scratch (messages, mjoin) is still removed.
  for (const auto& name : db.TableNames()) {
    EXPECT_EQ(name.find("_msg"), std::string::npos) << name;
    EXPECT_EQ(name.find("_mj"), std::string::npos) << name;
  }
}

TEST(ParallelDetail, RerunningSameQueryReplacesLeftovers) {
  const graph::Graph g = graph::MakeWebGraph(100, 3, 4);
  CoreFixtureBase fixture("postgres");
  fixture.LoadGraph(g);
  auto options = fixture.SmallOptions(ExecutionMode::kSync, 4);
  options.keep_result_tables = true;  // leave partitions behind...
  SqLoop loop(fixture.Url(), options);
  loop.Execute(workloads::PageRankQuery(2));
  // ...and run again: DropLeftovers must clear them.
  const auto second = loop.Execute(workloads::PageRankQuery(2));
  EXPECT_EQ(second.rows.size(), g.NodeCount());
}

}  // namespace
}  // namespace sqloop::core
