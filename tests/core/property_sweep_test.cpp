// Property sweeps: the executor-equivalence invariants, re-checked across
// randomized graph seeds (parameterized gtest). Each seed produces a
// different topology; the invariants must hold on all of them.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "core/workloads.h"
#include "graph/generators.h"
#include "graph/reference.h"
#include "tests/core/core_test_util.h"

namespace sqloop::core {
namespace {

using testing::CoreFixtureBase;

class SeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeedSweep, SyncPageRankMatchesReferenceOnRandomWebGraphs) {
  const uint64_t seed = GetParam();
  const graph::Graph g = graph::MakeWebGraph(100 + seed % 150, 3, seed);
  CoreFixtureBase fixture("postgres");
  fixture.LoadGraph(g);
  SqLoop loop(fixture.Url(),
              fixture.SmallOptions(ExecutionMode::kSync, 4 + seed % 5, 2));
  const int iterations = 3 + static_cast<int>(seed % 4);
  const auto result = loop.Execute(workloads::PageRankQuery(iterations));
  const auto reference = graph::PageRankReference(g, iterations);
  ASSERT_EQ(result.rows.size(), reference.rank.size());
  for (const auto& row : result.rows) {
    EXPECT_NEAR(row[1].as_double(), reference.rank.at(row[0].as_int()),
                1e-9)
        << "seed " << seed;
  }
}

TEST_P(SeedSweep, AsyncSsspMatchesDijkstraOnRandomEgoNets) {
  const uint64_t seed = GetParam();
  const graph::Graph g =
      graph::MakeEgoNetGraph(3 + seed % 5, 8 + seed % 8,
                             0.15 + 0.02 * static_cast<double>(seed % 5),
                             seed);
  CoreFixtureBase fixture("postgres");
  fixture.LoadGraph(g);
  SqLoop loop(fixture.Url(),
              fixture.SmallOptions(ExecutionMode::kAsync, 8, 3));
  const auto result = loop.Execute(workloads::SsspAllQuery(1));
  const auto dijkstra = graph::Dijkstra(g, 1);
  std::map<int64_t, double> computed;
  for (const auto& row : result.rows) {
    computed[row[0].as_int()] = row[1].as_double();
  }
  for (const auto& [node, expected] : dijkstra) {
    ASSERT_TRUE(computed.contains(node)) << "seed " << seed << " node "
                                         << node;
    EXPECT_NEAR(computed.at(node), expected, 1e-9)
        << "seed " << seed << " node " << node;
  }
  EXPECT_EQ(computed.size(), dijkstra.size()) << "seed " << seed;
}

TEST_P(SeedSweep, AsyncPriorityDqMatchesBfsOnRandomHostGraphs) {
  const uint64_t seed = GetParam();
  const graph::Graph g = graph::MakeHostGraph(3 + seed % 6, 4 + seed % 4,
                                              15 + seed % 30, seed);
  CoreFixtureBase fixture("postgres");
  fixture.LoadGraph(g);
  auto options = fixture.SmallOptions(ExecutionMode::kAsyncPriority, 16, 2);
  options.priority_query = workloads::DqPriorityQuery();
  options.priority_descending = false;
  SqLoop loop(fixture.Url(), options);
  const auto result = loop.Execute(workloads::DescendantQuery(0));
  const auto bfs = graph::BfsHops(g, 0);
  ASSERT_EQ(result.rows.size(), bfs.size()) << "seed " << seed;
  for (const auto& row : result.rows) {
    const int64_t node = row[0].as_int();
    EXPECT_EQ(static_cast<int64_t>(std::llround(row[1].NumericAsDouble())),
              bfs.at(node))
        << "seed " << seed << " node " << node;
  }
}

TEST_P(SeedSweep, RmjoinAblationIsSemanticallyInvisible) {
  const uint64_t seed = GetParam();
  const graph::Graph g = graph::MakeWebGraph(80 + seed % 60, 3, seed + 99);
  CoreFixtureBase fixture("postgres");
  fixture.LoadGraph(g);

  auto options = fixture.SmallOptions(ExecutionMode::kSync, 4, 2);
  options.materialize_constant_join = true;
  SqLoop with_mjoin(fixture.Url(), options);
  const auto expected = with_mjoin.Execute(workloads::PageRankQuery(4));

  options.materialize_constant_join = false;
  SqLoop without(fixture.Url(), options);
  const auto actual = without.Execute(workloads::PageRankQuery(4));

  ASSERT_EQ(actual.rows.size(), expected.rows.size()) << "seed " << seed;
  std::map<int64_t, double> reference;
  for (const auto& row : expected.rows) {
    reference[row[0].as_int()] = row[1].as_double();
  }
  for (const auto& row : actual.rows) {
    EXPECT_NEAR(row[1].as_double(), reference.at(row[0].as_int()), 1e-12)
        << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u));

}  // namespace
}  // namespace sqloop::core
