// Failure injection: errors inside worker tasks, bad priority queries, and
// seed/step mistakes must surface as exceptions on the caller's thread and
// leave no scratch tables behind.
#include <gtest/gtest.h>

#include "common/error.h"
#include "core/workloads.h"
#include "graph/generators.h"
#include "tests/core/core_test_util.h"

namespace sqloop::core {
namespace {

using testing::CoreFixtureBase;

size_t ScratchTableCount(SqLoop& loop, const std::string& prefix) {
  size_t count = 0;
  for (const auto& name : loop.connection().database().TableNames()) {
    if (name.rfind(prefix, 0) == 0) ++count;
  }
  return count;
}

TEST(Failure, BadPriorityQuerySurfacesAndCleansUp) {
  CoreFixtureBase fixture("postgres");
  fixture.LoadGraph(graph::MakeWebGraph(80, 3, 1));
  auto options = fixture.SmallOptions(ExecutionMode::kAsyncPriority, 4, 2);
  options.priority_query = "SELECT nonsense FROM $PARTITION";
  SqLoop loop(fixture.Url(), options);
  EXPECT_THROW(loop.Execute(workloads::PageRankQuery(3)), Error);
  EXPECT_EQ(ScratchTableCount(loop, "pagerank"), 0u);
  EXPECT_FALSE(loop.connection().database().HasView("pagerank"));
}

TEST(Failure, StepReferencingMissingTableSurfacesAndCleansUp) {
  CoreFixtureBase fixture("postgres");
  fixture.LoadGraph(graph::MakeWebGraph(60, 3, 2));
  SqLoop loop(fixture.Url(), fixture.SmallOptions(ExecutionMode::kSync, 4));
  const std::string query =
      "WITH ITERATIVE r (Node, Rank, Delta) AS ("
      " SELECT src, 0, 0.15 FROM (SELECT src FROM edges UNION "
      " SELECT dst FROM edges) AS alln GROUP BY src"
      " ITERATE"
      " SELECT r.Node, r.Rank + r.Delta,"
      "  COALESCE(0.85 * SUM(s.Delta * e.weight), 0.0)"
      " FROM r LEFT JOIN missing_table AS e ON r.Node = e.dst"
      "        LEFT JOIN r AS s ON s.Node = e.src"
      " GROUP BY r.Node UNTIL 3 ITERATIONS) SELECT * FROM r";
  EXPECT_THROW(loop.Execute(query), Error);
  EXPECT_EQ(ScratchTableCount(loop, "r_"), 0u);
}

TEST(Failure, BadSeedSurfacesBeforeAnyTableIsCreated) {
  CoreFixtureBase fixture("postgres");
  SqLoop loop(fixture.Url());
  EXPECT_THROW(
      loop.Execute("WITH ITERATIVE r (a, b) AS (SELECT x FROM nowhere "
                   "ITERATE SELECT a, b FROM r UNTIL 2 ITERATIONS) "
                   "SELECT * FROM r"),
      Error);
  EXPECT_TRUE(loop.connection().database().TableNames().empty());
}

TEST(Failure, SingleThreadBadStepCleansUp) {
  CoreFixtureBase fixture("postgres");
  fixture.LoadGraph(graph::MakeWebGraph(50, 3, 3));
  auto options = fixture.SmallOptions(ExecutionMode::kSingleThread);
  SqLoop loop(fixture.Url(), options);
  // Step produces the wrong arity -> merge fails mid-iteration.
  EXPECT_THROW(
      loop.Execute("WITH ITERATIVE r (k, v) AS ("
                   " SELECT src, 1.0 FROM edges GROUP BY src"
                   " ITERATE SELECT k FROM r"
                   " UNTIL 2 ITERATIONS) SELECT * FROM r"),
      Error);
}

TEST(Failure, UnknownUrlParameterRejectedUpFront) {
  EXPECT_THROW(SqLoop("minidb://localhost/db?bogus=1"), ConnectionError);
}

TEST(Failure, WorkerErrorDoesNotHangThePool) {
  // A failing statement inside a Compute task must abort the run quickly
  // (no deadlock waiting on barriers), repeatedly.
  CoreFixtureBase fixture("postgres");
  fixture.LoadGraph(graph::MakeWebGraph(60, 3, 4));
  auto options = fixture.SmallOptions(ExecutionMode::kAsync, 8, 4);
  SqLoop loop(fixture.Url(), options);
  for (int attempt = 0; attempt < 3; ++attempt) {
    // Drop the edges table's stand-in inside the step: reference a column
    // that does not exist so every Compute task throws.
    EXPECT_THROW(
        loop.Execute("WITH ITERATIVE r (Node, Rank, Delta) AS ("
                     " SELECT src, 0, 0.15 FROM (SELECT src FROM edges UNION "
                     " SELECT dst FROM edges) AS alln GROUP BY src"
                     " ITERATE"
                     " SELECT r.Node, r.Rank + r.Delta,"
                     "  COALESCE(SUM(s.no_such_column * e.weight), 0.0)"
                     " FROM r LEFT JOIN edges AS e ON r.Node = e.dst"
                     "        LEFT JOIN r AS s ON s.Node = e.src"
                     " GROUP BY r.Node UNTIL 3 ITERATIONS) SELECT * FROM r"),
        Error);
  }
  // The database is still usable afterwards.
  const auto count =
      loop.connection().ExecuteQuery("SELECT COUNT(*) FROM edges");
  EXPECT_GT(count.rows[0][0].as_int(), 0);
}

}  // namespace
}  // namespace sqloop::core
