// Shared fixture for SQLoop core tests: a private server with one database
// per engine profile and a loaded graph.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/sqloop.h"
#include "dbc/driver.h"
#include "graph/loader.h"
#include "minidb/server.h"

namespace sqloop::core::testing {

/// Registers a fresh host per test; URL has zero synthetic latency so
/// tests stay fast.
class CoreFixtureBase {
 public:
  explicit CoreFixtureBase(const std::string& engine) {
    static std::atomic<uint64_t> counter{0};
    host_ = "core_test_" + std::to_string(counter.fetch_add(1));
    dbc::DriverManager::RegisterHost(host_, &server_);
    server_.CreateDatabase("db", minidb::EngineProfile::ByName(engine));
  }
  ~CoreFixtureBase() { dbc::DriverManager::RegisterHost(host_, nullptr); }

  std::string Url() const { return "minidb://" + host_ + "/db?latency_us=0"; }

  void LoadGraph(const graph::Graph& g) {
    auto conn = dbc::DriverManager::GetConnection(Url());
    graph::LoadEdges(*conn, g);
  }

  SqloopOptions SmallOptions(ExecutionMode mode, int partitions = 8,
                             int threads = 2) {
    SqloopOptions options;
    options.mode = mode;
    options.partitions = partitions;
    options.threads = threads;
    return options;
  }

 private:
  minidb::Server server_;
  std::string host_;
};

}  // namespace sqloop::core::testing
