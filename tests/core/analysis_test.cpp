#include "core/analysis.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/workloads.h"
#include "sql/parser.h"

namespace sqloop::core {
namespace {

CteAnalysis Analyze(const std::string& query) {
  const auto stmt = sql::ParseStatement(query);
  return AnalyzeIterativeCte(stmt->with);
}

TEST(Analysis, PageRankIsParallelizable) {
  const auto a = Analyze(workloads::PageRankQuery(10));
  ASSERT_TRUE(a.parallelizable) << a.reason;
  EXPECT_EQ(a.cte_name, "pagerank");
  EXPECT_EQ(a.key_column, "node");
  EXPECT_EQ(a.aggregate, sql::AggFunc::kSum);
  EXPECT_EQ(a.primary_alias, "pagerank");
  EXPECT_EQ(a.self_alias, "incomingrank");
  EXPECT_EQ(a.mid_table, "edges");
  EXPECT_EQ(a.mid_alias, "incomingedges");
  EXPECT_EQ(a.mid_to_key, "dst");
  EXPECT_EQ(a.mid_from_key, "src");
  EXPECT_EQ(a.delta_column, "delta");
  EXPECT_EQ(a.delta_column_index, 2);
  ASSERT_EQ(a.own_columns.size(), 1u);
  EXPECT_EQ(a.own_columns[0].name, "rank");
  // The message query must materialize dst, src and weight.
  EXPECT_EQ(a.mid_columns_used.size(), 3u);
}

TEST(Analysis, SsspIsParallelizableWithMinAggregate) {
  const auto a = Analyze(workloads::SsspQuery(1, 100));
  ASSERT_TRUE(a.parallelizable) << a.reason;
  EXPECT_EQ(a.aggregate, sql::AggFunc::kMin);
  EXPECT_EQ(a.self_alias, "neighbor");
  EXPECT_NE(a.where, nullptr);  // Neighbor.Delta != Infinity
}

TEST(Analysis, DescendantQueryIsParallelizable) {
  const auto a = Analyze(workloads::DescendantQuery(0));
  ASSERT_TRUE(a.parallelizable) << a.reason;
  EXPECT_EQ(a.aggregate, sql::AggFunc::kMin);
}

TEST(Analysis, NoAggregateFallsBack) {
  const auto a = Analyze(
      "WITH ITERATIVE r (k, v) AS (SELECT 1, 2 ITERATE "
      "SELECT r.k, r.v + 1 FROM r LEFT JOIN e ON r.k = e.dst "
      "LEFT JOIN r AS s ON s.k = e.src GROUP BY r.k "
      "UNTIL 3 ITERATIONS) SELECT * FROM r");
  EXPECT_FALSE(a.parallelizable);
  EXPECT_NE(a.reason.find("aggregate"), std::string::npos);
}

TEST(Analysis, MissingSelfJoinFallsBack) {
  const auto a = Analyze(
      "WITH ITERATIVE r (k, v) AS (SELECT 1, 2 ITERATE "
      "SELECT r.k, SUM(e.w) FROM r LEFT JOIN e ON r.k = e.dst "
      "GROUP BY r.k UNTIL 3 ITERATIONS) SELECT * FROM r");
  EXPECT_FALSE(a.parallelizable);
  EXPECT_NE(a.reason.find("self-join"), std::string::npos);
}

TEST(Analysis, MissingColumnListFallsBack) {
  const auto a = Analyze(
      "WITH ITERATIVE r AS (SELECT 1 ITERATE SELECT k FROM r "
      "UNTIL 3 ITERATIONS) SELECT * FROM r");
  EXPECT_FALSE(a.parallelizable);
  EXPECT_NE(a.reason.find("column list"), std::string::npos);
}

TEST(Analysis, DistinctAggregateFallsBack) {
  const auto a = Analyze(
      "WITH ITERATIVE r (k, d) AS (SELECT 1, 0.5 ITERATE "
      "SELECT r.k, SUM(DISTINCT s.d * e.w) FROM r "
      "LEFT JOIN e ON r.k = e.dst LEFT JOIN r AS s ON s.k = e.src "
      "GROUP BY r.k UNTIL 3 ITERATIONS) SELECT * FROM r");
  EXPECT_FALSE(a.parallelizable);
  EXPECT_NE(a.reason.find("DISTINCT"), std::string::npos);
}

TEST(Analysis, TwoAggregatedColumnsFallBack) {
  const auto a = Analyze(
      "WITH ITERATIVE r (k, d1, d2) AS (SELECT 1, 0.5, 0.5 ITERATE "
      "SELECT r.k, SUM(s.d1 * e.w), SUM(s.d2 * e.w) FROM r "
      "LEFT JOIN e ON r.k = e.dst LEFT JOIN r AS s ON s.k = e.src "
      "GROUP BY r.k UNTIL 3 ITERATIONS) SELECT * FROM r");
  EXPECT_FALSE(a.parallelizable);
  EXPECT_NE(a.reason.find("more than one"), std::string::npos);
}

TEST(Analysis, WherePrimaryReferenceFallsBack) {
  const auto a = Analyze(
      "WITH ITERATIVE r (k, d) AS (SELECT 1, 0.5 ITERATE "
      "SELECT r.k, SUM(s.d * e.w) FROM r "
      "LEFT JOIN e ON r.k = e.dst LEFT JOIN r AS s ON s.k = e.src "
      "WHERE r.d > 0 "
      "GROUP BY r.k UNTIL 3 ITERATIONS) SELECT * FROM r");
  EXPECT_FALSE(a.parallelizable);
  EXPECT_NE(a.reason.find("WHERE"), std::string::npos);
}

TEST(Analysis, GroupByMismatchFallsBack) {
  const auto a = Analyze(
      "WITH ITERATIVE r (k, d) AS (SELECT 1, 0.5 ITERATE "
      "SELECT r.k, SUM(s.d * e.w) FROM r "
      "LEFT JOIN e ON r.k = e.dst LEFT JOIN r AS s ON s.k = e.src "
      "GROUP BY r.d UNTIL 3 ITERATIONS) SELECT * FROM r");
  EXPECT_FALSE(a.parallelizable);
  EXPECT_NE(a.reason.find("GROUP BY"), std::string::npos);
}

TEST(Analysis, UnionStepFallsBack) {
  const auto a = Analyze(
      "WITH ITERATIVE r (k, d) AS (SELECT 1, 0.5 ITERATE "
      "SELECT k, d FROM r UNION ALL SELECT k, SUM(d) FROM r GROUP BY k "
      "UNTIL 3 ITERATIONS) SELECT * FROM r");
  EXPECT_FALSE(a.parallelizable);
  EXPECT_NE(a.reason.find("single SELECT"), std::string::npos);
}

TEST(Analysis, NonIterativeCteThrows) {
  const auto stmt = sql::ParseStatement(
      "WITH RECURSIVE r (n) AS (SELECT 1 UNION ALL SELECT n + 1 FROM r "
      "WHERE n < 3) SELECT * FROM r");
  EXPECT_THROW(AnalyzeIterativeCte(stmt->with), AnalysisError);
}

}  // namespace
}  // namespace sqloop::core
