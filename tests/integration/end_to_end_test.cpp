// Cross-module integration tests: the full stack (graph -> loader -> dbc
// -> minidb -> SQLoop) under realistic conditions — connection latency and
// modeled server cost enabled, concurrent middleware instances, the OLAP
// assumption of §IV-C, and the connected-components workload.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <thread>

#include "common/error.h"
#include "core/sqloop.h"
#include "core/workloads.h"
#include "dbc/driver.h"
#include "graph/generators.h"
#include "graph/loader.h"
#include "graph/reference.h"
#include "minidb/server.h"
#include "telemetry/exporters.h"
#include "telemetry/hooks.h"

namespace sqloop {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    static std::atomic<int> counter{0};
    host_ = "e2e_" + std::to_string(counter.fetch_add(1));
    dbc::DriverManager::RegisterHost(host_, &server_);
    server_.CreateDatabase("db", minidb::EngineProfile::Postgres());
  }
  void TearDown() override { dbc::DriverManager::RegisterHost(host_, nullptr); }

  std::string Url(const std::string& params = "?latency_us=0") {
    return "minidb://" + host_ + "/db" + params;
  }

  minidb::Server server_;
  std::string host_;
};

TEST_F(EndToEndTest, PageRankWithLatencyAndServerCostModel) {
  const graph::Graph g = graph::MakeWebGraph(300, 3, 11);
  {
    auto conn = dbc::DriverManager::GetConnection(Url());
    graph::LoadEdges(*conn, g);
  }
  // Realistic connection: 50us round trips + 1us/row server work.
  core::SqloopOptions options;
  options.mode = core::ExecutionMode::kAsync;
  options.partitions = 8;
  options.threads = 4;
  core::SqLoop loop(Url("?latency_us=50&row_cost_ns=1000"), options);
  const auto result = loop.Execute(core::workloads::PageRankQuery(6));
  EXPECT_EQ(result.rows.size(), g.NodeCount());
  EXPECT_GT(loop.last_run().seconds, 0.0);
}

TEST_F(EndToEndTest, ConnectedComponentsMatchesReference) {
  // Two separate clusters plus an isolated pair.
  graph::Graph g;
  for (const auto& [a, b] : {std::pair<int64_t, int64_t>{1, 2},
                            {2, 3},
                            {3, 4},
                            {10, 11},
                            {11, 12},
                            {20, 21}}) {
    g.AddEdge(a, b);
  }
  g.AssignOutDegreeWeights();

  // Symmetrize: labels must travel against edge direction too.
  graph::Graph sym;
  for (const auto& e : g.edges()) {
    sym.AddEdge(e.src, e.dst);
    sym.AddEdge(e.dst, e.src);
  }
  sym.AssignOutDegreeWeights();
  {
    auto conn = dbc::DriverManager::GetConnection(Url());
    graph::LoadOptions lo;
    lo.table_name = "edges_sym";
    graph::LoadEdges(*conn, sym, lo);
  }

  const auto reference = graph::ConnectedComponents(g);
  for (const auto mode :
       {core::ExecutionMode::kSingleThread, core::ExecutionMode::kSync,
        core::ExecutionMode::kAsync}) {
    core::SqloopOptions options;
    options.mode = mode;
    options.partitions = 4;
    options.threads = 2;
    core::SqLoop loop(Url(), options);
    const auto result =
        loop.Execute(core::workloads::ConnectedComponentsQuery());
    ASSERT_EQ(result.rows.size(), reference.size());
    for (const auto& row : result.rows) {
      const int64_t node = row[0].as_int();
      const auto label =
          static_cast<int64_t>(std::llround(row[1].NumericAsDouble()));
      EXPECT_EQ(label, reference.at(node))
          << "node " << node << " mode " << core::ExecutionModeName(mode);
    }
  }
}

TEST_F(EndToEndTest, TwoMiddlewareInstancesRunConcurrently) {
  // Two SQLoop instances drive different iterative CTEs against the same
  // database at the same time (distinct CTE names -> distinct scratch
  // tables; the engine's table locks arbitrate).
  const graph::Graph g = graph::MakeWebGraph(200, 3, 8);
  {
    auto conn = dbc::DriverManager::GetConnection(Url());
    graph::LoadEdges(*conn, g);
  }
  const auto reference = graph::PageRankReference(g, 5);

  std::atomic<bool> ok{true};
  std::jthread other([&] {
    try {
      core::SqloopOptions options;
      options.mode = core::ExecutionMode::kSync;
      options.partitions = 4;
      options.threads = 2;
      core::SqLoop loop(Url(), options);
      for (int i = 0; i < 3; ++i) {
        const auto hops =
            loop.Execute(core::workloads::DescendantQueryBounded(1, 3));
        if (hops.rows.empty()) ok.store(false);
      }
    } catch (const Error&) {
      ok.store(false);
    }
  });

  core::SqloopOptions options;
  options.mode = core::ExecutionMode::kAsync;
  options.partitions = 4;
  options.threads = 2;
  core::SqLoop loop(Url(), options);
  const auto result = loop.Execute(core::workloads::PageRankQuery(5));
  other.join();
  EXPECT_TRUE(ok.load());
  ASSERT_EQ(result.rows.size(), reference.rank.size());
  for (const auto& row : result.rows) {
    EXPECT_GE(row[1].as_double(), reference.rank.at(row[0].as_int()) - 1e-9);
  }
}

TEST_F(EndToEndTest, OlapAssumptionOtherTablesStayTransactional) {
  // §IV-C: while an iterative query runs, unrelated tables keep serving
  // transactional work (including rollback).
  const graph::Graph g = graph::MakeWebGraph(200, 3, 13);
  {
    auto conn = dbc::DriverManager::GetConnection(Url());
    graph::LoadEdges(*conn, g);
    conn->Execute("CREATE UNLOGGED TABLE orders (id BIGINT PRIMARY KEY, "
                  "total DOUBLE PRECISION)");
  }

  std::atomic<bool> oltp_ok{true};
  std::atomic<bool> stop{false};
  std::jthread oltp([&] {
    try {
      auto conn = dbc::DriverManager::GetConnection(Url());
      int64_t next = 0;
      while (!stop.load()) {
        conn->SetAutoCommit(false);
        conn->Execute("INSERT INTO orders VALUES (" +
                      std::to_string(next) + ", 9.99)");
        if (next % 2 == 0) {
          conn->Commit();
        } else {
          conn->Rollback();
        }
        conn->SetAutoCommit(true);
        ++next;
      }
    } catch (const Error&) {
      oltp_ok.store(false);
    }
  });

  core::SqloopOptions options;
  options.mode = core::ExecutionMode::kSync;
  options.partitions = 8;
  options.threads = 3;
  core::SqLoop loop(Url(), options);
  loop.Execute(core::workloads::PageRankQuery(4));
  stop.store(true);
  oltp.join();
  EXPECT_TRUE(oltp_ok.load());

  auto conn = dbc::DriverManager::GetConnection(Url());
  const auto orders = conn->ExecuteQuery("SELECT COUNT(*) FROM orders");
  EXPECT_GT(orders.rows[0][0].as_int(), 0);  // committed half survived
}

TEST_F(EndToEndTest, PerIterationStatsSumToRunTotals) {
  const graph::Graph g = graph::MakeWebGraph(250, 3, 17);
  {
    auto conn = dbc::DriverManager::GetConnection(Url());
    graph::LoadEdges(*conn, g);
  }
  core::SqLoop loop(Url());
  for (const auto mode :
       {core::ExecutionMode::kSync, core::ExecutionMode::kAsync,
        core::ExecutionMode::kAsyncPriority}) {
    core::SqloopOptions options;
    options.mode = mode;
    options.partitions = 6;
    options.threads = 3;
    if (mode == core::ExecutionMode::kAsyncPriority) {
      options.priority_query = core::workloads::PageRankPriorityQuery();
    }
    loop.Execute(core::workloads::PageRankQuery(5), options);

    const core::RunStats& stats = loop.last_run();
    SCOPED_TRACE(core::ExecutionModeName(mode));
    EXPECT_TRUE(stats.parallelized);
    const auto rounds = stats.per_iteration();
    ASSERT_EQ(rounds.size(), static_cast<size_t>(stats.iterations));

    uint64_t updates = 0, compute = 0, gather = 0, produced = 0, skipped = 0;
    double compute_s = 0, gather_s = 0;
    for (size_t i = 0; i < rounds.size(); ++i) {
      EXPECT_EQ(rounds[i].round, static_cast<int64_t>(i + 1));
      EXPECT_GT(rounds[i].seconds, 0.0);
      updates += rounds[i].updates;
      compute += rounds[i].compute_tasks;
      gather += rounds[i].gather_tasks;
      produced += rounds[i].messages_produced;
      skipped += rounds[i].partitions_skipped;
      compute_s += rounds[i].compute_seconds;
      gather_s += rounds[i].gather_seconds;
    }
    // Per-round deltas sum back to the flat totals.
    EXPECT_EQ(updates, stats.total_updates);
    EXPECT_EQ(compute, stats.compute_tasks);
    EXPECT_EQ(gather, stats.gather_tasks);
    EXPECT_EQ(produced, stats.message_tables);
    EXPECT_EQ(skipped, stats.skipped_tasks);
    EXPECT_GT(compute_s, 0.0);
    EXPECT_GT(gather_s, 0.0);
  }
}

TEST_F(EndToEndTest, TelemetryExportersRoundTripARealRun) {
  const graph::Graph g = graph::MakeWebGraph(200, 3, 23);
  {
    auto conn = dbc::DriverManager::GetConnection(Url());
    graph::LoadEdges(*conn, g);
  }
  core::SqloopOptions options;
  options.mode = core::ExecutionMode::kSync;
  options.partitions = 4;
  options.threads = 2;
  core::SqLoop loop(Url());
  loop.Execute(core::workloads::PageRankQuery(4), options);

  const auto recorder = loop.last_run().recorder;
  ASSERT_NE(recorder, nullptr);
  if (telemetry::kHooksEnabled) {
    // Statement counters attributed across both layers and all threads.
    EXPECT_GT(recorder->counter("dbc.statements"), 0u);
    EXPECT_GT(recorder->counter("dbc.round_trips"), 0u);
    EXPECT_GT(recorder->counter("minidb.rows_examined"), 0u);
    EXPECT_GT(recorder->span_count(), 0u);
  }

  // JSONL round-trips losslessly through the reader.
  const std::string jsonl = telemetry::JsonLines(*recorder);
  EXPECT_FALSE(jsonl.empty());
  std::istringstream in(jsonl);
  telemetry::Recorder parsed;
  telemetry::ReadJsonLines(in, parsed);
  EXPECT_EQ(telemetry::JsonLines(parsed), jsonl);
  EXPECT_EQ(parsed.iteration_count(), recorder->iteration_count());
  EXPECT_EQ(parsed.span_count(), recorder->span_count());

  // The Prometheus snapshot reflects the same run.
  const std::string prom = telemetry::PrometheusSnapshot(*recorder);
  EXPECT_NE(prom.find("sqloop_iterations_total " +
                      std::to_string(loop.last_run().iterations)),
            std::string::npos);
  EXPECT_NE(prom.find("sqloop_updates_total " +
                      std::to_string(loop.last_run().total_updates)),
            std::string::npos);
}

TEST_F(EndToEndTest, CsvRoundTripThroughTheFullStack) {
  const graph::Graph g = graph::MakeHostGraph(5, 6, 20, 2);
  const std::string path = ::testing::TempDir() + "/e2e_edges.csv";
  g.SaveCsv(path);
  const graph::Graph loaded = graph::Graph::LoadCsv(path);
  {
    auto conn = dbc::DriverManager::GetConnection(Url());
    graph::LoadEdges(*conn, loaded);
  }
  core::SqLoop loop(Url());
  const auto result = loop.Execute(core::workloads::DescendantQuery(0));
  const auto bfs = graph::BfsHops(g, 0);
  EXPECT_EQ(result.rows.size(), bfs.size());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sqloop
