#include "minidb/database.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <mutex>

#include "common/error.h"

namespace sqloop::minidb {
namespace {

/// A process-unique scratch directory for this database's spill files.
/// pid + counter, not the database name: names can repeat across tests and
/// may hold characters the filesystem dislikes.
std::string SpillDirFor() {
  static std::atomic<uint64_t> next_id{0};
  std::error_code ec;
  std::filesystem::path base = std::filesystem::temp_directory_path(ec);
  if (ec) base = ".";
  return (base / ("sqloop_pool_" + std::to_string(::getpid()) + "_" +
                  std::to_string(next_id.fetch_add(1))))
      .string();
}

}  // namespace

EngineProfile EngineProfile::ByName(const std::string& name) {
  const std::string folded = FoldIdentifier(name);
  if (folded == "postgres" || folded == "postgresql") return Postgres();
  if (folded == "mysql") return MySql();
  if (folded == "mariadb") return MariaDb();
  if (folded == "canonical" || folded.empty()) return Canonical();
  throw UsageError("unknown engine profile '" + name + "'");
}

Database::Database(std::string name, EngineProfile profile,
                   std::shared_ptr<MemoryTracker> server_tracker)
    : name_(std::move(name)),
      profile_(std::move(profile)),
      server_tracker_(std::move(server_tracker)),
      tracker_("db:" + name_, server_tracker_.get()),
      pool_(std::make_shared<BufferPool>(SpillDirFor())) {
  // Quota pressure on the database scope evicts cold pages before a
  // statement sees QuotaExceededError (see MemoryTracker::set_reclaimer).
  tracker_.set_reclaimer(
      [pool = pool_.get()](int64_t bytes) { return pool->TryReclaim(bytes); });
}

void Database::CreateTable(const std::string& table_name, Schema schema,
                           bool if_not_exists) {
  const std::string folded = FoldIdentifier(table_name);
  const std::scoped_lock lock(catalog_lock_);
  if (tables_.contains(folded) || views_.contains(folded)) {
    if (if_not_exists) return;
    throw ExecutionError("relation '" + table_name + "' already exists");
  }
  auto table = std::make_shared<Table>(folded, std::move(schema));
  // Attached before the table is published, so every row it ever stores
  // is accounted against this database's scope — and checksummed from the
  // first insert on.
  table->set_memory_tracker(&tracker_);
  table->set_integrity_enabled(integrity_enabled());
  table->ConfigureStorage(pool_, paged_enabled());
  tables_.emplace(folded, std::move(table));
  BumpCatalogVersion();
}

bool Database::DropTable(const std::string& table_name, bool if_exists) {
  const std::string folded = FoldIdentifier(table_name);
  const std::scoped_lock lock(catalog_lock_);
  if (tables_.erase(folded) > 0) {
    BumpCatalogVersion();
    return true;
  }
  if (!if_exists) {
    throw ExecutionError("table '" + table_name + "' does not exist");
  }
  return false;
}

void Database::CreateView(const std::string& view_name,
                          sql::SelectPtr definition) {
  const std::string folded = FoldIdentifier(view_name);
  const std::scoped_lock lock(catalog_lock_);
  if (tables_.contains(folded) || views_.contains(folded)) {
    throw ExecutionError("relation '" + view_name + "' already exists");
  }
  views_.emplace(folded, std::shared_ptr<const sql::SelectStmt>(
                             definition.release()));
  BumpCatalogVersion();
}

bool Database::DropView(const std::string& view_name, bool if_exists) {
  const std::string folded = FoldIdentifier(view_name);
  const std::scoped_lock lock(catalog_lock_);
  if (views_.erase(folded) > 0) {
    BumpCatalogVersion();
    return true;
  }
  if (!if_exists) {
    throw ExecutionError("view '" + view_name + "' does not exist");
  }
  return false;
}

std::shared_ptr<Table> Database::FindTable(
    const std::string& table_name) const {
  const std::shared_lock lock(catalog_lock_);
  const auto it = tables_.find(FoldIdentifier(table_name));
  return it == tables_.end() ? nullptr : it->second;
}

std::shared_ptr<const sql::SelectStmt> Database::FindView(
    const std::string& view_name) const {
  const std::shared_lock lock(catalog_lock_);
  const auto it = views_.find(FoldIdentifier(view_name));
  return it == views_.end() ? nullptr : it->second;
}

bool Database::HasTable(const std::string& table_name) const {
  const std::shared_lock lock(catalog_lock_);
  return tables_.contains(FoldIdentifier(table_name));
}

bool Database::HasView(const std::string& view_name) const {
  const std::shared_lock lock(catalog_lock_);
  return views_.contains(FoldIdentifier(view_name));
}

std::vector<std::string> Database::TableNames() const {
  const std::shared_lock lock(catalog_lock_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace sqloop::minidb
