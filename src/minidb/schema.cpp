#include "minidb/schema.h"

#include "common/error.h"
#include "common/strings.h"

namespace sqloop::minidb {

std::string FoldIdentifier(const std::string& name) {
  return strings::ToLower(name);
}

Schema::Schema(std::vector<Column> columns, int primary_key_index)
    : columns_(std::move(columns)), primary_key_index_(primary_key_index) {
  for (auto& column : columns_) column.name = FoldIdentifier(column.name);
  if (primary_key_index_ >= static_cast<int>(columns_.size())) {
    throw UsageError("primary key index out of range");
  }
}

int Schema::FindColumn(const std::string& name) const noexcept {
  const std::string folded = FoldIdentifier(name);
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == folded) return static_cast<int>(i);
  }
  return -1;
}

void Schema::CoerceRow(Row& row) const {
  if (row.size() != columns_.size()) {
    throw ExecutionError("row has " + std::to_string(row.size()) +
                         " values but table has " +
                         std::to_string(columns_.size()) + " columns");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    Value& v = row[i];
    if (v.is_null()) continue;
    switch (columns_[i].type) {
      case ValueType::kInt64:
        if (v.is_int()) continue;
        if (v.is_double()) {
          const double d = v.as_double();
          const auto as_int = static_cast<int64_t>(d);
          if (static_cast<double>(as_int) == d) {
            v = Value(as_int);
            continue;
          }
        }
        throw ExecutionError("cannot store " +
                             std::string(ValueTypeName(v.type())) +
                             " value in BIGINT column '" + columns_[i].name +
                             "'");
      case ValueType::kDouble:
        if (v.is_double()) continue;
        if (v.is_int()) {
          v = Value(static_cast<double>(v.as_int()));
          continue;
        }
        throw ExecutionError("cannot store " +
                             std::string(ValueTypeName(v.type())) +
                             " value in DOUBLE column '" + columns_[i].name +
                             "'");
      case ValueType::kText:
        if (v.is_text()) continue;
        v = Value(v.ToString());
        continue;
      case ValueType::kNull:
        throw ExecutionError("column '" + columns_[i].name +
                             "' has invalid NULL type");
    }
  }
}

const Value& ResultSet::ScalarAt(size_t row, size_t col) const {
  if (row >= rows.size() || col >= rows[row].size()) {
    throw UsageError("ScalarAt(" + std::to_string(row) + ", " +
                     std::to_string(col) + ") out of range for " +
                     std::to_string(rows.size()) + "-row result");
  }
  return rows[row][col];
}

}  // namespace sqloop::minidb
