// Expression evaluation over in-flight relations, with SQL NULL semantics
// (three-valued logic, NULL-propagating arithmetic) and the aggregate
// accumulators for SUM / MIN / MAX / COUNT / AVG.
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "minidb/schema.h"
#include "sql/ast.h"

namespace sqloop::minidb {

/// Where a column of an intermediate relation came from: `qualifier` is the
/// table alias (folded), `name` the column name (folded).
struct ColumnBinding {
  std::string qualifier;
  std::string name;
};

/// An intermediate relation flowing between operators, in one of two
/// storage modes:
///   * owned    — `rows` holds materialized copies (the classic form, and
///     always the form of operator *outputs*: projection and aggregation
///     construct fresh rows);
///   * borrowed — `views` holds pointers into Table storage (zero-copy
///     scans). Views are valid while the executing statement holds the
///     table's lock *and* the table's row vector is not grown: the
///     executor guarantees the latter by materializing every INSERT source
///     before inserting and by applying UPDATE writes (in-place slot
///     assignment, never a reallocation of the row vector) only after all
///     matching reads have finished.
/// Consumers iterate with row_count()/row(), which work in either mode.
struct Relation {
  std::vector<ColumnBinding> columns;
  std::vector<Row> rows;          // owned storage (empty in borrowed mode)
  std::vector<const Row*> views;  // borrowed row views (borrowed mode only)
  bool borrowed = false;

  size_t row_count() const noexcept {
    return borrowed ? views.size() : rows.size();
  }
  const Row& row(size_t i) const noexcept {
    return borrowed ? *views[i] : rows[i];
  }

  /// Deep-copies borrowed views into owned rows; no-op when already owned.
  void Materialize();
};

/// Evaluation context: the current row inside a relation, plus (during
/// aggregate projection) the values computed for each aggregate
/// sub-expression of the SELECT list.
///
/// `resolution_cache` memoizes column-reference lookups per (expression
/// node, relation) so hot loops avoid repeated linear scans.
struct EvalContext {
  const std::vector<ColumnBinding>* columns = nullptr;
  const Row* row = nullptr;
  const std::vector<const sql::Expr*>* agg_exprs = nullptr;
  const std::vector<Value>* agg_values = nullptr;
  std::unordered_map<const sql::Expr*, int>* resolution_cache = nullptr;
};

/// Evaluates `expr` in `ctx`. Throws AnalysisError for unresolved or
/// ambiguous columns and ExecutionError for runtime type errors.
Value Evaluate(const sql::Expr& expr, const EvalContext& ctx);

/// True when the value counts as satisfied in a WHERE/HAVING/ON position
/// (non-NULL and numerically non-zero).
bool Truthy(const Value& v);

/// Resolves a column reference against a binding list. Returns the column
/// index; throws AnalysisError if missing or ambiguous.
int ResolveColumn(const std::vector<ColumnBinding>& columns,
                  const std::string& qualifier, const std::string& name);

/// Same, but returns -1 instead of throwing when the column is absent
/// (still throws on ambiguity).
int TryResolveColumn(const std::vector<ColumnBinding>& columns,
                     const std::string& qualifier, const std::string& name);

/// True if every column reference in `expr` resolves in `columns`.
bool AllColumnsResolve(const sql::Expr& expr,
                       const std::vector<ColumnBinding>& columns);

/// Streaming accumulator for one aggregate function.
class Accumulator {
 public:
  Accumulator(sql::AggFunc func, bool distinct);

  /// Feeds one input value (ignored when NULL, per SQL).
  void Add(const Value& v);

  // --- vectorized bulk feeds (batch pipeline; see minidb/batch.h) -------
  // Dense non-NULL payload spans gathered from one batch's selected lanes,
  // fed in lane order so every state transition (including double rounding
  // and the running MIN/MAX with Value::Compare's NaN handling) matches the
  // equivalent sequence of Add() calls exactly. Callers must not use these
  // on DISTINCT accumulators — the dedup set needs Value keys, so DISTINCT
  // aggregates stay on the scalar Add() path.

  /// Bulk-adds int64 payloads (int64 column lanes).
  void AddInt64Span(const int64_t* values, size_t count);
  /// Bulk-adds double payloads (double column lanes).
  void AddDoubleSpan(const double* values, size_t count);
  /// Bulk-adds borrowed text payloads (text column lanes); only valid for
  /// COUNT/MIN/MAX (SUM/AVG over text throws, exactly like Add()).
  void AddTextSpan(const std::string* const* values, size_t count);
  /// COUNT(*) bulk feed: `count` accepted rows. Only valid for a
  /// non-DISTINCT COUNT.
  void AddCountedRows(int64_t count);

  Value Result() const;

 private:
  bool ShouldSkipDuplicate(const Value& v);

  sql::AggFunc func_;
  bool distinct_;
  std::unordered_set<Value, ValueKeyHash, ValueKeyEq> seen_;

  int64_t value_count_ = 0;  // accepted (non-NULL, non-duplicate) inputs
  int64_t int_sum_ = 0;
  double double_sum_ = 0;
  bool saw_double_ = false;
  Value extreme_;           // running MIN/MAX
};

/// Collects the distinct aggregate sub-expressions (by structural equality)
/// appearing in `expr` into `out`.
void CollectAggregates(const sql::Expr& expr,
                       std::vector<const sql::Expr*>& out);

/// True if `expr` contains any aggregate function call.
bool ContainsAggregate(const sql::Expr& expr);

}  // namespace sqloop::minidb
