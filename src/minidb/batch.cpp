#include "minidb/batch.h"

namespace sqloop::minidb {
namespace {

using Kind = PredicateKernel::Kind;
using Op = PredicateKernel::Op;

bool IsNumericType(ValueType t) noexcept {
  return t == ValueType::kInt64 || t == ValueType::kDouble;
}

/// Resolves `e` as a plain reference to a column of this table (bare or
/// qualified by `alias`, already folded). Returns the schema ordinal or -1.
int MatchColumn(const sql::Expr& e, const Schema& schema,
                const std::string& alias) {
  if (e.kind != sql::ExprKind::kColumnRef) return -1;
  if (!e.qualifier.empty() && FoldIdentifier(e.qualifier) != alias) return -1;
  return schema.FindColumn(FoldIdentifier(e.column));
}

bool MapComparisonOp(sql::BinaryOp op, Op* out) noexcept {
  switch (op) {
    case sql::BinaryOp::kEq: *out = Op::kEq; return true;
    case sql::BinaryOp::kNotEq: *out = Op::kNotEq; return true;
    case sql::BinaryOp::kLess: *out = Op::kLess; return true;
    case sql::BinaryOp::kLessEq: *out = Op::kLessEq; return true;
    case sql::BinaryOp::kGreater: *out = Op::kGreater; return true;
    case sql::BinaryOp::kGreaterEq: *out = Op::kGreaterEq; return true;
    default: return false;
  }
}

/// `lit <op> col` rewritten as `col <op'> lit`.
Op FlipOp(Op op) noexcept {
  switch (op) {
    case Op::kLess: return Op::kGreater;
    case Op::kLessEq: return Op::kGreaterEq;
    case Op::kGreater: return Op::kLess;
    case Op::kGreaterEq: return Op::kLessEq;
    default: return op;  // = and <> commute
  }
}

/// Exactly Value::Compare's numeric arm: NaN compares "equal" to
/// everything, so comparisons must go through this three-way form rather
/// than direct operator== on doubles.
template <typename T>
int Cmp3(T x, T y) noexcept {
  return x < y ? -1 : (x > y ? 1 : 0);
}

/// How many lanes ahead the filter loops issue a software prefetch. Each
/// lane's cell lives in the row's separately allocated Value array, so a
/// large scan is a pointer chase into scattered heap blocks; computing the
/// cell address (row header is contiguous and cache-resident) and
/// prefetching it ~16 lanes early hides most of that latency.
constexpr uint32_t kPrefetchDistance = 16;

inline void PrefetchCell(const RowBatch& batch, uint32_t i, int column) {
  if (i + kPrefetchDistance < batch.selected) {
    const uint32_t lane = batch.selection[i + kPrefetchDistance];
    __builtin_prefetch(batch.rows[lane]->data() + column);
  }
}

/// Compacts `batch.selection` to the lanes whose cell in `column` passes
/// (order preserved, branch-free store). The cell is read once per lane,
/// straight from the borrowed row view — no scratch materialization.
template <typename PassFn>
void FilterCells(RowBatch& batch, int column, PassFn pass) {
  uint32_t out = 0;
  if (batch.selected == batch.size) {
    // A full selection is always the identity permutation (SelectAll
    // starts it that way and compaction only ever removes lanes), so the
    // first conjunct skips the selection-vector load entirely.
    for (uint32_t lane = 0; lane < batch.size; ++lane) {
      if (lane + kPrefetchDistance < batch.size) {
        __builtin_prefetch(batch.rows[lane + kPrefetchDistance]->data() +
                           column);
      }
      batch.selection[out] = lane;
      out += pass((*batch.rows[lane])[column]) ? 1u : 0u;
    }
    batch.selected = out;
    return;
  }
  for (uint32_t i = 0; i < batch.selected; ++i) {
    PrefetchCell(batch, i, column);
    const uint32_t lane = batch.selection[i];
    batch.selection[out] = lane;
    out += pass((*batch.rows[lane])[column]) ? 1u : 0u;
  }
  batch.selected = out;
}

/// Two-column form of FilterCells.
template <typename PassFn>
void FilterCells2(RowBatch& batch, int lcol, int rcol, PassFn pass) {
  uint32_t out = 0;
  if (batch.selected == batch.size) {
    // Same contract as FilterCells: a full selection may be elided
    // (MarkAllSelected), so the first conjunct must not read the array —
    // it materializes the surviving lanes instead.
    for (uint32_t lane = 0; lane < batch.size; ++lane) {
      if (lane + kPrefetchDistance < batch.size) {
        __builtin_prefetch(batch.rows[lane + kPrefetchDistance]->data() +
                           lcol);
      }
      const Row& row = *batch.rows[lane];
      batch.selection[out] = lane;
      out += pass(row[lcol], row[rcol]) ? 1u : 0u;
    }
    batch.selected = out;
    return;
  }
  for (uint32_t i = 0; i < batch.selected; ++i) {
    PrefetchCell(batch, i, lcol);
    const uint32_t lane = batch.selection[i];
    const Row& row = *batch.rows[lane];
    batch.selection[out] = lane;
    out += pass(row[lcol], row[rcol]) ? 1u : 0u;
  }
  batch.selected = out;
}

/// Applies one comparison op over a per-lane three-way result, hoisting the
/// op switch out of the lane loop. `cmp3` is only invoked on non-NULL cells
/// (a NULL on either side makes the comparison NULL, which filters the lane
/// out regardless of the op — Truthy(NULL) is false).
template <typename CmpFn>
void FilterCmp(RowBatch& batch, Op op, int column, CmpFn cmp3) {
  switch (op) {
    case Op::kEq:
      FilterCells(batch, column, [&](const Value& v) {
        return !v.is_null() && cmp3(v) == 0;
      });
      return;
    case Op::kNotEq:
      FilterCells(batch, column, [&](const Value& v) {
        return !v.is_null() && cmp3(v) != 0;
      });
      return;
    case Op::kLess:
      FilterCells(batch, column, [&](const Value& v) {
        return !v.is_null() && cmp3(v) < 0;
      });
      return;
    case Op::kLessEq:
      FilterCells(batch, column, [&](const Value& v) {
        return !v.is_null() && cmp3(v) <= 0;
      });
      return;
    case Op::kGreater:
      FilterCells(batch, column, [&](const Value& v) {
        return !v.is_null() && cmp3(v) > 0;
      });
      return;
    case Op::kGreaterEq:
      FilterCells(batch, column, [&](const Value& v) {
        return !v.is_null() && cmp3(v) >= 0;
      });
      return;
  }
}

/// Column-vs-column form of FilterCmp.
template <typename CmpFn>
void FilterCmp2(RowBatch& batch, Op op, int lcol, int rcol, CmpFn cmp3) {
  switch (op) {
    case Op::kEq:
      FilterCells2(batch, lcol, rcol, [&](const Value& a, const Value& b) {
        return !a.is_null() && !b.is_null() && cmp3(a, b) == 0;
      });
      return;
    case Op::kNotEq:
      FilterCells2(batch, lcol, rcol, [&](const Value& a, const Value& b) {
        return !a.is_null() && !b.is_null() && cmp3(a, b) != 0;
      });
      return;
    case Op::kLess:
      FilterCells2(batch, lcol, rcol, [&](const Value& a, const Value& b) {
        return !a.is_null() && !b.is_null() && cmp3(a, b) < 0;
      });
      return;
    case Op::kLessEq:
      FilterCells2(batch, lcol, rcol, [&](const Value& a, const Value& b) {
        return !a.is_null() && !b.is_null() && cmp3(a, b) <= 0;
      });
      return;
    case Op::kGreater:
      FilterCells2(batch, lcol, rcol, [&](const Value& a, const Value& b) {
        return !a.is_null() && !b.is_null() && cmp3(a, b) > 0;
      });
      return;
    case Op::kGreaterEq:
      FilterCells2(batch, lcol, rcol, [&](const Value& a, const Value& b) {
        return !a.is_null() && !b.is_null() && cmp3(a, b) >= 0;
      });
      return;
  }
}

/// Numeric view of a schema-typed non-NULL cell whose column type is known
/// at kernel-compile time (loop-invariant `is_int`).
double NumericCell(const Value& v, bool is_int) noexcept {
  return is_int ? static_cast<double>(v.int_unchecked()) : v.double_unchecked();
}

}  // namespace

bool CompilePredicateKernel(const sql::Expr& conjunct, const Schema& schema,
                            const std::string& alias, PredicateKernel* out) {
  *out = {};
  if (conjunct.kind == sql::ExprKind::kLiteral) {
    const Value& v = conjunct.literal;
    if (v.is_null()) {
      out->kind = Kind::kNeverMatch;  // Truthy(NULL) is false
      return true;
    }
    if (!v.is_numeric()) return false;  // Truthy throws on TEXT, per row
    out->kind =
        v.NumericAsDouble() != 0 ? Kind::kAlwaysMatch : Kind::kNeverMatch;
    return true;
  }

  if (conjunct.kind == sql::ExprKind::kIsNull) {
    const int col = MatchColumn(*conjunct.left, schema, alias);
    if (col < 0) return false;
    out->kind = conjunct.is_not_null ? Kind::kIsNotNull : Kind::kIsNull;
    out->column = col;
    return true;
  }

  if (conjunct.kind != sql::ExprKind::kBinary) return false;
  Op op;
  if (!MapComparisonOp(conjunct.binary_op, &op)) return false;

  const sql::Expr* lhs = conjunct.left.get();
  const sql::Expr* rhs = conjunct.right.get();
  int lcol = MatchColumn(*lhs, schema, alias);
  int rcol = MatchColumn(*rhs, schema, alias);

  if (lcol >= 0 && rcol >= 0) {
    const ValueType lt = schema.columns()[lcol].type;
    const ValueType rt = schema.columns()[rcol].type;
    if (IsNumericType(lt) && IsNumericType(rt)) {
      out->kind = Kind::kNumericColumns;
    } else if (lt == ValueType::kText && rt == ValueType::kText) {
      out->kind = Kind::kTextColumns;
    } else {
      return false;  // mixed type families throw per non-NULL row
    }
    out->op = op;
    out->column = lcol;
    out->rhs_column = rcol;
    out->column_type = lt;
    out->rhs_type = rt;
    return true;
  }

  if (lcol < 0) {
    std::swap(lhs, rhs);
    std::swap(lcol, rcol);
    op = FlipOp(op);
  }
  if (lcol < 0) return false;  // neither side is a column of this table
  if (rhs->kind != sql::ExprKind::kLiteral) return false;
  const Value& lit = rhs->literal;
  if (lit.is_null()) {
    // `col <op> NULL` is NULL for every row; never matches, never throws.
    out->kind = Kind::kNeverMatch;
    return true;
  }
  const ValueType ct = schema.columns()[lcol].type;
  if (IsNumericType(ct) && lit.is_numeric()) {
    out->kind = Kind::kNumericLiteral;
    out->literal_is_int = lit.is_int();
    if (lit.is_int()) {
      out->literal_int = lit.as_int();
      out->literal_double = static_cast<double>(lit.as_int());
    } else {
      out->literal_double = lit.as_double();
    }
  } else if (ct == ValueType::kText && lit.is_text()) {
    out->kind = Kind::kTextLiteral;
    out->literal_text = lit.as_text();
  } else {
    return false;  // type-family mismatch throws per non-NULL row
  }
  out->op = op;
  out->column = lcol;
  out->column_type = ct;
  return true;
}

void ApplyPredicateKernel(const PredicateKernel& kernel, RowBatch& batch) {
  switch (kernel.kind) {
    case Kind::kAlwaysMatch:
      return;
    case Kind::kNeverMatch:
      batch.selected = 0;
      return;
    case Kind::kIsNull:
      FilterCells(batch, kernel.column,
                  [](const Value& v) { return v.is_null(); });
      return;
    case Kind::kIsNotNull:
      FilterCells(batch, kernel.column,
                  [](const Value& v) { return !v.is_null(); });
      return;
    case Kind::kNumericLiteral: {
      if (kernel.column_type == ValueType::kInt64 && kernel.literal_is_int) {
        const int64_t lit = kernel.literal_int;
        FilterCmp(batch, kernel.op, kernel.column,
                  [lit](const Value& v) { return Cmp3(v.int_unchecked(), lit); });
      } else {
        const double lit = kernel.literal_double;
        const bool col_int = kernel.column_type == ValueType::kInt64;
        FilterCmp(batch, kernel.op, kernel.column, [lit, col_int](
                                                       const Value& v) {
          return Cmp3(NumericCell(v, col_int), lit);
        });
      }
      return;
    }
    case Kind::kTextLiteral: {
      const std::string& lit = kernel.literal_text;
      FilterCmp(batch, kernel.op, kernel.column, [&lit](const Value& v) {
        return Cmp3(v.text_unchecked().compare(lit), 0);
      });
      return;
    }
    case Kind::kNumericColumns: {
      if (kernel.column_type == ValueType::kInt64 &&
          kernel.rhs_type == ValueType::kInt64) {
        FilterCmp2(batch, kernel.op, kernel.column, kernel.rhs_column,
                   [](const Value& a, const Value& b) {
                     return Cmp3(a.int_unchecked(), b.int_unchecked());
                   });
      } else {
        const bool l_int = kernel.column_type == ValueType::kInt64;
        const bool r_int = kernel.rhs_type == ValueType::kInt64;
        FilterCmp2(batch, kernel.op, kernel.column, kernel.rhs_column,
                   [l_int, r_int](const Value& a, const Value& b) {
                     return Cmp3(NumericCell(a, l_int), NumericCell(b, r_int));
                   });
      }
      return;
    }
    case Kind::kTextColumns: {
      FilterCmp2(batch, kernel.op, kernel.column, kernel.rhs_column,
                 [](const Value& a, const Value& b) {
                   return Cmp3(a.text_unchecked().compare(b.text_unchecked()), 0);
                 });
      return;
    }
  }
}

}  // namespace sqloop::minidb
