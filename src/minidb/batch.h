// The batched data plane for the vectorized SELECT pipeline: fixed-capacity
// row batches with a selection vector, dense typed buffers for aggregate
// feeds, and compiled predicate kernels that shrink the selection in tight
// per-column loops reading cells straight from the borrowed row views.
//
// Correctness contract (see DESIGN.md "Vectorized execution"): a kernel is
// only compiled for conjunct shapes that can never throw for ANY stored row
// given the table schema — Schema::CoerceRow guarantees every stored cell is
// schema-typed or NULL, so a numeric-column-vs-numeric-literal comparison is
// total. Shapes that could raise a per-row type error (mixed type families,
// complex expressions) do not compile; the caller keeps them on the scalar
// path, which reproduces the row-at-a-time pipeline's errors exactly.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/function_ref.h"
#include "minidb/schema.h"
#include "sql/ast.h"

namespace sqloop::minidb {

/// A fixed-capacity block of borrowed row views plus the selection vector
/// naming the lanes still alive after predicate evaluation. Views obey the
/// same lifetime rules as Relation's borrowed mode: valid while the
/// executing statement holds the table's lock and the row vector is not
/// grown.
struct RowBatch {
  static constexpr uint32_t kCapacity = 1024;

  std::array<const Row*, kCapacity> rows;
  uint32_t size = 0;  // filled lanes

  // Indices of surviving lanes, ascending (preserves scan order).
  std::array<uint32_t, kCapacity> selection;
  uint32_t selected = 0;

  void Reset() noexcept {
    size = 0;
    selected = 0;
  }
  /// Marks every filled lane selected (the state before any predicate).
  void SelectAll() noexcept {
    for (uint32_t i = 0; i < size; ++i) selection[i] = i;
    selected = size;
  }
  /// SelectAll without materializing the identity permutation. Only valid
  /// when the next consumer of a full selection is a compiled kernel:
  /// ApplyPredicateKernel treats `selected == size` as identity (never
  /// reading the array) and rewrites it in place. Anything that READS a
  /// full selection — the scalar-fallback intersection, downstream
  /// operators when no kernel runs — needs SelectAll.
  void MarkAllSelected() noexcept { selected = size; }
};

/// Consumes one filtered batch; mutable so downstream operators may shrink
/// the selection further.
using BatchSink = FunctionRef<void(RowBatch&)>;
/// Pushes batches into a sink exactly once (the batched RowSource).
using BatchSource = FunctionRef<void(const BatchSink&)>;

/// Dense typed buffers for feeding selected lanes of one column into the
/// aggregate span reductions (reused across batches). Text payloads are
/// borrowed pointers into Table storage (same lifetime as the row views).
struct ColumnVector {
  std::vector<int64_t> ints;
  std::vector<double> doubles;
  std::vector<const std::string*> texts;
  std::vector<uint8_t> nulls;  // 1 = NULL
};

/// One compiled WHERE conjunct: a total (never-throwing) predicate applied
/// to a whole batch, shrinking the selection vector.
struct PredicateKernel {
  enum class Kind : uint8_t {
    kAlwaysMatch,     // truthy numeric literal conjunct
    kNeverMatch,      // NULL-involving comparison or falsy/NULL literal
    kIsNull,          // col IS NULL
    kIsNotNull,       // col IS NOT NULL
    kNumericLiteral,  // numeric col <op> numeric literal
    kTextLiteral,     // text col <op> text literal
    kNumericColumns,  // numeric col <op> numeric col
    kTextColumns,     // text col <op> text col
  };
  enum class Op : uint8_t { kEq, kNotEq, kLess, kLessEq, kGreater, kGreaterEq };

  Kind kind = Kind::kNeverMatch;
  Op op = Op::kEq;
  int column = -1;      // left column ordinal in the table schema
  int rhs_column = -1;  // right column ordinal (column-vs-column kinds)
  ValueType column_type = ValueType::kNull;
  ValueType rhs_type = ValueType::kNull;
  bool literal_is_int = false;
  int64_t literal_int = 0;
  double literal_double = 0;
  std::string literal_text;
};

/// Attempts to compile `conjunct` into a total kernel against `schema`
/// (column references must resolve in this single table, optionally
/// qualified by `alias`, already folded). Returns false when the shape or
/// its type pairing could throw at runtime — the caller keeps the conjunct
/// on the scalar path.
bool CompilePredicateKernel(const sql::Expr& conjunct, const Schema& schema,
                            const std::string& alias, PredicateKernel* out);

/// Applies a compiled kernel to `batch`, shrinking `batch.selection` (order
/// preserved). Cells are read once per surviving lane, straight from the
/// borrowed row views. Never throws.
void ApplyPredicateKernel(const PredicateKernel& kernel, RowBatch& batch);

}  // namespace sqloop::minidb
