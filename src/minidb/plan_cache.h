// Per-database plan cache: the compile-once half of the prepared-execution
// path (paper §V — an iterative query re-executes the same small statement
// set every round, so parse/bind cost must not scale with rounds × tasks).
//
// A cache entry is keyed by (engine profile, normalized SQL text) and holds
// two layers with different lifetimes:
//   * the parsed AST — a pure function of the text, shared immutably and
//     never invalidated;
//   * the bound lock plan (base tables to lock, views expanded) and the
//     bound access plan (per-core scan/index-probe choice) — valid only
//     for the catalog version they were computed under. Any DDL (including
//     index DDL) bumps Database::catalog_version(), and the next lookup
//     re-binds both from the cached AST without re-parsing.
// Name resolution still happens at execution time against the live
// catalog, and the executor re-validates a cached access path before
// probing, so a cached plan can never read a dropped index — the version
// check exists to keep the precomputed lock set, view expansion, and
// index choice honest.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sql/ast.h"

namespace sqloop::minidb {

/// The precomputed "physical" part of a plan: every base table the
/// statement locks up front, as (folded name, needs exclusive lock).
/// Table pointers are re-resolved at acquisition time, so a drop/recreate
/// of a listed table is safe. Statement kinds that lock inside their own
/// execution path (DDL, TRUNCATE, transactions) have an empty entry list.
struct LockPlan {
  std::vector<std::pair<std::string, bool>> entries;
};

/// Bind-time access-path choice for one SELECT core. Only the common
/// SQLoop shape — FROM one base table (no CTE/view shadowing it) — is
/// cached; everything else re-analyzes at execution time, which is cheap.
/// The probe is identified by its *ordinal* into the WHERE clause's
/// top-level AND-conjunct list (SplitConjuncts order is deterministic), not
/// by expression pointer: prepared statements execute a cloned bound AST,
/// so pointers into the cached AST would dangle semantically. The executor
/// re-validates the ordinal's shape against the live catalog before use, so
/// a stale path degrades to a fresh analysis, never to a wrong result.
struct CoreAccessPath {
  bool single_base = false;   // FROM is exactly one base table
  std::string table;          // folded base-table name
  int probe_conjunct = -1;    // conjunct ordinal usable as index probe; -1 =
                              // full scan
  std::string probe_column;   // folded column the probe narrows on

  // --- batched access-path hints (vectorized pipeline) -------------------
  // Bind-time kernel analysis for the batch data plane: kernel_conjuncts[i]
  // records whether WHERE conjunct ordinal i compiled into a total
  // predicate kernel against the schema seen at bind time (see
  // minidb/batch.h). Hints only: the executor re-compiles flagged conjuncts
  // against the live catalog and treats any mismatch (DDL changed the
  // schema, conjunct list diverged) as "analyze fresh" — a stale hint can
  // cost a scalar fallback, never a wrong result.
  bool batch_analyzed = false;
  std::vector<uint8_t> kernel_conjuncts;
};

/// Access paths for every top-level SELECT core of a statement, each vector
/// aligned by core ordinal with the corresponding SelectStmt::cores.
struct AccessPlan {
  std::vector<CoreAccessPath> select_cores;  // kSelect
  std::vector<CoreAccessPath> seed_cores;    // kWith seed / plain CTE body
  std::vector<CoreAccessPath> step_cores;    // recursive member
  std::vector<CoreAccessPath> final_cores;   // final query
  std::vector<CoreAccessPath> insert_cores;  // INSERT ... SELECT source
};

/// One compiled statement: immutable AST plus the lock plan and access
/// plan bound under `bound_version`. Shared between the cache and any
/// prepared statements holding the handle — eviction never invalidates
/// outstanding handles.
struct CachedPlan {
  std::shared_ptr<const sql::Statement> ast;
  std::shared_ptr<const LockPlan> locks;
  std::shared_ptr<const AccessPlan> access;
  uint64_t bound_version = 0;
  int param_count = 0;  // number of `?` placeholders in the statement
};

/// Canonical cache-key spelling of a statement: whitespace runs collapsed
/// (outside quoted regions), trailing semicolons stripped.
std::string NormalizeSqlKey(std::string_view sql);

/// Thread-safe LRU cache of CachedPlan entries. One instance per Database;
/// capacity-capped because iterative runs mint unique message-table names
/// that would otherwise grow the cache without bound.
class PlanCache {
 public:
  static constexpr size_t kDefaultCapacity = 512;

  explicit PlanCache(size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}
  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the entry for `key` (touching it as most-recently-used) or
  /// nullptr. Counts a hit or a miss.
  std::shared_ptr<const CachedPlan> Lookup(const std::string& key);

  /// Inserts or replaces the entry for `key`, evicting the least recently
  /// used entry when over capacity.
  void Put(const std::string& key, std::shared_ptr<const CachedPlan> plan);

  void Clear();

  /// A disabled cache makes Lookup always miss and Put a no-op — the
  /// `--no-plan-cache` ablation path (every statement re-parses).
  void set_enabled(bool enabled) noexcept { enabled_.store(enabled); }
  bool enabled() const noexcept { return enabled_.load(); }

  /// Counts a bind-layer refresh after a catalog change (the parse was
  /// reused; only the lock plan was recomputed).
  void NoteRebind() noexcept { rebinds_.fetch_add(1, std::memory_order_relaxed); }

  /// Counts a hit served from an executor's connection-local plan map
  /// (same semantic event as a Lookup hit, but the shared map was never
  /// touched — see Executor::Prepare).
  void NoteLocalHit() noexcept { hits_.fetch_add(1, std::memory_order_relaxed); }

  // --- observability ----------------------------------------------------
  // Counters are atomics so hot-path notes (local hits, rebinds) never
  // contend on the map mutex.
  uint64_t hits() const noexcept { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const noexcept { return misses_.load(std::memory_order_relaxed); }
  uint64_t rebinds() const noexcept { return rebinds_.load(std::memory_order_relaxed); }
  uint64_t evictions() const noexcept { return evictions_.load(std::memory_order_relaxed); }
  size_t size() const;
  size_t capacity() const noexcept { return capacity_; }

 private:
  using LruList = std::list<std::string>;

  struct Slot {
    std::shared_ptr<const CachedPlan> plan;
    LruList::iterator lru_position;
  };

  const size_t capacity_;
  std::atomic<bool> enabled_{true};
  mutable std::mutex mutex_;
  std::unordered_map<std::string, Slot> entries_;
  LruList lru_;  // front = most recently used
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> rebinds_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace sqloop::minidb
