// Engine profiles — the reproduction's stand-in for PostgreSQL 9.6,
// MySQL 5.7, and MariaDB 10.2 (paper §VI-A).
//
// The profiles differ in genuinely engine-like ways:
//   * join algorithm: PostgreSQL 9.6 has a hash join; MySQL 5.7 famously
//     did not (nested loop only, index nested loop when an index exists);
//     MariaDB 10.2 had block-hash joins available as a fallback.
//   * aggregation: hash aggregation (postgres) vs sort-based (mysql family).
//   * dialect strictness: each profile rejects the other family's DDL
//     spellings, which is what makes SQLoop's translation module necessary.
#pragma once

#include <string>

#include "sql/dialect.h"

namespace sqloop::minidb {

enum class JoinAlgorithm {
  kHash,             // build/probe hash join on equi-keys
  kNestedLoop,       // index nested loop if possible, else plain nested loop
  kNestedLoopOrHash, // index nested loop if possible, else hash join
};

enum class AggAlgorithm { kHash, kSort };

struct EngineProfile {
  std::string name;
  Dialect dialect = Dialect::kCanonical;
  JoinAlgorithm join_algorithm = JoinAlgorithm::kHash;
  AggAlgorithm agg_algorithm = AggAlgorithm::kHash;
  bool strict_dialect = false;
  // MySQL 5.7 (the paper's version) predates recursive CTE support; SQLoop
  // emulates recursion client-side for such engines (§IV-B).
  bool supports_recursive_cte = true;

  static EngineProfile Postgres() {
    return {"postgres", Dialect::kPostgres, JoinAlgorithm::kHash,
            AggAlgorithm::kHash, true, true};
  }
  static EngineProfile MySql() {
    return {"mysql", Dialect::kMySql, JoinAlgorithm::kNestedLoop,
            AggAlgorithm::kSort, true, false};
  }
  static EngineProfile MariaDb() {
    return {"mariadb", Dialect::kMariaDb, JoinAlgorithm::kNestedLoopOrHash,
            AggAlgorithm::kSort, true, true};
  }
  /// Permissive profile used by unit tests.
  static EngineProfile Canonical() {
    return {"canonical", Dialect::kCanonical, JoinAlgorithm::kHash,
            AggAlgorithm::kHash, false, true};
  }

  /// Looks a profile up by name ("postgres", "mysql", "mariadb",
  /// "canonical"). Throws UsageError on unknown names.
  static EngineProfile ByName(const std::string& name);
};

}  // namespace sqloop::minidb
