#include "minidb/server.h"

#include <algorithm>
#include <mutex>

#include "common/error.h"

namespace sqloop::minidb {

Server& Server::Default() {
  static Server server;
  return server;
}

std::shared_ptr<Database> Server::CreateDatabase(const std::string& name,
                                                 EngineProfile profile) {
  const std::string folded = FoldIdentifier(name);
  const std::scoped_lock lock(mutex_);
  if (databases_.contains(folded)) {
    throw UsageError("database '" + name + "' already exists");
  }
  auto db = std::make_shared<Database>(folded, std::move(profile), tracker_);
  databases_.emplace(folded, db);
  return db;
}

std::shared_ptr<Database> Server::FindDatabase(const std::string& name) const {
  const std::scoped_lock lock(mutex_);
  const auto it = databases_.find(FoldIdentifier(name));
  return it == databases_.end() ? nullptr : it->second;
}

bool Server::DropDatabase(const std::string& name) {
  const std::scoped_lock lock(mutex_);
  return databases_.erase(FoldIdentifier(name)) > 0;
}

std::vector<std::string> Server::DatabaseNames() const {
  const std::scoped_lock lock(mutex_);
  std::vector<std::string> names;
  names.reserve(databases_.size());
  for (const auto& [name, db] : databases_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace sqloop::minidb
