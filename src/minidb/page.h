// Slotted pages: the unit of storage, spill, and checksum maintenance for
// paged tables (DESIGN.md "Paged storage & buffer pool").
//
// A page owns up to kPageRowCapacity consecutive row slots of one table.
// Global row ids are stable: row_id = page_index * kPageRowCapacity + slot,
// so tombstone bitmaps, indexes, and scan cursors are untouched by paging.
// A page is either *resident* (rows materialized in `rows`) or *spilled*
// (rows serialized into the table's spill file; `rows` empty). The buffer
// pool owns every state transition; table code touches `rows` only while
// the page is pinned (or, for unbounded pools that never evict, at will).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "minidb/schema.h"

namespace sqloop::minidb {

class BufferPool;
class Table;

/// Row slots per page. A power of two so the row-id split is a shift/mask.
/// 1024 keeps the hit-path scan within a few percent of the resident
/// vector (longer contiguous header runs between page boundaries) while
/// the eviction granule stays fine enough for double-digit-KB pool
/// budgets; 512 measurably pays more boundary cost and 2048 regresses
/// again on allocator size-class placement (bench/micro_storage).
inline constexpr size_t kPageRowShift = 10;
inline constexpr size_t kPageRowCapacity = size_t{1} << kPageRowShift;
inline constexpr size_t kPageRowMask = kPageRowCapacity - 1;

struct Page {
  Table* owner = nullptr;    // back-pointer for spill I/O and accounting
  size_t index = 0;          // page number within the table
  uint32_t row_count = 0;    // slots in use (live + tombstoned payloads)
  std::vector<Row> rows;     // resident payloads; empty while spilled

  bool resident = true;
  bool dirty = true;         // diverges from the spill image (new pages do)
  bool referenced = false;   // clock second-chance bit
  uint32_t pins = 0;         // >0 pins the page in memory

  /// Estimated payload bytes (sum of RowFootprintBytes over slots in use);
  /// what eviction frees and fault-in re-charges.
  int64_t bytes = 0;

  /// Mod-2^64 sum of live-row FNV hashes on this page: the page-granular
  /// shard of the table's content checksum, kept while spilled so a scrub
  /// can localize corruption to one page without trusting its payload.
  uint64_t hash_sum = 0;

  /// Spill-file slot (valid when spill_length > 0); a page re-spills in
  /// place when its new image fits, else appends a fresh slot.
  uint64_t spill_offset = 0;
  uint64_t spill_length = 0;

  /// Intrusive position in the pool's clock ring (index into the ring
  /// vector; -1 while unregistered).
  ptrdiff_t ring_pos = -1;
};

/// Serializes the page image (u32 row count, u32 column count, tagged cell
/// values, CRC-32 footer) into `out` (appended).
void SerializePage(const Page& page, std::string* out);

/// Rebuilds `page->rows` from a serialized image. Throws IntegrityError on
/// CRC mismatch, truncation, or a row count that disagrees with the page
/// header — a torn or corrupted spill slot must never become silent wrong
/// rows. `what` labels the error ("table 't' page 3").
void DeserializePage(const char* data, size_t length, Page* page,
                     const std::string& what);

/// Statement-scoped pin ledger. The executor installs one per statement
/// (thread-local); every row view the engine hands out is backed by a page
/// pinned here, so views stay valid until the statement completes — the
/// paged equivalent of the borrowed-relation lifetime rules. Scopes nest
/// (a nested statement or dump installs its own and restores the previous
/// on destruction).
///
/// Windows (Mark/ReleaseTo) let provably non-retaining scans — fused
/// aggregation, projection that copies values out, DML loops — drop their
/// pins batch-by-batch, which is what keeps a full-table pass over a
/// spilled table inside the pool budget.
class PinScope {
 public:
  PinScope();
  ~PinScope();

  PinScope(const PinScope&) = delete;
  PinScope& operator=(const PinScope&) = delete;

  /// The innermost scope installed on this thread (null outside the
  /// engine; Table then pins transiently and documents the hazard).
  static PinScope* Current() noexcept;

  /// True when `page` is already pinned by this scope (dedup fast path:
  /// one pool interaction per page per scope region, not per row).
  bool Holds(const Page* page) const noexcept {
    return page == last_ || held_.contains(page);
  }

  /// Records a pin this scope now owns (the caller already pinned it in
  /// `pool`); released at ReleaseTo/destruction.
  void Add(BufferPool* pool, Page* page);

  /// Window support: everything pinned after Mark() is released by
  /// ReleaseTo(mark). Strictly nested (LIFO) use only.
  size_t Mark() const noexcept { return pinned_.size(); }
  void ReleaseTo(size_t mark) noexcept;

  /// RAII window over the innermost scope; no-op when none is installed.
  class Window {
   public:
    Window() : scope_(PinScope::Current()),
               mark_(scope_ != nullptr ? scope_->Mark() : 0) {}
    ~Window() { Reset(); }
    Window(const Window&) = delete;
    Window& operator=(const Window&) = delete;
    /// Releases the window's pins now (and keeps the window usable: the
    /// mark stays, so a scan loop can Reset() once per batch).
    void Reset() noexcept {
      if (scope_ != nullptr) scope_->ReleaseTo(mark_);
    }

   private:
    PinScope* scope_;
    size_t mark_;
  };

 private:
  struct Entry {
    BufferPool* pool;
    Page* page;
  };
  std::vector<Entry> pinned_;
  std::unordered_set<const Page*> held_;
  const Page* last_ = nullptr;  // most recently added (single-entry cache)
  PinScope* previous_ = nullptr;
};

}  // namespace sqloop::minidb
