// Statement execution against a Database: the SELECT pipeline (scans,
// joins, grouping, set operations), DML, DDL, recursive CTEs via
// semi-naive evaluation, and weak transactions (table-snapshot rollback).
//
// Concurrency model: each statement collects every base table it touches,
// sorts them by name, and takes table-level locks up front (shared for
// reads, exclusive for writes) — the global ordering makes deadlock
// impossible. This mirrors the table-lock engines the paper runs on and is
// exactly the overhead SQLoop's per-partition tables + message tables are
// designed to avoid (paper §V-C).
#pragma once

#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "minidb/database.h"
#include "minidb/evaluator.h"
#include "telemetry/recorder.h"

namespace sqloop::minidb {

/// Per-connection state: an open transaction's table backups. minidb
/// transactions give statement-level isolation with all-or-nothing
/// rollback of DML (DDL is not transactional; see DESIGN.md).
class Session {
 public:
  bool in_transaction() const noexcept { return in_transaction_; }

 private:
  friend class Executor;
  bool in_transaction_ = false;
  std::unordered_map<std::string, std::vector<Row>> backups_;
};

class Executor {
 public:
  explicit Executor(Database& db) : db_(db) {}

  /// Executes one parsed statement. `session` carries transaction state
  /// and may be null for autocommit execution.
  ResultSet Execute(const sql::Statement& stmt, Session* session = nullptr);

  /// Executes a statement with a precomputed lock plan (from Prepare or a
  /// cached plan), skipping the per-statement table-collection walk.
  ResultSet ExecuteWithPlan(const sql::Statement& stmt, const LockPlan& plan,
                            Session* session = nullptr);

  /// Executes exactly one statement of SQL text. Consults the database's
  /// plan cache first: repeated text skips the parse entirely, and a
  /// catalog change since the plan was bound re-binds without re-parsing.
  ResultSet ExecuteSql(std::string_view text, Session* session = nullptr);

  /// Compile-once entry point: returns the cached plan for `text`, parsing
  /// on a cache miss and re-binding the lock plan if DDL happened since it
  /// was bound. The handle stays valid after eviction and across Reopen.
  /// `pin` declares the text reusable (an explicit PREPARE): it enters the
  /// shared cache on first compile instead of waiting for a second sighting.
  /// Throws UsageError when the plan cache is disabled.
  std::shared_ptr<const CachedPlan> Prepare(std::string_view text,
                                            bool pin = false);

  /// Whether the most recent Prepare call actually parsed (cache miss) as
  /// opposed to serving a cached plan. Feeds the dbc compile-cost model.
  bool last_prepare_parsed() const noexcept { return last_prepare_parsed_; }

  /// Computes the lock plan (base tables to lock, views expanded) for a
  /// statement under the current catalog.
  LockPlan BuildLockPlan(const sql::Statement& stmt) const;

  /// Iteration cap for recursive CTE evaluation (safety net against
  /// non-terminating recursion).
  static constexpr int64_t kMaxRecursions = 100000;

  /// Attributes server-side costs (rows examined, lock-wait time) to a
  /// telemetry recorder; null detaches. Only consulted in telemetry-enabled
  /// builds — the counting hooks compile out otherwise.
  void set_recorder(telemetry::Recorder* recorder) noexcept {
    recorder_ = recorder;
  }

 private:
  struct ExecContext {
    // CTE name (folded) -> materialized relation visible to the query.
    std::unordered_map<std::string, const Relation*> cte_bindings;
  };

  // --- SELECT pipeline -------------------------------------------------
  // For single-core statements the ORDER BY keys are computed inside the
  // core evaluation, where both the projected output and the pre-projection
  // input are visible (SQL allows ordering by either). `order_by` and
  // `sort_keys` are null for UNION arms.
  ResultSet EvalSelect(const sql::SelectStmt& stmt, ExecContext& ctx);
  Relation EvalCore(const sql::SelectCore& core, ExecContext& ctx,
                    const std::vector<sql::OrderItem>* order_by = nullptr,
                    std::vector<Row>* sort_keys = nullptr);
  Relation EvalTableRef(const sql::TableRef& ref, ExecContext& ctx);
  Relation EvalJoin(const sql::TableRef& join, ExecContext& ctx);
  Relation ScanTable(const Table& table, const std::string& alias);
  Relation ProjectCore(const sql::SelectCore& core, const Relation& input,
                       const std::vector<sql::OrderItem>* order_by,
                       std::vector<Row>* sort_keys);
  Relation AggregateCore(const sql::SelectCore& core, const Relation& input,
                         const std::vector<sql::OrderItem>* order_by,
                         std::vector<Row>* sort_keys);

  // --- statements -------------------------------------------------------
  ResultSet ExecuteInternal(const sql::Statement& stmt, const LockPlan& plan,
                            Session* session);
  ResultSet ExecWith(const sql::Statement& stmt, ExecContext& ctx);
  ResultSet ExecCreateTable(const sql::Statement& stmt);
  ResultSet ExecInsert(const sql::Statement& stmt, Session* session);
  ResultSet ExecUpdate(const sql::Statement& stmt, Session* session,
                       ExecContext& ctx);
  ResultSet ExecDelete(const sql::Statement& stmt, Session* session);
  ResultSet ExecTransaction(const sql::Statement& stmt, Session* session);

  void CheckDialect(const sql::Statement& stmt) const;
  void BackupForTransaction(Session* session, Table& table);

  /// Recomputes the bind layer (lock set, view expansion) of a stale plan
  /// under `version`; the parsed AST is shared, never re-parsed.
  std::shared_ptr<const CachedPlan> Rebind(const CachedPlan& stale,
                                           uint64_t version);

  Database& db_;
  // Connection-local plan map (L1 in front of the shared PlanCache),
  // keyed by raw statement text. Iterative runs re-execute the same
  // statements every round from every worker; serving those from here —
  // and re-binding locally after DDL — keeps the shared cache mutex off
  // the hot path entirely. Capped: unique per-round message-table SQL
  // would otherwise grow it without bound.
  static constexpr size_t kLocalPlanCapacity = 256;
  std::unordered_map<std::string, std::shared_ptr<const CachedPlan>>
      local_plans_;
  // Keys this connection has compiled exactly once. Ad-hoc text only
  // enters the shared cache on its second compile, so single-use
  // statements (unique message-table names minted every round) never
  // churn the shared LRU or its mutex.
  std::unordered_set<std::string> first_misses_;
  bool last_prepare_parsed_ = false;
  // Scan-volume accounting for the statement currently executing (each
  // connection owns its Executor, so no synchronization is needed).
  size_t rows_examined_ = 0;
  telemetry::Recorder* recorder_ = nullptr;
};

}  // namespace sqloop::minidb
