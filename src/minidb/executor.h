// Statement execution against a Database: the SELECT pipeline (scans,
// joins, grouping, set operations), DML, DDL, recursive CTEs via
// semi-naive evaluation, and weak transactions (table-snapshot rollback).
//
// Concurrency model: each statement collects every base table it touches,
// sorts them by name, and takes table-level locks up front (shared for
// reads, exclusive for writes) — the global ordering makes deadlock
// impossible. This mirrors the table-lock engines the paper runs on and is
// exactly the overhead SQLoop's per-partition tables + message tables are
// designed to avoid (paper §V-C).
#pragma once

#include <chrono>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/cancel.h"
#include "common/function_ref.h"
#include "minidb/batch.h"
#include "minidb/database.h"
#include "minidb/evaluator.h"
#include "telemetry/recorder.h"

namespace sqloop::minidb {

// Push-pipeline callback types. Sinks and sources are lambdas passed down
// the call stack (FunctionRef is non-owning).
using RowSink = FunctionRef<void(const Row&)>;   // consumes borrowed rows
using OwnedRowSink = FunctionRef<void(Row&&)>;   // may take ownership
using RowSource = FunctionRef<void(const RowSink&)>;  // pushes rows once

/// Per-connection state: an open transaction's table backups. minidb
/// transactions give statement-level isolation with all-or-nothing
/// rollback of DML (DDL is not transactional; see DESIGN.md).
class Session {
 public:
  bool in_transaction() const noexcept { return in_transaction_; }

 private:
  friend class Executor;
  bool in_transaction_ = false;
  std::unordered_map<std::string, std::vector<Row>> backups_;
};

class Executor {
 public:
  explicit Executor(Database& db) : db_(db) {}

  /// Executes one parsed statement. `session` carries transaction state
  /// and may be null for autocommit execution.
  ResultSet Execute(const sql::Statement& stmt, Session* session = nullptr);

  /// Executes a statement with a precomputed lock plan (from Prepare or a
  /// cached plan), skipping the per-statement table-collection walk.
  ResultSet ExecuteWithPlan(const sql::Statement& stmt, const LockPlan& plan,
                            Session* session = nullptr);

  /// Same, additionally supplying the cached per-core access paths so the
  /// fused pipeline skips its scan/index-probe analysis. `access` may be
  /// null (ad-hoc execution); cached paths are re-validated against the
  /// live catalog before use.
  ResultSet ExecuteWithPlan(const sql::Statement& stmt, const LockPlan& plan,
                            const AccessPlan* access, Session* session);

  /// Executes exactly one statement of SQL text. Consults the database's
  /// plan cache first: repeated text skips the parse entirely, and a
  /// catalog change since the plan was bound re-binds without re-parsing.
  ResultSet ExecuteSql(std::string_view text, Session* session = nullptr);

  /// Compile-once entry point: returns the cached plan for `text`, parsing
  /// on a cache miss and re-binding the lock plan if DDL happened since it
  /// was bound. The handle stays valid after eviction and across Reopen.
  /// `pin` declares the text reusable (an explicit PREPARE): it enters the
  /// shared cache on first compile instead of waiting for a second sighting.
  /// Throws UsageError when the plan cache is disabled.
  std::shared_ptr<const CachedPlan> Prepare(std::string_view text,
                                            bool pin = false);

  /// Whether the most recent Prepare call actually parsed (cache miss) as
  /// opposed to serving a cached plan. Feeds the dbc compile-cost model.
  bool last_prepare_parsed() const noexcept { return last_prepare_parsed_; }

  /// Computes the lock plan (base tables to lock, views expanded) for a
  /// statement under the current catalog.
  LockPlan BuildLockPlan(const sql::Statement& stmt) const;

  /// Computes the per-core access paths (single-base-table detection and
  /// index-probe choice) for a statement under the current catalog. Cached
  /// alongside the lock plan; rebuilt on every re-bind.
  AccessPlan BuildAccessPlan(const sql::Statement& stmt) const;

  /// Scan/materialization accounting for the most recent statement this
  /// executor ran (reset per statement; also flushed to the recorder as
  /// `minidb.*` counters).
  struct EngineCounters {
    size_t rows_materialized = 0;  // rows deep-copied into intermediates
    size_t rows_borrowed = 0;      // rows served zero-copy from storage
    size_t index_scans = 0;        // scans narrowed by an index probe
    size_t full_scans = 0;         // scans that visited every live row
    size_t pushed_predicates = 0;  // WHERE conjuncts evaluated during scans
    size_t fused_cores = 0;        // SELECT cores run on the fused path
    size_t batches_produced = 0;   // RowBatches emitted by batched scans
    size_t vectorized_cores = 0;   // SELECT cores run on the batch plane
    size_t scalar_fallbacks = 0;   // conjuncts/aggregates/projection slots
                                   // evaluated per-lane instead of kernelized
  };
  const EngineCounters& last_engine_counters() const noexcept {
    return counters_;
  }

  /// Iteration cap for recursive CTE evaluation (safety net against
  /// non-terminating recursion).
  static constexpr int64_t kMaxRecursions = 100000;

  /// Attributes server-side costs (rows examined, lock-wait time) to a
  /// telemetry recorder; null detaches. Only consulted in telemetry-enabled
  /// builds — the counting hooks compile out otherwise.
  void set_recorder(telemetry::Recorder* recorder) noexcept {
    recorder_ = recorder;
  }

  // --- resource governance ----------------------------------------------
  // The statement governor: scan/join/build loops tick a countdown; every
  // `cancel_check_rows` rows the slow path consults the cancel token and
  // the statement deadline, so Cancel(), a blown deadline, or a quota
  // breach preempts a long cross join mid-statement. Byte charges for
  // transient working sets (materialized rows, join builds, GROUP BY
  // state) batch locally and flush into the attached tracker chain, which
  // throws QuotaExceededError on breach. Ticks and charges live only in
  // read/build phases — never in write-apply loops — so a mid-statement
  // abort always leaves tables untouched.

  /// Default rows between governor checks (see `cancel_check_rows` URL
  /// parameter).
  static constexpr int64_t kDefaultCancelCheckRows = 1024;

  /// Cancellation token observed mid-statement; null detaches.
  void set_cancel_token(const CancelToken* token) noexcept {
    cancel_ = token;
  }
  /// Memory scope charged for this executor's transient working sets;
  /// null detaches (accounting off).
  void set_memory_tracker(MemoryTracker* tracker) noexcept {
    memory_ = tracker;
  }
  /// Rows between governor checks; values < 1 restore the default.
  void set_cancel_check_rows(int64_t rows) noexcept {
    check_rows_ = rows >= 1 ? rows : kDefaultCancelCheckRows;
  }
  /// Arms a mid-statement deadline: once passed, the next governor check
  /// throws TimeoutError (transient — ticks sit in read loops only, so the
  /// statement never reached a write and retry is safe).
  void set_statement_deadline(
      std::chrono::steady_clock::time_point deadline) noexcept {
    deadline_ = deadline;
    has_deadline_ = true;
  }
  void clear_statement_deadline() noexcept { has_deadline_ = false; }

  // Current governance attachments, so callers that lend a scope (runner,
  // job server) can save and restore what was there before.
  const CancelToken* cancel_token() const noexcept { return cancel_; }
  MemoryTracker* memory_tracker() const noexcept { return memory_; }
  int64_t cancel_check_rows() const noexcept { return check_rows_; }

 private:
  struct ExecContext {
    // CTE name (folded) -> materialized relation visible to the query.
    std::unordered_map<std::string, const Relation*> cte_bindings;
  };

  /// Everything PrepareJoin resolves before a join runs: evaluated (or
  /// schema-only, for index-nested-loop candidates) inputs, the combined
  /// output bindings, and the classified ON condition. RunJoin streams the
  /// combined rows from this state into a sink.
  struct JoinState {
    const sql::TableRef* join = nullptr;
    Relation left;
    std::shared_ptr<Table> right_table;  // set when right is a base table
    Relation right;                      // evaluated right (when needed)
    bool right_materialized = false;
    std::vector<ColumnBinding> right_columns;
    std::vector<ColumnBinding> columns;  // combined output bindings
    std::vector<std::pair<int, int>> equi;  // (left index, right index)
    std::vector<const sql::Expr*> residual;  // non-equi ON conjuncts
  };

  // --- SELECT pipeline -------------------------------------------------
  // For single-core statements the ORDER BY keys are computed inside the
  // core evaluation, where both the projected output and the pre-projection
  // input are visible (SQL allows ordering by either). `order_by` and
  // `sort_keys` are null for UNION arms.
  //
  // Operator outputs (ProjectCore/AggregateCore) are always owned
  // relations; scans and CTE bindings flow through as borrowed row views
  // when the fused pipeline is enabled (see Relation).
  ResultSet EvalSelect(const sql::SelectStmt& stmt, ExecContext& ctx,
                       const std::vector<CoreAccessPath>* paths = nullptr);
  Relation EvalCore(const sql::SelectCore& core, ExecContext& ctx,
                    const std::vector<sql::OrderItem>* order_by = nullptr,
                    std::vector<Row>* sort_keys = nullptr,
                    const CoreAccessPath* path = nullptr);
  /// The materializing pipeline (pre-fusion behavior, kept verbatim): the
  /// fallback for shapes the fused path declines, and the whole pipeline
  /// when fusion is disabled. Error reporting for missing relations and
  /// unresolvable columns lives here.
  Relation EvalCoreReference(const sql::SelectCore& core, ExecContext& ctx,
                             bool aggregate_mode,
                             const std::vector<sql::OrderItem>* order_by,
                             std::vector<Row>* sort_keys);
  /// Fused path for cores whose FROM is a base table or a join tree:
  /// predicates push into the scans, and rows stream from scan/join
  /// straight into projection or aggregation with no intermediate
  /// Relation. Returns false (leaving `out` untouched) for shapes it does
  /// not cover — the caller falls back to the reference materializing
  /// path, which also owns error reporting for missing relations.
  bool TryFusedCore(const sql::SelectCore& core, ExecContext& ctx,
                    bool aggregate_mode,
                    const std::vector<sql::OrderItem>* order_by,
                    std::vector<Row>* sort_keys, const CoreAccessPath* path,
                    Relation* out);
  /// Vectorized counterpart to TryFusedCore for single-base-table cores:
  /// batched scans, compiled predicate kernels that shrink the selection
  /// vector, and typed aggregate reductions (see minidb/batch.h). Returns
  /// false (leaving `out` untouched) for shapes it does not cover, or when
  /// mixing batch-wise kernels with throw-capable per-lane work could
  /// surface a different first error than the row path — the caller falls
  /// through to the row-at-a-time fused path.
  bool TryVectorizedCore(const sql::SelectCore& core, ExecContext& ctx,
                         bool aggregate_mode,
                         const std::vector<sql::OrderItem>* order_by,
                         std::vector<Row>* sort_keys,
                         const CoreAccessPath* path, Relation* out);
  /// Batched counterpart to ScanPush: identical visiting order, counters,
  /// rows_examined accounting, and governance cadence (GovTickRows per
  /// batch), pushing filtered RowBatches into `sink`. `kernels[i]` applies
  /// when `compiled[i]` is set; other conjuncts are evaluated per lane,
  /// row-major, over every visited lane — reproducing the row path's
  /// evaluation count and first error exactly.
  void ScanBatched(const Table& table,
                   const std::vector<ColumnBinding>& columns,
                   const std::vector<const sql::Expr*>& pushed,
                   const std::vector<PredicateKernel>& kernels,
                   const std::vector<uint8_t>& compiled, int probe_conjunct,
                   const std::string& probe_column, const BatchSink& sink);
  Relation EvalTableRef(const sql::TableRef& ref, ExecContext& ctx);
  Relation EvalJoin(const sql::TableRef& join, ExecContext& ctx);
  /// Evaluates one join input. When `pending` is non-null, WHERE conjuncts
  /// that resolve entirely against a base-table input are removed from it
  /// and evaluated during that input's scan (predicate pushdown); nested
  /// join inputs recurse and then materialize.
  Relation EvalJoinInput(const sql::TableRef& ref, ExecContext& ctx,
                         std::vector<const sql::Expr*>* pending);
  JoinState PrepareJoin(const sql::TableRef& join, ExecContext& ctx,
                        std::vector<const sql::Expr*>* pending);
  /// Streams the join's combined rows into `sink` (ownership passes to the
  /// sink). Strategy per engine profile, as before: index nested loop,
  /// hash, or plain nested loop, with LEFT JOIN NULL-padding.
  void RunJoin(JoinState& state, const OwnedRowSink& sink);
  Relation ScanTable(const Table& table, const std::string& alias);
  /// Streams `table`'s live rows matching all of `pushed` into `sink`
  /// without copying. `probe_conjunct` >= 0 selects pushed[probe_conjunct]
  /// as an equality index probe on `probe_column` (visiting only matching
  /// rows, in scan order); the probe conjunct is still re-evaluated like
  /// any other pushed predicate, preserving SQL `=` semantics.
  void ScanPush(const Table& table, const std::vector<ColumnBinding>& columns,
                const std::vector<const sql::Expr*>& pushed,
                int probe_conjunct, const std::string& probe_column,
                const RowSink& sink);
  /// Borrowed-relation form of ScanPush (join inputs): the matching rows'
  /// views, with an index probe chosen from `pushed` when available.
  Relation ScanFiltered(const Table& table, const std::string& alias,
                        const std::vector<const sql::Expr*>& pushed);
  /// Per-core access analysis shared by BuildAccessPlan (bind time) and
  /// the fused path (runtime, when no cached path applies).
  CoreAccessPath AnalyzeCore(const sql::SelectCore& core,
                             const std::unordered_set<std::string>& ctes)
      const;
  /// Collects the full FROM-tree output bindings without evaluating
  /// anything; returns false when they cannot be precomputed (views,
  /// subqueries), which disables join predicate pushdown for the core.
  bool TryCollectTreeBindings(const sql::TableRef& ref, ExecContext& ctx,
                              std::vector<ColumnBinding>& out) const;
  Relation ProjectCore(const sql::SelectCore& core,
                       const std::vector<ColumnBinding>& input_columns,
                       const RowSource& input,
                       const std::vector<sql::OrderItem>* order_by,
                       std::vector<Row>* sort_keys);
  Relation AggregateCore(const sql::SelectCore& core,
                         const std::vector<ColumnBinding>& input_columns,
                         const RowSource& input,
                         const std::vector<sql::OrderItem>* order_by,
                         std::vector<Row>* sort_keys);

  // --- statements -------------------------------------------------------
  ResultSet ExecuteInternal(const sql::Statement& stmt, const LockPlan& plan,
                            Session* session);
  ResultSet ExecWith(const sql::Statement& stmt, ExecContext& ctx);
  ResultSet ExecCreateTable(const sql::Statement& stmt);
  ResultSet ExecInsert(const sql::Statement& stmt, Session* session);
  ResultSet ExecUpdate(const sql::Statement& stmt, Session* session,
                       ExecContext& ctx);
  ResultSet ExecDelete(const sql::Statement& stmt, Session* session);
  ResultSet ExecTransaction(const sql::Statement& stmt, Session* session);

  void CheckDialect(const sql::Statement& stmt) const;
  void BackupForTransaction(Session* session, Table& table);

  // --- governor hot path -------------------------------------------------
  // GovTick compiles to a decrement and a predictable branch; GovSync and
  // GovFlush are the cold slow paths. GovCharge accumulates locally and
  // flushes every kChargeFlushBytes so the atomic tracker chain stays off
  // the per-row path.
  static constexpr int64_t kChargeFlushBytes = 32 * 1024;
  void GovTick() {
    if (--gov_countdown_ <= 0) GovSync();
  }
  /// Batched form of GovTick: one countdown update covers `rows` rows, so
  /// the governor still syncs every `cancel_check_rows` rows — i.e. every
  /// ⌈cancel_check_rows / batch_size⌉ batches on the vectorized path.
  void GovTickRows(int64_t rows) {
    gov_countdown_ -= rows;
    if (gov_countdown_ <= 0) GovSync();
  }
  void GovCharge(int64_t bytes) {
    pending_bytes_ += bytes;
    if (pending_bytes_ >= kChargeFlushBytes) GovFlush();
  }
  void GovSync();
  void GovFlush();
  void GovBeginStatement() noexcept;
  void GovEndStatement() noexcept;

  /// Recomputes the bind layer (lock set, view expansion) of a stale plan
  /// under `version`; the parsed AST is shared, never re-parsed.
  std::shared_ptr<const CachedPlan> Rebind(const CachedPlan& stale,
                                           uint64_t version);

  Database& db_;
  // Connection-local plan map (L1 in front of the shared PlanCache),
  // keyed by raw statement text. Iterative runs re-execute the same
  // statements every round from every worker; serving those from here —
  // and re-binding locally after DDL — keeps the shared cache mutex off
  // the hot path entirely. Capped: unique per-round message-table SQL
  // would otherwise grow it without bound.
  static constexpr size_t kLocalPlanCapacity = 256;
  std::unordered_map<std::string, std::shared_ptr<const CachedPlan>>
      local_plans_;
  // Keys this connection has compiled exactly once. Ad-hoc text only
  // enters the shared cache on its second compile, so single-use
  // statements (unique message-table names minted every round) never
  // churn the shared LRU or its mutex.
  std::unordered_set<std::string> first_misses_;
  bool last_prepare_parsed_ = false;
  // Scan-volume accounting for the statement currently executing (each
  // connection owns its Executor, so no synchronization is needed).
  size_t rows_examined_ = 0;
  EngineCounters counters_;
  // Access paths of the statement currently executing (null for ad-hoc
  // execution); set by ExecuteWithPlan, read by the SELECT pipeline.
  const AccessPlan* access_ = nullptr;
  // Scratch buffer for index probes, reused across probes and statements
  // so the steady-state fused path allocates nothing per probe.
  std::vector<size_t> probe_ids_;
  // Batch-pipeline scratch (lanes, aggregate-feed buffers, per-lane
  // fallback bytemap), reused across batches and statements so the
  // steady-state vectorized path allocates nothing per batch.
  RowBatch batch_;
  ColumnVector gather_;
  std::vector<uint8_t> lane_pass_;
  // Last-seen cumulative buffer-pool counters, so each statement flushes
  // its delta to telemetry (the pool's counters are pool-lifetime).
  struct PoolCounters {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t pages_evicted = 0;
    uint64_t bytes_spilled = 0;
  };
  PoolCounters pool_last_;
  telemetry::Recorder* recorder_ = nullptr;
  // Governor state (see the public resource-governance section).
  const CancelToken* cancel_ = nullptr;
  MemoryTracker* memory_ = nullptr;
  int64_t check_rows_ = kDefaultCancelCheckRows;
  int64_t gov_countdown_ = kDefaultCancelCheckRows;
  int64_t pending_bytes_ = 0;    // charged locally, not yet in the tracker
  int64_t statement_bytes_ = 0;  // flushed total, released at statement end
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
};

}  // namespace sqloop::minidb
