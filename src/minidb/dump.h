// Durable table snapshots: the engine half of SQLoop's checkpointing
// (DESIGN.md "Checkpointing & recovery").
//
// `DUMP TABLE t TO '<path>'` serializes a table's schema and live rows to a
// single binary file; `RESTORE TABLE t FROM '<path>'` recreates the table
// from one. The format is sealed by a CRC-32 footer and written via
// tmp-file + atomic rename, so a crash mid-dump can never leave a torn file
// under the final name — recovery either sees the complete new dump or the
// previous state of the path.
//
// Rows are dumped in slot (insertion) order and restored by re-inserting in
// that order, so a restored table is bit-identical to the dumped one as far
// as any statement can observe (scan order, PK index, aggregates).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "minidb/schema.h"

namespace sqloop::minidb {

class Table;

/// Serializes `table` (schema + live rows in slot order) to `path` via
/// `<path>.tmp` + atomic rename. The caller holds at least a shared lock on
/// the table. Returns the number of rows written; throws ExecutionError on
/// I/O failure.
size_t DumpTableToFile(const Table& table, const std::string& path);

/// Payload of a dump file.
struct DumpContents {
  Schema schema;
  std::vector<Row> rows;  // in dumped (insertion) order
};

/// Reads and fully validates a dump file. Throws ExecutionError on a
/// missing file, bad magic/version, truncation, or CRC mismatch.
DumpContents ReadDumpFile(const std::string& path);

/// Cheap validity probe used by recovery to pick a checkpoint: true iff the
/// file exists, carries the right magic/version, and its CRC-32 footer
/// matches the content. `crc_out` (optional) receives the footer CRC —
/// manifests hash these into their content hash so a dump swapped in from a
/// different checkpoint is caught even though it is internally valid.
bool ValidateDumpFile(const std::string& path, uint32_t* crc_out = nullptr,
                      std::string* error_out = nullptr) noexcept;

}  // namespace sqloop::minidb
