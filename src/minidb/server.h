// The minidb "server": a process-wide registry of named databases that
// connections attach to by URL, standing in for the PostgreSQL/MySQL/
// MariaDB server processes of the paper's testbed.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "minidb/database.h"

namespace sqloop::minidb {

class Server {
 public:
  /// The default in-process server instance (what `minidb://localhost/...`
  /// URLs resolve to).
  static Server& Default();

  Server() = default;
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Creates a database with the given engine profile. Throws if the name
  /// is taken.
  std::shared_ptr<Database> CreateDatabase(const std::string& name,
                                           EngineProfile profile);

  /// Returns the database or nullptr.
  std::shared_ptr<Database> FindDatabase(const std::string& name) const;

  /// Drops a database; returns false if it did not exist.
  bool DropDatabase(const std::string& name);

  std::vector<std::string> DatabaseNames() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<Database>> databases_;
};

}  // namespace sqloop::minidb
