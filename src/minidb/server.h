// The minidb "server": a process-wide registry of named databases that
// connections attach to by URL, standing in for the PostgreSQL/MySQL/
// MariaDB server processes of the paper's testbed.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/fault.h"
#include "common/memory_tracker.h"
#include "minidb/database.h"

namespace sqloop::minidb {

class Server {
 public:
  /// The default in-process server instance (what `minidb://localhost/...`
  /// URLs resolve to).
  static Server& Default();

  Server() = default;
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Creates a database with the given engine profile. Throws if the name
  /// is taken.
  std::shared_ptr<Database> CreateDatabase(const std::string& name,
                                           EngineProfile profile);

  /// Returns the database or nullptr.
  std::shared_ptr<Database> FindDatabase(const std::string& name) const;

  /// Drops a database; returns false if it did not exist.
  bool DropDatabase(const std::string& name);

  std::vector<std::string> DatabaseNames() const;

  // --- memory governance ------------------------------------------------
  // The server-wide accounting root: every database created through
  // CreateDatabase parents its scope here, so reserved_bytes() is the
  // whole deployment's working set — what the JobServer's soft/hard
  // watermarks police. Shared ownership keeps the root alive for any
  // database handle that outlives the registry entry.
  const std::shared_ptr<MemoryTracker>& memory_tracker() const noexcept {
    return tracker_;
  }

  // --- fault injection --------------------------------------------------
  // A server-level injector applies to every connection attached to this
  // server and takes precedence over URL-configured injection (it models an
  // operator flipping faults on a running deployment; the shell's \faults
  // command uses it). Null clears it.
  void set_fault_injector(std::shared_ptr<FaultInjector> injector) {
    const std::scoped_lock lock(mutex_);
    fault_injector_ = std::move(injector);
  }
  std::shared_ptr<FaultInjector> fault_injector() const {
    const std::scoped_lock lock(mutex_);
    return fault_injector_;
  }

 private:
  mutable std::mutex mutex_;
  std::shared_ptr<MemoryTracker> tracker_ =
      std::make_shared<MemoryTracker>("server");
  std::unordered_map<std::string, std::shared_ptr<Database>> databases_;
  std::shared_ptr<FaultInjector> fault_injector_;
};

}  // namespace sqloop::minidb
