#include "minidb/dump.h"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/checksum.h"
#include "common/error.h"
#include "common/fault_file.h"
#include "minidb/table.h"

namespace sqloop::minidb {
namespace {

// Layout (all integers little-endian on every platform this repo targets;
// dumps are written and read by the same machine within one job):
//   8  bytes  magic "SQLPDMP1"
//   u32       format version (1)
//   i32       primary_key_index (-1 = none)
//   u32       column count
//   per column: u32 name length, name bytes, u8 type tag
//   u64       row count
//   per cell: u8 value tag (0 null / 1 int64 / 2 double / 3 text), payload
//   u32       CRC-32 of every preceding byte
constexpr char kMagic[8] = {'S', 'Q', 'L', 'P', 'D', 'M', 'P', '1'};
constexpr uint32_t kFormatVersion = 1;

enum : uint8_t { kTagNull = 0, kTagInt64 = 1, kTagDouble = 2, kTagText = 3 };

std::string HexU32(uint32_t v) {
  static const char* kDigits = "0123456789abcdef";
  std::string out = "0x";
  for (int shift = 28; shift >= 0; shift -= 4) {
    out.push_back(kDigits[(v >> shift) & 0xf]);
  }
  return out;
}

void AppendRaw(std::string& out, const void* data, size_t length) {
  out.append(static_cast<const char*>(data), length);
}

void AppendU8(std::string& out, uint8_t v) { AppendRaw(out, &v, sizeof(v)); }
void AppendU32(std::string& out, uint32_t v) { AppendRaw(out, &v, sizeof(v)); }
void AppendU64(std::string& out, uint64_t v) { AppendRaw(out, &v, sizeof(v)); }
void AppendI32(std::string& out, int32_t v) { AppendRaw(out, &v, sizeof(v)); }
void AppendI64(std::string& out, int64_t v) { AppendRaw(out, &v, sizeof(v)); }

void AppendF64(std::string& out, double v) {
  // The raw bit pattern round-trips exactly — the bit-identical resume
  // guarantee rests on this (no text formatting of doubles anywhere).
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64(out, bits);
}

uint8_t TypeTag(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return kTagNull;
    case ValueType::kInt64:
      return kTagInt64;
    case ValueType::kDouble:
      return kTagDouble;
    case ValueType::kText:
      return kTagText;
  }
  throw ExecutionError("dump: unknown value type");
}

ValueType TypeFromTag(uint8_t tag) {
  switch (tag) {
    case kTagNull:
      return ValueType::kNull;
    case kTagInt64:
      return ValueType::kInt64;
    case kTagDouble:
      return ValueType::kDouble;
    case kTagText:
      return ValueType::kText;
    default:
      throw ExecutionError("dump: corrupt value type tag");
  }
}

void AppendValue(std::string& out, const Value& value) {
  if (value.is_null()) {
    AppendU8(out, kTagNull);
  } else if (value.is_int()) {
    AppendU8(out, kTagInt64);
    AppendI64(out, value.as_int());
  } else if (value.is_double()) {
    AppendU8(out, kTagDouble);
    AppendF64(out, value.as_double());
  } else {
    const std::string& text = value.as_text();
    AppendU8(out, kTagText);
    AppendU32(out, static_cast<uint32_t>(text.size()));
    AppendRaw(out, text.data(), text.size());
  }
}

/// Bounds-checked cursor over a loaded dump body. Callers label the
/// section being parsed so a truncation error can say *where* the file
/// ran out, not just that it did.
class Reader {
 public:
  Reader(const std::string& data, const std::string& path)
      : data_(data), path_(path) {}

  void SetSection(const char* section) { section_ = section; }

  void Read(void* out, size_t length) {
    if (length > data_.size() - offset_) {
      throw IntegrityError("dump file '" + path_ + "' is truncated in the " +
                           section_ + " section at byte offset " +
                           std::to_string(offset_) + " (wanted " +
                           std::to_string(length) + " more bytes, " +
                           std::to_string(data_.size() - offset_) +
                           " remain)");
    }
    std::memcpy(out, data_.data() + offset_, length);
    offset_ += length;
  }

  uint8_t ReadU8() { return ReadAs<uint8_t>(); }
  uint32_t ReadU32() { return ReadAs<uint32_t>(); }
  uint64_t ReadU64() { return ReadAs<uint64_t>(); }
  int32_t ReadI32() { return ReadAs<int32_t>(); }
  int64_t ReadI64() { return ReadAs<int64_t>(); }

  double ReadF64() {
    uint64_t bits = ReadU64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string ReadString(size_t length) {
    if (length > data_.size() - offset_) {
      throw IntegrityError("dump file '" + path_ + "' is truncated in the " +
                           section_ + " section at byte offset " +
                           std::to_string(offset_) + " (wanted " +
                           std::to_string(length) + " more bytes, " +
                           std::to_string(data_.size() - offset_) +
                           " remain)");
    }
    std::string out(data_.data() + offset_, length);
    offset_ += length;
    return out;
  }

  size_t offset() const noexcept { return offset_; }
  bool AtEnd() const noexcept { return offset_ == data_.size(); }

 private:
  template <typename T>
  T ReadAs() {
    T v;
    Read(&v, sizeof(v));
    return v;
  }

  const std::string& data_;
  const std::string& path_;
  const char* section_ = "header";
  size_t offset_ = 0;
};

Value ReadValue(Reader& reader) {
  switch (reader.ReadU8()) {
    case kTagNull:
      return Value();
    case kTagInt64:
      return Value(reader.ReadI64());
    case kTagDouble:
      return Value(reader.ReadF64());
    case kTagText:
      return Value(reader.ReadString(reader.ReadU32()));
    default:
      throw ExecutionError("dump file has a corrupt value tag");
  }
}

/// Loads the whole file; empty optional-style via thrown ExecutionError.
std::string LoadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw ExecutionError("cannot open dump file '" + path + "'");
  }
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) {
    throw ExecutionError("I/O error reading dump file '" + path + "'");
  }
  return data;
}

/// Checks magic/version/CRC and returns the body (everything between the
/// header checks and the CRC footer remains in place; caller re-parses).
std::string LoadValidatedFile(const std::string& path, uint32_t* crc_out) {
  std::string data = LoadFile(path);
  if (data.size() < sizeof(kMagic) + sizeof(uint32_t) * 2) {
    throw IntegrityError("dump file '" + path + "' is truncated in the " +
                         "header section (only " +
                         std::to_string(data.size()) + " bytes, needs " +
                         std::to_string(sizeof(kMagic) + sizeof(uint32_t) * 2) +
                         " at minimum)");
  }
  if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    throw IntegrityError("'" + path + "' is not a minidb dump file (bad " +
                         "magic in the header section at byte offset 0)");
  }
  uint32_t stored_crc;
  std::memcpy(&stored_crc, data.data() + data.size() - sizeof(stored_crc),
              sizeof(stored_crc));
  const uint32_t actual_crc =
      Crc32(data.data(), data.size() - sizeof(stored_crc));
  if (stored_crc != actual_crc) {
    throw IntegrityError(
        "dump file '" + path + "' failed CRC validation: expected " +
        HexU32(stored_crc) + " (footer at byte offset " +
        std::to_string(data.size() - sizeof(stored_crc)) + "), computed " +
        HexU32(actual_crc) + " over " +
        std::to_string(data.size() - sizeof(stored_crc)) + " bytes");
  }
  if (crc_out != nullptr) *crc_out = stored_crc;
  data.resize(data.size() - sizeof(stored_crc));
  return data;
}

}  // namespace

size_t DumpTableToFile(const Table& table, const std::string& path) {
  const Schema& schema = table.schema();
  std::string out;
  AppendRaw(out, kMagic, sizeof(kMagic));
  AppendU32(out, kFormatVersion);
  AppendI32(out, schema.primary_key_index());
  AppendU32(out, static_cast<uint32_t>(schema.column_count()));
  for (const Column& column : schema.columns()) {
    AppendU32(out, static_cast<uint32_t>(column.name.size()));
    AppendRaw(out, column.name.data(), column.name.size());
    AppendU8(out, TypeTag(column.type));
  }
  AppendU64(out, table.live_row_count());
  size_t written = 0;
  // Page-wise pin window: dumping a spill-enabled table streams page by
  // page instead of forcing the whole table resident (the dump's own
  // byte buffer is the only O(table) memory here).
  PinScope::Window window;
  for (size_t id = 0; id < table.slot_count(); ++id) {
    if ((id & kPageRowMask) == 0) window.Reset();
    if (!table.IsLive(id)) continue;
    const Row& row = table.At(id);
    for (const Value& value : row) AppendValue(out, value);
    ++written;
  }
  AppendU32(out, Crc32(out.data(), out.size()));
  FaultFile::PublishFile(path, out.data(), out.size(), "dump file");
  return written;
}

DumpContents ReadDumpFile(const std::string& path) {
  const std::string body = LoadValidatedFile(path, nullptr);
  Reader reader(body, path);
  char magic[sizeof(kMagic)];
  reader.Read(magic, sizeof(magic));
  const uint32_t version = reader.ReadU32();
  if (version != kFormatVersion) {
    throw ExecutionError("dump file '" + path + "' has unsupported version " +
                         std::to_string(version));
  }
  const int32_t primary_key_index = reader.ReadI32();
  reader.SetSection("column catalog");
  const uint32_t column_count = reader.ReadU32();
  std::vector<Column> columns;
  columns.reserve(column_count);
  for (uint32_t i = 0; i < column_count; ++i) {
    Column column;
    column.name = reader.ReadString(reader.ReadU32());
    column.type = TypeFromTag(reader.ReadU8());
    columns.push_back(std::move(column));
  }
  DumpContents contents;
  contents.schema = Schema(std::move(columns), primary_key_index);
  reader.SetSection("row data");
  const uint64_t row_count = reader.ReadU64();
  contents.rows.reserve(row_count);
  for (uint64_t r = 0; r < row_count; ++r) {
    Row row;
    row.reserve(column_count);
    for (uint32_t c = 0; c < column_count; ++c) row.push_back(ReadValue(reader));
    contents.rows.push_back(std::move(row));
  }
  if (!reader.AtEnd()) {
    throw IntegrityError("dump file '" + path + "' has " +
                         std::to_string(body.size() - reader.offset()) +
                         " bytes of trailing garbage after the row data " +
                         "section at byte offset " +
                         std::to_string(reader.offset()));
  }
  return contents;
}

bool ValidateDumpFile(const std::string& path, uint32_t* crc_out,
                      std::string* error_out) noexcept {
  try {
    LoadValidatedFile(path, crc_out);
    return true;
  } catch (const std::exception& e) {
    if (error_out != nullptr) *error_out = e.what();
    return false;
  }
}

}  // namespace sqloop::minidb
