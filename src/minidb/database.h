// A minidb database: catalog of tables and views plus the engine profile.
// Thread-safe for concurrent connections; the catalog has its own RW lock
// and each table carries a table-level RW lock (see table.h).
#pragma once

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/memory_tracker.h"
#include "minidb/buffer_pool.h"
#include "minidb/engine_profile.h"
#include "minidb/plan_cache.h"
#include "minidb/table.h"
#include "sql/ast.h"

namespace sqloop::minidb {

class Database {
 public:
  /// `server_tracker`, when given, parents this database's memory scope so
  /// table storage and statement working sets roll up to the server-wide
  /// watermark accounting (Server::CreateDatabase passes its own tracker;
  /// a standalone Database is its own accounting root).
  explicit Database(std::string name,
                    EngineProfile profile = EngineProfile::Canonical(),
                    std::shared_ptr<MemoryTracker> server_tracker = nullptr);

  const std::string& name() const noexcept { return name_; }
  const EngineProfile& profile() const noexcept { return profile_; }

  /// The database-scope memory accountant: every table's storage charges
  /// here (see Table::set_memory_tracker), and each connection's statement
  /// working set parents here by default. Rolls up to the server tracker
  /// when one was attached at construction.
  MemoryTracker& memory_tracker() noexcept { return tracker_; }
  const MemoryTracker& memory_tracker() const noexcept { return tracker_; }

  /// The buffer pool behind this database's paged tables (see DESIGN.md
  /// "Paged storage & buffer pool"). Unbounded until a budget is set.
  BufferPool& buffer_pool() noexcept { return *pool_; }
  const BufferPool& buffer_pool() const noexcept { return *pool_; }

  /// Caps the pool's resident bytes (URL knob `buffer_pool_bytes`; 0 =
  /// unbounded). Tables latch their eviction participation at creation,
  /// so set this before the workload creates its tables.
  void set_buffer_pool_bytes(int64_t bytes) { pool_->set_budget_bytes(bytes); }

  // --- catalog operations (internally locked) -------------------------

  void CreateTable(const std::string& table_name, Schema schema,
                   bool if_not_exists);
  bool DropTable(const std::string& table_name, bool if_exists);

  void CreateView(const std::string& view_name, sql::SelectPtr definition);
  bool DropView(const std::string& view_name, bool if_exists);

  /// Looks up a table; returns nullptr if absent. The returned pointer
  /// stays valid until the table is dropped (shared ownership).
  std::shared_ptr<Table> FindTable(const std::string& table_name) const;

  /// Looks up a view definition; returns nullptr if absent.
  std::shared_ptr<const sql::SelectStmt> FindView(
      const std::string& view_name) const;

  bool HasTable(const std::string& table_name) const;
  bool HasView(const std::string& view_name) const;

  std::vector<std::string> TableNames() const;

  // --- plan cache & catalog versioning ---------------------------------
  // Every DDL statement (table/view changes here; index DDL via the
  // executor) bumps the catalog version; cached plans bound under an older
  // version are re-bound — never re-parsed — on their next lookup.

  PlanCache& plan_cache() noexcept { return plan_cache_; }
  const PlanCache& plan_cache() const noexcept { return plan_cache_; }

  uint64_t catalog_version() const noexcept {
    return catalog_version_.load(std::memory_order_acquire);
  }
  void BumpCatalogVersion() noexcept {
    catalog_version_.fetch_add(1, std::memory_order_acq_rel);
  }

  // --- execution pipeline toggle ---------------------------------------
  // The fused, zero-copy SELECT pipeline is on by default; switching it
  // off routes every statement through the reference materializing path.
  // Exists for the differential test suite and A/B benchmarks (see
  // DESIGN.md "Execution pipeline"), not as a tuning knob.

  void set_fused_enabled(bool enabled) noexcept {
    fused_enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool fused_enabled() const noexcept {
    return fused_enabled_.load(std::memory_order_relaxed);
  }

  // --- vectorized batch execution toggle --------------------------------
  // The batched data plane (minidb/batch.h) sits in front of the fused
  // row-at-a-time path and is on by default; switching it off keeps fusion
  // but routes every core through the scalar per-row sinks. Only takes
  // effect while fusion is enabled (the reference path never batches).
  // Exists for the three-way differential suite and the vectorized-on/off
  // A/B benchmark (see DESIGN.md "Vectorized execution").

  void set_vectorized_enabled(bool enabled) noexcept {
    vectorized_enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool vectorized_enabled() const noexcept {
    return vectorized_enabled_.load(std::memory_order_relaxed);
  }

  // --- governance toggle -----------------------------------------------
  // Memory accounting is on by default; switching it off makes new
  // connections attach no tracker, so the engine's per-row charge hooks
  // reduce to a null check. Exists for the accounting-overhead A/B bench
  // (bench/micro_governance), not as a tuning knob: budgets, watermarks,
  // and quota errors all need the accounting on.

  void set_governance_enabled(bool enabled) noexcept {
    governance_enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool governance_enabled() const noexcept {
    return governance_enabled_.load(std::memory_order_relaxed);
  }

  // --- paged storage toggle ----------------------------------------------
  // Tables are created on slotted pages behind the buffer pool by default;
  // switching this off makes tables created afterwards use the resident
  // vector-of-rows heap (URL knob `paged=0`). Exists as the differential
  // oracle for the paged path — results must be bit-identical either way.

  void set_paged_enabled(bool enabled) noexcept {
    paged_enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool paged_enabled() const noexcept {
    return paged_enabled_.load(std::memory_order_relaxed);
  }

  // --- integrity toggle -------------------------------------------------
  // Per-table content checksums are maintained on every mutation by
  // default; switching this off makes tables created afterwards skip the
  // maintenance (CHECK TABLE then trivially passes on them). Exists for
  // the checksum-overhead A/B bench (bench/micro_integrity), not as a
  // tuning knob: scrub detection and quarantine need the checksums on.

  void set_integrity_enabled(bool enabled) noexcept {
    integrity_enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool integrity_enabled() const noexcept {
    return integrity_enabled_.load(std::memory_order_relaxed);
  }

  // --- connection accounting -------------------------------------------
  // The dbc layer reports opens/closes so resilience tests can assert that
  // a failed parallel run leaks no live connections.
  void OnConnectionOpened() noexcept { open_connections_.fetch_add(1); }
  void OnConnectionClosed() noexcept { open_connections_.fetch_sub(1); }
  int open_connections() const noexcept { return open_connections_.load(); }

 private:
  std::string name_;
  std::atomic<int> open_connections_{0};
  EngineProfile profile_;
  // Keep-alive for the parent scope: the server's tracker must outlive
  // this database's (declared before tracker_ so it is destroyed after).
  std::shared_ptr<MemoryTracker> server_tracker_;
  MemoryTracker tracker_;
  // Declared before tables_: table destructors deregister from the pool,
  // so the pool must be destroyed after the catalog.
  std::shared_ptr<BufferPool> pool_;
  mutable std::shared_mutex catalog_lock_;
  std::unordered_map<std::string, std::shared_ptr<Table>> tables_;
  std::unordered_map<std::string, std::shared_ptr<const sql::SelectStmt>>
      views_;
  std::atomic<uint64_t> catalog_version_{0};
  std::atomic<bool> fused_enabled_{true};
  std::atomic<bool> vectorized_enabled_{true};
  std::atomic<bool> governance_enabled_{true};
  std::atomic<bool> integrity_enabled_{true};
  std::atomic<bool> paged_enabled_{true};
  PlanCache plan_cache_;
};

}  // namespace sqloop::minidb
