// A minidb database: catalog of tables and views plus the engine profile.
// Thread-safe for concurrent connections; the catalog has its own RW lock
// and each table carries a table-level RW lock (see table.h).
#pragma once

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "minidb/engine_profile.h"
#include "minidb/plan_cache.h"
#include "minidb/table.h"
#include "sql/ast.h"

namespace sqloop::minidb {

class Database {
 public:
  explicit Database(std::string name,
                    EngineProfile profile = EngineProfile::Canonical());

  const std::string& name() const noexcept { return name_; }
  const EngineProfile& profile() const noexcept { return profile_; }

  // --- catalog operations (internally locked) -------------------------

  void CreateTable(const std::string& table_name, Schema schema,
                   bool if_not_exists);
  bool DropTable(const std::string& table_name, bool if_exists);

  void CreateView(const std::string& view_name, sql::SelectPtr definition);
  bool DropView(const std::string& view_name, bool if_exists);

  /// Looks up a table; returns nullptr if absent. The returned pointer
  /// stays valid until the table is dropped (shared ownership).
  std::shared_ptr<Table> FindTable(const std::string& table_name) const;

  /// Looks up a view definition; returns nullptr if absent.
  std::shared_ptr<const sql::SelectStmt> FindView(
      const std::string& view_name) const;

  bool HasTable(const std::string& table_name) const;
  bool HasView(const std::string& view_name) const;

  std::vector<std::string> TableNames() const;

  // --- plan cache & catalog versioning ---------------------------------
  // Every DDL statement (table/view changes here; index DDL via the
  // executor) bumps the catalog version; cached plans bound under an older
  // version are re-bound — never re-parsed — on their next lookup.

  PlanCache& plan_cache() noexcept { return plan_cache_; }
  const PlanCache& plan_cache() const noexcept { return plan_cache_; }

  uint64_t catalog_version() const noexcept {
    return catalog_version_.load(std::memory_order_acquire);
  }
  void BumpCatalogVersion() noexcept {
    catalog_version_.fetch_add(1, std::memory_order_acq_rel);
  }

  // --- execution pipeline toggle ---------------------------------------
  // The fused, zero-copy SELECT pipeline is on by default; switching it
  // off routes every statement through the reference materializing path.
  // Exists for the differential test suite and A/B benchmarks (see
  // DESIGN.md "Execution pipeline"), not as a tuning knob.

  void set_fused_enabled(bool enabled) noexcept {
    fused_enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool fused_enabled() const noexcept {
    return fused_enabled_.load(std::memory_order_relaxed);
  }

  // --- connection accounting -------------------------------------------
  // The dbc layer reports opens/closes so resilience tests can assert that
  // a failed parallel run leaks no live connections.
  void OnConnectionOpened() noexcept { open_connections_.fetch_add(1); }
  void OnConnectionClosed() noexcept { open_connections_.fetch_sub(1); }
  int open_connections() const noexcept { return open_connections_.load(); }

 private:
  std::string name_;
  std::atomic<int> open_connections_{0};
  EngineProfile profile_;
  mutable std::shared_mutex catalog_lock_;
  std::unordered_map<std::string, std::shared_ptr<Table>> tables_;
  std::unordered_map<std::string, std::shared_ptr<const sql::SelectStmt>>
      views_;
  std::atomic<uint64_t> catalog_version_{0};
  std::atomic<bool> fused_enabled_{true};
  PlanCache plan_cache_;
};

}  // namespace sqloop::minidb
