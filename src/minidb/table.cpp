#include "minidb/table.h"

#include <algorithm>
#include <cstring>

#include "common/error.h"

namespace sqloop::minidb {

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {}

Table::~Table() {
  // Return the whole reservation: a dropped table's memory leaves the
  // database scope the moment the last reference dies.
  if (tracker_ != nullptr && tracked_bytes_ > 0) {
    tracker_->Release(tracked_bytes_);
  }
}

void Table::Account(int64_t delta) noexcept {
  tracked_bytes_ += delta;
  if (tracked_bytes_ < 0) tracked_bytes_ = 0;
  if (tracker_ == nullptr || delta == 0) return;
  if (delta > 0) {
    tracker_->ChargeUnchecked(delta);
  } else {
    tracker_->Release(-delta);
  }
}

size_t Table::Insert(Row row) {
  schema_.CoerceRow(row);
  const int pk = schema_.primary_key_index();
  if (pk >= 0) {
    const Value& key = row[pk];
    if (key.is_null()) {
      throw ExecutionError("NULL primary key in table '" + name_ + "'");
    }
    if (pk_index_.contains(key)) {
      throw ExecutionError("duplicate primary key " + key.ToString() +
                           " in table '" + name_ + "'");
    }
  }
  const size_t row_id = rows_.size();
  rows_.push_back(std::move(row));
  live_.push_back(1);
  ++live_rows_;
  if (integrity_enabled_) content_hash_ += RowHash(rows_[row_id]);
  if (pk >= 0) pk_index_.emplace(rows_[row_id][pk], row_id);
  IndexInsert(row_id);
  Account(RowFootprintBytes(rows_[row_id]) +
          kIndexEntryBytes * static_cast<int64_t>((pk >= 0 ? 1 : 0) +
                                                  secondary_indexes_.size()));
  return row_id;
}

void Table::Update(size_t row_id, Row row) {
  schema_.CoerceRow(row);
  const int pk = schema_.primary_key_index();
  if (pk >= 0) {
    const Value& old_key = rows_[row_id][pk];
    const Value& new_key = row[pk];
    if (new_key.is_null()) {
      throw ExecutionError("NULL primary key in table '" + name_ + "'");
    }
    if (!Value::KeyEquals(old_key, new_key)) {
      if (pk_index_.contains(new_key)) {
        throw ExecutionError("duplicate primary key " + new_key.ToString() +
                             " in table '" + name_ + "'");
      }
      pk_index_.erase(old_key);
      pk_index_.emplace(new_key, row_id);
    }
  }
  IndexErase(row_id);
  const int64_t old_bytes = RowFootprintBytes(rows_[row_id]);
  if (integrity_enabled_) content_hash_ -= RowHash(rows_[row_id]);
  rows_[row_id] = std::move(row);
  if (integrity_enabled_) content_hash_ += RowHash(rows_[row_id]);
  Account(RowFootprintBytes(rows_[row_id]) - old_bytes);
  IndexInsert(row_id);
}

void Table::Delete(size_t row_id) {
  if (!live_[row_id]) return;
  const int pk = schema_.primary_key_index();
  if (pk >= 0) pk_index_.erase(rows_[row_id][pk]);
  IndexErase(row_id);
  if (integrity_enabled_) content_hash_ -= RowHash(rows_[row_id]);
  live_[row_id] = 0;
  --live_rows_;
  // The tombstoned payload stays in rows_ until Clear(), so only the
  // index entries leave the accounting here.
  Account(-kIndexEntryBytes * static_cast<int64_t>((pk >= 0 ? 1 : 0) +
                                                   secondary_indexes_.size()));
}

void Table::Clear() {
  rows_.clear();
  live_.clear();
  live_rows_ = 0;
  content_hash_ = 0;
  pk_index_.clear();
  for (auto& [name, index] : secondary_indexes_) index.map.clear();
  Account(-tracked_bytes_);
}

int64_t Table::FindByPrimaryKey(const Value& key) const {
  if (schema_.primary_key_index() < 0) return -1;
  const auto it = pk_index_.find(key);
  return it == pk_index_.end() ? -1 : static_cast<int64_t>(it->second);
}

void Table::CreateIndex(const std::string& index_name,
                        const std::string& column_name) {
  const std::string folded = FoldIdentifier(index_name);
  if (secondary_indexes_.contains(folded)) {
    throw ExecutionError("index '" + index_name + "' already exists");
  }
  SecondaryIndex index;
  index.column = FoldIdentifier(column_name);
  index.column_index = schema_.FindColumn(index.column);
  if (index.column_index < 0) {
    throw ExecutionError("no column '" + column_name + "' in table '" +
                         name_ + "' to index");
  }
  for (size_t row_id = 0; row_id < rows_.size(); ++row_id) {
    if (live_[row_id]) {
      index.map.emplace(rows_[row_id][index.column_index], row_id);
    }
  }
  Account(kIndexEntryBytes * static_cast<int64_t>(index.map.size()));
  secondary_indexes_.emplace(folded, std::move(index));
}

bool Table::DropIndex(const std::string& index_name) {
  const auto it = secondary_indexes_.find(FoldIdentifier(index_name));
  if (it == secondary_indexes_.end()) return false;
  Account(-kIndexEntryBytes * static_cast<int64_t>(it->second.map.size()));
  secondary_indexes_.erase(it);
  return true;
}

bool Table::HasIndexOn(const std::string& column_name) const {
  const std::string folded = FoldIdentifier(column_name);
  if (schema_.primary_key_index() >= 0 &&
      schema_.columns()[schema_.primary_key_index()].name == folded) {
    return true;
  }
  for (const auto& [name, index] : secondary_indexes_) {
    if (index.column == folded) return true;
  }
  return false;
}

void Table::IndexProbe(const std::string& column_name, const Value& key,
                       std::vector<size_t>& out) const {
  const std::string folded = FoldIdentifier(column_name);
  if (schema_.primary_key_index() >= 0 &&
      schema_.columns()[schema_.primary_key_index()].name == folded) {
    const int64_t row = FindByPrimaryKey(key);
    if (row >= 0) out.push_back(static_cast<size_t>(row));
    return;
  }
  for (const auto& [name, index] : secondary_indexes_) {
    if (index.column != folded) continue;
    const size_t first = out.size();
    const auto [begin, end] = index.map.equal_range(key);
    for (auto it = begin; it != end; ++it) out.push_back(it->second);
    // The hash multimap yields matches in unspecified order; restore scan
    // order so index and full scans visit rows identically.
    std::sort(out.begin() + static_cast<ptrdiff_t>(first), out.end());
    return;
  }
  throw UsageError("IndexProbe on unindexed column '" + column_name + "'");
}

std::vector<size_t> Table::IndexLookup(const std::string& column_name,
                                       const Value& key) const {
  std::vector<size_t> out;
  IndexProbe(column_name, key, out);
  return out;
}

size_t Table::FillBatch(size_t* cursor, const Row** out,
                        size_t capacity) const {
  size_t slot = *cursor;
  const size_t end = rows_.size();
  if (live_rows_ == end) {
    // No tombstones: every slot is live, so the batch is a straight run
    // of row addresses (the common case for append-only state tables).
    const size_t filled = std::min(capacity, end - slot);
    for (size_t i = 0; i < filled; ++i) out[i] = &rows_[slot + i];
    *cursor = slot + filled;
    return filled;
  }
  size_t filled = 0;
  while (slot < end && filled < capacity) {
    if (live_[slot]) out[filled++] = &rows_[slot];
    ++slot;
  }
  *cursor = slot;
  return filled;
}

size_t Table::FillBatchFromIds(const size_t* ids, size_t count,
                               const Row** out) const {
  for (size_t i = 0; i < count; ++i) out[i] = &rows_[ids[i]];
  return count;
}

std::vector<Row> Table::SnapshotRows() const {
  std::vector<Row> out;
  out.reserve(live_rows_);
  for (size_t row_id = 0; row_id < rows_.size(); ++row_id) {
    if (live_[row_id]) out.push_back(rows_[row_id]);
  }
  return out;
}

void Table::RestoreRows(const std::vector<Row>& rows) {
  Clear();
  for (const Row& row : rows) Insert(row);
}

uint64_t Table::RowHash(const Row& row) noexcept {
  uint64_t hash = 14695981039346656037ull;
  const auto fold = [&hash](const void* data, size_t length) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < length; ++i) {
      hash ^= bytes[i];
      hash *= 1099511628211ull;
    }
  };
  for (const Value& value : row) {
    const uint8_t tag = value.is_null()     ? 0
                        : value.is_int()    ? 1
                        : value.is_double() ? 2
                                            : 3;
    fold(&tag, sizeof(tag));
    if (value.is_null()) continue;
    if (value.is_int()) {
      const int64_t v = value.as_int();
      fold(&v, sizeof(v));
    } else if (value.is_double()) {
      // Raw bit pattern: the checksum must agree wherever the dump format
      // would (bit-identical doubles, no text formatting).
      const double d = value.as_double();
      uint64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      fold(&bits, sizeof(bits));
    } else {
      const std::string& text = value.as_text();
      const uint64_t length = text.size();
      fold(&length, sizeof(length));
      fold(text.data(), text.size());
    }
  }
  return hash;
}

bool Table::VerifyContent(uint64_t* expected_out, uint64_t* actual_out) const {
  if (!integrity_enabled_) return true;
  uint64_t actual = 0;
  for (size_t row_id = 0; row_id < rows_.size(); ++row_id) {
    if (live_[row_id]) actual += RowHash(rows_[row_id]);
  }
  if (expected_out != nullptr) *expected_out = content_hash_;
  if (actual_out != nullptr) *actual_out = actual;
  return actual == content_hash_;
}

void Table::CorruptCellForTesting(size_t row_id, size_t column) {
  Value& cell = rows_[row_id][column];
  if (cell.is_int()) {
    cell = Value(cell.as_int() ^ (int64_t{1} << 20));
  } else if (cell.is_double()) {
    double d = cell.as_double();
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    bits ^= 1ull << 20;
    std::memcpy(&d, &bits, sizeof(d));
    cell = Value(d);
  } else if (!cell.is_null()) {
    std::string text = cell.as_text();
    if (text.empty()) text.push_back('\x01');
    else text[0] = static_cast<char>(text[0] ^ 0x20);
    cell = Value(std::move(text));
  } else {
    cell = Value(int64_t{1});
  }
}

void Table::IndexInsert(size_t row_id) {
  for (auto& [name, index] : secondary_indexes_) {
    index.map.emplace(rows_[row_id][index.column_index], row_id);
  }
}

void Table::IndexErase(size_t row_id) {
  for (auto& [name, index] : secondary_indexes_) {
    const Value& key = rows_[row_id][index.column_index];
    const auto [begin, end] = index.map.equal_range(key);
    for (auto it = begin; it != end; ++it) {
      if (it->second == row_id) {
        index.map.erase(it);
        break;
      }
    }
  }
}

}  // namespace sqloop::minidb
