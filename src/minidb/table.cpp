#include "minidb/table.h"

#include <algorithm>
#include <cstring>

#include "common/error.h"
#include "minidb/buffer_pool.h"

namespace sqloop::minidb {

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {}

Table::~Table() {
  // Deregister from the pool first: after ForgetTable returns, the evictor
  // and writer can never touch this table's pages or spill file again.
  if (pool_ != nullptr && paged_) pool_->ForgetTable(this);
  // Return the whole reservation: a dropped table's memory leaves the
  // database scope the moment the last reference dies.
  const int64_t held = tracked_bytes_.load(std::memory_order_relaxed);
  if (tracker_ != nullptr && held > 0) tracker_->Release(held);
}

void Table::ConfigureStorage(std::shared_ptr<BufferPool> pool, bool paged) {
  pool_ = std::move(pool);
  paged_ = paged && pool_ != nullptr;
  spill_enabled_ = paged_ && pool_->bounded();
}

void Table::OnPageResidencyDelta(int64_t delta) noexcept { Account(delta); }

void Table::Account(int64_t delta) noexcept {
  tracked_bytes_.fetch_add(delta, std::memory_order_relaxed);
  if (tracker_ == nullptr || delta == 0) return;
  if (delta > 0) {
    tracker_->ChargeUnchecked(delta);
  } else {
    tracker_->Release(-delta);
  }
}

Table::PagePin::PagePin(const Table* table, Page* page)
    : table_(table), page_(page) {
  if (table_->spill_enabled_ && page_ != nullptr) table_->pool_->Pin(page_);
}

Table::PagePin::~PagePin() {
  if (table_->spill_enabled_ && page_ != nullptr) table_->pool_->Unpin(page_);
}

void Table::PinForRead(Page* page) const {
  PinScope* scope = PinScope::Current();
  if (scope != nullptr) {
    if (scope->Holds(page)) return;
    pool_->Pin(page);
    scope->Add(pool_.get(), page);
    return;
  }
  // No scope installed (out-of-engine caller, single-threaded by
  // contract): make the page resident and release immediately. The view
  // stays valid until the next pool interaction.
  pool_->Pin(page);
  pool_->Unpin(page);
}

Page* Table::TailPageForInsert() {
  if (!pages_.empty() && pages_.back()->row_count < kPageRowCapacity) {
    return pages_.back().get();
  }
  auto page = std::make_unique<Page>();
  page->owner = this;
  page->index = pages_.size();
  // Full capacity up front: appends into a pinned page must never move
  // rows other views on the same page still reference.
  page->rows.reserve(kPageRowCapacity);
  Page* raw = page.get();
  pages_.push_back(std::move(page));
  if (spill_enabled_) pool_->AddPage(raw);
  return raw;
}

size_t Table::Insert(Row row) {
  schema_.CoerceRow(row);
  const int pk = schema_.primary_key_index();
  if (pk >= 0) {
    const Value& key = row[pk];
    if (key.is_null()) {
      throw ExecutionError("NULL primary key in table '" + name_ + "'");
    }
    if (pk_index_.contains(key)) {
      throw ExecutionError("duplicate primary key " + key.ToString() +
                           " in table '" + name_ + "'");
    }
  }
  const size_t row_id = live_.size();
  int64_t row_bytes = 0;
  if (paged_) {
    Page* page = TailPageForInsert();
    PagePin pin(this, page);
    page->rows.push_back(std::move(row));
    ++page->row_count;
    const Row& stored = page->rows.back();
    row_bytes = RowFootprintBytes(stored);
    page->bytes += row_bytes;
    if (spill_enabled_) {
      pool_->PageGrew(page, row_bytes);
      pool_->MarkDirty(page);
    }
    if (integrity_enabled_) {
      const uint64_t hash = RowHash(stored);
      content_hash_ += hash;
      page->hash_sum += hash;
    }
    live_.push_back(1);
    ++live_rows_;
    if (pk >= 0) pk_index_.emplace(stored[pk], row_id);
    IndexInsert(row_id, stored);
  } else {
    rows_.push_back(std::move(row));
    const Row& stored = rows_[row_id];
    row_bytes = RowFootprintBytes(stored);
    if (integrity_enabled_) content_hash_ += RowHash(stored);
    live_.push_back(1);
    ++live_rows_;
    if (pk >= 0) pk_index_.emplace(stored[pk], row_id);
    IndexInsert(row_id, stored);
  }
  Account(row_bytes +
          kIndexEntryBytes * static_cast<int64_t>((pk >= 0 ? 1 : 0) +
                                                  secondary_indexes_.size()));
  return row_id;
}

const Row& Table::At(size_t row_id) const {
  if (!paged_) return rows_[row_id];
  Page* page = PageFor(row_id);
  if (spill_enabled_) PinForRead(page);
  return page->rows[row_id & kPageRowMask];
}

void Table::Update(size_t row_id, Row row) {
  schema_.CoerceRow(row);
  Page* page = paged_ ? PageFor(row_id) : nullptr;
  const PagePin pin(this, page);
  Row& stored = StoredRow(row_id);
  const int pk = schema_.primary_key_index();
  if (pk >= 0) {
    const Value& old_key = stored[pk];
    const Value& new_key = row[pk];
    if (new_key.is_null()) {
      throw ExecutionError("NULL primary key in table '" + name_ + "'");
    }
    if (!Value::KeyEquals(old_key, new_key)) {
      if (pk_index_.contains(new_key)) {
        throw ExecutionError("duplicate primary key " + new_key.ToString() +
                             " in table '" + name_ + "'");
      }
      pk_index_.erase(old_key);
      pk_index_.emplace(new_key, row_id);
    }
  }
  IndexErase(row_id, stored);
  const int64_t old_bytes = RowFootprintBytes(stored);
  const uint64_t old_hash = integrity_enabled_ ? RowHash(stored) : 0;
  stored = std::move(row);
  const int64_t new_bytes = RowFootprintBytes(stored);
  if (integrity_enabled_) {
    const uint64_t new_hash = RowHash(stored);
    content_hash_ += new_hash - old_hash;
    if (page != nullptr) page->hash_sum += new_hash - old_hash;
  }
  if (page != nullptr) {
    page->bytes += new_bytes - old_bytes;
    if (spill_enabled_) {
      pool_->PageGrew(page, new_bytes - old_bytes);
      pool_->MarkDirty(page);
    }
  }
  Account(new_bytes - old_bytes);
  IndexInsert(row_id, stored);
}

void Table::Delete(size_t row_id) {
  if (!live_[row_id]) return;
  Page* page = paged_ ? PageFor(row_id) : nullptr;
  const PagePin pin(this, page);
  const Row& stored = StoredRow(row_id);
  const int pk = schema_.primary_key_index();
  if (pk >= 0) pk_index_.erase(stored[pk]);
  IndexErase(row_id, stored);
  if (integrity_enabled_) {
    const uint64_t hash = RowHash(stored);
    content_hash_ -= hash;
    // Only the liveness changed, not the payload, and the spill image
    // keeps tombstoned payloads — so the page is not dirtied here.
    if (page != nullptr) page->hash_sum -= hash;
  }
  live_[row_id] = 0;
  --live_rows_;
  // The tombstoned payload stays in storage until Clear(), so only the
  // index entries leave the accounting here.
  Account(-kIndexEntryBytes * static_cast<int64_t>((pk >= 0 ? 1 : 0) +
                                                   secondary_indexes_.size()));
}

void Table::Clear() {
  if (pool_ != nullptr && paged_) pool_->ForgetTable(this);
  pages_.clear();
  rows_.clear();
  live_.clear();
  live_rows_ = 0;
  content_hash_ = 0;
  pk_index_.clear();
  for (auto& [name, index] : secondary_indexes_) index.map.clear();
  Account(-tracked_bytes_.load(std::memory_order_relaxed));
}

int64_t Table::FindByPrimaryKey(const Value& key) const {
  if (schema_.primary_key_index() < 0) return -1;
  const auto it = pk_index_.find(key);
  return it == pk_index_.end() ? -1 : static_cast<int64_t>(it->second);
}

void Table::CreateIndex(const std::string& index_name,
                        const std::string& column_name) {
  const std::string folded = FoldIdentifier(index_name);
  if (secondary_indexes_.contains(folded)) {
    throw ExecutionError("index '" + index_name + "' already exists");
  }
  SecondaryIndex index;
  index.column = FoldIdentifier(column_name);
  index.column_index = schema_.FindColumn(index.column);
  if (index.column_index < 0) {
    throw ExecutionError("no column '" + column_name + "' in table '" +
                         name_ + "' to index");
  }
  if (paged_) {
    for (const auto& owned : pages_) {
      Page* page = owned.get();
      const PagePin pin(this, page);
      const size_t base = page->index << kPageRowShift;
      for (size_t slot = 0; slot < page->row_count; ++slot) {
        if (live_[base + slot]) {
          index.map.emplace(page->rows[slot][index.column_index],
                            base + slot);
        }
      }
    }
  } else {
    for (size_t row_id = 0; row_id < rows_.size(); ++row_id) {
      if (live_[row_id]) {
        index.map.emplace(rows_[row_id][index.column_index], row_id);
      }
    }
  }
  Account(kIndexEntryBytes * static_cast<int64_t>(index.map.size()));
  secondary_indexes_.emplace(folded, std::move(index));
}

bool Table::DropIndex(const std::string& index_name) {
  const auto it = secondary_indexes_.find(FoldIdentifier(index_name));
  if (it == secondary_indexes_.end()) return false;
  Account(-kIndexEntryBytes * static_cast<int64_t>(it->second.map.size()));
  secondary_indexes_.erase(it);
  return true;
}

bool Table::HasIndexOn(const std::string& column_name) const {
  const std::string folded = FoldIdentifier(column_name);
  if (schema_.primary_key_index() >= 0 &&
      schema_.columns()[schema_.primary_key_index()].name == folded) {
    return true;
  }
  for (const auto& [name, index] : secondary_indexes_) {
    if (index.column == folded) return true;
  }
  return false;
}

void Table::IndexProbe(const std::string& column_name, const Value& key,
                       std::vector<size_t>& out) const {
  const std::string folded = FoldIdentifier(column_name);
  if (schema_.primary_key_index() >= 0 &&
      schema_.columns()[schema_.primary_key_index()].name == folded) {
    const int64_t row = FindByPrimaryKey(key);
    if (row >= 0) out.push_back(static_cast<size_t>(row));
    return;
  }
  for (const auto& [name, index] : secondary_indexes_) {
    if (index.column != folded) continue;
    const size_t first = out.size();
    const auto [begin, end] = index.map.equal_range(key);
    for (auto it = begin; it != end; ++it) out.push_back(it->second);
    // The hash multimap yields matches in unspecified order; restore scan
    // order so index and full scans visit rows identically.
    std::sort(out.begin() + static_cast<ptrdiff_t>(first), out.end());
    return;
  }
  throw UsageError("IndexProbe on unindexed column '" + column_name + "'");
}

std::vector<size_t> Table::IndexLookup(const std::string& column_name,
                                       const Value& key) const {
  std::vector<size_t> out;
  IndexProbe(column_name, key, out);
  return out;
}

size_t Table::FillBatch(size_t* cursor, const Row** out,
                        size_t capacity) const {
  size_t slot = *cursor;
  const size_t end = live_.size();
  if (!paged_) {
    if (live_rows_ == end) {
      // No tombstones: every slot is live, so the batch is a straight run
      // of row addresses (the common case for append-only state tables).
      const size_t filled = std::min(capacity, end - slot);
      for (size_t i = 0; i < filled; ++i) out[i] = &rows_[slot + i];
      *cursor = slot + filled;
      return filled;
    }
    size_t filled = 0;
    while (slot < end && filled < capacity) {
      if (live_[slot]) out[filled++] = &rows_[slot];
      ++slot;
    }
    *cursor = slot;
    return filled;
  }
  // Paged: pin once per page, then fill from its slot run. The straight-run
  // fast path survives paging because a page's slots are consecutive ids.
  const bool dense = (live_rows_ == end);
  size_t filled = 0;
  while (slot < end && filled < capacity) {
    Page* page = PageFor(slot);
    if (spill_enabled_) PinForRead(page);
    const size_t page_end =
        std::min(end, ((slot >> kPageRowShift) + 1) << kPageRowShift);
    if (dense) {
      const size_t take = std::min(capacity - filled, page_end - slot);
      const Row* base = page->rows.data();
      const size_t offset = slot & kPageRowMask;
      for (size_t i = 0; i < take; ++i) out[filled++] = &base[offset + i];
      slot += take;
    } else {
      while (slot < page_end && filled < capacity) {
        if (live_[slot]) out[filled++] = &page->rows[slot & kPageRowMask];
        ++slot;
      }
    }
  }
  *cursor = slot;
  return filled;
}

size_t Table::FillBatchFromIds(const size_t* ids, size_t count,
                               const Row** out) const {
  if (!paged_) {
    for (size_t i = 0; i < count; ++i) out[i] = &rows_[ids[i]];
    return count;
  }
  for (size_t i = 0; i < count; ++i) {
    Page* page = PageFor(ids[i]);
    // Holds()' last-page cache makes this one pool call per page run:
    // probe results are sorted ascending, so runs are common.
    if (spill_enabled_) PinForRead(page);
    out[i] = &page->rows[ids[i] & kPageRowMask];
  }
  return count;
}

std::vector<Row> Table::SnapshotRows() const {
  std::vector<Row> out;
  out.reserve(live_rows_);
  if (paged_) {
    for (const auto& owned : pages_) {
      Page* page = owned.get();
      const PagePin pin(this, page);
      const size_t base = page->index << kPageRowShift;
      for (size_t slot = 0; slot < page->row_count; ++slot) {
        if (live_[base + slot]) out.push_back(page->rows[slot]);
      }
    }
  } else {
    for (size_t row_id = 0; row_id < rows_.size(); ++row_id) {
      if (live_[row_id]) out.push_back(rows_[row_id]);
    }
  }
  return out;
}

void Table::RestoreRows(const std::vector<Row>& rows) {
  Clear();
  for (const Row& row : rows) Insert(row);
}

uint64_t Table::RowHash(const Row& row) noexcept {
  uint64_t hash = 14695981039346656037ull;
  const auto fold = [&hash](const void* data, size_t length) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < length; ++i) {
      hash ^= bytes[i];
      hash *= 1099511628211ull;
    }
  };
  for (const Value& value : row) {
    const uint8_t tag = value.is_null()     ? 0
                        : value.is_int()    ? 1
                        : value.is_double() ? 2
                                            : 3;
    fold(&tag, sizeof(tag));
    if (value.is_null()) continue;
    if (value.is_int()) {
      const int64_t v = value.as_int();
      fold(&v, sizeof(v));
    } else if (value.is_double()) {
      // Raw bit pattern: the checksum must agree wherever the dump format
      // would (bit-identical doubles, no text formatting).
      const double d = value.as_double();
      uint64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      fold(&bits, sizeof(bits));
    } else {
      const std::string& text = value.as_text();
      const uint64_t length = text.size();
      fold(&length, sizeof(length));
      fold(text.data(), text.size());
    }
  }
  return hash;
}

bool Table::VerifyContent(uint64_t* expected_out, uint64_t* actual_out,
                          int64_t* first_bad_page_out) const {
  if (first_bad_page_out != nullptr) *first_bad_page_out = -1;
  if (!integrity_enabled_) return true;
  uint64_t actual = 0;
  bool pages_ok = true;
  if (paged_) {
    // Page-granular scrub: recompute each page's shard against its
    // maintained hash_sum, which localizes corruption to one page (and
    // catches two compensating corruptions the global sum would miss).
    for (const auto& owned : pages_) {
      Page* page = owned.get();
      const PagePin pin(this, page);
      uint64_t page_actual = 0;
      const size_t base = page->index << kPageRowShift;
      for (size_t slot = 0; slot < page->row_count; ++slot) {
        if (live_[base + slot]) page_actual += RowHash(page->rows[slot]);
      }
      if (page_actual != page->hash_sum) {
        pages_ok = false;
        if (first_bad_page_out != nullptr && *first_bad_page_out < 0) {
          *first_bad_page_out = static_cast<int64_t>(page->index);
        }
      }
      actual += page_actual;
    }
  } else {
    for (size_t row_id = 0; row_id < rows_.size(); ++row_id) {
      if (live_[row_id]) actual += RowHash(rows_[row_id]);
    }
  }
  if (expected_out != nullptr) *expected_out = content_hash_;
  if (actual_out != nullptr) *actual_out = actual;
  return actual == content_hash_ && pages_ok;
}

void Table::CorruptCellForTesting(size_t row_id, size_t column) {
  Page* page = paged_ ? PageFor(row_id) : nullptr;
  const PagePin pin(this, page);
  Value& cell = StoredRow(row_id)[column];
  if (cell.is_int()) {
    cell = Value(cell.as_int() ^ (int64_t{1} << 20));
  } else if (cell.is_double()) {
    double d = cell.as_double();
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    bits ^= 1ull << 20;
    std::memcpy(&d, &bits, sizeof(d));
    cell = Value(d);
  } else if (!cell.is_null()) {
    std::string text = cell.as_text();
    if (text.empty()) text.push_back('\x01');
    else text[0] = static_cast<char>(text[0] ^ 0x20);
    cell = Value(std::move(text));
  } else {
    cell = Value(int64_t{1});
  }
}

size_t Table::resident_page_count() const noexcept {
  // Test/bench hook; not synchronized against a concurrently evicting
  // pool — call only from quiesced contexts.
  size_t count = 0;
  for (const auto& owned : pages_) {
    if (owned->resident) ++count;
  }
  return count;
}

void Table::IndexInsert(size_t row_id, const Row& row) {
  for (auto& [name, index] : secondary_indexes_) {
    index.map.emplace(row[index.column_index], row_id);
  }
}

void Table::IndexErase(size_t row_id, const Row& row) {
  for (auto& [name, index] : secondary_indexes_) {
    const Value& key = row[index.column_index];
    const auto [begin, end] = index.map.equal_range(key);
    for (auto it = begin; it != end; ++it) {
      if (it->second == row_id) {
        index.map.erase(it);
        break;
      }
    }
  }
}

}  // namespace sqloop::minidb
