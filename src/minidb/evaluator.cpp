#include "minidb/evaluator.h"

#include <cmath>

#include "common/error.h"

namespace sqloop::minidb {

void Relation::Materialize() {
  if (!borrowed) return;
  rows.reserve(views.size());
  for (const Row* view : views) rows.push_back(*view);
  views.clear();
  views.shrink_to_fit();
  borrowed = false;
}

namespace {

[[noreturn]] void TypeFail(const std::string& what, const Value& a,
                           const Value& b) {
  throw ExecutionError("cannot apply " + what + " to " +
                       std::string(ValueTypeName(a.type())) + " and " +
                       std::string(ValueTypeName(b.type())));
}

Value Arithmetic(sql::BinaryOp op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (!a.is_numeric() || !b.is_numeric()) {
    TypeFail(sql::BinaryOpName(op), a, b);
  }
  const bool ints = a.is_int() && b.is_int();
  switch (op) {
    case sql::BinaryOp::kAdd:
      if (ints) return Value(a.as_int() + b.as_int());
      return Value(a.NumericAsDouble() + b.NumericAsDouble());
    case sql::BinaryOp::kSub:
      if (ints) return Value(a.as_int() - b.as_int());
      return Value(a.NumericAsDouble() - b.NumericAsDouble());
    case sql::BinaryOp::kMul:
      if (ints) return Value(a.as_int() * b.as_int());
      return Value(a.NumericAsDouble() * b.NumericAsDouble());
    case sql::BinaryOp::kDiv:
      if (ints) {
        if (b.as_int() == 0) throw ExecutionError("integer division by zero");
        return Value(a.as_int() / b.as_int());
      }
      return Value(a.NumericAsDouble() / b.NumericAsDouble());
    case sql::BinaryOp::kMod:
      if (!ints) TypeFail("%", a, b);
      if (b.as_int() == 0) throw ExecutionError("modulo by zero");
      return Value(a.as_int() % b.as_int());
    default:
      break;
  }
  throw UsageError("non-arithmetic operator in Arithmetic()");
}

Value Comparison(sql::BinaryOp op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (a.is_numeric() != b.is_numeric()) {
    TypeFail(sql::BinaryOpName(op), a, b);
  }
  const int c = Value::Compare(a, b);
  bool result = false;
  switch (op) {
    case sql::BinaryOp::kEq: result = c == 0; break;
    case sql::BinaryOp::kNotEq: result = c != 0; break;
    case sql::BinaryOp::kLess: result = c < 0; break;
    case sql::BinaryOp::kLessEq: result = c <= 0; break;
    case sql::BinaryOp::kGreater: result = c > 0; break;
    case sql::BinaryOp::kGreaterEq: result = c >= 0; break;
    default:
      throw UsageError("non-comparison operator in Comparison()");
  }
  return Value(int64_t{result ? 1 : 0});
}

// Kleene three-valued AND/OR over {false, true, unknown(NULL)}.
Value Logical(sql::BinaryOp op, const Value& a, const Value& b) {
  const auto truth = [](const Value& v) -> int {  // 0, 1, or -1 (unknown)
    if (v.is_null()) return -1;
    if (!v.is_numeric()) {
      throw ExecutionError("boolean operator applied to TEXT value");
    }
    return v.NumericAsDouble() != 0 ? 1 : 0;
  };
  const int ta = truth(a);
  const int tb = truth(b);
  if (op == sql::BinaryOp::kAnd) {
    if (ta == 0 || tb == 0) return Value(int64_t{0});
    if (ta == -1 || tb == -1) return Value::Null();
    return Value(int64_t{1});
  }
  if (ta == 1 || tb == 1) return Value(int64_t{1});
  if (ta == -1 || tb == -1) return Value::Null();
  return Value(int64_t{0});
}

Value EvalFunction(const sql::Expr& expr, const EvalContext& ctx) {
  const std::string& name = expr.function_name;
  std::vector<Value> args;
  args.reserve(expr.args.size());
  for (const auto& arg : expr.args) args.push_back(Evaluate(*arg, ctx));

  if (name == "COALESCE") {
    for (const Value& v : args) {
      if (!v.is_null()) return v;
    }
    return Value::Null();
  }
  if (name == "LEAST" || name == "GREATEST") {
    // PostgreSQL semantics: NULL inputs are ignored; all-NULL gives NULL.
    Value best;
    const bool want_least = name == "LEAST";
    for (const Value& v : args) {
      if (v.is_null()) continue;
      if (best.is_null()) {
        best = v;
        continue;
      }
      const int c = Value::Compare(v, best);
      if ((want_least && c < 0) || (!want_least && c > 0)) best = v;
    }
    return best;
  }
  const auto unary_numeric = [&](double (*fn)(double)) {
    if (args.size() != 1) {
      throw ExecutionError(name + " expects exactly one argument");
    }
    if (args[0].is_null()) return Value::Null();
    if (!args[0].is_numeric()) {
      throw ExecutionError(name + " expects a numeric argument");
    }
    return Value(fn(args[0].NumericAsDouble()));
  };
  if (name == "ABS") {
    if (args.size() != 1) throw ExecutionError("ABS expects one argument");
    if (args[0].is_null()) return Value::Null();
    if (args[0].is_int()) return Value(std::abs(args[0].as_int()));
    if (args[0].is_double()) return Value(std::fabs(args[0].as_double()));
    throw ExecutionError("ABS expects a numeric argument");
  }
  if (name == "SQRT") return unary_numeric(std::sqrt);
  if (name == "FLOOR") return unary_numeric(std::floor);
  if (name == "CEIL" || name == "CEILING") return unary_numeric(std::ceil);
  if (name == "ROUND") return unary_numeric(std::round);
  throw ExecutionError("unknown function " + name);
}

}  // namespace

bool Truthy(const Value& v) {
  if (v.is_null()) return false;
  if (!v.is_numeric()) {
    throw ExecutionError("predicate evaluated to a TEXT value");
  }
  return v.NumericAsDouble() != 0;
}

int TryResolveColumn(const std::vector<ColumnBinding>& columns,
                     const std::string& qualifier, const std::string& name) {
  const std::string q = FoldIdentifier(qualifier);
  const std::string n = FoldIdentifier(name);
  int found = -1;
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name != n) continue;
    if (!q.empty() && columns[i].qualifier != q) continue;
    if (found >= 0) {
      throw AnalysisError("ambiguous column reference '" +
                          (q.empty() ? n : q + "." + n) + "'");
    }
    found = static_cast<int>(i);
  }
  return found;
}

int ResolveColumn(const std::vector<ColumnBinding>& columns,
                  const std::string& qualifier, const std::string& name) {
  const int index = TryResolveColumn(columns, qualifier, name);
  if (index < 0) {
    throw AnalysisError(
        "unknown column '" +
        (qualifier.empty() ? name : qualifier + "." + name) + "'");
  }
  return index;
}

bool AllColumnsResolve(const sql::Expr& expr,
                       const std::vector<ColumnBinding>& columns) {
  bool ok = true;
  sql::VisitExpr(expr, [&](const sql::Expr& node) {
    if (node.kind == sql::ExprKind::kColumnRef && ok) {
      if (TryResolveColumn(columns, node.qualifier, node.column) < 0) {
        ok = false;
      }
    }
  });
  return ok;
}

Value Evaluate(const sql::Expr& expr, const EvalContext& ctx) {
  switch (expr.kind) {
    case sql::ExprKind::kLiteral:
      return expr.literal;
    case sql::ExprKind::kColumnRef: {
      if (ctx.columns == nullptr || ctx.row == nullptr) {
        throw AnalysisError("column reference '" + expr.column +
                            "' in a context without input rows");
      }
      int index;
      if (ctx.resolution_cache != nullptr) {
        const auto it = ctx.resolution_cache->find(&expr);
        if (it != ctx.resolution_cache->end()) {
          index = it->second;
        } else {
          index = ResolveColumn(*ctx.columns, expr.qualifier, expr.column);
          ctx.resolution_cache->emplace(&expr, index);
        }
      } else {
        index = ResolveColumn(*ctx.columns, expr.qualifier, expr.column);
      }
      return (*ctx.row)[index];
    }
    case sql::ExprKind::kStar:
      throw AnalysisError("'*' is only valid in SELECT lists and COUNT(*)");
    case sql::ExprKind::kUnary: {
      const Value v = Evaluate(*expr.left, ctx);
      if (expr.unary_op == sql::UnaryOp::kNegate) {
        if (v.is_null()) return Value::Null();
        if (v.is_int()) return Value(-v.as_int());
        if (v.is_double()) return Value(-v.as_double());
        throw ExecutionError("cannot negate a TEXT value");
      }
      // NOT with three-valued logic.
      if (v.is_null()) return Value::Null();
      return Value(int64_t{Truthy(v) ? 0 : 1});
    }
    case sql::ExprKind::kBinary: {
      switch (expr.binary_op) {
        case sql::BinaryOp::kAnd:
        case sql::BinaryOp::kOr:
          return Logical(expr.binary_op, Evaluate(*expr.left, ctx),
                         Evaluate(*expr.right, ctx));
        case sql::BinaryOp::kEq:
        case sql::BinaryOp::kNotEq:
        case sql::BinaryOp::kLess:
        case sql::BinaryOp::kLessEq:
        case sql::BinaryOp::kGreater:
        case sql::BinaryOp::kGreaterEq:
          return Comparison(expr.binary_op, Evaluate(*expr.left, ctx),
                            Evaluate(*expr.right, ctx));
        default:
          return Arithmetic(expr.binary_op, Evaluate(*expr.left, ctx),
                            Evaluate(*expr.right, ctx));
      }
    }
    case sql::ExprKind::kFunction:
      return EvalFunction(expr, ctx);
    case sql::ExprKind::kAggregate: {
      if (ctx.agg_exprs != nullptr) {
        for (size_t i = 0; i < ctx.agg_exprs->size(); ++i) {
          if (sql::ExprEquals(*(*ctx.agg_exprs)[i], expr)) {
            return (*ctx.agg_values)[i];
          }
        }
      }
      throw AnalysisError("aggregate function in an invalid position");
    }
    case sql::ExprKind::kCase: {
      if (expr.case_operand) {
        const Value operand = Evaluate(*expr.case_operand, ctx);
        for (const auto& when : expr.whens) {
          const Value candidate = Evaluate(*when.condition, ctx);
          if (!operand.is_null() && !candidate.is_null() &&
              Value::Compare(operand, candidate) == 0) {
            return Evaluate(*when.result, ctx);
          }
        }
      } else {
        for (const auto& when : expr.whens) {
          if (Truthy(Evaluate(*when.condition, ctx))) {
            return Evaluate(*when.result, ctx);
          }
        }
      }
      return expr.else_expr ? Evaluate(*expr.else_expr, ctx) : Value::Null();
    }
    case sql::ExprKind::kIsNull: {
      const Value v = Evaluate(*expr.left, ctx);
      const bool is_null = v.is_null();
      return Value(int64_t{(is_null != expr.is_not_null) ? 1 : 0});
    }
    case sql::ExprKind::kParameter:
      throw AnalysisError(
          "unbound parameter ?" + std::to_string(expr.param_index + 1) +
          " — bind a value through a prepared statement before executing");
  }
  throw UsageError("unevaluable expression kind");
}

Accumulator::Accumulator(sql::AggFunc func, bool distinct)
    : func_(func), distinct_(distinct) {}

bool Accumulator::ShouldSkipDuplicate(const Value& v) {
  if (!distinct_) return false;
  return !seen_.insert(v).second;
}

void Accumulator::Add(const Value& v) {
  if (v.is_null()) return;  // SQL aggregates ignore NULL inputs
  if (ShouldSkipDuplicate(v)) return;
  ++value_count_;
  switch (func_) {
    case sql::AggFunc::kCount:
      return;
    case sql::AggFunc::kSum:
    case sql::AggFunc::kAvg:
      if (!v.is_numeric()) {
        throw ExecutionError("SUM/AVG over non-numeric value");
      }
      if (v.is_int() && !saw_double_) {
        int_sum_ += v.as_int();
      } else {
        if (!saw_double_) {
          double_sum_ = static_cast<double>(int_sum_);
          saw_double_ = true;
        }
        double_sum_ += v.NumericAsDouble();
      }
      return;
    case sql::AggFunc::kMin:
      if (extreme_.is_null() || Value::Compare(v, extreme_) < 0) extreme_ = v;
      return;
    case sql::AggFunc::kMax:
      if (extreme_.is_null() || Value::Compare(v, extreme_) > 0) extreme_ = v;
      return;
  }
}

void Accumulator::AddInt64Span(const int64_t* values, size_t count) {
  value_count_ += static_cast<int64_t>(count);
  switch (func_) {
    case sql::AggFunc::kCount:
      return;
    case sql::AggFunc::kSum:
    case sql::AggFunc::kAvg:
      if (!saw_double_) {
        int64_t sum = 0;
        for (size_t i = 0; i < count; ++i) sum += values[i];
        int_sum_ += sum;
      } else {
        for (size_t i = 0; i < count; ++i) {
          double_sum_ += static_cast<double>(values[i]);
        }
      }
      return;
    case sql::AggFunc::kMin:
      for (size_t i = 0; i < count; ++i) {
        if (extreme_.is_null() || values[i] < extreme_.as_int()) {
          extreme_ = Value(values[i]);
        }
      }
      return;
    case sql::AggFunc::kMax:
      for (size_t i = 0; i < count; ++i) {
        if (extreme_.is_null() || values[i] > extreme_.as_int()) {
          extreme_ = Value(values[i]);
        }
      }
      return;
  }
}

void Accumulator::AddDoubleSpan(const double* values, size_t count) {
  value_count_ += static_cast<int64_t>(count);
  switch (func_) {
    case sql::AggFunc::kCount:
      return;
    case sql::AggFunc::kSum:
    case sql::AggFunc::kAvg:
      if (!saw_double_) {
        double_sum_ = static_cast<double>(int_sum_);
        saw_double_ = true;
      }
      // Sequential lane-order adds: bit-identical to the Add() sequence.
      for (size_t i = 0; i < count; ++i) double_sum_ += values[i];
      return;
    case sql::AggFunc::kMin:
      // `v < extreme` mirrors Value::Compare's three-way double arm: a NaN
      // on either side compares "equal" and never replaces the extreme.
      for (size_t i = 0; i < count; ++i) {
        if (extreme_.is_null() || values[i] < extreme_.as_double()) {
          extreme_ = Value(values[i]);
        }
      }
      return;
    case sql::AggFunc::kMax:
      for (size_t i = 0; i < count; ++i) {
        if (extreme_.is_null() || values[i] > extreme_.as_double()) {
          extreme_ = Value(values[i]);
        }
      }
      return;
  }
}

void Accumulator::AddTextSpan(const std::string* const* values, size_t count) {
  value_count_ += static_cast<int64_t>(count);
  switch (func_) {
    case sql::AggFunc::kCount:
      return;
    case sql::AggFunc::kSum:
    case sql::AggFunc::kAvg:
      throw ExecutionError("SUM/AVG over non-numeric value");
    case sql::AggFunc::kMin:
      for (size_t i = 0; i < count; ++i) {
        if (extreme_.is_null() ||
            values[i]->compare(extreme_.as_text()) < 0) {
          extreme_ = Value(*values[i]);
        }
      }
      return;
    case sql::AggFunc::kMax:
      for (size_t i = 0; i < count; ++i) {
        if (extreme_.is_null() ||
            values[i]->compare(extreme_.as_text()) > 0) {
          extreme_ = Value(*values[i]);
        }
      }
      return;
  }
}

void Accumulator::AddCountedRows(int64_t count) { value_count_ += count; }

Value Accumulator::Result() const {
  switch (func_) {
    case sql::AggFunc::kCount:
      return Value(value_count_);
    case sql::AggFunc::kSum:
      if (value_count_ == 0) return Value::Null();
      return saw_double_ ? Value(double_sum_) : Value(int_sum_);
    case sql::AggFunc::kAvg: {
      if (value_count_ == 0) return Value::Null();
      const double total =
          saw_double_ ? double_sum_ : static_cast<double>(int_sum_);
      return Value(total / static_cast<double>(value_count_));
    }
    case sql::AggFunc::kMin:
    case sql::AggFunc::kMax:
      return extreme_;
  }
  throw UsageError("unknown aggregate");
}

void CollectAggregates(const sql::Expr& expr,
                       std::vector<const sql::Expr*>& out) {
  sql::VisitExpr(expr, [&out](const sql::Expr& node) {
    if (node.kind != sql::ExprKind::kAggregate) return;
    for (const sql::Expr* existing : out) {
      if (sql::ExprEquals(*existing, node)) return;
    }
    out.push_back(&node);
  });
}

bool ContainsAggregate(const sql::Expr& expr) {
  bool found = false;
  sql::VisitExpr(expr, [&found](const sql::Expr& node) {
    if (node.kind == sql::ExprKind::kAggregate) found = true;
  });
  return found;
}

}  // namespace sqloop::minidb
