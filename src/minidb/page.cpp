#include "minidb/page.h"

#include <cstring>

#include "common/checksum.h"
#include "common/error.h"
#include "minidb/buffer_pool.h"

namespace sqloop::minidb {
namespace {

// Spill image layout (same tagged-value encoding as the dump format, so
// doubles round-trip by bit pattern and a reloaded page is bit-identical):
//   u32  row count
//   per row: u32 cell count, then per cell a tagged value
//   u32  CRC-32 of every preceding byte
enum : uint8_t { kTagNull = 0, kTagInt64 = 1, kTagDouble = 2, kTagText = 3 };

void AppendRaw(std::string& out, const void* data, size_t length) {
  out.append(static_cast<const char*>(data), length);
}

void AppendU32(std::string& out, uint32_t v) { AppendRaw(out, &v, sizeof(v)); }

void AppendValue(std::string& out, const Value& value) {
  if (value.is_null()) {
    const uint8_t tag = kTagNull;
    AppendRaw(out, &tag, sizeof(tag));
  } else if (value.is_int()) {
    const uint8_t tag = kTagInt64;
    AppendRaw(out, &tag, sizeof(tag));
    const int64_t v = value.as_int();
    AppendRaw(out, &v, sizeof(v));
  } else if (value.is_double()) {
    const uint8_t tag = kTagDouble;
    AppendRaw(out, &tag, sizeof(tag));
    uint64_t bits;
    const double d = value.as_double();
    std::memcpy(&bits, &d, sizeof(bits));
    AppendRaw(out, &bits, sizeof(bits));
  } else {
    const uint8_t tag = kTagText;
    AppendRaw(out, &tag, sizeof(tag));
    const std::string& text = value.as_text();
    AppendU32(out, static_cast<uint32_t>(text.size()));
    AppendRaw(out, text.data(), text.size());
  }
}

/// Bounds-checked reader over a spill image.
class ImageReader {
 public:
  ImageReader(const char* data, size_t length, const std::string& what)
      : data_(data), length_(length), what_(what) {}

  void Read(void* out, size_t n) {
    if (n > length_ - offset_) {
      throw IntegrityError("spill image for " + what_ +
                           " is truncated at byte offset " +
                           std::to_string(offset_));
    }
    std::memcpy(out, data_ + offset_, n);
    offset_ += n;
  }

  template <typename T>
  T ReadAs() {
    T v;
    Read(&v, sizeof(v));
    return v;
  }

  std::string ReadString(size_t n) {
    if (n > length_ - offset_) {
      throw IntegrityError("spill image for " + what_ +
                           " is truncated at byte offset " +
                           std::to_string(offset_));
    }
    std::string out(data_ + offset_, n);
    offset_ += n;
    return out;
  }

  bool AtEnd() const noexcept { return offset_ == length_; }

 private:
  const char* data_;
  size_t length_;
  const std::string& what_;
  size_t offset_ = 0;
};

Value ReadValue(ImageReader& reader) {
  switch (reader.ReadAs<uint8_t>()) {
    case kTagNull:
      return Value();
    case kTagInt64:
      return Value(reader.ReadAs<int64_t>());
    case kTagDouble: {
      const uint64_t bits = reader.ReadAs<uint64_t>();
      double d;
      std::memcpy(&d, &bits, sizeof(d));
      return Value(d);
    }
    case kTagText:
      return Value(reader.ReadString(reader.ReadAs<uint32_t>()));
    default:
      throw IntegrityError("spill image has a corrupt value tag");
  }
}

thread_local PinScope* g_current_scope = nullptr;

}  // namespace

void SerializePage(const Page& page, std::string* out) {
  AppendU32(*out, static_cast<uint32_t>(page.rows.size()));
  for (const Row& row : page.rows) {
    AppendU32(*out, static_cast<uint32_t>(row.size()));
    for (const Value& value : row) AppendValue(*out, value);
  }
  AppendU32(*out, Crc32(out->data(), out->size()));
}

void DeserializePage(const char* data, size_t length, Page* page,
                     const std::string& what) {
  if (length < sizeof(uint32_t) * 2) {
    throw IntegrityError("spill image for " + what + " is truncated (" +
                         std::to_string(length) + " bytes)");
  }
  uint32_t stored_crc;
  std::memcpy(&stored_crc, data + length - sizeof(stored_crc),
              sizeof(stored_crc));
  const uint32_t actual_crc = Crc32(data, length - sizeof(stored_crc));
  if (stored_crc != actual_crc) {
    throw IntegrityError("spill image for " + what +
                         " failed CRC validation");
  }
  ImageReader reader(data, length - sizeof(stored_crc), what);
  const uint32_t rows = reader.ReadAs<uint32_t>();
  if (rows != page->row_count) {
    throw IntegrityError("spill image for " + what + " holds " +
                         std::to_string(rows) + " rows, expected " +
                         std::to_string(page->row_count));
  }
  page->rows.clear();
  // Full capacity, not `rows`: appends into a reloaded tail page must not
  // move rows other views on the same page still reference.
  page->rows.reserve(kPageRowCapacity);
  for (uint32_t r = 0; r < rows; ++r) {
    const uint32_t cells = reader.ReadAs<uint32_t>();
    Row row;
    row.reserve(cells);
    for (uint32_t c = 0; c < cells; ++c) row.push_back(ReadValue(reader));
    page->rows.push_back(std::move(row));
  }
  if (!reader.AtEnd()) {
    throw IntegrityError("spill image for " + what +
                         " has trailing garbage");
  }
}

PinScope::PinScope() : previous_(g_current_scope) { g_current_scope = this; }

PinScope::~PinScope() {
  ReleaseTo(0);
  g_current_scope = previous_;
}

PinScope* PinScope::Current() noexcept { return g_current_scope; }

void PinScope::Add(BufferPool* pool, Page* page) {
  pinned_.push_back({pool, page});
  held_.insert(page);
  last_ = page;
}

void PinScope::ReleaseTo(size_t mark) noexcept {
  while (pinned_.size() > mark) {
    const Entry entry = pinned_.back();
    pinned_.pop_back();
    held_.erase(entry.page);
    entry.pool->Unpin(entry.page);
  }
  last_ = nullptr;
}

}  // namespace sqloop::minidb
