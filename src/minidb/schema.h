// Table schemas and row/result containers for the minidb engine.
//
// Identifier handling: minidb folds all table/column names to lower case
// (as PostgreSQL does for unquoted identifiers), so SQL written with any
// capitalization resolves consistently.
#pragma once

#include <string>
#include <vector>

#include "sql/value.h"

namespace sqloop::minidb {

using Row = std::vector<Value>;

struct Column {
  std::string name;  // lower-cased
  ValueType type = ValueType::kInt64;
};

class Schema {
 public:
  Schema() = default;
  Schema(std::vector<Column> columns, int primary_key_index);

  const std::vector<Column>& columns() const noexcept { return columns_; }
  size_t column_count() const noexcept { return columns_.size(); }
  int primary_key_index() const noexcept { return primary_key_index_; }

  /// Index of the column with this (case-insensitive) name, or -1.
  int FindColumn(const std::string& name) const noexcept;

  /// Coerces `row` to the schema's column types in place (int widens to
  /// double, NULL passes through). Throws ExecutionError on arity or type
  /// mismatch.
  void CoerceRow(Row& row) const;

 private:
  std::vector<Column> columns_;
  int primary_key_index_ = -1;
};

/// Result of a statement: column names + rows for queries, affected-row
/// count for DML. Shipped to clients through the dbc layer.
struct ResultSet {
  std::vector<std::string> columns;
  std::vector<Row> rows;
  size_t affected_rows = 0;
  /// Rows the engine read while answering (table-scan volume). The dbc
  /// layer uses this to model server-side processing cost; see DESIGN.md.
  size_t rows_examined = 0;
  /// True when the engine compiled (parsed + planned) the statement text
  /// rather than serving a cached plan. The dbc layer uses this to model
  /// server-side compile cost (compile_us) — prepared/cached executions
  /// skip it, exactly like a server-side PREPARE.
  bool compiled = false;

  bool empty() const noexcept { return rows.empty(); }
  size_t row_count() const noexcept { return rows.size(); }

  /// Convenience accessor for single-value results (aggregate probes).
  const Value& ScalarAt(size_t row = 0, size_t col = 0) const;
};

/// Lower-cases an identifier the way the catalog stores it.
std::string FoldIdentifier(const std::string& name);

// --- memory-footprint estimates (DESIGN.md "Resource governance") ------
// Estimates, not allocator truth: they count the value payloads plus the
// vector/variant headers, which is what governance budgets care about.
// Text shorter than the SSO buffer costs nothing beyond the Value itself.

inline int64_t ValueFootprintBytes(const Value& value) noexcept {
  int64_t bytes = static_cast<int64_t>(sizeof(Value));
  if (value.is_text()) {
    const std::string& text = value.as_text();
    if (text.capacity() > sizeof(std::string)) {
      bytes += static_cast<int64_t>(text.capacity());
    }
  }
  return bytes;
}

inline int64_t RowFootprintBytes(const Row& row) noexcept {
  int64_t bytes = static_cast<int64_t>(sizeof(Row));
  for (const Value& value : row) bytes += ValueFootprintBytes(value);
  return bytes;
}

}  // namespace sqloop::minidb
