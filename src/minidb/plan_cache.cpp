#include "minidb/plan_cache.h"

#include <cctype>

namespace sqloop::minidb {

std::string NormalizeSqlKey(std::string_view sql) {
  std::string out;
  out.reserve(sql.size());
  char quote = '\0';
  bool pending_space = false;
  for (size_t i = 0; i < sql.size(); ++i) {
    const char c = sql[i];
    if (quote != '\0') {
      out += c;
      if (c == quote) {
        // A doubled quote char is an escape, not a terminator.
        if (i + 1 < sql.size() && sql[i + 1] == quote) {
          out += quote;
          ++i;
        } else {
          quote = '\0';
        }
      }
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = true;
      continue;
    }
    if (pending_space && !out.empty()) out += ' ';
    pending_space = false;
    out += c;
    if (c == '\'' || c == '"' || c == '`') quote = c;
  }
  while (!out.empty() && (out.back() == ';' || out.back() == ' ')) {
    out.pop_back();
  }
  return out;
}

std::shared_ptr<const CachedPlan> PlanCache::Lookup(const std::string& key) {
  if (!enabled()) return nullptr;
  const std::scoped_lock lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  lru_.splice(lru_.begin(), lru_, it->second.lru_position);
  return it->second.plan;
}

void PlanCache::Put(const std::string& key,
                    std::shared_ptr<const CachedPlan> plan) {
  if (!enabled()) return;
  const std::scoped_lock lock(mutex_);
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.plan = std::move(plan);
    lru_.splice(lru_.begin(), lru_, it->second.lru_position);
    return;
  }
  lru_.push_front(key);
  entries_.emplace(key, Slot{std::move(plan), lru_.begin()});
  while (entries_.size() > capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void PlanCache::Clear() {
  const std::scoped_lock lock(mutex_);
  entries_.clear();
  lru_.clear();
}

size_t PlanCache::size() const {
  const std::scoped_lock lock(mutex_);
  return entries_.size();
}

}  // namespace sqloop::minidb
