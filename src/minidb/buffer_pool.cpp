#include "minidb/buffer_pool.h"

#include <chrono>
#include <filesystem>

#include "common/error.h"
#include "minidb/table.h"

namespace sqloop::minidb {

namespace fs = std::filesystem;

BufferPool::BufferPool(std::string spill_dir)
    : spill_dir_(std::move(spill_dir)) {}

BufferPool::~BufferPool() {
  {
    const std::scoped_lock lock(lock_);
    stop_writer_ = true;
  }
  writer_cv_.notify_all();
  if (writer_.joinable()) writer_.join();
  const std::scoped_lock lock(lock_);
  for (auto& [table, spill] : spill_files_) {
    if (spill.file != nullptr) std::fclose(spill.file);
    std::error_code ec;
    fs::remove(spill.path, ec);
  }
  spill_files_.clear();
  std::error_code ec;
  fs::remove(spill_dir_, ec);  // only succeeds when empty — intended
}

void BufferPool::set_budget_bytes(int64_t budget) {
  budget_.store(budget < 0 ? 0 : budget, std::memory_order_relaxed);
  bool start_writer = false;
  {
    const std::scoped_lock lock(lock_);
    if (budget > 0) {
      EvictUntil(budget);
      if (!writer_started_) {
        writer_started_ = true;
        start_writer = true;
      }
    }
  }
  if (start_writer) {
    writer_ = std::thread([this] { WriterLoop(); });
  }
}

void BufferPool::AddPage(Page* page) {
  const std::scoped_lock lock(lock_);
  page->ring_pos = static_cast<ptrdiff_t>(ring_.size());
  ring_.push_back(page);
  resident_bytes_ += page->bytes;
  if (resident_bytes_ > resident_peak_) resident_peak_ = resident_bytes_;
  const int64_t budget = budget_bytes();
  if (budget > 0 && resident_bytes_ > budget) EvictUntil(budget);
}

void BufferPool::PageGrew(Page* page, int64_t delta) {
  const std::scoped_lock lock(lock_);
  if (!page->resident) return;  // caller pins before growing; defensive
  resident_bytes_ += delta;
  if (resident_bytes_ > resident_peak_) resident_peak_ = resident_bytes_;
  const int64_t budget = budget_bytes();
  if (budget > 0 && resident_bytes_ > budget) EvictUntil(budget);
}

void BufferPool::Pin(Page* page) {
  const std::scoped_lock lock(lock_);
  ++page->pins;
  page->referenced = true;
  if (page->resident) {
    hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    try {
      FaultIn(page);
    } catch (...) {
      --page->pins;  // a failed fault-in must not leak the pin
      throw;
    }
    const int64_t budget = budget_bytes();
    if (budget > 0 && resident_bytes_ > budget) EvictUntil(budget);
  }
}

void BufferPool::Unpin(Page* page) {
  const std::scoped_lock lock(lock_);
  if (page->pins > 0) --page->pins;
}

void BufferPool::MarkDirty(Page* page) {
  const std::scoped_lock lock(lock_);
  page->dirty = true;
}

void BufferPool::ForgetTable(Table* table) {
  const std::scoped_lock lock(lock_);
  for (size_t i = 0; i < ring_.size();) {
    if (ring_[i]->owner == table) {
      resident_bytes_ -= ring_[i]->bytes;
      ring_[i]->ring_pos = -1;
      ring_[i] = ring_.back();
      if (ring_[i]->ring_pos >= 0) {
        ring_[i]->ring_pos = static_cast<ptrdiff_t>(i);
      }
      ring_.pop_back();
    } else {
      ++i;
    }
  }
  if (hand_ >= ring_.size()) hand_ = 0;
  const auto it = spill_files_.find(table);
  if (it != spill_files_.end()) {
    if (it->second.file != nullptr) std::fclose(it->second.file);
    std::error_code ec;
    fs::remove(it->second.path, ec);
    spill_files_.erase(it);
  }
}

int64_t BufferPool::TryReclaim(int64_t bytes) {
  if (bytes <= 0) return 0;
  const std::scoped_lock lock(lock_);
  return EvictUntil(resident_bytes_ - bytes);
}

int64_t BufferPool::Shrink() {
  const std::scoped_lock lock(lock_);
  return EvictUntil(0);
}

BufferPool::Stats BufferPool::stats() const {
  Stats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.pages_evicted = pages_evicted_.load(std::memory_order_relaxed);
  out.bytes_spilled = bytes_spilled_.load(std::memory_order_relaxed);
  out.writebacks = writebacks_.load(std::memory_order_relaxed);
  out.budget_bytes = budget_bytes();
  const std::scoped_lock lock(lock_);
  out.resident_bytes = resident_bytes_;
  out.resident_peak = resident_peak_;
  return out;
}

int64_t BufferPool::EvictUntil(int64_t target) {
  if (target < 0) target = 0;
  int64_t freed = 0;
  // Two full sweeps bound the clock: the first clears reference bits, the
  // second takes every unpinned victim. If a sweep pair frees nothing the
  // remaining pages are all pinned and the pool is allowed to overshoot
  // (pins are statement-scoped, so pressure resolves when they drain).
  size_t attempts = 0;
  const size_t max_attempts = ring_.size() * 2;
  while (resident_bytes_ > target && !ring_.empty() &&
         attempts < max_attempts) {
    if (hand_ >= ring_.size()) hand_ = 0;
    Page* page = ring_[hand_];
    if (page->pins > 0) {
      ++hand_;
      ++attempts;
      continue;
    }
    if (page->referenced) {
      page->referenced = false;
      ++hand_;
      ++attempts;
      continue;
    }
    // Victim: write back if dirty, then drop the payload.
    if (page->dirty) WriteBack(page);
    std::vector<Row>().swap(page->rows);
    page->resident = false;
    resident_bytes_ -= page->bytes;
    freed += page->bytes;
    page->owner->OnPageResidencyDelta(-page->bytes);
    pages_evicted_.fetch_add(1, std::memory_order_relaxed);
    RingRemove(page);
    ++attempts;
  }
  return freed;
}

void BufferPool::WriteBack(Page* page) {
  SpillFile& spill = SpillFor(page->owner);
  std::string image;
  SerializePage(*page, &image);
  uint64_t offset;
  if (page->spill_length > 0 && image.size() <= page->spill_length) {
    offset = page->spill_offset;  // reuse the slot in place
  } else {
    offset = spill.end_offset;
    spill.end_offset += image.size();
  }
  if (std::fseek(spill.file, static_cast<long>(offset), SEEK_SET) != 0 ||
      std::fwrite(image.data(), 1, image.size(), spill.file) !=
          image.size()) {
    throw ExecutionError("buffer pool failed to spill page " +
                         std::to_string(page->index) + " of table '" +
                         page->owner->name() + "' to '" + spill.path + "'");
  }
  page->spill_offset = offset;
  page->spill_length = image.size();
  page->dirty = false;
  bytes_spilled_.fetch_add(image.size(), std::memory_order_relaxed);
}

void BufferPool::FaultIn(Page* page) {
  if (page->spill_length == 0) {
    throw ExecutionError("buffer pool has no spill image for page " +
                         std::to_string(page->index) + " of table '" +
                         page->owner->name() + "'");
  }
  SpillFile& spill = SpillFor(page->owner);
  std::string image(page->spill_length, '\0');
  if (std::fseek(spill.file, static_cast<long>(page->spill_offset),
                 SEEK_SET) != 0 ||
      std::fread(image.data(), 1, image.size(), spill.file) !=
          image.size()) {
    throw IntegrityError("buffer pool failed to reload page " +
                         std::to_string(page->index) + " of table '" +
                         page->owner->name() + "' from '" + spill.path +
                         "'");
  }
  DeserializePage(image.data(), image.size(), page,
                  "table '" + page->owner->name() + "' page " +
                      std::to_string(page->index));
  page->resident = true;
  page->dirty = false;
  page->referenced = true;
  page->ring_pos = static_cast<ptrdiff_t>(ring_.size());
  ring_.push_back(page);
  resident_bytes_ += page->bytes;
  if (resident_bytes_ > resident_peak_) resident_peak_ = resident_bytes_;
  page->owner->OnPageResidencyDelta(page->bytes);
}

void BufferPool::RingRemove(Page* page) {
  const size_t pos = static_cast<size_t>(page->ring_pos);
  page->ring_pos = -1;
  Page* last = ring_.back();
  ring_.pop_back();
  if (pos < ring_.size()) {
    ring_[pos] = last;
    last->ring_pos = static_cast<ptrdiff_t>(pos);
  }
  if (hand_ >= ring_.size()) hand_ = 0;
}

BufferPool::SpillFile& BufferPool::SpillFor(Table* table) {
  auto it = spill_files_.find(table);
  if (it != spill_files_.end() && it->second.file != nullptr) {
    return it->second;
  }
  std::error_code ec;
  fs::create_directories(spill_dir_, ec);
  static std::atomic<uint64_t> next_id{0};
  SpillFile spill;
  spill.path = spill_dir_ + "/" + table->name() + "_" +
               std::to_string(next_id.fetch_add(1)) + ".spill";
  spill.file = std::fopen(spill.path.c_str(), "wb+");
  if (spill.file == nullptr) {
    throw ExecutionError("buffer pool cannot create spill file '" +
                         spill.path + "'");
  }
  auto [pos, inserted] = spill_files_.insert_or_assign(table, spill);
  return pos->second;
}

void BufferPool::WriterLoop() {
  std::unique_lock lock(lock_);
  while (!stop_writer_) {
    writer_cv_.wait_for(lock, std::chrono::milliseconds(25),
                        [this] { return stop_writer_; });
    if (stop_writer_) break;
    // Clean a few cold dirty pages per tick so evictions mostly find
    // clean victims and drop them without I/O on the reader's thread.
    size_t cleaned = 0;
    for (size_t i = 0; i < ring_.size() && cleaned < 4; ++i) {
      Page* page = ring_[i];
      if (page->dirty && page->pins == 0 && !page->referenced &&
          page->resident) {
        WriteBack(page);
        writebacks_.fetch_add(1, std::memory_order_relaxed);
        ++cleaned;
      }
    }
  }
}

}  // namespace sqloop::minidb
