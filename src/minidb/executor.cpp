#include "minidb/executor.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <mutex>
#include <set>
#include <shared_mutex>

#include "common/error.h"
#include "common/stopwatch.h"
#include "minidb/dump.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "telemetry/hooks.h"

namespace sqloop::minidb {
namespace {

// ---------------------------------------------------------------------------
// Lock management: all tables a statement touches are locked up front in
// name order (shared for reads, exclusive for writes). Sorted acquisition
// makes deadlock impossible; std::map keeps the order for us.
// ---------------------------------------------------------------------------

class LockSet {
 public:
  explicit LockSet(telemetry::Recorder* recorder = nullptr)
      : recorder_(recorder) {}
  LockSet(const LockSet&) = delete;
  LockSet& operator=(const LockSet&) = delete;

  void Request(std::shared_ptr<Table> table, bool write) {
    if (!table) return;
    const std::string name = table->name();
    auto [it, inserted] =
        entries_.try_emplace(name, Entry{std::move(table), write});
    if (!inserted) it->second.write |= write;
  }

  void AcquireAll() {
#if SQLOOP_TELEMETRY_ENABLED
    const Stopwatch watch;
#endif
    for (auto& [name, entry] : entries_) {
      if (entry.write) {
        entry.table->lock().lock();
      } else {
        entry.table->lock().lock_shared();
      }
      entry.locked = true;
    }
    SQLOOP_TIME_SECONDS(recorder_, "minidb.lock_wait_seconds",
                        watch.ElapsedSeconds());
    // Quarantine fence, checked once every lock is held: a table whose
    // scrub found corruption must never feed another statement a corrupt
    // row. The destructor releases whatever was acquired above.
    for (const auto& [name, entry] : entries_) {
      if (entry.table->quarantined()) {
        throw IntegrityError(
            "table '" + name +
            "' is quarantined after a failed integrity check; restore it "
            "from a valid dump or drop it");
      }
    }
  }

  ~LockSet() {
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
      if (!it->second.locked) continue;
      if (it->second.write) {
        it->second.table->lock().unlock();
      } else {
        it->second.table->lock().unlock_shared();
      }
    }
  }

 private:
  struct Entry {
    std::shared_ptr<Table> table;
    bool write = false;
    bool locked = false;
  };
  telemetry::Recorder* recorder_ = nullptr;
  std::map<std::string, Entry> entries_;
};

/// Walks statements collecting every base table referenced (views are
/// expanded to their underlying tables; CTE names are excluded).
class TableCollector {
 public:
  explicit TableCollector(const Database& db) : db_(db) {}

  void AddName(const std::string& raw_name,
               const std::set<std::string>& ctes) {
    const std::string name = FoldIdentifier(raw_name);
    if (ctes.contains(name)) return;
    if (const auto view = db_.FindView(name)) {
      if (visited_views_.insert(name).second) {
        FromSelect(*view, ctes);
      }
      return;
    }
    reads_.insert(name);
  }

  void FromTableRef(const sql::TableRef& ref,
                    const std::set<std::string>& ctes) {
    switch (ref.kind) {
      case sql::TableRefKind::kBase:
        AddName(ref.table_name, ctes);
        return;
      case sql::TableRefKind::kJoin:
        FromTableRef(*ref.left, ctes);
        FromTableRef(*ref.right, ctes);
        return;
      case sql::TableRefKind::kSubquery:
        FromSelect(*ref.subquery, ctes);
        return;
    }
  }

  void FromSelect(const sql::SelectStmt& stmt,
                  const std::set<std::string>& ctes) {
    for (const auto& core : stmt.cores) {
      if (core.from) FromTableRef(*core.from, ctes);
    }
  }

  /// Emits the collected names into a lock plan. `written` names (already
  /// folded) get exclusive locks.
  void Collect(LockPlan& plan, const std::set<std::string>& written) const {
    std::set<std::string> all = reads_;
    for (const auto& name : written) all.insert(FoldIdentifier(name));
    for (const auto& name : all) {
      plan.entries.emplace_back(name, written.contains(name) ||
                                          written.contains(
                                              FoldIdentifier(name)));
    }
  }

 private:
  const Database& db_;
  std::set<std::string> reads_;
  std::set<std::string> visited_views_;
};

/// Turns a lock plan back into lock requests against the live catalog.
/// Names are re-resolved here, so plans survive drop/recreate cycles.
void ApplyLockPlan(LockSet& locks, const Database& db, const LockPlan& plan) {
  for (const auto& [name, write] : plan.entries) {
    locks.Request(db.FindTable(name), write);
  }
}

// ---------------------------------------------------------------------------
// Small helpers
// ---------------------------------------------------------------------------

ResultSet RelationToResult(Relation&& rel) {
  ResultSet out;
  out.columns.reserve(rel.columns.size());
  for (const auto& binding : rel.columns) out.columns.push_back(binding.name);
  out.rows = std::move(rel.rows);
  return out;
}

Relation ResultToRelation(ResultSet&& result, const std::string& qualifier) {
  Relation rel;
  const std::string folded = FoldIdentifier(qualifier);
  rel.columns.reserve(result.columns.size());
  for (const auto& name : result.columns) {
    rel.columns.push_back({folded, FoldIdentifier(name)});
  }
  rel.rows = std::move(result.rows);
  return rel;
}

/// Renames a relation's columns from an explicit CTE column list.
void RenameColumns(Relation& rel, const std::vector<std::string>& names) {
  if (names.empty()) return;
  if (names.size() != rel.columns.size()) {
    throw AnalysisError("CTE declares " + std::to_string(names.size()) +
                        " columns but its body produces " +
                        std::to_string(rel.columns.size()));
  }
  for (size_t i = 0; i < names.size(); ++i) {
    rel.columns[i].name = FoldIdentifier(names[i]);
  }
}

/// Re-qualifies a relation's columns under `alias` (how a CTE becomes
/// visible in a FROM clause). With `borrow` the result holds row views
/// into `rel` (valid while the CTE binding lives, i.e. for the statement);
/// otherwise it deep-copies, as the reference pipeline always did.
Relation BindAs(const Relation& rel, const std::string& alias, bool borrow) {
  Relation out;
  const std::string folded = FoldIdentifier(alias);
  out.columns.reserve(rel.columns.size());
  for (const auto& binding : rel.columns) {
    out.columns.push_back({folded, binding.name});
  }
  if (borrow) {
    out.borrowed = true;
    out.views.reserve(rel.row_count());
    for (size_t i = 0; i < rel.row_count(); ++i) {
      out.views.push_back(&rel.row(i));
    }
  } else {
    out.rows = rel.rows;
  }
  return out;
}

// --- speculative reserve guards ---------------------------------------
// Size hints derived from input cardinalities are advisory — a cross-join
// estimate multiplies row counts and can overflow size_t or demand an
// absurd up-front allocation. Saturate the arithmetic and cap the reserve;
// growth past the cap is amortized push_back.

constexpr size_t kMaxSpeculativeReserve = size_t{1} << 16;

size_t SaturatingMul(size_t a, size_t b) {
  if (b != 0 && a > std::numeric_limits<size_t>::max() / b) {
    return std::numeric_limits<size_t>::max();
  }
  return a * b;
}

template <typename T>
void GuardedReserve(std::vector<T>& v, size_t hint) {
  v.reserve(std::min(hint, kMaxSpeculativeReserve));
}

std::string OutputName(const sql::SelectItem& item, size_t index) {
  if (!item.alias.empty()) return FoldIdentifier(item.alias);
  if (item.expr->kind == sql::ExprKind::kColumnRef) {
    return FoldIdentifier(item.expr->column);
  }
  return "col" + std::to_string(index + 1);
}

// Hashing / comparison for grouping keys and DISTINCT.
struct KeyHash {
  size_t operator()(const Row& key) const noexcept {
    size_t h = 0x9E3779B97F4A7C15ULL;
    for (const Value& v : key) h = h * 31 + v.Hash();
    return h;
  }
};
struct KeyEq {
  bool operator()(const Row& a, const Row& b) const noexcept {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!Value::KeyEquals(a[i], b[i])) return false;
    }
    return true;
  }
};
struct KeyLess {
  bool operator()(const Row& a, const Row& b) const noexcept {
    const size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i) {
      const int c = Value::Compare(a[i], b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  }
};

/// Splits a predicate into its top-level AND conjuncts.
void SplitConjuncts(const sql::Expr& expr, std::vector<const sql::Expr*>& out) {
  if (expr.kind == sql::ExprKind::kBinary &&
      expr.binary_op == sql::BinaryOp::kAnd) {
    SplitConjuncts(*expr.left, out);
    SplitConjuncts(*expr.right, out);
    return;
  }
  out.push_back(&expr);
}

/// SQL join-key equality: NULL never matches anything.
bool JoinKeyEquals(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return false;
  return Value::Compare(a, b) == 0;
}

/// Classifies ON-clause conjuncts into (left index, right index) equi-join
/// pairs vs residual predicates that must run on the combined row.
void ClassifyJoinCondition(const sql::Expr* on,
                           const std::vector<ColumnBinding>& left,
                           const std::vector<ColumnBinding>& right,
                           std::vector<std::pair<int, int>>& equi,
                           std::vector<const sql::Expr*>& residual) {
  if (on == nullptr) return;
  std::vector<const sql::Expr*> conjuncts;
  SplitConjuncts(*on, conjuncts);
  for (const sql::Expr* conjunct : conjuncts) {
    if (conjunct->kind == sql::ExprKind::kBinary &&
        conjunct->binary_op == sql::BinaryOp::kEq &&
        conjunct->left->kind == sql::ExprKind::kColumnRef &&
        conjunct->right->kind == sql::ExprKind::kColumnRef) {
      const sql::Expr& a = *conjunct->left;
      const sql::Expr& b = *conjunct->right;
      const int al = TryResolveColumn(left, a.qualifier, a.column);
      const int br = TryResolveColumn(right, b.qualifier, b.column);
      if (al >= 0 && br >= 0) {
        equi.push_back({al, br});
        continue;
      }
      const int bl = TryResolveColumn(left, b.qualifier, b.column);
      const int ar = TryResolveColumn(right, a.qualifier, a.column);
      if (bl >= 0 && ar >= 0) {
        equi.push_back({bl, ar});
        continue;
      }
    }
    residual.push_back(conjunct);
  }
}

/// Picks the first conjunct usable as an equality index probe against
/// `table`: shape `col = <literal>` (either side) with a non-NULL literal —
/// NULL never matches under SQL `=` — and an index on the column.
/// `allow_parameters` additionally admits `col = ?` at bind time; such a
/// probe is re-validated at execution, when the bound literal is known.
/// Returns the conjunct ordinal (or -1) and the folded column name.
int ChooseProbe(const std::vector<const sql::Expr*>& conjuncts,
                const Table& table, const std::string& alias,
                bool allow_parameters, std::string* column_out) {
  const std::string folded_alias = FoldIdentifier(alias);
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    const sql::Expr* conjunct = conjuncts[i];
    if (conjunct->kind != sql::ExprKind::kBinary ||
        conjunct->binary_op != sql::BinaryOp::kEq) {
      continue;
    }
    const sql::Expr* column = conjunct->left.get();
    const sql::Expr* literal = conjunct->right.get();
    if (column->kind != sql::ExprKind::kColumnRef) std::swap(column, literal);
    if (column->kind != sql::ExprKind::kColumnRef) continue;
    const bool literal_ok = literal->kind == sql::ExprKind::kLiteral &&
                            !literal->literal.is_null();
    const bool parameter_ok =
        allow_parameters && literal->kind == sql::ExprKind::kParameter;
    if (!literal_ok && !parameter_ok) continue;
    if (!column->qualifier.empty() &&
        FoldIdentifier(column->qualifier) != folded_alias) {
      continue;
    }
    const std::string col = FoldIdentifier(column->column);
    if (table.schema().FindColumn(col) < 0 || !table.HasIndexOn(col)) {
      continue;
    }
    *column_out = col;
    return static_cast<int>(i);
  }
  return -1;
}

/// Resolves the probe for a scan. A cached access path supplies the
/// conjunct ordinal chosen at bind time; it is re-validated against the
/// live conjunct list and catalog (a stale ordinal — dropped index, or a
/// `col = ?` whose bound value turned out NULL — degrades to a fresh
/// analysis, never a wrong result).
int ResolveProbe(const CoreAccessPath* path,
                 const std::vector<const sql::Expr*>& conjuncts,
                 const Table& table, const std::string& alias,
                 std::string* column_out) {
  if (path != nullptr && path->single_base) {
    if (path->probe_conjunct < 0) return -1;  // bind time chose a full scan
    const auto ordinal = static_cast<size_t>(path->probe_conjunct);
    if (ordinal < conjuncts.size()) {
      const std::vector<const sql::Expr*> one = {conjuncts[ordinal]};
      std::string column;
      if (ChooseProbe(one, table, alias, /*allow_parameters=*/false,
                      &column) == 0 &&
          column == path->probe_column) {
        *column_out = column;
        return path->probe_conjunct;
      }
    }
  }
  return ChooseProbe(conjuncts, table, alias, /*allow_parameters=*/false,
                     column_out);
}

/// The key value of a validated probe conjunct (its literal side).
const Value& ProbeKey(const sql::Expr& conjunct) {
  return conjunct.left->kind == sql::ExprKind::kLiteral
             ? conjunct.left->literal
             : conjunct.right->literal;
}

/// Whether every column in `expr` resolves against `columns` without
/// ambiguity. Never throws: an ambiguous reference just makes the conjunct
/// ineligible for pushdown — it stays in the residual WHERE, where per-row
/// evaluation reports the error exactly as the reference path would.
bool ResolvesUniquely(const sql::Expr& expr,
                      const std::vector<ColumnBinding>& columns) {
  try {
    return AllColumnsResolve(expr, columns);
  } catch (const AnalysisError&) {
    return false;
  }
}

bool ResidualHolds(const std::vector<const sql::Expr*>& residual,
                   const EvalContext& ctx) {
  for (const sql::Expr* predicate : residual) {
    if (!Truthy(Evaluate(*predicate, ctx))) return false;
  }
  return true;
}

// --- ORDER BY resolution ----------------------------------------------
//
// SQL resolves ORDER BY names against the SELECT output first and the
// FROM input second ("SELECT id AS node ... ORDER BY id" sorts by the
// input column). We rewrite each column reference in the order keys into
// a positional reference against a synthetic combined binding list
// [__out.c0.., __in.c0..] so one Evaluate() call per row suffices.
// Aggregate sub-expressions are left untouched so they keep matching the
// collected aggregate list structurally.

sql::ExprPtr RewriteOrderExpr(const sql::Expr& expr,
                              const std::vector<ColumnBinding>& output,
                              const std::vector<ColumnBinding>& input) {
  if (expr.kind == sql::ExprKind::kAggregate) return expr.Clone();
  if (expr.kind == sql::ExprKind::kColumnRef) {
    int index = expr.qualifier.empty()
                    ? TryResolveColumn(output, "", expr.column)
                    : -1;
    if (index >= 0) {
      return sql::MakeColumnRef("__out", "c" + std::to_string(index));
    }
    index = TryResolveColumn(input, expr.qualifier, expr.column);
    if (index >= 0) {
      return sql::MakeColumnRef("__in", "c" + std::to_string(index));
    }
    throw AnalysisError("unknown ORDER BY column '" +
                        (expr.qualifier.empty()
                             ? expr.column
                             : expr.qualifier + "." + expr.column) +
                        "'");
  }
  auto out = expr.Clone();
  // Rewrite children in place (Clone gave us a deep copy to mutate).
  const auto rewrite_child = [&](sql::ExprPtr& child) {
    if (child) child = RewriteOrderExpr(*child, output, input);
  };
  rewrite_child(out->left);
  rewrite_child(out->right);
  for (auto& arg : out->args) arg = RewriteOrderExpr(*arg, output, input);
  rewrite_child(out->case_operand);
  for (auto& when : out->whens) {
    when.condition = RewriteOrderExpr(*when.condition, output, input);
    when.result = RewriteOrderExpr(*when.result, output, input);
  }
  rewrite_child(out->else_expr);
  return out;
}

std::vector<ColumnBinding> CombinedOrderBindings(size_t output_width,
                                                 size_t input_width) {
  std::vector<ColumnBinding> combined;
  combined.reserve(output_width + input_width);
  for (size_t i = 0; i < output_width; ++i) {
    combined.push_back({"__out", "c" + std::to_string(i)});
  }
  for (size_t i = 0; i < input_width; ++i) {
    combined.push_back({"__in", "c" + std::to_string(i)});
  }
  return combined;
}

Row ConcatRows(const Row& left, const Row& right) {
  Row out;
  out.reserve(left.size() + right.size());
  out.insert(out.end(), left.begin(), left.end());
  out.insert(out.end(), right.begin(), right.end());
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// SELECT pipeline
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// Statement governor (resource governance: see DESIGN.md). The slow paths
// behind GovTick/GovCharge — reached once per `cancel_check_rows` rows or
// per kChargeFlushBytes of transient allocation.
// ---------------------------------------------------------------------------

void Executor::GovSync() {
  gov_countdown_ = check_rows_;
  if (cancel_ != nullptr && cancel_->requested()) {
    SQLOOP_COUNT(recorder_, "governance.mid_statement_cancels", 1);
    cancel_->ThrowNow();
  }
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
    SQLOOP_COUNT(recorder_, "governance.mid_statement_cancels", 1);
    throw TimeoutError("statement deadline exceeded mid-statement");
  }
}

void Executor::GovFlush() {
  const int64_t bytes = pending_bytes_;
  pending_bytes_ = 0;
  if (memory_ == nullptr || bytes <= 0) return;
  // Throws QuotaExceededError on breach; Charge already unwound its own
  // partial reservation, and statement_bytes_ keeps only what stuck.
  memory_->Charge(bytes);
  statement_bytes_ += bytes;
}

void Executor::GovBeginStatement() noexcept {
  gov_countdown_ = check_rows_;
  pending_bytes_ = 0;
  statement_bytes_ = 0;
}

void Executor::GovEndStatement() noexcept {
  pending_bytes_ = 0;
  if (memory_ != nullptr && statement_bytes_ > 0) {
    memory_->Release(statement_bytes_);
  }
  statement_bytes_ = 0;
}

Relation Executor::ScanTable(const Table& table, const std::string& alias) {
  Relation rel;
  const std::string folded = FoldIdentifier(alias);
  rel.columns.reserve(table.schema().column_count());
  for (const auto& column : table.schema().columns()) {
    rel.columns.push_back({folded, column.name});
  }
  ++counters_.full_scans;
  if (db_.fused_enabled() && !table.spill_enabled()) {
    // Zero-copy scan: row views into Table storage, valid under the
    // statement's table lock (see Relation's lifetime rules). Not taken
    // for spill-enabled tables — a whole-table view list would pin every
    // page at once, defeating the pool budget.
    rel.borrowed = true;
    rel.views.reserve(table.live_row_count());
    for (size_t row_id = 0; row_id < table.slot_count(); ++row_id) {
      if (!table.IsLive(row_id)) continue;
      GovTick();
      rel.views.push_back(&table.At(row_id));
    }
    GovCharge(static_cast<int64_t>(rel.views.size() * sizeof(const Row*)));
    counters_.rows_borrowed += rel.views.size();
  } else {
    // Materializing scan: the reference path, and the spill-safe path for
    // eviction-eligible tables — owned copies let the window release each
    // page's pin as the cursor passes it.
    PinScope::Window window;
    rel.rows.reserve(table.live_row_count());
    for (size_t row_id = 0; row_id < table.slot_count(); ++row_id) {
      if ((row_id & kPageRowMask) == 0) window.Reset();
      if (!table.IsLive(row_id)) continue;
      GovTick();
      rel.rows.push_back(table.At(row_id));
      GovCharge(RowFootprintBytes(rel.rows.back()));
    }
    counters_.rows_materialized += rel.rows.size();
  }
  rows_examined_ += rel.row_count();
  return rel;
}

void Executor::ScanPush(const Table& table,
                        const std::vector<ColumnBinding>& columns,
                        const std::vector<const sql::Expr*>& pushed,
                        int probe_conjunct, const std::string& probe_column,
                        const RowSink& sink) {
  std::unordered_map<const sql::Expr*, int> cache;
  counters_.pushed_predicates += pushed.size();
  // Classic AND evaluates every operand (no short-circuit), so every
  // pushed conjunct is evaluated for every visited row — same evaluation
  // count, same errors, same three-valued filtering as the reference path.
  const auto passes = [&](const Row& row) {
    bool ok = true;
    EvalContext ec{&columns, &row, nullptr, nullptr, &cache};
    for (const sql::Expr* conjunct : pushed) {
      if (!Truthy(Evaluate(*conjunct, ec))) ok = false;
    }
    return ok;
  };
  // Spill-enabled tables pin pages into the statement scope as At() walks
  // them; the window drops those pins batch-wise so a full pass stays
  // inside the pool budget. (Sinks that retain row views only exist on
  // non-spill tables, where the window releases nothing.)
  PinScope::Window window;
  if (probe_conjunct >= 0) {
    ++counters_.index_scans;
    probe_ids_.clear();
    table.IndexProbe(probe_column, ProbeKey(*pushed[probe_conjunct]),
                     probe_ids_);
    size_t visited = 0;
    for (const size_t row_id : probe_ids_) {
      if ((visited++ & kPageRowMask) == 0) window.Reset();
      ++rows_examined_;
      GovTick();
      const Row& row = table.At(row_id);
      if (passes(row)) sink(row);
    }
    return;
  }
  ++counters_.full_scans;
  for (size_t row_id = 0; row_id < table.slot_count(); ++row_id) {
    if ((row_id & kPageRowMask) == 0) window.Reset();
    if (!table.IsLive(row_id)) continue;
    ++rows_examined_;
    GovTick();
    const Row& row = table.At(row_id);
    if (passes(row)) sink(row);
  }
}

namespace {

/// True when any node of `expr` is a `?` placeholder.
bool ContainsParameter(const sql::Expr& expr) {
  bool found = false;
  sql::VisitExpr(expr, [&found](const sql::Expr& node) {
    if (node.kind == sql::ExprKind::kParameter) found = true;
  });
  return found;
}

/// Compiles each pushed conjunct into a total predicate kernel where the
/// shape allows (see minidb/batch.h). A cached access path's bind-time
/// hints skip compile attempts for conjuncts already known uncompilable
/// (hint 0); parameter-dependent conjuncts (hint 2) and known-compilable
/// ones (hint 1) recompile against the live bound AST. Returns the number
/// of scalar-fallback conjuncts.
size_t CompileScanKernels(const std::vector<const sql::Expr*>& pushed,
                          const Schema& schema, const std::string& alias,
                          const CoreAccessPath* path,
                          std::vector<PredicateKernel>& kernels,
                          std::vector<uint8_t>& compiled) {
  kernels.assign(pushed.size(), {});
  compiled.assign(pushed.size(), 0);
  const bool use_hints = path != nullptr && path->batch_analyzed &&
                         path->kernel_conjuncts.size() == pushed.size();
  size_t fallbacks = 0;
  for (size_t i = 0; i < pushed.size(); ++i) {
    if (use_hints && path->kernel_conjuncts[i] == 0) {
      ++fallbacks;
      continue;
    }
    if (CompilePredicateKernel(*pushed[i], schema, alias, &kernels[i])) {
      compiled[i] = 1;
    } else {
      ++fallbacks;
    }
  }
  return fallbacks;
}

}  // namespace

void Executor::ScanBatched(const Table& table,
                           const std::vector<ColumnBinding>& columns,
                           const std::vector<const sql::Expr*>& pushed,
                           const std::vector<PredicateKernel>& kernels,
                           const std::vector<uint8_t>& compiled,
                           int probe_conjunct,
                           const std::string& probe_column,
                           const BatchSink& sink) {
  std::unordered_map<const sql::Expr*, int> cache;
  counters_.pushed_predicates += pushed.size();
  bool any_fallback = false;
  bool rewriting_kernel = false;
  for (size_t c = 0; c < compiled.size(); ++c) {
    if (!compiled[c]) {
      any_fallback = true;
    } else if (kernels[c].kind != PredicateKernel::Kind::kAlwaysMatch) {
      rewriting_kernel = true;
    }
  }
  // The identity fill can be skipped when a selection-REWRITING kernel is
  // guaranteed to touch the selection before anything reads it: filter
  // kernels treat a full selection as identity and write it fresh, and a
  // never-match empties it. kAlwaysMatch kernels never write, and the
  // fallback intersection and kernel-less sinks read — those need the
  // real fill.
  const bool elide_select_fill = rewriting_kernel && !any_fallback;

  const auto process = [&](RowBatch& batch) {
    rows_examined_ += batch.size;
    GovTickRows(batch.size);
    ++counters_.batches_produced;
    if (elide_select_fill) {
      batch.MarkAllSelected();
    } else {
      batch.SelectAll();
    }
    if (any_fallback) {
      // Scalar-fallback conjuncts run first, row-major over every visited
      // lane (not just the surviving selection): classic AND evaluates
      // every conjunct for every visited row, so the evaluation count and
      // the first error match the row path exactly.
      lane_pass_.assign(batch.size, 1);
      for (uint32_t lane = 0; lane < batch.size; ++lane) {
        const Row& row = *batch.rows[lane];
        EvalContext ec{&columns, &row, nullptr, nullptr, &cache};
        for (size_t c = 0; c < pushed.size(); ++c) {
          if (compiled[c]) continue;
          if (!Truthy(Evaluate(*pushed[c], ec))) lane_pass_[lane] = 0;
        }
      }
      uint32_t kept = 0;
      for (uint32_t i = 0; i < batch.selected; ++i) {
        const uint32_t lane = batch.selection[i];
        batch.selection[kept] = lane;
        kept += lane_pass_[lane] ? 1u : 0u;
      }
      batch.selected = kept;
    }
    for (size_t c = 0; c < pushed.size(); ++c) {
      if (!compiled[c]) continue;
      // Kernels are total (no errors, no side effects), so an emptied
      // selection can skip the remaining ones.
      if (batch.selected == 0) break;
      ApplyPredicateKernel(kernels[c], batch);
    }
    sink(batch);
  };

  // Per-batch pin window: FillBatch pins the pages behind the batch's
  // views into the statement scope; once the sink has consumed the batch
  // the window lets those pages evict again. Sinks that retain views only
  // exist on non-spill tables, where the window releases nothing.
  PinScope::Window window;
  if (probe_conjunct >= 0) {
    ++counters_.index_scans;
    probe_ids_.clear();
    table.IndexProbe(probe_column, ProbeKey(*pushed[probe_conjunct]),
                     probe_ids_);
    for (size_t start = 0; start < probe_ids_.size();
         start += RowBatch::kCapacity) {
      const size_t lanes = std::min<size_t>(RowBatch::kCapacity,
                                            probe_ids_.size() - start);
      batch_.Reset();
      batch_.size = static_cast<uint32_t>(table.FillBatchFromIds(
          probe_ids_.data() + start, lanes, batch_.rows.data()));
      process(batch_);
      window.Reset();
    }
    return;
  }
  ++counters_.full_scans;
  size_t cursor = 0;
  for (;;) {
    batch_.Reset();
    batch_.size = static_cast<uint32_t>(
        table.FillBatch(&cursor, batch_.rows.data(), RowBatch::kCapacity));
    if (batch_.size == 0) break;
    process(batch_);
    window.Reset();
  }
}

Relation Executor::ScanFiltered(const Table& table, const std::string& alias,
                                const std::vector<const sql::Expr*>& pushed) {
  Relation rel;
  const std::string folded = FoldIdentifier(alias);
  rel.columns.reserve(table.schema().column_count());
  for (const auto& column : table.schema().columns()) {
    rel.columns.push_back({folded, column.name});
  }
  std::string probe_column;
  const int probe = ChooseProbe(pushed, table, alias,
                                /*allow_parameters=*/false, &probe_column);
  // Spill-enabled tables get owned copies of the surviving rows instead of
  // borrowed views: the scan windows then release each page as it passes,
  // so the pool budget holds. Same rows in the same order either way.
  rel.borrowed = !table.spill_enabled();
  if (db_.vectorized_enabled() && db_.fused_enabled()) {
    // Join-input scans ride the batch plane too: kernels filter whole
    // batches, the surviving lanes land in the borrowed view list in scan
    // order (identical to the row-at-a-time collect).
    std::vector<PredicateKernel> kernels;
    std::vector<uint8_t> compiled;
    counters_.scalar_fallbacks += CompileScanKernels(
        pushed, table.schema(), folded, /*path=*/nullptr, kernels, compiled);
    const auto collect = [&rel, this](RowBatch& batch) {
      for (uint32_t i = 0; i < batch.selected; ++i) {
        if (rel.borrowed) {
          rel.views.push_back(batch.rows[batch.selection[i]]);
        } else {
          rel.rows.push_back(*batch.rows[batch.selection[i]]);
          GovCharge(RowFootprintBytes(rel.rows.back()));
        }
      }
    };
    ScanBatched(table, rel.columns, pushed, kernels, compiled, probe,
                probe_column, collect);
  } else {
    const auto collect = [&rel, this](const Row& row) {
      if (rel.borrowed) {
        rel.views.push_back(&row);
      } else {
        rel.rows.push_back(row);
        GovCharge(RowFootprintBytes(rel.rows.back()));
      }
    };
    ScanPush(table, rel.columns, pushed, probe, probe_column, collect);
  }
  if (rel.borrowed) {
    counters_.rows_borrowed += rel.views.size();
  } else {
    counters_.rows_materialized += rel.rows.size();
  }
  return rel;
}

Relation Executor::EvalTableRef(const sql::TableRef& ref, ExecContext& ctx) {
  switch (ref.kind) {
    case sql::TableRefKind::kBase: {
      const std::string name = FoldIdentifier(ref.table_name);
      const auto cte = ctx.cte_bindings.find(name);
      if (cte != ctx.cte_bindings.end()) {
        Relation bound = BindAs(*cte->second, ref.alias, db_.fused_enabled());
        if (bound.borrowed) {
          counters_.rows_borrowed += bound.views.size();
        } else {
          counters_.rows_materialized += bound.rows.size();
        }
        return bound;
      }
      if (const auto view = db_.FindView(name)) {
        ExecContext view_ctx;  // views cannot see the caller's CTEs
        ResultSet result = EvalSelect(*view, view_ctx);
        return ResultToRelation(std::move(result), ref.alias);
      }
      const auto table = db_.FindTable(name);
      if (!table) {
        throw ExecutionError("relation '" + ref.table_name +
                             "' does not exist");
      }
      return ScanTable(*table, ref.alias);
    }
    case sql::TableRefKind::kSubquery: {
      ResultSet result = EvalSelect(*ref.subquery, ctx);
      return ResultToRelation(std::move(result), ref.alias);
    }
    case sql::TableRefKind::kJoin:
      return EvalJoin(ref, ctx);
  }
  throw UsageError("unknown table reference kind");
}

Relation Executor::EvalJoin(const sql::TableRef& join, ExecContext& ctx) {
  JoinState state = PrepareJoin(join, ctx, /*pending=*/nullptr);
  Relation out;
  out.columns = state.columns;
  if (join.join_kind == sql::JoinKind::kCross) {
    const size_t right_rows = state.right_materialized
                                  ? state.right.row_count()
                                  : state.right_table->live_row_count();
    GuardedReserve(out.rows,
                   SaturatingMul(state.left.row_count(), right_rows));
  }
  const auto collect = [this, &out](Row&& row) {
    GovCharge(RowFootprintBytes(row));
    out.rows.push_back(std::move(row));
  };
  RunJoin(state, collect);
  counters_.rows_materialized += out.rows.size();
  return out;
}

Relation Executor::EvalJoinInput(const sql::TableRef& ref, ExecContext& ctx,
                                 std::vector<const sql::Expr*>* pending) {
  if (pending != nullptr && ref.kind == sql::TableRefKind::kBase) {
    const std::string name = FoldIdentifier(ref.table_name);
    if (!ctx.cte_bindings.contains(name) && !db_.HasView(name)) {
      if (const auto table = db_.FindTable(name)) {
        // Claim the pending WHERE conjuncts that resolve entirely against
        // this input and evaluate them during its scan.
        const std::string alias = FoldIdentifier(ref.alias);
        std::vector<ColumnBinding> bindings;
        bindings.reserve(table->schema().column_count());
        for (const auto& column : table->schema().columns()) {
          bindings.push_back({alias, column.name});
        }
        std::vector<const sql::Expr*> pushed;
        for (auto it = pending->begin(); it != pending->end();) {
          if (ResolvesUniquely(**it, bindings)) {
            pushed.push_back(*it);
            it = pending->erase(it);
          } else {
            ++it;
          }
        }
        return ScanFiltered(*table, ref.alias, pushed);
      }
      // Missing relation: EvalTableRef below owns the error message.
    }
  }
  if (pending != nullptr && ref.kind == sql::TableRefKind::kJoin) {
    JoinState nested = PrepareJoin(ref, ctx, pending);
    Relation out;
    out.columns = nested.columns;
    const auto collect = [this, &out](Row&& row) {
      GovCharge(RowFootprintBytes(row));
      out.rows.push_back(std::move(row));
    };
    RunJoin(nested, collect);
    counters_.rows_materialized += out.rows.size();
    return out;
  }
  return EvalTableRef(ref, ctx);
}

Executor::JoinState Executor::PrepareJoin(
    const sql::TableRef& join, ExecContext& ctx,
    std::vector<const sql::Expr*>* pending) {
  JoinState state;
  state.join = &join;
  const bool left_join = join.join_kind == sql::JoinKind::kLeft;
  // A left-only WHERE conjunct commutes with a LEFT JOIN (a failing left
  // row only ever produces failing outputs), so the left input always
  // sees `pending`.
  state.left = EvalJoinInput(*join.left, ctx, pending);

  const sql::TableRef& right_ref = *join.right;
  // When the right side is a plain base table (not a CTE or view) we keep
  // the Table handle so the MySQL-style profile can do index nested loops.
  if (right_ref.kind == sql::TableRefKind::kBase) {
    const std::string name = FoldIdentifier(right_ref.table_name);
    if (!ctx.cte_bindings.contains(name) && !db_.HasView(name)) {
      state.right_table = db_.FindTable(name);
      if (!state.right_table) {
        throw ExecutionError("relation '" + right_ref.table_name +
                             "' does not exist");
      }
    }
  }

  if (state.right_table) {
    const std::string alias = FoldIdentifier(right_ref.alias);
    for (const auto& column : state.right_table->schema().columns()) {
      state.right_columns.push_back({alias, column.name});
    }
    // Right-side pushdown: for INNER/CROSS joins a right-only WHERE
    // conjunct filters before the join. (Under a LEFT JOIN it must run
    // after NULL-padding, so it stays in the residual WHERE.)
    if (pending != nullptr && !left_join) {
      std::vector<const sql::Expr*> pushed;
      for (auto it = pending->begin(); it != pending->end();) {
        if (ResolvesUniquely(**it, state.right_columns)) {
          pushed.push_back(*it);
          it = pending->erase(it);
        } else {
          ++it;
        }
      }
      if (!pushed.empty()) {
        state.right =
            ScanFiltered(*state.right_table, right_ref.alias, pushed);
        state.right_materialized = true;  // rules out index nested loop
      }
    }
  } else {
    state.right =
        EvalJoinInput(right_ref, ctx, left_join ? nullptr : pending);
    state.right_columns = state.right.columns;
    state.right_materialized = true;
  }

  state.columns.reserve(state.left.columns.size() +
                        state.right_columns.size());
  state.columns.insert(state.columns.end(), state.left.columns.begin(),
                       state.left.columns.end());
  state.columns.insert(state.columns.end(), state.right_columns.begin(),
                       state.right_columns.end());

  if (join.join_kind != sql::JoinKind::kCross) {
    ClassifyJoinCondition(join.on_condition.get(), state.left.columns,
                          state.right_columns, state.equi, state.residual);
  }
  return state;
}

void Executor::RunJoin(JoinState& state, const OwnedRowSink& sink) {
  const sql::TableRef& join = *state.join;
  const Relation& left = state.left;

  const auto materialize_right = [&] {
    if (!state.right_materialized) {
      state.right = ScanTable(*state.right_table, join.right->alias);
      state.right_materialized = true;
    }
  };

  if (join.join_kind == sql::JoinKind::kCross) {
    materialize_right();
    for (size_t li = 0; li < left.row_count(); ++li) {
      const Row& l = left.row(li);
      for (size_t ri = 0; ri < state.right.row_count(); ++ri) {
        GovTick();
        sink(ConcatRows(l, state.right.row(ri)));
      }
    }
    return;
  }

  std::unordered_map<const sql::Expr*, int> cache;
  const size_t right_width = state.right_columns.size();
  const bool left_join = join.join_kind == sql::JoinKind::kLeft;
  const auto& equi = state.equi;

  const auto emit_unmatched = [&](const Row& l) {
    if (!left_join) return;
    Row padded = l;
    padded.resize(l.size() + right_width);  // default-constructed = NULL
    sink(std::move(padded));
  };
  const auto match_residual = [&](const Row& combined) {
    if (state.residual.empty()) return true;
    EvalContext ec{&state.columns, &combined, nullptr, nullptr, &cache};
    return ResidualHolds(state.residual, ec);
  };

  // --- strategy selection per engine profile --------------------------
  const JoinAlgorithm algorithm = db_.profile().join_algorithm;

  // Index nested loop: available when the right side is a base table with
  // an index on one of the equi-join columns (MySQL 5.7's only fast path)
  // and predicate pushdown has not already filtered it into a relation.
  int inl_pair = -1;
  if (state.right_table && !state.right_materialized &&
      (algorithm == JoinAlgorithm::kNestedLoop ||
       algorithm == JoinAlgorithm::kNestedLoopOrHash)) {
    for (size_t i = 0; i < equi.size(); ++i) {
      const std::string& column =
          state.right_table->schema().columns()[equi[i].second].name;
      if (state.right_table->HasIndexOn(column)) {
        inl_pair = static_cast<int>(i);
        break;
      }
    }
  }

  if (inl_pair >= 0) {
    const auto& pair = equi[static_cast<size_t>(inl_pair)];
    const Table& right_table = *state.right_table;
    const std::string& column =
        right_table.schema().columns()[pair.second].name;
    ++counters_.index_scans;
    // Probed right-side pages release per left row (ConcatRows copied
    // everything the sink needs).
    PinScope::Window window;
    for (size_t li = 0; li < left.row_count(); ++li) {
      window.Reset();
      const Row& l = left.row(li);
      const Value& key = l[pair.first];
      bool matched = false;
      if (!key.is_null()) {
        probe_ids_.clear();
        right_table.IndexProbe(column, key, probe_ids_);
        for (const size_t row_id : probe_ids_) {
          ++rows_examined_;
          GovTick();
          const Row& r = right_table.At(row_id);
          bool keys_ok = true;
          for (size_t i = 0; i < equi.size(); ++i) {
            if (static_cast<int>(i) == inl_pair) continue;
            if (!JoinKeyEquals(l[equi[i].first], r[equi[i].second])) {
              keys_ok = false;
              break;
            }
          }
          if (!keys_ok) continue;
          Row combined = ConcatRows(l, r);
          if (!match_residual(combined)) continue;
          sink(std::move(combined));
          matched = true;
        }
      }
      if (!matched) emit_unmatched(l);
    }
    return;
  }

  const bool use_hash =
      !equi.empty() && (algorithm == JoinAlgorithm::kHash ||
                        algorithm == JoinAlgorithm::kNestedLoopOrHash);

  materialize_right();
  const Relation& right = state.right;

  if (use_hash) {
    // Build on the right side, probe from the left. With the batch plane
    // enabled both phases run block-at-a-time: governance ticks once per
    // RowBatch::kCapacity rows instead of per row, and the probe reuses one
    // key buffer across a block instead of allocating per row. Match
    // emission order is identical to the per-row loops.
    const bool batched = db_.vectorized_enabled() && db_.fused_enabled();
    std::unordered_map<Row, std::vector<size_t>, KeyHash, KeyEq> built;
    built.reserve(right.row_count());
    const auto build_one = [&](size_t i) {
      const Row& r = right.row(i);
      Row key;
      key.reserve(equi.size());
      bool has_null = false;
      for (const auto& pair : equi) {
        const Value& v = r[pair.second];
        if (v.is_null()) {
          has_null = true;
          break;
        }
        key.push_back(v);
      }
      if (!has_null) {
        GovCharge(RowFootprintBytes(key) + static_cast<int64_t>(sizeof(size_t)));
        built[std::move(key)].push_back(i);
      }
    };
    Row probe_key;
    probe_key.reserve(equi.size());
    const auto probe_one = [&](size_t li) {
      const Row& l = left.row(li);
      probe_key.clear();
      bool has_null = false;
      for (const auto& pair : equi) {
        const Value& v = l[pair.first];
        if (v.is_null()) {
          has_null = true;
          break;
        }
        probe_key.push_back(v);
      }
      bool matched = false;
      if (!has_null) {
        const auto it = built.find(probe_key);
        if (it != built.end()) {
          for (const size_t i : it->second) {
            Row combined = ConcatRows(l, right.row(i));
            if (!match_residual(combined)) continue;
            sink(std::move(combined));
            matched = true;
          }
        }
      }
      if (!matched) emit_unmatched(l);
    };
    if (batched) {
      const size_t right_count = right.row_count();
      for (size_t start = 0; start < right_count;
           start += RowBatch::kCapacity) {
        const size_t end = std::min(right_count, start + RowBatch::kCapacity);
        GovTickRows(static_cast<int64_t>(end - start));
        for (size_t i = start; i < end; ++i) build_one(i);
      }
      const size_t left_count = left.row_count();
      for (size_t start = 0; start < left_count;
           start += RowBatch::kCapacity) {
        const size_t end = std::min(left_count, start + RowBatch::kCapacity);
        GovTickRows(static_cast<int64_t>(end - start));
        for (size_t li = start; li < end; ++li) probe_one(li);
      }
    } else {
      for (size_t i = 0; i < right.row_count(); ++i) {
        GovTick();
        build_one(i);
      }
      for (size_t li = 0; li < left.row_count(); ++li) {
        GovTick();
        probe_one(li);
      }
    }
    return;
  }

  // Plain nested loop (MySQL 5.7 with no usable index).
  for (size_t li = 0; li < left.row_count(); ++li) {
    const Row& l = left.row(li);
    bool matched = false;
    for (size_t ri = 0; ri < right.row_count(); ++ri) {
      GovTick();
      const Row& r = right.row(ri);
      bool keys_ok = true;
      for (const auto& pair : equi) {
        if (!JoinKeyEquals(l[pair.first], r[pair.second])) {
          keys_ok = false;
          break;
        }
      }
      if (!keys_ok) continue;
      Row combined = ConcatRows(l, r);
      if (!match_residual(combined)) continue;
      sink(std::move(combined));
      matched = true;
    }
    if (!matched) emit_unmatched(l);
  }
}

bool Executor::TryCollectTreeBindings(const sql::TableRef& ref,
                                      ExecContext& ctx,
                                      std::vector<ColumnBinding>& out) const {
  switch (ref.kind) {
    case sql::TableRefKind::kBase: {
      const std::string name = FoldIdentifier(ref.table_name);
      const std::string alias = FoldIdentifier(ref.alias);
      const auto cte = ctx.cte_bindings.find(name);
      if (cte != ctx.cte_bindings.end()) {
        for (const auto& binding : cte->second->columns) {
          out.push_back({alias, binding.name});
        }
        return true;
      }
      if (db_.HasView(name)) return false;  // view output needs evaluation
      const auto table = db_.FindTable(name);
      if (!table) return false;  // let evaluation report the error
      for (const auto& column : table->schema().columns()) {
        out.push_back({alias, column.name});
      }
      return true;
    }
    case sql::TableRefKind::kJoin:
      return TryCollectTreeBindings(*ref.left, ctx, out) &&
             TryCollectTreeBindings(*ref.right, ctx, out);
    case sql::TableRefKind::kSubquery:
      return false;
  }
  return false;
}

Relation Executor::ProjectCore(const sql::SelectCore& core,
                               const std::vector<ColumnBinding>& input_columns,
                               const RowSource& input,
                               const std::vector<sql::OrderItem>* order_by,
                               std::vector<Row>* sort_keys) {
  Relation out;
  // Expand the output binding list (stars expand to input columns).
  struct ProjectionSlot {
    const sql::Expr* expr = nullptr;  // null => direct input column copy
    int input_index = -1;
  };
  std::vector<ProjectionSlot> slots;
  for (size_t i = 0; i < core.items.size(); ++i) {
    const sql::SelectItem& item = core.items[i];
    if (item.expr->kind == sql::ExprKind::kStar) {
      const std::string qualifier = FoldIdentifier(item.expr->qualifier);
      bool any = false;
      for (size_t c = 0; c < input_columns.size(); ++c) {
        if (!qualifier.empty() && input_columns[c].qualifier != qualifier) {
          continue;
        }
        slots.push_back({nullptr, static_cast<int>(c)});
        out.columns.push_back({"", input_columns[c].name});
        any = true;
      }
      if (!any && !qualifier.empty()) {
        throw AnalysisError("no table '" + item.expr->qualifier +
                            "' to expand in SELECT " + item.expr->qualifier +
                            ".*");
      }
      continue;
    }
    slots.push_back({item.expr.get(), -1});
    out.columns.push_back({"", OutputName(item, i)});
  }

  // Prepare ORDER BY machinery (output-first, input-fallback resolution).
  std::vector<sql::ExprPtr> order_exprs;
  std::vector<ColumnBinding> order_bindings;
  if (order_by != nullptr) {
    for (const auto& item : *order_by) {
      order_exprs.push_back(
          RewriteOrderExpr(*item.expr, out.columns, input_columns));
    }
    order_bindings =
        CombinedOrderBindings(out.columns.size(), input_columns.size());
  }

  std::unordered_map<const sql::Expr*, int> cache;
  std::unordered_map<const sql::Expr*, int> order_cache;
  const auto consume = [&](const Row& row) {
    GovTick();
    Row projected;
    projected.reserve(slots.size());
    EvalContext ec{&input_columns, &row, nullptr, nullptr, &cache};
    for (const ProjectionSlot& slot : slots) {
      if (slot.expr == nullptr) {
        projected.push_back(row[slot.input_index]);
      } else {
        projected.push_back(Evaluate(*slot.expr, ec));
      }
    }
    if (order_by != nullptr) {
      Row combined = ConcatRows(projected, row);
      EvalContext oc{&order_bindings, &combined, nullptr, nullptr,
                     &order_cache};
      Row key;
      key.reserve(order_exprs.size());
      for (const auto& expr : order_exprs) {
        key.push_back(Evaluate(*expr, oc));
      }
      sort_keys->push_back(std::move(key));
    }
    GovCharge(RowFootprintBytes(projected));
    out.rows.push_back(std::move(projected));
  };
  input(consume);
  return out;
}

Relation Executor::AggregateCore(const sql::SelectCore& core,
                                 const std::vector<ColumnBinding>& input_columns,
                                 const RowSource& input,
                                 const std::vector<sql::OrderItem>* order_by,
                                 std::vector<Row>* sort_keys) {
  // Aggregate sub-expressions across the SELECT list, HAVING, and ORDER BY.
  std::vector<const sql::Expr*> agg_exprs;
  for (const auto& item : core.items) CollectAggregates(*item.expr, agg_exprs);
  if (core.having) CollectAggregates(*core.having, agg_exprs);
  if (order_by != nullptr) {
    for (const auto& item : *order_by) {
      CollectAggregates(*item.expr, agg_exprs);
    }
  }

  for (const auto& item : core.items) {
    if (item.expr->kind == sql::ExprKind::kStar) {
      throw AnalysisError("'*' cannot be mixed with aggregation");
    }
  }

  struct Group {
    Row representative;
    std::vector<Accumulator> accumulators;
  };

  const auto new_group = [&](const Row& row) {
    Group group;
    group.representative = row;
    group.accumulators.reserve(agg_exprs.size());
    for (const sql::Expr* agg : agg_exprs) {
      group.accumulators.emplace_back(agg->agg_func, agg->agg_distinct);
    }
    return group;
  };

  std::unordered_map<const sql::Expr*, int> cache;
  const auto feed = [&](Group& group, const Row& row) {
    EvalContext ec{&input_columns, &row, nullptr, nullptr, &cache};
    for (size_t i = 0; i < agg_exprs.size(); ++i) {
      const sql::Expr* agg = agg_exprs[i];
      if (agg->agg_star) {
        group.accumulators[i].Add(Value(int64_t{1}));
      } else {
        group.accumulators[i].Add(Evaluate(*agg->args[0], ec));
      }
    }
  };

  // Group rows as they stream in. The engine profile picks hash vs sort
  // lookup; both are correct, they just cost differently (matching
  // postgres vs mysql). Either way `groups` keeps first-occurrence order,
  // so the accumulator feed order and the output order are identical to
  // the materializing pipeline's.
  std::vector<Group> groups;
  const bool hash_grouping =
      db_.profile().agg_algorithm == AggAlgorithm::kHash;
  std::unordered_map<Row, size_t, KeyHash, KeyEq> hash_index;
  std::map<Row, size_t, KeyLess> sort_index;
  const auto consume = [&](const Row& row) {
    GovTick();
    if (core.group_by.empty()) {
      if (groups.empty()) groups.push_back(new_group(row));
      feed(groups[0], row);
      return;
    }
    Row key;
    key.reserve(core.group_by.size());
    EvalContext ec{&input_columns, &row, nullptr, nullptr, &cache};
    for (const auto& expr : core.group_by) {
      key.push_back(Evaluate(*expr, ec));
    }
    const int64_t key_bytes = RowFootprintBytes(key);
    const size_t slot =
        hash_grouping
            ? hash_index.try_emplace(std::move(key), groups.size())
                  .first->second
            : sort_index.try_emplace(std::move(key), groups.size())
                  .first->second;
    if (slot == groups.size()) {
      // A new group holds its key, a representative row copy, and one
      // accumulator per aggregate expression.
      GovCharge(key_bytes + RowFootprintBytes(row) +
                static_cast<int64_t>(agg_exprs.size() * sizeof(Accumulator)));
      groups.push_back(new_group(row));
    }
    feed(groups[slot], row);
  };
  input(consume);
  if (core.group_by.empty() && groups.empty()) {
    // Aggregating an empty input still yields one group; its
    // representative is an all-NULL row.
    groups.push_back(new_group(Row(input_columns.size())));
  }

  // Project each group.
  Relation out;
  out.columns.reserve(core.items.size());
  for (size_t i = 0; i < core.items.size(); ++i) {
    out.columns.push_back({"", OutputName(core.items[i], i)});
  }

  std::vector<sql::ExprPtr> order_exprs;
  std::vector<ColumnBinding> order_bindings;
  if (order_by != nullptr) {
    for (const auto& item : *order_by) {
      order_exprs.push_back(
          RewriteOrderExpr(*item.expr, out.columns, input_columns));
    }
    order_bindings =
        CombinedOrderBindings(out.columns.size(), input_columns.size());
  }

  std::unordered_map<const sql::Expr*, int> project_cache;
  std::unordered_map<const sql::Expr*, int> order_cache;
  for (const Group& group : groups) {
    std::vector<Value> agg_values;
    agg_values.reserve(group.accumulators.size());
    for (const Accumulator& acc : group.accumulators) {
      agg_values.push_back(acc.Result());
    }
    EvalContext ec{&input_columns, &group.representative, &agg_exprs,
                   &agg_values, &project_cache};
    if (core.having && !Truthy(Evaluate(*core.having, ec))) continue;
    Row projected;
    projected.reserve(core.items.size());
    for (const auto& item : core.items) {
      projected.push_back(Evaluate(*item.expr, ec));
    }
    if (order_by != nullptr) {
      Row combined = ConcatRows(projected, group.representative);
      EvalContext oc{&order_bindings, &combined, &agg_exprs, &agg_values,
                     &order_cache};
      Row key;
      key.reserve(order_exprs.size());
      for (const auto& expr : order_exprs) {
        key.push_back(Evaluate(*expr, oc));
      }
      sort_keys->push_back(std::move(key));
    }
    out.rows.push_back(std::move(projected));
  }
  return out;
}

bool Executor::TryVectorizedCore(const sql::SelectCore& core, ExecContext& ctx,
                                 bool aggregate_mode,
                                 const std::vector<sql::OrderItem>* order_by,
                                 std::vector<Row>* sort_keys,
                                 const CoreAccessPath* path, Relation* out) {
  // Only the single-base-table shape runs batched; joins and subqueries
  // keep the row-at-a-time fused path.
  if (!core.from || core.from->kind != sql::TableRefKind::kBase) return false;
  const std::string name = FoldIdentifier(core.from->table_name);
  if (ctx.cte_bindings.contains(name) || db_.HasView(name)) return false;
  const auto table = db_.FindTable(name);
  if (!table) return false;  // the reference path reports the error

  const std::string alias = FoldIdentifier(core.from->alias);
  std::vector<ColumnBinding> columns;
  columns.reserve(table->schema().column_count());
  for (const auto& column : table->schema().columns()) {
    columns.push_back({alias, column.name});
  }

  std::vector<const sql::Expr*> conjuncts;
  if (core.where) SplitConjuncts(*core.where, conjuncts);

  std::vector<PredicateKernel> kernels;
  std::vector<uint8_t> compiled;
  const size_t conjunct_fallbacks = CompileScanKernels(
      conjuncts, table->schema(), alias, path, kernels, compiled);

  std::string probe_column;
  const int probe = ResolveProbe(path, conjuncts, *table, core.from->alias,
                                 &probe_column);

  // Binding ordinals equal schema ordinals here (single base table), so a
  // resolved column reference indexes the schema directly. Returns -1 when
  // the reference does not resolve plainly (absent, ambiguous, or not a
  // bare column).
  const auto match_column = [&](const sql::Expr& e) -> int {
    if (e.kind != sql::ExprKind::kColumnRef) return -1;
    try {
      return TryResolveColumn(columns, e.qualifier, e.column);
    } catch (const AnalysisError&) {
      return -1;
    }
  };

  if (aggregate_mode) {
    // GROUP BY / HAVING stay on the row path; the star-mixed-with-
    // aggregation error is also the row path's to raise.
    if (!core.group_by.empty() || core.having != nullptr) return false;
    for (const auto& item : core.items) {
      if (item.expr->kind == sql::ExprKind::kStar) return false;
    }

    std::vector<const sql::Expr*> agg_exprs;
    for (const auto& item : core.items) {
      CollectAggregates(*item.expr, agg_exprs);
    }
    if (order_by != nullptr) {
      for (const auto& item : *order_by) {
        CollectAggregates(*item.expr, agg_exprs);
      }
    }

    // Classify each aggregate argument. Plain column (or ABS(column)) args
    // over a type the bulk feeds handle become SIMD-friendly reductions;
    // everything else (DISTINCT, complex args, SUM/AVG over text — which
    // must throw per-row) feeds through scalar Add() per selected lane.
    struct AggSpec {
      enum class Mode : uint8_t { kCountStar, kColumn, kAbsColumn, kScalar };
      Mode mode = Mode::kScalar;
      int column = -1;
      ValueType type = ValueType::kNull;
    };
    std::vector<AggSpec> specs(agg_exprs.size());
    size_t scalar_aggs = 0;
    for (size_t i = 0; i < agg_exprs.size(); ++i) {
      const sql::Expr* agg = agg_exprs[i];
      AggSpec& spec = specs[i];
      if (agg->agg_star) {
        if (!agg->agg_distinct) {
          spec.mode = AggSpec::Mode::kCountStar;
          continue;
        }
        spec.mode = AggSpec::Mode::kScalar;
        ++scalar_aggs;
        continue;
      }
      const sql::Expr* arg = agg->args.empty() ? nullptr : agg->args[0].get();
      int column = -1;
      bool abs_arg = false;
      if (arg != nullptr) {
        if (arg->kind == sql::ExprKind::kColumnRef) {
          column = match_column(*arg);
        } else if (arg->kind == sql::ExprKind::kFunction &&
                   arg->function_name == "ABS" && arg->args.size() == 1 &&
                   arg->args[0]->kind == sql::ExprKind::kColumnRef) {
          column = match_column(*arg->args[0]);
          abs_arg = true;
        }
      }
      if (column >= 0 && !agg->agg_distinct) {
        const ValueType type = table->schema().columns()[column].type;
        const bool numeric =
            type == ValueType::kInt64 || type == ValueType::kDouble;
        const bool text_ok =
            !abs_arg && type == ValueType::kText &&
            (agg->agg_func == sql::AggFunc::kMin ||
             agg->agg_func == sql::AggFunc::kMax ||
             agg->agg_func == sql::AggFunc::kCount);
        if (numeric || text_ok) {
          spec.mode =
              abs_arg ? AggSpec::Mode::kAbsColumn : AggSpec::Mode::kColumn;
          spec.column = column;
          spec.type = type;
          continue;
        }
      }
      spec.mode = AggSpec::Mode::kScalar;
      ++scalar_aggs;
    }

    // Error-order guard: the row path interleaves per-row conjunct
    // evaluation with per-row aggregate feeds, so when BOTH sides can
    // throw, batch-wise grouping could surface a different first error.
    // Decline and let the row-at-a-time fused path run instead.
    if (conjunct_fallbacks > 0 && scalar_aggs > 0) return false;

    std::vector<Accumulator> accumulators;
    accumulators.reserve(agg_exprs.size());
    for (const sql::Expr* agg : agg_exprs) {
      accumulators.emplace_back(agg->agg_func, agg->agg_distinct);
    }

    Row representative;
    bool have_representative = false;
    std::unordered_map<const sql::Expr*, int> agg_cache;
    const auto consume = [&](RowBatch& batch) {
      if (batch.selected == 0) return;
      if (!have_representative) {
        representative = *batch.rows[batch.selection[0]];
        have_representative = true;
      }
      if (scalar_aggs > 0) {
        // Scalar aggregates feed lane-major (aggregates inner, in
        // collection order) so the first error matches the row path's
        // per-row feed exactly.
        for (uint32_t i = 0; i < batch.selected; ++i) {
          const Row& row = *batch.rows[batch.selection[i]];
          EvalContext ec{&columns, &row, nullptr, nullptr, &agg_cache};
          for (size_t a = 0; a < agg_exprs.size(); ++a) {
            if (specs[a].mode != AggSpec::Mode::kScalar) continue;
            if (agg_exprs[a]->agg_star) {
              accumulators[a].Add(Value(int64_t{1}));
            } else {
              accumulators[a].Add(Evaluate(*agg_exprs[a]->args[0], ec));
            }
          }
        }
      }
      for (size_t a = 0; a < agg_exprs.size(); ++a) {
        const AggSpec& spec = specs[a];
        switch (spec.mode) {
          case AggSpec::Mode::kScalar:
            break;
          case AggSpec::Mode::kCountStar:
            accumulators[a].AddCountedRows(batch.selected);
            break;
          case AggSpec::Mode::kColumn:
          case AggSpec::Mode::kAbsColumn: {
            // Gather the selected non-NULL lanes into a dense span
            // (SQL aggregates skip NULL inputs) and bulk-feed it.
            if (spec.type == ValueType::kInt64) {
              auto& dense = gather_.ints;
              dense.clear();
              for (uint32_t i = 0; i < batch.selected; ++i) {
                const Value& v =
                    (*batch.rows[batch.selection[i]])[spec.column];
                if (!v.is_null()) dense.push_back(v.int_unchecked());
              }
              if (spec.mode == AggSpec::Mode::kAbsColumn) {
                for (int64_t& x : dense) x = std::abs(x);
              }
              accumulators[a].AddInt64Span(dense.data(), dense.size());
            } else if (spec.type == ValueType::kDouble) {
              auto& dense = gather_.doubles;
              dense.clear();
              for (uint32_t i = 0; i < batch.selected; ++i) {
                const Value& v =
                    (*batch.rows[batch.selection[i]])[spec.column];
                if (!v.is_null()) dense.push_back(v.double_unchecked());
              }
              if (spec.mode == AggSpec::Mode::kAbsColumn) {
                for (double& x : dense) x = std::fabs(x);
              }
              accumulators[a].AddDoubleSpan(dense.data(), dense.size());
            } else {
              auto& dense = gather_.texts;
              dense.clear();
              for (uint32_t i = 0; i < batch.selected; ++i) {
                const Value& v =
                    (*batch.rows[batch.selection[i]])[spec.column];
                if (!v.is_null()) dense.push_back(&v.text_unchecked());
              }
              accumulators[a].AddTextSpan(dense.data(), dense.size());
            }
            break;
          }
        }
      }
    };
    ScanBatched(*table, columns, conjuncts, kernels, compiled, probe,
                probe_column, consume);
    if (!have_representative) representative = Row(columns.size());

    // Projection tail — identical to AggregateCore's single-group tail
    // (ORDER BY machinery built after the scan, as there).
    Relation result;
    result.columns.reserve(core.items.size());
    for (size_t i = 0; i < core.items.size(); ++i) {
      result.columns.push_back({"", OutputName(core.items[i], i)});
    }
    std::vector<sql::ExprPtr> order_exprs;
    std::vector<ColumnBinding> order_bindings;
    if (order_by != nullptr) {
      for (const auto& item : *order_by) {
        order_exprs.push_back(
            RewriteOrderExpr(*item.expr, result.columns, columns));
      }
      order_bindings =
          CombinedOrderBindings(result.columns.size(), columns.size());
    }
    std::vector<Value> agg_values;
    agg_values.reserve(accumulators.size());
    for (const Accumulator& acc : accumulators) {
      agg_values.push_back(acc.Result());
    }
    std::unordered_map<const sql::Expr*, int> project_cache;
    std::unordered_map<const sql::Expr*, int> order_cache;
    EvalContext ec{&columns, &representative, &agg_exprs, &agg_values,
                   &project_cache};
    Row projected;
    projected.reserve(core.items.size());
    for (const auto& item : core.items) {
      projected.push_back(Evaluate(*item.expr, ec));
    }
    if (order_by != nullptr) {
      Row combined = ConcatRows(projected, representative);
      EvalContext oc{&order_bindings, &combined, &agg_exprs, &agg_values,
                     &order_cache};
      Row key;
      key.reserve(order_exprs.size());
      for (const auto& expr : order_exprs) {
        key.push_back(Evaluate(*expr, oc));
      }
      sort_keys->push_back(std::move(key));
    }
    result.rows.push_back(std::move(projected));
    *out = std::move(result);
    ++counters_.fused_cores;  // a vectorized core IS a fused core
    ++counters_.vectorized_cores;
    counters_.scalar_fallbacks += conjunct_fallbacks + scalar_aggs;
    return true;
  }

  // Non-aggregate mode. ORDER BY needs a combined (projected + input) key
  // row per output row — leave that interleaving to the row path.
  if (order_by != nullptr) return false;

  // Projection slots exactly as in ProjectCore (star expansion and its
  // error happen before the scan on both paths).
  struct ProjectionSlot {
    const sql::Expr* expr = nullptr;  // null => direct input column copy
    int input_index = -1;
  };
  std::vector<ProjectionSlot> slots;
  Relation result;
  size_t expr_slots = 0;
  for (size_t i = 0; i < core.items.size(); ++i) {
    const sql::SelectItem& item = core.items[i];
    if (item.expr->kind == sql::ExprKind::kStar) {
      const std::string qualifier = FoldIdentifier(item.expr->qualifier);
      bool any = false;
      for (size_t c = 0; c < columns.size(); ++c) {
        if (!qualifier.empty() && columns[c].qualifier != qualifier) {
          continue;
        }
        slots.push_back({nullptr, static_cast<int>(c)});
        result.columns.push_back({"", columns[c].name});
        any = true;
      }
      if (!any && !qualifier.empty()) {
        throw AnalysisError("no table '" + item.expr->qualifier +
                            "' to expand in SELECT " + item.expr->qualifier +
                            ".*");
      }
      continue;
    }
    slots.push_back({item.expr.get(), -1});
    result.columns.push_back({"", OutputName(item, i)});
    ++expr_slots;
  }

  // Same error-order guard as aggregate mode: expression slots can throw
  // per row, so they must not follow batch-wise scalar conjuncts.
  if (conjunct_fallbacks > 0 && expr_slots > 0) return false;

  std::unordered_map<const sql::Expr*, int> project_cache;
  const auto consume = [&](RowBatch& batch) {
    for (uint32_t i = 0; i < batch.selected; ++i) {
      const Row& row = *batch.rows[batch.selection[i]];
      Row projected;
      projected.reserve(slots.size());
      EvalContext ec{&columns, &row, nullptr, nullptr, &project_cache};
      for (const ProjectionSlot& slot : slots) {
        if (slot.expr == nullptr) {
          projected.push_back(row[slot.input_index]);
        } else {
          projected.push_back(Evaluate(*slot.expr, ec));
        }
      }
      GovCharge(RowFootprintBytes(projected));
      result.rows.push_back(std::move(projected));
    }
  };
  ScanBatched(*table, columns, conjuncts, kernels, compiled, probe,
              probe_column, consume);
  *out = std::move(result);
  ++counters_.fused_cores;  // a vectorized core IS a fused core
  ++counters_.vectorized_cores;
  counters_.scalar_fallbacks += conjunct_fallbacks;
  return true;
}

bool Executor::TryFusedCore(const sql::SelectCore& core, ExecContext& ctx,
                            bool aggregate_mode,
                            const std::vector<sql::OrderItem>* order_by,
                            std::vector<Row>* sort_keys,
                            const CoreAccessPath* path, Relation* out) {
  if (!core.from) return false;

  std::vector<const sql::Expr*> conjuncts;
  if (core.where) SplitConjuncts(*core.where, conjuncts);

  if (core.from->kind == sql::TableRefKind::kBase) {
    const std::string name = FoldIdentifier(core.from->table_name);
    if (ctx.cte_bindings.contains(name) || db_.HasView(name)) return false;
    const auto table = db_.FindTable(name);
    if (!table) return false;  // the reference path reports the error

    const std::string alias = FoldIdentifier(core.from->alias);
    std::vector<ColumnBinding> columns;
    columns.reserve(table->schema().column_count());
    for (const auto& column : table->schema().columns()) {
      columns.push_back({alias, column.name});
    }

    std::string probe_column;
    const int probe = ResolveProbe(path, conjuncts, *table, core.from->alias,
                                   &probe_column);
    const auto source = [&](const RowSink& sink) {
      ScanPush(*table, columns, conjuncts, probe, probe_column, sink);
    };
    *out = aggregate_mode
               ? AggregateCore(core, columns, source, order_by, sort_keys)
               : ProjectCore(core, columns, source, order_by, sort_keys);
    ++counters_.fused_cores;
    return true;
  }

  if (core.from->kind == sql::TableRefKind::kJoin) {
    // Join pushdown needs the full output bindings up front: a conjunct
    // may only push into one input if it resolves uniquely in the FULL
    // scope (checking against a nested scope alone could mask an
    // ambiguity the reference path would report).
    std::vector<ColumnBinding> tree;
    std::vector<const sql::Expr*> pending;
    std::vector<const sql::Expr*> residual;
    if (TryCollectTreeBindings(*core.from, ctx, tree)) {
      for (const sql::Expr* conjunct : conjuncts) {
        if (ResolvesUniquely(*conjunct, tree)) {
          pending.push_back(conjunct);
        } else {
          residual.push_back(conjunct);
        }
      }
    } else {
      residual = conjuncts;
    }

    JoinState state =
        PrepareJoin(*core.from, ctx, pending.empty() ? nullptr : &pending);
    // Conjuncts no single input claimed filter the combined rows.
    residual.insert(residual.end(), pending.begin(), pending.end());

    std::unordered_map<const sql::Expr*, int> where_cache;
    const auto source = [&](const RowSink& sink) {
      const auto joined = [&](Row&& row) {
        if (!residual.empty()) {
          EvalContext ec{&state.columns, &row, nullptr, nullptr,
                         &where_cache};
          bool ok = true;
          for (const sql::Expr* conjunct : residual) {
            if (!Truthy(Evaluate(*conjunct, ec))) ok = false;
          }
          if (!ok) return;
        }
        sink(row);
      };
      RunJoin(state, joined);
    };
    *out = aggregate_mode
               ? AggregateCore(core, state.columns, source, order_by,
                               sort_keys)
               : ProjectCore(core, state.columns, source, order_by,
                             sort_keys);
    ++counters_.fused_cores;
    return true;
  }

  return false;  // subqueries go through the reference path
}

Relation Executor::EvalCore(const sql::SelectCore& core, ExecContext& ctx,
                            const std::vector<sql::OrderItem>* order_by,
                            std::vector<Row>* sort_keys,
                            const CoreAccessPath* path) {
  bool aggregate_mode = !core.group_by.empty() || core.having != nullptr;
  if (!aggregate_mode) {
    for (const auto& item : core.items) {
      if (ContainsAggregate(*item.expr)) {
        aggregate_mode = true;
        break;
      }
    }
  }

  Relation out;
  bool fused = false;
  if (db_.fused_enabled()) {
    if (db_.vectorized_enabled()) {
      fused = TryVectorizedCore(core, ctx, aggregate_mode, order_by, sort_keys,
                                path, &out);
    }
    if (!fused) {
      fused = TryFusedCore(core, ctx, aggregate_mode, order_by, sort_keys,
                           path, &out);
    }
  }
  if (!fused) {
    out = EvalCoreReference(core, ctx, aggregate_mode, order_by, sort_keys);
  }

  if (core.distinct) {
    std::unordered_set<Row, KeyHash, KeyEq> seen;
    std::vector<Row> unique;
    std::vector<Row> unique_keys;
    unique.reserve(out.rows.size());
    for (size_t i = 0; i < out.rows.size(); ++i) {
      GovTick();
      if (seen.insert(out.rows[i]).second) {
        unique.push_back(std::move(out.rows[i]));
        if (sort_keys != nullptr) {
          unique_keys.push_back(std::move((*sort_keys)[i]));
        }
      }
    }
    out.rows = std::move(unique);
    if (sort_keys != nullptr) *sort_keys = std::move(unique_keys);
  }
  return out;
}

Relation Executor::EvalCoreReference(
    const sql::SelectCore& core, ExecContext& ctx, bool aggregate_mode,
    const std::vector<sql::OrderItem>* order_by, std::vector<Row>* sort_keys) {
  Relation input;
  bool scanned_via_index = false;
  if (core.from && core.where &&
      core.from->kind == sql::TableRefKind::kBase) {
    // Index-scan pushdown: `FROM t WHERE col = <literal> [AND ...]` with
    // an index on col reads only the matching rows ("indexes ensure that
    // unnecessary scans will be avoided", paper SV-C).
    const std::string name = FoldIdentifier(core.from->table_name);
    if (!ctx.cte_bindings.contains(name) && !db_.HasView(name)) {
      if (const auto table = db_.FindTable(name)) {
        std::vector<const sql::Expr*> conjuncts;
        SplitConjuncts(*core.where, conjuncts);
        for (const sql::Expr* conjunct : conjuncts) {
          if (conjunct->kind != sql::ExprKind::kBinary ||
              conjunct->binary_op != sql::BinaryOp::kEq) {
            continue;
          }
          const sql::Expr* column = conjunct->left.get();
          const sql::Expr* literal = conjunct->right.get();
          if (column->kind != sql::ExprKind::kColumnRef) {
            std::swap(column, literal);
          }
          if (column->kind != sql::ExprKind::kColumnRef ||
              literal->kind != sql::ExprKind::kLiteral ||
              literal->literal.is_null()) {
            continue;
          }
          const std::string alias = FoldIdentifier(core.from->alias);
          if (!column->qualifier.empty() &&
              FoldIdentifier(column->qualifier) != alias) {
            continue;
          }
          const std::string col = FoldIdentifier(column->column);
          if (table->schema().FindColumn(col) < 0 ||
              !table->HasIndexOn(col)) {
            continue;
          }
          input.columns.reserve(table->schema().column_count());
          for (const auto& def : table->schema().columns()) {
            input.columns.push_back({alias, def.name});
          }
          for (const size_t row_id :
               table->IndexLookup(col, literal->literal)) {
            GovTick();
            input.rows.push_back(table->At(row_id));
            GovCharge(RowFootprintBytes(input.rows.back()));
          }
          rows_examined_ += input.rows.size();
          scanned_via_index = true;
          break;
        }
      }
    }
  }
  if (!scanned_via_index) {
    if (core.from) {
      input = EvalTableRef(*core.from, ctx);
    } else {
      input.rows.emplace_back();  // FROM-less SELECT produces one row
    }
  }

  if (core.where) {
    std::unordered_map<const sql::Expr*, int> cache;
    if (input.borrowed) {
      // Filtering a borrowed relation just drops views, no row copies.
      std::vector<const Row*> kept;
      kept.reserve(input.views.size());
      for (const Row* view : input.views) {
        GovTick();
        EvalContext ec{&input.columns, view, nullptr, nullptr, &cache};
        if (Truthy(Evaluate(*core.where, ec))) kept.push_back(view);
      }
      input.views = std::move(kept);
    } else {
      std::vector<Row> kept;
      kept.reserve(input.rows.size());
      for (Row& row : input.rows) {
        GovTick();
        EvalContext ec{&input.columns, &row, nullptr, nullptr, &cache};
        if (Truthy(Evaluate(*core.where, ec))) kept.push_back(std::move(row));
      }
      input.rows = std::move(kept);
    }
  }

  const auto source = [&input](const RowSink& sink) {
    for (size_t i = 0; i < input.row_count(); ++i) sink(input.row(i));
  };
  return aggregate_mode
             ? AggregateCore(core, input.columns, source, order_by, sort_keys)
             : ProjectCore(core, input.columns, source, order_by, sort_keys);
}

ResultSet Executor::EvalSelect(const sql::SelectStmt& stmt, ExecContext& ctx,
                               const std::vector<CoreAccessPath>* paths) {
  const auto path_for = [paths](size_t i) -> const CoreAccessPath* {
    return paths != nullptr && i < paths->size() ? &(*paths)[i] : nullptr;
  };
  const bool single_core_sort =
      stmt.cores.size() == 1 && !stmt.order_by.empty();
  std::vector<Row> sort_keys;
  Relation combined =
      EvalCore(stmt.cores[0], ctx, single_core_sort ? &stmt.order_by : nullptr,
               single_core_sort ? &sort_keys : nullptr, path_for(0));
  for (size_t i = 1; i < stmt.cores.size(); ++i) {
    Relation next = EvalCore(stmt.cores[i], ctx, nullptr, nullptr, path_for(i));
    if (next.columns.size() != combined.columns.size()) {
      throw AnalysisError("UNION arms have different column counts (" +
                          std::to_string(combined.columns.size()) + " vs " +
                          std::to_string(next.columns.size()) + ")");
    }
    combined.rows.insert(combined.rows.end(),
                         std::make_move_iterator(next.rows.begin()),
                         std::make_move_iterator(next.rows.end()));
    if (stmt.set_ops[i - 1] == sql::SetOp::kUnion) {
      std::unordered_set<Row, KeyHash, KeyEq> seen;
      std::vector<Row> unique;
      unique.reserve(combined.rows.size());
      for (Row& row : combined.rows) {
        GovTick();
        if (seen.insert(row).second) unique.push_back(std::move(row));
      }
      combined.rows = std::move(unique);
    }
  }

  if (!stmt.order_by.empty()) {
    if (!single_core_sort) {
      // UNION result: ORDER BY resolves against the output columns only.
      std::vector<sql::ExprPtr> order_exprs;
      for (const auto& item : stmt.order_by) {
        order_exprs.push_back(
            RewriteOrderExpr(*item.expr, combined.columns, {}));
      }
      const auto bindings =
          CombinedOrderBindings(combined.columns.size(), 0);
      std::unordered_map<const sql::Expr*, int> cache;
      sort_keys.clear();
      sort_keys.reserve(combined.rows.size());
      for (const Row& row : combined.rows) {
        GovTick();
        EvalContext ec{&bindings, &row, nullptr, nullptr, &cache};
        Row key;
        key.reserve(order_exprs.size());
        for (const auto& expr : order_exprs) {
          key.push_back(Evaluate(*expr, ec));
        }
        sort_keys.push_back(std::move(key));
      }
    }
    std::vector<size_t> order(combined.rows.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) {
                       for (size_t i = 0; i < stmt.order_by.size(); ++i) {
                         const int c = Value::Compare(sort_keys[a][i],
                                                      sort_keys[b][i]);
                         if (c != 0) {
                           return stmt.order_by[i].ascending ? c < 0 : c > 0;
                         }
                       }
                       return a < b;
                     });
    std::vector<Row> sorted;
    sorted.reserve(combined.rows.size());
    for (const size_t index : order) {
      sorted.push_back(std::move(combined.rows[index]));
    }
    combined.rows = std::move(sorted);
  }

  if (stmt.offset) {
    const auto skip = std::min(combined.rows.size(),
                               static_cast<size_t>(*stmt.offset));
    combined.rows.erase(combined.rows.begin(),
                        combined.rows.begin() + static_cast<ptrdiff_t>(skip));
  }
  if (stmt.limit && combined.rows.size() > static_cast<size_t>(*stmt.limit)) {
    combined.rows.resize(static_cast<size_t>(*stmt.limit));
  }
  return RelationToResult(std::move(combined));
}

// ---------------------------------------------------------------------------
// WITH (plain and recursive CTEs; iterative rejected — SQLoop's job)
// ---------------------------------------------------------------------------

ResultSet Executor::ExecWith(const sql::Statement& stmt, ExecContext& ctx) {
  const sql::WithClause& with = stmt.with;
  const std::string name = FoldIdentifier(with.name);
  const auto* seed_paths = access_ != nullptr ? &access_->seed_cores : nullptr;
  const auto* step_paths = access_ != nullptr ? &access_->step_cores : nullptr;
  const auto* final_paths =
      access_ != nullptr ? &access_->final_cores : nullptr;

  switch (with.kind) {
    case sql::CteKind::kPlain: {
      Relation body = ResultToRelation(EvalSelect(*with.seed, ctx, seed_paths),
                                       /*qualifier=*/"");
      RenameColumns(body, with.columns);
      ctx.cte_bindings[name] = &body;
      ResultSet result = EvalSelect(*with.final_query, ctx, final_paths);
      ctx.cte_bindings.erase(name);
      return result;
    }
    case sql::CteKind::kRecursive: {
      if (!db_.profile().supports_recursive_cte) {
        throw ExecutionError(
            "this engine version does not implement recursive CTE "
            "evaluation (use the SQLoop middleware)");
      }
      // Semi-naive evaluation (paper §II-A): the recursive member sees only
      // the delta of the previous round, and R accumulates all rows.
      Relation all =
          ResultToRelation(EvalSelect(*with.seed, ctx, seed_paths), "");
      RenameColumns(all, with.columns);
      Relation working = all;

      for (int64_t round = 0;; ++round) {
        if (round >= kMaxRecursions) {
          throw ExecutionError("recursive CTE '" + with.name +
                               "' exceeded the recursion limit");
        }
        if (working.rows.empty()) break;
        ctx.cte_bindings[name] = &working;
        Relation delta =
            ResultToRelation(EvalSelect(*with.step, ctx, step_paths), "");
        ctx.cte_bindings.erase(name);
        if (delta.columns.size() != all.columns.size()) {
          throw AnalysisError(
              "recursive member of '" + with.name +
              "' produces a different column count than the seed");
        }
        delta.columns = all.columns;
        // The accumulated relation copies the delta; deep row bytes were
        // already charged when EvalSelect produced them, so charge the
        // shallow copy and give the governor a per-round check.
        GovTick();
        GovCharge(static_cast<int64_t>(delta.rows.size() * sizeof(Row)));
        all.rows.insert(all.rows.end(), delta.rows.begin(), delta.rows.end());
        working = std::move(delta);
      }

      ctx.cte_bindings[name] = &all;
      ResultSet result = EvalSelect(*with.final_query, ctx, final_paths);
      ctx.cte_bindings.erase(name);
      return result;
    }
    case sql::CteKind::kIterative:
      throw ExecutionError(
          "iterative CTEs are a SQLoop extension; submit this query "
          "through the SQLoop middleware, not directly to the engine");
  }
  throw UsageError("unknown CTE kind");
}

// ---------------------------------------------------------------------------
// DDL
// ---------------------------------------------------------------------------

void Executor::CheckDialect(const sql::Statement& stmt) const {
  const EngineProfile& profile = db_.profile();
  if (!profile.strict_dialect) return;
  if (stmt.kind != sql::StatementKind::kCreateTable) return;

  if (profile.dialect == Dialect::kPostgres) {
    if (!stmt.engine_option.empty()) {
      throw ExecutionError("syntax error: ENGINE table options are not "
                           "supported by the postgres engine");
    }
    for (const auto& column : stmt.columns) {
      if (column.type_spelling == "DOUBLE") {
        throw ExecutionError("type \"DOUBLE\" does not exist in the postgres "
                             "engine; use DOUBLE PRECISION");
      }
    }
  } else if (IsMySqlFamily(profile.dialect)) {
    if (stmt.unlogged) {
      throw ExecutionError("syntax error: UNLOGGED tables are "
                           "PostgreSQL-specific; use ENGINE=MyISAM");
    }
  }
}

ResultSet Executor::ExecCreateTable(const sql::Statement& stmt) {
  CheckDialect(stmt);
  std::vector<Column> columns;
  columns.reserve(stmt.columns.size());
  for (const auto& def : stmt.columns) {
    columns.push_back({FoldIdentifier(def.name), def.type});
  }
  db_.CreateTable(stmt.table_name, Schema(std::move(columns),
                                          stmt.primary_key_index),
                  stmt.if_not_exists);
  return {};
}

// ---------------------------------------------------------------------------
// DML
// ---------------------------------------------------------------------------

void Executor::BackupForTransaction(Session* session, Table& table) {
  if (session == nullptr || !session->in_transaction_) return;
  session->backups_.try_emplace(table.name(), table.SnapshotRows());
}

ResultSet Executor::ExecInsert(const sql::Statement& stmt, Session* session) {
  const auto table = db_.FindTable(stmt.table_name);
  if (!table) {
    throw ExecutionError("table '" + stmt.table_name + "' does not exist");
  }
  const Schema& schema = table->schema();

  // Map the statement's column list (or schema order) to schema positions.
  std::vector<int> positions;
  if (stmt.insert_columns.empty()) {
    positions.resize(schema.column_count());
    for (size_t i = 0; i < positions.size(); ++i) {
      positions[i] = static_cast<int>(i);
    }
  } else {
    for (const auto& column : stmt.insert_columns) {
      const int index = schema.FindColumn(column);
      if (index < 0) {
        throw ExecutionError("no column '" + column + "' in table '" +
                             stmt.table_name + "'");
      }
      positions.push_back(index);
    }
  }

  std::vector<Row> incoming;
  if (stmt.insert_select) {
    // The source SELECT fully materializes (EvalSelect returns owned rows)
    // before the first Insert call — Insert can grow the table's row
    // vector, which would invalidate any borrowed views into it.
    ExecContext ctx;
    ResultSet selected = EvalSelect(
        *stmt.insert_select, ctx,
        access_ != nullptr ? &access_->insert_cores : nullptr);
    incoming = std::move(selected.rows);
  } else {
    EvalContext ec;  // VALUES expressions see no input columns
    for (const auto& row_exprs : stmt.insert_rows) {
      GovTick();
      Row row;
      row.reserve(row_exprs.size());
      for (const auto& expr : row_exprs) row.push_back(Evaluate(*expr, ec));
      GovCharge(RowFootprintBytes(row));
      incoming.push_back(std::move(row));
    }
  }

  BackupForTransaction(session, *table);
  size_t inserted = 0;
  for (Row& source : incoming) {
    if (source.size() != positions.size()) {
      throw ExecutionError("INSERT supplies " +
                           std::to_string(source.size()) + " values for " +
                           std::to_string(positions.size()) + " columns");
    }
    Row full(schema.column_count());
    for (size_t i = 0; i < positions.size(); ++i) {
      full[positions[i]] = std::move(source[i]);
    }
    table->Insert(std::move(full));
    ++inserted;
  }
  ResultSet result;
  result.affected_rows = inserted;
  return result;
}

ResultSet Executor::ExecUpdate(const sql::Statement& stmt, Session* session,
                               ExecContext& ctx) {
  const auto table = db_.FindTable(stmt.table_name);
  if (!table) {
    throw ExecutionError("table '" + stmt.table_name + "' does not exist");
  }
  const Schema& schema = table->schema();
  const std::string alias = FoldIdentifier(
      stmt.update_alias.empty() ? stmt.table_name : stmt.update_alias);

  std::vector<ColumnBinding> target_columns;
  target_columns.reserve(schema.column_count());
  for (const auto& column : schema.columns()) {
    target_columns.push_back({alias, column.name});
  }

  // Resolve SET targets once.
  std::vector<int> set_positions;
  set_positions.reserve(stmt.set_items.size());
  for (const auto& [column, expr] : stmt.set_items) {
    const int index = schema.FindColumn(column);
    if (index < 0) {
      throw ExecutionError("no column '" + column + "' in table '" +
                           stmt.table_name + "'");
    }
    set_positions.push_back(index);
  }

  std::vector<std::pair<size_t, Row>> pending;  // (row id, new row)
  std::unordered_map<const sql::Expr*, int> cache;

  if (stmt.update_from) {
    // UPDATE ... FROM <source>: match each target row against the source,
    // hash-accelerated on the first target=source equi conjunct.
    Relation source = EvalTableRef(*stmt.update_from, ctx);

    std::vector<ColumnBinding> combined = target_columns;
    combined.insert(combined.end(), source.columns.begin(),
                    source.columns.end());

    std::vector<const sql::Expr*> conjuncts;
    if (stmt.where) SplitConjuncts(*stmt.where, conjuncts);

    int target_key = -1;
    int source_key = -1;
    std::vector<const sql::Expr*> residual;
    for (const sql::Expr* conjunct : conjuncts) {
      if (target_key < 0 && conjunct->kind == sql::ExprKind::kBinary &&
          conjunct->binary_op == sql::BinaryOp::kEq &&
          conjunct->left->kind == sql::ExprKind::kColumnRef &&
          conjunct->right->kind == sql::ExprKind::kColumnRef) {
        const sql::Expr& a = *conjunct->left;
        const sql::Expr& b = *conjunct->right;
        const int at = TryResolveColumn(target_columns, a.qualifier, a.column);
        const int bs = TryResolveColumn(source.columns, b.qualifier, b.column);
        if (at >= 0 && bs >= 0) {
          target_key = at;
          source_key = bs;
          continue;
        }
        const int bt = TryResolveColumn(target_columns, b.qualifier, b.column);
        const int as = TryResolveColumn(source.columns, a.qualifier, a.column);
        if (bt >= 0 && as >= 0) {
          target_key = bt;
          source_key = as;
          continue;
        }
      }
      residual.push_back(conjunct);
    }

    // `source` may hold borrowed views into the target table itself
    // (UPDATE t ... FROM t AS s). All matching reads finish before the
    // pending writes apply, and Table::Update assigns slots in place, so
    // the views stay valid for the whole match phase.
    std::unordered_multimap<Value, size_t, ValueKeyHash, ValueKeyEq> by_key;
    if (target_key >= 0) {
      by_key.reserve(source.row_count());
      for (size_t i = 0; i < source.row_count(); ++i) {
        GovTick();
        const Value& key = source.row(i)[source_key];
        if (!key.is_null()) by_key.emplace(key, i);
      }
    }

    PinScope::Window window;
    for (size_t row_id = 0; row_id < table->slot_count(); ++row_id) {
      if ((row_id & kPageRowMask) == 0) window.Reset();
      if (!table->IsLive(row_id)) continue;
      ++rows_examined_;
      GovTick();
      const Row& current = table->At(row_id);

      const auto try_match = [&](const Row& source_row) -> bool {
        Row combined_row = ConcatRows(current, source_row);
        EvalContext ec{&combined, &combined_row, nullptr, nullptr, &cache};
        if (!ResidualHolds(residual, ec)) return false;
        Row updated = current;
        for (size_t i = 0; i < stmt.set_items.size(); ++i) {
          updated[set_positions[i]] =
              Evaluate(*stmt.set_items[i].second, ec);
        }
        schema.CoerceRow(updated);
        bool changed = false;
        for (size_t i = 0; i < updated.size(); ++i) {
          if (!Value::KeyEquals(updated[i], current[i])) {
            changed = true;
            break;
          }
        }
        if (changed) {
          GovCharge(RowFootprintBytes(updated));
          pending.emplace_back(row_id, std::move(updated));
        }
        return true;
      };

      if (target_key >= 0) {
        const Value& key = current[target_key];
        if (key.is_null()) continue;
        const auto [begin, end] = by_key.equal_range(key);
        for (auto it = begin; it != end; ++it) {
          if (try_match(source.row(it->second))) break;  // first match wins
        }
      } else {
        for (size_t i = 0; i < source.row_count(); ++i) {
          if (try_match(source.row(i))) break;
        }
      }
    }
  } else {
    PinScope::Window window;
    for (size_t row_id = 0; row_id < table->slot_count(); ++row_id) {
      if ((row_id & kPageRowMask) == 0) window.Reset();
      if (!table->IsLive(row_id)) continue;
      ++rows_examined_;
      GovTick();
      const Row& current = table->At(row_id);
      EvalContext ec{&target_columns, &current, nullptr, nullptr, &cache};
      if (stmt.where && !Truthy(Evaluate(*stmt.where, ec))) continue;
      Row updated = current;
      for (size_t i = 0; i < stmt.set_items.size(); ++i) {
        updated[set_positions[i]] = Evaluate(*stmt.set_items[i].second, ec);
      }
      schema.CoerceRow(updated);
      bool changed = false;
      for (size_t i = 0; i < updated.size(); ++i) {
        if (!Value::KeyEquals(updated[i], current[i])) {
          changed = true;
          break;
        }
      }
      if (changed) {
        GovCharge(RowFootprintBytes(updated));
        pending.emplace_back(row_id, std::move(updated));
      }
    }
  }

  BackupForTransaction(session, *table);
  for (auto& [row_id, row] : pending) {
    table->Update(row_id, std::move(row));
  }
  ResultSet result;
  result.affected_rows = pending.size();
  return result;
}

ResultSet Executor::ExecDelete(const sql::Statement& stmt, Session* session) {
  const auto table = db_.FindTable(stmt.table_name);
  if (!table) {
    throw ExecutionError("table '" + stmt.table_name + "' does not exist");
  }
  const std::string alias = FoldIdentifier(stmt.table_name);
  std::vector<ColumnBinding> columns;
  for (const auto& column : table->schema().columns()) {
    columns.push_back({alias, column.name});
  }
  std::vector<size_t> doomed;
  std::unordered_map<const sql::Expr*, int> cache;
  PinScope::Window window;
  for (size_t row_id = 0; row_id < table->slot_count(); ++row_id) {
    if ((row_id & kPageRowMask) == 0) window.Reset();
    if (!table->IsLive(row_id)) continue;
    ++rows_examined_;
    GovTick();
    if (stmt.where) {
      const Row& row = table->At(row_id);
      EvalContext ec{&columns, &row, nullptr, nullptr, &cache};
      if (!Truthy(Evaluate(*stmt.where, ec))) continue;
    }
    doomed.push_back(row_id);
  }
  BackupForTransaction(session, *table);
  for (const size_t row_id : doomed) table->Delete(row_id);
  ResultSet result;
  result.affected_rows = doomed.size();
  return result;
}

// ---------------------------------------------------------------------------
// Transactions
// ---------------------------------------------------------------------------

ResultSet Executor::ExecTransaction(const sql::Statement& stmt,
                                    Session* session) {
  if (session == nullptr) {
    throw UsageError("transaction statements require a session");
  }
  switch (stmt.kind) {
    case sql::StatementKind::kBegin:
      if (session->in_transaction_) {
        throw ExecutionError("a transaction is already in progress");
      }
      session->in_transaction_ = true;
      session->backups_.clear();
      return {};
    case sql::StatementKind::kCommit:
      session->in_transaction_ = false;
      session->backups_.clear();
      return {};
    case sql::StatementKind::kRollback: {
      for (auto& [name, rows] : session->backups_) {
        const auto table = db_.FindTable(name);
        if (!table) continue;  // dropped mid-transaction; nothing to restore
        const std::scoped_lock lock(table->lock());
        table->RestoreRows(rows);
      }
      session->in_transaction_ = false;
      session->backups_.clear();
      return {};
    }
    default:
      throw UsageError("not a transaction statement");
  }
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

ResultSet Executor::Execute(const sql::Statement& stmt, Session* session) {
  return ExecuteWithPlan(stmt, BuildLockPlan(stmt), session);
}

ResultSet Executor::ExecuteWithPlan(const sql::Statement& stmt,
                                    const LockPlan& plan, Session* session) {
  return ExecuteWithPlan(stmt, plan, /*access=*/nullptr, session);
}

ResultSet Executor::ExecuteWithPlan(const sql::Statement& stmt,
                                    const LockPlan& plan,
                                    const AccessPlan* access,
                                    Session* session) {
  rows_examined_ = 0;
  counters_ = {};
  access_ = access;
  GovBeginStatement();
  // Statement pin ledger: every paged row view the engine hands out below
  // is backed by a page pinned here (scan windows release early; anything
  // left drains when the scope dies with the statement).
  PinScope pin_scope;
  ResultSet result;
  try {
    result = ExecuteInternal(stmt, plan, session);
  } catch (...) {
    // Statement-scope teardown: the whole transient reservation returns to
    // the tracker chain, so an aborted statement frees its working set.
    GovEndStatement();
    access_ = nullptr;
    throw;
  }
  GovEndStatement();
  access_ = nullptr;
  result.rows_examined = rows_examined_;
  SQLOOP_COUNT(recorder_, "minidb.rows_examined", rows_examined_);
  // Engine counters flush only when nonzero so statements that never touch
  // the SELECT pipeline don't mint empty counter entries.
  if (counters_.rows_materialized != 0) {
    SQLOOP_COUNT(recorder_, "minidb.rows_materialized",
                 counters_.rows_materialized);
  }
  if (counters_.rows_borrowed != 0) {
    SQLOOP_COUNT(recorder_, "minidb.rows_borrowed", counters_.rows_borrowed);
  }
  if (counters_.index_scans != 0) {
    SQLOOP_COUNT(recorder_, "minidb.index_scans", counters_.index_scans);
  }
  if (counters_.full_scans != 0) {
    SQLOOP_COUNT(recorder_, "minidb.full_scans", counters_.full_scans);
  }
  if (counters_.pushed_predicates != 0) {
    SQLOOP_COUNT(recorder_, "minidb.pushed_predicates",
                 counters_.pushed_predicates);
  }
  if (counters_.fused_cores != 0) {
    SQLOOP_COUNT(recorder_, "minidb.fused_cores", counters_.fused_cores);
  }
  if (counters_.batches_produced != 0) {
    SQLOOP_COUNT(recorder_, "minidb.batches_produced",
                 counters_.batches_produced);
  }
  if (counters_.vectorized_cores != 0) {
    SQLOOP_COUNT(recorder_, "minidb.vectorized_cores",
                 counters_.vectorized_cores);
  }
  if (counters_.scalar_fallbacks != 0) {
    SQLOOP_COUNT(recorder_, "minidb.scalar_fallbacks",
                 counters_.scalar_fallbacks);
  }
  // Buffer-pool deltas: the pool's counters are pool-lifetime, so each
  // statement flushes only what it moved. Unbounded pools never pin or
  // evict — skip the stats lock entirely.
  if (db_.buffer_pool().bounded()) {
    const BufferPool::Stats pool = db_.buffer_pool().stats();
    const auto flush = [this](const char* name, uint64_t now,
                              uint64_t& last) {
      if (now != last) {
        SQLOOP_COUNT(recorder_, name, static_cast<int64_t>(now - last));
        last = now;
      }
    };
    flush("minidb.pool_hits", pool.hits, pool_last_.hits);
    flush("minidb.pool_misses", pool.misses, pool_last_.misses);
    flush("minidb.pages_evicted", pool.pages_evicted,
          pool_last_.pages_evicted);
    flush("minidb.bytes_spilled", pool.bytes_spilled,
          pool_last_.bytes_spilled);
  }
  return result;
}

LockPlan Executor::BuildLockPlan(const sql::Statement& stmt) const {
  LockPlan plan;
  switch (stmt.kind) {
    case sql::StatementKind::kSelect: {
      TableCollector collector(db_);
      collector.FromSelect(*stmt.select, {});
      collector.Collect(plan, {});
      break;
    }
    case sql::StatementKind::kWith: {
      TableCollector collector(db_);
      const std::set<std::string> ctes = {FoldIdentifier(stmt.with.name)};
      collector.FromSelect(*stmt.with.seed, ctes);
      if (stmt.with.step) collector.FromSelect(*stmt.with.step, ctes);
      if (stmt.with.termination.probe) {
        collector.FromSelect(*stmt.with.termination.probe, ctes);
      }
      collector.FromSelect(*stmt.with.final_query, ctes);
      collector.Collect(plan, {});
      break;
    }
    case sql::StatementKind::kInsert: {
      TableCollector collector(db_);
      if (stmt.insert_select) collector.FromSelect(*stmt.insert_select, {});
      collector.Collect(plan, {FoldIdentifier(stmt.table_name)});
      break;
    }
    case sql::StatementKind::kUpdate: {
      TableCollector collector(db_);
      if (stmt.update_from) collector.FromTableRef(*stmt.update_from, {});
      collector.Collect(plan, {FoldIdentifier(stmt.table_name)});
      break;
    }
    case sql::StatementKind::kDelete:
      plan.entries.emplace_back(FoldIdentifier(stmt.table_name),
                                /*write=*/true);
      break;
    default:
      // DDL, TRUNCATE and transaction statements lock inside their own
      // execution paths; nothing to precompute.
      break;
  }
  return plan;
}

CoreAccessPath Executor::AnalyzeCore(
    const sql::SelectCore& core,
    const std::unordered_set<std::string>& ctes) const {
  CoreAccessPath path;
  if (!core.from || core.from->kind != sql::TableRefKind::kBase) return path;
  const std::string name = FoldIdentifier(core.from->table_name);
  if (ctes.contains(name) || db_.HasView(name)) return path;
  const auto table = db_.FindTable(name);
  if (!table) return path;
  path.single_base = true;
  path.table = name;
  std::vector<const sql::Expr*> conjuncts;
  if (core.where) {
    SplitConjuncts(*core.where, conjuncts);
    path.probe_conjunct = ChooseProbe(conjuncts, *table, core.from->alias,
                                      /*allow_parameters=*/true,
                                      &path.probe_column);
  }
  // Batched access-path hints: 1 = compiles into a total kernel under the
  // bind-time schema, 2 = parameter-dependent (retry against the bound
  // AST at execution), 0 = known uncompilable (skip the attempt).
  path.batch_analyzed = true;
  path.kernel_conjuncts.reserve(conjuncts.size());
  const std::string alias = FoldIdentifier(core.from->alias);
  PredicateKernel kernel;
  for (const sql::Expr* conjunct : conjuncts) {
    if (CompilePredicateKernel(*conjunct, table->schema(), alias, &kernel)) {
      path.kernel_conjuncts.push_back(1);
    } else {
      path.kernel_conjuncts.push_back(ContainsParameter(*conjunct) ? 2 : 0);
    }
  }
  return path;
}

AccessPlan Executor::BuildAccessPlan(const sql::Statement& stmt) const {
  AccessPlan plan;
  const auto analyze = [this](const sql::SelectStmt& select,
                              const std::unordered_set<std::string>& ctes,
                              std::vector<CoreAccessPath>& out) {
    out.reserve(select.cores.size());
    for (const auto& core : select.cores) {
      out.push_back(AnalyzeCore(core, ctes));
    }
  };
  switch (stmt.kind) {
    case sql::StatementKind::kSelect:
      analyze(*stmt.select, {}, plan.select_cores);
      break;
    case sql::StatementKind::kWith: {
      // The seed runs before the CTE binding exists; the recursive member
      // and the final query see it (a core reading the CTE gets no cached
      // path — the executor re-checks the live bindings anyway).
      const std::unordered_set<std::string> ctes = {
          FoldIdentifier(stmt.with.name)};
      analyze(*stmt.with.seed, {}, plan.seed_cores);
      if (stmt.with.step) analyze(*stmt.with.step, ctes, plan.step_cores);
      analyze(*stmt.with.final_query, ctes, plan.final_cores);
      break;
    }
    case sql::StatementKind::kInsert:
      if (stmt.insert_select) {
        analyze(*stmt.insert_select, {}, plan.insert_cores);
      }
      break;
    default:
      break;
  }
  return plan;
}

ResultSet Executor::ExecuteInternal(const sql::Statement& stmt,
                                    const LockPlan& plan, Session* session) {
  ExecContext ctx;
  switch (stmt.kind) {
    case sql::StatementKind::kSelect: {
      LockSet locks(recorder_);
      ApplyLockPlan(locks, db_, plan);
      locks.AcquireAll();
      return EvalSelect(*stmt.select, ctx,
                        access_ != nullptr ? &access_->select_cores : nullptr);
    }
    case sql::StatementKind::kWith: {
      LockSet locks(recorder_);
      ApplyLockPlan(locks, db_, plan);
      locks.AcquireAll();
      return ExecWith(stmt, ctx);
    }
    case sql::StatementKind::kCreateTable:
      return ExecCreateTable(stmt);
    case sql::StatementKind::kDropTable:
      db_.DropTable(stmt.table_name, stmt.if_exists);
      return {};
    case sql::StatementKind::kCreateIndex: {
      const auto table = db_.FindTable(stmt.table_name);
      if (!table) {
        throw ExecutionError("table '" + stmt.table_name +
                             "' does not exist");
      }
      {
        const std::scoped_lock lock(table->lock());
        table->CreateIndex(stmt.index_name, stmt.index_columns.at(0));
      }
      // Index DDL bypasses the Database catalog methods, so the version
      // bump that invalidates bound plans happens here.
      db_.BumpCatalogVersion();
      return {};
    }
    case sql::StatementKind::kDropIndex: {
      if (!stmt.table_name.empty()) {
        const auto table = db_.FindTable(stmt.table_name);
        if (!table) {
          throw ExecutionError("table '" + stmt.table_name +
                               "' does not exist");
        }
        bool dropped;
        {
          const std::scoped_lock lock(table->lock());
          dropped = table->DropIndex(stmt.index_name);
        }
        if (dropped) {
          db_.BumpCatalogVersion();
        } else if (!stmt.if_exists) {
          throw ExecutionError("index '" + stmt.index_name +
                               "' does not exist");
        }
        return {};
      }
      for (const auto& name : db_.TableNames()) {
        const auto table = db_.FindTable(name);
        if (!table) continue;
        bool dropped;
        {
          const std::scoped_lock lock(table->lock());
          dropped = table->DropIndex(stmt.index_name);
        }
        if (dropped) {
          db_.BumpCatalogVersion();
          return {};
        }
      }
      if (!stmt.if_exists) {
        throw ExecutionError("index '" + stmt.index_name +
                             "' does not exist");
      }
      return {};
    }
    case sql::StatementKind::kCreateView:
      db_.CreateView(stmt.table_name, stmt.view_select->Clone());
      return {};
    case sql::StatementKind::kDropView:
      db_.DropView(stmt.table_name, stmt.if_exists);
      return {};
    case sql::StatementKind::kInsert: {
      LockSet locks(recorder_);
      ApplyLockPlan(locks, db_, plan);
      locks.AcquireAll();
      return ExecInsert(stmt, session);
    }
    case sql::StatementKind::kUpdate: {
      LockSet locks(recorder_);
      ApplyLockPlan(locks, db_, plan);
      locks.AcquireAll();
      return ExecUpdate(stmt, session, ctx);
    }
    case sql::StatementKind::kDelete: {
      LockSet locks(recorder_);
      ApplyLockPlan(locks, db_, plan);
      locks.AcquireAll();
      return ExecDelete(stmt, session);
    }
    case sql::StatementKind::kTruncate: {
      const auto table = db_.FindTable(stmt.table_name);
      if (!table) {
        throw ExecutionError("table '" + stmt.table_name +
                             "' does not exist");
      }
      const std::scoped_lock lock(table->lock());
      BackupForTransaction(session, *table);
      const size_t removed = table->live_row_count();
      table->Clear();
      ResultSet result;
      result.affected_rows = removed;
      return result;
    }
    case sql::StatementKind::kDumpTable: {
      const auto table = db_.FindTable(stmt.table_name);
      if (!table) {
        throw ExecutionError("table '" + stmt.table_name +
                             "' does not exist");
      }
      // A shared lock suffices: the dump only reads. Writers are excluded
      // for the duration, so the file is a consistent snapshot.
      const std::shared_lock lock(table->lock());
      if (table->quarantined()) {
        throw IntegrityError("refusing to dump quarantined table '" +
                             stmt.table_name + "'");
      }
      ResultSet result;
      result.affected_rows = DumpTableToFile(*table, stmt.file_path);
      result.rows_examined = table->live_row_count();
      return result;
    }
    case sql::StatementKind::kRestoreTable: {
      // Create-or-replace from the dumped schema; rows re-inserted in
      // dumped order rebuild the table bit-identically (scan order, PK
      // index). Validation happens in ReadDumpFile before any catalog
      // change, so a corrupt dump leaves the database untouched.
      DumpContents contents = ReadDumpFile(stmt.file_path);
      // Governor pass over the materialized dump BEFORE any catalog
      // change: a quota breach or cancel aborts with the database
      // untouched (the restore loop below is write-apply and never ticks).
      for (const Row& row : contents.rows) {
        GovTick();
        GovCharge(RowFootprintBytes(row));
      }
      GovFlush();  // enforce the full dump size before mutating
      db_.DropTable(stmt.table_name, /*if_exists=*/true);
      db_.CreateTable(stmt.table_name, contents.schema,
                      /*if_not_exists=*/false);
      const auto table = db_.FindTable(stmt.table_name);
      const std::scoped_lock lock(table->lock());
      for (auto& row : contents.rows) table->Insert(std::move(row));
      ResultSet result;
      result.affected_rows = contents.rows.size();
      return result;
    }
    case sql::StatementKind::kCheckTable: {
      // The scrub primitive: recompute the table's content checksum from
      // the live rows and compare it to the incrementally-maintained one.
      // A mismatch quarantines the table (every later statement touching
      // it fails at the lock fence) and raises IntegrityError — corruption
      // is never allowed to become a silently wrong result.
      const auto table = db_.FindTable(stmt.table_name);
      if (!table) {
        throw ExecutionError("table '" + stmt.table_name +
                             "' does not exist");
      }
      const std::shared_lock lock(table->lock());
      SQLOOP_COUNT(recorder_, "minidb.scrub_checks", 1);
      if (table->quarantined()) {
        SQLOOP_COUNT(recorder_, "minidb.scrub_failures", 1);
        throw IntegrityError("table '" + stmt.table_name +
                             "' is already quarantined");
      }
      uint64_t expected = 0;
      uint64_t actual = 0;
      if (!table->VerifyContent(&expected, &actual)) {
        table->set_quarantined(true);
        SQLOOP_COUNT(recorder_, "minidb.scrub_failures", 1);
        char expected_hex[17];
        char actual_hex[17];
        std::snprintf(expected_hex, sizeof(expected_hex), "%016llx",
                      static_cast<unsigned long long>(expected));
        std::snprintf(actual_hex, sizeof(actual_hex), "%016llx",
                      static_cast<unsigned long long>(actual));
        throw IntegrityError(
            "table '" + stmt.table_name +
            "' failed its content checksum: maintained 0x" + expected_hex +
            ", recomputed 0x" + actual_hex + " over " +
            std::to_string(table->live_row_count()) +
            " live rows; table quarantined");
      }
      ResultSet result;
      result.columns = {"table", "status", "rows"};
      result.rows.push_back({Value(stmt.table_name), Value("ok"),
                             Value(static_cast<int64_t>(
                                 table->live_row_count()))});
      result.rows_examined = table->live_row_count();
      return result;
    }
    case sql::StatementKind::kChecksumTable: {
      // O(1) change probe: report the incrementally-maintained checksum
      // without touching a single row (so a spilled table stays spilled).
      // Checkpointing compares it to the last sealed round's value to skip
      // re-dumping unchanged tables.
      const auto table = db_.FindTable(stmt.table_name);
      if (!table) {
        throw ExecutionError("table '" + stmt.table_name +
                             "' does not exist");
      }
      const std::shared_lock lock(table->lock());
      if (table->quarantined()) {
        throw IntegrityError("refusing to checksum quarantined table '" +
                             stmt.table_name + "'");
      }
      char hex[17];
      std::snprintf(hex, sizeof(hex), "%016llx",
                    static_cast<unsigned long long>(table->content_hash()));
      ResultSet result;
      result.columns = {"table", "checksum", "rows"};
      result.rows.push_back(
          {Value(stmt.table_name), Value(std::string("0x") + hex),
           Value(static_cast<int64_t>(table->live_row_count()))});
      return result;
    }
    case sql::StatementKind::kBegin:
    case sql::StatementKind::kCommit:
    case sql::StatementKind::kRollback:
      return ExecTransaction(stmt, session);
  }
  throw UsageError("unknown statement kind");
}

ResultSet Executor::ExecuteSql(std::string_view text, Session* session) {
  if (db_.plan_cache().enabled()) {
    const auto plan = Prepare(text);
    ResultSet result =
        ExecuteWithPlan(*plan->ast, *plan->locks, plan->access.get(), session);
    result.compiled = last_prepare_parsed_;
    return result;
  }
  // Ablation path (--no-plan-cache): the pre-cache cost model — every
  // statement pays a full parse.
  SQLOOP_COUNT(recorder_, "sql.parse_count", 1);
#if SQLOOP_TELEMETRY_ENABLED
  const Stopwatch parse_watch;
#endif
  const auto stmt = sql::ParseStatement(text);
  SQLOOP_TIME_SECONDS(recorder_, "sql.parse_seconds",
                      parse_watch.ElapsedSeconds());
  ResultSet result = Execute(*stmt, session);
  result.compiled = true;
  return result;
}

std::shared_ptr<const CachedPlan> Executor::Rebind(const CachedPlan& stale,
                                                   uint64_t version) {
  // The catalog changed since this plan was bound: the parse stays valid
  // (text -> AST is a pure function), only the bind layer — lock set and
  // view expansion — is recomputed. The refresh stays connection-local;
  // writing it back to the shared cache would serialize workers on the
  // cache mutex only to be re-staled by the next round's DDL.
  auto rebound = std::make_shared<CachedPlan>();
  rebound->ast = stale.ast;
  rebound->param_count = stale.param_count;
  rebound->locks = std::make_shared<const LockPlan>(BuildLockPlan(*stale.ast));
  rebound->access =
      std::make_shared<const AccessPlan>(BuildAccessPlan(*stale.ast));
  rebound->bound_version = version;
  db_.plan_cache().NoteRebind();
  SQLOOP_COUNT(recorder_, "minidb.plan_rebinds", 1);
  return rebound;
}

std::shared_ptr<const CachedPlan> Executor::Prepare(std::string_view text,
                                                    bool pin) {
  PlanCache& cache = db_.plan_cache();
  if (!cache.enabled()) {
    throw UsageError("Prepare requires the plan cache to be enabled");
  }
  last_prepare_parsed_ = false;
  const uint64_t version = db_.catalog_version();
  std::string raw(text);
  if (const auto it = local_plans_.find(raw); it != local_plans_.end()) {
    // Hot path: this connection has executed the exact text before. No
    // shared state is touched unless the catalog moved underneath us.
    SQLOOP_COUNT(recorder_, "minidb.plan_cache_hits", 1);
    cache.NoteLocalHit();
    if (it->second->bound_version != version) {
      it->second = Rebind(*it->second, version);
    }
    return it->second;
  }
  const std::string key =
      db_.profile().name + '\x1f' + NormalizeSqlKey(text);
  if (auto entry = cache.Lookup(key)) {
    SQLOOP_COUNT(recorder_, "minidb.plan_cache_hits", 1);
    if (entry->bound_version != version) {
      entry = Rebind(*entry, version);
    }
    if (local_plans_.size() >= kLocalPlanCapacity) local_plans_.clear();
    local_plans_.emplace(std::move(raw), entry);
    return entry;
  }
  SQLOOP_COUNT(recorder_, "minidb.plan_cache_misses", 1);
  SQLOOP_COUNT(recorder_, "sql.parse_count", 1);
  last_prepare_parsed_ = true;
  auto plan = std::make_shared<CachedPlan>();
  {
#if SQLOOP_TELEMETRY_ENABLED
    const Stopwatch parse_watch;
#endif
    auto parsed = sql::ParseStatement(text);
    SQLOOP_TIME_SECONDS(recorder_, "sql.parse_seconds",
                        parse_watch.ElapsedSeconds());
    int max_param = -1;
    sql::VisitStatementExprs(*parsed, [&max_param](const sql::Expr& expr) {
      if (expr.kind == sql::ExprKind::kParameter) {
        max_param = std::max(max_param, expr.param_index);
      }
    });
    plan->param_count = max_param + 1;
    plan->ast = std::shared_ptr<const sql::Statement>(std::move(parsed));
  }
  plan->locks = std::make_shared<const LockPlan>(BuildLockPlan(*plan->ast));
  plan->access = std::make_shared<const AccessPlan>(BuildAccessPlan(*plan->ast));
  plan->bound_version = version;
  if (pin || first_misses_.erase(key) > 0) {
    cache.Put(key, plan);
    if (local_plans_.size() >= kLocalPlanCapacity) local_plans_.clear();
    local_plans_.emplace(std::move(raw), plan);
  } else {
    if (first_misses_.size() >= kLocalPlanCapacity) first_misses_.clear();
    first_misses_.insert(key);
  }
  return plan;
}

}  // namespace sqloop::minidb
