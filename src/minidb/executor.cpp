#include "minidb/executor.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <set>
#include <shared_mutex>

#include "common/error.h"
#include "common/stopwatch.h"
#include "minidb/dump.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "telemetry/hooks.h"

namespace sqloop::minidb {
namespace {

// ---------------------------------------------------------------------------
// Lock management: all tables a statement touches are locked up front in
// name order (shared for reads, exclusive for writes). Sorted acquisition
// makes deadlock impossible; std::map keeps the order for us.
// ---------------------------------------------------------------------------

class LockSet {
 public:
  explicit LockSet(telemetry::Recorder* recorder = nullptr)
      : recorder_(recorder) {}
  LockSet(const LockSet&) = delete;
  LockSet& operator=(const LockSet&) = delete;

  void Request(std::shared_ptr<Table> table, bool write) {
    if (!table) return;
    const std::string name = table->name();
    auto [it, inserted] =
        entries_.try_emplace(name, Entry{std::move(table), write});
    if (!inserted) it->second.write |= write;
  }

  void AcquireAll() {
#if SQLOOP_TELEMETRY_ENABLED
    const Stopwatch watch;
#endif
    for (auto& [name, entry] : entries_) {
      if (entry.write) {
        entry.table->lock().lock();
      } else {
        entry.table->lock().lock_shared();
      }
      entry.locked = true;
    }
    SQLOOP_TIME_SECONDS(recorder_, "minidb.lock_wait_seconds",
                        watch.ElapsedSeconds());
  }

  ~LockSet() {
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
      if (!it->second.locked) continue;
      if (it->second.write) {
        it->second.table->lock().unlock();
      } else {
        it->second.table->lock().unlock_shared();
      }
    }
  }

 private:
  struct Entry {
    std::shared_ptr<Table> table;
    bool write = false;
    bool locked = false;
  };
  telemetry::Recorder* recorder_ = nullptr;
  std::map<std::string, Entry> entries_;
};

/// Walks statements collecting every base table referenced (views are
/// expanded to their underlying tables; CTE names are excluded).
class TableCollector {
 public:
  explicit TableCollector(const Database& db) : db_(db) {}

  void AddName(const std::string& raw_name,
               const std::set<std::string>& ctes) {
    const std::string name = FoldIdentifier(raw_name);
    if (ctes.contains(name)) return;
    if (const auto view = db_.FindView(name)) {
      if (visited_views_.insert(name).second) {
        FromSelect(*view, ctes);
      }
      return;
    }
    reads_.insert(name);
  }

  void FromTableRef(const sql::TableRef& ref,
                    const std::set<std::string>& ctes) {
    switch (ref.kind) {
      case sql::TableRefKind::kBase:
        AddName(ref.table_name, ctes);
        return;
      case sql::TableRefKind::kJoin:
        FromTableRef(*ref.left, ctes);
        FromTableRef(*ref.right, ctes);
        return;
      case sql::TableRefKind::kSubquery:
        FromSelect(*ref.subquery, ctes);
        return;
    }
  }

  void FromSelect(const sql::SelectStmt& stmt,
                  const std::set<std::string>& ctes) {
    for (const auto& core : stmt.cores) {
      if (core.from) FromTableRef(*core.from, ctes);
    }
  }

  /// Emits the collected names into a lock plan. `written` names (already
  /// folded) get exclusive locks.
  void Collect(LockPlan& plan, const std::set<std::string>& written) const {
    std::set<std::string> all = reads_;
    for (const auto& name : written) all.insert(FoldIdentifier(name));
    for (const auto& name : all) {
      plan.entries.emplace_back(name, written.contains(name) ||
                                          written.contains(
                                              FoldIdentifier(name)));
    }
  }

 private:
  const Database& db_;
  std::set<std::string> reads_;
  std::set<std::string> visited_views_;
};

/// Turns a lock plan back into lock requests against the live catalog.
/// Names are re-resolved here, so plans survive drop/recreate cycles.
void ApplyLockPlan(LockSet& locks, const Database& db, const LockPlan& plan) {
  for (const auto& [name, write] : plan.entries) {
    locks.Request(db.FindTable(name), write);
  }
}

// ---------------------------------------------------------------------------
// Small helpers
// ---------------------------------------------------------------------------

ResultSet RelationToResult(Relation&& rel) {
  ResultSet out;
  out.columns.reserve(rel.columns.size());
  for (const auto& binding : rel.columns) out.columns.push_back(binding.name);
  out.rows = std::move(rel.rows);
  return out;
}

Relation ResultToRelation(ResultSet&& result, const std::string& qualifier) {
  Relation rel;
  const std::string folded = FoldIdentifier(qualifier);
  rel.columns.reserve(result.columns.size());
  for (const auto& name : result.columns) {
    rel.columns.push_back({folded, FoldIdentifier(name)});
  }
  rel.rows = std::move(result.rows);
  return rel;
}

/// Renames a relation's columns from an explicit CTE column list.
void RenameColumns(Relation& rel, const std::vector<std::string>& names) {
  if (names.empty()) return;
  if (names.size() != rel.columns.size()) {
    throw AnalysisError("CTE declares " + std::to_string(names.size()) +
                        " columns but its body produces " +
                        std::to_string(rel.columns.size()));
  }
  for (size_t i = 0; i < names.size(); ++i) {
    rel.columns[i].name = FoldIdentifier(names[i]);
  }
}

/// Copies a relation, re-qualifying its columns under `alias` (how a CTE or
/// view becomes visible in a FROM clause).
Relation BindAs(const Relation& rel, const std::string& alias) {
  Relation out;
  const std::string folded = FoldIdentifier(alias);
  out.columns.reserve(rel.columns.size());
  for (const auto& binding : rel.columns) {
    out.columns.push_back({folded, binding.name});
  }
  out.rows = rel.rows;
  return out;
}

std::string OutputName(const sql::SelectItem& item, size_t index) {
  if (!item.alias.empty()) return FoldIdentifier(item.alias);
  if (item.expr->kind == sql::ExprKind::kColumnRef) {
    return FoldIdentifier(item.expr->column);
  }
  return "col" + std::to_string(index + 1);
}

// Hashing / comparison for grouping keys and DISTINCT.
struct KeyHash {
  size_t operator()(const Row& key) const noexcept {
    size_t h = 0x9E3779B97F4A7C15ULL;
    for (const Value& v : key) h = h * 31 + v.Hash();
    return h;
  }
};
struct KeyEq {
  bool operator()(const Row& a, const Row& b) const noexcept {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!Value::KeyEquals(a[i], b[i])) return false;
    }
    return true;
  }
};
struct KeyLess {
  bool operator()(const Row& a, const Row& b) const noexcept {
    const size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i) {
      const int c = Value::Compare(a[i], b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  }
};

/// Splits a predicate into its top-level AND conjuncts.
void SplitConjuncts(const sql::Expr& expr, std::vector<const sql::Expr*>& out) {
  if (expr.kind == sql::ExprKind::kBinary &&
      expr.binary_op == sql::BinaryOp::kAnd) {
    SplitConjuncts(*expr.left, out);
    SplitConjuncts(*expr.right, out);
    return;
  }
  out.push_back(&expr);
}

/// SQL join-key equality: NULL never matches anything.
bool JoinKeyEquals(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return false;
  return Value::Compare(a, b) == 0;
}

struct EquiPair {
  int left_index = -1;   // column index in the left relation
  int right_index = -1;  // column index in the right relation
};

/// Classifies ON-clause conjuncts into equi-join pairs vs residual
/// predicates that must run on the combined row.
void ClassifyJoinCondition(const sql::Expr* on,
                           const std::vector<ColumnBinding>& left,
                           const std::vector<ColumnBinding>& right,
                           std::vector<EquiPair>& equi,
                           std::vector<const sql::Expr*>& residual) {
  if (on == nullptr) return;
  std::vector<const sql::Expr*> conjuncts;
  SplitConjuncts(*on, conjuncts);
  for (const sql::Expr* conjunct : conjuncts) {
    if (conjunct->kind == sql::ExprKind::kBinary &&
        conjunct->binary_op == sql::BinaryOp::kEq &&
        conjunct->left->kind == sql::ExprKind::kColumnRef &&
        conjunct->right->kind == sql::ExprKind::kColumnRef) {
      const sql::Expr& a = *conjunct->left;
      const sql::Expr& b = *conjunct->right;
      const int al = TryResolveColumn(left, a.qualifier, a.column);
      const int br = TryResolveColumn(right, b.qualifier, b.column);
      if (al >= 0 && br >= 0) {
        equi.push_back({al, br});
        continue;
      }
      const int bl = TryResolveColumn(left, b.qualifier, b.column);
      const int ar = TryResolveColumn(right, a.qualifier, a.column);
      if (bl >= 0 && ar >= 0) {
        equi.push_back({bl, ar});
        continue;
      }
    }
    residual.push_back(conjunct);
  }
}

bool ResidualHolds(const std::vector<const sql::Expr*>& residual,
                   const EvalContext& ctx) {
  for (const sql::Expr* predicate : residual) {
    if (!Truthy(Evaluate(*predicate, ctx))) return false;
  }
  return true;
}

// --- ORDER BY resolution ----------------------------------------------
//
// SQL resolves ORDER BY names against the SELECT output first and the
// FROM input second ("SELECT id AS node ... ORDER BY id" sorts by the
// input column). We rewrite each column reference in the order keys into
// a positional reference against a synthetic combined binding list
// [__out.c0.., __in.c0..] so one Evaluate() call per row suffices.
// Aggregate sub-expressions are left untouched so they keep matching the
// collected aggregate list structurally.

sql::ExprPtr RewriteOrderExpr(const sql::Expr& expr,
                              const std::vector<ColumnBinding>& output,
                              const std::vector<ColumnBinding>& input) {
  if (expr.kind == sql::ExprKind::kAggregate) return expr.Clone();
  if (expr.kind == sql::ExprKind::kColumnRef) {
    int index = expr.qualifier.empty()
                    ? TryResolveColumn(output, "", expr.column)
                    : -1;
    if (index >= 0) {
      return sql::MakeColumnRef("__out", "c" + std::to_string(index));
    }
    index = TryResolveColumn(input, expr.qualifier, expr.column);
    if (index >= 0) {
      return sql::MakeColumnRef("__in", "c" + std::to_string(index));
    }
    throw AnalysisError("unknown ORDER BY column '" +
                        (expr.qualifier.empty()
                             ? expr.column
                             : expr.qualifier + "." + expr.column) +
                        "'");
  }
  auto out = expr.Clone();
  // Rewrite children in place (Clone gave us a deep copy to mutate).
  const auto rewrite_child = [&](sql::ExprPtr& child) {
    if (child) child = RewriteOrderExpr(*child, output, input);
  };
  rewrite_child(out->left);
  rewrite_child(out->right);
  for (auto& arg : out->args) arg = RewriteOrderExpr(*arg, output, input);
  rewrite_child(out->case_operand);
  for (auto& when : out->whens) {
    when.condition = RewriteOrderExpr(*when.condition, output, input);
    when.result = RewriteOrderExpr(*when.result, output, input);
  }
  rewrite_child(out->else_expr);
  return out;
}

std::vector<ColumnBinding> CombinedOrderBindings(size_t output_width,
                                                 size_t input_width) {
  std::vector<ColumnBinding> combined;
  combined.reserve(output_width + input_width);
  for (size_t i = 0; i < output_width; ++i) {
    combined.push_back({"__out", "c" + std::to_string(i)});
  }
  for (size_t i = 0; i < input_width; ++i) {
    combined.push_back({"__in", "c" + std::to_string(i)});
  }
  return combined;
}

Row ConcatRows(const Row& left, const Row& right) {
  Row out;
  out.reserve(left.size() + right.size());
  out.insert(out.end(), left.begin(), left.end());
  out.insert(out.end(), right.begin(), right.end());
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// SELECT pipeline
// ---------------------------------------------------------------------------

Relation Executor::ScanTable(const Table& table, const std::string& alias) {
  Relation rel;
  const std::string folded = FoldIdentifier(alias);
  rel.columns.reserve(table.schema().column_count());
  for (const auto& column : table.schema().columns()) {
    rel.columns.push_back({folded, column.name});
  }
  rel.rows.reserve(table.live_row_count());
  for (size_t row_id = 0; row_id < table.slot_count(); ++row_id) {
    if (table.IsLive(row_id)) rel.rows.push_back(table.At(row_id));
  }
  rows_examined_ += rel.rows.size();
  return rel;
}

Relation Executor::EvalTableRef(const sql::TableRef& ref, ExecContext& ctx) {
  switch (ref.kind) {
    case sql::TableRefKind::kBase: {
      const std::string name = FoldIdentifier(ref.table_name);
      const auto cte = ctx.cte_bindings.find(name);
      if (cte != ctx.cte_bindings.end()) {
        return BindAs(*cte->second, ref.alias);
      }
      if (const auto view = db_.FindView(name)) {
        ExecContext view_ctx;  // views cannot see the caller's CTEs
        ResultSet result = EvalSelect(*view, view_ctx);
        return ResultToRelation(std::move(result), ref.alias);
      }
      const auto table = db_.FindTable(name);
      if (!table) {
        throw ExecutionError("relation '" + ref.table_name +
                             "' does not exist");
      }
      return ScanTable(*table, ref.alias);
    }
    case sql::TableRefKind::kSubquery: {
      ResultSet result = EvalSelect(*ref.subquery, ctx);
      return ResultToRelation(std::move(result), ref.alias);
    }
    case sql::TableRefKind::kJoin:
      return EvalJoin(ref, ctx);
  }
  throw UsageError("unknown table reference kind");
}

Relation Executor::EvalJoin(const sql::TableRef& join, ExecContext& ctx) {
  Relation left = EvalTableRef(*join.left, ctx);
  const sql::TableRef& right_ref = *join.right;

  // When the right side is a plain base table (not a CTE or view) we keep
  // the Table handle so the MySQL-style profile can do index nested loops.
  std::shared_ptr<Table> right_table;
  if (right_ref.kind == sql::TableRefKind::kBase) {
    const std::string name = FoldIdentifier(right_ref.table_name);
    if (!ctx.cte_bindings.contains(name) && !db_.HasView(name)) {
      right_table = db_.FindTable(name);
      if (!right_table) {
        throw ExecutionError("relation '" + right_ref.table_name +
                             "' does not exist");
      }
    }
  }

  Relation right;
  std::vector<ColumnBinding> right_columns;
  bool right_materialized = false;
  if (right_table) {
    const std::string alias = FoldIdentifier(right_ref.alias);
    for (const auto& column : right_table->schema().columns()) {
      right_columns.push_back({alias, column.name});
    }
  } else {
    right = EvalTableRef(right_ref, ctx);
    right_columns = right.columns;
    right_materialized = true;
  }

  Relation out;
  out.columns.reserve(left.columns.size() + right_columns.size());
  out.columns.insert(out.columns.end(), left.columns.begin(),
                     left.columns.end());
  out.columns.insert(out.columns.end(), right_columns.begin(),
                     right_columns.end());

  const auto materialize_right = [&] {
    if (!right_materialized) {
      right = ScanTable(*right_table, right_ref.alias);
      right_materialized = true;
    }
  };

  if (join.join_kind == sql::JoinKind::kCross) {
    materialize_right();
    out.rows.reserve(left.rows.size() * right.rows.size());
    for (const Row& l : left.rows) {
      for (const Row& r : right.rows) out.rows.push_back(ConcatRows(l, r));
    }
    return out;
  }

  std::vector<EquiPair> equi;
  std::vector<const sql::Expr*> residual;
  ClassifyJoinCondition(join.on_condition.get(), left.columns, right_columns,
                        equi, residual);

  std::unordered_map<const sql::Expr*, int> cache;
  const size_t right_width = right_columns.size();
  const bool left_join = join.join_kind == sql::JoinKind::kLeft;

  const auto emit_unmatched = [&](const Row& l) {
    if (!left_join) return;
    Row padded = l;
    padded.resize(l.size() + right_width);  // default-constructed = NULL
    out.rows.push_back(std::move(padded));
  };
  const auto match_residual = [&](const Row& combined) {
    if (residual.empty()) return true;
    EvalContext ec{&out.columns, &combined, nullptr, nullptr, &cache};
    return ResidualHolds(residual, ec);
  };

  // --- strategy selection per engine profile --------------------------
  const JoinAlgorithm algorithm = db_.profile().join_algorithm;

  // Index nested loop: available when the right side is a base table with
  // an index on one of the equi-join columns (MySQL 5.7's only fast path).
  int inl_pair = -1;
  if (right_table &&
      (algorithm == JoinAlgorithm::kNestedLoop ||
       algorithm == JoinAlgorithm::kNestedLoopOrHash)) {
    for (size_t i = 0; i < equi.size(); ++i) {
      const std::string& column =
          right_table->schema().columns()[equi[i].right_index].name;
      if (right_table->HasIndexOn(column)) {
        inl_pair = static_cast<int>(i);
        break;
      }
    }
  }

  if (inl_pair >= 0) {
    const EquiPair& pair = equi[static_cast<size_t>(inl_pair)];
    const std::string& column =
        right_table->schema().columns()[pair.right_index].name;
    for (const Row& l : left.rows) {
      const Value& key = l[pair.left_index];
      bool matched = false;
      if (!key.is_null()) {
        for (const size_t row_id : right_table->IndexLookup(column, key)) {
          ++rows_examined_;
          const Row& r = right_table->At(row_id);
          bool keys_ok = true;
          for (size_t i = 0; i < equi.size(); ++i) {
            if (static_cast<int>(i) == inl_pair) continue;
            if (!JoinKeyEquals(l[equi[i].left_index], r[equi[i].right_index])) {
              keys_ok = false;
              break;
            }
          }
          if (!keys_ok) continue;
          Row combined = ConcatRows(l, r);
          if (!match_residual(combined)) continue;
          out.rows.push_back(std::move(combined));
          matched = true;
        }
      }
      if (!matched) emit_unmatched(l);
    }
    return out;
  }

  const bool use_hash =
      !equi.empty() && (algorithm == JoinAlgorithm::kHash ||
                        algorithm == JoinAlgorithm::kNestedLoopOrHash);

  materialize_right();

  if (use_hash) {
    // Build on the right side, probe from the left.
    std::unordered_map<Row, std::vector<size_t>, KeyHash, KeyEq> built;
    built.reserve(right.rows.size());
    for (size_t i = 0; i < right.rows.size(); ++i) {
      Row key;
      key.reserve(equi.size());
      bool has_null = false;
      for (const EquiPair& pair : equi) {
        const Value& v = right.rows[i][pair.right_index];
        if (v.is_null()) {
          has_null = true;
          break;
        }
        key.push_back(v);
      }
      if (!has_null) built[std::move(key)].push_back(i);
    }
    for (const Row& l : left.rows) {
      Row key;
      key.reserve(equi.size());
      bool has_null = false;
      for (const EquiPair& pair : equi) {
        const Value& v = l[pair.left_index];
        if (v.is_null()) {
          has_null = true;
          break;
        }
        key.push_back(v);
      }
      bool matched = false;
      if (!has_null) {
        const auto it = built.find(key);
        if (it != built.end()) {
          for (const size_t i : it->second) {
            Row combined = ConcatRows(l, right.rows[i]);
            if (!match_residual(combined)) continue;
            out.rows.push_back(std::move(combined));
            matched = true;
          }
        }
      }
      if (!matched) emit_unmatched(l);
    }
    return out;
  }

  // Plain nested loop (MySQL 5.7 with no usable index).
  for (const Row& l : left.rows) {
    bool matched = false;
    for (const Row& r : right.rows) {
      bool keys_ok = true;
      for (const EquiPair& pair : equi) {
        if (!JoinKeyEquals(l[pair.left_index], r[pair.right_index])) {
          keys_ok = false;
          break;
        }
      }
      if (!keys_ok) continue;
      Row combined = ConcatRows(l, r);
      if (!match_residual(combined)) continue;
      out.rows.push_back(std::move(combined));
      matched = true;
    }
    if (!matched) emit_unmatched(l);
  }
  return out;
}

Relation Executor::ProjectCore(const sql::SelectCore& core,
                               const Relation& input,
                               const std::vector<sql::OrderItem>* order_by,
                               std::vector<Row>* sort_keys) {
  Relation out;
  // Expand the output binding list (stars expand to input columns).
  struct ProjectionSlot {
    const sql::Expr* expr = nullptr;  // null => direct input column copy
    int input_index = -1;
  };
  std::vector<ProjectionSlot> slots;
  for (size_t i = 0; i < core.items.size(); ++i) {
    const sql::SelectItem& item = core.items[i];
    if (item.expr->kind == sql::ExprKind::kStar) {
      const std::string qualifier = FoldIdentifier(item.expr->qualifier);
      bool any = false;
      for (size_t c = 0; c < input.columns.size(); ++c) {
        if (!qualifier.empty() && input.columns[c].qualifier != qualifier) {
          continue;
        }
        slots.push_back({nullptr, static_cast<int>(c)});
        out.columns.push_back({"", input.columns[c].name});
        any = true;
      }
      if (!any && !qualifier.empty()) {
        throw AnalysisError("no table '" + item.expr->qualifier +
                            "' to expand in SELECT " + item.expr->qualifier +
                            ".*");
      }
      continue;
    }
    slots.push_back({item.expr.get(), -1});
    out.columns.push_back({"", OutputName(item, i)});
  }

  // Prepare ORDER BY machinery (output-first, input-fallback resolution).
  std::vector<sql::ExprPtr> order_exprs;
  std::vector<ColumnBinding> order_bindings;
  if (order_by != nullptr) {
    for (const auto& item : *order_by) {
      order_exprs.push_back(
          RewriteOrderExpr(*item.expr, out.columns, input.columns));
    }
    order_bindings =
        CombinedOrderBindings(out.columns.size(), input.columns.size());
  }

  std::unordered_map<const sql::Expr*, int> cache;
  std::unordered_map<const sql::Expr*, int> order_cache;
  out.rows.reserve(input.rows.size());
  for (const Row& row : input.rows) {
    Row projected;
    projected.reserve(slots.size());
    EvalContext ec{&input.columns, &row, nullptr, nullptr, &cache};
    for (const ProjectionSlot& slot : slots) {
      if (slot.expr == nullptr) {
        projected.push_back(row[slot.input_index]);
      } else {
        projected.push_back(Evaluate(*slot.expr, ec));
      }
    }
    if (order_by != nullptr) {
      Row combined = ConcatRows(projected, row);
      EvalContext oc{&order_bindings, &combined, nullptr, nullptr,
                     &order_cache};
      Row key;
      key.reserve(order_exprs.size());
      for (const auto& expr : order_exprs) {
        key.push_back(Evaluate(*expr, oc));
      }
      sort_keys->push_back(std::move(key));
    }
    out.rows.push_back(std::move(projected));
  }
  return out;
}

Relation Executor::AggregateCore(const sql::SelectCore& core,
                                 const Relation& input,
                                 const std::vector<sql::OrderItem>* order_by,
                                 std::vector<Row>* sort_keys) {
  // Aggregate sub-expressions across the SELECT list, HAVING, and ORDER BY.
  std::vector<const sql::Expr*> agg_exprs;
  for (const auto& item : core.items) CollectAggregates(*item.expr, agg_exprs);
  if (core.having) CollectAggregates(*core.having, agg_exprs);
  if (order_by != nullptr) {
    for (const auto& item : *order_by) {
      CollectAggregates(*item.expr, agg_exprs);
    }
  }

  for (const auto& item : core.items) {
    if (item.expr->kind == sql::ExprKind::kStar) {
      throw AnalysisError("'*' cannot be mixed with aggregation");
    }
  }

  struct Group {
    Row representative;
    std::vector<Accumulator> accumulators;
  };

  const auto new_group = [&](const Row& row) {
    Group group;
    group.representative = row;
    group.accumulators.reserve(agg_exprs.size());
    for (const sql::Expr* agg : agg_exprs) {
      group.accumulators.emplace_back(agg->agg_func, agg->agg_distinct);
    }
    return group;
  };

  std::unordered_map<const sql::Expr*, int> cache;
  const auto feed = [&](Group& group, const Row& row) {
    EvalContext ec{&input.columns, &row, nullptr, nullptr, &cache};
    for (size_t i = 0; i < agg_exprs.size(); ++i) {
      const sql::Expr* agg = agg_exprs[i];
      if (agg->agg_star) {
        group.accumulators[i].Add(Value(int64_t{1}));
      } else {
        group.accumulators[i].Add(Evaluate(*agg->args[0], ec));
      }
    }
  };

  // Group rows. The engine profile picks hash vs sort grouping; both are
  // correct, they just cost differently (matching postgres vs mysql).
  std::vector<Group> groups;
  if (core.group_by.empty()) {
    Row null_rep(input.columns.size());  // all-NULL representative
    groups.push_back(new_group(input.rows.empty() ? null_rep
                                                  : input.rows.front()));
    for (const Row& row : input.rows) feed(groups[0], row);
  } else {
    const auto key_of = [&](const Row& row) {
      Row key;
      key.reserve(core.group_by.size());
      EvalContext ec{&input.columns, &row, nullptr, nullptr, &cache};
      for (const auto& expr : core.group_by) {
        key.push_back(Evaluate(*expr, ec));
      }
      return key;
    };
    if (db_.profile().agg_algorithm == AggAlgorithm::kHash) {
      std::unordered_map<Row, size_t, KeyHash, KeyEq> index;
      for (const Row& row : input.rows) {
        Row key = key_of(row);
        const auto [it, inserted] =
            index.try_emplace(std::move(key), groups.size());
        if (inserted) groups.push_back(new_group(row));
        feed(groups[it->second], row);
      }
    } else {
      std::map<Row, size_t, KeyLess> index;
      for (const Row& row : input.rows) {
        Row key = key_of(row);
        const auto [it, inserted] =
            index.try_emplace(std::move(key), groups.size());
        if (inserted) groups.push_back(new_group(row));
        feed(groups[it->second], row);
      }
    }
  }

  // Project each group.
  Relation out;
  out.columns.reserve(core.items.size());
  for (size_t i = 0; i < core.items.size(); ++i) {
    out.columns.push_back({"", OutputName(core.items[i], i)});
  }

  std::vector<sql::ExprPtr> order_exprs;
  std::vector<ColumnBinding> order_bindings;
  if (order_by != nullptr) {
    for (const auto& item : *order_by) {
      order_exprs.push_back(
          RewriteOrderExpr(*item.expr, out.columns, input.columns));
    }
    order_bindings =
        CombinedOrderBindings(out.columns.size(), input.columns.size());
  }

  std::unordered_map<const sql::Expr*, int> project_cache;
  std::unordered_map<const sql::Expr*, int> order_cache;
  for (const Group& group : groups) {
    std::vector<Value> agg_values;
    agg_values.reserve(group.accumulators.size());
    for (const Accumulator& acc : group.accumulators) {
      agg_values.push_back(acc.Result());
    }
    EvalContext ec{&input.columns, &group.representative, &agg_exprs,
                   &agg_values, &project_cache};
    if (core.having && !Truthy(Evaluate(*core.having, ec))) continue;
    Row projected;
    projected.reserve(core.items.size());
    for (const auto& item : core.items) {
      projected.push_back(Evaluate(*item.expr, ec));
    }
    if (order_by != nullptr) {
      Row combined = ConcatRows(projected, group.representative);
      EvalContext oc{&order_bindings, &combined, &agg_exprs, &agg_values,
                     &order_cache};
      Row key;
      key.reserve(order_exprs.size());
      for (const auto& expr : order_exprs) {
        key.push_back(Evaluate(*expr, oc));
      }
      sort_keys->push_back(std::move(key));
    }
    out.rows.push_back(std::move(projected));
  }
  return out;
}

Relation Executor::EvalCore(const sql::SelectCore& core, ExecContext& ctx,
                            const std::vector<sql::OrderItem>* order_by,
                            std::vector<Row>* sort_keys) {
  Relation input;
  bool scanned_via_index = false;
  if (core.from && core.where &&
      core.from->kind == sql::TableRefKind::kBase) {
    // Index-scan pushdown: `FROM t WHERE col = <literal> [AND ...]` with
    // an index on col reads only the matching rows ("indexes ensure that
    // unnecessary scans will be avoided", paper SV-C).
    const std::string name = FoldIdentifier(core.from->table_name);
    if (!ctx.cte_bindings.contains(name) && !db_.HasView(name)) {
      if (const auto table = db_.FindTable(name)) {
        std::vector<const sql::Expr*> conjuncts;
        SplitConjuncts(*core.where, conjuncts);
        for (const sql::Expr* conjunct : conjuncts) {
          if (conjunct->kind != sql::ExprKind::kBinary ||
              conjunct->binary_op != sql::BinaryOp::kEq) {
            continue;
          }
          const sql::Expr* column = conjunct->left.get();
          const sql::Expr* literal = conjunct->right.get();
          if (column->kind != sql::ExprKind::kColumnRef) {
            std::swap(column, literal);
          }
          if (column->kind != sql::ExprKind::kColumnRef ||
              literal->kind != sql::ExprKind::kLiteral ||
              literal->literal.is_null()) {
            continue;
          }
          const std::string alias = FoldIdentifier(core.from->alias);
          if (!column->qualifier.empty() &&
              FoldIdentifier(column->qualifier) != alias) {
            continue;
          }
          const std::string col = FoldIdentifier(column->column);
          if (table->schema().FindColumn(col) < 0 ||
              !table->HasIndexOn(col)) {
            continue;
          }
          input.columns.reserve(table->schema().column_count());
          for (const auto& def : table->schema().columns()) {
            input.columns.push_back({alias, def.name});
          }
          for (const size_t row_id :
               table->IndexLookup(col, literal->literal)) {
            input.rows.push_back(table->At(row_id));
          }
          rows_examined_ += input.rows.size();
          scanned_via_index = true;
          break;
        }
      }
    }
  }
  if (!scanned_via_index) {
    if (core.from) {
      input = EvalTableRef(*core.from, ctx);
    } else {
      input.rows.emplace_back();  // FROM-less SELECT produces one row
    }
  }

  if (core.where) {
    std::unordered_map<const sql::Expr*, int> cache;
    std::vector<Row> kept;
    kept.reserve(input.rows.size());
    for (Row& row : input.rows) {
      EvalContext ec{&input.columns, &row, nullptr, nullptr, &cache};
      if (Truthy(Evaluate(*core.where, ec))) kept.push_back(std::move(row));
    }
    input.rows = std::move(kept);
  }

  bool aggregate_mode = !core.group_by.empty() || core.having != nullptr;
  if (!aggregate_mode) {
    for (const auto& item : core.items) {
      if (ContainsAggregate(*item.expr)) {
        aggregate_mode = true;
        break;
      }
    }
  }

  Relation out = aggregate_mode
                     ? AggregateCore(core, input, order_by, sort_keys)
                     : ProjectCore(core, input, order_by, sort_keys);

  if (core.distinct) {
    std::unordered_set<Row, KeyHash, KeyEq> seen;
    std::vector<Row> unique;
    std::vector<Row> unique_keys;
    unique.reserve(out.rows.size());
    for (size_t i = 0; i < out.rows.size(); ++i) {
      if (seen.insert(out.rows[i]).second) {
        unique.push_back(std::move(out.rows[i]));
        if (sort_keys != nullptr) {
          unique_keys.push_back(std::move((*sort_keys)[i]));
        }
      }
    }
    out.rows = std::move(unique);
    if (sort_keys != nullptr) *sort_keys = std::move(unique_keys);
  }
  return out;
}

ResultSet Executor::EvalSelect(const sql::SelectStmt& stmt, ExecContext& ctx) {
  const bool single_core_sort =
      stmt.cores.size() == 1 && !stmt.order_by.empty();
  std::vector<Row> sort_keys;
  Relation combined =
      EvalCore(stmt.cores[0], ctx, single_core_sort ? &stmt.order_by : nullptr,
               single_core_sort ? &sort_keys : nullptr);
  for (size_t i = 1; i < stmt.cores.size(); ++i) {
    Relation next = EvalCore(stmt.cores[i], ctx);
    if (next.columns.size() != combined.columns.size()) {
      throw AnalysisError("UNION arms have different column counts (" +
                          std::to_string(combined.columns.size()) + " vs " +
                          std::to_string(next.columns.size()) + ")");
    }
    combined.rows.insert(combined.rows.end(),
                         std::make_move_iterator(next.rows.begin()),
                         std::make_move_iterator(next.rows.end()));
    if (stmt.set_ops[i - 1] == sql::SetOp::kUnion) {
      std::unordered_set<Row, KeyHash, KeyEq> seen;
      std::vector<Row> unique;
      unique.reserve(combined.rows.size());
      for (Row& row : combined.rows) {
        if (seen.insert(row).second) unique.push_back(std::move(row));
      }
      combined.rows = std::move(unique);
    }
  }

  if (!stmt.order_by.empty()) {
    if (!single_core_sort) {
      // UNION result: ORDER BY resolves against the output columns only.
      std::vector<sql::ExprPtr> order_exprs;
      for (const auto& item : stmt.order_by) {
        order_exprs.push_back(
            RewriteOrderExpr(*item.expr, combined.columns, {}));
      }
      const auto bindings =
          CombinedOrderBindings(combined.columns.size(), 0);
      std::unordered_map<const sql::Expr*, int> cache;
      sort_keys.clear();
      sort_keys.reserve(combined.rows.size());
      for (const Row& row : combined.rows) {
        EvalContext ec{&bindings, &row, nullptr, nullptr, &cache};
        Row key;
        key.reserve(order_exprs.size());
        for (const auto& expr : order_exprs) {
          key.push_back(Evaluate(*expr, ec));
        }
        sort_keys.push_back(std::move(key));
      }
    }
    std::vector<size_t> order(combined.rows.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) {
                       for (size_t i = 0; i < stmt.order_by.size(); ++i) {
                         const int c = Value::Compare(sort_keys[a][i],
                                                      sort_keys[b][i]);
                         if (c != 0) {
                           return stmt.order_by[i].ascending ? c < 0 : c > 0;
                         }
                       }
                       return a < b;
                     });
    std::vector<Row> sorted;
    sorted.reserve(combined.rows.size());
    for (const size_t index : order) {
      sorted.push_back(std::move(combined.rows[index]));
    }
    combined.rows = std::move(sorted);
  }

  if (stmt.offset) {
    const auto skip = std::min(combined.rows.size(),
                               static_cast<size_t>(*stmt.offset));
    combined.rows.erase(combined.rows.begin(),
                        combined.rows.begin() + static_cast<ptrdiff_t>(skip));
  }
  if (stmt.limit && combined.rows.size() > static_cast<size_t>(*stmt.limit)) {
    combined.rows.resize(static_cast<size_t>(*stmt.limit));
  }
  return RelationToResult(std::move(combined));
}

// ---------------------------------------------------------------------------
// WITH (plain and recursive CTEs; iterative rejected — SQLoop's job)
// ---------------------------------------------------------------------------

ResultSet Executor::ExecWith(const sql::Statement& stmt, ExecContext& ctx) {
  const sql::WithClause& with = stmt.with;
  const std::string name = FoldIdentifier(with.name);

  switch (with.kind) {
    case sql::CteKind::kPlain: {
      Relation body =
          ResultToRelation(EvalSelect(*with.seed, ctx), /*qualifier=*/"");
      RenameColumns(body, with.columns);
      ctx.cte_bindings[name] = &body;
      ResultSet result = EvalSelect(*with.final_query, ctx);
      ctx.cte_bindings.erase(name);
      return result;
    }
    case sql::CteKind::kRecursive: {
      if (!db_.profile().supports_recursive_cte) {
        throw ExecutionError(
            "this engine version does not implement recursive CTE "
            "evaluation (use the SQLoop middleware)");
      }
      // Semi-naive evaluation (paper §II-A): the recursive member sees only
      // the delta of the previous round, and R accumulates all rows.
      Relation all = ResultToRelation(EvalSelect(*with.seed, ctx), "");
      RenameColumns(all, with.columns);
      Relation working = all;

      for (int64_t round = 0;; ++round) {
        if (round >= kMaxRecursions) {
          throw ExecutionError("recursive CTE '" + with.name +
                               "' exceeded the recursion limit");
        }
        if (working.rows.empty()) break;
        ctx.cte_bindings[name] = &working;
        Relation delta = ResultToRelation(EvalSelect(*with.step, ctx), "");
        ctx.cte_bindings.erase(name);
        if (delta.columns.size() != all.columns.size()) {
          throw AnalysisError(
              "recursive member of '" + with.name +
              "' produces a different column count than the seed");
        }
        delta.columns = all.columns;
        all.rows.insert(all.rows.end(), delta.rows.begin(), delta.rows.end());
        working = std::move(delta);
      }

      ctx.cte_bindings[name] = &all;
      ResultSet result = EvalSelect(*with.final_query, ctx);
      ctx.cte_bindings.erase(name);
      return result;
    }
    case sql::CteKind::kIterative:
      throw ExecutionError(
          "iterative CTEs are a SQLoop extension; submit this query "
          "through the SQLoop middleware, not directly to the engine");
  }
  throw UsageError("unknown CTE kind");
}

// ---------------------------------------------------------------------------
// DDL
// ---------------------------------------------------------------------------

void Executor::CheckDialect(const sql::Statement& stmt) const {
  const EngineProfile& profile = db_.profile();
  if (!profile.strict_dialect) return;
  if (stmt.kind != sql::StatementKind::kCreateTable) return;

  if (profile.dialect == Dialect::kPostgres) {
    if (!stmt.engine_option.empty()) {
      throw ExecutionError("syntax error: ENGINE table options are not "
                           "supported by the postgres engine");
    }
    for (const auto& column : stmt.columns) {
      if (column.type_spelling == "DOUBLE") {
        throw ExecutionError("type \"DOUBLE\" does not exist in the postgres "
                             "engine; use DOUBLE PRECISION");
      }
    }
  } else if (IsMySqlFamily(profile.dialect)) {
    if (stmt.unlogged) {
      throw ExecutionError("syntax error: UNLOGGED tables are "
                           "PostgreSQL-specific; use ENGINE=MyISAM");
    }
  }
}

ResultSet Executor::ExecCreateTable(const sql::Statement& stmt) {
  CheckDialect(stmt);
  std::vector<Column> columns;
  columns.reserve(stmt.columns.size());
  for (const auto& def : stmt.columns) {
    columns.push_back({FoldIdentifier(def.name), def.type});
  }
  db_.CreateTable(stmt.table_name, Schema(std::move(columns),
                                          stmt.primary_key_index),
                  stmt.if_not_exists);
  return {};
}

// ---------------------------------------------------------------------------
// DML
// ---------------------------------------------------------------------------

void Executor::BackupForTransaction(Session* session, Table& table) {
  if (session == nullptr || !session->in_transaction_) return;
  session->backups_.try_emplace(table.name(), table.SnapshotRows());
}

ResultSet Executor::ExecInsert(const sql::Statement& stmt, Session* session) {
  const auto table = db_.FindTable(stmt.table_name);
  if (!table) {
    throw ExecutionError("table '" + stmt.table_name + "' does not exist");
  }
  const Schema& schema = table->schema();

  // Map the statement's column list (or schema order) to schema positions.
  std::vector<int> positions;
  if (stmt.insert_columns.empty()) {
    positions.resize(schema.column_count());
    for (size_t i = 0; i < positions.size(); ++i) {
      positions[i] = static_cast<int>(i);
    }
  } else {
    for (const auto& column : stmt.insert_columns) {
      const int index = schema.FindColumn(column);
      if (index < 0) {
        throw ExecutionError("no column '" + column + "' in table '" +
                             stmt.table_name + "'");
      }
      positions.push_back(index);
    }
  }

  std::vector<Row> incoming;
  if (stmt.insert_select) {
    ExecContext ctx;
    ResultSet selected = EvalSelect(*stmt.insert_select, ctx);
    incoming = std::move(selected.rows);
  } else {
    EvalContext ec;  // VALUES expressions see no input columns
    for (const auto& row_exprs : stmt.insert_rows) {
      Row row;
      row.reserve(row_exprs.size());
      for (const auto& expr : row_exprs) row.push_back(Evaluate(*expr, ec));
      incoming.push_back(std::move(row));
    }
  }

  BackupForTransaction(session, *table);
  size_t inserted = 0;
  for (Row& source : incoming) {
    if (source.size() != positions.size()) {
      throw ExecutionError("INSERT supplies " +
                           std::to_string(source.size()) + " values for " +
                           std::to_string(positions.size()) + " columns");
    }
    Row full(schema.column_count());
    for (size_t i = 0; i < positions.size(); ++i) {
      full[positions[i]] = std::move(source[i]);
    }
    table->Insert(std::move(full));
    ++inserted;
  }
  ResultSet result;
  result.affected_rows = inserted;
  return result;
}

ResultSet Executor::ExecUpdate(const sql::Statement& stmt, Session* session,
                               ExecContext& ctx) {
  const auto table = db_.FindTable(stmt.table_name);
  if (!table) {
    throw ExecutionError("table '" + stmt.table_name + "' does not exist");
  }
  const Schema& schema = table->schema();
  const std::string alias = FoldIdentifier(
      stmt.update_alias.empty() ? stmt.table_name : stmt.update_alias);

  std::vector<ColumnBinding> target_columns;
  target_columns.reserve(schema.column_count());
  for (const auto& column : schema.columns()) {
    target_columns.push_back({alias, column.name});
  }

  // Resolve SET targets once.
  std::vector<int> set_positions;
  set_positions.reserve(stmt.set_items.size());
  for (const auto& [column, expr] : stmt.set_items) {
    const int index = schema.FindColumn(column);
    if (index < 0) {
      throw ExecutionError("no column '" + column + "' in table '" +
                           stmt.table_name + "'");
    }
    set_positions.push_back(index);
  }

  std::vector<std::pair<size_t, Row>> pending;  // (row id, new row)
  std::unordered_map<const sql::Expr*, int> cache;

  if (stmt.update_from) {
    // UPDATE ... FROM <source>: match each target row against the source,
    // hash-accelerated on the first target=source equi conjunct.
    Relation source = EvalTableRef(*stmt.update_from, ctx);

    std::vector<ColumnBinding> combined = target_columns;
    combined.insert(combined.end(), source.columns.begin(),
                    source.columns.end());

    std::vector<const sql::Expr*> conjuncts;
    if (stmt.where) SplitConjuncts(*stmt.where, conjuncts);

    int target_key = -1;
    int source_key = -1;
    std::vector<const sql::Expr*> residual;
    for (const sql::Expr* conjunct : conjuncts) {
      if (target_key < 0 && conjunct->kind == sql::ExprKind::kBinary &&
          conjunct->binary_op == sql::BinaryOp::kEq &&
          conjunct->left->kind == sql::ExprKind::kColumnRef &&
          conjunct->right->kind == sql::ExprKind::kColumnRef) {
        const sql::Expr& a = *conjunct->left;
        const sql::Expr& b = *conjunct->right;
        const int at = TryResolveColumn(target_columns, a.qualifier, a.column);
        const int bs = TryResolveColumn(source.columns, b.qualifier, b.column);
        if (at >= 0 && bs >= 0) {
          target_key = at;
          source_key = bs;
          continue;
        }
        const int bt = TryResolveColumn(target_columns, b.qualifier, b.column);
        const int as = TryResolveColumn(source.columns, a.qualifier, a.column);
        if (bt >= 0 && as >= 0) {
          target_key = bt;
          source_key = as;
          continue;
        }
      }
      residual.push_back(conjunct);
    }

    std::unordered_multimap<Value, size_t, ValueKeyHash, ValueKeyEq> by_key;
    if (target_key >= 0) {
      by_key.reserve(source.rows.size());
      for (size_t i = 0; i < source.rows.size(); ++i) {
        const Value& key = source.rows[i][source_key];
        if (!key.is_null()) by_key.emplace(key, i);
      }
    }

    for (size_t row_id = 0; row_id < table->slot_count(); ++row_id) {
      if (!table->IsLive(row_id)) continue;
      ++rows_examined_;
      const Row& current = table->At(row_id);

      const auto try_match = [&](const Row& source_row) -> bool {
        Row combined_row = ConcatRows(current, source_row);
        EvalContext ec{&combined, &combined_row, nullptr, nullptr, &cache};
        if (!ResidualHolds(residual, ec)) return false;
        Row updated = current;
        for (size_t i = 0; i < stmt.set_items.size(); ++i) {
          updated[set_positions[i]] =
              Evaluate(*stmt.set_items[i].second, ec);
        }
        schema.CoerceRow(updated);
        bool changed = false;
        for (size_t i = 0; i < updated.size(); ++i) {
          if (!Value::KeyEquals(updated[i], current[i])) {
            changed = true;
            break;
          }
        }
        if (changed) pending.emplace_back(row_id, std::move(updated));
        return true;
      };

      if (target_key >= 0) {
        const Value& key = current[target_key];
        if (key.is_null()) continue;
        const auto [begin, end] = by_key.equal_range(key);
        for (auto it = begin; it != end; ++it) {
          if (try_match(source.rows[it->second])) break;  // first match wins
        }
      } else {
        for (const Row& source_row : source.rows) {
          if (try_match(source_row)) break;
        }
      }
    }
  } else {
    for (size_t row_id = 0; row_id < table->slot_count(); ++row_id) {
      if (!table->IsLive(row_id)) continue;
      ++rows_examined_;
      const Row& current = table->At(row_id);
      EvalContext ec{&target_columns, &current, nullptr, nullptr, &cache};
      if (stmt.where && !Truthy(Evaluate(*stmt.where, ec))) continue;
      Row updated = current;
      for (size_t i = 0; i < stmt.set_items.size(); ++i) {
        updated[set_positions[i]] = Evaluate(*stmt.set_items[i].second, ec);
      }
      schema.CoerceRow(updated);
      bool changed = false;
      for (size_t i = 0; i < updated.size(); ++i) {
        if (!Value::KeyEquals(updated[i], current[i])) {
          changed = true;
          break;
        }
      }
      if (changed) pending.emplace_back(row_id, std::move(updated));
    }
  }

  BackupForTransaction(session, *table);
  for (auto& [row_id, row] : pending) {
    table->Update(row_id, std::move(row));
  }
  ResultSet result;
  result.affected_rows = pending.size();
  return result;
}

ResultSet Executor::ExecDelete(const sql::Statement& stmt, Session* session) {
  const auto table = db_.FindTable(stmt.table_name);
  if (!table) {
    throw ExecutionError("table '" + stmt.table_name + "' does not exist");
  }
  const std::string alias = FoldIdentifier(stmt.table_name);
  std::vector<ColumnBinding> columns;
  for (const auto& column : table->schema().columns()) {
    columns.push_back({alias, column.name});
  }
  std::vector<size_t> doomed;
  std::unordered_map<const sql::Expr*, int> cache;
  for (size_t row_id = 0; row_id < table->slot_count(); ++row_id) {
    if (!table->IsLive(row_id)) continue;
    ++rows_examined_;
    if (stmt.where) {
      const Row& row = table->At(row_id);
      EvalContext ec{&columns, &row, nullptr, nullptr, &cache};
      if (!Truthy(Evaluate(*stmt.where, ec))) continue;
    }
    doomed.push_back(row_id);
  }
  BackupForTransaction(session, *table);
  for (const size_t row_id : doomed) table->Delete(row_id);
  ResultSet result;
  result.affected_rows = doomed.size();
  return result;
}

// ---------------------------------------------------------------------------
// Transactions
// ---------------------------------------------------------------------------

ResultSet Executor::ExecTransaction(const sql::Statement& stmt,
                                    Session* session) {
  if (session == nullptr) {
    throw UsageError("transaction statements require a session");
  }
  switch (stmt.kind) {
    case sql::StatementKind::kBegin:
      if (session->in_transaction_) {
        throw ExecutionError("a transaction is already in progress");
      }
      session->in_transaction_ = true;
      session->backups_.clear();
      return {};
    case sql::StatementKind::kCommit:
      session->in_transaction_ = false;
      session->backups_.clear();
      return {};
    case sql::StatementKind::kRollback: {
      for (auto& [name, rows] : session->backups_) {
        const auto table = db_.FindTable(name);
        if (!table) continue;  // dropped mid-transaction; nothing to restore
        const std::scoped_lock lock(table->lock());
        table->RestoreRows(rows);
      }
      session->in_transaction_ = false;
      session->backups_.clear();
      return {};
    }
    default:
      throw UsageError("not a transaction statement");
  }
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

ResultSet Executor::Execute(const sql::Statement& stmt, Session* session) {
  return ExecuteWithPlan(stmt, BuildLockPlan(stmt), session);
}

ResultSet Executor::ExecuteWithPlan(const sql::Statement& stmt,
                                    const LockPlan& plan, Session* session) {
  rows_examined_ = 0;
  ResultSet result = ExecuteInternal(stmt, plan, session);
  result.rows_examined = rows_examined_;
  SQLOOP_COUNT(recorder_, "minidb.rows_examined", rows_examined_);
  return result;
}

LockPlan Executor::BuildLockPlan(const sql::Statement& stmt) const {
  LockPlan plan;
  switch (stmt.kind) {
    case sql::StatementKind::kSelect: {
      TableCollector collector(db_);
      collector.FromSelect(*stmt.select, {});
      collector.Collect(plan, {});
      break;
    }
    case sql::StatementKind::kWith: {
      TableCollector collector(db_);
      const std::set<std::string> ctes = {FoldIdentifier(stmt.with.name)};
      collector.FromSelect(*stmt.with.seed, ctes);
      if (stmt.with.step) collector.FromSelect(*stmt.with.step, ctes);
      if (stmt.with.termination.probe) {
        collector.FromSelect(*stmt.with.termination.probe, ctes);
      }
      collector.FromSelect(*stmt.with.final_query, ctes);
      collector.Collect(plan, {});
      break;
    }
    case sql::StatementKind::kInsert: {
      TableCollector collector(db_);
      if (stmt.insert_select) collector.FromSelect(*stmt.insert_select, {});
      collector.Collect(plan, {FoldIdentifier(stmt.table_name)});
      break;
    }
    case sql::StatementKind::kUpdate: {
      TableCollector collector(db_);
      if (stmt.update_from) collector.FromTableRef(*stmt.update_from, {});
      collector.Collect(plan, {FoldIdentifier(stmt.table_name)});
      break;
    }
    case sql::StatementKind::kDelete:
      plan.entries.emplace_back(FoldIdentifier(stmt.table_name),
                                /*write=*/true);
      break;
    default:
      // DDL, TRUNCATE and transaction statements lock inside their own
      // execution paths; nothing to precompute.
      break;
  }
  return plan;
}

ResultSet Executor::ExecuteInternal(const sql::Statement& stmt,
                                    const LockPlan& plan, Session* session) {
  ExecContext ctx;
  switch (stmt.kind) {
    case sql::StatementKind::kSelect: {
      LockSet locks(recorder_);
      ApplyLockPlan(locks, db_, plan);
      locks.AcquireAll();
      return EvalSelect(*stmt.select, ctx);
    }
    case sql::StatementKind::kWith: {
      LockSet locks(recorder_);
      ApplyLockPlan(locks, db_, plan);
      locks.AcquireAll();
      return ExecWith(stmt, ctx);
    }
    case sql::StatementKind::kCreateTable:
      return ExecCreateTable(stmt);
    case sql::StatementKind::kDropTable:
      db_.DropTable(stmt.table_name, stmt.if_exists);
      return {};
    case sql::StatementKind::kCreateIndex: {
      const auto table = db_.FindTable(stmt.table_name);
      if (!table) {
        throw ExecutionError("table '" + stmt.table_name +
                             "' does not exist");
      }
      {
        const std::scoped_lock lock(table->lock());
        table->CreateIndex(stmt.index_name, stmt.index_columns.at(0));
      }
      // Index DDL bypasses the Database catalog methods, so the version
      // bump that invalidates bound plans happens here.
      db_.BumpCatalogVersion();
      return {};
    }
    case sql::StatementKind::kDropIndex: {
      if (!stmt.table_name.empty()) {
        const auto table = db_.FindTable(stmt.table_name);
        if (!table) {
          throw ExecutionError("table '" + stmt.table_name +
                               "' does not exist");
        }
        bool dropped;
        {
          const std::scoped_lock lock(table->lock());
          dropped = table->DropIndex(stmt.index_name);
        }
        if (dropped) {
          db_.BumpCatalogVersion();
        } else if (!stmt.if_exists) {
          throw ExecutionError("index '" + stmt.index_name +
                               "' does not exist");
        }
        return {};
      }
      for (const auto& name : db_.TableNames()) {
        const auto table = db_.FindTable(name);
        if (!table) continue;
        bool dropped;
        {
          const std::scoped_lock lock(table->lock());
          dropped = table->DropIndex(stmt.index_name);
        }
        if (dropped) {
          db_.BumpCatalogVersion();
          return {};
        }
      }
      if (!stmt.if_exists) {
        throw ExecutionError("index '" + stmt.index_name +
                             "' does not exist");
      }
      return {};
    }
    case sql::StatementKind::kCreateView:
      db_.CreateView(stmt.table_name, stmt.view_select->Clone());
      return {};
    case sql::StatementKind::kDropView:
      db_.DropView(stmt.table_name, stmt.if_exists);
      return {};
    case sql::StatementKind::kInsert: {
      LockSet locks(recorder_);
      ApplyLockPlan(locks, db_, plan);
      locks.AcquireAll();
      return ExecInsert(stmt, session);
    }
    case sql::StatementKind::kUpdate: {
      LockSet locks(recorder_);
      ApplyLockPlan(locks, db_, plan);
      locks.AcquireAll();
      return ExecUpdate(stmt, session, ctx);
    }
    case sql::StatementKind::kDelete: {
      LockSet locks(recorder_);
      ApplyLockPlan(locks, db_, plan);
      locks.AcquireAll();
      return ExecDelete(stmt, session);
    }
    case sql::StatementKind::kTruncate: {
      const auto table = db_.FindTable(stmt.table_name);
      if (!table) {
        throw ExecutionError("table '" + stmt.table_name +
                             "' does not exist");
      }
      const std::scoped_lock lock(table->lock());
      BackupForTransaction(session, *table);
      const size_t removed = table->live_row_count();
      table->Clear();
      ResultSet result;
      result.affected_rows = removed;
      return result;
    }
    case sql::StatementKind::kDumpTable: {
      const auto table = db_.FindTable(stmt.table_name);
      if (!table) {
        throw ExecutionError("table '" + stmt.table_name +
                             "' does not exist");
      }
      // A shared lock suffices: the dump only reads. Writers are excluded
      // for the duration, so the file is a consistent snapshot.
      const std::shared_lock lock(table->lock());
      ResultSet result;
      result.affected_rows = DumpTableToFile(*table, stmt.file_path);
      result.rows_examined = table->live_row_count();
      return result;
    }
    case sql::StatementKind::kRestoreTable: {
      // Create-or-replace from the dumped schema; rows re-inserted in
      // dumped order rebuild the table bit-identically (scan order, PK
      // index). Validation happens in ReadDumpFile before any catalog
      // change, so a corrupt dump leaves the database untouched.
      DumpContents contents = ReadDumpFile(stmt.file_path);
      db_.DropTable(stmt.table_name, /*if_exists=*/true);
      db_.CreateTable(stmt.table_name, contents.schema,
                      /*if_not_exists=*/false);
      const auto table = db_.FindTable(stmt.table_name);
      const std::scoped_lock lock(table->lock());
      for (auto& row : contents.rows) table->Insert(std::move(row));
      ResultSet result;
      result.affected_rows = contents.rows.size();
      return result;
    }
    case sql::StatementKind::kBegin:
    case sql::StatementKind::kCommit:
    case sql::StatementKind::kRollback:
      return ExecTransaction(stmt, session);
  }
  throw UsageError("unknown statement kind");
}

ResultSet Executor::ExecuteSql(std::string_view text, Session* session) {
  if (db_.plan_cache().enabled()) {
    const auto plan = Prepare(text);
    ResultSet result = ExecuteWithPlan(*plan->ast, *plan->locks, session);
    result.compiled = last_prepare_parsed_;
    return result;
  }
  // Ablation path (--no-plan-cache): the pre-cache cost model — every
  // statement pays a full parse.
  SQLOOP_COUNT(recorder_, "sql.parse_count", 1);
#if SQLOOP_TELEMETRY_ENABLED
  const Stopwatch parse_watch;
#endif
  const auto stmt = sql::ParseStatement(text);
  SQLOOP_TIME_SECONDS(recorder_, "sql.parse_seconds",
                      parse_watch.ElapsedSeconds());
  ResultSet result = Execute(*stmt, session);
  result.compiled = true;
  return result;
}

std::shared_ptr<const CachedPlan> Executor::Rebind(const CachedPlan& stale,
                                                   uint64_t version) {
  // The catalog changed since this plan was bound: the parse stays valid
  // (text -> AST is a pure function), only the bind layer — lock set and
  // view expansion — is recomputed. The refresh stays connection-local;
  // writing it back to the shared cache would serialize workers on the
  // cache mutex only to be re-staled by the next round's DDL.
  auto rebound = std::make_shared<CachedPlan>();
  rebound->ast = stale.ast;
  rebound->param_count = stale.param_count;
  rebound->locks = std::make_shared<const LockPlan>(BuildLockPlan(*stale.ast));
  rebound->bound_version = version;
  db_.plan_cache().NoteRebind();
  SQLOOP_COUNT(recorder_, "minidb.plan_rebinds", 1);
  return rebound;
}

std::shared_ptr<const CachedPlan> Executor::Prepare(std::string_view text,
                                                    bool pin) {
  PlanCache& cache = db_.plan_cache();
  if (!cache.enabled()) {
    throw UsageError("Prepare requires the plan cache to be enabled");
  }
  last_prepare_parsed_ = false;
  const uint64_t version = db_.catalog_version();
  std::string raw(text);
  if (const auto it = local_plans_.find(raw); it != local_plans_.end()) {
    // Hot path: this connection has executed the exact text before. No
    // shared state is touched unless the catalog moved underneath us.
    SQLOOP_COUNT(recorder_, "minidb.plan_cache_hits", 1);
    cache.NoteLocalHit();
    if (it->second->bound_version != version) {
      it->second = Rebind(*it->second, version);
    }
    return it->second;
  }
  const std::string key =
      db_.profile().name + '\x1f' + NormalizeSqlKey(text);
  if (auto entry = cache.Lookup(key)) {
    SQLOOP_COUNT(recorder_, "minidb.plan_cache_hits", 1);
    if (entry->bound_version != version) {
      entry = Rebind(*entry, version);
    }
    if (local_plans_.size() >= kLocalPlanCapacity) local_plans_.clear();
    local_plans_.emplace(std::move(raw), entry);
    return entry;
  }
  SQLOOP_COUNT(recorder_, "minidb.plan_cache_misses", 1);
  SQLOOP_COUNT(recorder_, "sql.parse_count", 1);
  last_prepare_parsed_ = true;
  auto plan = std::make_shared<CachedPlan>();
  {
#if SQLOOP_TELEMETRY_ENABLED
    const Stopwatch parse_watch;
#endif
    auto parsed = sql::ParseStatement(text);
    SQLOOP_TIME_SECONDS(recorder_, "sql.parse_seconds",
                        parse_watch.ElapsedSeconds());
    int max_param = -1;
    sql::VisitStatementExprs(*parsed, [&max_param](const sql::Expr& expr) {
      if (expr.kind == sql::ExprKind::kParameter) {
        max_param = std::max(max_param, expr.param_index);
      }
    });
    plan->param_count = max_param + 1;
    plan->ast = std::shared_ptr<const sql::Statement>(std::move(parsed));
  }
  plan->locks = std::make_shared<const LockPlan>(BuildLockPlan(*plan->ast));
  plan->bound_version = version;
  if (pin || first_misses_.erase(key) > 0) {
    cache.Put(key, plan);
    if (local_plans_.size() >= kLocalPlanCapacity) local_plans_.clear();
    local_plans_.emplace(std::move(raw), plan);
  } else {
    if (first_misses_.size() >= kLocalPlanCapacity) first_misses_.clear();
    first_misses_.insert(key);
  }
  return plan;
}

}  // namespace sqloop::minidb
