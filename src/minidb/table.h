// In-memory or paged table with a primary-key hash index and optional
// secondary hash indexes. Rows are stored in insertion order with
// tombstones; the table-level reader/writer lock lives here (the engine's
// unit of locking, like MyISAM's table locks).
//
// Two storage representations (DESIGN.md "Paged storage & buffer pool"):
//   * resident — a flat std::vector<Row> heap (the original layout; kept
//     as the differential oracle via Database::set_paged_enabled(false));
//   * paged    — fixed-capacity slotted pages behind the database's
//     buffer pool. Row ids are stable across both (page = id / capacity,
//     slot = id % capacity), so indexes, tombstone bitmaps, and scan
//     cursors never care which representation is underneath.
#pragma once

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/memory_tracker.h"
#include "minidb/page.h"
#include "minidb/schema.h"

namespace sqloop::minidb {

class BufferPool;

class Table {
 public:
  Table(std::string name, Schema schema);
  ~Table();

  const std::string& name() const noexcept { return name_; }
  const Schema& schema() const noexcept { return schema_; }

  /// Attaches the database-scope memory tracker this table's storage is
  /// accounted against (row payloads + hash-index entries). Set once by
  /// Database before the table is published; the destructor returns the
  /// whole reservation. Charges are unchecked — a storage mutation must
  /// never be aborted half-applied by a budget (enforcement happens on the
  /// statement-scoped transient side and at the server watermarks).
  void set_memory_tracker(MemoryTracker* tracker) noexcept {
    tracker_ = tracker;
  }

  /// Switches the table to paged storage backed by `pool`. Set by Database
  /// before the table is published (mirrors set_memory_tracker); must not
  /// be flipped once rows exist. Whether the table's pages participate in
  /// eviction is latched here from the pool's budget: pages of a table
  /// created under an unbounded pool are never evicted, so its readers
  /// skip pin bookkeeping entirely (the hit path stays within a few
  /// percent of the resident representation).
  void ConfigureStorage(std::shared_ptr<BufferPool> pool, bool paged);

  bool paged() const noexcept { return paged_; }

  /// True when this table's pages can be evicted (paged + bounded pool at
  /// creation). The executor prefers copy-out scans with windowed pins
  /// over whole-table borrowed views for such tables, so a full pass
  /// stays inside the pool budget.
  bool spill_enabled() const noexcept { return spill_enabled_; }

  /// Estimated bytes this table currently holds resident (rows incl.
  /// tombstoned payloads on resident pages, primary-key and
  /// secondary-index entries). Spilled pages leave this figure — that is
  /// exactly how quota pressure is relieved by eviction.
  int64_t tracked_bytes() const noexcept {
    return tracked_bytes_.load(std::memory_order_relaxed);
  }

  /// Buffer-pool callback (under the pool mutex): `delta` bytes of this
  /// table's pages entered (+) or left (-) residency.
  void OnPageResidencyDelta(int64_t delta) noexcept;

  /// The lock the executor takes (shared for reads, exclusive for writes).
  std::shared_mutex& lock() const noexcept { return lock_; }

  // All methods below assume the caller holds the appropriate lock.

  /// Appends a row (coerced to the schema). Enforces primary-key
  /// uniqueness when the schema declares one. Returns the row id.
  size_t Insert(Row row);

  size_t live_row_count() const noexcept { return live_rows_; }
  size_t slot_count() const noexcept { return live_.size(); }
  bool IsLive(size_t row_id) const noexcept { return live_[row_id]; }

  /// Row view by id. For spill-enabled tables the backing page is pinned
  /// into the current PinScope (the executor installs one per statement),
  /// so the reference stays valid until the scope — or its innermost
  /// window — releases. Without a scope the page is faulted in and left
  /// unpinned: safe for single-threaded out-of-engine callers only.
  const Row& At(size_t row_id) const;

  /// Overwrites the row in place (coerced; primary key must not change to
  /// a value already used by another live row). Keeps indexes in sync.
  void Update(size_t row_id, Row row);

  void Delete(size_t row_id);
  void Clear();

  /// Primary-key point lookup; returns -1 if absent or no PK declared.
  int64_t FindByPrimaryKey(const Value& key) const;

  /// Creates a single-column secondary hash index. (Multi-column CREATE
  /// INDEX statements index their first column; see DESIGN.md.)
  void CreateIndex(const std::string& index_name,
                   const std::string& column_name);
  bool DropIndex(const std::string& index_name);
  bool HasIndexOn(const std::string& column_name) const;

  /// Appends the live row ids whose `column` equals `key` (primary key or
  /// secondary index) to `out`, sorted ascending — i.e. in insertion/scan
  /// order. Allocation-free when the caller reuses `out`'s capacity across
  /// probes; the fused scan path does, and relies on the ordering so an
  /// index scan visits rows in the same order a full scan would (keeps
  /// fused results bit-identical to the materializing path).
  /// Precondition: HasIndexOn(column).
  void IndexProbe(const std::string& column_name, const Value& key,
                  std::vector<size_t>& out) const;

  /// Row ids of live rows whose `column` equals `key`, via IndexProbe
  /// (sorted ascending). Precondition: HasIndexOn(column).
  std::vector<size_t> IndexLookup(const std::string& column_name,
                                  const Value& key) const;

  // --- batch extraction (vectorized scan path; see minidb/batch.h) ------

  /// Fills `out` with up to `capacity` live row views starting at slot
  /// `*cursor` (skipping tombstones) and advances the cursor past the
  /// visited slots. Returns the lane count; 0 means the scan is exhausted.
  /// Views follow the borrowed-relation lifetime rules; on the paged path
  /// this is pin → straight-run fill → (scope-deferred) unpin per page.
  size_t FillBatch(size_t* cursor, const Row** out, size_t capacity) const;

  /// Fills `out` with the row views for `ids[0..count)` (an IndexProbe
  /// result slice, already in scan order). Returns `count`.
  size_t FillBatchFromIds(const size_t* ids, size_t count,
                          const Row** out) const;

  /// Snapshot of all live rows (used for transaction rollback backups).
  std::vector<Row> SnapshotRows() const;

  /// Replaces the whole content (rollback restore).
  void RestoreRows(const std::vector<Row>& rows);

  // --- end-to-end content integrity (DESIGN.md "Durability & integrity") -

  /// Enables incremental content-checksum maintenance. Set by Database
  /// before the table is published (mirrors set_memory_tracker); flipping
  /// it later resets the running checksum, so only do so on empty tables.
  void set_integrity_enabled(bool enabled) noexcept {
    integrity_enabled_ = enabled;
    if (!enabled) content_hash_ = 0;
  }
  bool integrity_enabled() const noexcept { return integrity_enabled_; }

  /// The incrementally-maintained content checksum: the mod-2^64 sum of
  /// every live row's FNV-1a hash (order-independent, so it is identical
  /// across execution modes that insert rows in different orders — and
  /// across the paged and resident storage representations).
  uint64_t content_hash() const noexcept { return content_hash_; }

  /// Recomputes the checksum from the live rows and compares it to the
  /// maintained one (the CHECK TABLE / scrub primitive; caller holds at
  /// least the shared lock). On mismatch returns false and fills the
  /// optional out-params. Always true when integrity is disabled. On the
  /// paged path verification runs page by page against the per-page hash
  /// shards, so `first_bad_page_out` can localize the damage.
  bool VerifyContent(uint64_t* expected_out = nullptr,
                     uint64_t* actual_out = nullptr,
                     int64_t* first_bad_page_out = nullptr) const;

  /// Marks/queries the quarantine flag: a table whose scrub failed is
  /// fenced off so every subsequent statement touching it fails with
  /// IntegrityError instead of reading corrupt rows. Cleared by dropping
  /// and re-creating the table (which RESTORE TABLE does).
  void set_quarantined(bool q) noexcept {
    quarantined_.store(q, std::memory_order_relaxed);
  }
  bool quarantined() const noexcept {
    return quarantined_.load(std::memory_order_relaxed);
  }

  /// Test hook: flips one bit of a stored cell *without* updating the
  /// maintained checksum — simulated silent memory/storage corruption for
  /// scrub tests. Caller holds the exclusive lock. (On a spill-enabled
  /// table a clean page's eviction+reload can heal the corruption — the
  /// spill image was serialized before the flip; that behaviour is itself
  /// under test.)
  void CorruptCellForTesting(size_t row_id, size_t column);

  /// Test/bench hook: number of pages currently materialized in memory.
  size_t resident_page_count() const noexcept;
  size_t page_count() const noexcept { return pages_.size(); }

 private:
  struct SecondaryIndex {
    std::string column;
    int column_index = -1;
    std::unordered_multimap<Value, size_t, ValueKeyHash, ValueKeyEq> map;
  };

  /// RAII pin held across a mutation (or an internal whole-table sweep)
  /// so the pool's evictor never serializes a half-mutated page. No-op
  /// unless the table is spill-enabled.
  class PagePin {
   public:
    PagePin(const Table* table, Page* page);
    ~PagePin();
    PagePin(const PagePin&) = delete;
    PagePin& operator=(const PagePin&) = delete;

   private:
    const Table* table_;
    Page* page_;
  };

  Page* PageFor(size_t row_id) const noexcept {
    return pages_[row_id >> kPageRowShift].get();
  }
  /// Scope-aware read pin (see At()).
  void PinForRead(Page* page) const;
  /// The tail page with room for one more row (creates and registers a
  /// fresh one when needed).
  Page* TailPageForInsert();
  /// Mutable storage cell for a mutator that already holds a pin.
  Row& StoredRow(size_t row_id) noexcept {
    return paged_ ? PageFor(row_id)->rows[row_id & kPageRowMask]
                  : rows_[row_id];
  }

  void IndexInsert(size_t row_id, const Row& row);
  void IndexErase(size_t row_id, const Row& row);
  /// FNV-1a over one row's cells (type tags + raw payload bits; doubles by
  /// bit pattern, matching the dump format's exactness guarantees).
  static uint64_t RowHash(const Row& row) noexcept;
  /// Adjusts the storage accounting by `delta` bytes.
  void Account(int64_t delta) noexcept;
  /// Estimated bytes of one hash-index entry (key copy + bucket node).
  static constexpr int64_t kIndexEntryBytes = 64;

  std::string name_;
  Schema schema_;
  MemoryTracker* tracker_ = nullptr;
  std::atomic<int64_t> tracked_bytes_{0};
  mutable std::shared_mutex lock_;

  // Resident representation (paged_ == false).
  std::vector<Row> rows_;
  // Paged representation (paged_ == true). Pages are stable heap objects:
  // growing the table never moves a row, unlike the vector heap.
  std::vector<std::unique_ptr<Page>> pages_;
  std::shared_ptr<BufferPool> pool_;
  bool paged_ = false;
  bool spill_enabled_ = false;

  std::vector<char> live_;
  size_t live_rows_ = 0;

  bool integrity_enabled_ = false;
  /// Sum (mod 2^64) of RowHash over live rows. A sum, not an XOR: two
  /// identical rows would cancel under XOR and vanish from the checksum.
  uint64_t content_hash_ = 0;
  std::atomic<bool> quarantined_{false};

  std::unordered_map<Value, size_t, ValueKeyHash, ValueKeyEq> pk_index_;
  std::unordered_map<std::string, SecondaryIndex> secondary_indexes_;
};

}  // namespace sqloop::minidb
