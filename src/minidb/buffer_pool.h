// Clock buffer pool over the slotted pages of one database (DESIGN.md
// "Paged storage & buffer pool").
//
// Budgeted ("bounded") pools evict unpinned pages to a per-table spill
// file when resident bytes cross the budget; unbounded pools (budget 0,
// the default) register nothing and never evict, so an unbounded paged
// table behaves — and costs — like the old resident vector-of-rows heap.
// Whether a table participates is latched at table creation (see
// Table::ConfigureStorage): readers of never-evictable tables skip pin
// bookkeeping entirely, which is what keeps the hit-path overhead low.
//
// Locking: one pool mutex guards every page state transition (pin counts,
// residency, dirty bits, the clock ring) and the spill-file I/O. Callers
// hold table locks *before* the pool mutex and the pool never takes a
// table lock, so the order is acyclic. Page payloads (`Page::rows`) are
// only touched by threads holding a pin — eviction and write-back only
// handle unpinned pages — so the pin/unpin mutex pair is the
// happens-before edge between a writer's mutation and the evictor's
// serialization.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/memory_tracker.h"
#include "minidb/page.h"

namespace sqloop::minidb {

class Table;

class BufferPool {
 public:
  struct Stats {
    uint64_t hits = 0;            // pins satisfied by a resident page
    uint64_t misses = 0;          // pins that faulted the page in
    uint64_t pages_evicted = 0;
    uint64_t bytes_spilled = 0;   // bytes written to spill files
    uint64_t writebacks = 0;      // background clean-ahead page writes
    int64_t resident_bytes = 0;   // registered pages currently in memory
    int64_t resident_peak = 0;
    int64_t budget_bytes = 0;     // 0 = unbounded
  };

  /// `spill_dir` hosts the per-table spill files; created lazily on first
  /// spill and removed (best effort) on destruction.
  explicit BufferPool(std::string spill_dir);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Resident-byte budget; 0 = unbounded. Tables latch their eviction
  /// participation at creation, so set the budget (URL knob
  /// `buffer_pool_bytes`) before the workload creates its tables.
  void set_budget_bytes(int64_t budget);
  int64_t budget_bytes() const noexcept {
    return budget_.load(std::memory_order_relaxed);
  }
  bool bounded() const noexcept { return budget_bytes() > 0; }

  // --- table-facing API (callers hold the table's lock) -----------------

  /// Registers a freshly created resident page in the clock ring and
  /// evicts colder pages if the budget is now crossed.
  void AddPage(Page* page);

  /// Accounts a resident page growing by `delta` bytes (inserts into the
  /// tail page; row updates in place).
  void PageGrew(Page* page, int64_t delta);

  /// Pins `page` (faulting it in from the spill file when evicted) and
  /// sets the clock-reference bit. Pairs with Unpin.
  void Pin(Page* page);
  void Unpin(Page* page);

  /// Marks a pinned page's payload as diverged from its spill image.
  void MarkDirty(Page* page);

  /// Drops every pool registration and the spill file of `table`
  /// (Table::Clear and the table destructor).
  void ForgetTable(Table* table);

  // --- pressure hooks ---------------------------------------------------

  /// Evicts cold pages until at least `bytes` were freed or nothing
  /// unpinned remains. Returns the bytes actually freed. Installed as the
  /// database tracker's reclaimer, so quota pressure evicts before a
  /// statement sees QuotaExceededError; also the JobServer's shed-mode
  /// shrink primitive.
  int64_t TryReclaim(int64_t bytes);

  /// Evicts everything unpinned (shed mode). Returns the bytes freed.
  int64_t Shrink();

  Stats stats() const;

 private:
  struct SpillFile {
    std::FILE* file = nullptr;
    std::string path;
    uint64_t end_offset = 0;
  };

  /// Under lock_: evicts clock-ring pages (skipping pinned ones, giving
  /// referenced ones a second chance) until resident bytes fit in
  /// `target` or no victim remains. Returns bytes freed.
  int64_t EvictUntil(int64_t target);
  /// Under lock_: serializes `page` into its table's spill file (in place
  /// when the new image fits, appended otherwise) and clears dirty.
  void WriteBack(Page* page);
  /// Under lock_: reloads a spilled page's rows and re-registers it.
  void FaultIn(Page* page);
  /// Under lock_: removes `page` from the clock ring (swap-with-last).
  void RingRemove(Page* page);
  SpillFile& SpillFor(Table* table);
  void WriterLoop();

  const std::string spill_dir_;
  std::atomic<int64_t> budget_{0};

  mutable std::mutex lock_;
  std::vector<Page*> ring_;  // clock ring over registered resident pages
  size_t hand_ = 0;
  std::unordered_map<Table*, SpillFile> spill_files_;
  int64_t resident_bytes_ = 0;
  int64_t resident_peak_ = 0;

  // Background write-back: cleans a few dirty unpinned pages per tick so
  // evictions mostly find clean victims (drop, no I/O). Started when the
  // pool first becomes bounded.
  std::thread writer_;
  std::condition_variable writer_cv_;
  bool stop_writer_ = false;
  bool writer_started_ = false;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> pages_evicted_{0};
  std::atomic<uint64_t> bytes_spilled_{0};
  std::atomic<uint64_t> writebacks_{0};
};

}  // namespace sqloop::minidb
