#include "graph/reference.h"

#include <deque>
#include <functional>
#include <queue>

namespace sqloop::graph {

std::unordered_map<int64_t, double> Dijkstra(const Graph& graph,
                                             int64_t source) {
  const auto adjacency = graph.OutAdjacency();
  std::unordered_map<int64_t, double> dist;
  using Entry = std::pair<double, int64_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> frontier;
  dist[source] = 0;
  frontier.emplace(0.0, source);
  while (!frontier.empty()) {
    const auto [d, node] = frontier.top();
    frontier.pop();
    const auto it = dist.find(node);
    if (it != dist.end() && d > it->second) continue;  // stale entry
    const auto adj = adjacency.find(node);
    if (adj == adjacency.end()) continue;
    for (const auto& [next, weight] : adj->second) {
      const double candidate = d + weight;
      const auto existing = dist.find(next);
      if (existing == dist.end() || candidate < existing->second) {
        dist[next] = candidate;
        frontier.emplace(candidate, next);
      }
    }
  }
  return dist;
}

std::unordered_map<int64_t, int64_t> BfsHops(const Graph& graph,
                                             int64_t source) {
  const auto adjacency = graph.OutAdjacency();
  std::unordered_map<int64_t, int64_t> hops;
  std::deque<int64_t> frontier;
  hops[source] = 0;
  frontier.push_back(source);
  while (!frontier.empty()) {
    const int64_t node = frontier.front();
    frontier.pop_front();
    const auto adj = adjacency.find(node);
    if (adj == adjacency.end()) continue;
    for (const auto& [next, weight] : adj->second) {
      if (hops.try_emplace(next, hops[node] + 1).second) {
        frontier.push_back(next);
      }
    }
  }
  return hops;
}

PageRankResult PageRankReference(const Graph& graph, int iterations) {
  const auto in_adjacency = graph.InAdjacency();
  const auto nodes = graph.Nodes();

  std::unordered_map<int64_t, double> rank;
  std::unordered_map<int64_t, double> delta;
  rank.reserve(nodes.size());
  delta.reserve(nodes.size());
  for (const int64_t node : nodes) {
    rank[node] = 0.0;
    delta[node] = 0.15;
  }

  for (int iter = 0; iter < iterations; ++iter) {
    std::unordered_map<int64_t, double> next_delta;
    next_delta.reserve(nodes.size());
    for (const int64_t node : nodes) {
      rank[node] += delta[node];
      double incoming = 0.0;
      const auto in = in_adjacency.find(node);
      if (in != in_adjacency.end()) {
        for (const auto& [pred, weight] : in->second) {
          incoming += delta[pred] * weight;
        }
      }
      next_delta[node] = 0.85 * incoming;
    }
    delta = std::move(next_delta);
  }

  PageRankResult result;
  result.rank = std::move(rank);
  for (const auto& [node, r] : result.rank) result.sum_of_rank += r;
  return result;
}

std::unordered_map<int64_t, int64_t> ConnectedComponents(const Graph& graph) {
  // Union-find over node ids.
  std::unordered_map<int64_t, int64_t> parent;
  const std::function<int64_t(int64_t)> find = [&](int64_t x) -> int64_t {
    auto it = parent.find(x);
    if (it == parent.end()) {
      parent[x] = x;
      return x;
    }
    if (it->second == x) return x;
    const int64_t root = find(it->second);
    parent[x] = root;
    return root;
  };
  const auto unite = [&](int64_t a, int64_t b) {
    const int64_t ra = find(a);
    const int64_t rb = find(b);
    if (ra == rb) return;
    // Smaller id becomes the root so component labels are canonical.
    if (ra < rb) {
      parent[rb] = ra;
    } else {
      parent[ra] = rb;
    }
  };
  for (const Edge& e : graph.edges()) unite(e.src, e.dst);

  std::unordered_map<int64_t, int64_t> component;
  for (const int64_t node : graph.Nodes()) component[node] = find(node);
  return component;
}

}  // namespace sqloop::graph
