// Directed graph container shared by the generators, the loader, and the
// reference algorithms. Edge weights follow the paper's convention:
// weight(u→v) = 1 / outdegree(u).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace sqloop::graph {

struct Edge {
  int64_t src = 0;
  int64_t dst = 0;
  double weight = 0;  // filled by AssignOutDegreeWeights
};

class Graph {
 public:
  Graph() = default;

  void AddEdge(int64_t src, int64_t dst);

  const std::vector<Edge>& edges() const noexcept { return edges_; }
  size_t edge_count() const noexcept { return edges_.size(); }

  /// Distinct node ids appearing as a source or destination, sorted.
  std::vector<int64_t> Nodes() const;
  size_t NodeCount() const;

  /// Sets every edge's weight to 1/outdegree(src) — the paper's weighting.
  void AssignOutDegreeWeights();

  /// Out-adjacency: node -> (neighbor, weight) pairs.
  std::unordered_map<int64_t, std::vector<std::pair<int64_t, double>>>
  OutAdjacency() const;

  /// In-adjacency: node -> (predecessor, weight) pairs.
  std::unordered_map<int64_t, std::vector<std::pair<int64_t, double>>>
  InAdjacency() const;

  std::unordered_map<int64_t, size_t> OutDegrees() const;

  /// Writes/reads "src,dst,weight" CSV (one edge per line, no header).
  void SaveCsv(const std::string& path) const;
  static Graph LoadCsv(const std::string& path);

 private:
  std::vector<Edge> edges_;
};

}  // namespace sqloop::graph
