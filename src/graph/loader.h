// Loads a Graph into a database's `edges(src, dst, weight)` table through
// a dbc connection — the "data already lives in the RDBMS" premise of the
// paper. Uses batched inserts to amortize round trips.
#pragma once

#include <string>

#include "dbc/connection.h"
#include "graph/graph.h"

namespace sqloop::graph {

struct LoadOptions {
  std::string table_name = "edges";
  size_t batch_size = 500;  // statements per ExecuteBatch round trip
  bool create_indexes = true;  // src and dst indexes (paper §V-C uses them)
  bool drop_existing = true;
};

/// Creates (or replaces) the edges table and bulk-loads the graph.
/// Emits engine-appropriate DDL via the connection's dialect.
void LoadEdges(dbc::Connection& connection, const Graph& graph,
               const LoadOptions& options = {});

}  // namespace sqloop::graph
