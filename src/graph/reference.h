// Reference implementations of the paper's three workloads (plus connected
// components), used as ground truth by the property tests: whatever the
// SQLoop executors compute must match these.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "graph/graph.h"

namespace sqloop::graph {

/// Dijkstra shortest-path distances from `source`. Unreachable nodes are
/// absent from the map.
std::unordered_map<int64_t, double> Dijkstra(const Graph& graph,
                                             int64_t source);

/// BFS hop counts from `source` treating every edge as one "click".
std::unordered_map<int64_t, int64_t> BfsHops(const Graph& graph,
                                             int64_t source);

struct PageRankResult {
  std::unordered_map<int64_t, double> rank;
  double sum_of_rank = 0;  // the paper's convergence metric (§VI-A)
};

/// Synchronous delta-accumulative PageRank exactly as Example 2 computes
/// it: rank starts at 0, delta at 0.15; each iteration does
///   rank += delta;  delta'[v] = 0.85 * Σ_{(u,v)} delta[u] * weight(u,v).
PageRankResult PageRankReference(const Graph& graph, int iterations);

/// Weakly-connected components (edges treated as undirected); returns
/// node -> smallest node id in its component.
std::unordered_map<int64_t, int64_t> ConnectedComponents(const Graph& graph);

}  // namespace sqloop::graph
