#include "graph/generators.h"

#include <unordered_set>

#include "common/error.h"
#include "common/rng.h"

namespace sqloop::graph {
namespace {

/// Packs an edge into a dedup key (node ids stay far below 2^32 at every
/// scale the benches use).
uint64_t EdgeKey(int64_t src, int64_t dst) {
  return (static_cast<uint64_t>(src) << 32) | static_cast<uint64_t>(dst);
}

class EdgeBuilder {
 public:
  explicit EdgeBuilder(Graph& graph) : graph_(graph) {}

  bool TryAdd(int64_t src, int64_t dst) {
    if (src == dst) return false;
    if (!seen_.insert(EdgeKey(src, dst)).second) return false;
    graph_.AddEdge(src, dst);
    return true;
  }

 private:
  Graph& graph_;
  std::unordered_set<uint64_t> seen_;
};

}  // namespace

Graph MakeWebGraph(int64_t node_count, int avg_out_degree, uint64_t seed) {
  if (node_count < 2 || avg_out_degree < 1) {
    throw UsageError("web graph needs >= 2 nodes and >= 1 out-degree");
  }
  Graph g;
  EdgeBuilder builder(g);
  Rng rng(seed);

  // Preferential attachment with an 80/20 rich-get-richer / uniform mix.
  // `endpoints` holds one entry per received edge, so sampling from it is
  // proportional to in-degree.
  std::vector<int64_t> endpoints = {1};
  endpoints.reserve(static_cast<size_t>(node_count) * avg_out_degree);

  for (int64_t v = 2; v <= node_count; ++v) {
    for (int i = 0; i < avg_out_degree; ++i) {
      int64_t target;
      if (rng.NextDouble() < 0.8) {
        target = endpoints[rng.NextBelow(endpoints.size())];
      } else {
        target = 1 + static_cast<int64_t>(rng.NextBelow(
                         static_cast<uint64_t>(v - 1)));
      }
      if (builder.TryAdd(v, target)) endpoints.push_back(target);
    }
    endpoints.push_back(v);
  }

  // A sprinkle of random edges creates the cycles real web graphs have.
  const int64_t extra = node_count / 10 + 1;
  for (int64_t i = 0; i < extra; ++i) {
    const auto u = 1 + static_cast<int64_t>(
                           rng.NextBelow(static_cast<uint64_t>(node_count)));
    const auto v = 1 + static_cast<int64_t>(
                           rng.NextBelow(static_cast<uint64_t>(node_count)));
    builder.TryAdd(u, v);
  }

  g.AssignOutDegreeWeights();
  return g;
}

Graph MakeEgoNetGraph(int64_t circle_count, int64_t circle_size,
                      double intra_edge_probability, uint64_t seed,
                      bool bidirectional) {
  if (circle_count < 1 || circle_size < 2) {
    throw UsageError("ego-net graph needs >= 1 circle of >= 2 nodes");
  }
  if (intra_edge_probability <= 0 || intra_edge_probability > 1) {
    throw UsageError("intra_edge_probability must be in (0, 1]");
  }
  Graph g;
  EdgeBuilder builder(g);
  Rng rng(seed);

  const auto node_id = [&](int64_t circle, int64_t index) {
    return circle * circle_size + index + 1;  // ids start at 1
  };

  for (int64_t c = 0; c < circle_count; ++c) {
    // Dense intra-circle structure: a ring guaranteeing connectivity plus
    // random chords at the requested density.
    for (int64_t i = 0; i < circle_size; ++i) {
      builder.TryAdd(node_id(c, i), node_id(c, (i + 1) % circle_size));
      if (bidirectional) {
        builder.TryAdd(node_id(c, (i + 1) % circle_size), node_id(c, i));
      }
    }
    const auto chords = static_cast<int64_t>(
        intra_edge_probability * static_cast<double>(circle_size) *
        static_cast<double>(circle_size - 1));
    for (int64_t k = 0; k < chords; ++k) {
      const auto a = static_cast<int64_t>(
          rng.NextBelow(static_cast<uint64_t>(circle_size)));
      const auto b = static_cast<int64_t>(
          rng.NextBelow(static_cast<uint64_t>(circle_size)));
      builder.TryAdd(node_id(c, a), node_id(c, b));
    }
    // Weak ties to the next circle (both directions, few of them), so the
    // cluster chain is traversable but cross-circle paths stay long.
    if (c + 1 < circle_count) {
      for (int k = 0; k < 2; ++k) {
        const auto a = static_cast<int64_t>(
            rng.NextBelow(static_cast<uint64_t>(circle_size)));
        const auto b = static_cast<int64_t>(
            rng.NextBelow(static_cast<uint64_t>(circle_size)));
        builder.TryAdd(node_id(c, a), node_id(c + 1, b));
        if (bidirectional) builder.TryAdd(node_id(c + 1, b), node_id(c, a));
      }
    }
  }

  g.AssignOutDegreeWeights();
  return g;
}

Graph MakeHostGraph(int64_t host_count, int64_t pages_per_host,
                    int64_t backbone_length, uint64_t seed) {
  if (host_count < 1 || pages_per_host < 2 || backbone_length < 1) {
    throw UsageError("host graph needs hosts, pages and a backbone");
  }
  Graph g;
  EdgeBuilder builder(g);
  Rng rng(seed);

  // Navigation backbone 0 -> 1 -> ... -> L. No edge generated anywhere
  // else may target a backbone node, so node k stays exactly k clicks
  // from node 0 (the Fig. 6 DQ guarantee).
  for (int64_t k = 0; k < backbone_length; ++k) builder.TryAdd(k, k + 1);

  const auto page_id = [&](int64_t host, int64_t page) {
    return backbone_length + 1 + host * pages_per_host + page;
  };

  for (int64_t h = 0; h < host_count; ++h) {
    const int64_t home = page_id(h, 0);
    // Host-local structure: hub-and-spoke plus a local chain, like a site
    // with an index page and article sequences.
    for (int64_t p = 1; p < pages_per_host; ++p) {
      builder.TryAdd(home, page_id(h, p));
      builder.TryAdd(page_id(h, p), home);
      if (p + 1 < pages_per_host && rng.NextDouble() < 0.5) {
        builder.TryAdd(page_id(h, p), page_id(h, p + 1));
      }
    }
    // Each host hangs off one backbone node (one-way: backbone -> host).
    const int64_t attach =
        (h * backbone_length) / host_count;  // spread along the backbone
    builder.TryAdd(attach, home);
    // Sparse cross-host links within the same "domain half".
    if (h + 1 < host_count) builder.TryAdd(home, page_id(h + 1, 0));
  }

  g.AssignOutDegreeWeights();
  return g;
}

}  // namespace sqloop::graph
