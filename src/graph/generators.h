// Deterministic synthetic dataset generators standing in for the paper's
// SNAP datasets (see DESIGN.md "Substitutions"). Every generator takes an
// explicit seed and is reproducible bit-for-bit.
#pragma once

#include <cstdint>

#include "graph/graph.h"

namespace sqloop::graph {

/// Stand-in for web-Google (paper: 5,105,039 edges): a directed
/// preferential-attachment graph whose in-degrees follow a power law.
/// ~`avg_out_degree` edges per node. Used for the PageRank experiments.
Graph MakeWebGraph(int64_t node_count, int avg_out_degree, uint64_t seed);

/// Stand-in for the Twitter ego-network dataset (paper: 1,768,149 edges):
/// dense clusters ("circles") with sparse weak ties between consecutive
/// circles. Short intra-cluster paths, longer cross-cluster traversals —
/// the SSSP workload's structure.
/// `bidirectional` controls whether ring/tie edges get a reverse twin.
/// Twitter follower edges are directed; pass false for the faithful
/// directed variant (forward-only traversal => sparse SSSP frontiers).
Graph MakeEgoNetGraph(int64_t circle_count, int64_t circle_size,
                      double intra_edge_probability, uint64_t seed,
                      bool bidirectional = true);

/// Stand-in for web-BerkStan (paper: 7,600,595 edges): two "domains" of
/// host-local link structure plus a long navigation backbone, guaranteeing
/// page pairs that are exactly `backbone_length` clicks apart (the paper's
/// Fig. 6 DQ uses a pair 100 clicks apart).
///
/// Backbone node ids are 0..backbone_length: node k is exactly k clicks
/// from node 0 along the backbone (and no shortcut is generated).
Graph MakeHostGraph(int64_t host_count, int64_t pages_per_host,
                    int64_t backbone_length, uint64_t seed);

}  // namespace sqloop::graph
