#include "graph/loader.h"

#include <string>

#include "sql/printer.h"
#include "sql/value.h"

namespace sqloop::graph {

void LoadEdges(dbc::Connection& connection, const Graph& graph,
               const LoadOptions& options) {
  const Dialect dialect = connection.dialect();

  if (options.drop_existing) {
    connection.Execute("DROP TABLE IF EXISTS " +
                       sql::QuoteIdentifier(options.table_name, dialect));
  }

  // Engine-appropriate DDL: UNLOGGED on postgres, ENGINE=MyISAM on the
  // MySQL family (the paper's §VI-A configuration for both).
  sql::Statement create;
  create.kind = sql::StatementKind::kCreateTable;
  create.table_name = options.table_name;
  create.columns = {{"src", ValueType::kInt64, "BIGINT"},
                    {"dst", ValueType::kInt64, "BIGINT"},
                    {"weight", ValueType::kDouble, ""}};
  create.unlogged = true;
  connection.Execute(sql::PrintStatement(create, dialect));

  // Multi-row INSERT statements, several per batch round trip.
  constexpr size_t kStatementsPerBatch = 8;
  std::string statement;
  size_t rows_in_statement = 0;
  size_t statements_in_batch = 0;

  const auto flush_statement = [&] {
    if (rows_in_statement == 0) return;
    connection.AddBatch(std::move(statement));
    statement.clear();
    rows_in_statement = 0;
    if (++statements_in_batch >= kStatementsPerBatch) {
      connection.ExecuteBatch();
      statements_in_batch = 0;
    }
  };

  for (const Edge& edge : graph.edges()) {
    if (rows_in_statement == 0) {
      statement = "INSERT INTO " +
                  sql::QuoteIdentifier(options.table_name, dialect) +
                  " VALUES ";
    } else {
      statement += ", ";
    }
    statement += "(" + std::to_string(edge.src) + ", " +
                 std::to_string(edge.dst) + ", " +
                 Value(edge.weight).ToSqlLiteral() + ")";
    if (++rows_in_statement >= options.batch_size) flush_statement();
  }
  flush_statement();
  if (statements_in_batch > 0 || connection.batch_size() > 0) {
    connection.ExecuteBatch();
  }

  if (options.create_indexes) {
    connection.Execute("CREATE INDEX " +
                       sql::QuoteIdentifier(options.table_name + "_src",
                                            dialect) +
                       " ON " +
                       sql::QuoteIdentifier(options.table_name, dialect) +
                       " (src)");
    connection.Execute("CREATE INDEX " +
                       sql::QuoteIdentifier(options.table_name + "_dst",
                                            dialect) +
                       " ON " +
                       sql::QuoteIdentifier(options.table_name, dialect) +
                       " (dst)");
  }
}

}  // namespace sqloop::graph
