#include "graph/graph.h"

#include <algorithm>
#include <fstream>
#include <set>

#include "common/error.h"

namespace sqloop::graph {

void Graph::AddEdge(int64_t src, int64_t dst) {
  edges_.push_back({src, dst, 0.0});
}

std::vector<int64_t> Graph::Nodes() const {
  std::set<int64_t> ids;
  for (const Edge& e : edges_) {
    ids.insert(e.src);
    ids.insert(e.dst);
  }
  return {ids.begin(), ids.end()};
}

size_t Graph::NodeCount() const { return Nodes().size(); }

std::unordered_map<int64_t, size_t> Graph::OutDegrees() const {
  std::unordered_map<int64_t, size_t> degrees;
  for (const Edge& e : edges_) ++degrees[e.src];
  return degrees;
}

void Graph::AssignOutDegreeWeights() {
  const auto degrees = OutDegrees();
  for (Edge& e : edges_) {
    e.weight = 1.0 / static_cast<double>(degrees.at(e.src));
  }
}

std::unordered_map<int64_t, std::vector<std::pair<int64_t, double>>>
Graph::OutAdjacency() const {
  std::unordered_map<int64_t, std::vector<std::pair<int64_t, double>>> adj;
  for (const Edge& e : edges_) adj[e.src].emplace_back(e.dst, e.weight);
  return adj;
}

std::unordered_map<int64_t, std::vector<std::pair<int64_t, double>>>
Graph::InAdjacency() const {
  std::unordered_map<int64_t, std::vector<std::pair<int64_t, double>>> adj;
  for (const Edge& e : edges_) adj[e.dst].emplace_back(e.src, e.weight);
  return adj;
}

void Graph::SaveCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw UsageError("cannot open '" + path + "' for writing");
  for (const Edge& e : edges_) {
    out << e.src << ',' << e.dst << ',' << e.weight << '\n';
  }
}

Graph Graph::LoadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw UsageError("cannot open '" + path + "' for reading");
  Graph g;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const size_t c1 = line.find(',');
    const size_t c2 = line.find(',', c1 + 1);
    if (c1 == std::string::npos || c2 == std::string::npos) {
      throw UsageError("malformed edge line: " + line);
    }
    Edge e;
    e.src = std::stoll(line.substr(0, c1));
    e.dst = std::stoll(line.substr(c1 + 1, c2 - c1 - 1));
    e.weight = std::stod(line.substr(c2 + 1));
    g.edges_.push_back(e);
  }
  return g;
}

}  // namespace sqloop::graph
