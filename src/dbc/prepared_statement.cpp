#include "dbc/prepared_statement.h"

#include <algorithm>
#include <utility>

#include "common/error.h"
#include "common/stopwatch.h"
#include "sql/parser.h"
#include "telemetry/hooks.h"

namespace sqloop::dbc {

PreparedStatement Connection::Prepare(std::string sql) {
  EnsureOpen();
  // Like Execute, the prepare round trip is fault-exposed: a failure here
  // reaches the client before any server-side state exists.
  MaybeInjectFault();
  PayRoundTrip();  // ship the statement text for server-side compilation
  ++stats_.prepared_statements;
  SQLOOP_COUNT(recorder_, "dbc.prepared_statements", 1);
#if SQLOOP_TELEMETRY_ENABLED
  const Stopwatch prepare_watch;
#endif
  PreparedStatement prepared(*this, std::move(sql));
  SQLOOP_TIME_SECONDS(recorder_, "dbc.prepare_seconds",
                      prepare_watch.ElapsedSeconds());
  // The PREPARE itself compiles server-side unless the plan was cached.
  if (!db_->plan_cache().enabled() || executor_.last_prepare_parsed()) {
    PayCompile();
  }
  return prepared;
}

PreparedStatement::PreparedStatement(Connection& conn, std::string sql)
    : conn_(&conn), sql_(std::move(sql)) {
  if (conn_->db_->plan_cache().enabled()) {
    plan_ = conn_->executor_.Prepare(sql_, /*pin=*/true);
    param_count_ = plan_->param_count;
    bound_ = plan_->ast->Clone();
    CollectSlots();
  } else {
    // Cache disabled (`--no-plan-cache`): compile locally; EnsureFresh
    // re-parses on every execute to model the unprepared world.
    Recompile();
  }
  binds_.resize(static_cast<size_t>(param_count_));
  has_bind_.assign(static_cast<size_t>(param_count_), 0);
}

void PreparedStatement::Recompile() {
  SQLOOP_COUNT(conn_->recorder_, "sql.parse_count", 1);
#if SQLOOP_TELEMETRY_ENABLED
  const Stopwatch parse_watch;
#endif
  bound_ = sql::ParseStatement(sql_);
  SQLOOP_TIME_SECONDS(conn_->recorder_, "sql.parse_seconds",
                      parse_watch.ElapsedSeconds());
  int max_param = -1;
  sql::VisitStatementExprs(*bound_, [&max_param](const sql::Expr& expr) {
    if (expr.kind == sql::ExprKind::kParameter) {
      max_param = std::max(max_param, expr.param_index);
    }
  });
  param_count_ = max_param + 1;
  CollectSlots();
}

void PreparedStatement::CollectSlots() {
  slots_.assign(static_cast<size_t>(param_count_), nullptr);
  sql::VisitStatementExprsMutable(*bound_, [this](sql::Expr& expr) {
    // A slot stays identifiable after a bind rewrote it to a literal:
    // param_index survives the rewrite.
    if (expr.param_index >= 0 && expr.param_index < param_count_) {
      slots_[static_cast<size_t>(expr.param_index)] = &expr;
    }
  });
}

void PreparedStatement::CheckIndex(int index) const {
  if (index < 1 || index > param_count_) {
    throw UsageError("parameter index " + std::to_string(index) +
                     " out of range: statement has " +
                     std::to_string(param_count_) + " parameter(s)");
  }
}

void PreparedStatement::SetInt64(int index, int64_t value) {
  CheckIndex(index);
  binds_[static_cast<size_t>(index - 1)] = Value(value);
  has_bind_[static_cast<size_t>(index - 1)] = 1;
}

void PreparedStatement::SetDouble(int index, double value) {
  CheckIndex(index);
  binds_[static_cast<size_t>(index - 1)] = Value(value);
  has_bind_[static_cast<size_t>(index - 1)] = 1;
}

void PreparedStatement::SetText(int index, std::string value) {
  CheckIndex(index);
  binds_[static_cast<size_t>(index - 1)] = Value(std::move(value));
  has_bind_[static_cast<size_t>(index - 1)] = 1;
}

void PreparedStatement::SetNull(int index) {
  CheckIndex(index);
  binds_[static_cast<size_t>(index - 1)] = Value::Null();
  has_bind_[static_cast<size_t>(index - 1)] = 1;
}

void PreparedStatement::ClearParameters() {
  binds_.assign(static_cast<size_t>(param_count_), Value::Null());
  has_bind_.assign(static_cast<size_t>(param_count_), 0);
}

void PreparedStatement::RequireAllBound() const {
  for (int i = 0; i < param_count_; ++i) {
    if (!has_bind_[static_cast<size_t>(i)]) {
      throw UsageError("parameter ?" + std::to_string(i + 1) +
                       " is unbound — call Set* before executing");
    }
  }
}

bool PreparedStatement::EnsureFresh() {
  minidb::Database& db = *conn_->db_;
  if (!db.plan_cache().enabled()) {
    // Ablation path. Also covers the cache being switched off after this
    // handle was prepared: drop the stale server-side plan.
    plan_ = nullptr;
    Recompile();
    return true;
  }
  if (plan_ == nullptr) {
    // Prepared while the cache was off, or first execute after re-enable.
    plan_ = conn_->executor_.Prepare(sql_, /*pin=*/true);
    return conn_->executor_.last_prepare_parsed();
  }
  if (plan_->bound_version != db.catalog_version()) {
    // DDL happened since the plan was bound. Prepare() reuses the cached
    // AST and only re-binds the lock plan — no re-parse. bound_ stays: the
    // AST for a fixed text never changes.
    plan_ = conn_->executor_.Prepare(sql_, /*pin=*/true);
    return conn_->executor_.last_prepare_parsed();
  }
  return false;
}

ResultSet PreparedStatement::Submit(const std::vector<Value>& values) {
  ApplyBinds(values);
  ResultSet result =
      plan_ != nullptr
          ? conn_->executor_.ExecuteWithPlan(*bound_, *plan_->locks,
                                             plan_->access.get(),
                                             &conn_->session_)
          : conn_->executor_.Execute(*bound_, &conn_->session_);
  return result;
}

void PreparedStatement::ApplyBinds(const std::vector<Value>& values) {
  for (int i = 0; i < param_count_; ++i) {
    sql::Expr* slot = slots_[static_cast<size_t>(i)];
    slot->kind = sql::ExprKind::kLiteral;
    slot->literal = values[static_cast<size_t>(i)];
  }
}

ResultSet PreparedStatement::Execute() {
  RequireAllBound();
  conn_->EnsureOpen();
  // Same fault exposure as Connection::Execute: a failure strikes before
  // the engine applies anything, so the caller may retry the handle.
  conn_->MaybeInjectFault();
  conn_->PayRoundTrip();
  ++conn_->stats_.statements;
  ++conn_->stats_.prepared_executions;
  SQLOOP_COUNT(conn_->recorder_, "dbc.statements", 1);
  SQLOOP_COUNT(conn_->recorder_, "dbc.prepared_executions", 1);
  conn_->EnsureTransactionIfNeeded();
  if (EnsureFresh()) conn_->PayCompile();
#if SQLOOP_TELEMETRY_ENABLED
  const Stopwatch execute_watch;
#endif
  ResultSet result = Submit(binds_);
  SQLOOP_TIME_SECONDS(conn_->recorder_, "dbc.execute_seconds",
                      execute_watch.ElapsedSeconds());
  conn_->PayServerWork(result.rows_examined);
  return result;
}

void PreparedStatement::AddBatch() {
  RequireAllBound();
  batch_.push_back(binds_);
}

std::vector<size_t> PreparedStatement::ExecuteBatch() {
  conn_->EnsureOpen();
  // Mirrors Connection::ExecuteBatch: one fault decision and one round
  // trip for the whole batch; the queue survives a pre-engine failure.
  conn_->MaybeInjectFault();
  conn_->PayRoundTrip();
  SQLOOP_COUNT(conn_->recorder_, "dbc.batches", 1);
  SQLOOP_COUNT(conn_->recorder_, "dbc.batch_statements", batch_.size());
  conn_->EnsureTransactionIfNeeded();
  // One statement, one compile decision for the whole batch.
  if (EnsureFresh()) conn_->PayCompile();
  std::vector<size_t> affected;
  affected.reserve(batch_.size());
  size_t rows_examined = 0;
  for (const std::vector<Value>& values : batch_) {
    ++conn_->stats_.statements;
    ++conn_->stats_.prepared_executions;
    SQLOOP_COUNT(conn_->recorder_, "dbc.statements", 1);
    SQLOOP_COUNT(conn_->recorder_, "dbc.prepared_executions", 1);
    ResultSet result = Submit(values);
    rows_examined += result.rows_examined;
    affected.push_back(result.affected_rows);
  }
  batch_.clear();
  conn_->PayServerWork(rows_examined);
  return affected;
}

}  // namespace sqloop::dbc
