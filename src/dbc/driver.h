// dbc — the repo's JDBC stand-in (paper §IV-A).
//
// SQLoop talks to engines exclusively through this layer: URL-based
// connection establishment, statements, batching, transactions, and
// isolation levels. A configurable synthetic round-trip latency models the
// client/server hop that JDBC drivers pay over TCP; SQLoop's batching and
// connection-per-worker design only show their value because this cost
// exists.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/fault.h"
#include "common/fault_file.h"
#include "minidb/server.h"

namespace sqloop::dbc {

/// Parsed form of a connection URL:
///   minidb://<host>[:port]/<database>[?latency_us=N][&engine=<name>]
///       [&connect_timeout_ms=N][&fault_*=...]
/// Duplicate query parameters are rejected (ConnectionError) — silently
/// letting the last one win hid misconfigured benchmark URLs.
struct ConnectionConfig {
  std::string host = "localhost";
  int port = 5432;
  std::string database;
  /// Simulated one-way-and-back cost of a statement round trip, paid once
  /// per Execute* call (a whole batch pays it once).
  int64_t latency_us = 100;
  /// Simulated server-side processing cost per row examined. Models the
  /// paper's 32-core testbed on small machines: every connection's
  /// statements cost time proportional to the data they scan, and those
  /// costs overlap across connections exactly as they would on a server
  /// with ample cores (see DESIGN.md "Substitutions"). 0 disables.
  int64_t row_cost_ns = 0;
  /// Simulated server-side parse+plan cost per compiled statement. Paid
  /// only when the engine actually compiles text (cache miss, ablation);
  /// plan-cached and prepared executions skip it, exactly like a
  /// server-side PREPARE. Models a real engine's optimizer, which the
  /// embedded parser radically undercosts (see DESIGN.md
  /// "Substitutions"). 0 (the default) disables.
  int64_t compile_us = 0;
  /// Optional engine assertion: if non-empty, connecting fails unless the
  /// target database actually runs this engine profile.
  std::string expected_engine;
  /// Deadline for the connection handshake; 0 disables. The handshake pays
  /// one round trip, so a latency_us that cannot meet the deadline fails
  /// the open with TimeoutError.
  int64_t connect_timeout_ms = 0;
  /// Fault-injection parameters (fault_seed, fault_drop_rate,
  /// fault_transient_rate, fault_slow_rate, fault_slow_us,
  /// fault_connect_rate, fault_*_every, fault_max, fault_kill_at_round).
  /// All connections opened with the same host/database/fault configuration
  /// share one seeded FaultInjector so the fault schedule is deterministic.
  /// Contradictory combinations (fault_max=0 alongside configured triggers;
  /// fault_slow_us with no slow trigger) are rejected at parse time.
  FaultConfig fault;
  bool has_fault = false;

  /// Durability-shim crash plan (`fault_crash_at_write=N`,
  /// `fault_crash_at_fsync=N`, `fault_crash_at_rename=N`,
  /// `fault_torn_writes=1`, `fault_flip_bit=1`; the crash seed follows
  /// `fault_seed`). Installed process-wide on connect — every dump and
  /// manifest publish counts against it. Torn/flip modifiers without any
  /// crash point are rejected at parse time.
  CrashPlan crash;
  bool has_crash = false;

  /// Checkpoint defaults carried by the URL (`checkpoint_every=N`,
  /// `checkpoint_dir=<path>`): adopted by SqLoop when the per-call
  /// SqloopOptions leave them unset. 0 / empty = no URL default.
  int64_t checkpoint_every = 0;
  std::string checkpoint_dir;
  /// Checkpoint retention depth (`checkpoint_keep=N`, N >= 1); 0 = no URL
  /// default (SqLoop falls back to keeping 2).
  int64_t checkpoint_keep = 0;
  /// Post-commit checkpoint read-back (`verify_checkpoints=1`).
  bool verify_checkpoints = false;
  /// Scrub cadence default (`scrub_every=N` rounds); 0 = no URL default.
  int64_t scrub_every = 0;

  /// Memory budget for this connection's transient working sets
  /// (`memory_limit_bytes=N`): a statement whose materialized rows, join
  /// builds, or GROUP BY state would exceed it fails with
  /// QuotaExceededError at the next charge flush. Must be positive when
  /// given (a zero-byte budget could never run anything); 0 = unlimited.
  int64_t memory_limit_bytes = 0;
  /// Rows between the engine's mid-statement governor checks
  /// (`cancel_check_rows=N`): smaller values tighten cancellation and
  /// deadline latency inside scans and joins at slightly higher overhead.
  /// Must be positive when given; 0 = engine default (1024).
  int64_t cancel_check_rows = 0;

  /// Buffer-pool budget for the target database (`buffer_pool_bytes=N`):
  /// caps the bytes of table pages held resident; pages beyond the budget
  /// spill to per-table scratch files and fault back in on access. Must be
  /// positive when given; 0 = unbounded (pages never spill).
  int64_t buffer_pool_bytes = 0;
  /// Paged-storage toggle (`paged=0|1`). Tables created while paged is on
  /// use slotted pages behind the buffer pool; `paged=0` keeps the
  /// resident row-vector representation as a differential oracle.
  /// -1 = parameter absent (leave the database's current setting alone).
  int paged = -1;

  static ConnectionConfig Parse(const std::string& url);
};

class Connection;

/// Entry point mirroring java.sql.DriverManager. Hosts map to Server
/// instances; "localhost" is pre-registered to Server::Default().
class DriverManager {
 public:
  /// Opens a connection, or throws ConnectionError (unknown host/database,
  /// engine mismatch, malformed URL).
  static std::unique_ptr<Connection> GetConnection(const std::string& url);

  /// Makes `server` reachable as minidb://<host>/... (used to model
  /// multiple remote database machines). Passing nullptr unregisters.
  static void RegisterHost(const std::string& host, minidb::Server* server);

  /// The server a host name resolves to, or nullptr. Lets callers (e.g.
  /// the shell's \faults command) reach the Server behind a URL to attach
  /// a fault injector to a live deployment.
  static minidb::Server* FindHost(const std::string& host);
};

}  // namespace sqloop::dbc
