// dbc — the repo's JDBC stand-in (paper §IV-A).
//
// SQLoop talks to engines exclusively through this layer: URL-based
// connection establishment, statements, batching, transactions, and
// isolation levels. A configurable synthetic round-trip latency models the
// client/server hop that JDBC drivers pay over TCP; SQLoop's batching and
// connection-per-worker design only show their value because this cost
// exists.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "minidb/server.h"

namespace sqloop::dbc {

/// Parsed form of a connection URL:
///   minidb://<host>[:port]/<database>[?latency_us=N][&engine=<name>]
struct ConnectionConfig {
  std::string host = "localhost";
  int port = 5432;
  std::string database;
  /// Simulated one-way-and-back cost of a statement round trip, paid once
  /// per Execute* call (a whole batch pays it once).
  int64_t latency_us = 100;
  /// Simulated server-side processing cost per row examined. Models the
  /// paper's 32-core testbed on small machines: every connection's
  /// statements cost time proportional to the data they scan, and those
  /// costs overlap across connections exactly as they would on a server
  /// with ample cores (see DESIGN.md "Substitutions"). 0 disables.
  int64_t row_cost_ns = 0;
  /// Optional engine assertion: if non-empty, connecting fails unless the
  /// target database actually runs this engine profile.
  std::string expected_engine;

  static ConnectionConfig Parse(const std::string& url);
};

class Connection;

/// Entry point mirroring java.sql.DriverManager. Hosts map to Server
/// instances; "localhost" is pre-registered to Server::Default().
class DriverManager {
 public:
  /// Opens a connection, or throws ConnectionError (unknown host/database,
  /// engine mismatch, malformed URL).
  static std::unique_ptr<Connection> GetConnection(const std::string& url);

  /// Makes `server` reachable as minidb://<host>/... (used to model
  /// multiple remote database machines). Passing nullptr unregisters.
  static void RegisterHost(const std::string& host, minidb::Server* server);
};

}  // namespace sqloop::dbc
