// JDBC-style prepared statements: Connection::Prepare(sql) compiles a
// statement with `?` placeholders once; every ExecuteQuery/ExecuteUpdate
// afterwards ships only the bound values — one round trip, no re-parse.
//
// The handle keeps a private clone of the cached AST whose parameter nodes
// are stable slots: binding rewrites a slot to a literal in place, so
// re-execution is bind + execute, never clone or re-plan. The server-side
// plan (lock set) is validated against the database's catalog version on
// every execute and refreshed transparently after any DDL — and because
// the compiled state lives with the database, a resilience Reopen() of the
// connection needs no re-prepare at all.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dbc/connection.h"
#include "minidb/plan_cache.h"
#include "sql/ast.h"
#include "sql/value.h"

namespace sqloop::dbc {

class PreparedStatement {
 public:
  PreparedStatement(PreparedStatement&&) = default;
  PreparedStatement& operator=(PreparedStatement&&) = default;
  PreparedStatement(const PreparedStatement&) = delete;
  PreparedStatement& operator=(const PreparedStatement&) = delete;

  const std::string& sql() const noexcept { return sql_; }
  int parameter_count() const noexcept { return param_count_; }

  // --- binds (1-based indices, JDBC convention) -------------------------
  void SetInt64(int index, int64_t value);
  void SetDouble(int index, double value);
  void SetText(int index, std::string value);
  void SetNull(int index);
  void ClearParameters();

  // --- execution (one round trip each; all parameters must be bound) ----
  ResultSet Execute();
  ResultSet ExecuteQuery() { return Execute(); }
  size_t ExecuteUpdate() { return Execute().affected_rows; }

  /// Snapshots the current binds into the batch queue.
  void AddBatch();
  /// Executes every queued bind set in order; a single round trip for the
  /// whole batch. Returns per-execution affected rows. The queue is
  /// preserved when a fault strikes before the batch reaches the engine.
  std::vector<size_t> ExecuteBatch();
  size_t batch_size() const noexcept { return batch_.size(); }

 private:
  friend class Connection;

  PreparedStatement(Connection& conn, std::string sql);

  /// Re-validates the server-side plan: refreshes it after DDL (parse is
  /// reused, lock plan re-binds), and — when the plan cache is disabled
  /// (`--no-plan-cache`) — re-parses per execute to model the old world.
  /// Returns true when a compile (full parse) happened this call.
  bool EnsureFresh();
  /// Parses sql_ locally into bound_ and re-collects parameter slots.
  void Recompile();
  void CollectSlots();
  void ApplyBinds(const std::vector<Value>& values);
  void RequireAllBound() const;
  void CheckIndex(int index) const;
  /// The shared execute path: client-side costs, freshness check, bind,
  /// engine call.
  ResultSet Submit(const std::vector<Value>& values);

  Connection* conn_;
  std::string sql_;
  std::shared_ptr<const minidb::CachedPlan> plan_;  // null when cache is off
  sql::StatementPtr bound_;           // private clone with bindable slots
  std::vector<sql::Expr*> slots_;     // slots_[i] = parameter ordinal i
  std::vector<Value> binds_;
  std::vector<char> has_bind_;
  std::vector<std::vector<Value>> batch_;
  int param_count_ = 0;
};

}  // namespace sqloop::dbc
